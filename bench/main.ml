(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (Sections 8 and 9, Appendices J, K, L).

    Usage:  dune exec bench/main.exe [--] [target ...]
    Targets: fig8a fig8b fig8c fig9 coverage fig10a fig10b fig10c fig11
             table2 table3 fig12 fig13 fig14 sec83 micro ablation all

    Absolute numbers differ from the paper (our substrate is a simulated
    corpus and interpreter, not GitHub + Azure), but the comparative
    shape — which method wins, by roughly what factor, where strategies
    escalate — is the reproduction target (see EXPERIMENTS.md). *)

let methods = Autotype_core.Ranking.all_methods

let method_name = Autotype_core.Ranking.method_to_string

(* ------------------------------------------------------------------ *)
(* Table rendering                                                      *)
(* ------------------------------------------------------------------ *)

let print_rule widths =
  print_string "+";
  List.iter (fun w -> print_string (String.make (w + 2) '-' ^ "+")) widths;
  print_newline ()

let print_row widths cells =
  print_string "|";
  List.iter2
    (fun w c ->
      let pad = max 0 (w - String.length c) in
      Printf.printf " %s%s |" c (String.make pad ' '))
    widths cells;
  print_newline ()

let print_table header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  print_rule widths;
  print_row widths header;
  print_rule widths;
  List.iter (print_row widths) rows;
  print_rule widths

let pct f = Printf.sprintf "%.0f%%" (100.0 *. f)
let f2 f = Printf.sprintf "%.2f" f

let section title =
  Printf.printf "\n=== %s ===\n\n" title

(* ------------------------------------------------------------------ *)
(* Shared state: the full-benchmark results are expensive, compute once *)
(* ------------------------------------------------------------------ *)

let full_results = ref None

let get_full_results () =
  match !full_results with
  | Some r -> r
  | None ->
    Printf.printf "[running full %d-type benchmark...]\n%!"
      (List.length Semtypes.Registry.covered);
    let t0 = Unix.gettimeofday () in
    let r = Eval.Experiments.full_benchmark () in
    Printf.printf "[benchmark done in %.1fs]\n%!" (Unix.gettimeofday () -. t0);
    full_results := Some r;
    r

(* ------------------------------------------------------------------ *)
(* Figure 8                                                             *)
(* ------------------------------------------------------------------ *)

let fig8a () =
  section "Figure 8(a): precision@K comparison (112-type benchmark)";
  let results = get_full_results () in
  let ks = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let header = "method" :: List.map (fun k -> Printf.sprintf "k=%d" k) ks in
  let rows =
    List.map
      (fun m ->
        method_name m
        :: List.map (fun k -> pct (Eval.Benchmark.precision_at_k results m k)) ks)
      methods
  in
  print_table header rows

let fig8b () =
  section "Figure 8(b): NDCG comparison";
  let results = get_full_results () in
  let ps = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let header = "method" :: List.map (fun p -> Printf.sprintf "p=%d" p) ps in
  let rows =
    List.map
      (fun m ->
        method_name m
        :: List.map (fun p -> f2 (Eval.Benchmark.ndcg_at_p results m p)) ps)
      methods
  in
  print_table header rows

let fig8c () =
  section "Figure 8(c): relative recall (pooled top-7)";
  let results = get_full_results () in
  let recalls = Eval.Benchmark.relative_recall results methods in
  print_table [ "method"; "relative recall" ]
    (List.map (fun (m, r) -> [ m; pct r ]) recalls)

(* ------------------------------------------------------------------ *)
(* Figure 9 + coverage                                                  *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section "Figure 9: distribution of relevant functions per covered type";
  let results = get_full_results () in
  let report = Eval.Experiments.coverage results in
  let counts = List.map snd report.Eval.Experiments.relevant_per_type in
  let buckets = [ (0, 0); (1, 2); (3, 5); (6, 9); (10, 15); (16, 40) ] in
  let rows =
    List.map
      (fun (lo, hi) ->
        let n = List.length (List.filter (fun c -> c >= lo && c <= hi) counts) in
        [ (if lo = hi then string_of_int lo
           else Printf.sprintf "%d-%d" lo hi);
          string_of_int n ])
      buckets
  in
  print_table [ "#relevant functions"; "#types" ] rows;
  let found = List.filter (fun c -> c > 0) counts in
  Printf.printf "average relevant functions per found type: %.1f (paper: 7.4)\n"
    (Eval.Metrics.mean (List.map float_of_int found));
  let zeros =
    List.filter_map
      (fun (id, n) -> if n = 0 then Some id else None)
      report.Eval.Experiments.relevant_per_type
  in
  if zeros <> [] then
    Printf.printf "types with no relevant function found: %s\n"
      (String.concat ", " zeros)

let coverage () =
  section "Section 8.2.2: coverage analysis";
  let results = get_full_results () in
  let report = Eval.Experiments.coverage results in
  Printf.printf "benchmark types:                %d (paper: 112)\n"
    report.Eval.Experiments.n_types;
  Printf.printf "types with functions found:     %d (paper: 84)\n"
    report.Eval.Experiments.n_found;
  Printf.printf "no relevant code found:         %d\n"
    report.Eval.Experiments.n_no_code;
  Printf.printf "code only in other languages:   %d (paper: 12)\n"
    report.Eval.Experiments.n_other_language;
  Printf.printf "complex invocation not handled: %d (paper: 4)\n"
    report.Eval.Experiments.n_complex_invocation

(* ------------------------------------------------------------------ *)
(* Figure 10: sensitivity                                               *)
(* ------------------------------------------------------------------ *)

let p_at_k_row results k =
  pct (Eval.Benchmark.precision_at_k results Autotype_core.Ranking.DNF_S k)

let fig10a () =
  section "Figure 10(a): varying the number of positive examples (20 popular types)";
  let per_n = Eval.Experiments.sensitivity_n_examples () in
  let header = "examples" :: List.map (fun k -> Printf.sprintf "k=%d" k) [ 1; 2; 3; 4 ] in
  let rows =
    List.map
      (fun (n, results) ->
        string_of_int n :: List.map (p_at_k_row results) [ 1; 2; 3; 4 ])
      per_n
  in
  print_table header rows

let fig10b () =
  section "Figure 10(b): noise in the positive examples";
  let per_frac = Eval.Experiments.sensitivity_noise () in
  let header = "noise" :: List.map (fun k -> Printf.sprintf "k=%d" k) [ 1; 2; 3; 4 ] in
  let rows =
    List.map
      (fun (frac, results) ->
        pct frac :: List.map (p_at_k_row results) [ 1; 2; 3; 4 ])
      per_frac
  in
  print_table header rows

let fig10c () =
  section "Figure 10(c): negative-example generation strategies";
  let per_variant = Eval.Experiments.sensitivity_negatives () in
  let header = "strategy" :: List.map (fun k -> Printf.sprintf "k=%d" k) [ 1; 2; 3; 4 ] in
  let rows =
    List.map
      (fun (v, results) ->
        Eval.Experiments.neg_variant_to_string v
        :: List.map (p_at_k_row results) [ 1; 2; 3; 4 ])
      per_variant
  in
  print_table header rows

(* ------------------------------------------------------------------ *)
(* Section 9: type detection in tables                                  *)
(* ------------------------------------------------------------------ *)

let table_detection_results = ref None

let get_detection () =
  match !table_detection_results with
  | Some r -> r
  | None ->
    Printf.printf "[generating web-table corpus and running detection...]\n%!";
    let t0 = Unix.gettimeofday () in
    let columns = Tablecorpus.Webtables.generate () in
    let results = Tablecorpus.Detect.run columns in
    Printf.printf "[detection done in %.1fs over %d columns]\n%!"
      (Unix.gettimeofday () -. t0)
      (List.length columns);
    table_detection_results := Some results;
    results

let fig11 () =
  section "Figure 11: F-score on column-type detection";
  let results = get_detection () in
  let types =
    List.sort_uniq String.compare
      (List.map (fun r -> r.Tablecorpus.Detect.type_id) results)
  in
  let rows =
    List.filter_map
      (fun ty ->
        let for_m m =
          List.find_opt
            (fun r ->
              r.Tablecorpus.Detect.type_id = ty
              && r.Tablecorpus.Detect.method_ = m)
            results
        in
        match (for_m Tablecorpus.Detect.DNF_S, for_m Tablecorpus.Detect.KW,
               for_m Tablecorpus.Detect.REGEX) with
        | Some d, Some k, Some x ->
          if d.Tablecorpus.Detect.true_positives = 0
             && k.Tablecorpus.Detect.true_positives = 0
             && x.Tablecorpus.Detect.true_positives = 0
          then None  (* the 5 popular types with no valid columns *)
          else
            Some
              [ ty; f2 d.Tablecorpus.Detect.f1; f2 x.Tablecorpus.Detect.f1;
                f2 k.Tablecorpus.Detect.f1 ]
        | _ -> None)
      types
  in
  print_table [ "type"; "DNF-S F1"; "REGEX F1"; "KW F1" ] rows

let table2 () =
  section "Table 2: per-type true-positive columns (precision in parens)";
  let results = get_detection () in
  let types =
    (* Present in Table 2 order by DNF-S true positives, descending. *)
    List.sort_uniq String.compare
      (List.map (fun r -> r.Tablecorpus.Detect.type_id) results)
    |> List.sort (fun a b ->
           let tp ty =
             List.fold_left
               (fun acc r ->
                 if r.Tablecorpus.Detect.type_id = ty
                    && r.Tablecorpus.Detect.method_ = Tablecorpus.Detect.DNF_S
                 then acc + r.Tablecorpus.Detect.true_positives
                 else acc)
               0 results
           in
           compare (tp b) (tp a))
  in
  let cell ty m =
    match
      List.find_opt
        (fun r ->
          r.Tablecorpus.Detect.type_id = ty && r.Tablecorpus.Detect.method_ = m)
        results
    with
    | Some r when r.Tablecorpus.Detect.detected > 0 ->
      Printf.sprintf "%d (%.2f)" r.Tablecorpus.Detect.true_positives
        r.Tablecorpus.Detect.precision
    | Some _ -> "0 (-)"
    | None -> "-"
  in
  let rows =
    List.filter_map
      (fun ty ->
        let d = cell ty Tablecorpus.Detect.DNF_S
        and k = cell ty Tablecorpus.Detect.KW
        and x = cell ty Tablecorpus.Detect.REGEX in
        if d = "0 (-)" && k = "0 (-)" && x = "0 (-)" then None
        else Some [ ty; d; k; x ])
      types
  in
  print_table [ "type"; "DNF-S"; "KW"; "REGEX" ] rows

let table3 () =
  section "Table 3: semantic transformations harvested from top functions";
  List.iter
    (fun type_id ->
      let ty = Semtypes.Registry.find_exn type_id in
      match Eval.Experiments.transformations_for ty with
      | None -> Printf.printf "%-14s (no function found)\n" type_id
      | Some (func, _positives, ts) ->
        let vars =
          List.map
            (fun t -> t.Autotype_core.Transform.variable)
            ts
        in
        Printf.printf "%-14s via %s\n               -> %s\n" type_id func
          (if vars = [] then "(none)" else String.concat ", " vars))
    [ "email"; "url"; "phone"; "isbn"; "ipv4"; "credit-card"; "us-zipcode";
      "vin"; "datetime"; "mac-address"; "address"; "iban"; "country-code";
      "upc"; "stock-ticker"; "chemical-formula"; "hex-color"; "person-name";
      "ipv6"; "doi" ]

(* ------------------------------------------------------------------ *)
(* Appendices                                                           *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  section "Figure 12 / Appendix J: sensitivity to input keywords";
  let per_type = Eval.Experiments.sensitivity_keywords () in
  let header = [ "type"; "keyword"; "P@1"; "P@2"; "P@3"; "P@4" ] in
  let rows =
    List.concat_map
      (fun (type_id, per_kw) ->
        List.map
          (fun (kw, result) ->
            let graded =
              Option.value
                (List.assoc_opt Autotype_core.Ranking.DNF_S
                   result.Eval.Benchmark.per_method)
                ~default:[]
            in
            let rels =
              List.map (fun g -> g.Eval.Benchmark.relevance) graded
            in
            type_id :: kw
            :: List.map (fun k -> pct (Eval.Metrics.precision_at_k rels k))
                 [ 1; 2; 3; 4 ])
          per_kw)
      per_type
  in
  print_table header rows

let fig13 () =
  section "Figure 13 / Appendix K: LR with varying #examples vs DNF-S";
  let dnf20 =
    List.map
      (fun ty -> Eval.Benchmark.run_type ty)
      (Eval.Experiments.popular_types ())
  in
  let lr = Eval.Experiments.lr_sensitivity () in
  let header = "method" :: List.map (fun k -> Printf.sprintf "k=%d" k) [ 1; 2; 3; 4 ] in
  let rows =
    [ "DNF-S #pos=20"
      :: List.map
           (fun k ->
             pct (Eval.Benchmark.precision_at_k dnf20 Autotype_core.Ranking.DNF_S k))
           [ 1; 2; 3; 4 ] ]
    @ List.map
        (fun (n, results) ->
          Printf.sprintf "LR #pos=%d" n
          :: List.map
               (fun k ->
                 pct (Eval.Benchmark.precision_at_k results Autotype_core.Ranking.LR k))
               [ 1; 2; 3; 4 ])
        lr
  in
  print_table header rows

let fig14 () =
  section "Figure 14 / Appendix L: running-time distribution";
  let results = get_full_results () in
  let minutes =
    List.map (fun r -> r.Eval.Benchmark.simulated_minutes) results
  in
  let buckets =
    [ (0.0, 10.0); (10.0, 20.0); (20.0, 30.0); (30.0, 40.0); (40.0, 50.0);
      (50.0, 59.9); (59.9, 61.0) ]
  in
  let rows =
    List.map
      (fun (lo, hi) ->
        let n =
          List.length (List.filter (fun m -> m >= lo && m < hi) minutes)
        in
        [ (if lo >= 59.9 then ">=60 min (capped)"
           else Printf.sprintf "%.0f-%.0f min" lo hi);
          string_of_int n ])
      buckets
  in
  print_table [ "simulated running time"; "#types" ] rows;
  let sorted = List.sort compare minutes in
  let nth_pct p =
    List.nth sorted (p * (List.length sorted - 1) / 100)
  in
  Printf.printf
    "min/median/max simulated: %.1f / %.1f / %.1f minutes\n"
    (nth_pct 0) (nth_pct 50) (nth_pct 100);
  Printf.printf
    "(simulated work-units: interpreter steps scaled to the paper's 60-minute cap;\n\
    \ real elapsed total: %.1fs)\n"
    (List.fold_left (fun acc r -> acc +. r.Eval.Benchmark.elapsed_s) 0.0 results)

let sec83 () =
  section "Section 8.3: PBE-style (TDE) comparison, simulated";
  let per_type = Eval.Experiments.pbe_comparison () in
  let found = List.filter snd per_type in
  Printf.printf
    "TDE-style exact-output PBE finds functions for %d of %d popular types\n"
    (List.length found) (List.length per_type);
  Printf.printf "(paper: 4 of 20 — binary True/False outputs underconstrain PBE)\n";
  Printf.printf "types found: %s\n"
    (String.concat ", " (List.map fst found))

(* ------------------------------------------------------------------ *)
(* Ablations beyond the paper                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: k-conciseness and theta budget (DESIGN.md section 5)";
  let popular = Eval.Experiments.popular_types () in
  let run_with k theta =
    let pipeline = { Autotype_core.Pipeline.default_config with k; theta } in
    let config = { Eval.Benchmark.default_config with pipeline } in
    List.map (fun ty -> Eval.Benchmark.run_type ~config ty) popular
  in
  let header = [ "configuration"; "P@1"; "P@3" ] in
  let rows =
    List.map
      (fun (label, k, theta) ->
        let results = run_with k theta in
        [ label;
          pct (Eval.Benchmark.precision_at_k results Autotype_core.Ranking.DNF_S 1);
          pct (Eval.Benchmark.precision_at_k results Autotype_core.Ranking.DNF_S 3) ])
      [ ("k=1 theta=0.3", 1, 0.3); ("k=2 theta=0.3", 2, 0.3);
        ("k=3 theta=0.3 (paper)", 3, 0.3); ("k=3 theta=0.1", 3, 0.1);
        ("k=3 theta=0.5", 3, 0.5) ]
  in
  print_table header rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core algorithms                     *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Bechamel micro-benchmarks (core algorithm costs)";
  let open Bechamel in
  let ty = Semtypes.Registry.find_exn "credit-card" in
  let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
  let negatives =
    Autotype_core.Negative.generate ~seed:11 Autotype_core.Negative.S1 positives
  in
  let cand =
    List.find
      (fun c -> c.Repolib.Candidate.func_name = "is_valid_card")
      (Corpus.all_candidates ())
  in
  let traced =
    Autotype_core.Ranking.trace_candidate cand ~positives ~negatives
  in
  let pos_f, neg_f = Autotype_core.Ranking.featurized traced in
  let inst = Autotype_core.Dnf.make_instance ~positives:pos_f ~negatives:neg_f in
  let test_interp =
    Test.make ~name:"interp: luhn validation run"
      (Staged.stage (fun () ->
           ignore (Repolib.Driver.run_safe cand "4111111111111111")))
  in
  let test_mutate =
    Test.make ~name:"negative: S1 mutation of 20 examples"
      (Staged.stage (fun () ->
           ignore
             (Autotype_core.Negative.generate ~seed:7 Autotype_core.Negative.S1
                positives)))
  in
  let test_dnf =
    Test.make ~name:"dnf: best-k-concise cover (k=3)"
      (Staged.stage (fun () ->
           ignore (Autotype_core.Dnf.best_k_concise ~k:3 ~theta:0.3 inst)))
  in
  let test_regex =
    Test.make ~name:"regexlite: ipv4 pattern full match"
      (Staged.stage
         (let re =
            Regexlite.parse
              "^(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])(\\.(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9]?[0-9])){3}$"
          in
          fun () -> ignore (Regexlite.full_match re "192.168.254.254")))
  in
  let run_test test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    let stats = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name v ->
        match Analyze.OLS.estimates v with
        | Some (est :: _) -> Printf.printf "%-44s %14.1f ns/run\n" name est
        | Some [] | None -> Printf.printf "%-44s (no estimate)\n" name)
      stats
  in
  List.iter run_test [ test_interp; test_mutate; test_dnf; test_regex ]

(* ------------------------------------------------------------------ *)
(* Pipeline stage timings → BENCH_pipeline.json                         *)
(* ------------------------------------------------------------------ *)

(* Per-stage wall-clock baseline for optimisation PRs: runs the full
   synthesis pipeline for a few representative types under telemetry,
   once sequentially (jobs=1) and once on the execution engine
   (--jobs N, default auto), verifies the ranked outputs are identical,
   and writes machine-readable timings + speedups.  Exits non-zero when
   the parallel run diverges from the sequential one. *)

let bench_jobs = ref 0  (* 0 = auto (Exec.default_jobs) *)

let pipeline_stage_names =
  [ "pipeline.search"; "pipeline.analyze"; "pipeline.staticcheck";
    "pipeline.probe"; "pipeline.negatives"; "pipeline.trace";
    "pipeline.rank"; "pipeline.synthesize" ]

(* Everything observable about an outcome that optimisation must not
   change: strategy, negative set, and the ranked list down to exact
   scores and DNFs. *)
let outcome_fingerprint (o : Autotype_core.Pipeline.outcome) : string =
  let strategy =
    match o.Autotype_core.Pipeline.strategy_used with
    | Some s -> Autotype_core.Negative.strategy_to_string s
    | None -> "-"
  in
  let ranked =
    List.map
      (fun (r : Autotype_core.Ranking.ranked) ->
        Printf.sprintf "%s|%s|%.17g"
          (Repolib.Candidate.id
             r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate)
          (Autotype_core.Dnf.to_string r.Autotype_core.Ranking.dnf)
          r.Autotype_core.Ranking.score)
      o.Autotype_core.Pipeline.ranked
  in
  String.concat "\n"
    ((strategy :: o.Autotype_core.Pipeline.negatives) @ ranked)

(* One telemetry-instrumented pass over [type_ids]; returns per-type
   fingerprints, wall-clock, per-stage totals, and the counter
   snapshot. *)
let pipeline_pass ?pool ?(staticcheck = true) type_ids =
  Telemetry.reset ();
  Telemetry.enable ();
  let config = { Autotype_core.Pipeline.default_config with staticcheck } in
  let t0 = Unix.gettimeofday () in
  let fingerprints =
    List.map
      (fun id ->
        let ty = Semtypes.Registry.find_exn id in
        let positives =
          Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty
        in
        let outcome =
          Autotype_core.Pipeline.synthesize ~config ?pool
            ~index:(Corpus.search_index ())
            ~query:ty.Semtypes.Registry.name ~positives ()
        in
        (id, outcome_fingerprint outcome))
      type_ids
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Telemetry.disable ();
  let stage_stats =
    List.map
      (fun name ->
        let spans = Telemetry.spans_named name in
        let total_s = Int64.to_float (Telemetry.total_ns name) /. 1e9 in
        (name, List.length spans, total_s))
      pipeline_stage_names
  in
  (fingerprints, elapsed, stage_stats, Telemetry.snapshot ())

let stage_total name stats =
  List.fold_left
    (fun acc (n, _, total_s) -> if n = name then total_s else acc)
    0.0 stats

(* Re-run a pass [n] times and keep the run with the smallest
   trace-stage time.  Single-pass stage deltas are dominated by which
   pass happened to run first (the parser, corpus-index, scope and
   compile caches all fill on the first pass), so any comparison
   between configurations uses best-of-n on a warm process instead. *)
let best_pass ?(n = 3) f =
  let rec go best left =
    if left = 0 then snd (Option.get best)
    else
      let ((_, _, stages, _) as p) = f () in
      let t = stage_total "pipeline.trace" stages in
      let best =
        match best with Some (bt, _) when bt <= t -> best | _ -> Some (t, p)
      in
      go best (left - 1)
  in
  go None n

let print_pass_report label (elapsed, stage_stats, snap) =
  Printf.printf "\n-- %s --\n" label;
  print_table
    [ "stage"; "spans"; "total" ]
    (List.map
       (fun (name, n, total_s) ->
         [ name; string_of_int n; Printf.sprintf "%.1fms" (1e3 *. total_s) ])
       stage_stats);
  Printf.printf "interpreter: %d runs, %d steps, %d branch events\n"
    (Telemetry.find_counter snap "interp.runs")
    (Telemetry.find_counter snap "interp.steps")
    (Telemetry.find_counter snap "interp.branch_events");
  Printf.printf
    "trace cache: %d hits, %d misses; %d candidates pruned\n"
    (Telemetry.find_counter snap "ranking.trace_cache_hits")
    (Telemetry.find_counter snap "ranking.trace_cache_misses")
    (Telemetry.find_counter snap "pipeline.candidates_pruned");
  Printf.printf "staticcheck: %d candidates pruned, %d diagnostics\n"
    (Telemetry.find_counter snap "staticcheck.pruned")
    (Telemetry.find_counter snap "staticcheck.diagnostics");
  Printf.printf "wall-clock: %.2fs\n" elapsed

(* Deterministic JSON for the BENCH files: object keys are emitted
   sorted and every float is formatted %.6f, so two runs differ only
   where the measurements differ — never in layout. *)
type jv =
  | J_int of int
  | J_float of float
  | J_bool of bool
  | J_str of string
  | J_raw of string  (** pre-rendered JSON (already deterministic) *)
  | J_list of jv list
  | J_obj of (string * jv) list

let rec jv_to_string = function
  | J_int i -> string_of_int i
  | J_float f -> Printf.sprintf "%.6f" f
  | J_bool b -> string_of_bool b
  | J_str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  | J_raw s -> s
  | J_list xs -> "[" ^ String.concat "," (List.map jv_to_string xs) ^ "]"
  | J_obj kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> jv_to_string (J_str k) ^ ":" ^ jv_to_string v)
           (List.sort (fun (a, _) (b, _) -> String.compare a b) kvs))
    ^ "}"

let pass_json (elapsed, stage_stats, snap) =
  J_obj
    [ ("elapsed_s", J_float elapsed);
      ( "stages",
        J_obj
          (List.map
             (fun (name, n, total_s) ->
               ( name,
                 J_obj
                   [ ("spans", J_int n); ("total_s", J_float total_s) ] ))
             stage_stats) );
      ( "counters",
        J_obj
          (List.map (fun (name, v) -> (name, J_int v)) snap.Telemetry.counters)
      ) ]

(* ------------------------------------------------------------------ *)
(* Compile/serve split: cold-compile vs warm-serve                      *)
(* ------------------------------------------------------------------ *)

(* The validation workload a served model answers: held-out positives
   plus sampled true negatives, ~250 values per type. *)
let serve_workload ty =
  Semtypes.Registry.positive_examples ~n:50 ~seed:99 ty
  @ Eval.Benchmark.negative_test_pool ~n:200 ~seed:42 ty

type serve_stats = {
  sv_n_models : int;
  sv_n_validations : int;
  sv_cold_elapsed : float;  (** compile + answer the workload, seconds *)
  sv_warm_elapsed : float;  (** open registry + answer the workload *)
  sv_cold_runs : int;  (** interp.runs during the cold pass *)
  sv_warm_runs : int;
  sv_warm_search_spans : int;  (** must be 0: serving never searches *)
  sv_warm_analyze_spans : int;  (** must be 0: serving never analyzes *)
  sv_warm_loads : int;
  sv_cache_hits : int;
  sv_cache_misses : int;
  sv_parity : bool;  (** served verdicts byte-match the live synthesis *)
  sv_lat_p50_ms : float;  (** per-value warm serve latency percentiles *)
  sv_lat_p95_ms : float;
  sv_lat_p99_ms : float;
  sv_sketch_p50_ms : float;
      (** same quantiles from the streaming sketch, merged over shards *)
  sv_sketch_p95_ms : float;
  sv_sketch_p99_ms : float;
  sv_sketch_ok : bool;  (** sketch within 5% of nearest-rank *)
  sv_p99_flight_off_ms : float;  (** warm p99 with the recorder disabled *)
  sv_p99_flight_on_ms : float;  (** warm p99 with the recorder always-on *)
  sv_flight_ok : bool;  (** recorder overhead under the 10% budget *)
  sv_slo : Telemetry.Slo.report;
  sv_warm_snapshot_json : string;  (** Expose.render_json of the warm pass *)
  sv_fastpath_hits : int;  (** compiled-summary answers in the warm pass *)
  sv_fastpath_fallbacks : int;  (** oversize values routed to the interp *)
  sv_compiled_models : int;  (** artifacts that shipped a usable summary *)
  sv_routes_identical : bool;  (** fast vs interp verdicts byte-match *)
  sv_fast_p50_ms : float;  (** per-value latency, compiled route *)
  sv_fast_p99_ms : float;
  sv_interp_p50_ms : float;  (** per-value latency, interpreter route *)
  sv_interp_p99_ms : float;
}

let h_warm_latency = Telemetry.histogram "bench.warm_value_latency_ms"

(* Nearest-rank percentile over per-value latencies (p in [0,100]). *)
let percentile p (xs : float array) =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(* Cold pass: full pipeline per type, persist the artifact, answer the
   workload with the in-memory synthesis.  Warm pass: re-open the
   registry (a fresh handle stands in for a fresh process), serve every
   model, answer the same workload.  Verdict vectors must byte-match. *)
let serve_pass type_ids =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "autotype-bench-models-%d" (Unix.getpid ()))
  in
  let fail msg = prerr_endline ("serve bench: " ^ msg); exit 1 in
  Telemetry.reset ();
  Telemetry.enable ();
  let t0 = Unix.gettimeofday () in
  let registry =
    match Model.Registry.create_dir dir with Ok r -> r | Error m -> fail m
  in
  let cold_verdicts =
    List.map
      (fun id ->
        let ty = Semtypes.Registry.find_exn id in
        let positives =
          Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty
        in
        let compiled =
          Autotype_core.Pipeline.compile ~index:(Corpus.search_index ())
            ~query:ty.Semtypes.Registry.name ~positives ()
        in
        let artifact =
          match Model.Artifact.of_compiled compiled with
          | Some a -> Model.Artifact.with_type_id id a
          | None -> fail ("no function synthesized for " ^ id)
        in
        (match Model.Registry.save registry artifact with
         | Ok _ -> ()
         | Error m -> fail m);
        let syn = Model.Artifact.to_synthesis artifact in
        (id,
         List.map
           (Autotype_core.Synthesis.validate syn)
           (serve_workload ty)))
      type_ids
  in
  let sv_cold_elapsed = Unix.gettimeofday () -. t0 in
  Telemetry.disable ();
  let cold_snap = Telemetry.snapshot () in
  let sv_cold_runs = Telemetry.find_counter cold_snap "interp.runs" in
  Telemetry.reset ();
  Telemetry.enable ();
  let t1 = Unix.gettimeofday () in
  let registry =
    match Model.Registry.open_dir dir with Ok r -> r | Error m -> fail m
  in
  let latencies_ms = ref [] in
  let warm_verdicts =
    List.map
      (fun id ->
        let ty = Semtypes.Registry.find_exn id in
        let entry =
          match Model.Registry.find registry id with
          | Ok e -> e
          | Error e -> fail (Model.Artifact.load_error_to_string e)
        in
        (* One request context per served column, as the daemon would
           mint: every span/flight event of this type's workload is
           attributable to it.  The detector routes through the
           compiled summary when the artifact carries one, so the warm
           pass exercises the production fast path. *)
        let det = Tablecorpus.Detect.serve_detector entry in
        Telemetry.Context.with_context (Telemetry.Context.root ())
        @@ fun () ->
        (id,
         List.map
           (fun v ->
             let t = Telemetry.now_ns () in
             let verdict = det.Tablecorpus.Detect.accepts v in
             let lat_ms =
               Int64.to_float (Int64.sub (Telemetry.now_ns ()) t) /. 1e6
             in
             Telemetry.observe h_warm_latency lat_ms;
             latencies_ms := lat_ms :: !latencies_ms;
             verdict)
           (serve_workload ty)))
      type_ids
  in
  let lat = Array.of_list !latencies_ms in
  let sv_warm_elapsed = Unix.gettimeofday () -. t1 in
  Telemetry.disable ();
  let warm_snap = Telemetry.snapshot () in
  let warm_hist =
    match
      List.assoc_opt "bench.warm_value_latency_ms"
        warm_snap.Telemetry.histograms
    with
    | Some h -> h
    | None -> fail "warm pass recorded no latency histogram"
  in
  (* The sketch answers the same nearest-rank question with bounded
     relative error (<= sqrt(gamma)-1 ~ 3.9%), so 5% is a real bound,
     not a tolerance picked to pass. *)
  let close sketch exact =
    Float.abs (sketch -. exact) /. Float.max exact 1e-9 <= 0.05
  in
  let lat_p50 = percentile 50.0 lat in
  let lat_p95 = percentile 95.0 lat in
  let lat_p99 = percentile 99.0 lat in
  (* Flight-recorder overhead: replay the warm workload twice under
     request contexts — recorder off, then on.  The always-on ring must
     cost < 10% of warm p99 (plus a small absolute slack so a machine
     hiccup at the 20us scale cannot fail the build by itself). *)
  let timed_warm_p99 () =
    Telemetry.reset ();
    Telemetry.enable ();
    let registry =
      match Model.Registry.open_dir dir with Ok r -> r | Error m -> fail m
    in
    let lats = ref [] in
    List.iter
      (fun id ->
        let ty = Semtypes.Registry.find_exn id in
        let entry =
          match Model.Registry.find registry id with
          | Ok e -> e
          | Error e -> fail (Model.Artifact.load_error_to_string e)
        in
        Telemetry.Context.with_context (Telemetry.Context.root ())
        @@ fun () ->
        List.iter
          (fun v ->
            let t = Telemetry.now_ns () in
            ignore
              (Autotype_core.Synthesis.validate
                 entry.Model.Registry.synthesis v);
            lats :=
              (Int64.to_float (Int64.sub (Telemetry.now_ns ()) t) /. 1e6)
              :: !lats)
          (serve_workload ty))
      type_ids;
    Telemetry.disable ();
    percentile 99.0 (Array.of_list !lats)
  in
  (* Best of three replays per mode: at the 20us scale a single
     scheduler hiccup is bigger than the effect being measured, and the
     recorder's true cost is a lower bound across repeats. *)
  let min_of_3 f = Float.min (f ()) (Float.min (f ()) (f ())) in
  Telemetry.Flight.set_enabled false;
  let p99_off = min_of_3 timed_warm_p99 in
  Telemetry.Flight.set_enabled true;
  let p99_on = min_of_3 timed_warm_p99 in
  (* Route comparison: replay the workload value-by-value through the
     compiled summary and through the interpreter, off the telemetry
     clock.  The two routes must return byte-identical verdicts (the
     interpreter is the oracle), and the compiled route's tail must be
     strictly cheaper — that delta is the fast path's payoff. *)
  let fast_lats = ref [] in
  let interp_lats = ref [] in
  let routes_identical = ref true in
  let compiled_models = ref 0 in
  List.iter
    (fun id ->
      let ty = Semtypes.Registry.find_exn id in
      let entry =
        match Model.Registry.find registry id with
        | Ok e -> e
        | Error e -> fail (Model.Artifact.load_error_to_string e)
      in
      match entry.Model.Registry.artifact.Model.Artifact.summary with
      | None -> ()
      | Some tree ->
        (match Absint.Domain.prepare tree with
         | None -> ()
         | Some prepared ->
           incr compiled_models;
           let interp_fn =
             Autotype_core.Synthesis.validate entry.Model.Registry.synthesis
           in
           List.iter
             (fun v ->
               let t = Telemetry.now_ns () in
               let fast = Absint.Domain.eval_prepared prepared v in
               fast_lats :=
                 (Int64.to_float (Int64.sub (Telemetry.now_ns ()) t) /. 1e6)
                 :: !fast_lats;
               let t = Telemetry.now_ns () in
               let slow = interp_fn v in
               interp_lats :=
                 (Int64.to_float (Int64.sub (Telemetry.now_ns ()) t) /. 1e6)
                 :: !interp_lats;
               if fast <> slow then begin
                 routes_identical := false;
                 Printf.eprintf
                   "ROUTE DIVERGENCE on %s %S: fast=%b interp=%b\n" id v fast
                   slow
               end)
             (serve_workload ty)))
    type_ids;
  let fast_lat = Array.of_list !fast_lats in
  let interp_lat = Array.of_list !interp_lats in
  let n_validations =
    List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 warm_verdicts
  in
  let slo =
    Telemetry.Slo.eval Telemetry.Slo.default_target ~p99_ms:lat_p99
      ~errors:
        (Telemetry.find_counter warm_snap "driver.infra_failures"
         + Telemetry.find_counter warm_snap "serve.degraded")
      ~deadline_hits:(Telemetry.find_counter warm_snap "serve.deadline_hits")
      ~total:n_validations
  in
  let stats =
    {
      sv_n_models = List.length type_ids;
      sv_n_validations = n_validations;
      sv_cold_elapsed;
      sv_warm_elapsed;
      sv_cold_runs;
      sv_warm_runs = Telemetry.find_counter warm_snap "interp.runs";
      sv_warm_search_spans =
        List.length (Telemetry.spans_named "pipeline.search");
      sv_warm_analyze_spans =
        List.length (Telemetry.spans_named "pipeline.analyze");
      sv_warm_loads = Telemetry.find_counter warm_snap "model.loads";
      sv_cache_hits = Telemetry.find_counter warm_snap "serve.cache_hits";
      sv_cache_misses = Telemetry.find_counter warm_snap "serve.cache_misses";
      sv_parity = cold_verdicts = warm_verdicts;
      sv_lat_p50_ms = lat_p50;
      sv_lat_p95_ms = lat_p95;
      sv_lat_p99_ms = lat_p99;
      sv_sketch_p50_ms = warm_hist.Telemetry.h_p50;
      sv_sketch_p95_ms = warm_hist.Telemetry.h_p95;
      sv_sketch_p99_ms = warm_hist.Telemetry.h_p99;
      sv_sketch_ok =
        close warm_hist.Telemetry.h_p50 lat_p50
        && close warm_hist.Telemetry.h_p95 lat_p95
        && close warm_hist.Telemetry.h_p99 lat_p99;
      sv_p99_flight_off_ms = p99_off;
      sv_p99_flight_on_ms = p99_on;
      (* 50us absolute slack: the recorder's true per-value cost is a
         few ring stores (~1us); at the 20-80us p99 scale the absolute
         term dominates the 10% one, and a real regression (a syscall
         or a lock convoy on the record path) lands well above it. *)
      sv_flight_ok = p99_on <= (p99_off *. 1.10) +. 0.05;
      sv_slo = slo;
      sv_warm_snapshot_json = Telemetry.Expose.render_json warm_snap;
      sv_fastpath_hits = Telemetry.find_counter warm_snap "serve.fastpath_hits";
      sv_fastpath_fallbacks =
        Telemetry.find_counter warm_snap "serve.fastpath_fallbacks";
      sv_compiled_models = !compiled_models;
      sv_routes_identical = !routes_identical;
      sv_fast_p50_ms = percentile 50.0 fast_lat;
      sv_fast_p99_ms = percentile 99.0 fast_lat;
      sv_interp_p50_ms = percentile 50.0 interp_lat;
      sv_interp_p99_ms = percentile 99.0 interp_lat;
    }
  in
  if not stats.sv_parity then
    List.iter2
      (fun (id, c) (_, w) ->
        if c <> w then
          Printf.eprintf "SERVE DIVERGENCE on %s: %d/%d verdicts differ\n" id
            (List.length
               (List.filter (fun x -> x)
                  (List.map2 (fun a b -> a <> b) c w)))
            (List.length c))
      cold_verdicts warm_verdicts;
  (* The registry directory is scratch; leave nothing behind. *)
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end;
  stats

let per_1k elapsed n =
  if n = 0 then 0.0 else 1000.0 *. elapsed /. float_of_int n

let print_serve_report (s : serve_stats) =
  Printf.printf "\n-- compile/serve split --\n";
  Printf.printf
    "cold (compile %d models + %d validations): %.2fs (%.1fms per 1k \
     validations)\n"
    s.sv_n_models s.sv_n_validations s.sv_cold_elapsed
    (1e3 *. per_1k s.sv_cold_elapsed s.sv_n_validations);
  Printf.printf
    "warm (load %d models + %d validations):    %.2fs (%.1fms per 1k \
     validations)\n"
    s.sv_warm_loads s.sv_n_validations s.sv_warm_elapsed
    (1e3 *. per_1k s.sv_warm_elapsed s.sv_n_validations);
  Printf.printf
    "interpreter runs: %d cold -> %d warm (%.1fx fewer); warm pipeline \
     spans: %d search, %d analyze\n"
    s.sv_cold_runs s.sv_warm_runs
    (if s.sv_warm_runs > 0 then
       float_of_int s.sv_cold_runs /. float_of_int s.sv_warm_runs
     else 0.0)
    s.sv_warm_search_spans s.sv_warm_analyze_spans;
  Printf.printf "serve cache: %d hits, %d misses; verdict parity: %s\n"
    s.sv_cache_hits s.sv_cache_misses
    (if s.sv_parity then "identical" else "DIVERGED");
  Printf.printf
    "warm per-value latency: p50 %.3fms, p95 %.3fms, p99 %.3fms\n"
    s.sv_lat_p50_ms s.sv_lat_p95_ms s.sv_lat_p99_ms;
  Printf.printf
    "streaming sketch:       p50 %.3fms, p95 %.3fms, p99 %.3fms (%s)\n"
    s.sv_sketch_p50_ms s.sv_sketch_p95_ms s.sv_sketch_p99_ms
    (if s.sv_sketch_ok then "within 5% of nearest-rank" else "OUT OF BOUNDS");
  Printf.printf
    "flight recorder: warm p99 %.3fms off -> %.3fms on (%s)\n"
    s.sv_p99_flight_off_ms s.sv_p99_flight_on_ms
    (if s.sv_flight_ok then "under the 10% overhead budget"
     else "OVER BUDGET");
  Printf.printf
    "fast path: %d/%d models compiled; %d hits, %d fallbacks; per-value \
     p50/p99 %.4f/%.4fms fast vs %.4f/%.4fms interp; routes %s\n"
    s.sv_compiled_models s.sv_n_models s.sv_fastpath_hits
    s.sv_fastpath_fallbacks s.sv_fast_p50_ms s.sv_fast_p99_ms
    s.sv_interp_p50_ms s.sv_interp_p99_ms
    (if s.sv_routes_identical then "identical" else "DIVERGED");
  Printf.printf
    "slo: p99 %.3fms vs target %.3fms (%s), error burn %.3f, deadline hit \
     rate %.4f\n"
    s.sv_slo.Telemetry.Slo.rep_p99_ms s.sv_slo.Telemetry.Slo.rep_target_p99_ms
    (if s.sv_slo.Telemetry.Slo.rep_p99_ok then "ok" else "MISSED")
    s.sv_slo.Telemetry.Slo.rep_error_budget_burn
    s.sv_slo.Telemetry.Slo.rep_deadline_hit_rate

let serve_json (s : serve_stats) =
  J_obj
    [ ("models", J_int s.sv_n_models);
      ("validations", J_int s.sv_n_validations);
      ("cold_elapsed_s", J_float s.sv_cold_elapsed);
      ("warm_elapsed_s", J_float s.sv_warm_elapsed);
      ("cold_per_1k_s", J_float (per_1k s.sv_cold_elapsed s.sv_n_validations));
      ("warm_per_1k_s", J_float (per_1k s.sv_warm_elapsed s.sv_n_validations));
      ("cold_interp_runs", J_int s.sv_cold_runs);
      ("warm_interp_runs", J_int s.sv_warm_runs);
      ("warm_search_spans", J_int s.sv_warm_search_spans);
      ("warm_analyze_spans", J_int s.sv_warm_analyze_spans);
      ("warm_model_loads", J_int s.sv_warm_loads);
      ("cache_hits", J_int s.sv_cache_hits);
      ("cache_misses", J_int s.sv_cache_misses);
      ("verdict_parity", J_bool s.sv_parity);
      ( "tail_latency",
        J_obj
          [ ("p50_ms", J_float s.sv_lat_p50_ms);
            ("p95_ms", J_float s.sv_lat_p95_ms);
            ("p99_ms", J_float s.sv_lat_p99_ms) ] );
      ( "streaming_quantiles",
        J_obj
          [ ("p50_ms", J_float s.sv_sketch_p50_ms);
            ("p95_ms", J_float s.sv_sketch_p95_ms);
            ("p99_ms", J_float s.sv_sketch_p99_ms);
            ("within_5pct_of_nearest_rank", J_bool s.sv_sketch_ok) ] );
      ( "flight_recorder",
        J_obj
          [ ("p99_ms_off", J_float s.sv_p99_flight_off_ms);
            ("p99_ms_on", J_float s.sv_p99_flight_on_ms);
            ("overhead_under_10pct", J_bool s.sv_flight_ok) ] );
      ( "fastpath",
        J_obj
          [ ("hits", J_int s.sv_fastpath_hits);
            ("fallbacks", J_int s.sv_fastpath_fallbacks);
            ("compiled_models", J_int s.sv_compiled_models);
            ("routes_identical", J_bool s.sv_routes_identical);
            ("fast_p50_ms", J_float s.sv_fast_p50_ms);
            ("fast_p99_ms", J_float s.sv_fast_p99_ms);
            ("interp_p50_ms", J_float s.sv_interp_p50_ms);
            ("interp_p99_ms", J_float s.sv_interp_p99_ms) ] );
      ("slo", J_raw (Telemetry.Slo.report_to_json s.sv_slo)) ]

(* ------------------------------------------------------------------ *)
(* Serving daemon under open-loop load (BENCH_serve.json)               *)
(* ------------------------------------------------------------------ *)

(* The daemon bench drives `autotype serve`'s engine (Serve.Daemon over
   a socketpair) with open-loop traffic: requests are dispatched at
   scheduled instants t0 + i/rate regardless of completions, so a slow
   server accumulates queueing delay instead of silently slowing the
   generator — latency is measured from the scheduled send time, the
   honest open-loop definition. *)

let serve_daemon_types = [ "ipv4"; "credit-card" ]

(* Build a registry of compiled models for the daemon to serve; the
   caller removes it. *)
let build_serve_registry type_ids dir =
  let fail msg = prerr_endline ("serve-daemon bench: " ^ msg); exit 1 in
  let registry =
    match Model.Registry.create_dir dir with Ok r -> r | Error m -> fail m
  in
  List.iter
    (fun id ->
      let ty = Semtypes.Registry.find_exn id in
      let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
      let compiled =
        Autotype_core.Pipeline.compile ~index:(Corpus.search_index ())
          ~query:ty.Semtypes.Registry.name ~positives ()
      in
      match Model.Artifact.of_compiled compiled with
      | None -> fail ("no function synthesized for " ^ id)
      | Some a ->
        (match Model.Registry.save registry (Model.Artifact.with_type_id id a)
         with
         | Ok _ -> ()
         | Error m -> fail m))
    type_ids;
  registry

let json_str_list vs =
  Model.Jsonx.List (List.map (fun v -> Model.Jsonx.Str v) vs)

(* Deterministic mixed traffic: 3 validates (8 values) to 1 detect (24
   values), round-robin over the types, values sliced from the same
   ~250-value workload the compile/serve bench uses.  [budgeted]
   attaches wall-clock budgets, which routes validation through the
   interpreter — where the fault layer's delay/kill probes live — so
   the chaos pass actually exercises degradation. *)
let make_requests ~budgeted ~n workloads =
  let n_types = Array.length workloads in
  List.init n (fun i ->
      let id = i + 1 in
      let ty, wl = workloads.(i mod n_types) in
      let take off k =
        List.filteri (fun j _ -> j >= off mod 200 && j < (off mod 200) + k) wl
      in
      let base =
        if i mod 4 < 3 then
          [ ("id", Model.Jsonx.Int id); ("op", Model.Jsonx.Str "validate");
            ("type", Model.Jsonx.Str ty);
            ("values", json_str_list (take (7 * i) 8)) ]
        else
          [ ("id", Model.Jsonx.Int id); ("op", Model.Jsonx.Str "detect");
            ("type", Model.Jsonx.Str ty);
            ("values", json_str_list (take (13 * i) 24)) ]
      in
      let fields =
        if budgeted then
          base
          @ [ ("deadline_ms", Model.Jsonx.Float 30.0);
              ("value_budget_ms", Model.Jsonx.Float 2.0) ]
        else base
      in
      (id, Model.Jsonx.to_string (Model.Jsonx.Obj fields)))

type rate_result = {
  rr_target_qps : int;
  rr_offered : int;
  rr_completed : int;
  rr_sustained_qps : float;
  rr_p50_ms : float;
  rr_p95_ms : float;
  rr_p99_ms : float;
  rr_rejected : int;  (** [overloaded] answers (admission or injected) *)
  rr_degraded : int;  (** degraded detect columns *)
  rr_deadline_verdicts : int;  (** DEADLINE/SKIPPED value verdicts *)
  rr_errors : int;  (** any other [ok:false] answer *)
}

(* Drive one arrival rate through an already-running daemon on [sock]
   (non-blocking).  Every request receives exactly one response —
   rejections included — so the loop ends when all [n] came back. *)
let drive_rate ~rate ~requests sock =
  let n = List.length requests in
  let frames =
    Array.of_list
      (List.map (fun (id, payload) -> (id, Serve.Frame.encode payload)) requests)
  in
  let sched_ns = Array.make (n + 1) 0L in
  let done_ns = Array.make (n + 1) 0L in
  let rejected = ref 0 and degraded = ref 0 and deadline_verdicts = ref 0 in
  let errors = ref 0 and completed = ref 0 in
  let dec = Serve.Frame.decoder () in
  let chunk = Bytes.create 65536 in
  let out = Buffer.create 65536 in
  let out_off = ref 0 in
  let t0 = Telemetry.now_ns () in
  let gap_ns = Int64.of_float (1e9 /. float_of_int rate) in
  let next_sent = ref 0 in
  let classify (r : Serve.Protocol.reply) =
    let j = r.Serve.Protocol.rp_body in
    if not r.Serve.Protocol.rp_ok then begin
      match Model.Jsonx.member_opt "error" j with
      | Some (Model.Jsonx.Str "overloaded") -> incr rejected
      | _ -> incr errors
    end
    else begin
      (match Model.Jsonx.member_opt "degraded" j with
       | Some (Model.Jsonx.Bool true) -> incr degraded
       | _ -> ());
      match Model.Jsonx.member_opt "verdicts" j with
      | Some (Model.Jsonx.List vs) ->
        List.iter
          (function
            | Model.Jsonx.Str ("DEADLINE" | "SKIPPED") ->
              incr deadline_verdicts
            | _ -> ())
          vs
      | _ -> ()
    end
  in
  let on_reply now payload =
    match Serve.Protocol.reply_of_json payload with
    | Error m ->
      prerr_endline ("serve-daemon bench: unparsable reply: " ^ m);
      exit 1
    | Ok r ->
      let id = r.Serve.Protocol.rp_id in
      if id >= 1 && id <= n && done_ns.(id) = 0L then begin
        done_ns.(id) <- now;
        incr completed
      end;
      classify r
  in
  while !completed < n do
    let now = Telemetry.now_ns () in
    (* Enqueue every frame whose scheduled instant has arrived. *)
    while
      !next_sent < n
      && Int64.compare
           (Int64.add t0 (Int64.mul (Int64.of_int !next_sent) gap_ns))
           now
         <= 0
    do
      let id, frame = frames.(!next_sent) in
      sched_ns.(id) <- Int64.add t0 (Int64.mul (Int64.of_int !next_sent) gap_ns);
      Buffer.add_string out frame;
      incr next_sent
    done;
    let want_write = Buffer.length out > !out_off in
    let timeout =
      if !next_sent >= n then 0.05
      else
        let next_at =
          Int64.add t0 (Int64.mul (Int64.of_int !next_sent) gap_ns)
        in
        Float.max 0.0
          (Int64.to_float (Int64.sub next_at (Telemetry.now_ns ())) /. 1e9)
    in
    (match
       Unix.select [ sock ] (if want_write then [ sock ] else []) [] timeout
     with
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     | readable, writable, _ ->
       if writable <> [] then begin
         let pending = Buffer.length out - !out_off in
         let b = Bytes.unsafe_of_string (Buffer.contents out) in
         (match Unix.write sock b !out_off pending with
          | w ->
            out_off := !out_off + w;
            if !out_off = Buffer.length out then begin
              Buffer.clear out;
              out_off := 0
            end
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            -> ())
       end;
       if readable <> [] then begin
         match Unix.read sock chunk 0 65536 with
         | 0 ->
           prerr_endline "serve-daemon bench: daemon closed the connection";
           exit 1
         | nread ->
           let now = Telemetry.now_ns () in
           Serve.Frame.feed dec (Bytes.sub_string chunk 0 nread);
           let rec drain () =
             match Serve.Frame.next dec with
             | Some (Serve.Frame.Payload p) -> on_reply now p; drain ()
             | Some _ ->
               prerr_endline "serve-daemon bench: malformed frame from daemon";
               exit 1
             | None -> ()
           in
           drain ()
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
           -> ()
       end)
  done;
  let last = Array.fold_left (fun acc t -> Int64.max acc t) 0L done_ns in
  let lats =
    Array.of_list
      (List.filter_map
         (fun id ->
           if done_ns.(id) = 0L then None
           else
             Some
               (Int64.to_float (Int64.sub done_ns.(id) sched_ns.(id)) /. 1e6))
         (List.init n (fun i -> i + 1)))
  in
  let span_s = Int64.to_float (Int64.sub last t0) /. 1e9 in
  {
    rr_target_qps = rate;
    rr_offered = n;
    rr_completed = !completed;
    rr_sustained_qps =
      (if span_s > 0.0 then float_of_int !completed /. span_s else 0.0);
    rr_p50_ms = percentile 50.0 lats;
    rr_p95_ms = percentile 95.0 lats;
    rr_p99_ms = percentile 99.0 lats;
    rr_rejected = !rejected;
    rr_degraded = !degraded;
    rr_deadline_verdicts = !deadline_verdicts;
    rr_errors = !errors;
  }

(* One daemon lifetime: spawn over a socketpair, run [f] against the
   client end, then shut down cleanly and join.  Returns [f]'s result
   plus the daemon's own (served, rejected) accounting; any daemon
   crash surfaces as the Domain.join exception. *)
let with_daemon registry f =
  let client, server =
    Unix.socketpair ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let cfg = Serve.Daemon.config registry in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run_fds cfg ~in_fd:server ~out_fd:server)
  in
  Unix.set_nonblock client;
  let result = f client in
  (* Blocking shutdown exchange on the now-quiet connection. *)
  Unix.clear_nonblock client;
  let bye = Serve.Frame.encode {|{"id":999999,"op":"shutdown"}|} in
  let b = Bytes.of_string bye in
  ignore (Unix.write client b 0 (Bytes.length b));
  let dec = Serve.Frame.decoder () in
  let chunk = Bytes.create 4096 in
  let rec await () =
    match Serve.Frame.next dec with
    | Some (Serve.Frame.Payload _) -> ()
    | Some _ -> ()
    | None ->
      (match Unix.read client chunk 0 4096 with
       | 0 -> ()
       | nread ->
         Serve.Frame.feed dec (Bytes.sub_string chunk 0 nread);
         await ())
  in
  await ();
  let served, rejected = Domain.join daemon in
  Unix.close client;
  Unix.close server;
  (result, served, rejected)

(* Byte-parity probe: the daemon's verdict words for a type's full
   workload must equal what the one-shot CLI prints (both sides call
   Tablecorpus.Detect.serve_values / the same detector route). *)
let parity_probe registry workloads =
  let ok = ref true in
  let _, _, _ =
    with_daemon registry (fun sock ->
        Unix.clear_nonblock sock;
        Array.iteri
          (fun i (ty, wl) ->
            let payload =
              Model.Jsonx.to_string
                (Model.Jsonx.Obj
                   [ ("id", Model.Jsonx.Int (i + 1));
                     ("op", Model.Jsonx.Str "validate");
                     ("type", Model.Jsonx.Str ty);
                     ("values", json_str_list wl) ])
            in
            let frame = Serve.Frame.encode payload in
            let b = Bytes.of_string frame in
            ignore (Unix.write sock b 0 (Bytes.length b));
            let dec = Serve.Frame.decoder () in
            let chunk = Bytes.create 65536 in
            let rec await () =
              match Serve.Frame.next dec with
              | Some (Serve.Frame.Payload p) -> p
              | Some _ ->
                prerr_endline "serve-daemon bench: malformed parity frame";
                exit 1
              | None ->
                (match Unix.read sock chunk 0 65536 with
                 | 0 ->
                   prerr_endline "serve-daemon bench: daemon closed mid-parity";
                   exit 1
                 | nread ->
                   Serve.Frame.feed dec (Bytes.sub_string chunk 0 nread);
                   await ())
            in
            let payload = await () in
            let daemon_verdicts =
              match Serve.Protocol.reply_of_json payload with
              | Ok r ->
                (match
                   Model.Jsonx.member_opt "verdicts" r.Serve.Protocol.rp_body
                 with
                 | Some (Model.Jsonx.List vs) ->
                   List.map Model.Jsonx.to_str vs
                 | _ ->
                   prerr_endline "serve-daemon bench: parity reply not ok";
                   exit 1)
              | Error m ->
                prerr_endline ("serve-daemon bench: parity reply: " ^ m);
                exit 1
            in
            let entry =
              match Model.Registry.find registry ty with
              | Ok e -> e
              | Error e ->
                prerr_endline (Model.Artifact.load_error_to_string e);
                exit 1
            in
            let cli_verdicts =
              List.map Tablecorpus.Detect.value_verdict_to_string
                (Tablecorpus.Detect.serve_values
                   entry.Model.Registry.synthesis wl)
            in
            if daemon_verdicts <> cli_verdicts then begin
              ok := false;
              Printf.eprintf "PARITY DRIFT on %s: daemon and CLI disagree\n"
                ty
            end)
          workloads;
        ())
  in
  !ok

let rate_json (r : rate_result) =
  J_obj
    [ ("target_qps", J_int r.rr_target_qps);
      ("offered", J_int r.rr_offered);
      ("completed", J_int r.rr_completed);
      ("sustained_qps", J_float r.rr_sustained_qps);
      ("p50_ms", J_float r.rr_p50_ms);
      ("p95_ms", J_float r.rr_p95_ms);
      ("p99_ms", J_float r.rr_p99_ms);
      ("rejected", J_int r.rr_rejected);
      ("degraded_columns", J_int r.rr_degraded);
      ("deadline_verdicts", J_int r.rr_deadline_verdicts);
      ("errors", J_int r.rr_errors) ]

let print_rate_report label results =
  Printf.printf "\n-- %s --\n" label;
  print_table
    [ "target qps"; "offered"; "done"; "sustained"; "p50"; "p95"; "p99";
      "rejected"; "degraded"; "deadline" ]
    (List.map
       (fun r ->
         [ string_of_int r.rr_target_qps; string_of_int r.rr_offered;
           string_of_int r.rr_completed;
           Printf.sprintf "%.0f/s" r.rr_sustained_qps;
           Printf.sprintf "%.2fms" r.rr_p50_ms;
           Printf.sprintf "%.2fms" r.rr_p95_ms;
           Printf.sprintf "%.2fms" r.rr_p99_ms;
           string_of_int r.rr_rejected; string_of_int r.rr_degraded;
           string_of_int r.rr_deadline_verdicts ])
       results)

let serve_daemon_bench () =
  section "Serving daemon under open-loop load (BENCH_serve.json)";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "autotype-bench-daemon-%d" (Unix.getpid ()))
  in
  let registry = build_serve_registry serve_daemon_types dir in
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
  @@ fun () ->
  let workloads =
    Array.of_list
      (List.map
         (fun id ->
           (id, serve_workload (Semtypes.Registry.find_exn id)))
         serve_daemon_types)
  in
  let rates = [ 500; 1500; 4000 ] in
  let run_pass ~budgeted =
    List.map
      (fun rate ->
        let n = max 100 (rate / 2) in
        let requests = make_requests ~budgeted ~n workloads in
        let result, _, _ =
          with_daemon registry (fun sock -> drive_rate ~rate ~requests sock)
        in
        result)
      rates
  in
  let crashed = ref false in
  let guard label f =
    try f ()
    with exn ->
      crashed := true;
      Printf.eprintf "serve-daemon bench: %s pass crashed: %s\n" label
        (Printexc.to_string exn);
      []
  in
  let clean = guard "clean" (fun () -> run_pass ~budgeted:false) in
  let chaos_spec = "delay_ms=1,p_kill=0.05,p_reject=0.05,seed=7" in
  let chaos =
    let cfg =
      match Faults.parse chaos_spec with
      | Ok c -> c
      | Error m -> prerr_endline ("bad chaos spec: " ^ m); exit 1
    in
    Faults.set (Some cfg);
    Fun.protect ~finally:(fun () -> Faults.set None) @@ fun () ->
    guard "chaos" (fun () -> run_pass ~budgeted:true)
  in
  let parity = parity_probe registry workloads in
  print_rate_report "clean (unbudgeted, no faults)" clean;
  print_rate_report
    (Printf.sprintf "chaos (%s; 30ms deadline, 2ms value budget)" chaos_spec)
    chaos;
  Printf.printf "\nverdict parity with the one-shot CLI: %s\n"
    (if parity then "identical" else "DRIFTED");
  let chaos_rejected = List.fold_left (fun a r -> a + r.rr_rejected) 0 chaos in
  let chaos_degraded =
    List.fold_left
      (fun a r -> a + r.rr_degraded + r.rr_deadline_verdicts)
      0 chaos
  in
  Printf.printf
    "chaos accounting: %d rejections, %d degraded columns or cut verdicts \
     across %d requests\n"
    chaos_rejected chaos_degraded
    (List.fold_left (fun a r -> a + r.rr_offered) 0 chaos);
  let json =
    jv_to_string
      (J_obj
         [ ("types", J_list (List.map (fun t -> J_str t) serve_daemon_types));
           ("rates", J_list (List.map (fun r -> J_int r) rates));
           ("clean", J_list (List.map rate_json clean));
           ( "chaos",
             J_obj
               [ ("spec", J_str chaos_spec);
                 ("deadline_ms", J_float 30.0);
                 ("value_budget_ms", J_float 2.0);
                 ("rates", J_list (List.map rate_json chaos));
                 ("rejected_total", J_int chaos_rejected);
                 ("degraded_total", J_int chaos_degraded) ] );
           ("parity", J_bool parity);
           ("crashed", J_bool !crashed) ])
    ^ "\n"
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_serve.json (%d rates x 2 passes)\n"
    (List.length rates);
  if (not parity) || !crashed then exit 1

let pipeline_bench () =
  section "Pipeline stage timings (BENCH_pipeline.json)";
  let type_ids = [ "credit-card"; "ipv4"; "email"; "isbn" ] in
  let jobs = if !bench_jobs <= 0 then Exec.default_jobs () else !bench_jobs in
  let recommended = Domain.recommended_domain_count () in
  Printf.printf "jobs=%d (recommended domain count: %d)\n" jobs recommended;
  let seq_fp, seq_elapsed, seq_stages, seq_snap =
    pipeline_pass ?pool:None type_ids
  in
  let par_fp, par_elapsed, par_stages, par_snap =
    Exec.Pool.with_pool ~jobs (fun pool -> pipeline_pass ~pool type_ids)
  in
  (* A third pass with static pruning disabled: the ranked output must
     be byte-identical (the pruned candidates can never rank), and the
     delta in interpreter work is the optimisation's payoff. *)
  let nos_fp, nos_elapsed, nos_stages, nos_snap =
    pipeline_pass ?pool:None ~staticcheck:false type_ids
  in
  (* Fourth pass: the compile/serve split — cold compile vs warm
     registry serving over the same validation workload. *)
  let serve = serve_pass type_ids in
  print_pass_report "sequential (jobs=1)" (seq_elapsed, seq_stages, seq_snap);
  print_pass_report
    (Printf.sprintf "parallel (jobs=%d)" jobs)
    (par_elapsed, par_stages, par_snap);
  print_pass_report "no staticcheck (jobs=1)"
    (nos_elapsed, nos_stages, nos_snap);
  let identical = seq_fp = par_fp in
  if not identical then begin
    List.iter2
      (fun (id, s) (_, p) ->
        if s <> p then
          Printf.eprintf "DIVERGENCE on %s:\n-- sequential --\n%s\n-- parallel --\n%s\n"
            id s p)
      seq_fp par_fp;
    prerr_endline "parallel run diverged from sequential run"
  end;
  let static_identical = seq_fp = nos_fp in
  if not static_identical then begin
    List.iter2
      (fun (id, s) (_, n) ->
        if s <> n then
          Printf.eprintf
            "DIVERGENCE on %s:\n-- staticcheck --\n%s\n-- no staticcheck --\n%s\n"
            id s n)
      seq_fp nos_fp;
    prerr_endline "static pruning changed the ranked output"
  end;
  let speedup seq par = if par > 0.0 then seq /. par else 0.0 in
  let trace_speedup =
    speedup
      (stage_total "pipeline.trace" seq_stages)
      (stage_total "pipeline.trace" par_stages)
  in
  let elapsed_speedup = speedup seq_elapsed par_elapsed in
  Printf.printf
    "\nspeedup (sequential/parallel): trace %.2fx, elapsed %.2fx; ranked outputs %s\n"
    trace_speedup elapsed_speedup
    (if identical then "identical" else "DIVERGED");
  let pruned = Telemetry.find_counter seq_snap "staticcheck.pruned" in
  let diags = Telemetry.find_counter seq_snap "staticcheck.diagnostics" in
  let runs_static = Telemetry.find_counter seq_snap "interp.runs" in
  let runs_nostatic = Telemetry.find_counter nos_snap "interp.runs" in
  (* The run counts are deterministic and are the real payoff metric;
     the wall times are best-of-3 warm re-measurements.  (A previous
     revision subtracted the two single-pass totals, which reported a
     negative "saving" — the no-staticcheck pass ran third, after every
     cache had warmed up.) *)
  let _, _, static_stages3, _ =
    best_pass (fun () -> pipeline_pass ?pool:None type_ids)
  in
  let _, _, nostatic_stages3, _ =
    best_pass (fun () -> pipeline_pass ?pool:None ~staticcheck:false type_ids)
  in
  let trace_static3 = stage_total "pipeline.trace" static_stages3 in
  let trace_nostatic3 = stage_total "pipeline.trace" nostatic_stages3 in
  Printf.printf
    "staticcheck: %d candidates pruned, %d diagnostics; interp runs %d -> %d, \
     trace best-of-3 %.1fms -> %.1fms; ranked outputs %s\n"
    pruned diags runs_nostatic runs_static (1e3 *. trace_nostatic3)
    (1e3 *. trace_static3)
    (if static_identical then "identical" else "DIVERGED");
  (* Engine comparison (DESIGN.md §14): the same sequential pass under
     the tree-walking oracle and the bytecode VM must produce
     byte-identical ranked output with identical step accounting — the
     engines differ only in wall-clock.  Best-of-3 per engine. *)
  let with_engine on f =
    let prev = Minilang.Interp.vm_enabled () in
    Minilang.Interp.set_vm_enabled on;
    Fun.protect ~finally:(fun () -> Minilang.Interp.set_vm_enabled prev) f
  in
  let tw_fp, _, tw_stages, tw_snap =
    with_engine false (fun () ->
        best_pass (fun () -> pipeline_pass ?pool:None type_ids))
  in
  let vm_fp, _, vm_stages, vm_snap =
    with_engine true (fun () ->
        best_pass (fun () -> pipeline_pass ?pool:None type_ids))
  in
  let vm_identical = tw_fp = vm_fp in
  if not vm_identical then begin
    List.iter2
      (fun (id, t) (_, v) ->
        if t <> v then
          Printf.eprintf "DIVERGENCE on %s:\n-- tree --\n%s\n-- vm --\n%s\n" id
            t v)
      tw_fp vm_fp;
    prerr_endline "bytecode VM diverged from the tree-walking oracle"
  end;
  let tw_trace = stage_total "pipeline.trace" tw_stages in
  let vm_trace = stage_total "pipeline.trace" vm_stages in
  let tw_steps = Telemetry.find_counter tw_snap "interp.steps" in
  let vm_steps = Telemetry.find_counter vm_snap "interp.steps" in
  let steps_identical = tw_steps = vm_steps in
  let vm_trace_speedup = speedup tw_trace vm_trace in
  let per_sec steps s = if s > 0.0 then float_of_int steps /. s else 0.0 in
  let compile_s =
    float_of_int (Telemetry.find_counter seq_snap "vm.compile_ns") /. 1e9
  in
  Printf.printf
    "vm: trace best-of-3 %.1fms (tree) vs %.1fms (vm), %.1fx; %.2fM vs \
     %.2fM steps/s; steps %s; ranked outputs %s\n"
    (1e3 *. tw_trace) (1e3 *. vm_trace) vm_trace_speedup
    (per_sec tw_steps tw_trace /. 1e6)
    (per_sec vm_steps vm_trace /. 1e6)
    (if steps_identical then "identical" else "DIVERGED")
    (if vm_identical then "identical" else "DIVERGED");
  print_serve_report serve;
  (* Serving must never touch the pipeline's search/analyze stages,
     must cut interpreter work by at least an order of magnitude (to
     zero when every model compiled), the compiled fast path must
     actually fire with verdicts byte-identical to the interpreter and
     a strictly cheaper tail, the streaming sketch must agree with the
     nearest-rank tail, and the always-on flight recorder must stay
     under its overhead budget. *)
  let serve_ok =
    serve.sv_parity
    && serve.sv_warm_search_spans = 0
    && serve.sv_warm_analyze_spans = 0
    && (serve.sv_warm_runs = 0
        || serve.sv_cold_runs >= 10 * serve.sv_warm_runs)
    && serve.sv_fastpath_hits > 0
    && serve.sv_routes_identical
    && serve.sv_fast_p99_ms < serve.sv_interp_p99_ms
    && serve.sv_sketch_ok
    && serve.sv_flight_ok
  in
  if not serve_ok then
    prerr_endline
      "serve pass failed its invariants (parity / zero pipeline spans / \
       >=10x fewer interpreter runs / fast path fired with identical \
       verdicts and a cheaper p99 / sketch within 5% / flight overhead \
       under 10%)";
  let json =
    jv_to_string
      (J_obj
         [ ("types", J_list (List.map (fun id -> J_str id) type_ids));
           ("jobs", J_int jobs);
           ("recommended_domains", J_int recommended);
           ("sequential", pass_json (seq_elapsed, seq_stages, seq_snap));
           ("parallel", pass_json (par_elapsed, par_stages, par_snap));
           ("nostatic", pass_json (nos_elapsed, nos_stages, nos_snap));
           ("trace_speedup", J_float trace_speedup);
           ("elapsed_speedup", J_float elapsed_speedup);
           ("ranked_identical", J_bool identical);
           ( "staticcheck",
             J_obj
               [ ("pruned", J_int pruned);
                 ("diagnostics", J_int diags);
                 ("interp_runs_static", J_int runs_static);
                 ("interp_runs_nostatic", J_int runs_nostatic);
                 ("interp_runs_avoided", J_int (runs_nostatic - runs_static));
                 ("trace_s_static_best3", J_float trace_static3);
                 ("trace_s_nostatic_best3", J_float trace_nostatic3);
                 ("ranked_identical", J_bool static_identical) ] );
           ( "vm",
             J_obj
               [ ("trace_s_tree_best3", J_float tw_trace);
                 ("trace_s_vm_best3", J_float vm_trace);
                 ("trace_speedup", J_float vm_trace_speedup);
                 ("steps_per_sec_tree", J_float (per_sec tw_steps tw_trace));
                 ("steps_per_sec_vm", J_float (per_sec vm_steps vm_trace));
                 ("interp_steps_tree", J_int tw_steps);
                 ("interp_steps_vm", J_int vm_steps);
                 ("steps_identical", J_bool steps_identical);
                 ("compiles", J_int (Telemetry.find_counter seq_snap "vm.compiles"));
                 ("compile_s", J_float compile_s);
                 ( "compile_cache_hits",
                   J_int (Telemetry.find_counter vm_snap "vm.compile_cache_hits") );
                 ( "scope_cache_hits",
                   J_int
                     (Telemetry.find_counter vm_snap "driver.scope_cache_hits") );
                 ("ranked_identical", J_bool vm_identical) ] );
           ("serve", serve_json serve) ])
    ^ "\n"
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc json;
  close_out oc;
  (* The warm-pass metrics snapshot doubles as the exposition fixture:
     `autotype stats --snapshot BENCH_telemetry.json --prom --lint` is
     the CI check that the Prometheus surface stays well-formed. *)
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc (serve.sv_warm_snapshot_json ^ "\n");
  close_out oc;
  Printf.printf
    "wrote BENCH_pipeline.json + BENCH_telemetry.json (%d types, seq %.1fs \
     / par %.1fs)\n"
    (List.length type_ids) seq_elapsed par_elapsed;
  if
    not
      (identical && static_identical && serve_ok && vm_identical
     && steps_identical)
  then exit 1

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let subtypes () =
  section "Section 8.1: sub-type test cases (per-format and mixed)";
  let results = Eval.Subtypes.run_all () in
  let rows =
    List.map
      (fun ((c : Eval.Subtypes.case), (r : Eval.Benchmark.type_result)) ->
        let graded =
          Option.value
            (List.assoc_opt Autotype_core.Ranking.DNF_S r.Eval.Benchmark.per_method)
            ~default:[]
        in
        let rels = List.map (fun g -> g.Eval.Benchmark.relevance) graded in
        [ c.Eval.Subtypes.case_id; c.Eval.Subtypes.description;
          pct (Eval.Metrics.precision_at_k rels 1);
          pct (Eval.Metrics.precision_at_k rels 3);
          (match r.Eval.Benchmark.strategy with
           | Some s -> Autotype_core.Negative.strategy_to_string s
           | None -> "-") ])
      results
  in
  print_table [ "case"; "format"; "P@1"; "P@3"; "strategy" ] rows

let targets : (string * (unit -> unit)) list =
  [ ("fig8a", fig8a); ("fig8b", fig8b); ("fig8c", fig8c); ("fig9", fig9);
    ("coverage", coverage); ("fig10a", fig10a); ("fig10b", fig10b);
    ("fig10c", fig10c); ("fig11", fig11); ("table2", table2);
    ("table3", table3); ("fig12", fig12); ("fig13", fig13); ("fig14", fig14);
    ("sec83", sec83); ("subtypes", subtypes); ("ablation", ablation);
    ("micro", micro); ("pipeline", pipeline_bench);
    ("serve", serve_daemon_bench) ]

let () =
  let args =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a -> a <> "--")
  in
  let set_jobs s =
    match int_of_string_opt s with
    | Some n -> bench_jobs := n
    | None ->
      Printf.eprintf "--jobs expects an integer, got %S\n" s;
      exit 1
  in
  let rec strip_jobs acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest -> set_jobs n; strip_jobs acc rest
    | [ "--jobs" ] ->
      prerr_endline "--jobs expects an argument";
      exit 1
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
      set_jobs (String.sub a 7 (String.length a - 7));
      strip_jobs acc rest
    | a :: rest -> strip_jobs (a :: acc) rest
  in
  let requested = strip_jobs [] args in
  let requested = if requested = [] then [ "all" ] else requested in
  let to_run =
    if List.mem "all" requested then List.map fst targets
    else requested
  in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown target %s; available: %s\n" name
          (String.concat " " (List.map fst targets));
        exit 1)
    to_run
