(** Command-line interface for AutoType.

    - [autotype synth --query "credit card" --examples ex.txt]
      synthesizes type-detection functions from a keyword and a file of
      positive examples (one per line);
    - [autotype synth --type credit-card] uses a benchmark type's
      generated examples instead;
    - [autotype compile --type credit-card --out models/] synthesizes
      once and persists the top-1 validator as a self-contained model
      artifact in a registry directory (compile/serve split);
    - [autotype validate --type credit-card VALUE ...] checks values
      with the synthesized top-1 function; with [--model FILE] it serves
      a compiled artifact instead of re-running the pipeline;
    - [autotype detect --column file.txt] reads one column of values and
      reports which benchmark types match; with [--models DIR] it serves
      every compiled model in the registry instead of re-synthesizing;
    - [autotype serve --models DIR] runs the persistent serving daemon:
      framed JSONL requests (validate/detect/stats/health/shutdown) over
      stdio or [--socket PATH], with per-cycle admission control and
      same-type request batching (DESIGN.md §15);
    - [autotype lint] runs the static analyzer over corpus MiniScript
      sources ([--repo NAME], [--query KW], or the whole corpus;
      [--strict] exits non-zero on errors);
    - [autotype types] lists the 112-type benchmark registry;
    - [autotype transforms --type credit-card] prints harvested semantic
      transformations. *)

open Cmdliner

(* File ingestion lives in Serve.Ingest, shared with the daemon:
   [read_examples] trims and drops blank lines (an examples file),
   [read_column] preserves empty lines as real values (a data column),
   [read_file] closes its channel on every path and turns truncation
   into [Error] instead of an escaped [End_of_file]. *)

(* ------------------------------ telemetry --------------------------- *)

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Print a table of telemetry counters and histograms after \
                 the command.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record stage spans and write them to $(docv) as JSON \
                 Lines (one object per span).")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Trace candidates on $(docv) domains (0 = auto, capped at \
                 the machine's recommended domain count; 1 = sequential). \
                 Results are identical at any job count.")

(** Resolve [--jobs] and run [f] with a pool when N > 1.  [None] keeps
    the sequential path free of any pool machinery. *)
let with_jobs jobs f =
  let jobs = if jobs <= 0 then Exec.default_jobs () else jobs in
  if jobs = 1 then f None
  else Exec.Pool.with_pool ~jobs (fun pool -> f (Some pool))

(** Run [f] with telemetry enabled when [--stats]/[--trace] ask for it,
    then print the metrics table and/or write the JSONL trace.  Every
    invocation runs under a fresh request context, so spans and flight
    events carry a trace id even when stats collection is off; a
    failing command triggers a flight-recorder dump (when a dump path
    is configured). *)
let with_telemetry ~stats ~trace_file f =
  let wanted = stats || trace_file <> None in
  if wanted then Telemetry.enable ();
  let ctx = Telemetry.Context.root () in
  let code = Telemetry.Context.with_context ctx f in
  if code <> 0 then Telemetry.Flight.trigger ~reason:"nonzero_exit";
  if wanted then begin
    Telemetry.disable ();
    (match trace_file with
     | Some path ->
       (match Telemetry.write_jsonl path with
        | Ok () ->
          Printf.printf "wrote %d spans to %s\n"
            (List.length (Telemetry.spans ())) path
        | Error msg -> Printf.eprintf "cannot write trace: %s\n" msg)
     | None -> ());
    if stats then begin
      print_newline ();
      Printf.printf "trace-id: %s\n" (Telemetry.Context.trace_id_hex ctx);
      (* A model fast-path run records no spans at all; say so instead
         of printing a silent empty summary. *)
      if Telemetry.spans () = [] then print_endline "no spans recorded";
      print_string (Telemetry.render_metrics (Telemetry.snapshot ()))
    end
  end;
  code

(** One-line per-stage wall-clock summary of a synthesize run. *)
let print_stage_summary () =
  let stage name =
    match Telemetry.total_ns name with
    | 0L -> None
    | ns ->
      let short =
        match String.rindex_opt name '.' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      Some (Printf.sprintf "%s %s" short (Telemetry.format_ns ns))
  in
  let parts =
    List.filter_map stage
      [ "pipeline.search"; "pipeline.analyze"; "pipeline.staticcheck";
        "pipeline.probe"; "pipeline.negatives"; "pipeline.trace";
        "pipeline.rank" ]
  in
  if parts <> [] then
    Printf.printf "stages: %s\n" (String.concat " | " parts)
  else if Telemetry.spans () = [] then
    (* Model fast-path (or nothing ran): make the absence explicit
       rather than silently printing no summary at all. *)
    print_endline "stages: no spans recorded"

let positives_for ~type_id ~examples_file ~query =
  match (examples_file, type_id) with
  | Some path, _ ->
    (match Serve.Ingest.read_examples path with
     | Ok lines -> Ok (lines, Option.value query ~default:"data value")
     | Error msg -> Error (Printf.sprintf "cannot read %s: %s" path msg))
  | None, Some id ->
    (match Semtypes.Registry.find id with
     | Some ty ->
       Ok
         ( Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty,
           Option.value query ~default:ty.Semtypes.Registry.name )
     | None -> Error (Printf.sprintf "unknown benchmark type %S" id))
  | None, None -> Error "provide --examples FILE or --type ID"

let synthesize_outcome ?pool ~type_id ~examples_file ~query () =
  match positives_for ~type_id ~examples_file ~query with
  | Error e -> Error e
  | Ok (positives, q) ->
    if positives = [] then Error "no positive examples"
    else
      Ok
        (Autotype_core.Pipeline.synthesize ?pool
           ~index:(Corpus.search_index ()) ~query:q ~positives ())

(** Per-run serve-path summary printed under [--stats]. *)
let print_serve_summary () =
  let snap = Telemetry.snapshot () in
  let c name = Telemetry.find_counter snap name in
  Printf.printf
    "serve: %d model loads (%d failed), cache %d hits / %d misses\n"
    (c "model.loads") (c "model.load_failures") (c "serve.cache_hits")
    (c "serve.cache_misses")

(* ------------------------------- synth ----------------------------- *)

let type_arg =
  Arg.(value & opt (some string) None
       & info [ "t"; "type" ] ~docv:"ID" ~doc:"Benchmark type id (see $(b,types)).")

let examples_arg =
  Arg.(value & opt (some file) None
       & info [ "e"; "examples" ] ~docv:"FILE"
           ~doc:"File with positive examples, one per line.")

let query_arg =
  Arg.(value & opt (some string) None
       & info [ "q"; "query" ] ~docv:"KEYWORD" ~doc:"Search keyword for the type.")

let top_arg =
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"Show the top N functions.")

let synth_cmd =
  let run type_id examples_file query top stats trace_file jobs =
    with_telemetry ~stats ~trace_file @@ fun () ->
    with_jobs jobs @@ fun pool ->
    match synthesize_outcome ?pool ~type_id ~examples_file ~query () with
    | Error e -> prerr_endline e; 1
    | Ok outcome ->
      Printf.printf "searched %d repositories, %d candidate functions\n"
        outcome.Autotype_core.Pipeline.repos_searched
        outcome.Autotype_core.Pipeline.candidates_tried;
      if Telemetry.enabled () then print_stage_summary ();
      (match outcome.Autotype_core.Pipeline.strategy_used with
       | Some s ->
         Printf.printf "negatives: mutation strategy %s\n"
           (Autotype_core.Negative.strategy_to_string s)
       | None -> print_endline "negatives: no strategy separated P from N");
      List.iteri
        (fun i (r : Autotype_core.Ranking.ranked) ->
          if i < top then begin
            Printf.printf "%d. %s\n" (i + 1)
              (Repolib.Candidate.describe
                 r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate);
            Printf.printf "   DNF: %s\n"
              (Autotype_core.Dnf.to_string r.Autotype_core.Ranking.dnf)
          end)
        outcome.Autotype_core.Pipeline.ranked;
      0
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize type-detection functions")
    Term.(const run $ type_arg $ examples_arg $ query_arg $ top_arg
          $ stats_arg $ trace_arg $ jobs_arg)

(* ------------------------------ compile ---------------------------- *)

let types_all_arg =
  Arg.(value & opt_all string []
       & info [ "t"; "type" ] ~docv:"ID"
           ~doc:"Benchmark type id to compile (repeatable).")

let out_arg =
  Arg.(value & opt string "models"
       & info [ "o"; "out" ] ~docv:"DIR"
           ~doc:"Model registry directory to write artifacts into \
                 (created if missing).")

let compile_one ?pool registry ~type_id ~examples_file ~query () =
  match positives_for ~type_id ~examples_file ~query with
  | Error e -> Error e
  | Ok ([], _) -> Error "no positive examples"
  | Ok (positives, q) ->
    let compiled =
      Autotype_core.Pipeline.compile ?pool ~index:(Corpus.search_index ())
        ~query:q ~positives ()
    in
    (match Model.Artifact.of_compiled compiled with
     | None ->
       Error
         (Printf.sprintf "no function synthesized for %S — nothing to compile"
            q)
     | Some artifact ->
       let artifact =
         match type_id with
         | Some id -> Model.Artifact.with_type_id id artifact
         | None -> artifact
       in
       (match Model.Registry.save registry artifact with
        | Error msg -> Error msg
        | Ok path ->
          let o = compiled.Autotype_core.Pipeline.c_outcome in
          let dnf = artifact.Model.Artifact.dnf in
          Printf.printf
            "compiled %-14s -> %s\n\
            \  function: %s\n\
            \  coverage: %d/%d positives, %d/%d negatives (strategy %s)\n"
            (Model.Artifact.key artifact) path
            (Repolib.Candidate.describe artifact.Model.Artifact.candidate)
            dnf.Autotype_core.Dnf.cov_p dnf.Autotype_core.Dnf.n_pos
            dnf.Autotype_core.Dnf.cov_n dnf.Autotype_core.Dnf.n_neg
            (match o.Autotype_core.Pipeline.strategy_used with
             | Some s -> Autotype_core.Negative.strategy_to_string s
             | None -> "-");
          Ok ()))

let compile_cmd =
  let run type_ids examples_file query out stats trace_file jobs =
    with_telemetry ~stats ~trace_file @@ fun () ->
    with_jobs jobs @@ fun pool ->
    match Model.Registry.create_dir out with
    | Error msg -> Printf.eprintf "cannot open registry: %s\n" msg; 1
    | Ok registry ->
      let targets =
        match (type_ids, examples_file) with
        | [], None -> Error "provide --type ID (repeatable) or --examples FILE"
        | [], Some _ -> Ok [ None ]
        | ids, None -> Ok (List.map (fun id -> Some id) ids)
        | _ :: _, Some _ -> Error "--type and --examples are exclusive"
      in
      (match targets with
       | Error e -> prerr_endline e; 1
       | Ok targets ->
         let code =
           List.fold_left
             (fun code type_id ->
               match
                 compile_one ?pool registry ~type_id ~examples_file ~query ()
               with
               | Ok () -> code
               | Error e -> prerr_endline e; 1)
             0 targets
         in
         if code = 0 then
           Printf.printf "registry %s now serves %d model(s)\n"
             (Model.Registry.dir registry)
             (List.length (Model.Registry.keys registry));
         if Telemetry.enabled () then print_stage_summary ();
         code)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Synthesize once and persist model artifacts for serving")
    Term.(const run $ types_all_arg $ examples_arg $ query_arg $ out_arg
          $ stats_arg $ trace_arg $ jobs_arg)

(* ------------------------------ validate --------------------------- *)

let values_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"VALUE")

let model_arg =
  Arg.(value & opt (some string) None
       & info [ "m"; "model" ] ~docv:"FILE"
           ~doc:"Serve a compiled model artifact instead of re-running \
                 the synthesis pipeline.")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Wall-clock budget for the whole request, measured from \
                 when serving starts.  Once it passes, remaining work \
                 degrades gracefully instead of running.")

let value_budget_arg =
  Arg.(value & opt (some float) None
       & info [ "value-budget-ms" ] ~docv:"MS"
           ~doc:"Wall-clock budget for validating a single value.  A \
                 value that exceeds it reports DEADLINE and the batch \
                 continues.")

(** Print VALID/invalid per value.  Unbudgeted callers get the exact
    historical output; with budgets, a value cut by its own budget
    prints DEADLINE and a batch-deadline cut skips the tail — the
    request still exits 0 (degradation, not failure).  Verdicts come
    from {!Tablecorpus.Detect.serve_values}, the same routine the
    serving daemon answers with, so the two paths cannot diverge. *)
let validate_values ?value_budget_ms ?deadline_ms syn values =
  Printf.printf "using %s\n"
    (Repolib.Candidate.describe syn.Autotype_core.Synthesis.candidate);
  let budgets = Tablecorpus.Detect.budgets ?value_budget_ms ?deadline_ms () in
  let verdicts = Tablecorpus.Detect.serve_values ~budgets syn values in
  List.iter2
    (fun v verdict ->
      match verdict with
      | Tablecorpus.Detect.V_skipped ->
        Printf.printf "%-30s SKIPPED (batch deadline)\n" v
      | _ ->
        Printf.printf "%-30s %s\n" v
          (Tablecorpus.Detect.value_verdict_to_string verdict))
    values verdicts;
  0

let validate_cmd =
  let run type_id examples_file query model values deadline_ms value_budget_ms
      stats trace_file jobs =
    with_telemetry ~stats ~trace_file @@ fun () ->
    match model with
    | Some path ->
      (* Serve path: the artifact is self-contained — never fall back
         to a pipeline re-run on a bad file; report exactly why. *)
      (match Model.Artifact.load path with
       | Error e ->
         Printf.eprintf "%s: %s\n" path (Model.Artifact.load_error_to_string e);
         1
       | Ok artifact ->
         Printf.printf "model %s (query %S, format v%d)\n"
           (Model.Artifact.key artifact)
           artifact.Model.Artifact.provenance.Model.Artifact.query
           Model.Artifact.format_version;
         let code =
           validate_values ?value_budget_ms ?deadline_ms
             (Model.Artifact.to_synthesis artifact) values
         in
         if Telemetry.enabled () then print_serve_summary ();
         code)
    | None ->
      with_jobs jobs @@ fun pool ->
      (match synthesize_outcome ?pool ~type_id ~examples_file ~query () with
       | Error e -> prerr_endline e; 1
       | Ok outcome ->
         (match Autotype_core.Pipeline.best outcome with
          | None -> prerr_endline "no function synthesized"; 1
          | Some syn -> validate_values ?value_budget_ms ?deadline_ms syn values))
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate values with a synthesized function")
    Term.(const run $ type_arg $ examples_arg $ query_arg $ model_arg
          $ values_arg $ deadline_arg $ value_budget_arg $ stats_arg
          $ trace_arg $ jobs_arg)

(* ------------------------------- detect ---------------------------- *)

let column_arg =
  Arg.(required & opt (some file) None
       & info [ "column" ] ~docv:"FILE" ~doc:"File with one column value per line.")

let models_arg =
  Arg.(value & opt (some string) None
       & info [ "models" ] ~docv:"DIR"
           ~doc:"Serve compiled model artifacts from this registry \
                 directory instead of re-synthesizing each type.")

(** The served entries for every model in a registry; [Error] (the
    load-error string) as soon as any artifact is bad — the serve path
    must never silently re-run the pipeline. *)
let served_entries registry =
  List.fold_left
    (fun acc key ->
      match acc with
      | Error _ as e -> e
      | Ok entries ->
        (match Model.Registry.find registry key with
         | Error e -> Error (Model.Artifact.load_error_to_string e)
         | Ok entry -> Ok (entry :: entries)))
    (Ok []) (Model.Registry.keys registry)

(** Budget-aware registry scan: each model's column verdict comes from
    {!Tablecorpus.Detect.serve_column}, so a slow value is cut by its
    own budget and a passed batch deadline degrades the remaining
    models instead of failing the request. *)
let scan_with_budgets ~budgets entries values =
  let verdicts =
    List.map
      (fun (entry : Model.Registry.entry) ->
        ( Model.Artifact.key entry.Model.Registry.artifact,
          Tablecorpus.Detect.serve_column ~budgets
            entry.Model.Registry.synthesis values ))
      entries
  in
  let hits =
    List.filter_map
      (function
        | id, Tablecorpus.Detect.Column_match frac -> Some (id, frac)
        | _ -> None)
      verdicts
  in
  let degraded =
    List.filter_map
      (function
        | id, Tablecorpus.Detect.Column_degraded { seen; accepted; total } ->
          Some (id, seen, accepted, total)
        | _ -> None)
      verdicts
  in
  (hits, degraded)

let report_hits hits =
  Telemetry.incr (Telemetry.counter "detect.columns_scanned");
  match hits with
  | [] -> print_endline "no rich semantic type detected"
  | hits ->
    Telemetry.incr (Telemetry.counter "detect.columns_detected");
    List.iter
      (fun (id, frac) ->
        Printf.printf "detected type %s (%.0f%% of values pass)\n" id
          (100.0 *. frac))
      hits

let scan_with_detectors detectors values =
  List.filter_map
    (fun (det : Tablecorpus.Detect.detector) ->
      let frac =
        Tablecorpus.Detect.fraction_accepted det.Tablecorpus.Detect.accepts
          values
      in
      if frac > Tablecorpus.Detect.detection_threshold then
        Some (det.Tablecorpus.Detect.type_id, frac)
      else None)
    detectors

let detect_cmd =
  let run column models deadline_ms value_budget_ms stats trace_file jobs =
    with_telemetry ~stats ~trace_file @@ fun () ->
    (* A column is data, not formatting: empty lines are real (empty)
       values and count in the detection denominator. *)
    match Serve.Ingest.read_column column with
    | Error msg ->
      Printf.eprintf "cannot read %s: %s\n" column msg;
      1
    | Ok [] -> prerr_endline "empty column"; 1
    | Ok values -> begin
      match models with
      | Some dir -> begin
        (* Serve path: every detector comes from a compiled artifact;
           any bad artifact is a hard error, never a pipeline re-run. *)
        match Model.Registry.open_dir dir with
        | Error msg ->
          Printf.eprintf "cannot open registry %s: %s\n" dir msg;
          1
        | Ok registry ->
          (match served_entries registry with
           | Error msg ->
             Printf.eprintf "cannot serve from %s: %s\n" dir msg;
             1
           | Ok entries ->
             Printf.printf
               "column of %d values; serving %d compiled model(s)...\n"
               (List.length values) (List.length entries);
             (match (deadline_ms, value_budget_ms) with
              | None, None ->
                (* Unbudgeted: the exact historical scan and output. *)
                report_hits
                  (scan_with_detectors
                     (List.map Tablecorpus.Detect.serve_detector entries)
                     values)
              | _ ->
                let budgets =
                  Tablecorpus.Detect.budgets ?value_budget_ms ?deadline_ms ()
                in
                let hits, degraded =
                  scan_with_budgets ~budgets entries values
                in
                report_hits hits;
                List.iter
                  (fun (id, seen, accepted, total) ->
                    Printf.printf
                      "type %s: degraded (deadline after %d/%d values, %d \
                       accepted)\n"
                      id seen total accepted)
                  degraded);
             if Telemetry.enabled () then print_serve_summary ();
             0)
      end
      | None ->
        with_jobs jobs @@ fun pool ->
        Printf.printf "column of %d values; scanning %d popular types...\n"
          (List.length values)
          (List.length Semtypes.Registry.popular);
        let detectors =
          List.map
            (fun (ty : Semtypes.Registry.t) ->
              Tablecorpus.Detect.dnf_detector ?pool ty)
            Semtypes.Registry.popular
        in
        report_hits (scan_with_detectors detectors values);
        0
    end
  in
  Cmd.v (Cmd.info "detect" ~doc:"Detect the semantic type of a column")
    Term.(const run $ column_arg $ models_arg $ deadline_arg
          $ value_budget_arg $ stats_arg $ trace_arg $ jobs_arg)

(* -------------------------------- stats ---------------------------- *)

(** Decode a snapshot dumped by [Telemetry.Expose.render_json] (the
    format BENCH_telemetry.json and [--snapshot] files use). *)
let snapshot_of_json (j : Model.Jsonx.t) : Telemetry.snapshot =
  let obj = function
    | Model.Jsonx.Obj kvs -> kvs
    | _ -> raise (Model.Jsonx.Decode_error "expected a JSON object")
  in
  let section name decode =
    match Model.Jsonx.member_opt name j with
    | None -> []
    | Some o -> List.map (fun (k, v) -> (k, decode v)) (obj o)
  in
  let f name v = Model.Jsonx.to_float (Model.Jsonx.member name v) in
  let i name v = Model.Jsonx.to_int (Model.Jsonx.member name v) in
  {
    Telemetry.counters = section "counters" Model.Jsonx.to_int;
    histograms =
      section "histograms" (fun v ->
          {
            Telemetry.h_count = i "count" v;
            h_sum = f "sum" v;
            h_min = f "min" v;
            h_max = f "max" v;
            h_mean = f "mean" v;
            h_p50 = f "p50" v;
            h_p95 = f "p95" v;
            h_p99 = f "p99" v;
          });
    rates =
      section "rates" (fun v ->
          {
            Telemetry.rt_count = i "count" v;
            rt_per_s = f "per_s" v;
            rt_window_s = f "window_s" v;
          });
  }

let snapshot_arg =
  Arg.(value & opt (some file) None
       & info [ "snapshot" ] ~docv:"FILE"
           ~doc:"Read metrics from a JSON snapshot file (as written by \
                 the bench harness) instead of the live registry.")

let prom_arg =
  Arg.(value & flag
       & info [ "prom" ]
           ~doc:"Render the Prometheus text exposition format.")

let json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Render deterministic JSON (sorted keys, fixed floats).")

let lint_flag_arg =
  Arg.(value & flag
       & info [ "lint" ]
           ~doc:"Lint the Prometheus exposition (metric names, \
                 HELP/TYPE, duplicate families); exit non-zero on \
                 malformed metrics.")

let watch_arg =
  Arg.(value & flag
       & info [ "watch" ]
           ~doc:"Redraw the requested view every interval until \
                 interrupted.")

let interval_arg =
  Arg.(value & opt float 2.0
       & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Refresh period for $(b,--watch).")

let stats_cmd =
  let run snapshot_file prom json lint watch interval =
    if prom && json then begin
      prerr_endline "--prom and --json are exclusive";
      2
    end
    else if watch && not (Float.is_finite interval && interval > 0.0) then begin
      Printf.eprintf "--interval must be a positive number of seconds (got %g)\n"
        interval;
      2
    end
    else begin
      let load () : (Telemetry.snapshot, string) result =
        match snapshot_file with
        | None -> Ok (Telemetry.snapshot ())
        | Some path ->
          (* Serve.Ingest.read_file: the channel is closed on every
             path and a snapshot truncated by a concurrent rewrite
             (the --watch race) comes back as Error, not an escaped
             End_of_file. *)
          (match Serve.Ingest.read_file path with
           | Error msg -> Error (Printf.sprintf "cannot read %s: %s" path msg)
           | Ok text ->
             (match Model.Jsonx.parse text with
              | Error msg ->
                Error (Printf.sprintf "%s: malformed JSON: %s" path msg)
              | Ok j ->
                (try Ok (snapshot_of_json j) with
                 | Model.Jsonx.Decode_error msg ->
                   Error
                     (Printf.sprintf "%s: not a metrics snapshot: %s" path
                        msg))))
      in
      let render_once () =
        match load () with
        | Error msg -> prerr_endline msg; 1
        | Ok snap ->
          let prom_text () = Telemetry.Expose.render_prometheus snap in
          if prom then print_string (prom_text ())
          else if json then print_endline (Telemetry.Expose.render_json snap)
          else begin
            let table = Telemetry.render_metrics snap in
            if table = "" then print_endline "no metrics recorded"
            else print_string table
          end;
          if lint then begin
            match Telemetry.Expose.lint (prom_text ()) with
            | Ok n ->
              Printf.eprintf "exposition OK: %d well-formed families\n" n;
              0
            | Error msgs ->
              List.iter
                (fun m -> Printf.eprintf "exposition lint: %s\n" m)
                msgs;
              1
          end
          else 0
      in
      if not watch then render_once ()
      else begin
        (* Interruptible watch: SIGINT stops the loop cleanly and the
           worst render's exit code — accumulated across iterations —
           actually reaches the shell instead of dying with the
           process. *)
        let stop = ref false in
        let prev =
          Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
        in
        Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint prev)
        @@ fun () ->
        let rec loop code =
          if !stop then code
          else begin
            (* Clear screen + home, like a minimal [watch(1)]. *)
            print_string "\027[2J\027[H";
            let code' = render_once () in
            flush stdout;
            (try Unix.sleepf interval
             with Unix.Unix_error (Unix.EINTR, _, _) -> ());
            loop (max code code')
          end
        in
        loop 0
      end
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Show telemetry metrics (live registry or a snapshot file)")
    Term.(const run $ snapshot_arg $ prom_arg $ json_arg $ lint_flag_arg
          $ watch_arg $ interval_arg)

(* -------------------------------- serve ---------------------------- *)

let serve_models_arg =
  Arg.(required & opt (some string) None
       & info [ "models" ] ~docv:"DIR"
           ~doc:"Model registry directory to serve compiled artifacts \
                 from.")

let socket_path_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix domain socket at $(docv) (any number \
                 of concurrent connections).  Without it the daemon \
                 speaks the protocol on stdin/stdout.")

let stdio_flag_arg =
  Arg.(value & flag
       & info [ "stdio" ]
           ~doc:"Serve one connection on stdin/stdout (the default; \
                 exclusive with $(b,--socket)).")

let max_inflight_arg =
  Arg.(value & opt int Serve.Daemon.default_max_inflight
       & info [ "max-inflight" ] ~docv:"K"
           ~doc:"Admission budget: at most $(docv) requests are \
                 admitted per drain cycle, the rest are answered \
                 $(i,overloaded) instead of queueing.")

let serve_cmd =
  let run models socket stdio max_inflight stats trace_file jobs =
    with_telemetry ~stats ~trace_file @@ fun () ->
    if socket <> None && stdio then begin
      prerr_endline "--socket and --stdio are exclusive";
      2
    end
    else if max_inflight < 1 then begin
      Printf.eprintf "--max-inflight must be at least 1 (got %d)\n"
        max_inflight;
      2
    end
    else
      match Model.Registry.open_dir models with
      | Error msg -> Printf.eprintf "cannot open registry: %s\n" msg; 1
      | Ok registry ->
        with_jobs jobs @@ fun pool ->
        let cfg = Serve.Daemon.config ?pool ~max_inflight registry in
        (* All diagnostics go to stderr: in stdio mode stdout is the
           protocol channel. *)
        let models_n = List.length (Model.Registry.keys registry) in
        let served, rejected =
          match socket with
          | Some path ->
            Printf.eprintf "serving %d model(s) on %s\n%!" models_n path;
            Serve.Daemon.run_socket cfg ~path
          | None ->
            Printf.eprintf "serving %d model(s) on stdio\n%!" models_n;
            Serve.Daemon.run_fds cfg ~in_fd:Unix.stdin ~out_fd:Unix.stdout
        in
        Printf.eprintf "daemon exit: %d request(s) served, %d rejected\n%!"
          served rejected;
        0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent serving daemon (framed JSONL over stdio \
             or a Unix socket)")
    Term.(const run $ serve_models_arg $ socket_path_arg $ stdio_flag_arg
          $ max_inflight_arg $ stats_arg $ trace_arg $ jobs_arg)

(* -------------------------------- lint ----------------------------- *)

let lint_repo_arg =
  Arg.(value & opt (some string) None
       & info [ "repo" ] ~docv:"NAME"
           ~doc:"Lint only the corpus repository named $(docv).")

let all_corpus_arg =
  Arg.(value & flag
       & info [ "all-corpus" ]
           ~doc:"Lint every repository in the corpus (the default when \
                 neither $(b,--repo) nor $(b,--query) is given).")

let strict_arg =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Exit non-zero when any error-severity diagnostic is found.")

let lint_json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit machine-readable diagnostics as one JSON object \
                 (per-repo diagnostic lists with file, line, code, \
                 severity, message, plus summary counts).")

let lint_verbose_arg =
  Arg.(value & flag
       & info [ "verbose" ]
           ~doc:"Also report abstract-interpretation facts (purity, step \
                 bound, symbolic summary) for every candidate function.")

(** JSON shape for one diagnostic: the fields a CI annotator needs. *)
let json_of_diag (d : Staticcheck.Diag.t) : Model.Jsonx.t =
  Model.Jsonx.Obj
    [ ("file", Model.Jsonx.Str d.Staticcheck.Diag.site.Minilang.Ast.file);
      ("line", Model.Jsonx.Int d.Staticcheck.Diag.site.Minilang.Ast.line);
      ("code", Model.Jsonx.Str d.Staticcheck.Diag.code);
      ("severity",
       Model.Jsonx.Str
         (Staticcheck.Diag.severity_to_string d.Staticcheck.Diag.severity));
      ("message", Model.Jsonx.Str d.Staticcheck.Diag.message) ]

(** Absint facts of one candidate, shared by the JSON and text paths. *)
let candidate_facts (c : Repolib.Candidate.t) =
  let facts = Repolib.Analyzer.absint_facts c in
  let summary =
    Option.map
      (fun s -> Absint.Domain.tree_size s)
      facts.Absint.Domain.summary
  in
  ( c.Repolib.Candidate.func_name,
    c.Repolib.Candidate.file,
    facts.Absint.Domain.pure,
    Absint.Domain.bound_to_string facts.Absint.Domain.bound,
    summary )

let json_of_candidate_facts c : Model.Jsonx.t =
  let func, file, pure, bound, summary = candidate_facts c in
  Model.Jsonx.Obj
    [ ("func", Model.Jsonx.Str func);
      ("file", Model.Jsonx.Str file);
      ("pure", Model.Jsonx.Bool pure);
      ("step_bound", Model.Jsonx.Str bound);
      ("summary",
       (match summary with
        | Some nodes ->
          Model.Jsonx.Obj [ ("tree_nodes", Model.Jsonx.Int nodes) ]
        | None -> Model.Jsonx.Null)) ]

let lint_cmd =
  let run repo_name query all_corpus strict json verbose =
    ignore all_corpus;
    let repos =
      match (repo_name, query) with
      | Some name, _ ->
        (match
           List.find_opt
             (fun (r : Repolib.Repo.t) -> r.Repolib.Repo.repo_name = name)
             Corpus.all_repos
         with
         | Some r -> Ok [ r ]
         | None -> Error (Printf.sprintf "no corpus repository named %S" name))
      | None, Some q ->
        Ok (Repolib.Search.search (Corpus.search_index ()) ~k:40 q)
      | None, None -> Ok Corpus.all_repos
    in
    match repos with
    | Error e -> prerr_endline e; 1
    | Ok repos ->
      let errors = ref 0 and warnings = ref 0 and dirty = ref 0 in
      let count ds =
        if ds <> [] then incr dirty;
        List.iter
          (fun d ->
            if Staticcheck.Diag.is_error d then incr errors else incr warnings)
          ds
      in
      if json then begin
        let repo_objs =
          List.map
            (fun (r : Repolib.Repo.t) ->
              let ds = Repolib.Analyzer.repo_diagnostics r in
              count ds;
              let fields =
                [ ("repo", Model.Jsonx.Str r.Repolib.Repo.repo_name);
                  ("diagnostics",
                   Model.Jsonx.List (List.map json_of_diag ds)) ]
              in
              let fields =
                if not verbose then fields
                else
                  fields
                  @ [ ("candidates",
                       Model.Jsonx.List
                         (List.map json_of_candidate_facts
                            (Repolib.Analyzer.candidates_of_repo r))) ]
              in
              Model.Jsonx.Obj fields)
            repos
        in
        print_endline
          (Model.Jsonx.to_string
             (Model.Jsonx.Obj
                [ ("repos", Model.Jsonx.List repo_objs);
                  ("repos_linted", Model.Jsonx.Int (List.length repos));
                  ("errors", Model.Jsonx.Int !errors);
                  ("warnings", Model.Jsonx.Int !warnings);
                  ("clean",
                   Model.Jsonx.Int (List.length repos - !dirty)) ]))
      end
      else begin
        List.iter
          (fun (r : Repolib.Repo.t) ->
            let ds = Repolib.Analyzer.repo_diagnostics r in
            count ds;
            let facts =
              if not verbose then []
              else
                List.map candidate_facts
                  (Repolib.Analyzer.candidates_of_repo r)
            in
            if ds <> [] || facts <> [] then begin
              Printf.printf "== %s ==\n" r.Repolib.Repo.repo_name;
              List.iter (fun d -> print_endline (Staticcheck.Diag.to_string d)) ds;
              List.iter
                (fun (func, file, pure, bound, summary) ->
                  Printf.printf "%s:%s pure=%b bound=[%s] summary=%s\n" file
                    func pure bound
                    (match summary with
                     | Some n -> Printf.sprintf "%d-node tree" n
                     | None -> "none"))
                facts
            end)
          repos;
        Printf.printf
          "%d repositories linted: %d errors, %d warnings (%d clean)\n"
          (List.length repos) !errors !warnings
          (List.length repos - !dirty)
      end;
      if strict && !errors > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static analyzer over corpus MiniScript sources")
    Term.(const run $ lint_repo_arg $ query_arg $ all_corpus_arg $ strict_arg
          $ lint_json_arg $ lint_verbose_arg)

(* -------------------------------- types ---------------------------- *)

let types_cmd =
  let run () =
    List.iter
      (fun (t : Semtypes.Registry.t) ->
        Printf.printf "%-18s %-42s %-14s %s%s\n" t.Semtypes.Registry.id
          t.Semtypes.Registry.name t.Semtypes.Registry.domain
          (Semtypes.Registry.coverage_to_string t.Semtypes.Registry.coverage)
          (if t.Semtypes.Registry.popular then "  [popular]" else ""))
      Semtypes.Registry.all_types;
    let covered, no_code, other, complex = Semtypes.Registry.coverage_counts () in
    Printf.printf
      "\n%d types: %d covered, %d no-code, %d other-language, %d complex-invocation\n"
      Semtypes.Registry.count covered no_code other complex;
    0
  in
  Cmd.v (Cmd.info "types" ~doc:"List the 112-type benchmark registry")
    Term.(const run $ const ())

(* ------------------------------ transforms ------------------------- *)

let transforms_cmd =
  let run type_id =
    match type_id with
    | None -> prerr_endline "--type required"; 1
    | Some id ->
      (match Semtypes.Registry.find id with
       | None -> Printf.eprintf "unknown type %s\n" id; 1
       | Some ty ->
         (match Eval.Experiments.transformations_for ty with
          | None -> print_endline "no function found"; 1
          | Some (func, positives, ts) ->
            Printf.printf "from %s\n" func;
            let table = Autotype_core.Transform.to_table positives ts in
            List.iter
              (fun row -> print_endline (String.concat " | " row))
              table;
            0))
  in
  Cmd.v
    (Cmd.info "transforms" ~doc:"Show semantic transformations for a type")
    Term.(const run $ type_arg)

let main_cmd =
  let info =
    Cmd.info "autotype" ~version:"1.0.0"
      ~doc:"Synthesize type-detection logic from open-source code"
  in
  Cmd.group info
    [ synth_cmd; compile_cmd; validate_cmd; detect_cmd; serve_cmd; stats_cmd;
      lint_cmd; types_cmd; transforms_cmd ]

let () = exit (Cmd.eval' main_cmd)
