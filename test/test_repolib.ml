(** Tests for the repository layer: candidate extraction (the invocation
    variants of Section 4.2 / Appendix D.1), the execution driver and
    the search engine. *)

let repo_of source ?(path = "m/mod.py") name =
  Repolib.Repo.make name ("test repo " ^ name)
    [ { Repolib.Repo.path; source } ]

let candidates_of source =
  Repolib.Analyzer.candidates_of_repo (repo_of source "t/candidates")

let invocations source =
  List.map (fun c -> c.Repolib.Candidate.invocation) (candidates_of source)

let test_variant_direct () =
  let inv = invocations "def f(s):\n    return len(s)\n" in
  Alcotest.(check bool) "direct" true (List.mem Repolib.Candidate.Direct inv)

let test_variant_class_then_method () =
  let src =
    {|
class P:
    def __init__(self):
        self.x = 0

    def handle(self, s):
        return len(s)
|}
  in
  match invocations src with
  | [ Repolib.Candidate.Class_then_method ("P", "handle") ] -> ()
  | _ -> Alcotest.fail "expected a=P(); a.handle(s)"

let test_variant_ctor_then_method () =
  let src =
    {|
class P:
    def __init__(self, s):
        self.s = s

    def size(self):
        return len(self.s)
|}
  in
  match invocations src with
  | [ Repolib.Candidate.Ctor_then_method ("P", "size") ] -> ()
  | _ -> Alcotest.fail "expected a=P(s); a.size()"

let test_variant_argv_stdin_file () =
  let src =
    {|
def from_args():
    return argv[1]

def from_console():
    return input()

def from_path(path):
    f = open(path)
    return f.read()
|}
  in
  let inv = invocations src in
  Alcotest.(check bool) "argv variant" true
    (List.mem (Repolib.Candidate.Via_argv "from_args") inv);
  Alcotest.(check bool) "stdin variant" true
    (List.mem (Repolib.Candidate.Via_stdin "from_console") inv);
  Alcotest.(check bool) "file variant" true
    (List.mem (Repolib.Candidate.Via_file "from_path") inv)

let test_variant_script_constant () =
  let src = "value = \"4111111111111111\"\nok = value.isdigit()\n" in
  let inv = invocations src in
  Alcotest.(check bool) "script var" true
    (List.exists
       (function Repolib.Candidate.Script_var (_, "value") -> true | _ -> false)
       inv)

let test_variant_multi_param () =
  let src = "def pair(a, b):\n    return a + b\n" in
  let inv = invocations src in
  Alcotest.(check bool) "comma split" true
    (List.exists
       (function Repolib.Candidate.Split_call (_, ',', 2) -> true | _ -> false)
       inv)

let test_default_params_ignored () =
  (* A function whose extra parameters all have defaults is
     single-parameter invocable. *)
  let src = "def f(s, strict=True):\n    return len(s)\n" in
  Alcotest.(check bool) "defaults ok" true
    (List.mem Repolib.Candidate.Direct (invocations src))

let test_driver_runs_variants () =
  let repo =
    Repolib.Repo.make "t/driver" "driver tests"
      [
        { Repolib.Repo.path = "d/lib.py";
          source =
            {|
def double(s):
    return s + s

class Wrap:
    def __init__(self):
        self.last = ""

    def keep(self, s):
        self.last = s
        return len(s)
|} };
        { Repolib.Repo.path = "d/script.py";
          source = "payload = \"abc\"\nsize = len(payload)\n" };
      ]
  in
  let cands = Repolib.Analyzer.candidates_of_repo repo in
  let find pred = List.find pred cands in
  let direct =
    find (fun c -> c.Repolib.Candidate.func_name = "double")
  in
  (match (Repolib.Driver.run_safe direct "xy").Minilang.Interp.outcome with
   | Minilang.Interp.Finished (Minilang.Value.Vstr "xyxy") -> ()
   | _ -> Alcotest.fail "direct run");
  let meth =
    find (fun c -> c.Repolib.Candidate.func_name = "Wrap.keep")
  in
  (match (Repolib.Driver.run_safe meth "hello").Minilang.Interp.outcome with
   | Minilang.Interp.Finished (Minilang.Value.Vint 5) -> ()
   | _ -> Alcotest.fail "class run");
  let script =
    find (fun c ->
        match c.Repolib.Candidate.invocation with
        | Repolib.Candidate.Script_var _ -> true
        | _ -> false)
  in
  (* The overridden constant flows through the script body. *)
  match (Repolib.Driver.run_safe script "wxyz").Minilang.Interp.outcome with
  | Minilang.Interp.Finished _ -> ()
  | _ -> Alcotest.fail "script run"

let test_driver_isolation () =
  (* Module state mutated by one run must not leak into the next. *)
  let repo =
    Repolib.Repo.make "t/isolation" "isolation"
      [
        { Repolib.Repo.path = "i/mod.py";
          source =
            {|
CACHE = []

def record(s):
    CACHE.append(s)
    return len(CACHE)
|} };
      ]
  in
  let c = List.hd (Repolib.Analyzer.candidates_of_repo repo) in
  let once () =
    match (Repolib.Driver.run_safe c "x").Minilang.Interp.outcome with
    | Minilang.Interp.Finished (Minilang.Value.Vint n) -> n
    | _ -> -1
  in
  Alcotest.(check int) "first run" 1 (once ());
  Alcotest.(check int) "second run starts fresh" 1 (once ())

let test_executable_probe () =
  (* The probe rejects candidates whose callable is missing (load-time
     failure), mirroring "compilable and executable". *)
  let repo =
    Repolib.Repo.make "t/broken" "broken"
      [
        { Repolib.Repo.path = "b/mod.py";
          source = "undefined_helper()\n\ndef ok(s):\n    return s\n" };
      ]
  in
  let cands = Repolib.Analyzer.candidates_of_repo repo in
  (* "ok" is still defined because definitions execute before the
     script error aborts the load? Definition order matters: the call
     precedes the def, so the def never executes. *)
  let ok = List.find (fun c -> c.Repolib.Candidate.func_name = "ok") cands in
  Alcotest.(check bool) "broken module's function is not executable" false
    (Repolib.Driver.executable ok ~probe:"x")

let test_search_ranking () =
  let repos =
    [
      Repolib.Repo.make "a/luhn-validator" "credit card number validation"
        [ { Repolib.Repo.path = "x.py"; source = "def f(s):\n    pass\n" } ];
      Repolib.Repo.make "b/weather" "weather station data logger"
        [ { Repolib.Repo.path = "y.py"; source = "def g(s):\n    pass\n" } ];
    ]
  in
  let index = Repolib.Search.build_index repos in
  (match Repolib.Search.search index ~k:5 "credit card" with
   | top :: _ ->
     Alcotest.(check string) "topical repo first" "a/luhn-validator"
       top.Repolib.Repo.repo_name
   | [] -> Alcotest.fail "no results");
  Alcotest.(check bool) "irrelevant query excludes the repo" true
    (Repolib.Search.search index ~k:5 "quantum chemistry"
     |> List.for_all (fun r -> r.Repolib.Repo.repo_name <> "a/luhn-validator"))

let test_search_stemming () =
  let repos =
    [
      Repolib.Repo.make "a/bic" "validation for payment messages"
        [ { Repolib.Repo.path = "x.py"; source = "def f(s):\n    pass\n" } ];
    ]
  in
  let index = Repolib.Search.build_index repos in
  match Repolib.Search.search index ~k:5 "payment message" with
  | top :: _ ->
    Alcotest.(check string) "plural stems match" "a/bic" top.Repolib.Repo.repo_name
  | [] -> Alcotest.fail "stemming failed"

let test_script_argv_variant () =
  let repo =
    Repolib.Repo.make "t/script-argv" "cli script"
      [
        { Repolib.Repo.path = "s/cli.py";
          source =
            "word = argv[1]\nif not word.isalpha():\n    raise ValueError(\"not a word\")\nprint(word)\n" };
      ]
  in
  let cands = Repolib.Analyzer.candidates_of_repo repo in
  let script_argv =
    List.find_opt
      (fun c ->
        match c.Repolib.Candidate.invocation with
        | Repolib.Candidate.Script_argv _ -> true
        | _ -> false)
      cands
  in
  match script_argv with
  | None -> Alcotest.fail "script argv candidate not extracted"
  | Some c ->
    (match (Repolib.Driver.run_safe c "hello").Minilang.Interp.outcome with
     | Minilang.Interp.Finished _ -> ()
     | _ -> Alcotest.fail "script argv accepts a word");
    (match (Repolib.Driver.run_safe c "42").Minilang.Interp.outcome with
     | Minilang.Interp.Errored ("ValueError", _) -> ()
     | _ -> Alcotest.fail "script argv rejects digits")

let test_config_with_hint_clamp () =
  let base = Repolib.Driver.default_config in
  let max_steps (c : Minilang.Interp.config) = c.Minilang.Interp.max_steps in
  Alcotest.(check int) "no hint: unchanged" (max_steps base)
    (max_steps (Repolib.Driver.config_with_hint base None));
  Alcotest.(check int) "hint below the cap: adopted" 7
    (max_steps (Repolib.Driver.config_with_hint base (Some 7)));
  Alcotest.(check int) "hint above the cap: unchanged" (max_steps base)
    (max_steps
       (Repolib.Driver.config_with_hint base (Some (max_steps base * 2))));
  (* Regression: a hint <= 0 passed the [budget < max_steps] guard and
     produced a config that could never execute a single step. *)
  Alcotest.(check int) "zero hint clamps to 1" 1
    (max_steps (Repolib.Driver.config_with_hint base (Some 0)));
  Alcotest.(check int) "negative hint clamps to 1" 1
    (max_steps (Repolib.Driver.config_with_hint base (Some (-5))))

let suite =
  [
    ("variant 1: direct", `Quick, test_variant_direct);
    ("variant 2: paramless ctor + method", `Quick, test_variant_class_then_method);
    ("variant 3: 1-param ctor + paramless method", `Quick,
     test_variant_ctor_then_method);
    ("variants 4-6: argv, stdin, file", `Quick, test_variant_argv_stdin_file);
    ("script hard-coded constant", `Quick, test_variant_script_constant);
    ("multi-parameter splitting", `Quick, test_variant_multi_param);
    ("default params", `Quick, test_default_params_ignored);
    ("driver runs all variants", `Quick, test_driver_runs_variants);
    ("driver isolates runs", `Quick, test_driver_isolation);
    ("executable probe", `Quick, test_executable_probe);
    ("search ranking", `Quick, test_search_ranking);
    ("search stemming", `Quick, test_search_stemming);
    ("script argv variant", `Quick, test_script_argv_variant);
    ("budget hint clamped to >= 1", `Quick, test_config_with_hint_clamp);
  ]
