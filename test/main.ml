let () =
  Alcotest.run "autotype"
    [ ("minilang", Test_minilang.suite);
      ("faults", Test_faults.suite);
      ("regexlite", Test_regexlite.suite);
      ("semtypes", Test_semtypes.suite);
      ("core", Test_core.suite);
      ("repolib", Test_repolib.suite);
      ("staticcheck", Test_staticcheck.suite);
      ("corpus", Test_corpus.suite);
      ("pipeline", Test_pipeline.suite);
      ("eval", Test_eval.suite);
      ("transform", Test_transform.suite);
      ("tablecorpus", Test_tablecorpus.suite);
      ("telemetry", Test_telemetry.suite);
      ("exec", Test_exec.suite);
      ("model", Test_model.suite);
      ("serve", Test_serve.suite);
      ("absint", Test_absint.suite);
      ("absint_fuzz", Test_absint_fuzz.suite);
      ("vm", Test_vm.suite) ]
