(** Tests for lib/absint: the proved facts (purity, step bounds,
    symbolic summaries) on fixture candidates, exact parity of compiled
    summaries with the concrete interpreter on truthiness edge cases,
    the min-law of [Driver.config_for] when the spin hint and the
    absint bound disagree, v2 artifact round-trips of the compiled
    summary, rejection of v1 artifacts, and the serving fast path with
    its oversize-value fallback. *)

let repo_of src =
  Repolib.Repo.make "test/absint-fixture" "fixture"
    [ { Repolib.Repo.path = "fix.py"; source = src } ]

let candidate_named repo name =
  match
    List.find_opt
      (fun (c : Repolib.Candidate.t) ->
        c.Repolib.Candidate.func_name = name
        && c.Repolib.Candidate.invocation = Repolib.Candidate.Direct)
      (Repolib.Analyzer.candidates_of_repo repo)
  with
  | Some c -> c
  | None -> Alcotest.failf "candidate %s not extracted" name

(* The universal summary check: for every input, the summary tree must
   route to a leaf whose event list is *verbatim* the trace the
   interpreter emits.  This is the must-soundness contract of
   DESIGN.md §13 — not "equivalent", identical. *)
let assert_summary_parity c inputs =
  let facts = Repolib.Analyzer.absint_facts c in
  let summary =
    match facts.Absint.Domain.summary with
    | Some t -> t
    | None ->
      Alcotest.failf "%s: expected a summary"
        c.Repolib.Candidate.func_name
  in
  List.iter
    (fun input ->
      let run = Repolib.Driver.run_safe c input in
      let pe = Absint.Domain.eval_tree summary input in
      let predicted = Absint.Domain.events_of_path pe in
      if predicted <> run.Minilang.Interp.trace then
        Alcotest.failf "%s on %S: summary predicted %d events, interp emitted %d"
          c.Repolib.Candidate.func_name input (List.length predicted)
          (List.length run.Minilang.Interp.trace))
    inputs

let test_regex_detector_facts () =
  let repo =
    repo_of
      {|def check(value):
    value = value.strip()
    value = value.lower()
    if re.match("[0-9]+", value):
        return True
    return False
|}
  in
  let c = candidate_named repo "check" in
  let facts = Repolib.Analyzer.absint_facts c in
  Alcotest.(check bool) "proven pure" true facts.Absint.Domain.pure;
  (match facts.Absint.Domain.bound with
   | Absint.Domain.Terminates { a; b } ->
     Alcotest.(check bool) "constant-ish bound" true (a >= 0 && b > 0)
   | other ->
     Alcotest.failf "expected Terminates, got %s"
       (Absint.Domain.bound_to_string other));
  assert_summary_parity c
    [ "12345"; "  42  "; "abc"; ""; " "; "12a"; "0"; String.make 300 '7' ]

let test_truthiness_edges () =
  (* re.match returning an *empty* prefix is a falsy Vstr "" in the
     interpreter; the compiled guard must agree.  Same for an empty
     fullmatch, the always-true empty-needle [in], and endswith on a
     shorter string. *)
  let repo =
    repo_of
      {|def empty_prefix(value):
    if re.match("x*", value):
        return True
    return False

def empty_full(value):
    if re.fullmatch("x*", value):
        return True
    return False

def needle(value):
    if "" in value:
        return len(value) > 2
    return False

def ends(value):
    value = value.rstrip()
    if value.endswith("xyz"):
        return True
    return False
|}
  in
  let inputs = [ ""; "x"; "xx"; "abc"; "xyz"; "wxyz  "; "y"; "xxxy" ] in
  List.iter
    (fun name -> assert_summary_parity (candidate_named repo name) inputs)
    [ "empty_prefix"; "empty_full"; "needle"; "ends" ]

let test_unknown_constructs_yield_unknown () =
  (* A candidate using a construct outside the proved fragment must get
     unknown facts, never a wrong one. *)
  let repo =
    repo_of
      {|def chatty(value):
    print(value)
    return True

def looper(value):
    total = 0
    for ch in value:
        total = total + ord(ch)
    return total % 7 == 0
|}
  in
  let facts = Repolib.Analyzer.absint_facts (candidate_named repo "chatty") in
  Alcotest.(check bool) "print is not pure" false facts.Absint.Domain.pure;
  let facts = Repolib.Analyzer.absint_facts (candidate_named repo "looper") in
  Alcotest.(check bool) "data loop has no summary" true
    (facts.Absint.Domain.summary = None)

(* Satellite: when the loop pass's spin hint and the absint bound
   disagree, the effective budget is their minimum. *)
let test_config_for_min_of_hints () =
  let repo =
    repo_of
      {|def spin(s):
    n = 0
    while True:
        pass
    return n
|}
  in
  let c = candidate_named repo "spin" in
  let facts = Repolib.Analyzer.absint_facts c in
  let absint_cost =
    match facts.Absint.Domain.bound with
    | Absint.Domain.Spins_after k -> k
    | other ->
      Alcotest.failf "expected Spins_after, got %s"
        (Absint.Domain.bound_to_string other)
  in
  (* The fixture is the conflicting case: the absint spin cost is far
     below the loop pass's blanket spin budget. *)
  Alcotest.(check bool) "hints really conflict" true
    (absint_cost < Staticcheck.Loops.spin_budget);
  let config = Repolib.Driver.config_for c in
  Alcotest.(check int) "effective budget is the min of the hints"
    (min absint_cost Staticcheck.Loops.spin_budget)
    config.Minilang.Interp.max_steps;
  (* Sound: the tiny budget still hits the limit, and the featurized
     literal set matches the full-budget run (the spin's repeated
     branch dedupes into one literal). *)
  let hinted = Repolib.Driver.run_safe ~config c "abc" in
  (match hinted.Minilang.Interp.outcome with
   | Minilang.Interp.Hit_limit _ -> ()
   | _ -> Alcotest.fail "spin run should hit the step limit");
  let full = Repolib.Driver.run_safe c "abc" in
  let feats r =
    Autotype_core.Feature.Literal_set.elements
      (Autotype_core.Feature.featurize r.Minilang.Interp.trace)
  in
  Alcotest.(check (list string)) "feature set unchanged under the min budget"
    (List.map Autotype_core.Feature.literal_to_string (feats full))
    (List.map Autotype_core.Feature.literal_to_string (feats hinted))

let test_terminating_bound_instantiates_with_len () =
  let repo =
    repo_of
      {|def flat(value):
    value = value.strip()
    if value.isdigit():
        return True
    return False
|}
  in
  let c = candidate_named repo "flat" in
  let facts = Repolib.Analyzer.absint_facts c in
  match facts.Absint.Domain.bound with
  | Absint.Domain.Terminates { a; b } ->
    let len = 12 in
    let config = Repolib.Driver.config_for ~input_len:len c in
    Alcotest.(check int) "a*len + b budget"
      (min ((a * len) + b)
         Repolib.Driver.default_config.Minilang.Interp.max_steps)
      config.Minilang.Interp.max_steps;
    (* And the bound is honest: a real run fits inside it. *)
    let run = Repolib.Driver.run_safe ~config c (String.make len '5') in
    (match run.Minilang.Interp.outcome with
     | Minilang.Interp.Finished _ -> ()
     | _ -> Alcotest.fail "terminating candidate must finish in budget")
  | other ->
    Alcotest.failf "expected Terminates, got %s"
      (Absint.Domain.bound_to_string other)

(* ------------------------- artifacts (v2) --------------------------- *)

let compiled_ipv4 = lazy (
  let ty = Semtypes.Registry.find_exn "ipv4" in
  let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
  Autotype_core.Pipeline.compile ~index:(Corpus.search_index ())
    ~query:ty.Semtypes.Registry.name ~positives ())

let artifact_ipv4 () =
  match Model.Artifact.of_compiled (Lazy.force compiled_ipv4) with
  | Some a -> Model.Artifact.with_type_id "ipv4" a
  | None -> Alcotest.fail "no function synthesized for ipv4"

let test_artifact_roundtrips_summary () =
  let artifact = artifact_ipv4 () in
  (match artifact.Model.Artifact.summary with
   | None -> Alcotest.fail "ipv4 winner should compile to a summary"
   | Some _ -> ());
  match Model.Artifact.decode (Model.Artifact.encode artifact) with
  | Error e ->
    Alcotest.fail
      ("decode(encode) failed: " ^ Model.Artifact.load_error_to_string e)
  | Ok decoded ->
    Alcotest.(check bool) "summary tree survives the round-trip" true
      (decoded.Model.Artifact.summary = artifact.Model.Artifact.summary)

let test_v1_artifact_rejected () =
  (* Satellite: the format-version bump is strict — a v1 header is
     rejected with Version_unsupported before the payload is touched. *)
  let bytes = Model.Artifact.encode (artifact_ipv4 ()) in
  let v_cur =
    Printf.sprintf "%s v%d " Model.Artifact.magic Model.Artifact.format_version
  in
  let v_old = Printf.sprintf "%s v1 " Model.Artifact.magic in
  if String.length bytes < String.length v_cur
     || String.sub bytes 0 (String.length v_cur) <> v_cur
  then Alcotest.fail "artifact header not in expected form";
  let downgraded =
    v_old
    ^ String.sub bytes (String.length v_cur)
        (String.length bytes - String.length v_cur)
  in
  match Model.Artifact.decode downgraded with
  | Error (Model.Artifact.Version_unsupported { found; supported }) ->
    Alcotest.(check int) "found v1" 1 found;
    Alcotest.(check int) "supports v2" Model.Artifact.format_version supported
  | Error e ->
    Alcotest.fail
      ("expected version-unsupported, got: "
      ^ Model.Artifact.load_error_to_string e)
  | Ok _ -> Alcotest.fail "v1 artifact must not load"

(* ------------------------- serving fast path ------------------------ *)

let test_serve_fastpath_and_fallback () =
  let artifact = artifact_ipv4 () in
  let entry =
    { Model.Registry.synthesis = Model.Artifact.to_synthesis artifact;
      artifact }
  in
  Telemetry.reset ();
  Telemetry.enable ();
  Telemetry.Flight.clear ();
  let det = Tablecorpus.Detect.serve_detector entry in
  Alcotest.(check bool) "accepts an ipv4" true
    (det.Tablecorpus.Detect.accepts "192.168.0.1");
  Alcotest.(check bool) "rejects junk" false
    (det.Tablecorpus.Detect.accepts "not an ip");
  (* An oversize value must fall back to the interpreter — verdict
     unchanged — and leave a flight-recorder event behind. *)
  let oversize =
    "192.168.0.1" ^ String.make (Tablecorpus.Detect.fastpath_max_len + 1) ' '
  in
  let interp_verdict =
    Autotype_core.Synthesis.validate entry.Model.Registry.synthesis oversize
  in
  Alcotest.(check bool) "fallback verdict matches the interpreter"
    interp_verdict
    (det.Tablecorpus.Detect.accepts oversize);
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "both in-range values took the fast path" 2
    (Telemetry.find_counter snap "serve.fastpath_hits");
  Alcotest.(check int) "the oversize value fell back" 1
    (Telemetry.find_counter snap "serve.fastpath_fallbacks");
  Alcotest.(check bool) "fallback left a flight event" true
    (List.exists
       (fun (e : Telemetry.Flight.event) -> e.Telemetry.Flight.f_kind = "fastpath_fallback")
       (Telemetry.Flight.events ()))

let test_serve_summary_parity_on_workload () =
  (* The compiled route and the interpreter route must agree verdict-
     for-verdict on the full acceptance workload. *)
  let artifact = artifact_ipv4 () in
  let syn = Model.Artifact.to_synthesis artifact in
  let tree =
    match artifact.Model.Artifact.summary with
    | Some t -> t
    | None -> Alcotest.fail "ipv4 winner should compile to a summary"
  in
  let prepared =
    match Absint.Domain.prepare tree with
    | Some p -> p
    | None -> Alcotest.fail "stored regex must prepare"
  in
  let ty = Semtypes.Registry.find_exn "ipv4" in
  let values =
    Semtypes.Registry.positive_examples ~n:30 ~seed:99 ty
    @ Eval.Benchmark.negative_test_pool ~n:100 ~seed:7 ty
    @ [ ""; " "; "0"; "null"; "255.255.255.255"; "256.1.1.1" ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "route parity on %S" v)
        (Autotype_core.Synthesis.validate syn v)
        (Absint.Domain.eval_prepared prepared v))
    values

let suite =
  [
    Alcotest.test_case "regex detector: pure, bounded, summarized" `Quick
      test_regex_detector_facts;
    Alcotest.test_case "summary parity on truthiness edges" `Quick
      test_truthiness_edges;
    Alcotest.test_case "unknown constructs yield unknown facts" `Quick
      test_unknown_constructs_yield_unknown;
    Alcotest.test_case "config_for takes the min of conflicting hints" `Quick
      test_config_for_min_of_hints;
    Alcotest.test_case "termination bound instantiates with input_len" `Quick
      test_terminating_bound_instantiates_with_len;
    Alcotest.test_case "v2 artifact round-trips the summary" `Slow
      test_artifact_roundtrips_summary;
    Alcotest.test_case "v1 artifact is rejected" `Slow
      test_v1_artifact_rejected;
    Alcotest.test_case "serve fast path hits and oversize fallback" `Slow
      test_serve_fastpath_and_fallback;
    Alcotest.test_case "serve route parity on the ipv4 workload" `Slow
      test_serve_summary_parity_on_workload;
  ]
