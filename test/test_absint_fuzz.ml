(** Differential fuzzing of lib/absint against the concrete interpreter
    (DESIGN.md §13).  Seeded random MiniScript detectors are analyzed,
    then every *claimed* fact is checked against real runs:

    - [pure] claims: no captured print output, and a second run is
      byte-identical (outcome, trace, steps used);
    - [Terminates {a; b}] claims: the run never hits the step limit,
      uses at most [a·len + b] steps, and re-running under exactly that
      budget reproduces the full-budget run;
    - [Spins_after k] claims: the run hits the limit, and a budget of
      exactly [k] yields the same traced events as the default budget;
    - summary claims: the summary tree routes the input to a leaf whose
      event list equals the concrete trace *verbatim*.

    Unsupported constructs may only weaken facts to unknown — a wrong
    fact on any of the generated programs is a suite failure. *)

let n_programs = 600

(* ----------------------- program generator ------------------------- *)

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let lit_pool = [| "a"; "b"; "x"; "xy"; "abc"; "0"; "-"; " "; "%" |]

let pat_pool =
  [| "[0-9]+"; "[a-z]*"; "x.y"; "abc"; "[0-9][0-9]"; "a+"; "[A-Za-z]+" |]

let chain_stmt rng =
  match Random.State.int rng 6 with
  | 0 -> "value = value.strip()"
  | 1 -> "value = value.lstrip()"
  | 2 -> "value = value.rstrip()"
  | 3 -> "value = value.lower()"
  | 4 -> "value = value.upper()"
  | _ ->
    Printf.sprintf "value = value.replace(%S, %S)" (pick rng lit_pool)
      (if Random.State.bool rng then "" else pick rng lit_pool)

let atom rng =
  match Random.State.int rng 10 with
  | 0 -> Printf.sprintf "re.match(%S, value)" (pick rng pat_pool)
  | 1 -> Printf.sprintf "re.fullmatch(%S, value)" (pick rng pat_pool)
  | 2 -> Printf.sprintf "re.search(%S, value)" (pick rng pat_pool)
  | 3 -> pick rng [| "value.isdigit()"; "value.isalpha()";
                    "value.isalnum()"; "value.isspace()" |]
  | 4 -> Printf.sprintf "value.startswith(%S)" (pick rng lit_pool)
  | 5 -> Printf.sprintf "value.endswith(%S)" (pick rng lit_pool)
  | 6 -> Printf.sprintf "value == %S" (pick rng lit_pool)
  | 7 -> Printf.sprintf "%S in value" (pick rng lit_pool)
  | 8 ->
    Printf.sprintf "len(value) %s %d"
      (pick rng [| "<"; "<="; ">"; ">="; "=="; "!=" |])
      (Random.State.int rng 6)
  | _ -> pick rng [| "True"; "False" |]

let guard rng =
  match Random.State.int rng 5 with
  | 0 -> Printf.sprintf "not (%s)" (atom rng)
  | 1 -> Printf.sprintf "(%s and %s)" (atom rng) (atom rng)
  | 2 -> Printf.sprintf "(%s or %s)" (atom rng) (atom rng)
  | _ -> atom rng

let leaf rng =
  pick rng
    [| "return True"; "return False"; "return len(value) > 2";
       "return value"; "return None"; "raise ValueError(\"bad\")" |]

let rec body buf rng ~indent ~depth =
  let pad = String.make indent ' ' in
  if depth = 0 || Random.State.int rng 3 = 0 then
    Buffer.add_string buf (pad ^ leaf rng ^ "\n")
  else begin
    Buffer.add_string buf (Printf.sprintf "%sif %s:\n" pad (guard rng));
    body buf rng ~indent:(indent + 4) ~depth:(depth - 1);
    if Random.State.bool rng then begin
      Buffer.add_string buf (pad ^ "else:\n");
      body buf rng ~indent:(indent + 4) ~depth:(depth - 1)
    end
    else if Random.State.bool rng then
      Buffer.add_string buf (pad ^ leaf rng ^ "\n")
    (* else: fall off the end (Rvoid return) on the false arm *)
  end

let gen_program rng =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "def f(value):\n";
  (* Occasional impurity, so pure=false claims get exercised too. *)
  if Random.State.int rng 7 = 0 then
    Buffer.add_string buf "    print(value)\n";
  (* Occasional local shadowing of the re module: the analyses must
     refuse to treat a string named [re] as the module. *)
  if Random.State.int rng 12 = 0 then
    Buffer.add_string buf "    re = value\n";
  for _ = 1 to Random.State.int rng 3 do
    Buffer.add_string buf ("    " ^ chain_stmt rng ^ "\n")
  done;
  (match Random.State.int rng 8 with
   | 0 ->
     (* constant-condition spin: Spins_after territory *)
     Buffer.add_string buf "    while True:\n        pass\n"
   | 1 ->
     (* data-dependent loop: outside the summarized fragment *)
     Buffer.add_string buf
       "    n = len(value)\n    while n > 0:\n        n = n - 1\n"
   | 2 ->
     Buffer.add_string buf
       "    total = 0\n    for ch in value:\n        total = total + 1\n"
   | _ -> ());
  body buf rng ~indent:4 ~depth:(1 + Random.State.int rng 3);
  (* Occasionally a second top-level def, which must disable the
     unique-entry gate rather than confuse it. *)
  if Random.State.int rng 10 = 0 then
    Buffer.add_string buf "\ndef f2(value):\n    return True\n";
  Buffer.contents buf

let gen_input rng =
  match Random.State.int rng 14 with
  | 0 -> ""
  | 1 -> " "
  | 2 -> "abc"
  | 3 -> "123"
  | 4 -> "12a"
  | 5 -> "  42  "
  | 6 -> "XYZ"
  | 7 -> "x.y"
  | 8 -> "a-b c"
  | 9 -> String.make 40 '9'
  | 10 -> "\t 12 \t"
  | 11 -> "xxy"
  | _ ->
    String.init
      (Random.State.int rng 12)
      (fun _ -> Char.chr (32 + Random.State.int rng 95))

(* --------------------------- the oracle ----------------------------- *)

let failures = ref []

let contradiction src input fmt =
  Printf.ksprintf
    (fun msg ->
      failures := Printf.sprintf "on input %S: %s\n--\n%s" input msg src
                  :: !failures)
    fmt

let shrunk_config max_steps =
  { Repolib.Driver.default_config with
    Minilang.Interp.max_steps = max max_steps 1 }

let check_input src (c : Repolib.Candidate.t)
    (facts : Absint.Domain.facts) input =
  let run = Repolib.Driver.run_safe c input in
  (if facts.Absint.Domain.pure then begin
     if run.Minilang.Interp.printed <> [] then
       contradiction src input "claimed pure but printed %d lines"
         (List.length run.Minilang.Interp.printed);
     let again = Repolib.Driver.run_safe c input in
     if
       again.Minilang.Interp.outcome <> run.Minilang.Interp.outcome
       || again.Minilang.Interp.trace <> run.Minilang.Interp.trace
       || again.Minilang.Interp.steps_used <> run.Minilang.Interp.steps_used
     then contradiction src input "claimed pure but reruns diverge"
   end);
  (match facts.Absint.Domain.bound with
   | Absint.Domain.Terminates { a; b } ->
     let budget = (a * String.length input) + b in
     (match run.Minilang.Interp.outcome with
      | Minilang.Interp.Hit_limit _ ->
        contradiction src input "claimed terminating but hit the step limit"
      | _ -> ());
     if run.Minilang.Interp.steps_used > budget then
       contradiction src input "claimed steps <= %d*len+%d = %d but used %d"
         a b budget run.Minilang.Interp.steps_used;
     let shrunk =
       Repolib.Driver.run_safe ~config:(shrunk_config budget) c input
     in
     if
       shrunk.Minilang.Interp.outcome <> run.Minilang.Interp.outcome
       || shrunk.Minilang.Interp.trace <> run.Minilang.Interp.trace
     then
       contradiction src input
         "run under the claimed budget %d diverges from the default run"
         budget
   | Absint.Domain.Spins_after k ->
     (match run.Minilang.Interp.outcome with
      | Minilang.Interp.Hit_limit _ -> ()
      | _ ->
        contradiction src input "claimed a spin but the run finished");
     let shrunk = Repolib.Driver.run_safe ~config:(shrunk_config k) c input in
     let feats r =
       Autotype_core.Feature.featurize r.Minilang.Interp.trace
     in
     (match shrunk.Minilang.Interp.outcome with
      | Minilang.Interp.Hit_limit _ ->
        if
          not
            (Autotype_core.Feature.Literal_set.equal (feats shrunk)
               (feats run))
        then
          contradiction src input
            "spin budget %d changes the featurized literal set" k
      | _ ->
        contradiction src input "claimed spin within %d steps but finished" k)
   | Absint.Domain.Bound_unknown -> ());
  match facts.Absint.Domain.summary with
  | None -> ()
  | Some tree -> (
    match Absint.Domain.eval_tree tree input with
    | pe ->
      if Absint.Domain.events_of_path pe <> run.Minilang.Interp.trace then
        contradiction src input "summary routes to the wrong event list"
    | exception Absint.Domain.Unpreparable ->
      contradiction src input "summary contains an unparseable regex")

let test_fuzz_parity () =
  let rng = Random.State.make [| 0xA551; 0x0F17 |] in
  let summarized = ref 0 and bounded = ref 0 and pure = ref 0 in
  for _ = 1 to n_programs do
    let src = gen_program rng in
    let repo =
      Repolib.Repo.make "fuzz/absint" "fuzz"
        [ { Repolib.Repo.path = "gen.py"; source = src } ]
    in
    let inputs = List.init 8 (fun _ -> gen_input rng) in
    List.iter
      (fun (c : Repolib.Candidate.t) ->
        if c.Repolib.Candidate.invocation = Repolib.Candidate.Direct then begin
          let facts = Repolib.Analyzer.absint_facts c in
          if facts.Absint.Domain.pure then incr pure;
          if facts.Absint.Domain.bound <> Absint.Domain.Bound_unknown then
            incr bounded;
          if facts.Absint.Domain.summary <> None then incr summarized;
          List.iter (check_input src c facts) inputs
        end)
      (Repolib.Analyzer.candidates_of_repo repo)
  done;
  (match !failures with
   | [] -> ()
   | fs ->
     Alcotest.failf "%d contradiction(s); first:\n%s" (List.length fs)
       (List.hd (List.rev fs)));
  (* The generator must actually exercise the analyses: a fuzz pass
     where nothing was ever proven would be vacuous. *)
  Alcotest.(check bool) "some candidates proven pure" true (!pure > 50);
  Alcotest.(check bool) "some candidates proven bounded" true (!bounded > 50);
  Alcotest.(check bool) "some candidates summarized" true (!summarized > 50)

let suite =
  [ Alcotest.test_case
      (Printf.sprintf "no abstract claim contradicted on %d programs"
         n_programs)
      `Slow test_fuzz_parity ]
