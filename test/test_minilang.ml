(** Unit tests for the MiniScript language substrate: lexer, parser,
    interpreter semantics, tracing and sandboxing. *)

open Minilang

let run_expr ?(setup = "") expr =
  let src = setup ^ "\nresult = " ^ expr ^ "\n" in
  let prog = Parser.parse ~file:"test.py" src in
  let scope, errs = Interp.load_module [ prog ] in
  (match errs with
   | [] -> ()
   | (_, e) :: _ -> Alcotest.failf "load error: %s" e);
  match Value.scope_lookup scope "result" with
  | Some v -> v
  | None -> Alcotest.fail "result not bound"

let check_expr ?setup name expected expr =
  let v = run_expr ?setup expr in
  Alcotest.(check string) name expected (Value.to_display_string v)

let run_function src fname args =
  let prog = Parser.parse ~file:"test.py" src in
  let scope, _ = Interp.load_module [ prog ] in
  let f = Option.get (Value.scope_lookup scope fname) in
  Interp.run_traced (fun ctx ->
      Interp.call_callable ctx f (List.map (fun s -> Value.Vstr s) args))

let test_arithmetic () =
  check_expr "add" "7" "3 + 4";
  check_expr "precedence" "14" "2 + 3 * 4";
  check_expr "floordiv" "3" "10 // 3";
  check_expr "neg floordiv" "-4" "-10 // 3";
  check_expr "mod" "1" "10 % 3";
  check_expr "python mod sign" "2" "-1 % 3";
  check_expr "pow" "1024" "2 ** 10";
  check_expr "float div" "2.5" "5 / 2";
  check_expr "xor" "6" "5 ^ 3";
  check_expr "shift" "40" "5 << 3";
  check_expr "unary minus" "-5" "-(2 + 3)"

let test_strings () =
  check_expr "concat" "ab" "\"a\" + \"b\"";
  check_expr "repeat" "ababab" "\"ab\" * 3";
  check_expr "index" "b" "\"abc\"[1]";
  check_expr "neg index" "c" "\"abc\"[-1]";
  check_expr "slice" "bc" "\"abcd\"[1:3]";
  check_expr "slice open" "cd" "\"abcd\"[2:]";
  check_expr "slice neg" "ab" "\"abcd\"[:-2]";
  check_expr "upper" "ABC" "\"abc\".upper()";
  check_expr "strip" "x" "\"  x \".strip()";
  check_expr "split len" "3" "len(\"a,b,c\".split(\",\"))";
  check_expr "replace" "xbc" "\"abc\".replace(\"a\", \"x\")";
  check_expr "find" "1" "\"abc\".find(\"bc\")";
  check_expr "find missing" "-1" "\"abc\".find(\"z\")";
  check_expr "startswith" "True" "\"abc\".startswith(\"ab\")";
  check_expr "isdigit" "True" "\"123\".isdigit()";
  check_expr "isdigit empty" "False" "\"\".isdigit()";
  check_expr "join" "a-b" "\"-\".join([\"a\", \"b\"])";
  check_expr "in" "True" "\"bc\" in \"abcd\"";
  check_expr "zfill" "007" "\"7\".zfill(3)";
  check_expr "count" "2" "\"abab\".count(\"ab\")";
  check_expr "ord" "65" "ord(\"A\")";
  check_expr "chr" "z" "chr(122)";
  check_expr "int parse" "42" "int(\" 42 \")";
  check_expr "int base16" "255" "int(\"ff\", 16)";
  check_expr "str of int" "42" "str(42)"

let test_collections () =
  check_expr "list literal" "3" "len([1, 2, 3])";
  check_expr "list index" "2" "[1, 2, 3][1]";
  check_expr "list concat" "4" "len([1, 2] + [3, 4])";
  check_expr "list in" "True" "2 in [1, 2, 3]";
  check_expr ~setup:"xs = [1, 2]\nxs.append(3)" "appended" "3" "len(xs)";
  check_expr ~setup:"xs = [3, 1, 2]\nxs.sort()" "sorted" "1" "xs[0]";
  check_expr "dict get" "1" "{\"a\": 1}[\"a\"]";
  check_expr "dict in" "True" "\"a\" in {\"a\": 1}";
  check_expr "dict get default" "9" "{}.get(\"x\", 9)";
  check_expr ~setup:"d = {}\nd[\"k\"] = 5" "dict set" "5" "d[\"k\"]";
  check_expr "dict keys" "1" "len({\"a\": 1}.keys())";
  check_expr "tuple" "2" "(1, 2)[1]";
  check_expr "sum" "6" "sum([1, 2, 3])";
  check_expr "max args" "7" "max(3, 7, 5)";
  check_expr "range" "5" "len(range(5))";
  check_expr "range two args" "3" "len(range(2, 5))";
  check_expr "sorted" "1" "sorted([2, 1, 3])[0]";
  check_expr "reversed string" "cba" "reversed(\"abc\")"

let test_control_flow () =
  let src =
    {|
def classify(n):
    n = int(n)
    if n < 0:
        return "neg"
    elif n == 0:
        return "zero"
    else:
        return "pos"

def loop_sum(s):
    total = 0
    for ch in s:
        if ch == "x":
            continue
        if ch == "!":
            break
        total = total + int(ch)
    return total

def while_count(s):
    i = 0
    while i < len(s):
        i = i + 1
    return i
|}
  in
  let out fname arg =
    match (run_function src fname [ arg ]).Interp.outcome with
    | Interp.Finished v -> Value.to_display_string v
    | Interp.Errored (k, m) -> Printf.sprintf "ERR %s %s" k m
    | Interp.Hit_limit m -> "LIMIT " ^ m
    | Interp.Deadline_exceeded m -> "DEADLINE " ^ m
  in
  Alcotest.(check string) "neg" "neg" (out "classify" "-3");
  Alcotest.(check string) "zero" "zero" (out "classify" "0");
  Alcotest.(check string) "pos" "pos" (out "classify" "17");
  Alcotest.(check string) "continue" "6" (out "loop_sum" "1x2x3");
  Alcotest.(check string) "break" "3" (out "loop_sum" "12!99");
  Alcotest.(check string) "while" "4" (out "while_count" "abcd")

let test_exceptions () =
  let src =
    {|
def risky(s):
    try:
        return int(s)
    except ValueError:
        return -1

def reraise(s):
    try:
        return int(s)
    except KeyError:
        return -1

def with_finally(s):
    log = []
    try:
        v = int(s)
        log.append("ok")
    except ValueError:
        log.append("err")
    finally:
        log.append("done")
    return len(log)

def custom(s):
    if len(s) == 0:
        raise ValueError("empty input")
    return s
|}
  in
  let run fname arg = (run_function src fname [ arg ]).Interp.outcome in
  (match run "risky" "12" with
   | Interp.Finished (Value.Vint 12) -> ()
   | _ -> Alcotest.fail "risky 12");
  (match run "risky" "abc" with
   | Interp.Finished (Value.Vint (-1)) -> ()
   | _ -> Alcotest.fail "ValueError caught");
  (match run "reraise" "abc" with
   | Interp.Errored ("ValueError", _) -> ()
   | _ -> Alcotest.fail "KeyError filter must not catch ValueError");
  (match run "with_finally" "5" with
   | Interp.Finished (Value.Vint 2) -> ()
   | _ -> Alcotest.fail "finally runs");
  (match run "custom" "" with
   | Interp.Errored ("ValueError", msg) ->
     Alcotest.(check string) "message" "empty input" msg
   | _ -> Alcotest.fail "raise ValueError(msg)")

let test_classes () =
  let src =
    {|
class Counter:
    def __init__(self):
        self.total = 0

    def add(self, s):
        self.total = self.total + int(s)
        return self.total

class Box:
    def __init__(self, s):
        self.value = s

    def get(self):
        return self.value
|}
  in
  let prog = Parser.parse ~file:"cls.py" src in
  let scope, _ = Interp.load_module [ prog ] in
  let result =
    Interp.run_traced (fun ctx ->
        let cls = Option.get (Value.scope_lookup scope "Counter") in
        let o = Interp.call_callable ctx cls [] in
        ignore (Interp.call_method ctx o "add" [ Value.Vstr "3" ]
                  { Ast.file = "t"; line = 0 });
        Interp.call_method ctx o "add" [ Value.Vstr "4" ]
          { Ast.file = "t"; line = 0 })
  in
  (match result.Interp.outcome with
   | Interp.Finished (Value.Vint 7) -> ()
   | _ -> Alcotest.fail "stateful method calls");
  let result2 =
    Interp.run_traced (fun ctx ->
        let cls = Option.get (Value.scope_lookup scope "Box") in
        let o = Interp.call_callable ctx cls [ Value.Vstr "hi" ] in
        Interp.call_method ctx o "get" [] { Ast.file = "t"; line = 0 })
  in
  match result2.Interp.outcome with
  | Interp.Finished (Value.Vstr "hi") -> ()
  | _ -> Alcotest.fail "ctor with argument"

let test_tracing () =
  let src =
    {|
def check(s):
    if len(s) > 3:
        return True
    return False
|}
  in
  let r = run_function src "check" [ "abcdef" ] in
  let branches =
    List.filter_map
      (function Trace.Branch (site, taken) -> Some (site.Trace.s_line, taken) | _ -> None)
      r.Interp.trace
  in
  Alcotest.(check (list (pair int bool))) "branch on line 3 taken"
    [ (3, true) ] branches;
  let returns =
    List.filter_map
      (function Trace.Return (_, v) -> Some (Trace.ret_abstract_to_string v) | _ -> None)
      r.Interp.trace
  in
  Alcotest.(check (list string)) "returns True" [ "True" ] returns;
  let r2 = run_function src "check" [ "ab" ] in
  let branches2 =
    List.filter_map
      (function Trace.Branch (_, taken) -> Some taken | _ -> None)
      r2.Interp.trace
  in
  Alcotest.(check (list bool)) "branch not taken" [ false ] branches2

let test_inter_procedural_tracing () =
  let src =
    {|
def helper(s):
    if s.isdigit():
        return 1
    return 0

def outer(s):
    if helper(s) == 1:
        return "num"
    return "other"
|}
  in
  let r = run_function src "outer" [ "42" ] in
  let n_branches =
    List.length
      (List.filter (function Trace.Branch _ -> true | _ -> false) r.Interp.trace)
  in
  (* helper's branch and outer's branch are both recorded. *)
  Alcotest.(check int) "both branches traced" 2 n_branches

let test_sandbox_limits () =
  let src = {|
def spin(s):
    while True:
        s = s + "x"
|} in
  let r =
    let prog = Parser.parse ~file:"spin.py" src in
    let scope, _ = Interp.load_module [ prog ] in
    let f = Option.get (Value.scope_lookup scope "spin") in
    Interp.run_traced
      ~config:{ Interp.max_steps = 5_000; max_call_depth = 16 }
      (fun ctx -> Interp.call_callable ctx f [ Value.Vstr "a" ])
  in
  (match r.Interp.outcome with
   | Interp.Hit_limit _ -> ()
   | _ -> Alcotest.fail "infinite loop must hit the step budget");
  (* The step budget is not catchable by MiniScript try/except. *)
  let src2 =
    {|
def sneaky(s):
    try:
        while True:
            s = s + "x"
    except e:
        return "caught"
|}
  in
  let prog = Parser.parse ~file:"sneaky.py" src2 in
  let scope, _ = Interp.load_module [ prog ] in
  let f = Option.get (Value.scope_lookup scope "sneaky") in
  let r2 =
    Interp.run_traced
      ~config:{ Interp.max_steps = 5_000; max_call_depth = 16 }
      (fun ctx -> Interp.call_callable ctx f [ Value.Vstr "a" ])
  in
  match r2.Interp.outcome with
  | Interp.Hit_limit _ -> ()
  | _ -> Alcotest.fail "sandbox limit must not be catchable"

let test_recursion_limit () =
  let src = {|
def rec(s):
    return rec(s + "x")
|} in
  let prog = Parser.parse ~file:"rec.py" src in
  let scope, _ = Interp.load_module [ prog ] in
  let f = Option.get (Value.scope_lookup scope "rec") in
  let r =
    Interp.run_traced
      ~config:{ Interp.max_steps = 1_000_000; max_call_depth = 20 }
      (fun ctx -> Interp.call_callable ctx f [ Value.Vstr "a" ])
  in
  match r.Interp.outcome with
  | Interp.Hit_limit _ -> ()
  | _ -> Alcotest.fail "deep recursion must hit the call-depth cap"

let test_io_variants () =
  (* input(), sys.argv and open() feed the virtual input. *)
  let src =
    {|
def from_stdin():
    line = input()
    return len(line)

def from_argv():
    return argv[1]

def from_file(path):
    f = open(path)
    content = f.read()
    f.close()
    return content
|}
  in
  let prog = Parser.parse ~file:"io.py" src in
  let scope, _ = Interp.load_module [ prog ] in
  let call ?argv ?stdin_line ?virtual_files fname args =
    let f = Option.get (Value.scope_lookup scope fname) in
    (Interp.run_traced ?argv ?stdin_line ?virtual_files (fun ctx ->
         Interp.call_callable ctx f args)).Interp.outcome
  in
  (match call ~stdin_line:"hello" "from_stdin" [] with
   | Interp.Finished (Value.Vint 5) -> ()
   | _ -> Alcotest.fail "stdin variant");
  (match call ~argv:[ "prog"; "payload" ] "from_argv" [] with
   | Interp.Finished (Value.Vstr "payload") -> ()
   | _ -> Alcotest.fail "argv variant");
  match
    call
      ~virtual_files:[ ("f.txt", "data123") ]
      "from_file"
      [ Value.Vstr "f.txt" ]
  with
  | Interp.Finished (Value.Vstr "data123") -> ()
  | _ -> Alcotest.fail "file variant"

let test_parse_errors () =
  let bad = [ "def f(:\n    pass\n"; "if x\n    pass\n"; "x = (1,,2)\n" ] in
  List.iter
    (fun src ->
      match Parser.parse ~file:"bad.py" src with
      | _ -> Alcotest.failf "expected parse error for %S" src
      | exception Parser.Parse_error _ -> ()
      | exception Lexer.Lex_error _ -> ())
    bad

let test_indentation () =
  (* Nested blocks, blank lines and comments inside suites. *)
  let src =
    {|
def f(s):
    total = 0

    # a comment inside the suite
    for ch in s:
        if ch == "a":
            total = total + 1
        else:
            total = total + 10
    return total
|}
  in
  match (run_function src "f" [ "aba" ]).Interp.outcome with
  | Interp.Finished (Value.Vint 12) -> ()
  | _ -> Alcotest.fail "indentation with comments and blanks"

let run_function_opts ?config ?cancel ?deadline_ns src fname args =
  let prog = Parser.parse ~file:"test.py" src in
  let scope, _ = Interp.load_module [ prog ] in
  let f = Option.get (Value.scope_lookup scope fname) in
  Interp.run_traced ?config ?cancel ?deadline_ns (fun ctx ->
      Interp.call_callable ctx f (List.map (fun s -> Value.Vstr s) args))

let show_outcome = function
  | Interp.Finished v -> "FINISHED " ^ Value.to_display_string v
  | Interp.Errored (k, m) -> Printf.sprintf "ERR %s %s" k m
  | Interp.Hit_limit m -> "LIMIT " ^ m
  | Interp.Deadline_exceeded m -> "DEADLINE " ^ m

let loop_src = {|
def f(s):
    n = 0
    while n < 100:
        n = n + 1
    return n
|}

let test_cancellation () =
  (* A pre-cancelled token stops the run on its very first step. *)
  let tok = Interp.cancel_token () in
  Alcotest.(check bool) "fresh token not cancelled" false
    (Interp.cancel_requested tok);
  Interp.cancel tok;
  Alcotest.(check bool) "cancel is visible" true (Interp.cancel_requested tok);
  (match (run_function_opts ~cancel:tok loop_src "f" [ "x" ]).Interp.outcome
   with
   | Interp.Deadline_exceeded _ -> ()
   | o -> Alcotest.fail ("cancelled run must deadline, got " ^ show_outcome o));
  (* An untouched token changes nothing. *)
  let fresh = Interp.cancel_token () in
  match (run_function_opts ~cancel:fresh loop_src "f" [ "x" ]).Interp.outcome
  with
  | Interp.Finished (Value.Vint 100) -> ()
  | o -> Alcotest.fail ("uncancelled run must finish, got " ^ show_outcome o)

let test_cancellation_uncatchable () =
  (* MiniScript try/except must not swallow cancellation: a cancelled
     run can never report a normal (or caught) result. *)
  let src = {|
def f(s):
    try:
        n = 0
        while n < 100:
            n = n + 1
    except:
        return "caught"
    return "done"
|}
  in
  let tok = Interp.cancel_token () in
  Interp.cancel tok;
  match (run_function_opts ~cancel:tok src "f" [ "x" ]).Interp.outcome with
  | Interp.Deadline_exceeded _ -> ()
  | o ->
    Alcotest.fail ("except must not catch cancellation, got " ^ show_outcome o)

let test_deadline_vs_budget () =
  (* A deadline already in the past: Deadline_exceeded, not Hit_limit —
     the time bound and the work bound are distinct outcomes. *)
  let past = Int64.sub (Telemetry.now_ns ()) 1L in
  (match
     (run_function_opts ~deadline_ns:past loop_src "f" [ "x" ]).Interp.outcome
   with
   | Interp.Deadline_exceeded _ -> ()
   | o -> Alcotest.fail ("past deadline must deadline, got " ^ show_outcome o));
  (* A deadline a hair in the future still cuts the loop (via the
     amortized probe), and still reads as a deadline. *)
  let soon = Int64.add (Telemetry.now_ns ()) 1L in
  (match
     (run_function_opts ~deadline_ns:soon loop_src "f" [ "x" ]).Interp.outcome
   with
   | Interp.Deadline_exceeded _ -> ()
   | o -> Alcotest.fail ("1ns deadline must deadline, got " ^ show_outcome o));
  (* Step-budget exhaustion stays Hit_limit even when a (far) deadline
     is also set. *)
  let config = { Interp.default_config with Interp.max_steps = 50 } in
  let far = Int64.add (Telemetry.now_ns ()) 60_000_000_000L in
  (match
     (run_function_opts ~config ~deadline_ns:far loop_src "f" [ "x" ])
       .Interp.outcome
   with
   | Interp.Hit_limit _ -> ()
   | o -> Alcotest.fail ("budget exhaustion must limit, got " ^ show_outcome o));
  (* And a generous budget with no deadline finishes. *)
  match (run_function_opts loop_src "f" [ "x" ]).Interp.outcome with
  | Interp.Finished (Value.Vint 100) -> ()
  | o -> Alcotest.fail ("unbounded run must finish, got " ^ show_outcome o)

let test_fault_injection_hooks () =
  Fun.protect ~finally:(fun () -> Faults.set None) @@ fun () ->
  (* p_kill=1: every run dies with the FaultInjected error outcome. *)
  Faults.set (Some { Faults.default with Faults.p_kill = 1.0 });
  (match (run_function_opts loop_src "f" [ "x" ]).Interp.outcome with
   | Interp.Errored ("FaultInjected", _) -> ()
   | o -> Alcotest.fail ("killed run must error, got " ^ show_outcome o));
  (* A delay injected before the run drives it past its deadline: this
     is the acceptance scenario — an artificially delayed candidate
     yields Deadline_exceeded, not a hang and not budget exhaustion. *)
  Faults.set (Some { Faults.default with Faults.delay_ms = 5.0 });
  let deadline_ns = Int64.add (Telemetry.now_ns ()) 1_000_000L (* 1ms *) in
  (match
     (run_function_opts ~deadline_ns loop_src "f" [ "x" ]).Interp.outcome
   with
   | Interp.Deadline_exceeded _ -> ()
   | o -> Alcotest.fail ("delayed run must deadline, got " ^ show_outcome o));
  (* Injection off: the same run finishes normally. *)
  Faults.set None;
  match (run_function_opts loop_src "f" [ "x" ]).Interp.outcome with
  | Interp.Finished (Value.Vint 100) -> ()
  | o -> Alcotest.fail ("clean run must finish, got " ^ show_outcome o)

let prop_interp_deterministic =
  QCheck.Test.make ~count:50 ~name:"interpreter runs are deterministic"
    QCheck.(string_of_size (QCheck.Gen.int_bound 20))
    (fun input ->
      let src = {|
def f(s):
    n = 0
    for ch in s:
        if ch.isdigit():
            n = n + 1
    return n
|} in
      let r1 = run_function src "f" [ input ] in
      let r2 = run_function src "f" [ input ] in
      r1.Interp.trace = r2.Interp.trace
      && r1.Interp.outcome = r2.Interp.outcome)

let suite =
  [
    ("arithmetic", `Quick, test_arithmetic);
    ("strings", `Quick, test_strings);
    ("collections", `Quick, test_collections);
    ("control flow", `Quick, test_control_flow);
    ("exceptions", `Quick, test_exceptions);
    ("classes", `Quick, test_classes);
    ("tracing", `Quick, test_tracing);
    ("inter-procedural tracing", `Quick, test_inter_procedural_tracing);
    ("sandbox step budget", `Quick, test_sandbox_limits);
    ("recursion limit", `Quick, test_recursion_limit);
    ("io variants", `Quick, test_io_variants);
    ("parse errors", `Quick, test_parse_errors);
    ("indentation", `Quick, test_indentation);
    ("cooperative cancellation", `Quick, test_cancellation);
    ("cancellation uncatchable by try", `Quick, test_cancellation_uncatchable);
    ("deadline vs step budget", `Quick, test_deadline_vs_budget);
    ("fault injection hooks", `Quick, test_fault_injection_hooks);
    QCheck_alcotest.to_alcotest prop_interp_deterministic;
  ]
