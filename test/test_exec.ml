(** Tests of the execution engine (lib/exec): the fixed-size domain
    pool and its deterministic [parallel_map]. *)

(* A pure function heavy enough that domains genuinely interleave. *)
let heavy x =
  let acc = ref x in
  for i = 1 to 2_000 do
    acc := (!acc * 31 + i) mod 1_000_003
  done;
  !acc

let inputs n = List.init n (fun i -> i * 7 + 1)

let test_matches_sequential () =
  let xs = inputs 200 in
  let expected = List.map heavy xs in
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int))
        "parallel_map = List.map" expected
        (Exec.Pool.parallel_map pool heavy xs))

let test_repeatable_and_jobs_invariant () =
  let xs = inputs 157 in
  let seq = List.map heavy xs in
  List.iter
    (fun jobs ->
      Exec.Pool.with_pool ~jobs (fun pool ->
          for _ = 1 to 3 do
            Alcotest.(check (list int))
              (Printf.sprintf "jobs=%d run matches sequential" jobs)
              seq
              (Exec.Pool.parallel_map pool heavy xs)
          done))
    [ 1; 2; 3; 8 ]

let test_edge_sizes () =
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty list" []
        (Exec.Pool.parallel_map pool heavy []);
      Alcotest.(check (list int)) "singleton" [ heavy 42 ]
        (Exec.Pool.parallel_map pool heavy [ 42 ]);
      (* Fewer elements than workers. *)
      Alcotest.(check (list int)) "two elements"
        (List.map heavy [ 1; 2 ])
        (Exec.Pool.parallel_map pool heavy [ 1; 2 ]))

let test_exception_propagation () =
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      let f x = if x = 50 then failwith "boom" else heavy x in
      (match Exec.Pool.parallel_map pool f (inputs 100 |> List.mapi (fun i _ -> i)) with
       | _ -> Alcotest.fail "expected Failure"
       | exception Failure msg ->
         Alcotest.(check string) "exception payload" "boom" msg);
      (* The pool survives a failed map and keeps producing correct
         results. *)
      let xs = inputs 80 in
      Alcotest.(check (list int)) "pool reusable after failure"
        (List.map heavy xs)
        (Exec.Pool.parallel_map pool heavy xs))

let test_lowest_index_exception () =
  (* Sequential List.map surfaces the first failing element; the pool
     must do the same regardless of scheduling. *)
  let exception Boom of int in
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      let f x = if x mod 10 = 3 then raise (Boom x) else heavy x in
      for _ = 1 to 5 do
        match Exec.Pool.parallel_map pool f (List.init 120 Fun.id) with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom x ->
          Alcotest.(check int) "first failing element" 3 x
      done)

let test_exec_map_wrapper () =
  let xs = inputs 60 in
  Alcotest.(check (list int)) "map without pool = List.map"
    (List.map heavy xs)
    (Exec.map ?pool:None heavy xs);
  Exec.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "map with pool = List.map"
        (List.map heavy xs)
        (Exec.map ~pool heavy xs))

let test_default_jobs () =
  let j = Exec.default_jobs () in
  Alcotest.(check bool) "default_jobs in [1;8]" true (j >= 1 && j <= 8)

let test_shutdown_idempotent () =
  let pool = Exec.Pool.create ~jobs:3 in
  Alcotest.(check int) "jobs recorded" 3 (Exec.Pool.jobs pool);
  ignore (Exec.Pool.parallel_map pool heavy (inputs 10));
  Exec.Pool.shutdown pool;
  Exec.Pool.shutdown pool

let test_deadline_api () =
  let a = Exec.Deadline.after_ms 1_000.0 in
  let b = Exec.Deadline.after_ms 60_000.0 in
  Alcotest.(check bool) "future deadline not expired" false
    (Exec.Deadline.expired b);
  Alcotest.(check bool) "remaining positive" true
    (Exec.Deadline.remaining_ns b > 0L);
  (match Exec.Deadline.min_opt (Some a) (Some b) with
   | Some m ->
     Alcotest.(check bool) "min picks the earlier bound" true
       (Exec.Deadline.to_ns m = Exec.Deadline.to_ns a)
   | None -> Alcotest.fail "min of two bounds is a bound");
  (match Exec.Deadline.min_opt None (Some a) with
   | Some m ->
     Alcotest.(check bool) "None is unbounded" true
       (Exec.Deadline.to_ns m = Exec.Deadline.to_ns a)
   | None -> Alcotest.fail "one-sided min keeps the bound");
  Alcotest.(check bool) "min of unbounded is unbounded" true
    (Exec.Deadline.min_opt None None = None);
  let past = Exec.Deadline.at_ns (Int64.sub (Exec.Deadline.now_ns ()) 1L) in
  Alcotest.(check bool) "past deadline expired" true
    (Exec.Deadline.expired past);
  Alcotest.(check bool) "past remaining clamps to 0" true
    (Exec.Deadline.remaining_ns past = 0L);
  (* Negative input clamps to "now": already expired, never negative. *)
  Alcotest.(check bool) "negative ms expired" true
    (Exec.Deadline.expired (Exec.Deadline.after_ms (-5.0)))

let test_map_deadline () =
  let xs = inputs 20 in
  let far = Exec.Deadline.after_ms 60_000.0 in
  let f x = x * 2 in
  let fb x = -x in
  Telemetry.enable ();
  Telemetry.reset ();
  Alcotest.(check (list int)) "far deadline = plain map"
    (List.map f xs)
    (Exec.map_deadline ?pool:None ~deadline:far ~fallback:fb f xs);
  let expired = Exec.Deadline.after_ms 0.0 in
  Alcotest.(check (list int)) "expired deadline = fallback, order kept"
    (List.map fb xs)
    (Exec.map_deadline ?pool:None ~deadline:expired ~fallback:fb f xs);
  Exec.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "pooled far = plain map"
        (List.map f xs)
        (Exec.Pool.parallel_map_deadline pool ~deadline:far ~fallback:fb f xs);
      Alcotest.(check (list int)) "pooled expired = fallback, order kept"
        (List.map fb xs)
        (Exec.Pool.parallel_map_deadline pool ~deadline:expired ~fallback:fb f
           xs));
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  Alcotest.(check bool) "skipped dispatches counted" true
    (Telemetry.find_counter snap "exec.deadline_skipped" >= 2 * List.length xs)

let test_map_deadline_exception () =
  (* The lowest-index exception contract survives the deadline guard. *)
  let xs = inputs 10 in
  let far = Exec.Deadline.after_ms 60_000.0 in
  let f x = if x >= List.nth xs 3 then failwith (string_of_int x) else x in
  (match Exec.map_deadline ?pool:None ~deadline:far ~fallback:Fun.id f xs with
   | _ -> Alcotest.fail "sequential map must raise"
   | exception Failure m ->
     Alcotest.(check string) "sequential lowest failure"
       (string_of_int (List.nth xs 3)) m);
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      match
        Exec.Pool.parallel_map_deadline pool ~deadline:far ~fallback:Fun.id f
          xs
      with
      | _ -> Alcotest.fail "pooled map must raise"
      | exception Failure m ->
        Alcotest.(check string) "pooled lowest failure"
          (string_of_int (List.nth xs 3)) m)

let test_context_propagation () =
  (* A request context installed around parallel_map must reach the
     worker domains: every span recorded inside [f] carries the same
     trace id, whether the map runs inline (jobs=1) or fans out. *)
  let n = 64 in
  let run jobs =
    Telemetry.enable ();
    let ctx = Telemetry.Context.root () in
    Exec.Pool.with_pool ~jobs (fun pool ->
        Telemetry.Context.with_context ctx (fun () ->
            ignore
              (Exec.Pool.parallel_map pool
                 (fun x -> Telemetry.with_span "ctx-span" (fun () -> heavy x))
                 (inputs n))));
    Telemetry.disable ();
    let spans = Telemetry.spans_named "ctx-span" in
    Alcotest.(check int)
      (Printf.sprintf "jobs=%d: every element spanned" jobs)
      n (List.length spans);
    List.iter
      (fun (s : Telemetry.span) ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: span carries the request trace id" jobs)
          true
          (s.Telemetry.sp_trace_id = ctx.Telemetry.Context.trace_id))
      spans;
    (* The flight events emitted for those spans are attributed too. *)
    let span_events =
      List.filter
        (fun (e : Telemetry.Flight.event) ->
          e.Telemetry.Flight.f_kind = "span"
          && e.Telemetry.Flight.f_label = "ctx-span")
        (Telemetry.Flight.events ())
    in
    Alcotest.(check bool)
      (Printf.sprintf "jobs=%d: span flight events recorded" jobs)
      true
      (span_events <> []);
    List.iter
      (fun (e : Telemetry.Flight.event) ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: flight event carries the trace id" jobs)
          true
          (e.Telemetry.Flight.f_trace_id = ctx.Telemetry.Context.trace_id))
      span_events;
    Telemetry.reset ()
  in
  run 1;
  run 4

let suite =
  [
    ("parallel_map matches List.map", `Quick, test_matches_sequential);
    ("repeatable across runs and job counts", `Quick,
     test_repeatable_and_jobs_invariant);
    ("empty/singleton/small inputs", `Quick, test_edge_sizes);
    ("exception propagation + reuse", `Quick, test_exception_propagation);
    ("lowest-index exception wins", `Quick, test_lowest_index_exception);
    ("Exec.map wrapper", `Quick, test_exec_map_wrapper);
    ("default_jobs bounds", `Quick, test_default_jobs);
    ("shutdown is idempotent", `Quick, test_shutdown_idempotent);
    ("deadline arithmetic", `Quick, test_deadline_api);
    ("map_deadline degrades to fallback", `Quick, test_map_deadline);
    ("map_deadline exception contract", `Quick, test_map_deadline_exception);
    ("trace context reaches pool workers", `Quick, test_context_propagation);
  ]
