(** Tests of the serving layer (DESIGN.md §15): column/snapshot
    ingestion (the empty-line and truncated-read fixes), the framing
    codec, the protocol codec, and the daemon itself — round-trips over
    pipes and a Unix socket, verdict parity with the library serve
    path, and admission-control rejections. *)

module J = Model.Jsonx

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let fresh_path =
  let n = ref 0 in
  fun suffix ->
    incr n;
    let stamp = Filename.temp_file "autotype-serve" "" in
    Sys.remove stamp;
    Printf.sprintf "%s-%d%s" stamp !n suffix

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* ------------------------------ ingestion --------------------------- *)

let test_read_column_preserves_empties () =
  let path = fresh_path ".col" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_file path "1.2.3.4\n\n5.6.7.8\r\n\r\n  \n9.9.9.9";
  Telemetry.enable ();
  (match Serve.Ingest.read_column path with
   | Error m -> Alcotest.fail m
   | Ok values ->
     (* Blank lines are values; CR is stripped; interior spaces kept;
        the unterminated last line still counts. *)
     Alcotest.(check (list string))
       "empty lines are real values"
       [ "1.2.3.4"; ""; "5.6.7.8"; ""; "  "; "9.9.9.9" ]
       values);
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "empty values counted" 2
    (Telemetry.find_counter snap "detect.empty_values")

let test_read_examples_drops_blanks () =
  let path = fresh_path ".ex" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_file path "  a \n\nb\r\n   \nc\n";
  (match Serve.Ingest.read_examples path with
   | Error m -> Alcotest.fail m
   | Ok values ->
     Alcotest.(check (list string))
       "examples are trimmed, blanks dropped" [ "a"; "b"; "c" ] values);
  match Serve.Ingest.read_column "/nonexistent/column/file" with
  | Ok _ -> Alcotest.fail "missing file must not read"
  | Error _ -> ()

let test_read_channel_truncation () =
  let path = fresh_path ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_file path "0123456789";
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  (match Serve.Ingest.read_channel ic ~len:4 with
   | Ok s -> Alcotest.(check string) "exact read" "0123" s
   | Error m -> Alcotest.fail m);
  (* Asking for more than remains is the file-shrank-mid-read case:
     it must come back as Error, not an escaped End_of_file. *)
  match Serve.Ingest.read_channel ic ~len:1000 with
  | Ok _ -> Alcotest.fail "truncated read must not succeed"
  | Error m ->
    Alcotest.(check bool) "error mentions truncation" true
      (String.length m > 0)

let test_read_file () =
  let path = fresh_path ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_file path "whole\nfile\n";
  (match Serve.Ingest.read_file path with
   | Ok s -> Alcotest.(check string) "whole file" "whole\nfile\n" s
   | Error m -> Alcotest.fail m);
  match Serve.Ingest.read_file "/nonexistent/snapshot.json" with
  | Ok _ -> Alcotest.fail "missing file must not read"
  | Error _ -> ()

(* ------------------------------- framing ---------------------------- *)

let feed_all dec chunks =
  let out = ref [] in
  List.iter
    (fun chunk ->
      Serve.Frame.feed dec chunk;
      let rec drain () =
        match Serve.Frame.next dec with
        | Some item -> out := item :: !out; drain ()
        | None -> ()
      in
      drain ())
    chunks;
  List.rev !out

let test_frame_roundtrip () =
  let payloads = [ "{}"; "{\"id\":1}"; ""; "embedded\nnewline" ] in
  let stream = String.concat "" (List.map Serve.Frame.encode payloads) in
  (* Whole stream at once, then byte-by-byte: same frames either way. *)
  let whole = feed_all (Serve.Frame.decoder ()) [ stream ] in
  let dribble =
    feed_all (Serve.Frame.decoder ())
      (List.init (String.length stream) (fun i -> String.make 1 stream.[i]))
  in
  let expect = List.map (fun p -> Serve.Frame.Payload p) payloads in
  Alcotest.(check bool) "whole-stream decode" true (whole = expect);
  Alcotest.(check bool) "byte-dribble decode" true (dribble = expect)

let test_frame_resync () =
  let good = Serve.Frame.encode "{\"id\":7}" in
  let items =
    feed_all (Serve.Frame.decoder ()) [ "not-a-number\n" ^ good ]
  in
  (match items with
   | [ Serve.Frame.Bad_header h; Serve.Frame.Payload p ] ->
     Alcotest.(check string) "offending header" "not-a-number" h;
     Alcotest.(check string) "frame after resync" "{\"id\":7}" p
   | _ -> Alcotest.fail "expected Bad_header then Payload");
  (* A header that lies about the length costs one frame, not the
     connection. *)
  let items =
    feed_all (Serve.Frame.decoder ()) [ "3\nwrong!\n" ^ good ]
  in
  (match items with
   | [ Serve.Frame.Bad_terminator; Serve.Frame.Payload _ ] -> ()
   | _ -> Alcotest.fail "expected Bad_terminator then Payload");
  (* An over-limit declaration poisons the decoder: the payload bytes
     were never read, so there is nothing to resync on. *)
  let dec = Serve.Frame.decoder () in
  let items = feed_all dec [ Printf.sprintf "%d\n" (Serve.Frame.max_payload + 1) ] in
  (match items with
   | [ Serve.Frame.Too_large _ ] -> ()
   | _ -> Alcotest.fail "expected Too_large");
  Serve.Frame.feed dec good;
  Alcotest.(check bool) "poisoned decoder yields nothing" true
    (Serve.Frame.next dec = None)

(* ------------------------------- protocol --------------------------- *)

let test_request_codec () =
  (match
     Serve.Protocol.request_of_json
       {|{"id":3,"op":"validate","type":"ipv4","values":["a","","b"],"value_budget_ms":2.5,"trace_id":"00000000000000ff"}|}
   with
   | Error pe -> Alcotest.fail pe.Serve.Protocol.pe_reason
   | Ok rq ->
     Alcotest.(check int) "id" 3 rq.Serve.Protocol.rq_id;
     Alcotest.(check bool) "op" true
       (rq.Serve.Protocol.rq_op = Serve.Protocol.Validate);
     Alcotest.(check (list string)) "values (empties kept)"
       [ "a"; ""; "b" ] rq.Serve.Protocol.rq_values;
     Alcotest.(check bool) "trace id adopted" true
       (rq.Serve.Protocol.rq_trace_id = Some 0xffL));
  (* Missing id, missing type, bad trace ids: typed errors, and the id
     still comes back when it was readable. *)
  (match Serve.Protocol.request_of_json {|{"op":"health"}|} with
   | Ok _ -> Alcotest.fail "missing id must not parse"
   | Error pe ->
     Alcotest.(check bool) "no id recovered" true
       (pe.Serve.Protocol.pe_id = None));
  (match Serve.Protocol.request_of_json {|{"id":9,"op":"validate"}|} with
   | Ok _ -> Alcotest.fail "validate without type must not parse"
   | Error pe ->
     Alcotest.(check bool) "id recovered" true
       (pe.Serve.Protocol.pe_id = Some 9));
  match Serve.Protocol.request_of_json {|{"id":1,"op":"health","trace_id":"xyz"}|} with
  | Ok _ -> Alcotest.fail "malformed trace_id must not parse"
  | Error _ -> ()

(* ------------------------------ the daemon -------------------------- *)

(* One compiled ipv4 model, built once for the whole suite (the
   pipeline run is the expensive part). *)
let registry_dir = lazy begin
  let ty = Semtypes.Registry.find_exn "ipv4" in
  let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
  let compiled =
    Autotype_core.Pipeline.compile ~index:(Corpus.search_index ())
      ~query:ty.Semtypes.Registry.name ~positives ()
  in
  let artifact =
    match Model.Artifact.of_compiled compiled with
    | Some a -> Model.Artifact.with_type_id "ipv4" a
    | None -> Alcotest.fail "no ipv4 function synthesized"
  in
  let dir = fresh_path ".models" in
  (match Model.Registry.create_dir dir with
   | Error m -> Alcotest.fail m
   | Ok registry ->
     (match Model.Registry.save registry artifact with
      | Error m -> Alcotest.fail m
      | Ok _ -> ()));
  at_exit (fun () -> try rm_rf dir with Sys_error _ -> ());
  dir
end

let open_registry () =
  match Model.Registry.open_dir (Lazy.force registry_dir) with
  | Ok r -> r
  | Error m -> Alcotest.fail m

let ipv4_synthesis () =
  match Model.Registry.find (open_registry ()) "ipv4" with
  | Ok entry -> entry.Model.Registry.synthesis
  | Error e -> Alcotest.fail (Model.Artifact.load_error_to_string e)

(* Run the daemon synchronously over pipes: all request frames are
   written up front and the write end closed, so the first drain cycle
   sees every frame at once — which makes admission-control outcomes
   deterministic.  Returns the decoded replies in order. *)
let run_over_pipes ?pool ?max_inflight frames =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let request_bytes = String.concat "" (List.map Serve.Frame.encode frames) in
  let b = Bytes.of_string request_bytes in
  let n = Unix.write in_w b 0 (Bytes.length b) in
  Alcotest.(check int) "all requests fit the pipe" (Bytes.length b) n;
  Unix.close in_w;
  let cfg = Serve.Daemon.config ?pool ?max_inflight (open_registry ()) in
  let served, rejected = Serve.Daemon.run_fds cfg ~in_fd:in_r ~out_fd:out_w in
  Unix.close in_r;
  Unix.close out_w;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec slurp () =
    match Unix.read out_r chunk 0 65536 with
    | 0 -> ()
    | n -> Buffer.add_subbytes buf chunk 0 n; slurp ()
  in
  slurp ();
  Unix.close out_r;
  let dec = Serve.Frame.decoder () in
  Serve.Frame.feed dec (Buffer.contents buf);
  let rec drain acc =
    match Serve.Frame.next dec with
    | Some (Serve.Frame.Payload p) ->
      (match Serve.Protocol.reply_of_json p with
       | Ok r -> drain (r :: acc)
       | Error m -> Alcotest.fail ("unparsable reply: " ^ m))
    | Some _ -> Alcotest.fail "daemon emitted a malformed frame"
    | None -> List.rev acc
  in
  (drain [], served, rejected)

let str_list j = List.map J.to_str (J.to_list j)

let test_daemon_pipe_roundtrip () =
  let values = [ "1.2.3.4"; "not-an-ip"; ""; "255.255.255.255" ] in
  let column = [ "10.0.0.1"; "8.8.8.8"; "1.1.1.1"; "bogus"; "2.2.2.2" ] in
  let enc vs = J.List (List.map (fun v -> J.Str v) vs) in
  let frames =
    [ J.to_string
        (J.Obj [ ("id", J.Int 1); ("op", J.Str "validate");
                 ("type", J.Str "ipv4"); ("values", enc values) ]);
      J.to_string
        (J.Obj [ ("id", J.Int 2); ("op", J.Str "detect");
                 ("type", J.Str "ipv4"); ("values", enc column) ]);
      J.to_string (J.Obj [ ("id", J.Int 3); ("op", J.Str "health") ]);
      "this is not json";
      J.to_string
        (J.Obj [ ("id", J.Int 5); ("op", J.Str "validate");
                 ("type", J.Str "no-such-type"); ("values", enc values) ]);
      J.to_string (J.Obj [ ("id", J.Int 6); ("op", J.Str "shutdown") ]) ]
  in
  let replies, served, rejected = run_over_pipes frames in
  Alcotest.(check int) "six replies" 6 (List.length replies);
  Alcotest.(check int) "no rejections" 0 rejected;
  Alcotest.(check bool) "health+validate+detect+shutdown served" true
    (served >= 4);
  let reply id = List.find (fun r -> r.Serve.Protocol.rp_id = id) replies in
  (* Verdict parity with the library serve path. *)
  let syn = ipv4_synthesis () in
  let expected =
    List.map
      (fun v ->
        Tablecorpus.Detect.value_verdict_to_string
          (if Autotype_core.Synthesis.validate syn v then
             Tablecorpus.Detect.V_valid
           else Tablecorpus.Detect.V_invalid))
      values
  in
  Alcotest.(check (list string)) "validate verdict parity" expected
    (str_list (J.member "verdicts" (reply 1).Serve.Protocol.rp_body));
  (* Detect parity with serve_column over the same values. *)
  let frac = J.to_float (J.member "fraction" (reply 2).Serve.Protocol.rp_body) in
  (match Tablecorpus.Detect.serve_column syn column with
   | Tablecorpus.Detect.Column_match f ->
     Alcotest.(check bool) "daemon detected" true
       (J.to_bool (J.member "detected" (reply 2).Serve.Protocol.rp_body));
     Alcotest.(check (float 1e-9)) "fraction parity" f frac
   | Tablecorpus.Detect.Column_no_match f ->
     Alcotest.(check bool) "daemon not detected" false
       (J.to_bool (J.member "detected" (reply 2).Serve.Protocol.rp_body));
     Alcotest.(check (float 1e-9)) "fraction parity" f frac
   | Tablecorpus.Detect.Column_degraded _ ->
     Alcotest.fail "unbudgeted serve_column cannot degrade");
  Alcotest.(check int) "health sees one model" 1
    (J.to_int (J.member "models" (reply 3).Serve.Protocol.rp_body));
  (* The unframed-JSON payload gets a typed error, id -1. *)
  let bad = List.find (fun r -> r.Serve.Protocol.rp_id = -1) replies in
  Alcotest.(check bool) "bad payload rejected" false bad.Serve.Protocol.rp_ok;
  Alcotest.(check string) "bad_request code" "bad_request"
    (J.to_str (J.member "error" bad.Serve.Protocol.rp_body));
  let missing = reply 5 in
  Alcotest.(check string) "unknown type code" "unknown_type"
    (J.to_str (J.member "error" missing.Serve.Protocol.rp_body));
  Alcotest.(check bool) "shutdown acknowledged" true
    (reply 6).Serve.Protocol.rp_ok

let test_daemon_trace_id_echo () =
  let frames =
    [ {|{"id":1,"op":"health","trace_id":"00000000000000ab"}|};
      {|{"id":2,"op":"shutdown"}|} ]
  in
  let replies, _, _ = run_over_pipes frames in
  let r1 = List.find (fun r -> r.Serve.Protocol.rp_id = 1) replies in
  Alcotest.(check string) "client trace id echoed" "00000000000000ab"
    r1.Serve.Protocol.rp_trace_id;
  let r2 = List.find (fun r -> r.Serve.Protocol.rp_id = 2) replies in
  Alcotest.(check bool) "minted trace id is non-zero" true
    (r2.Serve.Protocol.rp_trace_id <> "0000000000000000")

let test_daemon_overload () =
  let mk id =
    Printf.sprintf
      {|{"id":%d,"op":"validate","type":"ipv4","values":["1.2.3.4"]}|} id
  in
  let frames =
    List.init 5 (fun i -> mk (i + 1)) @ [ {|{"id":9,"op":"shutdown"}|} ]
  in
  (* All six frames land in one drain cycle; with an admission budget
     of 2 exactly three validates must be shed (shutdown is exempt). *)
  let replies, served, rejected = run_over_pipes ~max_inflight:2 frames in
  Alcotest.(check int) "six replies" 6 (List.length replies);
  Alcotest.(check int) "three rejected" 3 rejected;
  Alcotest.(check int) "two validates + shutdown served" 3 served;
  let overloaded =
    List.filter
      (fun r ->
        (not r.Serve.Protocol.rp_ok)
        && J.to_str (J.member "error" r.Serve.Protocol.rp_body) = "overloaded")
      replies
  in
  Alcotest.(check int) "overloaded responses" 3 (List.length overloaded)

let test_daemon_batching_budgets () =
  (* Budgeted requests run through serve_values; a generous budget must
     agree with the unbudgeted path on every verdict, and with the
     local library result — including the empty value. *)
  let values = [ "1.2.3.4"; ""; "nope"; "4.3.2.1" ] in
  let enc = J.List (List.map (fun v -> J.Str v) values) in
  let frames =
    [ J.to_string
        (J.Obj [ ("id", J.Int 1); ("op", J.Str "validate");
                 ("type", J.Str "ipv4"); ("values", enc) ]);
      J.to_string
        (J.Obj [ ("id", J.Int 2); ("op", J.Str "validate");
                 ("type", J.Str "ipv4"); ("values", enc);
                 ("deadline_ms", J.Float 60000.0);
                 ("value_budget_ms", J.Float 60000.0) ]);
      J.to_string (J.Obj [ ("id", J.Int 3); ("op", J.Str "shutdown") ]) ]
  in
  let replies, _, _ = run_over_pipes frames in
  let verdicts id =
    str_list
      (J.member "verdicts"
         (List.find (fun r -> r.Serve.Protocol.rp_id = id) replies)
           .Serve.Protocol.rp_body)
  in
  Alcotest.(check int) "budgeted total matches value count"
    (List.length values)
    (List.length (verdicts 2));
  Alcotest.(check (list string)) "budgeted agrees with unbudgeted"
    (verdicts 1) (verdicts 2);
  let syn = ipv4_synthesis () in
  let local =
    List.map Tablecorpus.Detect.value_verdict_to_string
      (Tablecorpus.Detect.serve_values syn values)
  in
  Alcotest.(check (list string)) "daemon agrees with serve_values" local
    (verdicts 2)

let test_daemon_socket () =
  let path = fresh_path ".sock" in
  let cfg = Serve.Daemon.config (open_registry ()) in
  let daemon = Domain.spawn (fun () -> Serve.Daemon.run_socket cfg ~path) in
  (* The daemon unlinks and rebinds; wait for the socket to appear. *)
  let rec connect tries =
    let fd = Unix.socket ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
      Unix.close fd;
      Unix.sleepf 0.02;
      connect (tries - 1)
  in
  let fd = connect 250 in
  let send payload =
    let s = Serve.Frame.encode payload in
    let b = Bytes.of_string s in
    ignore (Unix.write fd b 0 (Bytes.length b))
  in
  send {|{"id":1,"op":"validate","type":"ipv4","values":["1.2.3.4","x"]}|};
  send {|{"id":2,"op":"shutdown"}|};
  let dec = Serve.Frame.decoder () in
  let chunk = Bytes.create 4096 in
  let rec read_replies acc =
    if List.length acc >= 2 then List.rev acc
    else
      match Unix.read fd chunk 0 4096 with
      | 0 -> List.rev acc
      | n ->
        Serve.Frame.feed dec (Bytes.sub_string chunk 0 n);
        let rec drain acc =
          match Serve.Frame.next dec with
          | Some (Serve.Frame.Payload p) ->
            (match Serve.Protocol.reply_of_json p with
             | Ok r -> drain (r :: acc)
             | Error m -> Alcotest.fail ("unparsable reply: " ^ m))
          | Some _ -> Alcotest.fail "malformed frame from daemon"
          | None -> acc
        in
        read_replies (drain acc)
  in
  let replies = read_replies [] in
  Unix.close fd;
  let _served, _rejected = Domain.join daemon in
  Alcotest.(check int) "two replies over the socket" 2 (List.length replies);
  let r1 = List.find (fun r -> r.Serve.Protocol.rp_id = 1) replies in
  Alcotest.(check (list string)) "socket verdicts" [ "VALID"; "invalid" ]
    (str_list (J.member "verdicts" r1.Serve.Protocol.rp_body));
  Alcotest.(check bool) "socket file removed on shutdown" false
    (Sys.file_exists path)

(* The budgeted and unbudgeted column paths must agree that empty
   values are part of the denominator (the read_column fix feeds both). *)
let test_empty_column_totals () =
  let syn = ipv4_synthesis () in
  let values = [ "1.2.3.4"; ""; "5.6.7.8"; ""; "9.9.9.9" ] in
  let frac_unbudgeted =
    match Tablecorpus.Detect.serve_column syn values with
    | Tablecorpus.Detect.Column_match f | Tablecorpus.Detect.Column_no_match f
      -> f
    | Tablecorpus.Detect.Column_degraded _ ->
      Alcotest.fail "unbudgeted serve cannot degrade"
  in
  let b = Tablecorpus.Detect.budgets ~deadline_ms:60000.0 () in
  let frac_budgeted =
    match Tablecorpus.Detect.serve_column ~budgets:b syn values with
    | Tablecorpus.Detect.Column_match f | Tablecorpus.Detect.Column_no_match f
      -> f
    | Tablecorpus.Detect.Column_degraded _ ->
      Alcotest.fail "generous budget must not degrade"
  in
  Alcotest.(check (float 1e-9)) "3 of 5 values pass (empties count)"
    0.6 frac_unbudgeted;
  Alcotest.(check (float 1e-9)) "budgeted path agrees on the denominator"
    frac_unbudgeted frac_budgeted;
  Alcotest.(check int) "serve_values answers every value, empties too"
    (List.length values)
    (List.length (Tablecorpus.Detect.serve_values syn values))

let suite =
  [ ("read_column preserves empty values", `Quick,
     test_read_column_preserves_empties);
    ("read_examples trims and drops blanks", `Quick,
     test_read_examples_drops_blanks);
    ("read_channel reports truncation", `Quick, test_read_channel_truncation);
    ("read_file closes and reports errors", `Quick, test_read_file);
    ("frame round-trip (whole and dribbled)", `Quick, test_frame_roundtrip);
    ("frame resync and poisoning", `Quick, test_frame_resync);
    ("request codec", `Quick, test_request_codec);
    ("daemon round-trip over pipes", `Slow, test_daemon_pipe_roundtrip);
    ("daemon trace-id adoption", `Slow, test_daemon_trace_id_echo);
    ("daemon admission control", `Slow, test_daemon_overload);
    ("daemon budgeted/unbudgeted parity", `Slow, test_daemon_batching_budgets);
    ("daemon over a Unix socket", `Slow, test_daemon_socket);
    ("empty values count in column totals", `Slow, test_empty_column_totals) ]
