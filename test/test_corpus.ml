(** Tests for the simulated code corpus: every repository parses, loads
    and yields candidates; corpus validators agree with ground truth. *)

let check = Alcotest.check

let test_all_repos_parse () =
  match Corpus.parse_failures () with
  | [] -> ()
  | failures ->
    Alcotest.failf "repos fail to parse: %s"
      (String.concat "; "
         (List.map (fun (r, m) -> r ^ " (" ^ m ^ ")") failures))

let test_repo_names_unique () =
  let names =
    List.map (fun r -> r.Repolib.Repo.repo_name) Corpus.all_repos
  in
  Alcotest.(check int)
    "unique repo names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_candidates_found () =
  let candidates = Corpus.all_candidates () in
  (* The corpus should yield a substantial candidate pool. *)
  if List.length candidates < 100 then
    Alcotest.failf "only %d candidates extracted" (List.length candidates)

let test_every_covered_type_has_intended_code () =
  let missing =
    List.filter
      (fun (t : Semtypes.Registry.t) ->
        Corpus.intended_candidates t.Semtypes.Registry.id = [])
      Semtypes.Registry.covered
  in
  match missing with
  | [] -> ()
  | _ ->
    Alcotest.failf "covered types without corpus code: %s"
      (String.concat ", "
         (List.map (fun t -> t.Semtypes.Registry.id) missing))

let test_truth_labels_resolve () =
  (* Every truth entry must name a real extracted candidate, otherwise
     the label is dead (typo in a function name). *)
  let candidates = Corpus.all_candidates () in
  let names_by_repo = Hashtbl.create 64 in
  List.iter
    (fun (c : Repolib.Candidate.t) ->
      Hashtbl.add names_by_repo
        c.Repolib.Candidate.repo.Repolib.Repo.repo_name
        c.Repolib.Candidate.func_name)
    candidates;
  List.iter
    (fun (r : Repolib.Repo.t) ->
      List.iter
        (fun (fname, types) ->
          if types <> [] then
            let found =
              List.exists
                (String.equal fname)
                (Hashtbl.find_all names_by_repo r.Repolib.Repo.repo_name)
            in
            if not found then
              Alcotest.failf "%s: truth label %s matches no candidate"
                r.Repolib.Repo.repo_name fname)
        r.Repolib.Repo.truth)
    Corpus.all_repos

(** Core agreement property: for a sample of covered types, at least one
    ground-truth-relevant corpus function must accept (execute normally
    on) every generated positive example while erroring or diverging on
    clearly foreign input. *)
let test_relevant_functions_execute_positives () =
  (* Every covered type: at least one ground-truth-relevant function must
     execute cleanly on all its generated positives. *)
  let sample =
    List.map (fun t -> t.Semtypes.Registry.id) Semtypes.Registry.covered
  in
  List.iter
    (fun type_id ->
      let ty = Semtypes.Registry.find_exn type_id in
      let positives = Semtypes.Registry.positive_examples ~n:8 ~seed:5 ty in
      let cands = Corpus.intended_candidates type_id in
      let some_accepts_all =
        List.exists
          (fun c ->
            List.for_all
              (fun p ->
                match (Repolib.Driver.run_safe c p).Minilang.Interp.outcome with
                | Minilang.Interp.Finished v ->
                  (* Functions returning a boolean must return True. *)
                  (match v with
                   | Minilang.Value.Vbool b -> b
                   | _ -> true)
                | Minilang.Interp.Errored _ | Minilang.Interp.Hit_limit _
                | Minilang.Interp.Deadline_exceeded _ ->
                  false)
              positives)
          cands
      in
      if not some_accepts_all then
        Alcotest.failf "%s: no intended function accepts all positives"
          type_id)
    sample

let test_search_finds_relevant_repo () =
  let index = Corpus.search_index () in
  let cases =
    [ ("credit card", "mpaz/cardcheck");
      ("ISBN", "booktech/isbn-tools");
      ("IPv4 address", "netkit/netaddr-lite");
      ("IBAN", "bankkit/iban-tools");
      ("VIN number", "autoparts/vin-decoder") ]
  in
  List.iter
    (fun (query, expected_repo) ->
      let results = Repolib.Search.search index ~k:20 query in
      let names = List.map (fun r -> r.Repolib.Repo.repo_name) results in
      if not (List.mem expected_repo names) then
        Alcotest.failf "query %S does not retrieve %s (got: %s)" query
          expected_repo
          (String.concat ", " (List.filteri (fun i _ -> i < 8) names)))
    cases

let test_swift_ambiguity () =
  (* Appendix J: the bare query "SWIFT" is dominated by the programming
     language repos; "SWIFT message" disambiguates. *)
  let index = Corpus.search_index () in
  let top_for q =
    match Repolib.Search.search index ~k:5 q with
    | r :: _ -> r.Repolib.Repo.repo_name
    | [] -> "<none>"
  in
  let bare = top_for "swift" in
  check Alcotest.bool "bare swift hits a language repo" true
    (bare = "swift-community/swift-examples"
    || bare = "learn-swift/swift-tutorial");
  let precise = Repolib.Search.search index ~k:10 "SWIFT message" in
  check Alcotest.bool "SWIFT message retrieves the BIC repo" true
    (List.exists
       (fun r -> r.Repolib.Repo.repo_name = "payments-eu/swift-bic")
       precise)

(** Corpus lint hygiene: the static analyzer must report zero
    error-severity diagnostics over the whole corpus, and the warning
    set must exactly match the checked-in allowlist — a new warning is
    a regression, a stale entry is a lie. *)
let read_allowlist path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line ->
      let line = String.trim line in
      go
        (if line = "" || String.length line > 0 && line.[0] = '#' then acc
         else line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_corpus_lint_hygiene () =
  let errors = ref [] in
  let warnings = ref [] in
  List.iter
    (fun (r : Repolib.Repo.t) ->
      List.iter
        (fun (d : Staticcheck.Diag.t) ->
          let key =
            Printf.sprintf "%s %s:%d [%s]" r.Repolib.Repo.repo_name
              d.Staticcheck.Diag.site.Minilang.Ast.file
              d.Staticcheck.Diag.site.Minilang.Ast.line
              d.Staticcheck.Diag.code
          in
          if Staticcheck.Diag.is_error d then
            errors := (key ^ " " ^ d.Staticcheck.Diag.message) :: !errors
          else warnings := key :: !warnings)
        (Repolib.Analyzer.repo_diagnostics r))
    Corpus.all_repos;
  (match !errors with
   | [] -> ()
   | es ->
     Alcotest.failf "corpus has error diagnostics:\n%s"
       (String.concat "\n" (List.rev es)));
  let allow = List.sort String.compare (read_allowlist "lint_allowlist.txt") in
  let actual = List.sort String.compare !warnings in
  Alcotest.(check (list string))
    "corpus warnings match the allowlist" allow actual

let suite =
  [
    ("all repos parse", `Quick, test_all_repos_parse);
    ("repo names unique", `Quick, test_repo_names_unique);
    ("candidate extraction", `Quick, test_candidates_found);
    ("covered types have corpus code", `Quick,
     test_every_covered_type_has_intended_code);
    ("truth labels resolve", `Quick, test_truth_labels_resolve);
    ("relevant functions accept positives", `Slow,
     test_relevant_functions_execute_positives);
    ("search finds relevant repos", `Quick, test_search_finds_relevant_repo);
    ("corpus lint hygiene", `Quick, test_corpus_lint_hygiene);
    ("swift keyword ambiguity", `Quick, test_swift_ambiguity);
  ]
