(** Differential testing of the bytecode VM (lib/minilang/{compile,vm})
    against the tree-walking oracle (DESIGN.md §14).

    Every program runs twice — [AUTOTYPE_VM] off then on — and the two
    [run_result]s must be byte-identical: outcome (including error kind
    and message), the full trace event list, [steps_used] and captured
    print output.  The corpus is the absint fuzz generator's programs
    plus an extended pool exercising the VM-specific machinery: slot
    binding, try/except/finally sub-units, break/continue trampolines,
    nested defs with defaults, classes, [global], unpacking, and every
    specialized opcode.  Step-budget sweeps around the exact step count
    pin the batched tick accounting to the oracle's boundary. *)

open Minilang

let with_engine on f =
  let prev = Interp.vm_enabled () in
  Interp.set_vm_enabled on;
  Fun.protect ~finally:(fun () -> Interp.set_vm_enabled prev) f

let run_both ?config (c : Repolib.Candidate.t) input =
  let off = with_engine false (fun () -> Repolib.Driver.run_safe ?config c input) in
  let on = with_engine true (fun () -> Repolib.Driver.run_safe ?config c input) in
  (off, on)

let failures = ref []

let mismatch src input what fmt =
  Printf.ksprintf
    (fun detail ->
      failures :=
        Printf.sprintf "on input %S: engines differ on %s: %s\n--\n%s" input
          what detail src
        :: !failures)
    fmt

let outcome_str = function
  | Interp.Finished v -> "Finished <" ^ Value.type_name v ^ ">"
  | Interp.Errored (k, m) -> Printf.sprintf "Errored (%s, %s)" k m
  | Interp.Hit_limit m -> "Hit_limit " ^ m
  | Interp.Deadline_exceeded m -> "Deadline " ^ m

let compare_runs src input (off : Interp.run_result) (on : Interp.run_result) =
  if off.Interp.outcome <> on.Interp.outcome then
    mismatch src input "outcome" "oracle=%s vm=%s"
      (outcome_str off.Interp.outcome)
      (outcome_str on.Interp.outcome);
  if off.Interp.trace <> on.Interp.trace then
    mismatch src input "trace" "oracle has %d events, vm has %d"
      (List.length off.Interp.trace)
      (List.length on.Interp.trace);
  if off.Interp.steps_used <> on.Interp.steps_used then
    mismatch src input "steps" "oracle=%d vm=%d" off.Interp.steps_used
      on.Interp.steps_used;
  if off.Interp.printed <> on.Interp.printed then
    mismatch src input "printed output" "oracle=%d lines, vm=%d lines"
      (List.length off.Interp.printed)
      (List.length on.Interp.printed)

(* ------------------- extended program generator -------------------- *)

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

(* Statement blocks (body of [f], 4-space indented) chosen to cover VM
   paths the absint generator never reaches. *)
let ext_blocks =
  [| "    acc = []\n\
      \    for ch in value:\n\
      \        if ch == \" \":\n\
      \            continue\n\
      \        acc.append(ch)\n\
      \    k = len(acc)\n";
     "    try:\n\
      \        n = int(value)\n\
      \    except ValueError:\n\
      \        n = -1\n";
     "    try:\n\
      \        n = int(value)\n\
      \    except ValueError as e:\n\
      \        n = len(e)\n\
      \    finally:\n\
      \        m = 1\n";
     "    try:\n\
      \        raise ValueError(value)\n\
      \    except oops:\n\
      \        r = oops\n";
     "    total = 0\n\
      \    for ch in value:\n\
      \        total += 1\n\
      \        if total > 5:\n\
      \            break\n";
     "    d = {}\n\
      \    for ch in value:\n\
      \        d[ch] = 1\n\
      \    n = len(d)\n";
     "    a, b = (len(value), 2)\n    c = a * b\n";
     "    s = value[1:]\n    t = value[:2]\n    u = s + t\n";
     "    def helper(x, k=2):\n\
      \        return len(x) + k\n\
      \    h = helper(value)\n";
     "    global seen\n    seen = seen + 1\n";
     "    parts = value.split(\"-\")\n    joined = \"+\".join(parts)\n";
     "    if value:\n\
      \        x = value[0]\n\
      \    else:\n\
      \        x = \"\"\n";
     "    while len(value) > 3:\n        value = value[1:]\n";
     "    msg = \"{}-{}\".format(len(value), value)\n";
     "    z = value.find(\"a\") + value.count(\"a\")\n";
     "    w = value.zfill(8)\n    ok = w.isdigit()\n";
     "    for i in range(3):\n\
      \        for j in range(2):\n\
      \            if i == j:\n\
      \                break\n\
      \        else_done = i\n";
     "    lst = [1, 2, 3]\n\
      \    lst[1] = len(value)\n\
      \    tot = lst[0] + lst[1] + lst[2]\n"
  |]

let class_preamble =
  "class Checker:\n\
   \    def __init__(self, v):\n\
   \        self.v = v\n\
   \    def ok(self):\n\
   \        return len(self.v) > 2\n\n"

let gen_ext_program rng =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "seen = 0\n";
  let with_class = Random.State.int rng 3 = 0 in
  if with_class then Buffer.add_string buf class_preamble;
  Buffer.add_string buf "def f(value):\n";
  for _ = 1 to 1 + Random.State.int rng 3 do
    Buffer.add_string buf (pick rng ext_blocks)
  done;
  if with_class then
    Buffer.add_string buf
      "    c = Checker(value)\n    if c.ok():\n        return True\n";
  (match Random.State.int rng 4 with
   | 0 -> Buffer.add_string buf "    return len(value) > 2\n"
   | 1 -> Buffer.add_string buf "    return value.strip()\n"
   | 2 -> Buffer.add_string buf "    raise ValueError(\"bad\")\n"
   | _ -> Buffer.add_string buf "    return None\n");
  Buffer.contents buf

let direct_candidates src =
  let repo =
    Repolib.Repo.make "fuzz/vm" "vm differential fuzz"
      [ { Repolib.Repo.path = "gen.py"; source = src } ]
  in
  List.filter
    (fun (c : Repolib.Candidate.t) ->
      c.Repolib.Candidate.invocation = Repolib.Candidate.Direct
      && c.Repolib.Candidate.func_name = "f")
    (Repolib.Analyzer.candidates_of_repo repo)

let budget_config max_steps =
  { Repolib.Driver.default_config with
    Interp.max_steps = max 1 max_steps }

(* Step-budget sweep: run both engines under budgets pinned to the
   exact step count of the unconstrained run.  Any divergence in where
   the batched VM ticks charge (Hit_limit one step early/late, a
   different truncated trace) fails here. *)
let sweep_budgets src c input full_steps =
  List.iter
    (fun budget ->
      let config = budget_config budget in
      let off, on = run_both ~config c input in
      compare_runs src (Printf.sprintf "%s (budget %d)" input budget) off on)
    [ 1; 2; (full_steps / 2) + 1; full_steps - 1; full_steps; full_steps + 1 ]

let test_differential () =
  let n_programs = 500 in
  let rng = Random.State.make [| 0x7D1; 0xBEEF |] in
  let fuzz_rng = Random.State.make [| 0xA551; 0x0F17 |] in
  let n_runs = ref 0 in
  for i = 1 to n_programs do
    let src =
      (* Half the corpus is the absint fuzz generator's (detector-shaped
         programs, loops, regexes); half is the extended pool. *)
      if i mod 2 = 0 then Test_absint_fuzz.gen_program fuzz_rng
      else gen_ext_program rng
    in
    let inputs = List.init 5 (fun _ -> Test_absint_fuzz.gen_input rng) in
    List.iter
      (fun c ->
        List.iter
          (fun input ->
            let off, on = run_both c input in
            incr n_runs;
            compare_runs src input off on;
            (* Budget sweeps are expensive; sample them. *)
            if i mod 25 = 0 && off.Interp.steps_used > 2 then
              sweep_budgets src c input off.Interp.steps_used)
          inputs)
      (direct_candidates src)
  done;
  (match !failures with
   | [] -> ()
   | fs ->
     Alcotest.failf "%d engine divergence(s); first:\n%s" (List.length fs)
       (List.hd (List.rev fs)));
  Alcotest.(check bool) "ran a meaningful corpus" true (!n_runs >= 2000)

(* ------------------- targeted specialized opcodes ------------------ *)

(* One program per specialized fast path (I_call1 len/int/str, str
   index/slice inlining, each method mspec, pre-compiled regex), with
   shapes that HIT the fast path and shapes that must fall back to
   generic dispatch (same errors, same results). *)
let opcode_cases =
  [ ( "call1 len/int/str fast paths",
      "def f(value):\n\
       \    n = len(value)\n\
       \    s = str(n)\n\
       \    if value.isdigit():\n\
       \        return int(value) + len(s)\n\
       \    return s\n",
      [ "123"; ""; "abc"; "00" ] );
    ( "call1 fallback shapes",
      "def f(value):\n\
       \    a = len([1, 2])\n\
       \    b = int(\"7\")\n\
       \    c = int(value)\n\
       \    return a + b + c\n",
      [ "5"; "x"; "" ] );
    ( "str index and slice inlining",
      "def f(value):\n\
       \    if len(value) < 2:\n\
       \        return value[0]\n\
       \    return value[0] + value[-1] + value[1:3] + value[:2] + value[2:]\n",
      [ "abcdef"; "ab"; ""; "x" ] );
    ( "slice bound type errors",
      "def f(value):\n\
       \    return value[\"a\":2]\n",
      [ "abc" ] );
    ( "strip/lstrip/rstrip specialization",
      "def f(value):\n\
       \    return value.strip() + \"|\" + value.lstrip() + \"|\" + \
        value.rstrip()\n",
      [ "  ab  "; "\t x\n"; "" ] );
    ( "upper/lower/isdigit/isalpha/isalnum",
      "def f(value):\n\
       \    if value.isdigit() or value.isalpha() or value.isalnum():\n\
       \        return value.upper() + value.lower()\n\
       \    return False\n",
      [ "abc"; "123"; "a1"; "-"; "" ] );
    ( "split specializations and fallback",
      "def f(value):\n\
       \    a = value.split()\n\
       \    b = value.split(\",\")\n\
       \    c = value.split(\"\")\n\
       \    return len(a) + len(b) + len(c)\n",
      [ "a b,c"; "" ] );
    ( "replace/startswith/endswith/find",
      "def f(value):\n\
       \    if value.startswith(\"a\") and value.endswith(\"c\"):\n\
       \        return value.replace(\"b\", \"x\")\n\
       \    return value.find(\"b\")\n",
      [ "abc"; "zzz"; "b"; "" ] );
    ( "append specialization",
      "def f(value):\n\
       \    acc = []\n\
       \    for ch in value:\n\
       \        acc.append(ch)\n\
       \    return len(acc)\n",
      [ "abc"; "" ] );
    ( "join via generic dispatch",
      "def f(value):\n\
       \    return \",\".join([value, \"x\"]) + \",\".join([])\n",
      [ "ab"; "" ] );
    ( "precompiled regex literal",
      "def f(value):\n\
       \    if re.match(\"[0-9]+\", value):\n\
       \        return re.findall(\"[0-9]\", value)\n\
       \    return re.search(\"[a-z]+\", value)\n",
      [ "123a"; "abc"; "" ] );
    ( "regex fallback: shadowed re and dynamic pattern",
      "def f(value):\n\
       \    p = \"[0-9]+\"\n\
       \    a = re.fullmatch(p, value)\n\
       \    re2 = \"zz\"\n\
       \    return a\n",
      [ "42"; "4x" ] );
    ( "binop int/str fast paths and mixed fallback",
      "def f(value):\n\
       \    n = len(value)\n\
       \    if n + 1 > 2 and n - 1 <= 5 and n * 2 != 3:\n\
       \        return value + \"!\" == value\n\
       \    return n / 2\n",
      [ "abcd"; "a"; "" ] ) ]

let test_opcodes () =
  List.iter
    (fun (name, src, inputs) ->
      match direct_candidates src with
      | [ c ] ->
        List.iter
          (fun input ->
            let off, on = run_both c input in
            compare_runs src input off on)
          inputs
      | cs ->
        Alcotest.failf "%s: expected 1 direct candidate, got %d" name
          (List.length cs))
    opcode_cases;
  match !failures with
  | [] -> ()
  | fs ->
    Alcotest.failf "%d opcode divergence(s); first:\n%s" (List.length fs)
      (List.hd (List.rev fs))

(* ------------------------ deadline / cancel ------------------------ *)

let spin_src = "def f(value):\n    while True:\n        pass\n"

let test_cancel_parity () =
  match direct_candidates spin_src with
  | [ c ] ->
    let fired () =
      let tok = Interp.cancel_token () in
      Interp.cancel tok;
      tok
    in
    let off =
      with_engine false (fun () ->
          Repolib.Driver.run_safe ~cancel:(fired ()) c "x")
    in
    let on =
      with_engine true (fun () ->
          Repolib.Driver.run_safe ~cancel:(fired ()) c "x")
    in
    (* A pre-fired token cancels on the very first charged tick in both
       engines — the batched tick must not overshoot. *)
    Alcotest.(check bool) "both cancelled" true
      (match (off.Interp.outcome, on.Interp.outcome) with
       | Interp.Deadline_exceeded a, Interp.Deadline_exceeded b -> a = b
       | _ -> false);
    Alcotest.(check int) "oracle cancels at step 1" 1 off.Interp.steps_used;
    Alcotest.(check int) "vm cancels at the same step" off.Interp.steps_used
      on.Interp.steps_used;
    Alcotest.(check bool) "identical traces" true
      (off.Interp.trace = on.Interp.trace)
  | _ -> Alcotest.fail "spin candidate not found"

let test_deadline_parity () =
  match direct_candidates spin_src with
  | [ c ] ->
    let big = { Interp.max_steps = 50_000_000; max_call_depth = 48 } in
    let run engine =
      with_engine engine (fun () ->
          let deadline_ns = Int64.add (Telemetry.now_ns ()) 2_000_000L in
          Repolib.Driver.run_safe ~config:big ~deadline_ns c "x")
    in
    let check_run label (r : Interp.run_result) =
      (match r.Interp.outcome with
       | Interp.Deadline_exceeded _ -> ()
       | o -> Alcotest.failf "%s: expected deadline, got %s" label (outcome_str o));
      (* The deadline is only probed every 256 steps — both engines must
         honour exactly that cadence (Absint.Stepbound's contract). *)
      Alcotest.(check int)
        (label ^ " stops on a 256-step probe boundary")
        0
        (r.Interp.steps_used land 255)
    in
    check_run "oracle" (run false);
    check_run "vm" (run true)
  | _ -> Alcotest.fail "spin candidate not found"

(* --------------------------- compile cache ------------------------- *)

let test_compile_cache () =
  with_engine true (fun () ->
      let src =
        "def f(value):\n    return value.strip().isdigit()\n"
      in
      match direct_candidates src with
      | [ c ] ->
        let r1 = Repolib.Driver.run_safe c "12" in
        let s1 = Compile.stats () in
        let r2 = Repolib.Driver.run_safe c "ab " in
        let s2 = Compile.stats () in
        Alcotest.(check bool) "first run finished" true
          (match r1.Interp.outcome with Interp.Finished _ -> true | _ -> false);
        Alcotest.(check bool) "second run finished" true
          (match r2.Interp.outcome with Interp.Finished _ -> true | _ -> false);
        Alcotest.(check int) "no recompilation on the second run"
          s1.Compile.compiles s2.Compile.compiles;
        Alcotest.(check bool) "second run hit the compile cache" true
          (s2.Compile.cache_hits > s1.Compile.cache_hits)
      | _ -> Alcotest.fail "candidate not found")

let suite =
  [ Alcotest.test_case "engines agree on 500 fuzzed programs" `Slow
      test_differential;
    Alcotest.test_case "specialized opcodes match the oracle" `Quick
      test_opcodes;
    Alcotest.test_case "pre-fired cancel token: identical first-tick stop"
      `Quick test_cancel_parity;
    Alcotest.test_case "wall-clock deadline observes the 256-step cadence"
      `Quick test_deadline_parity;
    Alcotest.test_case "compiled programs are cached per candidate" `Quick
      test_compile_cache ]
