(** Tests for the web-table substrate: Potter's-Wheel regex inference,
    corpus generation and column detection. *)

module R = Tablecorpus.Regex_infer

let test_infer_homogeneous () =
  match R.infer [ "123-45-6789"; "987-65-4321"; "555-12-0000" ] with
  | None -> Alcotest.fail "homogeneous examples must infer"
  | Some p ->
    Alcotest.(check bool) "matches same shape" true (R.matches p "111-22-3333");
    Alcotest.(check bool) "rejects other shape" false (R.matches p "11-222-3333");
    Alcotest.(check bool) "rejects letters" false (R.matches p "abc-de-fghi")

let test_infer_length_ranges () =
  match R.infer [ "ab12"; "abcd1"; "a123" ] with
  | None -> Alcotest.fail "must unify letter/digit runs"
  | Some p ->
    Alcotest.(check bool) "in range" true (R.matches p "xyz99");
    Alcotest.(check bool) "letters too long" false (R.matches p "abcde123")

let test_infer_heterogeneous_fails () =
  (* Mixed formats defeat regex inference (Section 9.2): more distinct
     shapes than the disjunct budget. *)
  let mixed =
    [ "2017-01-31"; "Jan 01, 2017"; "01/31/2017"; "31.01.2017";
      "2017 Jan 31"; "20170131T00" ]
  in
  (match R.infer mixed with
   | None -> ()
   | Some p ->
     (* If it infers, the pattern must at least be a disjunction and not
        match everything. *)
     Alcotest.(check bool) "does not match arbitrary text" false
       (R.matches p "hello world 42"))

let test_regex_fails_on_unseen_variant () =
  (* The paper's ISBN example: trained on compact digits, a regex cannot
     recognize the hyphenated variant, while reused code can. *)
  let rng = Semtypes.Generators.make_rng 5 in
  let compact = List.init 20 (fun _ -> Semtypes.Generators.isbn13 rng) in
  match R.infer compact with
  | None -> Alcotest.fail "compact ISBNs are homogeneous"
  | Some p ->
    Alcotest.(check bool) "accepts compact" true
      (R.matches p (Semtypes.Generators.isbn13 rng));
    Alcotest.(check bool) "rejects hyphenated" false
      (R.matches p (Semtypes.Generators.isbn13_hyphenated rng))

let test_corpus_generation () =
  let config =
    { Tablecorpus.Webtables.default_config with n_columns = 500 }
  in
  let columns = Tablecorpus.Webtables.generate ~config () in
  Alcotest.(check int) "column count" 500 (List.length columns);
  let typed =
    List.filter
      (fun c -> c.Tablecorpus.Webtables.truth <> None)
      columns
  in
  Alcotest.(check bool) "typed columns exist" true (List.length typed > 50);
  (* datetime dominates, per Table 2's proportions. *)
  let count ty =
    List.length
      (List.filter (fun c -> c.Tablecorpus.Webtables.truth = Some ty) columns)
  in
  Alcotest.(check bool) "datetime most frequent" true
    (count "datetime" > count "address");
  (* None of the 5 absent popular types occur. *)
  List.iter
    (fun ty ->
      Alcotest.(check int) (ty ^ " absent") 0 (count ty))
    Tablecorpus.Webtables.absent_popular_types;
  (* Determinism. *)
  let columns2 = Tablecorpus.Webtables.generate ~config () in
  Alcotest.(check bool) "generation deterministic" true (columns = columns2)

let test_detection_threshold_single_source () =
  (* Satellite of the compile/serve split: the 0.8 column threshold is
     defined once, in the synthesis layer, and re-exported here — the
     two must never drift apart. *)
  Alcotest.(check (float 0.0)) "threshold pinned to synthesis layer"
    Autotype_core.Synthesis.default_detection_threshold
    Tablecorpus.Detect.detection_threshold;
  Alcotest.(check (float 0.0)) "value is the paper's 0.8" 0.8
    Tablecorpus.Detect.detection_threshold

let test_header_matching () =
  Alcotest.(check bool) "direct" true
    (Tablecorpus.Detect.header_matches "email" (Some "Email"));
  Alcotest.(check bool) "substring" true
    (Tablecorpus.Detect.header_matches "email" (Some "contact e-mail"));
  Alcotest.(check bool) "missing header" false
    (Tablecorpus.Detect.header_matches "email" None);
  Alcotest.(check bool) "unrelated" false
    (Tablecorpus.Detect.header_matches "email" (Some "price"))

let test_detection_small_corpus () =
  (* End-to-end detection on a small corpus: DNF-S finds ISBN columns
     with high precision; the version-number trap is not detected as
     IPv4 by value... (it is ambiguous, Section 9.2) — but the range
     trap must never be detected as ISBN. *)
  let config =
    { Tablecorpus.Webtables.default_config with n_columns = 400 }
  in
  let columns = Tablecorpus.Webtables.generate ~config () in
  let ty = Semtypes.Registry.find_exn "isbn" in
  let det = Tablecorpus.Detect.dnf_detector ty in
  Alcotest.(check bool) "isbn detector usable" true
    det.Tablecorpus.Detect.usable;
  let detected = Tablecorpus.Detect.detect_with_values det columns in
  let prf = Tablecorpus.Detect.score "isbn" ~detected ~columns in
  Alcotest.(check bool) "finds isbn columns" true (prf.Eval.Metrics.tp > 0);
  List.iter
    (fun (c : Tablecorpus.Webtables.column) ->
      if c.Tablecorpus.Webtables.note = "range-looks-like-date" then
        Alcotest.fail "range column detected as ISBN")
    detected

(* -------------------- deadline-aware serving ----------------------- *)

(* Compiling runs the whole pipeline; do it once for every serve test. *)
let ipv4_compiled =
  lazy
    (let ty = Semtypes.Registry.find_exn "ipv4" in
     let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
     Autotype_core.Pipeline.compile ~index:(Corpus.search_index ())
       ~query:ty.Semtypes.Registry.name ~positives ())

let ipv4_synthesis () =
  match
    Autotype_core.Pipeline.best
      (Lazy.force ipv4_compiled).Autotype_core.Pipeline.c_outcome
  with
  | Some syn -> syn
  | None -> Alcotest.fail "no ipv4 synthesis"

let test_serve_column_budgets () =
  let syn = ipv4_synthesis () in
  let ty = Semtypes.Registry.find_exn "ipv4" in
  let good = Semtypes.Registry.positive_examples ~n:4 ~seed:123 ty in
  let values = good @ [ "not an ip" ] in
  Telemetry.enable ();
  Telemetry.reset ();
  (* Unbudgeted serving is the historical verdict. *)
  (match Tablecorpus.Detect.serve_column syn values with
   | Tablecorpus.Detect.Column_no_match frac ->
     Alcotest.(check (float 1e-9)) "4/5 accepted, at (not above) 0.8" 0.8 frac
   | Tablecorpus.Detect.Column_match _ ->
     Alcotest.fail "4/5 is not above the 0.8 threshold"
   | Tablecorpus.Detect.Column_degraded _ ->
     Alcotest.fail "unbudgeted serving never degrades");
  (match Tablecorpus.Detect.serve_column syn good with
   | Tablecorpus.Detect.Column_match frac ->
     Alcotest.(check (float 1e-9)) "clean column matches" 1.0 frac
   | _ -> Alcotest.fail "clean column must match");
  (* Zero per-value budget: every value deadlines and counts as
     not-accepted; the column still gets a (negative) verdict. *)
  let b = Tablecorpus.Detect.budgets ~value_budget_ms:0.0 () in
  (match Tablecorpus.Detect.serve_column ~budgets:b syn values with
   | Tablecorpus.Detect.Column_no_match frac ->
     Alcotest.(check (float 0.0)) "nothing accepted" 0.0 frac
   | _ -> Alcotest.fail "zero value budget must yield no-match");
  (* Expired batch deadline: the column degrades to an unknown verdict
     with its partial tally — never an exception. *)
  let b = Tablecorpus.Detect.budgets ~deadline_ms:0.0 () in
  (match Tablecorpus.Detect.serve_column ~budgets:b syn values with
   | Tablecorpus.Detect.Column_degraded { seen; accepted; total } ->
     Alcotest.(check int) "nothing seen" 0 seen;
     Alcotest.(check int) "nothing accepted" 0 accepted;
     Alcotest.(check int) "total preserved" (List.length values) total
   | _ -> Alcotest.fail "expired batch deadline must degrade");
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "per-value deadline hits counted"
    (List.length values)
    (Telemetry.find_counter snap "serve.deadline_hits");
  Alcotest.(check bool) "degradations counted" true
    (Telemetry.find_counter snap "serve.degraded" >= 1)

let test_serve_fallback_on_bad_artifact () =
  (* Registry/index desync under batch detection: the indexed artifact
     is truncated on disk.  dnf_detector degrades to a fresh synthesis
     (detect.serve_fallbacks) instead of crashing the batch. *)
  let artifact =
    match Model.Artifact.of_compiled (Lazy.force ipv4_compiled) with
    | Some a -> Model.Artifact.with_type_id "ipv4" a
    | None -> Alcotest.fail "no ipv4 artifact"
  in
  let dir =
    let stamp = Filename.temp_file "autotype-test-desync" "" in
    Sys.remove stamp;
    stamp
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
  @@ fun () ->
  (match Model.Registry.create_dir dir with
   | Error m -> Alcotest.fail m
   | Ok registry ->
     (match Model.Registry.save registry artifact with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m));
  (* Truncate the artifact behind the index's back. *)
  let path =
    match
      List.find_opt
        (fun f -> Filename.check_suffix f Model.Artifact.extension)
        (Array.to_list (Sys.readdir dir))
    with
    | Some f -> Filename.concat dir f
    | None -> Alcotest.fail "no model file"
  in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub bytes 0 (n * 2 / 3));
  close_out oc;
  Telemetry.enable ();
  Telemetry.reset ();
  let registry =
    match Model.Registry.open_dir dir with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let ty = Semtypes.Registry.find_exn "ipv4" in
  let det = Tablecorpus.Detect.dnf_detector ~registry ty in
  Telemetry.disable ();
  Alcotest.(check bool) "fallback detector usable" true
    det.Tablecorpus.Detect.usable;
  Alcotest.(check bool) "still detects ipv4" true
    (det.Tablecorpus.Detect.accepts "192.168.0.1");
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "serve fallback counted" 1
    (Telemetry.find_counter snap "detect.serve_fallbacks");
  Alcotest.(check bool) "retries were attempted first" true
    (Telemetry.find_counter snap "retry.attempts" >= 2)

(* ----------------- request-scoped observability -------------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_serve_trace_attribution () =
  (* Acceptance: every span, counter attribution and flight event
     emitted while serve_column runs under a request context carries
     that context's (non-zero) trace id — at jobs=1 and jobs=4. *)
  let syn = ipv4_synthesis () in
  let ty = Semtypes.Registry.find_exn "ipv4" in
  let columns =
    List.init 8 (fun i ->
        Semtypes.Registry.positive_examples ~n:3 ~seed:(100 + i) ty)
  in
  let run jobs =
    Telemetry.enable ();
    let ctx = Telemetry.Context.root () in
    Alcotest.(check bool) "request trace id is non-zero" true
      (ctx.Telemetry.Context.trace_id <> 0L);
    Exec.Pool.with_pool ~jobs (fun pool ->
        Telemetry.Context.with_context ctx (fun () ->
            ignore
              (Exec.Pool.parallel_map pool
                 (fun values -> Tablecorpus.Detect.serve_column syn values)
                 columns)));
    Telemetry.disable ();
    let spans = Telemetry.spans_named "serve.column" in
    Alcotest.(check int)
      (Printf.sprintf "jobs=%d: one span per served column" jobs)
      (List.length columns) (List.length spans);
    List.iter
      (fun (s : Telemetry.span) ->
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: span carries the request trace id" jobs)
          true
          (s.Telemetry.sp_trace_id = ctx.Telemetry.Context.trace_id))
      spans;
    let evs = Telemetry.Flight.events () in
    Alcotest.(check bool)
      (Printf.sprintf "jobs=%d: flight events were recorded" jobs)
      true (evs <> []);
    Alcotest.(check bool)
      (Printf.sprintf "jobs=%d: a span flight event exists" jobs)
      true
      (List.exists
         (fun (e : Telemetry.Flight.event) ->
           e.Telemetry.Flight.f_kind = "span"
           && e.Telemetry.Flight.f_label = "serve.column")
         evs);
    List.iter
      (fun (e : Telemetry.Flight.event) ->
        Alcotest.(check bool)
          (Printf.sprintf
             "jobs=%d: flight event %s/%s carries the request trace id" jobs
             e.Telemetry.Flight.f_kind e.Telemetry.Flight.f_label)
          true
          (e.Telemetry.Flight.f_trace_id = ctx.Telemetry.Context.trace_id))
      evs;
    Telemetry.reset ()
  in
  run 1;
  run 4

let test_degraded_flight_dump () =
  (* Acceptance: under injected delay, a degraded column triggers a
     flight-recorder dump whose JSONL events carry the request's trace
     id. *)
  let syn = ipv4_synthesis () in
  let ty = Semtypes.Registry.find_exn "ipv4" in
  let values = Semtypes.Registry.positive_examples ~n:5 ~seed:7 ty in
  let path = Filename.temp_file "autotype-flight-dump" ".jsonl" in
  let saved_dump = Telemetry.Flight.dump_path () in
  Fun.protect
    ~finally:(fun () ->
      Faults.set None;
      Telemetry.Flight.set_dump_path saved_dump;
      if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Telemetry.Flight.set_dump_path (Some path);
  (* A 3ms injected delay per run against a 1ms batch budget: the first
     value burns the deadline, the second degrades the column. *)
  Faults.set
    (Some { Faults.default with Faults.delay_ms = 3.0; seed = 1 });
  Telemetry.enable ();
  let ctx = Telemetry.Context.root () in
  let verdict =
    Telemetry.Context.with_context ctx (fun () ->
        let b = Tablecorpus.Detect.budgets ~deadline_ms:1.0 () in
        Tablecorpus.Detect.serve_column ~budgets:b syn values)
  in
  Telemetry.disable ();
  (match verdict with
   | Tablecorpus.Detect.Column_degraded { seen; total; _ } ->
     Alcotest.(check bool) "partial progress preserved" true (seen < total)
   | _ -> Alcotest.fail "expected degradation under injected delay");
  Alcotest.(check bool) "trigger dumped the flight ring" true
    (Sys.file_exists path);
  let lines = read_lines path in
  Alcotest.(check bool) "dump is non-empty" true (lines <> []);
  List.iter
    (fun l ->
      Alcotest.(check bool) "dump line is a JSON object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  let hex = Telemetry.Context.trace_id_hex ctx in
  Alcotest.(check bool) "degraded event carries the request trace id" true
    (List.exists
       (fun l ->
         contains ~needle:"\"kind\":\"degraded\"" l && contains ~needle:hex l)
       lines);
  Alcotest.(check bool) "deadline events carry the request trace id" true
    (List.exists
       (fun l ->
         contains ~needle:"\"kind\":\"deadline\"" l && contains ~needle:hex l)
       lines);
  Alcotest.(check bool) "dump trigger recorded its reason" true
    (List.exists (fun l -> contains ~needle:"\"kind\":\"dump\"" l) lines);
  Telemetry.reset ()

let suite =
  [
    ("regex inference: homogeneous", `Quick, test_infer_homogeneous);
    ("regex inference: length ranges", `Quick, test_infer_length_ranges);
    ("regex inference: heterogeneous", `Quick, test_infer_heterogeneous_fails);
    ("regex fails on unseen variant", `Quick, test_regex_fails_on_unseen_variant);
    ("webtable generation", `Quick, test_corpus_generation);
    ("detection threshold single-sourced", `Quick,
     test_detection_threshold_single_source);
    ("header matching", `Quick, test_header_matching);
    ("detection end-to-end", `Slow, test_detection_small_corpus);
    ("serve_column budgets and degradation", `Slow, test_serve_column_budgets);
    ("serve fallback on bad artifact", `Slow,
     test_serve_fallback_on_bad_artifact);
    ("serve_column trace attribution (jobs=1 and 4)", `Slow,
     test_serve_trace_attribution);
    ("degraded column triggers flight dump", `Slow,
     test_degraded_flight_dump);
  ]
