(** Tests for the web-table substrate: Potter's-Wheel regex inference,
    corpus generation and column detection. *)

module R = Tablecorpus.Regex_infer

let test_infer_homogeneous () =
  match R.infer [ "123-45-6789"; "987-65-4321"; "555-12-0000" ] with
  | None -> Alcotest.fail "homogeneous examples must infer"
  | Some p ->
    Alcotest.(check bool) "matches same shape" true (R.matches p "111-22-3333");
    Alcotest.(check bool) "rejects other shape" false (R.matches p "11-222-3333");
    Alcotest.(check bool) "rejects letters" false (R.matches p "abc-de-fghi")

let test_infer_length_ranges () =
  match R.infer [ "ab12"; "abcd1"; "a123" ] with
  | None -> Alcotest.fail "must unify letter/digit runs"
  | Some p ->
    Alcotest.(check bool) "in range" true (R.matches p "xyz99");
    Alcotest.(check bool) "letters too long" false (R.matches p "abcde123")

let test_infer_heterogeneous_fails () =
  (* Mixed formats defeat regex inference (Section 9.2): more distinct
     shapes than the disjunct budget. *)
  let mixed =
    [ "2017-01-31"; "Jan 01, 2017"; "01/31/2017"; "31.01.2017";
      "2017 Jan 31"; "20170131T00" ]
  in
  (match R.infer mixed with
   | None -> ()
   | Some p ->
     (* If it infers, the pattern must at least be a disjunction and not
        match everything. *)
     Alcotest.(check bool) "does not match arbitrary text" false
       (R.matches p "hello world 42"))

let test_regex_fails_on_unseen_variant () =
  (* The paper's ISBN example: trained on compact digits, a regex cannot
     recognize the hyphenated variant, while reused code can. *)
  let rng = Semtypes.Generators.make_rng 5 in
  let compact = List.init 20 (fun _ -> Semtypes.Generators.isbn13 rng) in
  match R.infer compact with
  | None -> Alcotest.fail "compact ISBNs are homogeneous"
  | Some p ->
    Alcotest.(check bool) "accepts compact" true
      (R.matches p (Semtypes.Generators.isbn13 rng));
    Alcotest.(check bool) "rejects hyphenated" false
      (R.matches p (Semtypes.Generators.isbn13_hyphenated rng))

let test_corpus_generation () =
  let config =
    { Tablecorpus.Webtables.default_config with n_columns = 500 }
  in
  let columns = Tablecorpus.Webtables.generate ~config () in
  Alcotest.(check int) "column count" 500 (List.length columns);
  let typed =
    List.filter
      (fun c -> c.Tablecorpus.Webtables.truth <> None)
      columns
  in
  Alcotest.(check bool) "typed columns exist" true (List.length typed > 50);
  (* datetime dominates, per Table 2's proportions. *)
  let count ty =
    List.length
      (List.filter (fun c -> c.Tablecorpus.Webtables.truth = Some ty) columns)
  in
  Alcotest.(check bool) "datetime most frequent" true
    (count "datetime" > count "address");
  (* None of the 5 absent popular types occur. *)
  List.iter
    (fun ty ->
      Alcotest.(check int) (ty ^ " absent") 0 (count ty))
    Tablecorpus.Webtables.absent_popular_types;
  (* Determinism. *)
  let columns2 = Tablecorpus.Webtables.generate ~config () in
  Alcotest.(check bool) "generation deterministic" true (columns = columns2)

let test_detection_threshold_single_source () =
  (* Satellite of the compile/serve split: the 0.8 column threshold is
     defined once, in the synthesis layer, and re-exported here — the
     two must never drift apart. *)
  Alcotest.(check (float 0.0)) "threshold pinned to synthesis layer"
    Autotype_core.Synthesis.default_detection_threshold
    Tablecorpus.Detect.detection_threshold;
  Alcotest.(check (float 0.0)) "value is the paper's 0.8" 0.8
    Tablecorpus.Detect.detection_threshold

let test_header_matching () =
  Alcotest.(check bool) "direct" true
    (Tablecorpus.Detect.header_matches "email" (Some "Email"));
  Alcotest.(check bool) "substring" true
    (Tablecorpus.Detect.header_matches "email" (Some "contact e-mail"));
  Alcotest.(check bool) "missing header" false
    (Tablecorpus.Detect.header_matches "email" None);
  Alcotest.(check bool) "unrelated" false
    (Tablecorpus.Detect.header_matches "email" (Some "price"))

let test_detection_small_corpus () =
  (* End-to-end detection on a small corpus: DNF-S finds ISBN columns
     with high precision; the version-number trap is not detected as
     IPv4 by value... (it is ambiguous, Section 9.2) — but the range
     trap must never be detected as ISBN. *)
  let config =
    { Tablecorpus.Webtables.default_config with n_columns = 400 }
  in
  let columns = Tablecorpus.Webtables.generate ~config () in
  let ty = Semtypes.Registry.find_exn "isbn" in
  let det = Tablecorpus.Detect.dnf_detector ty in
  Alcotest.(check bool) "isbn detector usable" true
    det.Tablecorpus.Detect.usable;
  let detected = Tablecorpus.Detect.detect_with_values det columns in
  let prf = Tablecorpus.Detect.score "isbn" ~detected ~columns in
  Alcotest.(check bool) "finds isbn columns" true (prf.Eval.Metrics.tp > 0);
  List.iter
    (fun (c : Tablecorpus.Webtables.column) ->
      if c.Tablecorpus.Webtables.note = "range-looks-like-date" then
        Alcotest.fail "range column detected as ISBN")
    detected

let suite =
  [
    ("regex inference: homogeneous", `Quick, test_infer_homogeneous);
    ("regex inference: length ranges", `Quick, test_infer_length_ranges);
    ("regex inference: heterogeneous", `Quick, test_infer_heterogeneous_fails);
    ("regex fails on unseen variant", `Quick, test_regex_fails_on_unseen_variant);
    ("webtable generation", `Quick, test_corpus_generation);
    ("detection threshold single-sourced", `Quick,
     test_detection_threshold_single_source);
    ("header matching", `Quick, test_header_matching);
    ("detection end-to-end", `Slow, test_detection_small_corpus);
  ]
