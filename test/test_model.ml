(** Tests of the compile/serve split (DESIGN.md §9): the Jsonx codec,
    artifact round-trips, corruption/version rejection, and the model
    registry's LRU serving path. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic; s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* A unique scratch directory per call; the registry layer mkdirs it. *)
let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let stamp = Filename.temp_file "autotype-test-models" "" in
    Sys.remove stamp;
    Printf.sprintf "%s-%d" stamp !n

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* ------------------------------- jsonx ----------------------------- *)

let test_jsonx_roundtrip () =
  let v =
    Model.Jsonx.Obj
      [ ("s", Model.Jsonx.Str "quote \" slash \\ newline \n ctrl \x01 tab \t");
        ("i", Model.Jsonx.Int (-42));
        ("f", Model.Jsonx.Float 0.30000000000000004);
        ("b", Model.Jsonx.Bool true);
        ("n", Model.Jsonx.Null);
        ( "l",
          Model.Jsonx.List
            [ Model.Jsonx.Int 0; Model.Jsonx.Str "caf\xc3\xa9";
              Model.Jsonx.Obj [] ] ) ]
  in
  let s = Model.Jsonx.to_string v in
  Alcotest.(check bool) "single line" false (String.contains s '\n');
  (match Model.Jsonx.parse s with
   | Ok v' -> Alcotest.(check bool) "value round-trips" true (v = v')
   | Error e -> Alcotest.fail ("parse of own output failed: " ^ e));
  (* \uXXXX escapes decode to UTF-8. *)
  (match Model.Jsonx.parse {|"aAé"|} with
   | Ok (Model.Jsonx.Str s) ->
     Alcotest.(check string) "unicode escapes" "aA\xc3\xa9" s
   | _ -> Alcotest.fail "string with escapes must parse")

let test_jsonx_parse_errors () =
  List.iter
    (fun bad ->
      match Model.Jsonx.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" bad)
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\":1,}"; "1 2"; "" ]

let test_jsonx_surrogate_pairs () =
  (* Non-BMP characters arrive as UTF-16 surrogate pairs (RFC 8259 §7);
     the halves must combine into one 4-byte UTF-8 code point. *)
  (match Model.Jsonx.parse {|"\ud83d\ude00"|} with
   | Ok (Model.Jsonx.Str s) ->
     Alcotest.(check string) "U+1F600 as UTF-8" "\xf0\x9f\x98\x80" s
   | Ok _ -> Alcotest.fail "expected a string"
   | Error e -> Alcotest.fail ("surrogate pair must parse: " ^ e));
  (match Model.Jsonx.parse {|"\uD834\uDD1E after"|} with
   | Ok (Model.Jsonx.Str s) ->
     Alcotest.(check string) "U+1D11E with a tail" "\xf0\x9d\x84\x9e after" s
   | Ok _ -> Alcotest.fail "expected a string"
   | Error e -> Alcotest.fail ("surrogate pair must parse: " ^ e));
  (* The decoded bytes survive a print/parse round-trip. *)
  (match Model.Jsonx.parse {|"\ud83d\ude00"|} with
   | Ok v ->
     (match Model.Jsonx.parse (Model.Jsonx.to_string v) with
      | Ok v' -> Alcotest.(check bool) "non-BMP round-trips" true (v = v')
      | Error e -> Alcotest.fail ("round-trip failed: " ^ e))
   | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Model.Jsonx.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" bad)
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error is positioned" bad)
          true
          (contains ~needle:"offset" e))
    [ {|"\ud83d"|};        (* lone high surrogate at end of string *)
      {|"\ud83d rest"|};   (* lone high surrogate before plain text *)
      {|"\udc00"|};        (* lone low surrogate *)
      {|"\ud83d\u0041"|};  (* high surrogate paired with a non-low escape *)
      {|"\u12g4"|};        (* non-hex digit *)
      {|"\u12_4"|};        (* OCaml-ism int_of_string used to accept *)
      {|"\u 123"|};
      {|"\u123"|} ]        (* short escape *)

let test_jsonx_number_grammar () =
  let ok s expected =
    match Model.Jsonx.parse s with
    | Ok v -> Alcotest.(check bool) (s ^ " parses") true (v = expected)
    | Error e -> Alcotest.fail (s ^ " must parse: " ^ e)
  in
  ok "0" (Model.Jsonx.Int 0);
  ok "-0.5" (Model.Jsonx.Float (-0.5));
  ok "10" (Model.Jsonx.Int 10);
  ok "1e2" (Model.Jsonx.Float 100.0);
  ok "1.25E+2" (Model.Jsonx.Float 125.0);
  ok "2e-2" (Model.Jsonx.Float 0.02);
  ok "[0.0]" (Model.Jsonx.List [ Model.Jsonx.Float 0.0 ]);
  (* RFC 8259 rejects these; float_of_string used to accept several. *)
  List.iter
    (fun bad ->
      match Model.Jsonx.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" bad)
      | Error _ -> ())
    [ "+1"; "1."; ".5"; "01"; "-"; "-."; "1e"; "1e+"; "0x10"; "1_000";
      "[1.]"; "[01]"; "[+1]"; "--1"; "1.2.3"; "nan"; "inf" ];
  (* Trailing garbage after a complete value stays rejected. *)
  List.iter
    (fun bad ->
      match Model.Jsonx.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" bad)
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S reports trailing garbage" bad)
          true
          (contains ~needle:"trailing" e))
    [ "1 2"; "{} {}"; "[1] ]"; "null null"; "\"a\" \"b\"" ]

(* ------------------------------ artifacts --------------------------- *)

let roundtrip_type_ids = [ "credit-card"; "ipv4"; "email"; "isbn" ]

(* Compiling runs the whole pipeline; do it once per type for the whole
   suite. *)
let compiled_cache : (string, Autotype_core.Pipeline.compiled) Hashtbl.t =
  Hashtbl.create 8

let compiled_for id =
  match Hashtbl.find_opt compiled_cache id with
  | Some c -> c
  | None ->
    let ty = Semtypes.Registry.find_exn id in
    let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
    let c =
      Autotype_core.Pipeline.compile ~index:(Corpus.search_index ())
        ~query:ty.Semtypes.Registry.name ~positives ()
    in
    Hashtbl.add compiled_cache id c;
    c

let artifact_for id =
  match Model.Artifact.of_compiled (compiled_for id) with
  | Some a -> Model.Artifact.with_type_id id a
  | None -> Alcotest.fail ("no function synthesized for " ^ id)

(* The acceptance workload: held-out positives, true negatives, and a
   few degenerate strings. *)
let workload id =
  let ty = Semtypes.Registry.find_exn id in
  Semtypes.Registry.positive_examples ~n:30 ~seed:99 ty
  @ Eval.Benchmark.negative_test_pool ~n:100 ~seed:7 ty
  @ [ ""; " "; "0"; "null"; String.make 200 'x' ]

let verdicts syn values =
  List.map (Autotype_core.Synthesis.validate syn) values

let test_roundtrip_verdict_parity () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (match Model.Registry.create_dir dir with
   | Error m -> Alcotest.fail m
   | Ok registry ->
     List.iter
       (fun id ->
         let artifact = artifact_for id in
         let live =
           match Autotype_core.Pipeline.best (compiled_for id).c_outcome with
           | Some syn -> syn
           | None -> Alcotest.fail ("no live synthesis for " ^ id)
         in
         let values = workload id in
         let live_verdicts = verdicts live values in
         (* encode/decode round-trip without touching disk *)
         (match Model.Artifact.decode (Model.Artifact.encode artifact) with
          | Error e ->
            Alcotest.fail
              (id ^ ": decode(encode) failed: "
              ^ Model.Artifact.load_error_to_string e)
          | Ok decoded ->
            Alcotest.(check string)
              (id ^ " key survives") (Model.Artifact.key artifact)
              (Model.Artifact.key decoded);
            Alcotest.(check bool)
              (id ^ " decoded verdicts byte-match live") true
              (verdicts (Model.Artifact.to_synthesis decoded) values
              = live_verdicts));
         (* save/load through the registry *)
         (match Model.Registry.save registry artifact with
          | Error m -> Alcotest.fail m
          | Ok _ -> ());
         (match Model.Registry.find registry id with
          | Error e ->
            Alcotest.fail
              (id ^ ": " ^ Model.Artifact.load_error_to_string e)
          | Ok entry ->
            Alcotest.(check bool)
              (id ^ " served verdicts byte-match live") true
              (verdicts entry.Model.Registry.synthesis values = live_verdicts)))
       roundtrip_type_ids)

let save_one_to dir =
  let artifact = artifact_for "ipv4" in
  let path = Filename.concat dir ("ipv4" ^ Model.Artifact.extension) in
  (match Model.Registry.create_dir dir with
   | Error m -> Alcotest.fail m
   | Ok _ -> ());
  (match Model.Artifact.save artifact path with
   | Error m -> Alcotest.fail m
   | Ok () -> ());
  path

let test_truncated_rejected () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = save_one_to dir in
  let bytes = read_file path in
  let truncated = Filename.concat dir "truncated.model" in
  write_file truncated (String.sub bytes 0 (String.length bytes * 2 / 3));
  (match Model.Artifact.load truncated with
   | Error (Model.Artifact.Checksum_mismatch _) -> ()
   | Error e ->
     Alcotest.fail
       ("expected checksum mismatch, got: "
       ^ Model.Artifact.load_error_to_string e)
   | Ok _ -> Alcotest.fail "truncated artifact must not load");
  (* Truncation inside the header is not even a model. *)
  let headerless = Filename.concat dir "headerless.model" in
  write_file headerless (String.sub bytes 0 5);
  match Model.Artifact.load headerless with
  | Error (Model.Artifact.Not_a_model _) -> ()
  | Error e ->
    Alcotest.fail
      ("expected not-a-model, got: " ^ Model.Artifact.load_error_to_string e)
  | Ok _ -> Alcotest.fail "headerless artifact must not load"

let test_checksum_flip_rejected () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = save_one_to dir in
  let bytes = Bytes.of_string (read_file path) in
  (* Flip one hex digit of the recorded md5 (the header's last field). *)
  let md5_pos =
    let s = Bytes.to_string bytes in
    let rec find j =
      if j + 4 > String.length s then Alcotest.fail "no md5 field"
      else if String.sub s j 4 = "md5=" then j + 4
      else find (j + 1)
    in
    find 0
  in
  Bytes.set bytes md5_pos
    (if Bytes.get bytes md5_pos = '0' then '1' else '0');
  let flipped = Filename.concat dir "flipped.model" in
  write_file flipped (Bytes.to_string bytes);
  match Model.Artifact.load flipped with
  | Error (Model.Artifact.Checksum_mismatch { expected; actual }) ->
    Alcotest.(check bool) "expected != actual" true (expected <> actual)
  | Error e ->
    Alcotest.fail
      ("expected checksum mismatch, got: "
      ^ Model.Artifact.load_error_to_string e)
  | Ok _ -> Alcotest.fail "checksum-flipped artifact must not load"

let test_version_unsupported () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = save_one_to dir in
  let bytes = read_file path in
  let v_old = Printf.sprintf "%s v%d " Model.Artifact.magic
      Model.Artifact.format_version in
  let v_new = Printf.sprintf "%s v99 " Model.Artifact.magic in
  let idx =
    let rec find j =
      if j + String.length v_old > String.length bytes then
        Alcotest.fail "version field not found"
      else if String.sub bytes j (String.length v_old) = v_old then j
      else find (j + 1)
    in
    find 0
  in
  let bumped =
    String.sub bytes 0 idx ^ v_new
    ^ String.sub bytes
        (idx + String.length v_old)
        (String.length bytes - idx - String.length v_old)
  in
  let bumped_path = Filename.concat dir "bumped.model" in
  write_file bumped_path bumped;
  match Model.Artifact.load bumped_path with
  | Error (Model.Artifact.Version_unsupported { found; supported } as e) ->
    Alcotest.(check int) "found version" 99 found;
    Alcotest.(check int) "supported version"
      Model.Artifact.format_version supported;
    (* Satellite 2: the message must name the format version. *)
    Alcotest.(check bool) "message names the format version" true
      (contains
         ~needle:(string_of_int Model.Artifact.format_version)
         (Model.Artifact.load_error_to_string e))
  | Error e ->
    Alcotest.fail
      ("expected version-unsupported, got: "
      ^ Model.Artifact.load_error_to_string e)
  | Ok _ -> Alcotest.fail "future-version artifact must not load"

let test_missing_file () =
  match Model.Artifact.load "/nonexistent/never/here.model" with
  | Error (Model.Artifact.File_error _) -> ()
  | Error e ->
    Alcotest.fail
      ("expected file error, got: " ^ Model.Artifact.load_error_to_string e)
  | Ok _ -> Alcotest.fail "missing artifact must not load"

(* ------------------------------ registry ---------------------------- *)

let test_registry_lru () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  match Model.Registry.create_dir ~capacity:2 dir with
  | Error m -> Alcotest.fail m
  | Ok registry ->
    (* Three keys from one compiled artifact: serving is key-based. *)
    let base = artifact_for "ipv4" in
    List.iter
      (fun k ->
        match Model.Registry.save registry (Model.Artifact.with_type_id k base)
        with
        | Ok _ -> ()
        | Error m -> Alcotest.fail m)
      [ "ka"; "kb"; "kc" ];
    Alcotest.(check (list string)) "keys sorted" [ "ka"; "kb"; "kc" ]
      (Model.Registry.keys registry);
    let find k =
      match Model.Registry.find registry k with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Model.Artifact.load_error_to_string e)
    in
    Telemetry.enable ();
    find "ka";  (* miss *)
    find "ka";  (* hit *)
    find "kb";  (* miss *)
    find "kc";  (* miss; capacity 2 evicts ka *)
    find "ka";  (* miss again: was evicted *)
    Telemetry.disable ();
    let hits, misses = Model.Registry.cache_stats registry in
    Alcotest.(check int) "hits" 1 hits;
    Alcotest.(check int) "misses" 4 misses;
    let snap = Telemetry.snapshot () in
    Alcotest.(check bool) "serve.cache_hits counted" true
      (Telemetry.find_counter snap "serve.cache_hits" >= 1);
    Alcotest.(check bool) "serve.cache_misses counted" true
      (Telemetry.find_counter snap "serve.cache_misses" >= 4);
    (* Unknown keys are a clean error naming the available ones. *)
    (match Model.Registry.find registry "nope" with
     | Error (Model.Artifact.File_error msg) ->
       Alcotest.(check bool) "lists available keys" true
         (contains ~needle:"ka" msg)
     | Error e ->
       Alcotest.fail
         ("expected file error, got: " ^ Model.Artifact.load_error_to_string e)
     | Ok _ -> Alcotest.fail "unknown key must not serve")

let test_serving_runs_no_pipeline () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (match Model.Registry.create_dir dir with
   | Error m -> Alcotest.fail m
   | Ok registry ->
     (match Model.Registry.save registry (artifact_for "ipv4") with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m));
  Telemetry.enable ();
  Telemetry.reset ();
  let served_fast = ref false in
  (match Model.Registry.open_dir dir with
   | Error m -> Alcotest.fail m
   | Ok registry ->
     (match Model.Registry.find registry "ipv4" with
      | Error e -> Alcotest.fail (Model.Artifact.load_error_to_string e)
      | Ok entry ->
        served_fast :=
          entry.Model.Registry.artifact.Model.Artifact.summary <> None;
        let det = Tablecorpus.Detect.serve_detector entry in
        Alcotest.(check bool) "serves ipv4" true
          (det.Tablecorpus.Detect.accepts "192.168.0.1");
        Alcotest.(check bool) "rejects junk" false
          (det.Tablecorpus.Detect.accepts "not an ip")));
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "no search spans while serving" 0
    (List.length (Telemetry.spans_named "pipeline.search"));
  Alcotest.(check int) "no analyze spans while serving" 0
    (List.length (Telemetry.spans_named "pipeline.analyze"));
  (* An artifact with a compiled summary serves without even the
     interpreter; otherwise the interpreter route must have run. *)
  if !served_fast then
    Alcotest.(check bool) "the fast path served both values" true
      (Telemetry.find_counter snap "serve.fastpath_hits" >= 2)
  else
    Alcotest.(check bool) "the interpreter did run" true
      (Telemetry.find_counter snap "interp.runs" > 0);
  Alcotest.(check int) "one load span" 1
    (List.length (Telemetry.spans_named "model.load"))

(* -------------------- registry/index desync ------------------------ *)

(* A registry directory whose index.json knows about exactly one model
   (ipv4), built through the registry's own save path. *)
let registry_with_ipv4 dir =
  (match Model.Registry.create_dir dir with
   | Error m -> Alcotest.fail m
   | Ok registry ->
     (match Model.Registry.save registry (artifact_for "ipv4") with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m))

let find_model_file dir =
  match
    List.find_opt
      (fun f -> Filename.check_suffix f Model.Artifact.extension)
      (Array.to_list (Sys.readdir dir))
  with
  | Some f -> Filename.concat dir f
  | None -> Alcotest.fail "no .model file in registry dir"

let test_registry_index_desync () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  registry_with_ipv4 dir;
  (* The index survives; the artifact it points to does not. *)
  Sys.remove (find_model_file dir);
  Telemetry.enable ();
  Telemetry.reset ();
  (match Model.Registry.open_dir dir with
   | Error m -> Alcotest.fail m
   | Ok registry ->
     Alcotest.(check bool) "index still lists ipv4" true
       (Model.Registry.mem registry "ipv4");
     (match Model.Registry.find registry "ipv4" with
      | Error (Model.Artifact.File_error _) -> ()
      | Error e ->
        Alcotest.fail
          ("expected file error, got: "
          ^ Model.Artifact.load_error_to_string e)
      | Ok _ -> Alcotest.fail "deleted artifact must not serve"));
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  (* A missing file is transient (it may be a racing writer), so the
     bounded retry runs to exhaustion before giving up. *)
  Alcotest.(check int) "retry attempts exhausted" 2
    (Telemetry.find_counter snap "retry.attempts");
  Alcotest.(check int) "gave up once" 1
    (Telemetry.find_counter snap "retry.gave_up")

let test_registry_orphan_model () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  registry_with_ipv4 dir;
  (* A .model file the index does not know about. *)
  write_file
    (Filename.concat dir ("orphan" ^ Model.Artifact.extension))
    "not even a model";
  match Model.Registry.open_dir dir with
  | Error m -> Alcotest.fail m
  | Ok registry ->
    Alcotest.(check (list string)) "only indexed keys serve" [ "ipv4" ]
      (Model.Registry.keys registry);
    (match Model.Registry.find registry "orphan" with
     | Error (Model.Artifact.File_error msg) ->
       Alcotest.(check bool) "names the available keys" true
         (contains ~needle:"ipv4" msg)
     | Error e ->
       Alcotest.fail
         ("expected file error, got: "
         ^ Model.Artifact.load_error_to_string e)
     | Ok _ -> Alcotest.fail "orphan must not serve");
    (* The indexed model is unaffected by its orphan neighbour. *)
    (match Model.Registry.find registry "ipv4" with
     | Ok _ -> ()
     | Error e -> Alcotest.fail (Model.Artifact.load_error_to_string e))

let test_registry_truncated_artifact () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  registry_with_ipv4 dir;
  (* Truncate the artifact in place — a torn read mid-load. *)
  let path = find_model_file dir in
  let bytes = read_file path in
  write_file path (String.sub bytes 0 (String.length bytes * 2 / 3));
  Telemetry.enable ();
  Telemetry.reset ();
  (match Model.Registry.open_dir dir with
   | Error m -> Alcotest.fail m
   | Ok registry ->
     (match Model.Registry.find registry "ipv4" with
      | Error (Model.Artifact.Checksum_mismatch _) -> ()
      | Error e ->
        Alcotest.fail
          ("expected checksum mismatch, got: "
          ^ Model.Artifact.load_error_to_string e)
      | Ok _ -> Alcotest.fail "truncated artifact must not serve"));
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "retry attempts exhausted" 2
    (Telemetry.find_counter snap "retry.attempts");
  Alcotest.(check int) "gave up once" 1
    (Telemetry.find_counter snap "retry.gave_up")

let test_fault_corruption_and_recovery () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      Faults.set None;
      rm_rf dir)
  @@ fun () ->
  registry_with_ipv4 dir;
  (* Every read corrupted: the checksum rejects it, the retry gives up,
     the caller gets a clean error. *)
  Faults.set (Some { Faults.default with Faults.p_corrupt = 1.0 });
  Alcotest.(check bool) "fault injection active" true (Faults.active ());
  (match Model.Registry.open_dir dir with
   | Error m -> Alcotest.fail m
   | Ok registry ->
     (match Model.Registry.find registry "ipv4" with
      | Error (Model.Artifact.Checksum_mismatch _) -> ()
      | Error e ->
        Alcotest.fail
          ("expected checksum mismatch, got: "
          ^ Model.Artifact.load_error_to_string e)
      | Ok _ -> Alcotest.fail "corrupted read must not serve"));
  (* Injection off: the same bytes on disk serve fine. *)
  Faults.set None;
  match Model.Registry.open_dir dir with
  | Error m -> Alcotest.fail m
  | Ok registry ->
    (match Model.Registry.find registry "ipv4" with
     | Ok _ -> ()
     | Error e -> Alcotest.fail (Model.Artifact.load_error_to_string e))

let suite =
  [
    ("jsonx round-trip", `Quick, test_jsonx_roundtrip);
    ("jsonx parse errors", `Quick, test_jsonx_parse_errors);
    ("artifact round-trip verdict parity", `Slow, test_roundtrip_verdict_parity);
    ("truncated artifact rejected", `Quick, test_truncated_rejected);
    ("checksum flip rejected", `Quick, test_checksum_flip_rejected);
    ("future version rejected", `Quick, test_version_unsupported);
    ("missing file is a file error", `Quick, test_missing_file);
    ("registry LRU and counters", `Quick, test_registry_lru);
    ("serving runs no pipeline stages", `Quick, test_serving_runs_no_pipeline);
    ("jsonx surrogate pairs", `Quick, test_jsonx_surrogate_pairs);
    ("jsonx number grammar", `Quick, test_jsonx_number_grammar);
    ("registry index desync", `Quick, test_registry_index_desync);
    ("registry orphan artifact", `Quick, test_registry_orphan_model);
    ("registry truncated artifact", `Quick, test_registry_truncated_artifact);
    ("fault-corrupted reads degrade and recover", `Quick,
     test_fault_corruption_and_recovery);
  ]
