(** Tests for the fault-injection subsystem (DESIGN.md §10): spec
    parsing, activation, and the determinism of injected effects. *)

let config_testable =
  Alcotest.testable
    (fun fmt (c : Faults.config) ->
      Format.fprintf fmt
        "{delay_ms=%g; p_kill=%g; p_corrupt=%g; p_reject=%g; seed=%d}"
        c.Faults.delay_ms c.Faults.p_kill c.Faults.p_corrupt c.Faults.p_reject
        c.Faults.seed)
    ( = )

let test_parse_ok () =
  (match Faults.parse "delay_ms=5,p_kill=0.25,p_corrupt=0.5,seed=42" with
   | Ok c ->
     Alcotest.check config_testable "full spec"
       { Faults.default with
         Faults.delay_ms = 5.0; p_kill = 0.25; p_corrupt = 0.5; seed = 42 }
       c
   | Error e -> Alcotest.fail e);
  (match Faults.parse "p_kill=1" with
   | Ok c ->
     Alcotest.check config_testable "partial spec keeps defaults"
       { Faults.default with Faults.p_kill = 1.0 }
       c
   | Error e -> Alcotest.fail e);
  (match Faults.parse " p_corrupt=0.1 , seed=7 " with
   | Ok c ->
     Alcotest.(check int) "whitespace tolerated" 7 c.Faults.seed
   | Error e -> Alcotest.fail e)

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" bad)
      | Error _ -> ())
    [ "p_kill=1.5";    (* probability above 1 *)
      "p_kill=-0.1";   (* probability below 0 *)
      "p_corrupt=abc"; (* not a number *)
      "delay_ms=-3";   (* negative delay *)
      "bogus=1";       (* unknown key *)
      "delay_ms";      (* no value *)
      "seed=1.5" ]     (* non-integer seed *)

let with_faults cfg f =
  Fun.protect ~finally:(fun () -> Faults.set None) @@ fun () ->
  Faults.set cfg;
  f ()

let test_activation () =
  with_faults None (fun () ->
      Alcotest.(check bool) "inactive by default" false (Faults.active ());
      Alcotest.(check bool) "no kill when inactive" false
        (Faults.should_kill ());
      Alcotest.(check bool) "no corruption when inactive" true
        (Faults.corrupt "payload" = None);
      (* delay_run with nothing configured must return immediately. *)
      Faults.delay_run ());
  with_faults (Some Faults.default) (fun () ->
      Alcotest.(check bool) "all-zero config counts as active" true
        (Faults.active ());
      Alcotest.(check bool) "zero probability never kills" false
        (Faults.should_kill ());
      Alcotest.(check bool) "zero probability never corrupts" true
        (Faults.corrupt "payload" = None))

let test_effects_deterministic () =
  (* p=1 decisions fire regardless of the draw, and the corruption
     itself (which byte, which flip) is a pure function of the bytes —
     so the same input always produces the same corrupted output. *)
  with_faults
    (Some { Faults.default with Faults.p_kill = 1.0; Faults.p_corrupt = 1.0 })
    (fun () ->
      Alcotest.(check bool) "p_kill=1 kills" true (Faults.should_kill ());
      Alcotest.(check bool) "p_kill=1 kills again" true
        (Faults.should_kill ());
      let original = "abcdefgh" in
      (match (Faults.corrupt original, Faults.corrupt original) with
       | Some a, Some b ->
         Alcotest.(check string) "corruption is repeatable" a b;
         Alcotest.(check bool) "corruption changed the bytes" true
           (a <> original);
         Alcotest.(check int) "corruption preserves length"
           (String.length original) (String.length a);
         (* One byte flipped, past the midpoint, by XOR 0x20. *)
         let diffs = ref [] in
         String.iteri
           (fun i c -> if c <> original.[i] then diffs := i :: !diffs)
           a;
         (match !diffs with
          | [ i ] ->
            Alcotest.(check int) "midpoint byte" (String.length original / 2)
              i;
            Alcotest.(check int) "xor 0x20 flip"
              (Char.code original.[i] lxor 0x20)
              (Char.code a.[i])
          | _ -> Alcotest.fail "exactly one byte must differ")
       | _ -> Alcotest.fail "p_corrupt=1 must corrupt");
      (* Empty payloads have no byte to flip and pass through. *)
      Alcotest.(check bool) "empty payload untouched" true
        (Faults.corrupt "" = None))

let suite =
  [
    ("spec parsing accepts valid specs", `Quick, test_parse_ok);
    ("spec parsing rejects invalid specs", `Quick, test_parse_errors);
    ("activation gating", `Quick, test_activation);
    ("injected effects are deterministic", `Quick,
     test_effects_deterministic);
  ]
