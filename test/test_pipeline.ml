(** End-to-end tests of the synthesis pipeline (Figure 6): search →
    candidates → negative generation → DNF ranking → synthesized
    validator. *)

let synthesize ?config ?pool type_id =
  let ty = Semtypes.Registry.find_exn type_id in
  let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
  Autotype_core.Pipeline.synthesize ?config ?pool
    ~index:(Corpus.search_index ())
    ~query:ty.Semtypes.Registry.name ~positives ()

let top_is_relevant type_id (o : Autotype_core.Pipeline.outcome) =
  match o.Autotype_core.Pipeline.ranked with
  | [] -> false
  | r :: _ ->
    let c = r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate in
    Repolib.Repo.intends c.Repolib.Candidate.repo
      ~func_name:c.Repolib.Candidate.func_name ~type_id

let test_credit_card_end_to_end () =
  let o = synthesize "credit-card" in
  Alcotest.(check bool) "found functions" true (o.ranked <> []);
  Alcotest.(check bool) "top-1 is a credit-card function" true
    (top_is_relevant "credit-card" o);
  (* Checksum types are separated already by S1 mutations (Section 6). *)
  (match o.strategy_used with
   | Some Autotype_core.Negative.S1 -> ()
   | Some s ->
     Alcotest.failf "expected S1 for credit card, got %s"
       (Autotype_core.Negative.strategy_to_string s)
   | None -> Alcotest.fail "no strategy recorded");
  (* The synthesized validator generalizes to held-out data. *)
  match Autotype_core.Pipeline.best o with
  | None -> Alcotest.fail "no synthesized function"
  | Some syn ->
    let ty = Semtypes.Registry.find_exn "credit-card" in
    let held_out = Semtypes.Registry.positive_examples ~n:10 ~seed:99 ty in
    List.iter
      (fun p ->
        if not (Autotype_core.Synthesis.validate syn p) then
          Alcotest.failf "held-out positive %S rejected" p)
      held_out;
    (* Wild negatives are rejected. *)
    let rng = Semtypes.Generators.make_rng 123 in
    let wild = List.init 50 (fun _ -> Semtypes.Generators.wild_cell rng) in
    let accepted =
      List.length (List.filter (Autotype_core.Synthesis.validate syn) wild)
    in
    if accepted > 5 then
      Alcotest.failf "synthesized card validator accepted %d/50 wild cells"
        accepted

let test_ipv6_uses_s2 () =
  (* Example 6: S1 keeps ':' structure and produces positives, so IPv6
     requires escalation to S2 (mutating punctuation). *)
  let o = synthesize "ipv6" in
  match o.strategy_used with
  | Some Autotype_core.Negative.S2 | Some Autotype_core.Negative.S1 ->
    (* S1 can occasionally suffice when hex-digit mutations produce
       group-length violations; S2 is the expected common case. *)
    Alcotest.(check bool) "top is relevant" true (top_is_relevant "ipv6" o)
  | Some s ->
    Alcotest.failf "unexpected strategy %s"
      (Autotype_core.Negative.strategy_to_string s)
  | None -> Alcotest.fail "ipv6: no functions found"

let test_gene_sequence_needs_s3 () =
  (* Types whose alphabet has no punctuation and closed content (FASTA
     bodies, roman numerals) defeat S1/S2: mutations stay in-alphabet. *)
  let ty = Semtypes.Registry.find_exn "roman-numeral" in
  let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:3 ty in
  let alpha = Autotype_core.Negative.infer_alphabet positives in
  (* Roman numerals: the inferred alphabet is a subset of IVXLCDM. *)
  List.iter
    (fun c ->
      if not (String.contains "IVXLCDM" c) then
        Alcotest.failf "unexpected alphabet char %c" c)
    alpha.Autotype_core.Negative.full;
  let o = synthesize "roman-numeral" in
  (match o.strategy_used with
   | Some s ->
     Printf.printf "roman numerals separated at %s\n"
       (Autotype_core.Negative.strategy_to_string s)
   | None -> Alcotest.fail "roman: no functions found");
  Alcotest.(check bool) "top is relevant" true
    (top_is_relevant "roman-numeral" o)

let test_several_popular_types () =
  List.iter
    (fun type_id ->
      let o = synthesize type_id in
      if o.Autotype_core.Pipeline.ranked = [] then
        Alcotest.failf "%s: nothing synthesized" type_id;
      if not (top_is_relevant type_id o) then
        let top =
          match o.ranked with
          | r :: _ ->
            Repolib.Candidate.describe
              r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate
          | [] -> "<none>"
        in
        Alcotest.failf "%s: top-1 not relevant (%s)" type_id top)
    [ "isbn"; "ipv4"; "email"; "iban"; "vin" ]

let test_synthesized_handles_format_variants () =
  (* Section 9.2: functions are robust to formatting (hyphenated ISBNs)
     where inferred regexes are not. *)
  let o = synthesize "isbn" in
  match Autotype_core.Pipeline.best o with
  | None -> Alcotest.fail "no ISBN function"
  | Some syn ->
    let rng = Semtypes.Generators.make_rng 7 in
    for _ = 1 to 10 do
      let hyphenated = Semtypes.Generators.isbn13_hyphenated rng in
      if not (Autotype_core.Synthesis.validate syn hyphenated) then
        Alcotest.failf "hyphenated ISBN %S rejected" hyphenated
    done

let test_telemetry_instrumentation () =
  (* A synthesize run under telemetry records every stage span, and the
     counters agree with the outcome record. *)
  Telemetry.enable ();
  let o = synthesize "credit-card" in
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  List.iter
    (fun name ->
      if Telemetry.spans_named name = [] then
        Alcotest.failf "no %S span recorded" name)
    [ "pipeline.synthesize"; "pipeline.search"; "pipeline.analyze";
      "pipeline.probe"; "pipeline.attempt"; "pipeline.negatives";
      "pipeline.trace"; "pipeline.rank"; "search.search";
      "ranking.rank_one" ];
  Alcotest.(check int) "exactly one synthesize span" 1
    (List.length (Telemetry.spans_named "pipeline.synthesize"));
  Alcotest.(check int) "pipeline.runs" 1
    (Telemetry.find_counter snap "pipeline.runs");
  Alcotest.(check int) "candidates_kept agrees with outcome" o.candidates_tried
    (Telemetry.find_counter snap "pipeline.candidates_kept");
  Alcotest.(check int) "repos agree with outcome" o.repos_searched
    (Telemetry.find_counter snap "search.repos_returned");
  Alcotest.(check bool) "candidates were traced" true
    (Telemetry.find_counter snap "ranking.candidates_traced" > 0);
  Alcotest.(check bool) "interpreter ran" true
    (Telemetry.find_counter snap "interp.runs" > 0);
  Alcotest.(check bool) "interpreter counted steps" true
    (Telemetry.find_counter snap "interp.steps" > 0);
  (* Stage spans nest under the synthesize root. *)
  let root = List.hd (Telemetry.spans_named "pipeline.synthesize") in
  List.iter
    (fun name ->
      List.iter
        (fun (s : Telemetry.span) ->
          if s.Telemetry.sp_parent <> Some root.Telemetry.sp_id then
            Alcotest.failf "%S span not nested under pipeline.synthesize" name)
        (Telemetry.spans_named name))
    [ "pipeline.search"; "pipeline.analyze"; "pipeline.probe";
      "pipeline.attempt" ];
  Telemetry.reset ()

(* What optimisation must not change about an outcome: the strategy,
   the negative set, and the full ranked list down to exact scores. *)
let outcome_signature (o : Autotype_core.Pipeline.outcome) =
  let strategy =
    match o.Autotype_core.Pipeline.strategy_used with
    | Some s -> Autotype_core.Negative.strategy_to_string s
    | None -> "-"
  in
  let ranked =
    List.map
      (fun (r : Autotype_core.Ranking.ranked) ->
        Printf.sprintf "%s|%s|%.17g"
          (Repolib.Candidate.id
             r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate)
          (Autotype_core.Dnf.to_string r.Autotype_core.Ranking.dnf)
          r.Autotype_core.Ranking.score)
      o.Autotype_core.Pipeline.ranked
  in
  (strategy, o.Autotype_core.Pipeline.negatives, ranked)

let test_parallel_matches_sequential () =
  (* The execution engine's order-preserving pool must leave the
     synthesize outcome byte-identical at any job count. *)
  List.iter
    (fun type_id ->
      let seq = synthesize type_id in
      let par =
        Exec.Pool.with_pool ~jobs:4 (fun pool -> synthesize ~pool type_id)
      in
      let s_strategy, s_negs, s_ranked = outcome_signature seq in
      let p_strategy, p_negs, p_ranked = outcome_signature par in
      Alcotest.(check string)
        (type_id ^ ": strategy") s_strategy p_strategy;
      Alcotest.(check (list string))
        (type_id ^ ": negatives") s_negs p_negs;
      Alcotest.(check (list string))
        (type_id ^ ": ranked list") s_ranked p_ranked)
    [ "credit-card"; "ipv4" ]

let test_positives_traced_once () =
  (* The trace cache must interpret each positive at most once per
     candidate per synthesize call, across every S1→S2→S3 attempt, and
     duplicate negatives must be served from the cache. *)
  Telemetry.reset ();
  Telemetry.enable ();
  let o = synthesize "email" in
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  let counter = Telemetry.find_counter snap in
  let attempts = counter "pipeline.strategy_attempts" in
  Alcotest.(check bool) "email escalates past S1" true (attempts >= 2);
  (* Positives run exactly once per candidate even though [attempts]
     strategy rounds each asked for their traces. *)
  Alcotest.(check int) "positive runs = candidates * positives"
    (o.Autotype_core.Pipeline.candidates_tried * 20)
    (counter "ranking.positive_runs");
  Alcotest.(check bool) "cache served repeat traces" true
    (counter "ranking.trace_cache_hits" > 0);
  (* Every interpreter run is accounted for: executability probes plus
     cache misses, minus runs aborted by infrastructure failures (their
     telemetry never flushes). *)
  let expected_runs =
    counter "driver.probes"
    - counter "driver.rejected_unexecutable"
    + counter "ranking.positive_runs"
    + counter "ranking.negative_runs"
    - counter "driver.infra_failures"
  in
  Alcotest.(check int) "interp.runs fully accounted" expected_runs
    (counter "interp.runs");
  Telemetry.reset ()

let suite =
  [
    ("credit card end-to-end", `Slow, test_credit_card_end_to_end);
    ("telemetry instrumentation", `Slow, test_telemetry_instrumentation);
    ("parallel matches sequential", `Slow, test_parallel_matches_sequential);
    ("positives traced once", `Slow, test_positives_traced_once);
    ("ipv6 escalates to S2", `Slow, test_ipv6_uses_s2);
    ("closed-alphabet types escalate", `Slow, test_gene_sequence_needs_s3);
    ("several popular types", `Slow, test_several_popular_types);
    ("format variants", `Slow, test_synthesized_handles_format_variants);
  ]
