(** Tests for lib/staticcheck: the five lint passes on small fixtures
    (asserting exact diagnostic codes and line numbers), the analyzer's
    per-candidate verdicts, lenient per-file parsing, and ranked-output
    parity of the pipeline with pruning on and off. *)

let parse ~file src = Minilang.Parser.parse ~file src

let diags_of ?(file = "fix.py") src =
  Staticcheck.Check.check_programs [ parse ~file src ]

let pp_diags ds =
  String.concat "; " (List.map Staticcheck.Diag.to_string ds)

(* The fixture diagnostic we are looking for, by exact code and line. *)
let assert_has ~code ~line ds =
  if
    not
      (List.exists
         (fun (d : Staticcheck.Diag.t) ->
           d.Staticcheck.Diag.code = code
           && d.Staticcheck.Diag.site.Minilang.Ast.line = line)
         ds)
  then
    Alcotest.failf "expected %s at line %d, got: %s" code line (pp_diags ds)

let assert_codes expected ds =
  Alcotest.(check (list string))
    "diagnostic codes" expected
    (List.map (fun (d : Staticcheck.Diag.t) -> d.Staticcheck.Diag.code) ds)

(* ---------------------------- fixtures ------------------------------ *)

let test_undefined_var () =
  let ds =
    diags_of
      {|def check(s):
    if len(s) > 3:
        return helperx(s)
    return False
|}
  in
  assert_has ~code:"E101" ~line:3 ds;
  assert_codes [ "E101" ] ds

let test_use_before_assign () =
  let ds =
    diags_of
      {|def tally(s):
    for ch in s:
        total = total + 1
    return 0
|}
  in
  assert_has ~code:"E102" ~line:3 ds

let test_arity_error () =
  let ds =
    diags_of
      {|def f(s):
    return len(s, 10)
|}
  in
  assert_has ~code:"E103" ~line:2 ds

let test_dead_branch () =
  let ds =
    diags_of
      {|def f(s):
    if False:
        return 1
    return len(s)
|}
  in
  assert_has ~code:"W401" ~line:2 ds

let test_unreachable_after_return () =
  let ds =
    diags_of
      {|def f(s):
    return len(s)
    s = s + "x"
|}
  in
  assert_has ~code:"W402" ~line:3 ds

let test_input_never_used () =
  let ds =
    diags_of
      {|def log_it(value):
    print(value)
    return True
|}
  in
  assert_has ~code:"W405" ~line:1 ds

let test_infinite_loop () =
  let ds =
    diags_of
      {|def f(s):
    n = len(s)
    while n > 0:
        s = s + "x"
    return n
|}
  in
  assert_has ~code:"W404" ~line:3 ds

let test_shadowed_builtin () =
  let ds =
    diags_of
      {|def f(s):
    len = 3
    return s
|}
  in
  assert_has ~code:"W201" ~line:2 ds

let test_clean_function () =
  let ds =
    diags_of
      {|def valid(s):
    if len(s) == 0:
        return False
    return s.isdigit()
|}
  in
  assert_codes [] ds

let test_guarded_nameerror_is_warning () =
  (* A NameError-catching try around an undefined name downgrades the
     finding to the guarded-variant warning. *)
  let ds =
    diags_of
      {|def f(s):
    try:
        return mystery(s)
    except NameError:
        return False
|}
  in
  assert_has ~code:"W101" ~line:3 ds;
  if List.exists Staticcheck.Diag.is_error ds then
    Alcotest.failf "guarded use must not be an error: %s" (pp_diags ds)

(* ----------------------------- verdicts ----------------------------- *)

let repo_of src =
  Repolib.Repo.make "test/staticcheck-fixture" "fixture"
    [ { Repolib.Repo.path = "fix.py"; source = src } ]

let candidate_named repo name =
  match
    List.find_opt
      (fun (c : Repolib.Candidate.t) ->
        c.Repolib.Candidate.func_name = name)
      (Repolib.Analyzer.candidates_of_repo repo)
  with
  | Some c -> c
  | None -> Alcotest.failf "candidate %s not extracted" name

let test_verdict_unrankable () =
  let repo =
    repo_of
      {|def sink(value):
    print(value)
    return True

def probe(value):
    return len(value) > 3
|}
  in
  let v = Repolib.Analyzer.verdict (candidate_named repo "sink") in
  Alcotest.(check bool) "sink is unrankable" false
    v.Repolib.Analyzer.rankable;
  let v = Repolib.Analyzer.verdict (candidate_named repo "probe") in
  Alcotest.(check bool) "probe is rankable" true v.Repolib.Analyzer.rankable

let test_verdict_split_call_always_rankable () =
  (* The driver raises ValueError on a component-count mismatch before
     the function runs, so even an input-ignoring two-parameter function
     stays rankable under Split_call. *)
  let repo =
    repo_of
      {|def pair_sink(a, b):
    print(a)
    print(b)
    return True
|}
  in
  let cs =
    List.filter
      (fun (c : Repolib.Candidate.t) ->
        match c.Repolib.Candidate.invocation with
        | Repolib.Candidate.Split_call _ -> true
        | _ -> false)
      (Repolib.Analyzer.candidates_of_repo repo)
  in
  Alcotest.(check bool) "split candidates extracted" true (cs <> []);
  List.iter
    (fun c ->
      let v = Repolib.Analyzer.verdict c in
      Alcotest.(check bool) "split_call rankable" true
        v.Repolib.Analyzer.rankable)
    cs

let test_budget_hint_spin_loop () =
  let repo =
    repo_of
      {|def spin(s):
    n = 0
    while True:
        pass
    return n

def bounded(s):
    n = len(s)
    while n > 0:
        n = n - 1
    return n
|}
  in
  let v = Repolib.Analyzer.verdict (candidate_named repo "spin") in
  (match v.Repolib.Analyzer.budget_hint with
   | Some b ->
     Alcotest.(check int) "spin budget" Staticcheck.Loops.spin_budget b
   | None -> Alcotest.fail "spin loop should get a budget hint");
  let v = Repolib.Analyzer.verdict (candidate_named repo "bounded") in
  Alcotest.(check bool) "bounded loop has no hint" true
    (v.Repolib.Analyzer.budget_hint = None);
  (* The hinted config really shrinks max_steps, the run still ends in
     Hit_limit, and the feature set is identical to the full-budget run
     (the loop head's repeated branch event dedupes into one literal). *)
  let c = candidate_named repo "spin" in
  let config = Repolib.Driver.config_for c in
  (* The effective budget is the min of the loop pass's spin hint and
     the abstract interpreter's (usually tighter) spin-prefix cost —
     see test_absint's conflict regression for the exact min law. *)
  Alcotest.(check bool) "config_for caps at the spin hint" true
    (config.Minilang.Interp.max_steps <= Staticcheck.Loops.spin_budget);
  Alcotest.(check bool) "config_for really shrinks the budget" true
    (config.Minilang.Interp.max_steps
     < Repolib.Driver.default_config.Minilang.Interp.max_steps);
  let hinted = Repolib.Driver.run_safe ~config c "abc" in
  (match hinted.Minilang.Interp.outcome with
   | Minilang.Interp.Hit_limit _ -> ()
   | _ -> Alcotest.fail "spin run should hit the step limit");
  let full = Repolib.Driver.run_safe c "abc" in
  Alcotest.(check bool) "hinted run really uses fewer steps" true
    (hinted.Minilang.Interp.steps_used < full.Minilang.Interp.steps_used);
  let feats r =
    Autotype_core.Feature.Literal_set.elements
      (Autotype_core.Feature.featurize r.Minilang.Interp.trace)
  in
  Alcotest.(check int) "same feature count either way"
    (List.length (feats full))
    (List.length (feats hinted));
  Alcotest.(check (list string)) "same features either way"
    (List.map Autotype_core.Feature.literal_to_string (feats full))
    (List.map Autotype_core.Feature.literal_to_string (feats hinted))

(* ----------------------- lenient repo parsing ----------------------- *)

let test_analyzer_skips_unparseable_file () =
  let repo =
    Repolib.Repo.make "test/partial-parse" "fixture"
      [
        { Repolib.Repo.path = "good.py";
          source = "def ok(s):\n    return len(s) > 0\n" };
        { Repolib.Repo.path = "bad.py"; source = "def broken(:\n" };
      ]
  in
  let progs, skipped = Repolib.Repo.parse_each repo in
  Alcotest.(check int) "one file parses" 1 (List.length progs);
  Alcotest.(check int) "one file skipped" 1 (List.length skipped);
  let cs = Repolib.Analyzer.candidates_of_repo repo in
  Alcotest.(check bool) "candidates from the good file survive" true
    (List.exists
       (fun (c : Repolib.Candidate.t) ->
         c.Repolib.Candidate.func_name = "ok")
       cs);
  (* The skipped file surfaces as an E100 in the repo's lint report. *)
  let ds = Repolib.Analyzer.repo_diagnostics repo in
  assert_has ~code:"E100" ~line:1 ds;
  (* And the lenient driver can still execute the surviving candidate. *)
  let r = Repolib.Driver.run_safe (candidate_named repo "ok") "xyz" in
  match r.Minilang.Interp.outcome with
  | Minilang.Interp.Finished (Minilang.Value.Vbool true) -> ()
  | _ -> Alcotest.fail "candidate from partially-parsed repo should run"

(* ------------------------ pipeline parity --------------------------- *)

let test_pipeline_pruning_parity () =
  (* With pruning on, the ranked output must be identical to pruning
     off: pruned candidates trace identically on every input, so they
     can never rank (DESIGN.md §8). *)
  let ty = Semtypes.Registry.find_exn "credit-card" in
  let positives = Semtypes.Registry.positive_examples ~n:20 ~seed:11 ty in
  let run staticcheck =
    let config = { Autotype_core.Pipeline.default_config with staticcheck } in
    let o =
      Autotype_core.Pipeline.synthesize ~config
        ~index:(Corpus.search_index ())
        ~query:ty.Semtypes.Registry.name ~positives ()
    in
    List.map
      (fun (r : Autotype_core.Ranking.ranked) ->
        ( Repolib.Candidate.describe
            r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate,
          Autotype_core.Dnf.to_string r.Autotype_core.Ranking.dnf ))
      o.Autotype_core.Pipeline.ranked
  in
  let with_static = run true and without_static = run false in
  Alcotest.(check (list (pair string string)))
    "ranked output identical with and without static pruning"
    without_static with_static

let suite =
  [
    Alcotest.test_case "E101 undefined variable" `Quick test_undefined_var;
    Alcotest.test_case "E102 use before assign" `Quick test_use_before_assign;
    Alcotest.test_case "E103 builtin arity" `Quick test_arity_error;
    Alcotest.test_case "W401 dead branch" `Quick test_dead_branch;
    Alcotest.test_case "W402 unreachable code" `Quick
      test_unreachable_after_return;
    Alcotest.test_case "W405 input never used" `Quick test_input_never_used;
    Alcotest.test_case "W404 infinite loop" `Quick test_infinite_loop;
    Alcotest.test_case "W201 shadowed builtin" `Quick test_shadowed_builtin;
    Alcotest.test_case "clean function" `Quick test_clean_function;
    Alcotest.test_case "guarded NameError is warning" `Quick
      test_guarded_nameerror_is_warning;
    Alcotest.test_case "verdict: input-flow pruning" `Quick
      test_verdict_unrankable;
    Alcotest.test_case "verdict: split_call never pruned" `Quick
      test_verdict_split_call_always_rankable;
    Alcotest.test_case "verdict: spin-loop budget hint" `Quick
      test_budget_hint_spin_loop;
    Alcotest.test_case "analyzer skips unparseable files" `Quick
      test_analyzer_skips_unparseable_file;
    Alcotest.test_case "pipeline pruning parity" `Slow
      test_pipeline_pruning_parity;
  ]
