(** Tests of the telemetry subsystem: span nesting and durations,
    counter/histogram snapshots, the disabled no-op mode, and the JSONL
    export shape. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_span_nesting () =
  Telemetry.enable ();
  let result =
    Telemetry.with_span "outer" ~attrs:[ ("who", Telemetry.S "test") ]
      (fun () ->
        Telemetry.with_span "inner" (fun () -> ());
        Telemetry.with_span "inner" (fun () -> ());
        42)
  in
  Telemetry.disable ();
  Alcotest.(check int) "with_span returns the thunk's value" 42 result;
  let spans = Telemetry.spans () in
  Alcotest.(check int) "three spans recorded" 3 (List.length spans);
  let outer =
    List.find (fun s -> s.Telemetry.sp_name = "outer") spans
  in
  let inners = Telemetry.spans_named "inner" in
  Alcotest.(check int) "two inner spans" 2 (List.length inners);
  List.iter
    (fun (i : Telemetry.span) ->
      Alcotest.(check bool) "inner's parent is outer" true
        (i.Telemetry.sp_parent = Some outer.Telemetry.sp_id);
      (* Duration monotonicity: a child span cannot run longer than its
         enclosing span, and no duration is negative. *)
      Alcotest.(check bool) "child duration <= parent duration" true
        (Int64.compare i.Telemetry.sp_dur_ns outer.Telemetry.sp_dur_ns <= 0);
      Alcotest.(check bool) "child starts after parent" true
        (Int64.compare outer.Telemetry.sp_start_ns i.Telemetry.sp_start_ns
         <= 0))
    inners;
  Alcotest.(check bool) "no negative durations" true
    (List.for_all (fun s -> Int64.compare s.Telemetry.sp_dur_ns 0L >= 0) spans);
  Alcotest.(check bool) "outer has no parent" true
    (outer.Telemetry.sp_parent = None);
  Alcotest.(check bool) "outer kept its attribute" true
    (List.mem_assoc "who" outer.Telemetry.sp_attrs)

let test_span_survives_exception () =
  Telemetry.enable ();
  (try
     Telemetry.with_span "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Telemetry.disable ();
  Alcotest.(check int) "span recorded despite the exception" 1
    (List.length (Telemetry.spans_named "failing"))

let test_metrics_snapshot () =
  Telemetry.enable ();
  let c = Telemetry.counter "test.counter" in
  let h = Telemetry.histogram "test.histogram" in
  Telemetry.incr c;
  Telemetry.incr ~by:9 c;
  List.iter (Telemetry.observe h) [ 2.0; 4.0; 6.0 ];
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "counter accumulated" 10
    (Telemetry.find_counter snap "test.counter");
  Alcotest.(check int) "unknown counter defaults to 0" 0
    (Telemetry.find_counter snap "test.no-such-counter");
  let hs = List.assoc "test.histogram" snap.Telemetry.histograms in
  Alcotest.(check int) "histogram count" 3 hs.Telemetry.h_count;
  Alcotest.(check (float 1e-9)) "histogram mean" 4.0 hs.Telemetry.h_mean;
  Alcotest.(check (float 1e-9)) "histogram min" 2.0 hs.Telemetry.h_min;
  Alcotest.(check (float 1e-9)) "histogram max" 6.0 hs.Telemetry.h_max;
  (* enable() resets values but keeps registered handles. *)
  Telemetry.enable ();
  let snap2 = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "enable() zeroes counters" 0
    (Telemetry.find_counter snap2 "test.counter")

let test_noop_when_disabled () =
  Telemetry.disable ();
  Telemetry.reset ();
  let c = Telemetry.counter "test.disabled-counter" in
  let h = Telemetry.histogram "test.disabled-histogram" in
  let v =
    Telemetry.with_span "disabled-span" (fun () ->
        Telemetry.incr ~by:100 c;
        Telemetry.observe h 5.0;
        Telemetry.add_attr "k" (Telemetry.I 1);
        "through")
  in
  Alcotest.(check string) "thunk still runs" "through" v;
  Alcotest.(check int) "no spans recorded" 0
    (List.length (Telemetry.spans ()));
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "counter untouched" 0
    (Telemetry.find_counter snap "test.disabled-counter");
  let hs = List.assoc "test.disabled-histogram" snap.Telemetry.histograms in
  Alcotest.(check int) "histogram untouched" 0 hs.Telemetry.h_count

let test_jsonl_export () =
  Telemetry.enable ();
  Telemetry.with_span "export.root"
    ~attrs:[ ("q", Telemetry.S "say \"hi\""); ("n", Telemetry.I 7) ]
    (fun () -> Telemetry.with_span "export.child" (fun () -> ()));
  Telemetry.disable ();
  let path = Filename.temp_file "telemetry" ".jsonl" in
  (match Telemetry.write_jsonl path with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "write_jsonl failed: %s" msg);
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  let lines = read [] in
  Sys.remove path;
  Alcotest.(check int) "one line per span" 2 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length line > 1 && line.[0] = '{'
         && line.[String.length line - 1] = '}');
      List.iter
        (fun field ->
          Alcotest.(check bool) (field ^ " present") true
            (contains ~needle:("\"" ^ field ^ "\":") line))
        [ "name"; "id"; "parent"; "start_ms"; "dur_ms"; "attrs" ])
    lines;
  let root = List.hd lines in
  Alcotest.(check bool) "root parent is null" true
    (contains ~needle:"\"parent\":null" root);
  Alcotest.(check bool) "string attr is escaped" true
    (contains ~needle:"say \\\"hi\\\"" root);
  let child = List.nth lines 1 in
  Alcotest.(check bool) "child parent is the root id" true
    (contains ~needle:"\"parent\":0" child)

let test_render () =
  Telemetry.enable ();
  let c = Telemetry.counter "test.render-counter" in
  Telemetry.incr ~by:3 c;
  Telemetry.with_span "render.root" (fun () ->
      Telemetry.with_span "render.leaf" (fun () -> ()));
  let tree = Telemetry.render_tree () in
  let metrics = Telemetry.render_metrics (Telemetry.snapshot ()) in
  Telemetry.disable ();
  Alcotest.(check bool) "tree lists both spans" true
    (contains ~needle:"render.root" tree
     && contains ~needle:"render.leaf" tree);
  Alcotest.(check bool) "leaf is indented under root" true
    (contains ~needle:"\n  render.leaf" tree);
  Alcotest.(check bool) "metrics table has the counter" true
    (contains ~needle:"test.render-counter" metrics)

let test_multi_domain_metrics () =
  (* Counters and histograms accept concurrent updates from several
     domains without losing any (atomics / per-domain shards). *)
  Telemetry.reset ();
  Telemetry.enable ();
  let c = Telemetry.counter "test.domains-counter" in
  let h = Telemetry.histogram "test.domains-histogram" in
  let per_domain = 1_000 in
  let worker d () =
    for _ = 1 to per_domain do
      Telemetry.incr c;
      Telemetry.observe h (float_of_int (d + 1))
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "no lost counter increments" (4 * per_domain)
    (Telemetry.find_counter snap "test.domains-counter");
  let hs = List.assoc "test.domains-histogram" snap.Telemetry.histograms in
  Alcotest.(check int) "no lost observations" (4 * per_domain)
    hs.Telemetry.h_count;
  Alcotest.(check (float 1e-9)) "min across domains" 1.0 hs.Telemetry.h_min;
  Alcotest.(check (float 1e-9)) "max across domains" 4.0 hs.Telemetry.h_max;
  Alcotest.(check (float 1e-6)) "mean across domains" 2.5 hs.Telemetry.h_mean;
  Telemetry.reset ()

let test_context () =
  (* Outside any context: no identity, zero trace id. *)
  Alcotest.(check bool) "no current context initially" true
    (Telemetry.Context.current () = None);
  Alcotest.(check bool) "trace_id is 0 outside any context" true
    (Telemetry.Context.trace_id () = 0L);
  let a = Telemetry.Context.root () in
  let b = Telemetry.Context.root () in
  Alcotest.(check bool) "trace ids are non-zero" true
    (a.Telemetry.Context.trace_id <> 0L && b.Telemetry.Context.trace_id <> 0L);
  Alcotest.(check bool) "trace ids are distinct" true
    (a.Telemetry.Context.trace_id <> b.Telemetry.Context.trace_id);
  Alcotest.(check bool) "request ids are distinct" true
    (a.Telemetry.Context.request_id <> b.Telemetry.Context.request_id);
  let hex = Telemetry.Context.trace_id_hex a in
  Alcotest.(check int) "hex id is 16 digits" 16 (String.length hex);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    hex;
  (* Nesting installs and restores, exception-safe. *)
  Telemetry.Context.with_context a (fun () ->
      Alcotest.(check bool) "outer installed" true
        (Telemetry.Context.trace_id () = a.Telemetry.Context.trace_id);
      Telemetry.Context.with_context b (fun () ->
          Alcotest.(check bool) "inner shadows outer" true
            (Telemetry.Context.trace_id () = b.Telemetry.Context.trace_id));
      (try
         Telemetry.Context.with_context b (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check bool) "outer restored after inner (and exception)" true
        (Telemetry.Context.trace_id () = a.Telemetry.Context.trace_id));
  Alcotest.(check bool) "no context after with_context returns" true
    (Telemetry.Context.current () = None);
  Telemetry.Context.with_current (Some a) (fun () ->
      Alcotest.(check bool) "with_current Some installs" true
        (Telemetry.Context.trace_id () = a.Telemetry.Context.trace_id));
  Telemetry.Context.with_current None (fun () ->
      Alcotest.(check bool) "with_current None is transparent" true
        (Telemetry.Context.current () = None))

let test_generation_race () =
  (* Regression: a reset/enable racing a span open on another domain
     must drop the stale span rather than misattribute it to the new
     run — and must not corrupt subsequent recording. *)
  Telemetry.enable ();
  let started = Atomic.make false in
  let release = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Telemetry.with_span "stale-span" (fun () ->
            Atomic.set started true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* Lifecycle swap while the span is still open on the other domain. *)
  Telemetry.enable ();
  Atomic.set release true;
  Domain.join d;
  Telemetry.with_span "fresh-span" (fun () -> ());
  Telemetry.disable ();
  Alcotest.(check int) "stale-generation span dropped" 0
    (List.length (Telemetry.spans_named "stale-span"));
  Alcotest.(check int) "fresh span still recorded" 1
    (List.length (Telemetry.spans_named "fresh-span"));
  Telemetry.reset ()

let test_sketch_quantiles () =
  (* Four domains observe disjoint slices of 1..1000; the merged sketch
     quantiles must land within the documented ~5% relative error of
     the exact nearest-rank answers. *)
  Telemetry.enable ();
  let h = Telemetry.histogram "test.sketch-merge" in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 250 do
              Telemetry.observe h (float_of_int ((d * 250) + i))
            done))
  in
  List.iter Domain.join domains;
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  let hs = List.assoc "test.sketch-merge" snap.Telemetry.histograms in
  Alcotest.(check int) "all observations merged" 1000 hs.Telemetry.h_count;
  Alcotest.(check (float 1e-9)) "exact min survives" 1.0 hs.Telemetry.h_min;
  Alcotest.(check (float 1e-9)) "exact max survives" 1000.0 hs.Telemetry.h_max;
  let close name est exact =
    let rel = Float.abs (est -. exact) /. exact in
    Alcotest.(check bool)
      (Printf.sprintf "%s within 5%% (est %.2f exact %.2f)" name est exact)
      true (rel <= 0.05)
  in
  close "p50" hs.Telemetry.h_p50 500.0;
  close "p95" hs.Telemetry.h_p95 950.0;
  close "p99" hs.Telemetry.h_p99 990.0;
  Telemetry.reset ()

let test_rates () =
  Telemetry.enable ();
  let r = Telemetry.rate "test.rates-window" in
  for _ = 1 to 30 do
    Telemetry.mark r
  done;
  Telemetry.mark ~by:12 r;
  let snap = Telemetry.snapshot () in
  let rt = List.assoc "test.rates-window" snap.Telemetry.rates in
  Alcotest.(check int) "window counts all marks" 42 rt.Telemetry.rt_count;
  Alcotest.(check (float 1e-9)) "60s window" 60.0 rt.Telemetry.rt_window_s;
  Alcotest.(check (float 1e-6)) "per-second rate" (42.0 /. 60.0)
    rt.Telemetry.rt_per_s;
  Telemetry.reset ();
  let snap2 = Telemetry.snapshot () in
  Telemetry.disable ();
  (match List.assoc_opt "test.rates-window" snap2.Telemetry.rates with
   | None -> ()
   | Some rt2 ->
     Alcotest.(check int) "reset empties the window" 0 rt2.Telemetry.rt_count)

let test_flight_recorder () =
  Telemetry.Flight.clear ();
  Alcotest.(check bool) "recorder on by default" true
    (Telemetry.Flight.enabled ());
  (* Overfill this domain's stripe to force ring wrap-around. *)
  for i = 1 to 600 do
    Telemetry.Flight.record ~kind:"test" ~value:(float_of_int i) "wrap-evt"
  done;
  let evs = Telemetry.Flight.events () in
  Alcotest.(check bool) "ring keeps a bounded window" true
    (List.length evs > 0 && List.length evs <= Telemetry.Flight.capacity);
  Alcotest.(check bool) "wrap-around counted" true
    (Telemetry.Flight.overwritten () >= 600 - Telemetry.Flight.capacity
     && Telemetry.Flight.overwritten () > 0);
  let rec sorted = function
    | (a : Telemetry.Flight.event) :: (b :: _ as rest) ->
      Int64.compare a.Telemetry.Flight.f_ns b.Telemetry.Flight.f_ns <= 0
      && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "events come back in time order" true (sorted evs);
  Alcotest.(check bool) "unattributed events carry trace id 0" true
    (List.for_all
       (fun (e : Telemetry.Flight.event) -> e.Telemetry.Flight.f_trace_id = 0L)
       evs);
  (* A context-attributed event, then a JSONL dump. *)
  let ctx = Telemetry.Context.root () in
  Telemetry.Context.with_context ctx (fun () ->
      Telemetry.Flight.record ~kind:"test" "attributed-evt");
  let path = Filename.temp_file "autotype-flight" ".jsonl" in
  (match Telemetry.Flight.dump path with
   | Ok n ->
     Alcotest.(check bool) "dump writes every ring event" true
       (n > 0 && n <= Telemetry.Flight.capacity)
   | Error msg -> Alcotest.failf "flight dump failed: %s" msg);
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  let lines = read [] in
  Sys.remove path;
  Alcotest.(check bool) "one JSON object per line" true
    (List.for_all
       (fun l ->
         String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}')
       lines);
  let hex = Telemetry.Context.trace_id_hex ctx in
  Alcotest.(check bool) "attributed event dumps with its trace id" true
    (List.exists
       (fun l -> contains ~needle:"attributed-evt" l && contains ~needle:hex l)
       lines);
  Alcotest.(check bool) "unattributed events dump with zero trace id" true
    (List.exists
       (fun l ->
         contains ~needle:"wrap-evt" l
         && contains ~needle:"0000000000000000" l)
       lines);
  (* Disabling stops recording without clearing. *)
  Telemetry.Flight.set_enabled false;
  let before = List.length (Telemetry.Flight.events ()) in
  Telemetry.Flight.record ~kind:"test" "while-disabled";
  Alcotest.(check int) "no recording while disabled" before
    (List.length (Telemetry.Flight.events ()));
  Telemetry.Flight.set_enabled true;
  Telemetry.Flight.clear ();
  Alcotest.(check int) "clear empties the ring" 0
    (List.length (Telemetry.Flight.events ()));
  Alcotest.(check int) "clear resets the overwrite count" 0
    (Telemetry.Flight.overwritten ())

let test_expose_prometheus () =
  Telemetry.enable ();
  Telemetry.incr ~by:3 (Telemetry.counter "test.expose-counter");
  let h = Telemetry.histogram "test.expose-hist" in
  List.iter (Telemetry.observe h) [ 1.0; 2.0; 3.0 ];
  Telemetry.mark ~by:6 (Telemetry.rate "test.expose-rate");
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  let text = Telemetry.Expose.render_prometheus snap in
  Alcotest.(check bool) "counter family rendered" true
    (contains ~needle:"# TYPE autotype_test_expose_counter_total counter" text
     && contains ~needle:"autotype_test_expose_counter_total 3" text);
  Alcotest.(check bool) "histogram rendered as summary" true
    (contains ~needle:"# TYPE autotype_test_expose_hist summary" text
     && contains ~needle:"quantile=\"0.99\"" text
     && contains ~needle:"autotype_test_expose_hist_count 3" text);
  Alcotest.(check bool) "rate rendered as gauge" true
    (contains ~needle:"# TYPE autotype_test_expose_rate_per_second gauge" text);
  (* Our own exposition must pass our own lint. *)
  (match Telemetry.Expose.lint text with
   | Ok n -> Alcotest.(check bool) "lint counts families" true (n >= 3)
   | Error msgs ->
     Alcotest.failf "exposition failed lint: %s" (String.concat "; " msgs));
  (* Deterministic JSON: stable across calls, fixed top-level shape. *)
  let j1 = Telemetry.Expose.render_json snap in
  let j2 = Telemetry.Expose.render_json snap in
  Alcotest.(check string) "render_json is deterministic" j1 j2;
  Alcotest.(check bool) "render_json leads with counters" true
    (String.length j1 > 12 && String.sub j1 0 12 = "{\"counters\":");
  Telemetry.reset ()

let test_expose_lint_rejects () =
  let expect_error what text =
    match Telemetry.Expose.lint text with
    | Ok _ -> Alcotest.failf "lint accepted %s" what
    | Error msgs ->
      Alcotest.(check bool) (what ^ " reported") true (msgs <> [])
  in
  expect_error "sample without HELP/TYPE" "autotype_orphan 1\n";
  expect_error "duplicate family"
    "# HELP autotype_x x\n# TYPE autotype_x counter\n# TYPE autotype_x counter\nautotype_x 1\n";
  expect_error "malformed metric name"
    "# HELP autotype_y y\n# TYPE autotype_y counter\nautotype_y 1\n9bad 2\n";
  expect_error "unparsable sample value"
    "# HELP autotype_z z\n# TYPE autotype_z counter\nautotype_z nope\n";
  expect_error "non-contiguous family samples"
    "# HELP autotype_a a\n# TYPE autotype_a counter\nautotype_a 1\n\
     # HELP autotype_b b\n# TYPE autotype_b counter\nautotype_b 1\n\
     autotype_a 2\n";
  expect_error "declared family with no samples"
    "# HELP autotype_ghost g\n# TYPE autotype_ghost counter\n"

let test_slo_eval () =
  let t = { Telemetry.Slo.slo_p99_ms = 1.0; slo_error_rate = 0.01 } in
  let r =
    Telemetry.Slo.eval t ~p99_ms:0.5 ~errors:1 ~deadline_hits:2 ~total:1000
  in
  Alcotest.(check bool) "p99 within target" true r.Telemetry.Slo.rep_p99_ok;
  Alcotest.(check (float 1e-9)) "error rate" 0.001
    r.Telemetry.Slo.rep_error_rate;
  Alcotest.(check (float 1e-9)) "burn rate = rate / target" 0.1
    r.Telemetry.Slo.rep_error_budget_burn;
  Alcotest.(check (float 1e-9)) "deadline hit rate" 0.002
    r.Telemetry.Slo.rep_deadline_hit_rate;
  let over =
    Telemetry.Slo.eval t ~p99_ms:2.0 ~errors:50 ~deadline_hits:0 ~total:1000
  in
  Alcotest.(check bool) "p99 breach detected" false
    over.Telemetry.Slo.rep_p99_ok;
  Alcotest.(check bool) "burn > 1 when out of budget" true
    (over.Telemetry.Slo.rep_error_budget_burn > 1.0);
  let j = Telemetry.Slo.report_to_json r in
  List.iter
    (fun field ->
      Alcotest.(check bool) (field ^ " in report JSON") true
        (contains ~needle:("\"" ^ field ^ "\":") j))
    [ "deadline_hit_rate"; "error_budget_burn"; "error_rate"; "p99_ms";
      "p99_ok"; "total" ]

let suite =
  [ Alcotest.test_case "span nesting and durations" `Quick test_span_nesting;
    Alcotest.test_case "multi-domain counters and histograms" `Quick
      test_multi_domain_metrics;
    Alcotest.test_case "span survives exception" `Quick
      test_span_survives_exception;
    Alcotest.test_case "counter and histogram snapshots" `Quick
      test_metrics_snapshot;
    Alcotest.test_case "no-op when disabled" `Quick test_noop_when_disabled;
    Alcotest.test_case "jsonl export shape" `Quick test_jsonl_export;
    Alcotest.test_case "tree and metrics rendering" `Quick test_render;
    Alcotest.test_case "trace contexts: ids, nesting, restore" `Quick
      test_context;
    Alcotest.test_case "reset race drops stale-generation spans" `Quick
      test_generation_race;
    Alcotest.test_case "sketch quantiles merge across domains" `Quick
      test_sketch_quantiles;
    Alcotest.test_case "sliding-window rates" `Quick test_rates;
    Alcotest.test_case "flight recorder: wrap, dump, attribution" `Quick
      test_flight_recorder;
    Alcotest.test_case "prometheus exposition passes lint" `Quick
      test_expose_prometheus;
    Alcotest.test_case "exposition lint rejects malformed text" `Quick
      test_expose_lint_rejects;
    Alcotest.test_case "slo evaluation and burn rate" `Quick test_slo_eval ]
