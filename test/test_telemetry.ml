(** Tests of the telemetry subsystem: span nesting and durations,
    counter/histogram snapshots, the disabled no-op mode, and the JSONL
    export shape. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_span_nesting () =
  Telemetry.enable ();
  let result =
    Telemetry.with_span "outer" ~attrs:[ ("who", Telemetry.S "test") ]
      (fun () ->
        Telemetry.with_span "inner" (fun () -> ());
        Telemetry.with_span "inner" (fun () -> ());
        42)
  in
  Telemetry.disable ();
  Alcotest.(check int) "with_span returns the thunk's value" 42 result;
  let spans = Telemetry.spans () in
  Alcotest.(check int) "three spans recorded" 3 (List.length spans);
  let outer =
    List.find (fun s -> s.Telemetry.sp_name = "outer") spans
  in
  let inners = Telemetry.spans_named "inner" in
  Alcotest.(check int) "two inner spans" 2 (List.length inners);
  List.iter
    (fun (i : Telemetry.span) ->
      Alcotest.(check bool) "inner's parent is outer" true
        (i.Telemetry.sp_parent = Some outer.Telemetry.sp_id);
      (* Duration monotonicity: a child span cannot run longer than its
         enclosing span, and no duration is negative. *)
      Alcotest.(check bool) "child duration <= parent duration" true
        (Int64.compare i.Telemetry.sp_dur_ns outer.Telemetry.sp_dur_ns <= 0);
      Alcotest.(check bool) "child starts after parent" true
        (Int64.compare outer.Telemetry.sp_start_ns i.Telemetry.sp_start_ns
         <= 0))
    inners;
  Alcotest.(check bool) "no negative durations" true
    (List.for_all (fun s -> Int64.compare s.Telemetry.sp_dur_ns 0L >= 0) spans);
  Alcotest.(check bool) "outer has no parent" true
    (outer.Telemetry.sp_parent = None);
  Alcotest.(check bool) "outer kept its attribute" true
    (List.mem_assoc "who" outer.Telemetry.sp_attrs)

let test_span_survives_exception () =
  Telemetry.enable ();
  (try
     Telemetry.with_span "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Telemetry.disable ();
  Alcotest.(check int) "span recorded despite the exception" 1
    (List.length (Telemetry.spans_named "failing"))

let test_metrics_snapshot () =
  Telemetry.enable ();
  let c = Telemetry.counter "test.counter" in
  let h = Telemetry.histogram "test.histogram" in
  Telemetry.incr c;
  Telemetry.incr ~by:9 c;
  List.iter (Telemetry.observe h) [ 2.0; 4.0; 6.0 ];
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "counter accumulated" 10
    (Telemetry.find_counter snap "test.counter");
  Alcotest.(check int) "unknown counter defaults to 0" 0
    (Telemetry.find_counter snap "test.no-such-counter");
  let hs = List.assoc "test.histogram" snap.Telemetry.histograms in
  Alcotest.(check int) "histogram count" 3 hs.Telemetry.h_count;
  Alcotest.(check (float 1e-9)) "histogram mean" 4.0 hs.Telemetry.h_mean;
  Alcotest.(check (float 1e-9)) "histogram min" 2.0 hs.Telemetry.h_min;
  Alcotest.(check (float 1e-9)) "histogram max" 6.0 hs.Telemetry.h_max;
  (* enable() resets values but keeps registered handles. *)
  Telemetry.enable ();
  let snap2 = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "enable() zeroes counters" 0
    (Telemetry.find_counter snap2 "test.counter")

let test_noop_when_disabled () =
  Telemetry.disable ();
  Telemetry.reset ();
  let c = Telemetry.counter "test.disabled-counter" in
  let h = Telemetry.histogram "test.disabled-histogram" in
  let v =
    Telemetry.with_span "disabled-span" (fun () ->
        Telemetry.incr ~by:100 c;
        Telemetry.observe h 5.0;
        Telemetry.add_attr "k" (Telemetry.I 1);
        "through")
  in
  Alcotest.(check string) "thunk still runs" "through" v;
  Alcotest.(check int) "no spans recorded" 0
    (List.length (Telemetry.spans ()));
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "counter untouched" 0
    (Telemetry.find_counter snap "test.disabled-counter");
  let hs = List.assoc "test.disabled-histogram" snap.Telemetry.histograms in
  Alcotest.(check int) "histogram untouched" 0 hs.Telemetry.h_count

let test_jsonl_export () =
  Telemetry.enable ();
  Telemetry.with_span "export.root"
    ~attrs:[ ("q", Telemetry.S "say \"hi\""); ("n", Telemetry.I 7) ]
    (fun () -> Telemetry.with_span "export.child" (fun () -> ()));
  Telemetry.disable ();
  let path = Filename.temp_file "telemetry" ".jsonl" in
  (match Telemetry.write_jsonl path with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "write_jsonl failed: %s" msg);
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  let lines = read [] in
  Sys.remove path;
  Alcotest.(check int) "one line per span" 2 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length line > 1 && line.[0] = '{'
         && line.[String.length line - 1] = '}');
      List.iter
        (fun field ->
          Alcotest.(check bool) (field ^ " present") true
            (contains ~needle:("\"" ^ field ^ "\":") line))
        [ "name"; "id"; "parent"; "start_ms"; "dur_ms"; "attrs" ])
    lines;
  let root = List.hd lines in
  Alcotest.(check bool) "root parent is null" true
    (contains ~needle:"\"parent\":null" root);
  Alcotest.(check bool) "string attr is escaped" true
    (contains ~needle:"say \\\"hi\\\"" root);
  let child = List.nth lines 1 in
  Alcotest.(check bool) "child parent is the root id" true
    (contains ~needle:"\"parent\":0" child)

let test_render () =
  Telemetry.enable ();
  let c = Telemetry.counter "test.render-counter" in
  Telemetry.incr ~by:3 c;
  Telemetry.with_span "render.root" (fun () ->
      Telemetry.with_span "render.leaf" (fun () -> ()));
  let tree = Telemetry.render_tree () in
  let metrics = Telemetry.render_metrics (Telemetry.snapshot ()) in
  Telemetry.disable ();
  Alcotest.(check bool) "tree lists both spans" true
    (contains ~needle:"render.root" tree
     && contains ~needle:"render.leaf" tree);
  Alcotest.(check bool) "leaf is indented under root" true
    (contains ~needle:"\n  render.leaf" tree);
  Alcotest.(check bool) "metrics table has the counter" true
    (contains ~needle:"test.render-counter" metrics)

let test_multi_domain_metrics () =
  (* Counters and histograms accept concurrent updates from several
     domains without losing any (atomics / per-domain shards). *)
  Telemetry.reset ();
  Telemetry.enable ();
  let c = Telemetry.counter "test.domains-counter" in
  let h = Telemetry.histogram "test.domains-histogram" in
  let per_domain = 1_000 in
  let worker d () =
    for _ = 1 to per_domain do
      Telemetry.incr c;
      Telemetry.observe h (float_of_int (d + 1))
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "no lost counter increments" (4 * per_domain)
    (Telemetry.find_counter snap "test.domains-counter");
  let hs = List.assoc "test.domains-histogram" snap.Telemetry.histograms in
  Alcotest.(check int) "no lost observations" (4 * per_domain)
    hs.Telemetry.h_count;
  Alcotest.(check (float 1e-9)) "min across domains" 1.0 hs.Telemetry.h_min;
  Alcotest.(check (float 1e-9)) "max across domains" 4.0 hs.Telemetry.h_max;
  Alcotest.(check (float 1e-6)) "mean across domains" 2.5 hs.Telemetry.h_mean;
  Telemetry.reset ()

let suite =
  [ Alcotest.test_case "span nesting and durations" `Quick test_span_nesting;
    Alcotest.test_case "multi-domain counters and histograms" `Quick
      test_multi_domain_metrics;
    Alcotest.test_case "span survives exception" `Quick
      test_span_survives_exception;
    Alcotest.test_case "counter and histogram snapshots" `Quick
      test_metrics_snapshot;
    Alcotest.test_case "no-op when disabled" `Quick test_noop_when_disabled;
    Alcotest.test_case "jsonl export shape" `Quick test_jsonl_export;
    Alcotest.test_case "tree and metrics rendering" `Quick test_render ]
