(** The 112-type benchmark harness (Section 8): per type, run the full
    pipeline, rank under every method, grade the top functions with
    rel(F) = I(F)·Q(F) where Q(F) comes from held-out positives and
    sampled true negatives. *)

type graded = {
  key : string;  (** candidate id, for pooling *)
  candidate : Repolib.Candidate.t;
  relevance : Metrics.relevance;
}

type type_result = {
  type_id : string;
  per_method : (Autotype_core.Ranking.method_ * graded list) list;
  strategy : Autotype_core.Negative.strategy option;
  n_candidates : int;
  n_relevant_found : int;  (** distinct relevant functions (Figure 9) *)
  elapsed_s : float;
  simulated_minutes : float;  (** Figure 14 work-units *)
}

val default_eval_negatives : int

val negative_test_pool :
  ?n:int -> seed:int -> Semtypes.Registry.t -> string list
(** True negatives for Q(F): wild cells plus near-miss values of other
    types, filtered by the ground-truth validator. *)

val quality_of :
  accepts:(string -> bool) ->
  held_out_pos:string list ->
  test_neg:string list ->
  float
(** Q(F) of an arbitrary value-level predicate — used both for live
    synthesized validators and for registry-served model artifacts, so
    the two serve paths are graded identically. *)

val quality :
  dnf:Autotype_core.Dnf.result ->
  Repolib.Candidate.t ->
  held_out_pos:string list ->
  test_neg:string list ->
  float
(** Q(F) of one candidate's synthesized validator (via {!quality_of}). *)

type config = {
  n_positives : int;
  seed : int;
  eval_top : int;
  n_test_negatives : int;
  methods : Autotype_core.Ranking.method_ list;
  pipeline : Autotype_core.Pipeline.config;
}

val default_config : config

val simulated_minutes_of_steps : int -> float

val run_type :
  ?config:config ->
  ?query:string ->
  ?positives:string list ->
  ?held_out:string list ->
  Semtypes.Registry.t ->
  type_result
(** Evaluate one benchmark type under every configured method. *)

val precision_at_k :
  type_result list -> Autotype_core.Ranking.method_ -> int -> float

val ndcg_at_p :
  type_result list -> Autotype_core.Ranking.method_ -> int -> float

val relative_recall :
  type_result list ->
  Autotype_core.Ranking.method_ list ->
  (string * float) list
(** Pooled relative recall at top-7 (Figure 8(c)). *)
