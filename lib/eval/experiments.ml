(** Drivers for the individual experiments of Sections 8 and 9 and the
    appendices.  Each returns plain data; bench/main.ml renders the
    paper-style tables. *)

let popular_types () = Semtypes.Registry.popular
let covered_types () = Semtypes.Registry.covered

(* ------------------------------------------------------------------ *)
(* Figure 8: ranking quality over the full benchmark                    *)
(* ------------------------------------------------------------------ *)

let full_benchmark ?(config = Benchmark.default_config) ?(types = covered_types ()) () :
    Benchmark.type_result list =
  List.map (fun ty -> Benchmark.run_type ~config ty) types

(* ------------------------------------------------------------------ *)
(* Figure 10(a): number of positive examples                            *)
(* ------------------------------------------------------------------ *)

let sensitivity_n_examples ?(ns = [ 10; 20; 30 ]) () :
    (int * Benchmark.type_result list) list =
  List.map
    (fun n ->
      let config = { Benchmark.default_config with n_positives = n } in
      (n, List.map (fun ty -> Benchmark.run_type ~config ty) (popular_types ())))
    ns

(* ------------------------------------------------------------------ *)
(* Figure 10(b): noise injected into the positive examples              *)
(* ------------------------------------------------------------------ *)

let with_noise ~seed ~fraction positives =
  let rng = Semtypes.Generators.make_rng (seed + 31) in
  List.map
    (fun p ->
      if Random.State.float rng 1.0 < fraction then
        Semtypes.Generators.wild_cell rng
      else p)
    positives

let sensitivity_noise ?(fractions = [ 0.0; 0.1; 0.2; 0.3 ]) () :
    (float * Benchmark.type_result list) list =
  let config = Benchmark.default_config in
  List.map
    (fun frac ->
      ( frac,
        List.map
          (fun ty ->
            let positives =
              Semtypes.Registry.positive_examples ~n:config.Benchmark.n_positives
                ~seed:config.Benchmark.seed ty
              |> with_noise ~seed:config.Benchmark.seed ~fraction:frac
            in
            Benchmark.run_type ~config ~positives ty)
          (popular_types ()) ))
    fractions

(* ------------------------------------------------------------------ *)
(* Figure 10(c): negative-example generation strategies                 *)
(* ------------------------------------------------------------------ *)

type neg_variant = Hierarchical | Random_negatives | No_negatives

let neg_variant_to_string = function
  | Hierarchical -> "orig"
  | Random_negatives -> "only_random_neg"
  | No_negatives -> "no_neg"

(** Run one type with a fixed negative-generation variant, reporting the
    DNF-S ranking graded as in the main benchmark. *)
let run_with_neg_variant (variant : neg_variant) (ty : Semtypes.Registry.t) :
    Benchmark.type_result =
  let config = Benchmark.default_config in
  let positives =
    Semtypes.Registry.positive_examples ~n:config.Benchmark.n_positives
      ~seed:config.Benchmark.seed ty
  in
  let grade_ranked ranked n_candidates =
    let held_out_pos =
      Semtypes.Registry.positive_examples ~n:10
        ~seed:(config.Benchmark.seed + 1000) ty
    in
    let test_neg =
      Benchmark.negative_test_pool ~n:config.Benchmark.n_test_negatives
        ~seed:config.Benchmark.seed ty
    in
    let graded =
      ranked
      |> List.filteri (fun i _ -> i < config.Benchmark.eval_top)
      |> List.map (fun (r : Autotype_core.Ranking.ranked) ->
             let c =
               r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate
             in
             let q =
               Benchmark.quality ~dnf:r.Autotype_core.Ranking.dnf c
                 ~held_out_pos ~test_neg
             in
             let intention =
               Repolib.Repo.intends c.Repolib.Candidate.repo
                 ~func_name:c.Repolib.Candidate.func_name
                 ~type_id:ty.Semtypes.Registry.id
             in
             {
               Benchmark.key = Repolib.Candidate.id c;
               candidate = c;
               relevance = { Metrics.intention; quality = q };
             })
    in
    {
      Benchmark.type_id = ty.Semtypes.Registry.id;
      per_method = [ (Autotype_core.Ranking.DNF_S, graded) ];
      strategy = None;
      n_candidates;
      n_relevant_found = 0;
      elapsed_s = 0.0;
      simulated_minutes = 0.0;
    }
  in
  match variant with
  | Hierarchical -> Benchmark.run_type ~config ty
  | Random_negatives ->
    let negatives =
      Autotype_core.Negative.random_strings ~seed:config.Benchmark.seed
        positives
    in
    let index = Corpus.search_index () in
    let outcome =
      Autotype_core.Pipeline.synthesize ~config:config.Benchmark.pipeline
        ~negatives_override:negatives ~index
        ~query:ty.Semtypes.Registry.name ~positives ()
    in
    grade_ranked outcome.Autotype_core.Pipeline.ranked
      outcome.Autotype_core.Pipeline.candidates_tried
  | No_negatives ->
    (* The paper's no-negative baseline: rank functions by how many
       positive examples share the same execution path. *)
    let index = Corpus.search_index () in
    let candidates, _ =
      Autotype_core.Pipeline.gather_candidates ~index
        ~config:config.Benchmark.pipeline ~query:ty.Semtypes.Registry.name
        ~probe:(List.hd positives) ()
    in
    let ranked =
      List.map
        (fun c ->
          let traced =
            Autotype_core.Ranking.trace_candidate c ~positives ~negatives:[]
          in
          let pos_f, _ = Autotype_core.Ranking.featurized traced in
          (* Largest group of positives with an identical trace. *)
          let groups = Hashtbl.create 8 in
          List.iter
            (fun t ->
              let key =
                String.concat "|"
                  (List.map Autotype_core.Feature.literal_to_string
                     (Autotype_core.Feature.Literal_set.elements t))
              in
              Hashtbl.replace groups key
                (1 + Option.value ~default:0 (Hashtbl.find_opt groups key)))
            pos_f;
          let score =
            Hashtbl.fold (fun _ n acc -> max n acc) groups 0
          in
          let inst =
            Autotype_core.Dnf.make_instance ~positives:pos_f ~negatives:[]
          in
          let dnf =
            Autotype_core.Dnf.best_k_concise
              ~k:config.Benchmark.pipeline.Autotype_core.Pipeline.k
              ~theta:config.Benchmark.pipeline.Autotype_core.Pipeline.theta inst
          in
          { Autotype_core.Ranking.traced; dnf; score = float_of_int score })
        candidates
      |> List.stable_sort
           (fun (a : Autotype_core.Ranking.ranked) b ->
             match compare b.Autotype_core.Ranking.score a.Autotype_core.Ranking.score with
             | 0 ->
               compare
                 (Hashtbl.hash
                    (Repolib.Candidate.id
                       a.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate))
                 (Hashtbl.hash
                    (Repolib.Candidate.id
                       b.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate))
             | c -> c)
    in
    grade_ranked ranked (List.length candidates)

let sensitivity_negatives () :
    (neg_variant * Benchmark.type_result list) list =
  List.map
    (fun v -> (v, List.map (run_with_neg_variant v) (popular_types ())))
    [ Hierarchical; Random_negatives; No_negatives ]

(* ------------------------------------------------------------------ *)
(* Figure 12 / Table 4: sensitivity to input keywords                   *)
(* ------------------------------------------------------------------ *)

let keyword_table =
  [ ("isbn", [ "ISBN"; "international standard book number"; "ISBN13" ]);
    ("ipv4", [ "IPv4"; "IPv4 address"; "ip address v4" ]);
    ("swift-code",
     [ "SWIFT message";
       "Society for Worldwide Interbank Financial Telecommunication";
       "SWIFT" ]);
    ("us-zipcode", [ "US zipcode"; "zipcode"; "US postal code" ]);
    ("sedol", [ "SEDOL"; "stock exchange daily official list"; "SEDOL number" ]);
    ("isin",
     [ "ISIN"; "ISIN number"; "international securities identification number" ]);
    ("vin", [ "VIN"; "Vehicle Identification Number"; "VIN number" ]);
    ("rgb-color", [ "RGB color"; "RGB"; "RGB color code" ]);
    ("fasta", [ "FASTA sequence"; "FASTA gene sequence"; "FASTA" ]);
    ("doi", [ "DOI identifier"; "digital object identifier"; "DOI number" ]) ]

let sensitivity_keywords () :
    (string * (string * Benchmark.type_result) list) list =
  List.map
    (fun (type_id, keywords) ->
      let ty = Semtypes.Registry.find_exn type_id in
      ( type_id,
        List.map
          (fun kw -> (kw, Benchmark.run_type ~query:kw ty))
          keywords ))
    keyword_table

(* ------------------------------------------------------------------ *)
(* Figure 13: LR with varying example counts (Appendix K)               *)
(* ------------------------------------------------------------------ *)

let lr_sensitivity ?(ns = [ 10; 20; 30 ]) () :
    (int * Benchmark.type_result list) list =
  List.map
    (fun n ->
      let config =
        { Benchmark.default_config with
          n_positives = n;
          methods = [ Autotype_core.Ranking.LR ] }
      in
      (n, List.map (fun ty -> Benchmark.run_type ~config ty) (popular_types ())))
    ns

(* ------------------------------------------------------------------ *)
(* Section 8.2.2: coverage analysis                                     *)
(* ------------------------------------------------------------------ *)

type coverage_report = {
  n_types : int;
  n_found : int;  (** types with at least one relevant function found *)
  n_no_code : int;
  n_other_language : int;
  n_complex_invocation : int;
  relevant_per_type : (string * int) list;  (** Figure 9 distribution *)
}

let coverage (results : Benchmark.type_result list) : coverage_report =
  let covered, no_code, other_lang, complex =
    Semtypes.Registry.coverage_counts ()
  in
  ignore covered;
  let relevant_per_type =
    List.map
      (fun (r : Benchmark.type_result) ->
        (r.Benchmark.type_id, r.Benchmark.n_relevant_found))
      results
  in
  {
    n_types = Semtypes.Registry.count;
    n_found =
      List.length
        (List.filter (fun (_, n) -> n > 0) relevant_per_type);
    n_no_code = no_code;
    n_other_language = other_lang;
    n_complex_invocation = complex;
    relevant_per_type;
  }

(* ------------------------------------------------------------------ *)
(* Section 8.3: PBE-systems comparison, simulated                       *)
(* ------------------------------------------------------------------ *)

(** TDE-style program-by-example: a function "solves" the task when its
    concrete output equals the expected output string on every example —
    here the output domain is just True/False, which is what makes type
    detection hard for PBE (Section 8.3). *)
let tde_style_finds (ty : Semtypes.Registry.t) : bool =
  let positives = Semtypes.Registry.positive_examples ~n:8 ~seed:5 ty in
  let negatives =
    Autotype_core.Negative.generate ~per_positive:1 ~seed:5
      Autotype_core.Negative.S2 positives
  in
  let index = Corpus.search_index () in
  let repos =
    Repolib.Search.search index ~k:40 ty.Semtypes.Registry.name
  in
  let candidates = List.concat_map Repolib.Analyzer.candidates_of_repo repos in
  List.exists
    (fun c ->
      let output_is v expected =
        match v.Minilang.Interp.outcome with
        | Minilang.Interp.Finished value ->
          Minilang.Value.to_display_string value = expected
        | Minilang.Interp.Errored _ | Minilang.Interp.Hit_limit _
        | Minilang.Interp.Deadline_exceeded _ -> false
      in
      List.for_all (fun p -> output_is (Repolib.Driver.run_safe c p) "True") positives
      && List.for_all
           (fun n -> output_is (Repolib.Driver.run_safe c n) "False")
           negatives)
    candidates

let pbe_comparison () : (string * bool) list =
  List.map
    (fun ty -> (ty.Semtypes.Registry.id, tde_style_finds ty))
    (popular_types ())

(* ------------------------------------------------------------------ *)
(* Table 3: semantic transformations                                    *)
(* ------------------------------------------------------------------ *)

let transformations_for ?positives (ty : Semtypes.Registry.t) :
    (string * string list * Autotype_core.Transform.transformation list)
    option =
  let positives =
    match positives with
    | Some p -> p
    | None -> Semtypes.Registry.positive_examples ~n:8 ~seed:11 ty
  in
  let outcome =
    Autotype_core.Pipeline.synthesize ~index:(Corpus.search_index ())
      ~query:ty.Semtypes.Registry.name ~positives ()
  in
  (* Appendix B inspects the transformations of the top functions, not
     only the winner: harvest the top 5 and keep the richest. *)
  let harvested =
    outcome.Autotype_core.Pipeline.ranked
    |> List.filteri (fun i _ -> i < 5)
    |> List.map (fun (r : Autotype_core.Ranking.ranked) ->
           let c =
             r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate
           in
           (c, Autotype_core.Transform.harvest c ~positives))
  in
  match harvested with
  | [] -> None
  | _ ->
    let best_c, best_ts =
      List.fold_left
        (fun (bc, bts) (c, ts) ->
          if List.length ts > List.length bts then (c, ts) else (bc, bts))
        (List.hd harvested) (List.tl harvested)
    in
    Some (Repolib.Candidate.describe best_c, positives, best_ts)
