(** The 112-type benchmark harness (Section 8).

    For each covered type: generate ~20 positive examples, run the
    pipeline's search + candidate analysis, generate negatives with the
    S1→S3 escalation, trace every candidate once, rank under each of the
    five methods, and grade the top of each ranking with
    rel(F) = I(F)·Q(F), where Q(F) runs the synthesized function on
    held-out positives and true negatives (the paper's unit-test
    protocol, with 200 sampled true negatives instead of 1000 to keep a
    laptop run short — the grading is proportionally identical). *)

type graded = {
  key : string;  (** candidate id, for pooling *)
  candidate : Repolib.Candidate.t;
  relevance : Metrics.relevance;
}

type type_result = {
  type_id : string;
  per_method : (Autotype_core.Ranking.method_ * graded list) list;
  strategy : Autotype_core.Negative.strategy option;
  n_candidates : int;
  n_relevant_found : int;  (** distinct relevant functions, Figure 9 *)
  elapsed_s : float;
  simulated_minutes : float;
      (** Figure 14 work-units: interpreter steps scaled to the paper's
          per-type wall-clock budget *)
}

let default_eval_negatives = 200

(** Build the true-negative test pool for a type: wild web-table cells
    plus near-miss values from other types, filtered by the ground-truth
    validator so every member is genuinely not of type T. *)
let negative_test_pool ?(n = default_eval_negatives) ~seed
    (ty : Semtypes.Registry.t) : string list =
  let rng = Semtypes.Generators.make_rng (seed + Hashtbl.hash ty.id) in
  let ground_truth =
    Option.value ty.Semtypes.Registry.validator ~default:(fun _ -> false)
  in
  let others =
    List.filter
      (fun (t : Semtypes.Registry.t) -> t.id <> ty.Semtypes.Registry.id)
      Semtypes.Registry.covered
  in
  let rec draw acc k guard =
    if k = 0 || guard > n * 30 then acc
    else
      let v =
        if Random.State.int rng 10 < 7 then Semtypes.Generators.wild_cell rng
        else
          let other =
            List.nth others (Random.State.int rng (List.length others))
          in
          match other.Semtypes.Registry.generator with
          | Some g -> g rng
          | None -> Semtypes.Generators.wild_cell rng
      in
      if ground_truth v then draw acc k (guard + 1)
      else draw (v :: acc) (k - 1) (guard + 1)
  in
  draw [] n 0

(** Grade one candidate's synthesized validator: Q(F). *)
(* Q(F) of any value-level predicate.  Factored out of [quality] so the
   serve path can grade a registry-loaded model with exactly the same
   arithmetic as a live in-memory synthesis. *)
let quality_of ~(accepts : string -> bool) ~held_out_pos ~test_neg : float =
  let pass_pos = List.length (List.filter accepts held_out_pos) in
  let reject_neg =
    List.length (List.filter (fun v -> not (accepts v)) test_neg)
  in
  Metrics.quality_score ~pass_pos ~n_pos:(List.length held_out_pos)
    ~reject_neg ~n_neg:(List.length test_neg)

let quality ~(dnf : Autotype_core.Dnf.result)
    (candidate : Repolib.Candidate.t) ~held_out_pos ~test_neg : float =
  let syn = Autotype_core.Synthesis.make candidate dnf in
  quality_of ~accepts:(Autotype_core.Synthesis.validate syn) ~held_out_pos
    ~test_neg

type config = {
  n_positives : int;
  seed : int;
  eval_top : int;  (** how many ranked functions to grade per method *)
  n_test_negatives : int;
  methods : Autotype_core.Ranking.method_ list;
  pipeline : Autotype_core.Pipeline.config;
}

let default_config =
  {
    n_positives = 20;
    seed = 11;
    eval_top = 7;
    n_test_negatives = default_eval_negatives;
    methods = Autotype_core.Ranking.all_methods;
    pipeline = Autotype_core.Pipeline.default_config;
  }

(* Steps-to-minutes scale for Figure 14: the paper caps a type at 60
   minutes; we map interpreter work (runs across all candidates) onto
   that scale so popular types with many repositories take longest.
   The divisor is calibrated so the largest candidate pools exceed the
   cap while single-repo tail types finish in minutes, matching the
   paper's bimodal distribution (Appendix L). *)
let simulated_minutes_of_steps steps =
  Float.min 60.0 (float_of_int steps /. 30_000.0)

(** Evaluate one benchmark type under every method.  [query] defaults to
    the canonical type name; [positives] can be overridden for the
    sensitivity experiments. *)
let run_type ?(config = default_config) ?query ?positives ?held_out
    (ty : Semtypes.Registry.t) : type_result =
  let t0 = Unix.gettimeofday () in
  let query = Option.value query ~default:ty.Semtypes.Registry.name in
  let positives =
    match positives with
    | Some p -> p
    | None ->
      Semtypes.Registry.positive_examples ~n:config.n_positives
        ~seed:config.seed ty
  in
  let index = Corpus.search_index () in
  let steps = ref 0 in
  match positives with
  | [] ->
    {
      type_id = ty.Semtypes.Registry.id;
      per_method = List.map (fun m -> (m, [])) config.methods;
      strategy = None;
      n_candidates = 0;
      n_relevant_found = 0;
      elapsed_s = 0.0;
      simulated_minutes = 0.0;
    }
  | probe :: _ ->
    ignore probe;
    (* Negative generation via Algorithm 2; the traced candidates of the
       final strategy round are shared across all ranking methods. *)
    let outcome =
      Autotype_core.Pipeline.synthesize ~config:config.pipeline ~index ~query
        ~positives ()
    in
    let traceds = outcome.Autotype_core.Pipeline.traceds in
    steps :=
      List.fold_left
        (fun acc (t : Autotype_core.Ranking.traced) ->
          acc + t.Autotype_core.Ranking.steps)
        0 traceds;
    let held_out_pos =
      match held_out with
      | Some h -> h
      | None ->
        Semtypes.Registry.positive_examples ~n:10 ~seed:(config.seed + 1000) ty
    in
    let test_neg =
      negative_test_pool ~n:config.n_test_negatives ~seed:config.seed ty
    in
    (* Q(F) is cached per candidate+dnf signature: the same function often
       appears in several methods' rankings. *)
    let q_cache : (string, float) Hashtbl.t = Hashtbl.create 16 in
    let grade (r : Autotype_core.Ranking.ranked) : graded =
      let c = r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate in
      let key = Repolib.Candidate.id c in
      let cache_key =
        key ^ "|" ^ Autotype_core.Dnf.to_string r.Autotype_core.Ranking.dnf
      in
      let q =
        match Hashtbl.find_opt q_cache cache_key with
        | Some q -> q
        | None ->
          let q =
            quality ~dnf:r.Autotype_core.Ranking.dnf c ~held_out_pos ~test_neg
          in
          Hashtbl.add q_cache cache_key q;
          q
      in
      let intention =
        Repolib.Repo.intends c.Repolib.Candidate.repo
          ~func_name:c.Repolib.Candidate.func_name
          ~type_id:ty.Semtypes.Registry.id
      in
      { key; candidate = c; relevance = { Metrics.intention; quality = q } }
    in
    let per_method =
      List.map
        (fun m ->
          let ranked =
            Autotype_core.Ranking.rank_one ~k:config.pipeline.Autotype_core.Pipeline.k
              ~theta:config.pipeline.Autotype_core.Pipeline.theta m ~query traceds
          in
          let top = List.filteri (fun i _ -> i < config.eval_top) ranked in
          (m, List.map grade top))
        config.methods
    in
    (* Figure 9: distinct relevant functions among everything discovered
       (the paper inspected up to 33 returned functions per type). *)
    let n_relevant_found =
      let dnf_ranked =
        Autotype_core.Ranking.rank_one Autotype_core.Ranking.DNF_S ~query traceds
      in
      dnf_ranked
      |> List.filteri (fun i _ -> i < 33)
      |> List.filter (fun (r : Autotype_core.Ranking.ranked) ->
             r.Autotype_core.Ranking.dnf.Autotype_core.Dnf.clauses <> []
             &&
             let g = grade r in
             Metrics.is_relevant g.relevance)
      |> List.map (fun r ->
             Repolib.Candidate.id
               r.Autotype_core.Ranking.traced.Autotype_core.Ranking.candidate)
      |> List.sort_uniq String.compare
      |> List.length
    in
    {
      type_id = ty.Semtypes.Registry.id;
      per_method;
      strategy = outcome.Autotype_core.Pipeline.strategy_used;
      n_candidates = outcome.Autotype_core.Pipeline.candidates_tried;
      n_relevant_found;
      elapsed_s = Unix.gettimeofday () -. t0;
      simulated_minutes = simulated_minutes_of_steps !steps;
    }

(** Aggregate precision@K over a set of per-type results. *)
let precision_at_k results method_ k =
  results
  |> List.filter_map (fun r ->
         List.assoc_opt method_ r.per_method
         |> Option.map (fun graded ->
                Metrics.precision_at_k
                  (List.map (fun g -> g.relevance) graded)
                  k))
  |> Metrics.mean

let ndcg_at_p results method_ p =
  results
  |> List.filter_map (fun r ->
         List.assoc_opt method_ r.per_method
         |> Option.map (fun graded ->
                Metrics.ndcg_at_p (List.map (fun g -> g.relevance) graded) p))
  |> Metrics.mean

(** Pooled relative recall at top-7 (Figure 8(c)). *)
let relative_recall results methods =
  let per_type_recalls =
    List.map
      (fun r ->
        let per_method =
          List.map
            (fun m ->
              let graded =
                Option.value (List.assoc_opt m r.per_method) ~default:[]
              in
              ( Autotype_core.Ranking.method_to_string m,
                List.map (fun g -> (g.key, g.relevance)) graded ))
            methods
        in
        Metrics.relative_recall ~pool_k:7 per_method)
      results
  in
  List.map
    (fun m ->
      let name = Autotype_core.Ranking.method_to_string m in
      let vals =
        List.filter_map (fun per_type -> List.assoc_opt name per_type)
          per_type_recalls
      in
      (name, Metrics.mean vals))
    methods
