(** Synthesizing the boolean validation function from a selected DNF
    (Section 5.3, Algorithm 3, Appendix G).

    The concise DNF is first extended to DNF-E by replacing each literal
    with the conjunction of its whole identical-coverage group — this
    restricts future inputs to take exactly the same sub-path rather
    than merely hitting one literal on it.  Validation of a new string
    [s] then runs the function, featurizes the trace T(s), and accepts
    iff ∧T(s) → DNF-E. *)

type t = {
  candidate : Repolib.Candidate.t;
  dnf : Dnf.result;
  explanation : string;  (** the concise DNF shown to users *)
}

let make candidate (dnf : Dnf.result) : t =
  { candidate; dnf; explanation = Dnf.to_string dnf }

(** The synthesized [bool F'(s)] of Algorithm 3. *)
let validate (t : t) (input : string) : bool =
  let result = Repolib.Driver.run_safe t.candidate input in
  let trace = Feature.featurize result.Minilang.Interp.trace in
  Dnf.satisfies t.dnf.Dnf.expanded trace

type verdict =
  | Valid
  | Invalid
  | Deadline

(** Deadline-aware validation for the serving path.  A run cut by its
    wall-clock deadline produced only a {e partial} trace; featurizing
    it and testing DNF-E would manufacture a verdict from evidence the
    function never finished producing, so the cut is surfaced as its
    own [Deadline] verdict and the caller decides how to degrade.
    With no [deadline_ns] this is exactly {!validate}. *)
let validate_v ?deadline_ns (t : t) (input : string) : verdict =
  let result = Repolib.Driver.run_safe ?deadline_ns t.candidate input in
  match result.Minilang.Interp.outcome with
  | Minilang.Interp.Deadline_exceeded _ ->
    Telemetry.Flight.record ~kind:"deadline" "synthesis.validate_v";
    Deadline
  | _ ->
    let trace = Feature.featurize result.Minilang.Interp.trace in
    if Dnf.satisfies t.dnf.Dnf.expanded trace then Valid else Invalid

(** Validate against the concise (un-extended) DNF — used by the
    ablation bench to quantify what DNF-E buys. *)
let validate_concise (t : t) (input : string) : bool =
  let result = Repolib.Driver.run_safe t.candidate input in
  let trace = Feature.featurize result.Minilang.Interp.trace in
  Dnf.satisfies t.dnf.Dnf.clauses trace

(** The single source of the Section 9.1 column-detection threshold:
    a column is of the type when more than this fraction of its values
    pass.  [detect_column] below and
    [Tablecorpus.Detect.detection_threshold] both read it, so the two
    layers cannot drift apart. *)
let default_detection_threshold = 0.8

(** Column-level type detection (Section 9.1): a column is predicted to
    be of the type if more than [threshold] of its values pass the
    synthesized function. *)
let detect_column ?(threshold = default_detection_threshold) (t : t)
    (values : string list) : bool =
  match values with
  | [] -> false
  | _ ->
    let n_pass = List.length (List.filter (validate t) values) in
    float_of_int n_pass > threshold *. float_of_int (List.length values)
