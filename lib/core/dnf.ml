(** Best-k-Concise-DNF-Cover (Definitions 2-4 and Algorithm 1).

    Given featurized traces for the positive examples P and generated
    negatives N, find a DNF over the trace literals B(F) whose
    conjunctive clauses have at most [k] literals and which covers as
    many of P as possible while covering at most [θ·|N|] of N.  The
    exact problem is NP-hard (Theorem 4, by reduction from set-union
    knapsack), so the greedy cover of Algorithm 1 is used:

    1. partition B(F) into groups of literals with identical coverage,
    2. keep one representative literal per group,
    3. enumerate conjunctions of representatives up to length k,
    4. repeatedly add the admissible clause with the largest marginal
       positive coverage. *)

type clause = Feature.literal list  (** conjunction of literals *)

type group = {
  representative : Feature.literal;
  members : Feature.literal list;  (** the whole identical-coverage group *)
  coverage : Bitset.t;
}

type result = {
  clauses : clause list;  (** the concise DNF (representatives only) *)
  expanded : clause list;
      (** DNF-E of Appendix G: each representative replaced by the
          conjunction of its whole group *)
  groups : group list;
  cov_p : int;
  cov_n : int;
  n_pos : int;
  n_neg : int;
}

let empty_result ~n_pos ~n_neg =
  { clauses = []; expanded = []; groups = []; cov_p = 0; cov_n = 0; n_pos; n_neg }

let clause_to_string (c : clause) =
  String.concat " \xe2\x88\xa7 " (List.map Feature.literal_to_string c)

let to_string (r : result) =
  match r.clauses with
  | [] -> "<empty DNF>"
  | cs ->
    String.concat " \xe2\x88\xa8 "
      (List.map (fun c -> "(" ^ clause_to_string c ^ ")") cs)

(** Examples as featurized traces: [traces.(i)] with [i < n_pos] positive,
    the rest negative. *)
type instance = {
  traces : Feature.Literal_set.t array;
  n_pos : int;
}

let make_instance ~(positives : Feature.Literal_set.t list)
    ~(negatives : Feature.Literal_set.t list) : instance =
  {
    traces = Array.of_list (positives @ negatives);
    n_pos = List.length positives;
  }

(* Build identical-coverage groups of literals (Algorithm 1, line 1). *)
let build_groups (inst : instance) : group list =
  let n = Array.length inst.traces in
  let coverage_of : (Feature.literal, Bitset.t) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i trace ->
      Feature.Literal_set.iter
        (fun lit ->
          let bs =
            match Hashtbl.find_opt coverage_of lit with
            | Some bs -> bs
            | None ->
              let bs = Bitset.create n in
              Hashtbl.add coverage_of lit bs;
              bs
          in
          Bitset.set bs i)
        trace)
    inst.traces;
  let by_key : (string, Feature.literal list * Bitset.t) Hashtbl.t =
    Hashtbl.create 64
  in
  Hashtbl.iter
    (fun lit bs ->
      let key = Bitset.to_key bs in
      match Hashtbl.find_opt by_key key with
      | Some (lits, bs0) -> Hashtbl.replace by_key key (lit :: lits, bs0)
      | None -> Hashtbl.add by_key key ([ lit ], bs))
    coverage_of;
  Hashtbl.fold
    (fun _key (lits, bs) acc ->
      let lits = List.sort Feature.compare_literal lits in
      match lits with
      | [] -> acc
      | representative :: _ ->
        { representative; members = lits; coverage = bs } :: acc)
    by_key []
  |> List.sort (fun a b ->
         Feature.compare_literal a.representative b.representative)

let pos_count inst bs =
  let n = ref 0 in
  for i = 0 to inst.n_pos - 1 do
    if Bitset.mem bs i then incr n
  done;
  !n

let neg_count inst bs =
  let n = ref 0 in
  for i = inst.n_pos to Array.length inst.traces - 1 do
    if Bitset.mem bs i then incr n
  done;
  !n

(* Cap on the number of representative literals fed to the k-subset
   enumeration, keeping the overall complexity O(|S|^k) small.  Groups
   covering more positives are preferred. *)
let max_representatives = 40

let m_covers = Telemetry.counter "dnf.covers_computed"
let m_clauses_considered = Telemetry.counter "dnf.clauses_considered"

(** Greedy Best-k-Concise-DNF-Cover.  [theta] is the negative-coverage
    budget fraction; [k] the clause-length cap. *)
let best_k_concise ?(k = 3) ?(theta = 0.3) (inst : instance) : result =
  let n_total = Array.length inst.traces in
  let n_pos = inst.n_pos in
  let n_neg = n_total - n_pos in
  if n_pos = 0 then empty_result ~n_pos ~n_neg
  else begin
    let groups = build_groups inst in
    (* Only groups covering at least one positive can contribute to a
       positive-covering conjunction. *)
    let useful =
      groups
      |> List.filter (fun g -> pos_count inst g.coverage > 0)
      |> List.sort (fun a b ->
             compare (pos_count inst b.coverage) (pos_count inst a.coverage))
      |> List.filteri (fun i _ -> i < max_representatives)
    in
    let arr = Array.of_list useful in
    let budget = int_of_float (theta *. float_of_int n_neg) in
    (* Enumerate all conjunctions up to length k with non-empty positive
       coverage (the L of Algorithm 1, built lazily by DFS). *)
    let conjunctions : (int list * Bitset.t) list ref = ref [] in
    let rec dfs start chosen cov depth =
      if depth > 0 then conjunctions := (List.rev chosen, cov) :: !conjunctions;
      if depth < k then
        for i = start to Array.length arr - 1 do
          let cov' = Bitset.inter cov arr.(i).coverage in
          if pos_count inst cov' > 0 then dfs (i + 1) (i :: chosen) cov' (depth + 1)
        done
    in
    let full = Bitset.create n_total in
    for i = 0 to n_total - 1 do
      Bitset.set full i
    done;
    dfs 0 [] full 0;
    let conjs = Array.of_list !conjunctions in
    Telemetry.incr m_covers;
    Telemetry.incr ~by:(Array.length conjs) m_clauses_considered;
    (* Greedy selection. *)
    let covered = Bitset.create n_total in
    let chosen = ref [] in
    let continue = ref true in
    while !continue do
      let best = ref None in
      Array.iter
        (fun (idxs, cov) ->
          let added_p =
            let u = Bitset.union covered cov in
            pos_count inst u - pos_count inst covered
          in
          if added_p > 0 then begin
            let u = Bitset.union covered cov in
            let total_n = neg_count inst u in
            if total_n <= budget then
              let better =
                match !best with
                | None -> true
                | Some (bp, bn, blen, _, _) ->
                  added_p > bp
                  || (added_p = bp && total_n < bn)
                  || (added_p = bp && total_n = bn && List.length idxs < blen)
              in
              if better then
                best := Some (added_p, total_n, List.length idxs, idxs, cov)
          end)
        conjs;
      match !best with
      | Some (_, _, _, idxs, cov) ->
        chosen := idxs :: !chosen;
        Bitset.union_into ~into:covered cov;
        if pos_count inst covered = n_pos then continue := false
      | None -> continue := false
    done;
    let chosen = List.rev !chosen in
    let clauses =
      List.map (fun idxs -> List.map (fun i -> arr.(i).representative) idxs) chosen
    in
    let expanded =
      List.map
        (fun idxs -> List.concat_map (fun i -> arr.(i).members) idxs)
        chosen
    in
    {
      clauses;
      expanded;
      groups;
      cov_p = pos_count inst covered;
      cov_n = neg_count inst covered;
      n_pos;
      n_neg;
    }
  end

(** The DNF-complete variant of Definition 3 used as the DNF-C baseline:
    clauses are entire positive-trace signatures (full path information),
    greedily unioned under the same θ budget. *)
let best_complete ?(theta = 0.3) (inst : instance) : result =
  let n_total = Array.length inst.traces in
  let n_pos = inst.n_pos in
  let n_neg = n_total - n_pos in
  if n_pos = 0 then empty_result ~n_pos ~n_neg
  else begin
    let budget = int_of_float (theta *. float_of_int n_neg) in
    (* Candidate clauses: the full literal set of each distinct positive
       trace; its coverage = examples whose trace is a superset. *)
    let distinct = Hashtbl.create 16 in
    for i = 0 to n_pos - 1 do
      let key = String.concat "|"
          (List.map Feature.literal_to_string
             (Feature.Literal_set.elements inst.traces.(i)))
      in
      if not (Hashtbl.mem distinct key) then
        Hashtbl.add distinct key inst.traces.(i)
    done;
    let clause_cov sig_set =
      let bs = Bitset.create n_total in
      Array.iteri
        (fun i t -> if Feature.Literal_set.subset sig_set t then Bitset.set bs i)
        inst.traces;
      bs
    in
    let cands =
      Hashtbl.fold (fun _ s acc -> (s, clause_cov s) :: acc) distinct []
    in
    Telemetry.incr m_covers;
    Telemetry.incr ~by:(List.length cands) m_clauses_considered;
    let covered = Bitset.create n_total in
    let chosen = ref [] in
    let continue = ref true in
    while !continue do
      let best = ref None in
      List.iter
        (fun (s, cov) ->
          let u = Bitset.union covered cov in
          let added_p = pos_count inst u - pos_count inst covered in
          let total_n = neg_count inst u in
          if added_p > 0 && total_n <= budget then
            match !best with
            | Some (bp, bn, _, _) when bp > added_p || (bp = added_p && bn <= total_n) -> ()
            | _ -> best := Some (added_p, total_n, s, cov))
        cands;
      match !best with
      | Some (_, _, s, cov) ->
        chosen := s :: !chosen;
        Bitset.union_into ~into:covered cov;
        if pos_count inst covered = n_pos then continue := false
      | None -> continue := false
    done;
    let clauses =
      List.rev_map (fun s -> Feature.Literal_set.elements s) !chosen
    in
    {
      clauses;
      expanded = clauses;
      groups = [];
      cov_p = pos_count inst covered;
      cov_n = neg_count inst covered;
      n_pos;
      n_neg;
    }
  end

(** Does a featurized trace satisfy the DNF (∧T(s) → DNF)?  True iff some
    clause is a subset of the trace. *)
let satisfies (clauses : clause list) (trace : Feature.Literal_set.t) : bool =
  List.exists
    (fun clause ->
      List.for_all (fun lit -> Feature.Literal_set.mem lit trace) clause)
    clauses
