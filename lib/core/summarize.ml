(** Interpreter-free compiled fast paths (DESIGN.md §13).

    The abstract interpreter ({!Absint}) extracts a *symbolic summary*
    of a candidate: a decision tree whose guards are string atoms
    (prefix/suffix/char-class/regexlite/length tests over derivation
    chains of the input) and whose leaves are the exact trace-event
    sequence the interpreter would emit along that path.

    A synthesized validation function is [Dnf.satisfies expanded
    (Feature.featurize trace)] — a pure function of the trace.  So when
    a summary exists, each leaf's verdict can be resolved *at compile
    time*: featurize the leaf's events, evaluate the DNF once, and store
    the boolean.  Serving then only evaluates the guard tree (pure
    string operations from {!Minilang.Strops} plus {!Regexlite}), never
    the interpreter.

    Soundness gates — a compiled tree is produced only when every claim
    is proven, otherwise [None] (the interpreter remains the route):
    - [facts.summary]: the summary machinery already restricts itself to
      the total, event-exact fragment (single string parameter, no
      hidden calls, branch/return/raise events reproduced verbatim);
    - [facts.pure]: no side effects, so dropping the run is unobservable;
    - [facts.bound = Terminates _]: the concrete run finishes within its
      step budget, so the interpreter would never report [Hit_limit]
      where the fast path reports a verdict. *)

let m_compiled = Telemetry.counter "summarize.compiled"
let m_uncompilable = Telemetry.counter "summarize.uncompilable"

let rec map_tree (f : 'a -> 'b) (t : 'a Absint.Domain.tree) :
    'b Absint.Domain.tree =
  match t with
  | Absint.Domain.Leaf x -> Absint.Domain.Leaf (f x)
  | Absint.Domain.Node { guard; if_true; if_false } ->
    Absint.Domain.Node
      { guard; if_true = map_tree f if_true; if_false = map_tree f if_false }

(** Resolve each summary leaf against the synthesized DNF.  The leaf's
    [path_events] are exactly the trace the interpreter emits on inputs
    routed to that leaf (validation runs never record assignments), so
    featurizing them and evaluating DNF-E reproduces
    {!Synthesis.validate} byte-for-byte. *)
let verdict_tree (s : Synthesis.t) (summary : Absint.Domain.summary) :
    Absint.Domain.compiled =
  map_tree
    (fun pe ->
      Dnf.satisfies s.Synthesis.dnf.Dnf.expanded
        (Feature.featurize (Absint.Domain.events_of_path pe)))
    summary

let compile (s : Synthesis.t) : Absint.Domain.compiled option =
  let facts = Repolib.Analyzer.absint_facts s.Synthesis.candidate in
  match facts with
  | {
      Absint.Domain.pure = true;
      bound = Absint.Domain.Terminates _;
      summary = Some summary;
    } ->
    Telemetry.incr m_compiled;
    Some (verdict_tree s summary)
  | _ ->
    Telemetry.incr m_uncompilable;
    None
