(** Compile-time resolution of abstract summaries into interpreter-free
    verdict trees (DESIGN.md §13). *)

val map_tree : ('a -> 'b) -> 'a Absint.Domain.tree -> 'b Absint.Domain.tree

val compile : Synthesis.t -> Absint.Domain.compiled option
(** [compile s] is a boolean decision tree over the input string that
    reproduces [Synthesis.validate s] exactly — each summary leaf's
    trace events featurized and evaluated against the synthesized
    DNF-E at compile time — or [None] when the candidate lacks a
    proven (pure, terminating, summarizable) abstract analysis.
    Producing [None] is always safe: callers keep the interpreter
    route. *)
