(** The end-to-end AutoType pipeline (Figure 6): search → candidate
    analysis → negative generation with S1→S2→S3 escalation
    (Algorithm 2) → DNF ranking → synthesized validators. *)

type config = {
  k : int;  (** clause-length cap; paper uses 3 *)
  theta : float;  (** negative-coverage budget; paper uses 0.3 *)
  top_repos : int;  (** repositories fetched per engine; paper uses 40 *)
  neg_per_positive : int;
  mutation_p : float;
  found_fraction : float;
      (** minimum positive-coverage fraction for a function to count as
          "found" in Algorithm 2's non-empty test *)
  seed : int;
  staticcheck : bool;
      (** prune statically-unrankable candidates before tracing and
          apply static step-budget hints; on by default.  Sound: the
          ranked output is unchanged (DESIGN.md §8) *)
}

val default_config : config

type outcome = {
  query : string;
  positives : string list;
  strategy_used : Negative.strategy option;
  negatives : string list;
  ranked : Ranking.ranked list;  (** DNF-S order *)
  traceds : Ranking.traced list;
      (** raw traces against the final negative set, reusable by other
          ranking methods without re-execution *)
  candidates_tried : int;
  repos_searched : int;
}

val gather_candidates :
  index:Repolib.Search.index ->
  config:config ->
  query:string ->
  probe:string ->
  unit ->
  Repolib.Candidate.t list * int
(** Search + static analysis + executability probing.  Returns the
    candidate pool and the number of repositories searched. *)

val found_enough : config -> Dnf.result -> bool

val synthesize :
  ?config:config ->
  ?negatives_override:string list ->
  ?pool:Exec.Pool.t ->
  ?cache:Ranking.cache ->
  index:Repolib.Search.index ->
  query:string ->
  positives:string list ->
  unit ->
  outcome
(** Run the full pipeline.  [negatives_override] bypasses Algorithm 2
    (used by the Figure 10(c) ablations).

    [pool] traces candidates on the execution engine's domains; the
    outcome is byte-identical to the sequential run because
    [Exec.Pool.parallel_map] preserves order and candidates share no
    state.  [cache] is the per-(candidate, input) trace memo threaded
    through the S1→S2→S3 attempts — positives are interpreted at most
    once per candidate per call; pass your own cache to share traces
    across calls with the same candidate pool. *)

type compiled = {
  c_outcome : outcome;
  c_config : config;  (** the configuration the outcome was produced under *)
}

val compile :
  ?config:config ->
  ?negatives_override:string list ->
  ?pool:Exec.Pool.t ->
  ?cache:Ranking.cache ->
  index:Repolib.Search.index ->
  query:string ->
  positives:string list ->
  unit ->
  compiled
(** Compile exit point of the compile/serve split: one [synthesize] run
    (under a [pipeline.compile] span) bundled with its configuration so
    a persistent model artifact (lib/model) can record full provenance.
    Serving a saved artifact replays none of the pipeline stages. *)

val best : outcome -> Synthesis.t option
(** The top-ranked synthesized validation function. *)

val synthesized : outcome -> Synthesis.t list
