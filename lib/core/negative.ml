(** Automatic negative-example generation (Section 6).

    Implements the inferred-alphabet machinery of Definition 5 and the
    strict mutation hierarchy S1 ⊆ S2 ⊆ S3 of Proposition 1:

    - S1 (mutate-preserve-structure): replace in-alphabet
      non-punctuation characters with other in-alphabet non-punctuation
      characters, leaving punctuation (structure) intact;
    - S2 (mutate-preserve-alphabet): replace any in-alphabet character
      with another in-alphabet character (may break structure);
    - S3 (mutate-random): replace in-alphabet characters with arbitrary
      characters from the full alphabet.

    Also provides the [Random_strings] baseline of Figure 10(c). *)

type strategy = S1 | S2 | S3

let strategy_to_string = function S1 -> "S1" | S2 -> "S2" | S3 -> "S3"

let is_punctuation c =
  not
    ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9'))

type alphabet = {
  full : char list;  (** Σ(P): every character appearing in P *)
  non_punct : char list;  (** Σ̄ᴾ(P): in-alphabet non-punctuation *)
}

let infer_alphabet (positives : string list) : alphabet =
  let seen = Hashtbl.create 64 in
  List.iter (fun s -> String.iter (fun c -> Hashtbl.replace seen c ()) s)
    positives;
  let full = Hashtbl.fold (fun c () acc -> c :: acc) seen [] in
  let full = List.sort compare full in
  { full; non_punct = List.filter (fun c -> not (is_punctuation c)) full }

(* The universe used by S3: printable ASCII letters, digits and common
   punctuation — the "full English alphabet Σ". *)
let sigma_full =
  List.init 95 (fun i -> Char.chr (32 + i))

let pick rng xs =
  match xs with
  | [] -> None
  | _ -> Some (List.nth xs (Random.State.int rng (List.length xs)))

(** Mutate one example under a strategy.  Guarantees at least one actual
    character change (re-drawing if the random draws happened to leave
    the string unchanged). *)
let mutate ?(p = 0.25) rng (alpha : alphabet) (strategy : strategy)
    (s : string) : string =
  if s = "" then "?"
  else begin
    let replace_char c =
      let candidates =
        match strategy with
        | S1 ->
          if is_punctuation c then None  (* structure is preserved *)
          else Some alpha.non_punct
        | S2 -> Some alpha.full
        | S3 -> Some sigma_full
      in
      match candidates with
      | None -> c
      | Some pool ->
        (match pick rng (List.filter (fun x -> x <> c) pool) with
         | Some c' -> c'
         | None -> c)
    in
    let attempt () =
      String.map
        (fun c -> if Random.State.float rng 1.0 < p then replace_char c else c)
        s
    in
    let rec go tries =
      let m = attempt () in
      if m <> s || tries > 20 then
        if m = s then
          (* Force one change at a random mutable position. *)
          let mutable_positions =
            List.filter
              (fun i -> replace_char s.[i] <> s.[i])
              (List.init (String.length s) Fun.id)
          in
          (match pick rng mutable_positions with
           | Some i -> String.mapi (fun j c -> if j = i then replace_char c else c) s
           | None -> m)
        else m
      else go (tries + 1)
    in
    go 0
  end

let m_generated_s1 = Telemetry.counter "negative.generated.S1"
let m_generated_s2 = Telemetry.counter "negative.generated.S2"
let m_generated_s3 = Telemetry.counter "negative.generated.S3"

let generated_counter = function
  | S1 -> m_generated_s1
  | S2 -> m_generated_s2
  | S3 -> m_generated_s3

(** Generate-N-by-Mutation (Algorithm 2's subroutine): a large number of
    likely-negative examples per positive example. *)
let generate ?(per_positive = 8) ?(p = 0.25) ~seed (strategy : strategy)
    (positives : string list) : string list =
  let rng = Random.State.make [| seed; Hashtbl.hash strategy |]
  and alpha = infer_alphabet positives in
  let negatives =
    List.concat_map
      (fun s ->
        List.init per_positive (fun _ -> mutate ~p rng alpha strategy s))
      positives
  in
  Telemetry.incr ~by:(List.length negatives) (generated_counter strategy);
  negatives

(** The naive baseline of Figure 10(c): random strings unrelated to P,
    like the paper's "ABC123.?" example. *)
let random_strings ?(per_positive = 8) ~seed (positives : string list) :
    string list =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let n = per_positive * List.length positives in
  List.init n (fun _ ->
      let len = 5 + Random.State.int rng 16 in
      String.init len (fun _ ->
          List.nth sigma_full (Random.State.int rng (List.length sigma_full))))

(** Filter out mutants that are accidentally positive when a ground-truth
    oracle is available — used only by tests, never by the pipeline
    (the paper instead allows a θ fraction of N to be covered). *)
let filter_true_negatives ~oracle negs =
  List.filter (fun s -> not (oracle s)) negs
