(** Function ranking (Section 5.2) and the compared methods of
    Section 8.1: DNF-S (ours), DNF-C, RET, KW and LR. *)

type method_ = DNF_S | DNF_C | RET | KW | LR

let method_to_string = function
  | DNF_S -> "DNF-S"
  | DNF_C -> "DNF-C"
  | RET -> "RET"
  | KW -> "KW"
  | LR -> "LR"

let all_methods = [ DNF_S; KW; RET; LR; DNF_C ]

(** A candidate together with the raw traces of running it on every
    positive and negative example.  Running is by far the dominant cost,
    so traces are shared across all ranking methods. *)
type traced = {
  candidate : Repolib.Candidate.t;
  pos_raw : Minilang.Trace.t list;
  neg_raw : Minilang.Trace.t list;
  steps : int;  (** interpreter steps across all runs, for Figure 14 *)
}

let run_examples ?config (c : Repolib.Candidate.t) (examples : string list) :
    Minilang.Trace.t list * int =
  let steps = ref 0 in
  let traces =
    List.map
      (fun e ->
        let r = Repolib.Driver.run_safe ?config c e in
        steps := !steps + r.Minilang.Interp.steps_used;
        r.Minilang.Interp.trace)
      examples
  in
  (traces, !steps)

let m_candidates_traced = Telemetry.counter "ranking.candidates_traced"
let h_steps_per_candidate = Telemetry.histogram "ranking.steps_per_candidate"

let trace_candidate ?config (c : Repolib.Candidate.t) ~positives ~negatives :
    traced =
  let pos_raw, s1 = run_examples ?config c positives in
  let neg_raw, s2 = run_examples ?config c negatives in
  Telemetry.incr m_candidates_traced;
  Telemetry.observe h_steps_per_candidate (float_of_int (s1 + s2));
  { candidate = c; pos_raw; neg_raw; steps = s1 + s2 }

let featurized ?(mode = `All) (t : traced) :
    Feature.Literal_set.t list * Feature.Literal_set.t list =
  ( List.map (Feature.featurize ~mode) t.pos_raw,
    List.map (Feature.featurize ~mode) t.neg_raw )

type ranked = {
  traced : traced;
  dnf : Dnf.result;
  score : float;  (** method-specific score; higher ranks first *)
}

(* DNF-based ranking: CovP primary, CovN as tie-breaker (Section 5.2,
   "Ranking-by-DNF"). *)
let dnf_score (r : Dnf.result) =
  let n_neg = max 1 r.n_neg in
  float_of_int r.cov_p -. (float_of_int r.cov_n /. float_of_int (n_neg + 1))

let rank_one ?(k = 3) ?(theta = 0.3) (method_ : method_) ~query
    (traceds : traced list) : ranked list =
  Telemetry.with_span "ranking.rank_one"
    ~attrs:
      [ ("method", Telemetry.S (method_to_string method_));
        ("candidates", Telemetry.I (List.length traceds)) ]
  @@ fun () ->
  let with_dnf mode compute =
    List.map
      (fun t ->
        let pos, neg = featurized ~mode t in
        let inst = Dnf.make_instance ~positives:pos ~negatives:neg in
        let dnf = compute inst in
        { traced = t; dnf; score = dnf_score dnf })
      traceds
  in
  let ranked =
    match method_ with
    | DNF_S -> with_dnf `All (Dnf.best_k_concise ~k ~theta)
    | DNF_C -> with_dnf `All (Dnf.best_complete ~theta)
    | RET -> with_dnf `Returns_only (Dnf.best_k_concise ~k ~theta)
    | LR ->
      List.map
        (fun t ->
          let pos, neg = featurized ~mode:`All t in
          let model = Lr.train ~positives:pos ~negatives:neg () in
          let score = Lr.separation_score model ~positives:pos ~negatives:neg in
          (* The DNF is still computed so users get an explanation and a
             synthesizable artifact; only the ranking score differs. *)
          let inst = Dnf.make_instance ~positives:pos ~negatives:neg in
          { traced = t; dnf = Dnf.best_k_concise ~k ~theta inst; score })
        traceds
    | KW ->
      (* TF-IDF keyword match over function "documents" (name, enclosing
         repository name/description, file path). *)
      let docs =
        List.map
          (fun t ->
            let c = t.candidate in
            Repolib.Search.tokenize c.Repolib.Candidate.doc_text
            @ Repolib.Search.tokenize c.Repolib.Candidate.file
            @ Repolib.Search.tokenize c.Repolib.Candidate.repo.Repolib.Repo.repo_name
            @ Repolib.Search.tokenize
                c.Repolib.Candidate.repo.Repolib.Repo.description)
          traceds
      in
      let df = Hashtbl.create 64 in
      List.iter
        (fun doc ->
          List.sort_uniq String.compare doc
          |> List.iter (fun tok ->
                 Hashtbl.replace df tok
                   (1 + Option.value ~default:0 (Hashtbl.find_opt df tok))))
        docs;
      let n_docs = List.length docs in
      let qtoks = Repolib.Search.tokenize query in
      List.map2
        (fun t doc ->
          let score =
            List.fold_left
              (fun acc q ->
                let tf = List.length (List.filter (String.equal q) doc) in
                if tf = 0 then acc
                else
                  let dfq = Option.value ~default:0 (Hashtbl.find_opt df q) in
                  acc
                  +. (1.0 +. log (float_of_int tf))
                     *. (log (float_of_int (n_docs + 1) /. float_of_int (dfq + 1))
                        +. 1.0))
              0.0 qtoks
          in
          let pos, neg = featurized ~mode:`All t in
          let inst = Dnf.make_instance ~positives:pos ~negatives:neg in
          { traced = t; dnf = Dnf.best_k_concise ~k ~theta inst; score })
        traceds docs
  in
  (* Ties are broken by a deterministic hash of the candidate id, not by
     input (search) order — a tied DNF score genuinely means the method
     cannot distinguish the functions. *)
  let tie_key r =
    Hashtbl.hash (Repolib.Candidate.id r.traced.candidate)
  in
  List.stable_sort
    (fun a b ->
      match compare b.score a.score with
      | 0 -> compare (tie_key a) (tie_key b)
      | c -> c)
    ranked
