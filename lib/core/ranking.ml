(** Function ranking (Section 5.2) and the compared methods of
    Section 8.1: DNF-S (ours), DNF-C, RET, KW and LR. *)

type method_ = DNF_S | DNF_C | RET | KW | LR

let method_to_string = function
  | DNF_S -> "DNF-S"
  | DNF_C -> "DNF-C"
  | RET -> "RET"
  | KW -> "KW"
  | LR -> "LR"

let all_methods = [ DNF_S; KW; RET; LR; DNF_C ]

(** A candidate together with the raw traces of running it on every
    positive and negative example.  Running is by far the dominant cost,
    so traces are shared across all ranking methods. *)
type traced = {
  candidate : Repolib.Candidate.t;
  pos_raw : Minilang.Trace.t list;
  neg_raw : Minilang.Trace.t list;
  steps : int;  (** interpreter steps across all runs, for Figure 14 *)
  pruned : bool;
      (** negative tracing was skipped: every positive run errored, so
          the candidate cannot validate anything *)
}

let run_examples ?config (c : Repolib.Candidate.t) (examples : string list) :
    Minilang.Trace.t list * int =
  let steps = ref 0 in
  let traces =
    List.map
      (fun e ->
        let r = Repolib.Driver.run_safe ?config c e in
        steps := !steps + r.Minilang.Interp.steps_used;
        r.Minilang.Interp.trace)
      examples
  in
  (traces, !steps)

let m_candidates_traced = Telemetry.counter "ranking.candidates_traced"
let h_steps_per_candidate = Telemetry.histogram "ranking.steps_per_candidate"
let m_cache_hits = Telemetry.counter "ranking.trace_cache_hits"
let m_cache_misses = Telemetry.counter "ranking.trace_cache_misses"
let m_pos_runs = Telemetry.counter "ranking.positive_runs"
let m_neg_runs = Telemetry.counter "ranking.negative_runs"
let m_pruned = Telemetry.counter "pipeline.candidates_pruned"

(* ------------------------------------------------------------------ *)
(* Incremental tracing                                                 *)
(* ------------------------------------------------------------------ *)

(** Memo of per-(candidate, input) traces.  The interpreter is
    deterministic, so a (candidate, input) pair always produces the same
    trace and step count: positives re-traced on every S1→S2→S3 attempt
    and duplicate negatives are served from the cache instead of
    re-executing.

    Domain safety: the outer per-candidate table is mutex-guarded; each
    inner table is only ever touched by the one domain currently tracing
    that candidate (the execution engine parallelizes across candidates,
    and strategy attempts are sequential), so lookups on the hot path
    are lock-free. *)
type cache = {
  lock : Mutex.t;
  per_candidate :
    (string, (string, Minilang.Trace.t * int) Hashtbl.t) Hashtbl.t;
}

let cache_create () =
  { lock = Mutex.create (); per_candidate = Hashtbl.create 64 }

let cache_sub cache (c : Repolib.Candidate.t) =
  let id = Repolib.Candidate.id c in
  Mutex.lock cache.lock;
  let sub =
    match Hashtbl.find_opt cache.per_candidate id with
    | Some sub -> sub
    | None ->
      let sub = Hashtbl.create 64 in
      Hashtbl.add cache.per_candidate id sub;
      sub
  in
  Mutex.unlock cache.lock;
  sub

let run_examples_cached ?config ~sub ~runs_counter (c : Repolib.Candidate.t)
    (examples : string list) : Minilang.Trace.t list * int =
  let steps = ref 0 in
  let traces =
    List.map
      (fun e ->
        match Hashtbl.find_opt sub e with
        | Some (trace, steps_used) ->
          Telemetry.incr m_cache_hits;
          steps := !steps + steps_used;
          trace
        | None ->
          let r = Repolib.Driver.run_safe ?config c e in
          Telemetry.incr m_cache_misses;
          Telemetry.incr runs_counter;
          Hashtbl.replace sub e (r.Minilang.Interp.trace, r.Minilang.Interp.steps_used);
          steps := !steps + r.Minilang.Interp.steps_used;
          r.Minilang.Interp.trace)
      examples
  in
  (traces, !steps)

let trace_errored (trace : Minilang.Trace.t) =
  List.exists
    (function Minilang.Trace.Exception _ -> true | _ -> false)
    trace

let trace_candidate ?config ?cache ?(prune = false)
    (c : Repolib.Candidate.t) ~positives ~negatives : traced =
  let run_pos, run_neg =
    match cache with
    | None ->
      ( (fun examples -> run_examples ?config c examples),
        fun examples -> run_examples ?config c examples )
    | Some cache ->
      let sub = cache_sub cache c in
      ( run_examples_cached ?config ~sub ~runs_counter:m_pos_runs c,
        run_examples_cached ?config ~sub ~runs_counter:m_neg_runs c )
  in
  let pos_raw, s1 = run_pos positives in
  (* A candidate that errors on every positive can never cover the
     required fraction of P: skip its negative runs entirely. *)
  let pruned =
    prune && positives <> [] && List.for_all trace_errored pos_raw
  in
  let neg_raw, s2 = if pruned then ([], 0) else run_neg negatives in
  if pruned then Telemetry.incr m_pruned;
  Telemetry.incr m_candidates_traced;
  Telemetry.observe h_steps_per_candidate (float_of_int (s1 + s2));
  { candidate = c; pos_raw; neg_raw; steps = s1 + s2; pruned }

let featurized ?(mode = `All) (t : traced) :
    Feature.Literal_set.t list * Feature.Literal_set.t list =
  ( List.map (Feature.featurize ~mode) t.pos_raw,
    List.map (Feature.featurize ~mode) t.neg_raw )

type ranked = {
  traced : traced;
  dnf : Dnf.result;
  score : float;  (** method-specific score; higher ranks first *)
}

(* DNF-based ranking: CovP primary, CovN as tie-breaker (Section 5.2,
   "Ranking-by-DNF"). *)
let dnf_score (r : Dnf.result) =
  let n_neg = max 1 r.n_neg in
  float_of_int r.cov_p -. (float_of_int r.cov_n /. float_of_int (n_neg + 1))

let rank_one ?(k = 3) ?(theta = 0.3) (method_ : method_) ~query
    (traceds : traced list) : ranked list =
  Telemetry.with_span "ranking.rank_one"
    ~attrs:
      [ ("method", Telemetry.S (method_to_string method_));
        ("candidates", Telemetry.I (List.length traceds)) ]
  @@ fun () ->
  (* Pruned candidates (all positives errored, negatives skipped) get an
     empty DNF: building one from their truncated traces would let an
     exception literal "cover" every positive against zero negatives. *)
  let pruned_ranked (t : traced) =
    let dnf = Dnf.empty_result ~n_pos:(List.length t.pos_raw) ~n_neg:0 in
    { traced = t; dnf; score = dnf_score dnf }
  in
  let with_dnf mode compute =
    List.map
      (fun t ->
        if t.pruned then pruned_ranked t
        else
          let pos, neg = featurized ~mode t in
          let inst = Dnf.make_instance ~positives:pos ~negatives:neg in
          let dnf = compute inst in
          { traced = t; dnf; score = dnf_score dnf })
      traceds
  in
  let ranked =
    match method_ with
    | DNF_S -> with_dnf `All (Dnf.best_k_concise ~k ~theta)
    | DNF_C -> with_dnf `All (Dnf.best_complete ~theta)
    | RET -> with_dnf `Returns_only (Dnf.best_k_concise ~k ~theta)
    | LR ->
      List.map
        (fun t ->
          if t.pruned then { (pruned_ranked t) with score = neg_infinity }
          else
            let pos, neg = featurized ~mode:`All t in
            let model = Lr.train ~positives:pos ~negatives:neg () in
            let score = Lr.separation_score model ~positives:pos ~negatives:neg in
            (* The DNF is still computed so users get an explanation and a
               synthesizable artifact; only the ranking score differs. *)
            let inst = Dnf.make_instance ~positives:pos ~negatives:neg in
            { traced = t; dnf = Dnf.best_k_concise ~k ~theta inst; score })
        traceds
    | KW ->
      (* TF-IDF keyword match over function "documents" (name, enclosing
         repository name/description, file path). *)
      let docs =
        List.map
          (fun t ->
            let c = t.candidate in
            Repolib.Search.tokenize c.Repolib.Candidate.doc_text
            @ Repolib.Search.tokenize c.Repolib.Candidate.file
            @ Repolib.Search.tokenize c.Repolib.Candidate.repo.Repolib.Repo.repo_name
            @ Repolib.Search.tokenize
                c.Repolib.Candidate.repo.Repolib.Repo.description)
          traceds
      in
      let df = Hashtbl.create 64 in
      List.iter
        (fun doc ->
          List.sort_uniq String.compare doc
          |> List.iter (fun tok ->
                 Hashtbl.replace df tok
                   (1 + Option.value ~default:0 (Hashtbl.find_opt df tok))))
        docs;
      let n_docs = List.length docs in
      let qtoks = Repolib.Search.tokenize query in
      List.map2
        (fun t doc ->
          let score =
            List.fold_left
              (fun acc q ->
                let tf = List.length (List.filter (String.equal q) doc) in
                if tf = 0 then acc
                else
                  let dfq = Option.value ~default:0 (Hashtbl.find_opt df q) in
                  acc
                  +. (1.0 +. log (float_of_int tf))
                     *. (log (float_of_int (n_docs + 1) /. float_of_int (dfq + 1))
                        +. 1.0))
              0.0 qtoks
          in
          if t.pruned then { (pruned_ranked t) with score }
          else
            let pos, neg = featurized ~mode:`All t in
            let inst = Dnf.make_instance ~positives:pos ~negatives:neg in
            { traced = t; dnf = Dnf.best_k_concise ~k ~theta inst; score })
        traceds docs
  in
  (* Ties are broken by a deterministic hash of the candidate id, not by
     input (search) order — a tied DNF score genuinely means the method
     cannot distinguish the functions. *)
  let tie_key r =
    Hashtbl.hash (Repolib.Candidate.id r.traced.candidate)
  in
  List.stable_sort
    (fun a b ->
      match compare b.score a.score with
      | 0 -> compare (tie_key a) (tie_key b)
      | c -> c)
    ranked
