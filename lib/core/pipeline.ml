(** The end-to-end AutoType pipeline (Figure 6):

    keyword + positive examples
      → code search (Section 4.1)
      → candidate-function analysis (Section 4.2)
      → dynamic negative generation, trying S1 then S2 then S3
        (Section 6, Algorithm 2)
      → Best-k-Concise-DNF-Cover ranking (Section 5.2)
      → synthesized validation functions (Section 5.3). *)

type config = {
  k : int;  (** clause-length cap (k-conciseness); paper uses 3 *)
  theta : float;  (** negative-coverage budget; paper uses 0.3 *)
  top_repos : int;  (** repositories fetched per engine; paper uses 40 *)
  neg_per_positive : int;
  mutation_p : float;
  found_fraction : float;
      (** minimum fraction of P a DNF must cover for the function to
          count as "found" in Algorithm 2's non-empty test *)
  seed : int;
  staticcheck : bool;
      (** prune statically-unrankable candidates before tracing and
          apply static step-budget hints (lib/staticcheck); the ranked
          output is unchanged — the pruned candidates trace identically
          on every input, so they can never rank *)
}

let default_config =
  {
    k = 3;
    theta = 0.3;
    top_repos = 40;
    neg_per_positive = 8;
    mutation_p = 0.25;
    found_fraction = 0.85;
    seed = 17;
    staticcheck = true;
  }

type outcome = {
  query : string;
  positives : string list;
  strategy_used : Negative.strategy option;
      (** which mutation level finally produced informative negatives *)
  negatives : string list;
  ranked : Ranking.ranked list;  (** DNF-S order *)
  traceds : Ranking.traced list;
      (** raw traces of every candidate against the final negative set;
          reusable by other ranking methods without re-execution *)
  candidates_tried : int;
  repos_searched : int;
}

let m_runs = Telemetry.counter "pipeline.runs"
let m_candidates_probed = Telemetry.counter "pipeline.candidates_probed"
let m_candidates_kept = Telemetry.counter "pipeline.candidates_kept"
let m_candidates_rejected = Telemetry.counter "pipeline.candidates_rejected"
let m_strategy_attempts = Telemetry.counter "pipeline.strategy_attempts"
let m_static_pruned = Telemetry.counter "staticcheck.pruned"
let m_static_diags = Telemetry.counter "staticcheck.diagnostics"

(** Search + static analysis + executability probing: everything up to
    (but excluding) example-driven ranking. *)
let gather_candidates ~(index : Repolib.Search.index) ~(config : config)
    ~query ~probe () : Repolib.Candidate.t list * int =
  let repos =
    Telemetry.with_span "pipeline.search" (fun () ->
        let repos = Repolib.Search.search index ~k:config.top_repos query in
        Telemetry.add_attr "repos" (Telemetry.I (List.length repos));
        repos)
  in
  let raw =
    Telemetry.with_span "pipeline.analyze" (fun () ->
        let cs = List.concat_map Repolib.Analyzer.candidates_of_repo repos in
        Telemetry.add_attr "candidates" (Telemetry.I (List.length cs));
        cs)
  in
  let raw =
    if not config.staticcheck then raw
    else
      Telemetry.with_span "pipeline.staticcheck" (fun () ->
          (* Input-flow pruning: drop candidates whose trace provably
             cannot depend on the input.  Sound (over-approximate), so
             the ranked output is unchanged — see DESIGN.md §8. *)
          let kept =
            List.filter
              (fun c -> (Repolib.Analyzer.verdict c).Repolib.Analyzer.rankable)
              raw
          in
          let pruned = List.length raw - List.length kept in
          let diags =
            List.fold_left
              (fun n repo ->
                n + List.length (Repolib.Analyzer.repo_diagnostics repo))
              0 repos
          in
          Telemetry.incr ~by:pruned m_static_pruned;
          Telemetry.incr ~by:diags m_static_diags;
          Telemetry.add_attr "pruned" (Telemetry.I pruned);
          Telemetry.add_attr "diagnostics" (Telemetry.I diags);
          kept)
  in
  let candidates =
    Telemetry.with_span "pipeline.probe" (fun () ->
        let kept =
          List.filter (fun c -> Repolib.Driver.executable c ~probe) raw
        in
        Telemetry.add_attr "kept" (Telemetry.I (List.length kept));
        Telemetry.add_attr "rejected"
          (Telemetry.I (List.length raw - List.length kept));
        kept)
  in
  Telemetry.incr ~by:(List.length raw) m_candidates_probed;
  Telemetry.incr ~by:(List.length candidates) m_candidates_kept;
  Telemetry.incr
    ~by:(List.length raw - List.length candidates)
    m_candidates_rejected;
  (candidates, List.length repos)

let found_enough config (dnf : Dnf.result) =
  dnf.Dnf.clauses <> []
  && float_of_int dnf.Dnf.cov_p
     >= config.found_fraction *. float_of_int (max 1 dnf.Dnf.n_pos)

(** Run the full pipeline.  [negatives_override] forces a fixed negative
    set (used by the Figure 10(c) ablations); otherwise Algorithm 2's
    S1→S2→S3 escalation is applied.

    [pool] traces candidates in parallel on the execution engine's
    domains — the output is identical to the sequential run because
    [Exec.Pool.parallel_map] is order-preserving and candidates share no
    state.  [cache] is the per-(candidate, input) trace memo; a fresh
    one is created per call unless the caller threads its own. *)
let synthesize ?(config = default_config) ?negatives_override ?pool ?cache
    ~(index : Repolib.Search.index) ~query ~(positives : string list) () :
    outcome =
  Telemetry.with_span "pipeline.synthesize"
    ~attrs:
      [ ("query", Telemetry.S query);
        ("positives", Telemetry.I (List.length positives)) ]
  @@ fun () ->
  Telemetry.incr m_runs;
  match positives with
  | [] ->
    { query; positives; strategy_used = None; negatives = []; ranked = [];
      traceds = []; candidates_tried = 0; repos_searched = 0 }
  | probe :: _ ->
    let candidates, repos_searched =
      gather_candidates ~index ~config ~query ~probe ()
    in
    let generate_with strategy =
      Telemetry.with_span "pipeline.negatives"
        ~attrs:
          [ ("strategy", Telemetry.S (Negative.strategy_to_string strategy)) ]
        (fun () ->
          let negatives =
            Negative.generate ~per_positive:config.neg_per_positive
              ~p:config.mutation_p ~seed:config.seed strategy positives
          in
          Telemetry.add_attr "negatives" (Telemetry.I (List.length negatives));
          negatives)
    in
    let cache =
      match cache with Some c -> c | None -> Ranking.cache_create ()
    in
    let jobs = match pool with None -> 1 | Some p -> Exec.Pool.jobs p in
    let trace_with negatives =
      (* Longest input either example set will feed the candidate:
         instantiates the absint [a·len + b] termination bound into a
         concrete step budget valid for every run below. *)
      let input_len =
        List.fold_left
          (fun acc s -> max acc (String.length s))
          0 (positives @ negatives)
      in
      Telemetry.with_span "pipeline.trace"
        ~attrs:
          [ ("candidates", Telemetry.I (List.length candidates));
            ("jobs", Telemetry.I jobs) ]
        (fun () ->
          Exec.map ?pool
            (fun c ->
              (* Static step-budget hints shrink max_steps for proven
                 spin loops; Hit_limit emits no trace event, so traces
                 (and the cache keyed on them) are unaffected. *)
              let iconfig =
                if config.staticcheck then
                  Repolib.Driver.config_for ~input_len c
                else Repolib.Driver.default_config
              in
              Ranking.trace_candidate ~config:iconfig ~cache ~prune:true c
                ~positives ~negatives)
            candidates)
    in
    let rank traceds =
      Telemetry.with_span "pipeline.rank" (fun () ->
          Ranking.rank_one ~k:config.k ~theta:config.theta Ranking.DNF_S
            ~query traceds)
    in
    let finish strategy_used negatives traceds ranked =
      (match strategy_used with
       | Some s ->
         Telemetry.add_attr "strategy"
           (Telemetry.S (Negative.strategy_to_string s))
       | None -> ());
      Telemetry.add_attr "ranked" (Telemetry.I (List.length ranked));
      {
        query;
        positives;
        strategy_used;
        negatives;
        ranked;
        traceds;
        candidates_tried = List.length candidates;
        repos_searched;
      }
    in
    (match negatives_override with
     | Some negatives ->
       let traceds = trace_with negatives in
       finish None negatives traceds (rank traceds)
     | None ->
       (* Algorithm 2: escalate S1 → S2 → S3 until some function can
          tell P and N apart. *)
       let rec try_strategies last = function
         | [] ->
           (* No strategy produced informative negatives; report the
              last attempt (S3) with whatever ranking it gave.  The
              attempt already did this exact work — generation and
              tracing are deterministic — so reuse it instead of
              regenerating and re-tracing every candidate. *)
           (match last with
            | Some (negatives, traceds, ranked) ->
              finish None negatives traceds ranked
            | None ->
              (* Unreachable with the S1→S2→S3 list below; kept for an
                 empty strategy list. *)
              let negatives = generate_with Negative.S3 in
              let traceds = trace_with negatives in
              finish None negatives traceds (rank traceds))
         | s :: rest ->
           Telemetry.incr m_strategy_attempts;
           let negatives, traceds, ranked, informative =
             Telemetry.with_span "pipeline.attempt"
               ~attrs:
                 [ ("strategy",
                    Telemetry.S (Negative.strategy_to_string s)) ]
               (fun () ->
                 let negatives = generate_with s in
                 let traceds = trace_with negatives in
                 let ranked = rank traceds in
                 let informative =
                   List.exists
                     (fun r -> found_enough config r.Ranking.dnf)
                     ranked
                 in
                 Telemetry.add_attr "informative" (Telemetry.B informative);
                 (negatives, traceds, ranked, informative))
           in
           if informative then
             finish (Some s) negatives traceds
               (List.filter
                  (fun r -> found_enough config r.Ranking.dnf)
                  ranked)
           else try_strategies (Some (negatives, traceds, ranked)) rest
       in
       try_strategies None [ Negative.S1; Negative.S2; Negative.S3 ])

(** Compile exit point (the compile half of the compile/serve split):
    run the pipeline once and package everything a persistent model
    artifact needs — the outcome plus the exact configuration it ran
    under.  The artifact writer (lib/model) consumes this; serving then
    replays none of the stages above. *)
type compiled = {
  c_outcome : outcome;
  c_config : config;
}

let compile ?(config = default_config) ?negatives_override ?pool ?cache
    ~(index : Repolib.Search.index) ~query ~(positives : string list) () :
    compiled =
  Telemetry.with_span "pipeline.compile"
    ~attrs:[ ("query", Telemetry.S query) ]
  @@ fun () ->
  let c_outcome =
    synthesize ~config ?negatives_override ?pool ?cache ~index ~query
      ~positives ()
  in
  { c_outcome; c_config = config }

(** Top-ranked synthesized validation function, if any. *)
let best (o : outcome) : Synthesis.t option =
  match o.ranked with
  | [] -> None
  | r :: _ -> Some (Synthesis.make r.Ranking.traced.Ranking.candidate r.Ranking.dnf)

(** All synthesized functions in rank order. *)
let synthesized (o : outcome) : Synthesis.t list =
  List.map
    (fun r -> Synthesis.make r.Ranking.traced.Ranking.candidate r.Ranking.dnf)
    o.ranked
