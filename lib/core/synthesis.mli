(** Synthesized boolean validation functions (Section 5.3, Algorithm 3):
    run the selected candidate on a new input, featurize its trace, and
    accept iff the trace satisfies the extended DNF-E. *)

type t = {
  candidate : Repolib.Candidate.t;
  dnf : Dnf.result;
  explanation : string;  (** the concise DNF shown to users *)
}

val make : Repolib.Candidate.t -> Dnf.result -> t

val validate : t -> string -> bool
(** The synthesized [bool F'(s)] — checks against DNF-E. *)

type verdict =
  | Valid
  | Invalid
  | Deadline
      (** the run was cut by its wall-clock budget: the trace is
          partial, so no accept/reject claim is made *)

val validate_v : ?deadline_ns:int64 -> t -> string -> verdict
(** Deadline-aware {!validate} for the serving path.  [deadline_ns] is
    an absolute monotonic instant ({!Exec.Deadline.at_ns} /
    {!Telemetry.now_ns} clock); without it the result is exactly
    [validate] lifted into [Valid]/[Invalid]. *)

val validate_concise : t -> string -> bool
(** Check against the un-extended concise DNF (ablation only). *)

val default_detection_threshold : float
(** The Section 9.1 column-detection threshold (0.8).  Single-sourced:
    [detect_column] and [Tablecorpus.Detect.detection_threshold] both
    use this value. *)

val detect_column : ?threshold:float -> t -> string list -> bool
(** Column-level detection (Section 9.1): true when more than
    [threshold] (default {!default_detection_threshold}) of the values
    pass. *)
