(** Function ranking (Section 5.2) and the five compared methods of
    Section 8.1. *)

type method_ =
  | DNF_S  (** Best-k-Concise-DNF-Cover, the paper's approach *)
  | DNF_C  (** full-path DNF (Definition 3) *)
  | RET  (** black-box: output values only *)
  | KW  (** TF-IDF keyword match against function "documents" *)
  | LR  (** per-function logistic regression on the same features *)

val method_to_string : method_ -> string
val all_methods : method_ list

type traced = {
  candidate : Repolib.Candidate.t;
  pos_raw : Minilang.Trace.t list;
  neg_raw : Minilang.Trace.t list;
  steps : int;  (** interpreter steps across all runs (Figure 14) *)
  pruned : bool;
      (** negative tracing was skipped because every positive run
          errored (see [trace_candidate]'s [prune]); such a candidate is
          ranked with an empty DNF *)
}

val run_examples :
  ?config:Minilang.Interp.config ->
  Repolib.Candidate.t -> string list -> Minilang.Trace.t list * int

type cache
(** Memo of per-(candidate, input) traces.  The interpreter is
    deterministic, so a pair always yields the same trace and step
    count; a cache threaded through repeated [trace_candidate] calls
    (e.g. across S1→S2→S3 strategy attempts) executes each pair at most
    once.  Safe to share across the execution engine's domains as long
    as no two domains trace the {e same} candidate concurrently. *)

val cache_create : unit -> cache

val trace_candidate :
  ?config:Minilang.Interp.config ->
  ?cache:cache ->
  ?prune:bool ->
  Repolib.Candidate.t ->
  positives:string list ->
  negatives:string list ->
  traced
(** Execute the candidate on every example once; by far the dominant
    cost, so traces are shared across all ranking methods.  [cache]
    serves repeated (candidate, input) pairs — duplicate examples and
    re-attempts — from memory.  [prune] (default false) skips negative
    tracing entirely when every positive run errored, marking the
    result [pruned] (counted by the [pipeline.candidates_pruned]
    counter). *)

val featurized :
  ?mode:Feature.mode ->
  traced ->
  Feature.Literal_set.t list * Feature.Literal_set.t list

type ranked = {
  traced : traced;
  dnf : Dnf.result;
  score : float;  (** method-specific; higher ranks first *)
}

val dnf_score : Dnf.result -> float
(** CovP primary, CovN as tie-breaker ("Ranking-by-DNF"). *)

val rank_one :
  ?k:int -> ?theta:float -> method_ -> query:string -> traced list ->
  ranked list
(** Rank all candidates under one method.  Exact score ties are broken
    by a deterministic hash of the candidate id, not input order. *)
