(** Telemetry recorder: request-scoped trace contexts, spans, counters,
    histograms with streaming quantile sketches, sliding-window rates, a
    lock-striped flight recorder, and Prometheus/JSON exposition.

    A single global recorder, disabled by default.  Every probe first
    checks [on] — one atomic load and a branch — so instrumentation left
    in hot paths costs effectively nothing when telemetry is off.
    Durations come from CLOCK_MONOTONIC (bechamel's stubs), not the wall
    clock.

    Domain safety: counters are atomics; histograms accumulate into
    per-domain shards (registered once per domain per histogram, then
    updated without synchronization) merged at snapshot time; the span
    stack is domain-local storage, with finished spans appended under a
    mutex; rates and flight-recorder stripes take short mutexes.

    Lifecycle safety: [enable]/[reset] atomically bump a generation
    counter.  A span opened under an old generation that finishes after
    a [reset] is dropped instead of polluting the new run, so lifecycle
    operations are safe to call while spans are in flight on other
    domains.

    The flight recorder is independent of the [on] flag: it is always
    on (a bounded ring of recent structured events) unless explicitly
    disabled, so the serving path retains a post-mortem record even
    when stats collection is off. *)

let now_ns () : int64 = Monotonic_clock.now ()

(* ------------------------------------------------------------------ *)
(* JSON helpers (shared by span export, flight recorder, exposition)   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Core state                                                          *)
(* ------------------------------------------------------------------ *)

let on = Atomic.make false
let t0 = ref 0L
let next_id = Atomic.make 0

(* [generation] is bumped by [reset].  Observations made under an older
   generation — spans still open across the reset, domain-local
   histogram-shard handles from the previous run — are dropped or
   abandoned rather than double-counted. *)
let generation = Atomic.make 0

let enabled () = Atomic.get on

(* ------------------------------------------------------------------ *)
(* Trace contexts                                                      *)
(* ------------------------------------------------------------------ *)

module Context = struct
  type t = { trace_id : int64; request_id : int }

  (* splitmix64: the same well-mixed 64-bit permutation the fault
     injector uses for deterministic draws; here it turns a sequence
     number into a trace id with no visible structure. *)
  let splitmix64 (x : int64) : int64 =
    let open Int64 in
    let z = add x 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (* Seeded from the monotonic clock at module init so trace ids do not
     collide across processes; uniqueness within a process comes from
     the sequence counter. *)
  let seed = now_ns ()
  let seq = Atomic.make 1
  let next_request = Atomic.make 1

  let fresh_trace_id () =
    let rec go () =
      let n = Atomic.fetch_and_add seq 1 in
      let id =
        splitmix64
          (Int64.add seed (Int64.mul 0x2545F4914F6CDD1DL (Int64.of_int n)))
      in
      if id = 0L then go () else id
    in
    go ()

  let root ?request_id () =
    let request_id =
      match request_id with
      | Some r -> r
      | None -> Atomic.fetch_and_add next_request 1
    in
    { trace_id = fresh_trace_id (); request_id }

  let dls : t option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let current () = !(Domain.DLS.get dls)

  let trace_id () =
    match current () with Some c -> c.trace_id | None -> 0L

  let with_context ctx f =
    let cell = Domain.DLS.get dls in
    let saved = !cell in
    cell := Some ctx;
    Fun.protect ~finally:(fun () -> cell := saved) f

  let with_current copt f =
    match copt with None -> f () | Some ctx -> with_context ctx f

  let id_to_hex id = Printf.sprintf "%016Lx" id
  let trace_id_hex ctx = id_to_hex ctx.trace_id

  (* Inverse of [id_to_hex], for trace ids arriving over the wire: the
     serving daemon installs the client's id so daemon-side spans and
     flight events join the client's trace.  Strict: exactly 16 hex
     digits and never 0 (0 means "no context" everywhere else). *)
  let id_of_hex s =
    if String.length s <> 16 then None
    else if
      String.exists
        (fun c ->
          not
            ((c >= '0' && c <= '9')
            || (c >= 'a' && c <= 'f')
            || (c >= 'A' && c <= 'F')))
        s
    then None
    else
      match Int64.of_string_opt ("0x" ^ s) with
      | Some id when id <> 0L -> Some id
      | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Flight = struct
  type event = {
    f_ns : int64;  (** absolute monotonic time of the event *)
    f_trace_id : int64;  (** 0 when recorded outside any context *)
    f_request_id : int;  (** 0 when recorded outside any context *)
    f_kind : string;
    f_label : string;
    f_value : float;
  }

  (* Lock striping: recording domains hash onto independent ring
     segments, so concurrent producers contend only within a stripe.
     Each stripe is a fixed circular buffer — recording is two stores
     and a bump under a stripe-local mutex, never an allocation-driven
     pause or an unbounded queue. *)
  let n_stripes = 8
  let stripe_capacity = 512
  let capacity = n_stripes * stripe_capacity

  type stripe = {
    fl_lock : Mutex.t;
    fl_buf : event option array;
    mutable fl_next : int;
    mutable fl_overwritten : int;
  }

  let stripes =
    Array.init n_stripes (fun _ ->
        { fl_lock = Mutex.create (); fl_buf = Array.make stripe_capacity None;
          fl_next = 0; fl_overwritten = 0 })

  let flight_on = Atomic.make true
  let enabled () = Atomic.get flight_on
  let set_enabled b = Atomic.set flight_on b

  let record ?(value = 0.0) ~kind label =
    if Atomic.get flight_on then begin
      let trace_id, request_id =
        match Context.current () with
        | Some c -> (c.Context.trace_id, c.Context.request_id)
        | None -> (0L, 0)
      in
      let ev =
        { f_ns = now_ns (); f_trace_id = trace_id; f_request_id = request_id;
          f_kind = kind; f_label = label; f_value = value }
      in
      let s = stripes.((Domain.self () :> int) land (n_stripes - 1)) in
      Mutex.lock s.fl_lock;
      if s.fl_buf.(s.fl_next) <> None then
        s.fl_overwritten <- s.fl_overwritten + 1;
      s.fl_buf.(s.fl_next) <- Some ev;
      s.fl_next <- (s.fl_next + 1) mod stripe_capacity;
      Mutex.unlock s.fl_lock
    end

  let clear () =
    Array.iter
      (fun s ->
        Mutex.lock s.fl_lock;
        Array.fill s.fl_buf 0 stripe_capacity None;
        s.fl_next <- 0;
        s.fl_overwritten <- 0;
        Mutex.unlock s.fl_lock)
      stripes

  let overwritten () =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.fl_lock;
        let n = s.fl_overwritten in
        Mutex.unlock s.fl_lock;
        acc + n)
      0 stripes

  let events () =
    let all = ref [] in
    Array.iter
      (fun s ->
        Mutex.lock s.fl_lock;
        Array.iter
          (function Some ev -> all := ev :: !all | None -> ())
          s.fl_buf;
        Mutex.unlock s.fl_lock)
      stripes;
    List.sort
      (fun a b ->
        match Int64.compare a.f_ns b.f_ns with
        | 0 -> compare (a.f_kind, a.f_label) (b.f_kind, b.f_label)
        | c -> c)
      !all

  (* Keys sorted so dumps are diff-stable. *)
  let event_to_json ev =
    Printf.sprintf
      "{\"kind\":\"%s\",\"label\":\"%s\",\"request_id\":%d,\"t_ms\":%.3f,\
       \"trace_id\":\"%s\",\"value\":%.6f}"
      (json_escape ev.f_kind) (json_escape ev.f_label) ev.f_request_id
      (Int64.to_float ev.f_ns /. 1e6)
      (Context.id_to_hex ev.f_trace_id)
      ev.f_value

  let dump path : (int, string) result =
    match open_out path with
    | exception Sys_error msg -> Error msg
    | oc ->
      let evs = events () in
      List.iter
        (fun ev ->
          output_string oc (event_to_json ev);
          output_char oc '\n')
        evs;
      close_out oc;
      Ok (List.length evs)

  (* Where [trigger] dumps to: explicit [set_dump_path] wins, else the
     AUTOTYPE_FLIGHT_DUMP environment variable, else triggers are
     no-ops (the ring still holds the events for [dump]-on-demand). *)
  let dump_target : string option Atomic.t =
    Atomic.make (Sys.getenv_opt "AUTOTYPE_FLIGHT_DUMP")

  let set_dump_path p = Atomic.set dump_target p
  let dump_path () = Atomic.get dump_target

  let trigger ~reason =
    match Atomic.get dump_target with
    | None -> ()
    | Some path ->
      record ~kind:"dump" reason;
      (match dump path with
       | Ok _ -> ()
       | Error msg ->
         Printf.eprintf "flight recorder: cannot dump to %s: %s\n%!" path msg)
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type attr_value =
  | S of string
  | I of int
  | F of float
  | B of bool

type attr = string * attr_value

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_trace_id : int64;  (** 0 when recorded outside any context *)
  sp_start_ns : int64;  (** monotonic ns since {!enable} *)
  sp_dur_ns : int64;
  sp_attrs : attr list;
}

type open_span = {
  o_id : int;
  o_parent : int option;
  o_name : string;
  o_gen : int;  (** generation at open; stale spans are dropped *)
  o_trace_id : int64;
  o_start : int64;  (** absolute monotonic time *)
  mutable o_attrs : attr list;  (** reversed *)
}

(* Per-domain span stack: spans nest along each domain's own dynamic
   call stack. *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let finished_lock = Mutex.create ()
let finished : span list ref = ref []  (* reversed completion order *)

let with_span ?(attrs = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match !stack with [] -> None | o :: _ -> Some o.o_id in
    let o =
      { o_id = id; o_parent = parent; o_name = name;
        o_gen = Atomic.get generation; o_trace_id = Context.trace_id ();
        o_start = now_ns (); o_attrs = List.rev attrs }
    in
    stack := o :: !stack;
    let finish () =
      let dur = Int64.sub (now_ns ()) o.o_start in
      (* Pop this frame; tolerate a stack perturbed by exceptions. *)
      stack := List.filter (fun x -> x.o_id <> id) !stack;
      (* A reset raced this span: its start time belongs to the old run,
         so recording it now would misattribute it.  Drop it. *)
      if Atomic.get generation = o.o_gen then begin
        let sp =
          { sp_id = id; sp_parent = o.o_parent; sp_name = name;
            sp_trace_id = o.o_trace_id;
            sp_start_ns = Int64.sub o.o_start !t0; sp_dur_ns = dur;
            sp_attrs = List.rev o.o_attrs }
        in
        Mutex.lock finished_lock;
        finished := sp :: !finished;
        Mutex.unlock finished_lock;
        Flight.record ~kind:"span" ~value:(Int64.to_float dur /. 1e6) name
      end
    in
    Fun.protect ~finally:finish f
  end

let add_attr key value =
  if Atomic.get on then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | o :: _ -> o.o_attrs <- (key, value) :: o.o_attrs

let all_finished () =
  Mutex.lock finished_lock;
  let all = !finished in
  Mutex.unlock finished_lock;
  all

let spans () =
  List.sort
    (fun a b ->
      match Int64.compare a.sp_start_ns b.sp_start_ns with
      | 0 -> compare a.sp_id b.sp_id
      | c -> c)
    (all_finished ())

let spans_named name =
  List.filter (fun s -> s.sp_name = name) (all_finished ())

let total_ns name =
  List.fold_left
    (fun acc s -> Int64.add acc s.sp_dur_ns)
    0L (spans_named name)

(* ------------------------------------------------------------------ *)
(* Streaming quantile sketch                                           *)
(* ------------------------------------------------------------------ *)

(* A DDSketch-style log-bucketed quantile estimator: bucket boundaries
   grow geometrically by [sketch_gamma], so any quantile is answered
   with relative error at most sqrt(gamma) - 1 (~3.9% for gamma=1.08),
   and merging shards is exact — it is just adding bucket counts.
   Chosen over CKMS/P2 because per-domain shards must merge without
   coordination; marker-based estimators do not compose. *)
let sketch_gamma = 1.08
let sketch_min_value = 1e-6
let sketch_size = 512
let sketch_log_gamma = log sketch_gamma

let sketch_bucket v =
  if Float.is_nan v || v <= sketch_min_value then 0
  else begin
    let b =
      1 + int_of_float (Float.floor (log (v /. sketch_min_value)
                                     /. sketch_log_gamma))
    in
    if b >= sketch_size then sketch_size - 1 else b
  end

(* Geometric midpoint of bucket [i]'s boundaries — the value whose
   relative distance to anything in the bucket is bounded. *)
let sketch_value i =
  if i <= 0 then sketch_min_value
  else sketch_min_value *. exp ((float_of_int i -. 0.5) *. sketch_log_gamma)

let sketch_quantile counts total q =
  if total = 0 then 0.0
  else begin
    let rank =
      max 1 (min total (int_of_float (Float.ceil (q *. float_of_int total))))
    in
    let rec go i acc =
      if i >= sketch_size then sketch_value (sketch_size - 1)
      else
        let acc = acc + counts.(i) in
        if acc >= rank then sketch_value i else go (i + 1) acc
    in
    go 0 0
  end

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_value : int Atomic.t }

(* One domain's private accumulator for one histogram.  Only the owning
   domain writes it; mutable word-sized fields cannot tear, so the
   merging snapshot reads are safe (and exact once the domain has
   quiesced). *)
type hist_shard = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
  s_sketch : int array;  (** log-bucket counts, [sketch_size] wide *)
}

type histogram = {
  g_id : int;
  g_name : string;
  g_lock : Mutex.t;  (** guards [g_shards] *)
  mutable g_shards : hist_shard list;
}

(* Sliding-window rate: [rate_slots] one-second slots under a mutex.
   Marks land in the slot for the current wall second; slots whose
   epoch has fallen out of the window are recycled lazily.  Marks are
   per-request-scale events (not per interpreter step), so a short
   mutex is cheaper than the false-sharing games atomics would need. *)
let rate_slots = 60

type rate = {
  r_name : string;
  r_lock : Mutex.t;
  r_counts : int array;
  r_epochs : int array;  (** absolute second each slot last belonged to *)
}

let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let rates : (string, rate) Hashtbl.t = Hashtbl.create 16
let next_hist_id = ref 0

(* Per-domain shard handles: histogram id -> (generation, shard). *)
let shards_key : (int, int * hist_shard) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let reset () =
  (* The generation bump is the atomic lifecycle swap: from this point
     every still-open span and every domain-local shard handle is
     stale and will be dropped/abandoned at its next touch. *)
  Atomic.incr generation;
  Atomic.set next_id 0;
  Domain.DLS.get stack_key := [];
  Mutex.lock finished_lock;
  finished := [];
  Mutex.unlock finished_lock;
  t0 := now_ns ();
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
  Hashtbl.iter
    (fun _ g ->
      Mutex.lock g.g_lock;
      g.g_shards <- [];
      Mutex.unlock g.g_lock)
    histograms;
  Hashtbl.iter
    (fun _ r ->
      Mutex.lock r.r_lock;
      Array.fill r.r_counts 0 rate_slots 0;
      Array.fill r.r_epochs 0 rate_slots (-1);
      Mutex.unlock r.r_lock)
    rates;
  Mutex.unlock registry_lock;
  Flight.clear ()

let enable () =
  reset ();
  Atomic.set on true

let disable () = Atomic.set on false

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_value = Atomic.make 0 } in
      Hashtbl.add counters name c;
      c
  in
  Mutex.unlock registry_lock;
  c

let histogram name =
  Mutex.lock registry_lock;
  let g =
    match Hashtbl.find_opt histograms name with
    | Some g -> g
    | None ->
      let g =
        { g_id = !next_hist_id; g_name = name; g_lock = Mutex.create ();
          g_shards = [] }
      in
      next_hist_id := !next_hist_id + 1;
      Hashtbl.add histograms name g;
      g
  in
  Mutex.unlock registry_lock;
  g

let rate name =
  Mutex.lock registry_lock;
  let r =
    match Hashtbl.find_opt rates name with
    | Some r -> r
    | None ->
      let r =
        { r_name = name; r_lock = Mutex.create ();
          r_counts = Array.make rate_slots 0;
          r_epochs = Array.make rate_slots (-1) }
      in
      Hashtbl.add rates name r;
      r
  in
  Mutex.unlock registry_lock;
  r

let incr ?(by = 1) c =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add c.c_value by);
    (* Counter increments are aggregates; attribution to the request
       that caused them lives in the flight recorder, and only when a
       context is installed — synthesis-style bulk work outside any
       request pays nothing here. *)
    if Context.current () <> None then
      Flight.record ~kind:"counter" ~value:(float_of_int by) c.c_name
  end

let observe g v =
  if Atomic.get on then begin
    let tbl = Domain.DLS.get shards_key in
    let gen = Atomic.get generation in
    let shard =
      match Hashtbl.find_opt tbl g.g_id with
      | Some (gen', s) when gen' = gen -> s
      | _ ->
        let s =
          { s_count = 0; s_sum = 0.0; s_min = 0.0; s_max = 0.0;
            s_sketch = Array.make sketch_size 0 }
        in
        Mutex.lock g.g_lock;
        g.g_shards <- s :: g.g_shards;
        Mutex.unlock g.g_lock;
        Hashtbl.replace tbl g.g_id (gen, s);
        s
    in
    let new_max = shard.s_count = 0 || v > shard.s_max in
    if shard.s_count = 0 then begin
      shard.s_min <- v;
      shard.s_max <- v
    end
    else begin
      if v < shard.s_min then shard.s_min <- v;
      if v > shard.s_max then shard.s_max <- v
    end;
    shard.s_count <- shard.s_count + 1;
    shard.s_sum <- shard.s_sum +. v;
    let b = sketch_bucket v in
    shard.s_sketch.(b) <- shard.s_sketch.(b) + 1;
    (* Exemplar link: the slowest observation this shard has seen under
       a request context is worth a flight event tying the latency to
       the trace that produced it. *)
    if new_max && Context.current () <> None then
      Flight.record ~kind:"exemplar" ~value:v g.g_name
  end

let mark ?(by = 1) r =
  if Atomic.get on then begin
    let now_s = Int64.to_int (Int64.div (now_ns ()) 1_000_000_000L) in
    let idx = now_s mod rate_slots in
    Mutex.lock r.r_lock;
    if r.r_epochs.(idx) <> now_s then begin
      r.r_epochs.(idx) <- now_s;
      r.r_counts.(idx) <- 0
    end;
    r.r_counts.(idx) <- r.r_counts.(idx) + by;
    Mutex.unlock r.r_lock
  end

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
  h_p50 : float;  (** streaming-sketch estimates, merged across shards *)
  h_p95 : float;
  h_p99 : float;
}

type rate_snapshot = {
  rt_count : int;  (** marks inside the window *)
  rt_per_s : float;
  rt_window_s : float;
}

let merge_shards g : hist_snapshot =
  Mutex.lock g.g_lock;
  let shards = List.rev g.g_shards in  (* registration order *)
  Mutex.unlock g.g_lock;
  let merged = Array.make sketch_size 0 in
  let count, sum, mn, mx =
    List.fold_left
      (fun (count, sum, mn, mx) s ->
        if s.s_count = 0 then (count, sum, mn, mx)
        else begin
          Array.iteri
            (fun i n -> if n > 0 then merged.(i) <- merged.(i) + n)
            s.s_sketch;
          ( count + s.s_count,
            sum +. s.s_sum,
            (if count = 0 then s.s_min else Float.min mn s.s_min),
            if count = 0 then s.s_max else Float.max mx s.s_max )
        end)
      (0, 0.0, 0.0, 0.0) shards
  in
  { h_count = count; h_sum = sum; h_min = mn; h_max = mx;
    h_mean = (if count = 0 then 0.0 else sum /. float_of_int count);
    h_p50 = sketch_quantile merged count 0.50;
    h_p95 = sketch_quantile merged count 0.95;
    h_p99 = sketch_quantile merged count 0.99 }

let rate_value r : rate_snapshot =
  let now_s = Int64.to_int (Int64.div (now_ns ()) 1_000_000_000L) in
  Mutex.lock r.r_lock;
  let count = ref 0 in
  for idx = 0 to rate_slots - 1 do
    if r.r_epochs.(idx) > now_s - rate_slots then
      count := !count + r.r_counts.(idx)
  done;
  Mutex.unlock r.r_lock;
  { rt_count = !count;
    rt_per_s = float_of_int !count /. float_of_int rate_slots;
    rt_window_s = float_of_int rate_slots }

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_snapshot) list;
  rates : (string * rate_snapshot) list;
}

let snapshot () =
  Mutex.lock registry_lock;
  let counter_list = Hashtbl.fold (fun name c acc -> (name, c) :: acc) counters [] in
  let hist_list = Hashtbl.fold (fun name g acc -> (name, g) :: acc) histograms [] in
  let rate_list = Hashtbl.fold (fun name r acc -> (name, r) :: acc) rates [] in
  Mutex.unlock registry_lock;
  let by_name (a, _) (b, _) = String.compare a b in
  let cs =
    List.map (fun (name, c) -> (name, Atomic.get c.c_value)) counter_list
    |> List.sort by_name
  in
  let hs =
    List.map (fun (name, g) -> (name, merge_shards g)) hist_list
    |> List.sort by_name
  in
  let rs =
    List.map (fun (name, r) -> (name, rate_value r)) rate_list
    |> List.sort by_name
  in
  { counters = cs; histograms = hs; rates = rs }

let find_counter snap name =
  Option.value ~default:0 (List.assoc_opt name snap.counters)

(* ------------------------------------------------------------------ *)
(* Rendering and export                                                *)
(* ------------------------------------------------------------------ *)

let format_ns ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Printf.sprintf "%.0fns" f
  else if f < 1e6 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%.1fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

let attr_value_to_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B b -> if b then "true" else "false"

let attrs_to_json attrs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (json_escape k) (attr_value_to_json v))
         attrs)
  ^ "}"

let ms ns = Int64.to_float ns /. 1e6

let span_to_json s =
  Printf.sprintf
    "{\"name\":\"%s\",\"id\":%d,\"parent\":%s,\"trace_id\":\"%s\",\
     \"start_ms\":%.3f,\"dur_ms\":%.3f,\"attrs\":%s}"
    (json_escape s.sp_name) s.sp_id
    (match s.sp_parent with None -> "null" | Some p -> string_of_int p)
    (Context.id_to_hex s.sp_trace_id)
    (ms s.sp_start_ns) (ms s.sp_dur_ns)
    (attrs_to_json s.sp_attrs)

let write_jsonl path =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
    List.iter
      (fun s ->
        output_string oc (span_to_json s);
        output_char oc '\n')
      (spans ());
    close_out oc;
    Ok ()

let attr_to_string (k, v) =
  k ^ "="
  ^ (match v with
     | S s -> Printf.sprintf "%S" s
     | I i -> string_of_int i
     | F f -> Printf.sprintf "%g" f
     | B b -> string_of_bool b)

let render_tree () =
  let all = spans () in
  let buf = Buffer.create 1024 in
  let children parent =
    List.filter (fun s -> s.sp_parent = parent) all
  in
  let rec go depth s =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %9s%s\n"
         (String.make (2 * depth) ' ')
         (max 1 (36 - (2 * depth)))
         s.sp_name
         (format_ns s.sp_dur_ns)
         (match s.sp_attrs with
          | [] -> ""
          | attrs ->
            "  " ^ String.concat " " (List.map attr_to_string attrs)));
    List.iter (go (depth + 1)) (children (Some s.sp_id))
  in
  List.iter (go 0) (children None);
  Buffer.contents buf

let render_metrics snap =
  let buf = Buffer.create 1024 in
  if snap.counters <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-42s %14s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "%-42s %14d\n" name v))
      snap.counters
  end;
  let active = List.filter (fun (_, h) -> h.h_count > 0) snap.histograms in
  if active <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-42s %8s %10s %10s %10s %10s %10s\n" "histogram"
         "count" "mean" "p50" "p95" "p99" "max");
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf "%-42s %8d %10.1f %10.1f %10.1f %10.1f %10.1f\n"
             name h.h_count h.h_mean h.h_p50 h.h_p95 h.h_p99 h.h_max))
      active
  end;
  let live_rates = List.filter (fun (_, r) -> r.rt_count > 0) snap.rates in
  if live_rates <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-42s %8s %12s\n" "rate (sliding window)" "count"
         "per-second");
    List.iter
      (fun (name, r) ->
        Buffer.add_string buf
          (Printf.sprintf "%-42s %8d %12.3f\n" name r.rt_count r.rt_per_s))
      live_rates
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)
(* ------------------------------------------------------------------ *)

module Expose = struct
  (* Internal dotted names become Prometheus families under a single
     [autotype_] namespace: dots and anything outside [a-zA-Z0-9_]
     are replaced with underscores.  Counters gain the conventional
     [_total] suffix, histograms expose as summaries (streaming-sketch
     quantiles + _sum/_count), rates as [_per_second] gauges. *)
  let sanitize name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name

  let float_str v =
    if Float.is_nan v then "NaN"
    else if v = Float.infinity then "+Inf"
    else if v = Float.neg_infinity then "-Inf"
    else Printf.sprintf "%.6f" v

  let render_prometheus (snap : snapshot) : string =
    let buf = Buffer.create 4096 in
    let family ~name ~help ~typ samples =
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ);
      List.iter (fun s -> Buffer.add_string buf (s ^ "\n")) samples
    in
    let families =
      List.map
        (fun (name, v) ->
          let fam = "autotype_" ^ sanitize name ^ "_total" in
          ( fam,
            fun () ->
              family ~name:fam
                ~help:(Printf.sprintf "AutoType counter %s." name)
                ~typ:"counter"
                [ Printf.sprintf "%s %d" fam v ] ))
        snap.counters
      @ List.filter_map
          (fun (name, h) ->
            if h.h_count = 0 then None
            else
              let fam = "autotype_" ^ sanitize name in
              Some
                ( fam,
                  fun () ->
                    family ~name:fam
                      ~help:
                        (Printf.sprintf
                           "AutoType histogram %s (streaming quantile \
                            sketch)." name)
                      ~typ:"summary"
                      [ Printf.sprintf "%s{quantile=\"0.5\"} %s" fam
                          (float_str h.h_p50);
                        Printf.sprintf "%s{quantile=\"0.95\"} %s" fam
                          (float_str h.h_p95);
                        Printf.sprintf "%s{quantile=\"0.99\"} %s" fam
                          (float_str h.h_p99);
                        Printf.sprintf "%s_sum %s" fam (float_str h.h_sum);
                        Printf.sprintf "%s_count %d" fam h.h_count ] ))
          snap.histograms
      @ List.map
          (fun (name, r) ->
            let fam = "autotype_" ^ sanitize name ^ "_per_second" in
            ( fam,
              fun () ->
                family ~name:fam
                  ~help:
                    (Printf.sprintf
                       "AutoType sliding-window rate %s (window %.0fs)." name
                       r.rt_window_s)
                  ~typ:"gauge"
                  [ Printf.sprintf "%s %s" fam (float_str r.rt_per_s) ] ))
          snap.rates
    in
    List.iter
      (fun (_, emit) -> emit ())
      (List.sort (fun (a, _) (b, _) -> String.compare a b) families);
    Buffer.contents buf

  let render_json (snap : snapshot) : string =
    let buf = Buffer.create 4096 in
    let fields to_s kvs =
      String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":%s" (json_escape k) (to_s v))
           kvs)
    in
    Buffer.add_string buf "{\"counters\":{";
    Buffer.add_string buf (fields string_of_int snap.counters);
    Buffer.add_string buf "},\"histograms\":{";
    Buffer.add_string buf
      (fields
         (fun (h : hist_snapshot) ->
           Printf.sprintf
             "{\"count\":%d,\"max\":%.6f,\"mean\":%.6f,\"min\":%.6f,\
              \"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"sum\":%.6f}"
             h.h_count h.h_max h.h_mean h.h_min h.h_p50 h.h_p95 h.h_p99
             h.h_sum)
         snap.histograms);
    Buffer.add_string buf "},\"rates\":{";
    Buffer.add_string buf
      (fields
         (fun (r : rate_snapshot) ->
           Printf.sprintf
             "{\"count\":%d,\"per_s\":%.6f,\"window_s\":%.6f}"
             r.rt_count r.rt_per_s r.rt_window_s)
         snap.rates);
    Buffer.add_string buf "}}";
    Buffer.contents buf

  (* Exposition lint: the checks a Prometheus scraper would trip over.
     Families must declare HELP and TYPE before their first sample,
     exactly once; metric names must be well-formed; samples of a
     family must be contiguous; sample values must parse. *)
  let metric_name_ok name =
    String.length name > 0
    && (match name.[0] with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
        | _ -> false)
    && String.for_all
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
           | _ -> false)
         name

  let lint (text : string) : (int, string list) result =
    let errors = ref [] in
    let err lineno fmt =
      Printf.ksprintf
        (fun msg -> errors := Printf.sprintf "line %d: %s" lineno msg :: !errors)
        fmt
    in
    let helps : (string, unit) Hashtbl.t = Hashtbl.create 32 in
    let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
    let sampled : (string, unit) Hashtbl.t = Hashtbl.create 32 in
    let last_family = ref "" in
    let strip_suffix name =
      let try_strip sfx =
        let n = String.length name and l = String.length sfx in
        if n > l && String.sub name (n - l) l = sfx then
          Some (String.sub name 0 (n - l))
        else None
      in
      match try_strip "_sum" with
      | Some b -> b
      | None ->
        (match try_strip "_count" with
         | Some b -> b
         | None ->
           (match try_strip "_bucket" with Some b -> b | None -> name))
    in
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line = String.trim line in
        if line = "" then ()
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
          match String.split_on_char ' ' line with
          | _ :: _ :: name :: _rest when name <> "" ->
            if not (metric_name_ok name) then
              err lineno "HELP for malformed metric name %S" name;
            if Hashtbl.mem helps name then
              err lineno "duplicate HELP for family %s" name
            else Hashtbl.add helps name ()
          | _ -> err lineno "malformed HELP line %S" line
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          match String.split_on_char ' ' line with
          | [ _; _; name; typ ] ->
            if not (metric_name_ok name) then
              err lineno "TYPE for malformed metric name %S" name;
            if
              not
                (List.mem typ
                   [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
            then err lineno "unknown metric type %S for %s" typ name;
            if Hashtbl.mem types name then
              err lineno "duplicate TYPE for family %s (duplicate family)"
                name
            else Hashtbl.add types name typ;
            if Hashtbl.mem sampled name then
              err lineno "TYPE for %s appears after its samples" name
          | _ -> err lineno "malformed TYPE line %S" line
        end
        else if line.[0] = '#' then ()  (* plain comment *)
        else begin
          (* A sample: name[{labels}] value *)
          let name_end =
            match (String.index_opt line '{', String.index_opt line ' ') with
            | Some b, Some sp -> min b sp
            | Some b, None -> b
            | None, Some sp -> sp
            | None, None -> String.length line
          in
          let name = String.sub line 0 name_end in
          if not (metric_name_ok name) then
            err lineno "malformed metric name %S" name
          else begin
            let family =
              if Hashtbl.mem types name then name else strip_suffix name
            in
            if not (Hashtbl.mem types family) then
              err lineno "sample %s has no TYPE declaration" name;
            if not (Hashtbl.mem helps family) then
              err lineno "sample %s has no HELP declaration" name;
            if !last_family <> family && Hashtbl.mem sampled family then
              err lineno "samples for family %s are not contiguous" family;
            Hashtbl.replace sampled family ();
            last_family := family;
            (* Labels, when present, must close before the value. *)
            let rest =
              match String.index_opt line '{' with
              | Some b ->
                (match String.index_from_opt line b '}' with
                 | None ->
                   err lineno "unclosed label braces on %s" name;
                   ""
                 | Some e ->
                   String.sub line (e + 1) (String.length line - e - 1))
              | None ->
                String.sub line name_end (String.length line - name_end)
            in
            let value = String.trim rest in
            let value_token =
              match String.index_opt value ' ' with
              | Some sp -> String.sub value 0 sp  (* optional timestamp *)
              | None -> value
            in
            if value_token = "" then err lineno "sample %s has no value" name
            else if
              (match float_of_string_opt value_token with
               | Some _ -> false
               | None ->
                 not
                   (List.mem value_token [ "+Inf"; "-Inf"; "NaN" ]))
            then err lineno "sample %s has unparsable value %S" name value_token
          end
        end)
      lines;
    (* Declared families with no samples are legal in Prometheus but in
       our exposition they mean a rendering bug. *)
    Hashtbl.iter
      (fun name _ ->
        if not (Hashtbl.mem sampled name) then
          errors := Printf.sprintf "family %s declares TYPE but has no samples" name :: !errors)
      types;
    if !errors = [] then Ok (Hashtbl.length types)
    else Error (List.rev !errors)
end

(* ------------------------------------------------------------------ *)
(* SLO                                                                 *)
(* ------------------------------------------------------------------ *)

module Slo = struct
  type target = { slo_p99_ms : float; slo_error_rate : float }

  let default_target = { slo_p99_ms = 1.0; slo_error_rate = 0.01 }

  type report = {
    rep_total : int;
    rep_p99_ms : float;
    rep_target_p99_ms : float;
    rep_p99_ok : bool;
    rep_error_rate : float;
    rep_target_error_rate : float;
    rep_error_budget_burn : float;
    rep_deadline_hit_rate : float;
  }

  let eval (target : target) ~p99_ms ~errors ~deadline_hits ~total : report =
    let ratio n =
      if total = 0 then 0.0 else float_of_int n /. float_of_int total
    in
    let error_rate = ratio errors in
    let burn =
      if target.slo_error_rate > 0.0 then error_rate /. target.slo_error_rate
      else if error_rate > 0.0 then 1e9
      else 0.0
    in
    {
      rep_total = total;
      rep_p99_ms = p99_ms;
      rep_target_p99_ms = target.slo_p99_ms;
      rep_p99_ok = p99_ms <= target.slo_p99_ms;
      rep_error_rate = error_rate;
      rep_target_error_rate = target.slo_error_rate;
      rep_error_budget_burn = (if Float.is_finite burn then burn else 1e9);
      rep_deadline_hit_rate = ratio deadline_hits;
    }

  (* Keys sorted, floats fixed, for deterministic BENCH files. *)
  let report_to_json (r : report) : string =
    Printf.sprintf
      "{\"deadline_hit_rate\":%.6f,\"error_budget_burn\":%.6f,\
       \"error_rate\":%.6f,\"p99_ms\":%.6f,\"p99_ok\":%b,\
       \"target_error_rate\":%.6f,\"target_p99_ms\":%.6f,\"total\":%d}"
      r.rep_deadline_hit_rate r.rep_error_budget_burn r.rep_error_rate
      r.rep_p99_ms r.rep_p99_ok r.rep_target_error_rate r.rep_target_p99_ms
      r.rep_total
end
