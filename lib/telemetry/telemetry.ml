(** Telemetry recorder: spans, counters, histograms, JSONL export.

    A single global recorder, disabled by default.  Every probe first
    checks [on] — one atomic load and a branch — so instrumentation left
    in hot paths costs effectively nothing when telemetry is off.
    Durations come from CLOCK_MONOTONIC (bechamel's stubs), not the wall
    clock.

    Domain safety: counters are atomics; histograms accumulate into
    per-domain shards (registered once per domain per histogram, then
    updated without synchronization) merged at snapshot time; the span
    stack is domain-local storage, with finished spans appended under a
    mutex.  Probes may therefore fire concurrently from any domain —
    the execution engine (lib/exec) traces candidates in parallel while
    the interpreter counts runs and steps.  [enable]/[disable]/[reset]
    remain orchestration operations: call them from the controlling
    domain while no parallel region is in flight. *)

let now_ns () : int64 = Monotonic_clock.now ()

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type attr_value =
  | S of string
  | I of int
  | F of float
  | B of bool

type attr = string * attr_value

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_attrs : attr list;
}

type open_span = {
  o_id : int;
  o_parent : int option;
  o_name : string;
  o_start : int64;  (** absolute monotonic time *)
  mutable o_attrs : attr list;  (** reversed *)
}

type counter = { c_name : string; c_value : int Atomic.t }

(* One domain's private accumulator for one histogram.  Only the owning
   domain writes it; mutable word-sized fields cannot tear, so the
   merging snapshot reads are safe (and exact once the domain has
   quiesced). *)
type hist_shard = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
}

type histogram = {
  g_id : int;
  g_name : string;
  g_lock : Mutex.t;  (** guards [g_shards] *)
  mutable g_shards : hist_shard list;
}

let on = Atomic.make false
let t0 = ref 0L
let next_id = Atomic.make 0

(* [generation] is bumped by [reset] so domain-local shard handles from
   a previous run are abandoned rather than double-counted. *)
let generation = Atomic.make 0

(* Per-domain span stack: spans nest along each domain's own dynamic
   call stack. *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let finished_lock = Mutex.create ()
let finished : span list ref = ref []  (* reversed completion order *)

let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let next_hist_id = ref 0

(* Per-domain shard handles: histogram id -> (generation, shard). *)
let shards_key : (int, int * hist_shard) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let enabled () = Atomic.get on

let reset () =
  Atomic.incr generation;
  Atomic.set next_id 0;
  Domain.DLS.get stack_key := [];
  Mutex.lock finished_lock;
  finished := [];
  Mutex.unlock finished_lock;
  t0 := now_ns ();
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
  Hashtbl.iter
    (fun _ g ->
      Mutex.lock g.g_lock;
      g.g_shards <- [];
      Mutex.unlock g.g_lock)
    histograms;
  Mutex.unlock registry_lock

let enable () =
  reset ();
  Atomic.set on true

let disable () = Atomic.set on false

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let with_span ?(attrs = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match !stack with [] -> None | o :: _ -> Some o.o_id in
    let o =
      { o_id = id; o_parent = parent; o_name = name; o_start = now_ns ();
        o_attrs = List.rev attrs }
    in
    stack := o :: !stack;
    let finish () =
      let dur = Int64.sub (now_ns ()) o.o_start in
      (* Pop this frame; tolerate a stack perturbed by exceptions. *)
      stack := List.filter (fun x -> x.o_id <> id) !stack;
      let sp =
        { sp_id = id; sp_parent = o.o_parent; sp_name = name;
          sp_start_ns = Int64.sub o.o_start !t0; sp_dur_ns = dur;
          sp_attrs = List.rev o.o_attrs }
      in
      Mutex.lock finished_lock;
      finished := sp :: !finished;
      Mutex.unlock finished_lock
    in
    Fun.protect ~finally:finish f
  end

let add_attr key value =
  if Atomic.get on then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | o :: _ -> o.o_attrs <- (key, value) :: o.o_attrs

let all_finished () =
  Mutex.lock finished_lock;
  let all = !finished in
  Mutex.unlock finished_lock;
  all

let spans () =
  List.sort
    (fun a b ->
      match Int64.compare a.sp_start_ns b.sp_start_ns with
      | 0 -> compare a.sp_id b.sp_id
      | c -> c)
    (all_finished ())

let spans_named name =
  List.filter (fun s -> s.sp_name = name) (all_finished ())

let total_ns name =
  List.fold_left
    (fun acc s -> Int64.add acc s.sp_dur_ns)
    0L (spans_named name)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let counter name =
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_value = Atomic.make 0 } in
      Hashtbl.add counters name c;
      c
  in
  Mutex.unlock registry_lock;
  c

let histogram name =
  Mutex.lock registry_lock;
  let g =
    match Hashtbl.find_opt histograms name with
    | Some g -> g
    | None ->
      let g =
        { g_id = !next_hist_id; g_name = name; g_lock = Mutex.create ();
          g_shards = [] }
      in
      incr next_hist_id;
      Hashtbl.add histograms name g;
      g
  in
  Mutex.unlock registry_lock;
  g

let incr ?(by = 1) c =
  if Atomic.get on then ignore (Atomic.fetch_and_add c.c_value by)

let observe g v =
  if Atomic.get on then begin
    let tbl = Domain.DLS.get shards_key in
    let gen = Atomic.get generation in
    let shard =
      match Hashtbl.find_opt tbl g.g_id with
      | Some (gen', s) when gen' = gen -> s
      | _ ->
        let s = { s_count = 0; s_sum = 0.0; s_min = 0.0; s_max = 0.0 } in
        Mutex.lock g.g_lock;
        g.g_shards <- s :: g.g_shards;
        Mutex.unlock g.g_lock;
        Hashtbl.replace tbl g.g_id (gen, s);
        s
    in
    if shard.s_count = 0 then begin
      shard.s_min <- v;
      shard.s_max <- v
    end
    else begin
      if v < shard.s_min then shard.s_min <- v;
      if v > shard.s_max then shard.s_max <- v
    end;
    shard.s_count <- shard.s_count + 1;
    shard.s_sum <- shard.s_sum +. v
  end

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
}

let merge_shards g : hist_snapshot =
  Mutex.lock g.g_lock;
  let shards = List.rev g.g_shards in  (* registration order *)
  Mutex.unlock g.g_lock;
  let count, sum, mn, mx =
    List.fold_left
      (fun (count, sum, mn, mx) s ->
        if s.s_count = 0 then (count, sum, mn, mx)
        else
          ( count + s.s_count,
            sum +. s.s_sum,
            (if count = 0 then s.s_min else Float.min mn s.s_min),
            if count = 0 then s.s_max else Float.max mx s.s_max ))
      (0, 0.0, 0.0, 0.0) shards
  in
  { h_count = count; h_sum = sum; h_min = mn; h_max = mx;
    h_mean = (if count = 0 then 0.0 else sum /. float_of_int count) }

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot () =
  Mutex.lock registry_lock;
  let counter_list = Hashtbl.fold (fun name c acc -> (name, c) :: acc) counters [] in
  let hist_list = Hashtbl.fold (fun name g acc -> (name, g) :: acc) histograms [] in
  Mutex.unlock registry_lock;
  let cs =
    List.map (fun (name, c) -> (name, Atomic.get c.c_value)) counter_list
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    List.map (fun (name, g) -> (name, merge_shards g)) hist_list
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { counters = cs; histograms = hs }

let find_counter snap name =
  Option.value ~default:0 (List.assoc_opt name snap.counters)

(* ------------------------------------------------------------------ *)
(* Rendering and export                                                *)
(* ------------------------------------------------------------------ *)

let format_ns ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Printf.sprintf "%.0fns" f
  else if f < 1e6 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%.1fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attr_value_to_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B b -> if b then "true" else "false"

let attrs_to_json attrs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (json_escape k) (attr_value_to_json v))
         attrs)
  ^ "}"

let ms ns = Int64.to_float ns /. 1e6

let span_to_json s =
  Printf.sprintf
    "{\"name\":\"%s\",\"id\":%d,\"parent\":%s,\"start_ms\":%.3f,\"dur_ms\":%.3f,\"attrs\":%s}"
    (json_escape s.sp_name) s.sp_id
    (match s.sp_parent with None -> "null" | Some p -> string_of_int p)
    (ms s.sp_start_ns) (ms s.sp_dur_ns)
    (attrs_to_json s.sp_attrs)

let write_jsonl path =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
    List.iter
      (fun s ->
        output_string oc (span_to_json s);
        output_char oc '\n')
      (spans ());
    close_out oc;
    Ok ()

let attr_to_string (k, v) =
  k ^ "="
  ^ (match v with
     | S s -> Printf.sprintf "%S" s
     | I i -> string_of_int i
     | F f -> Printf.sprintf "%g" f
     | B b -> string_of_bool b)

let render_tree () =
  let all = spans () in
  let buf = Buffer.create 1024 in
  let children parent =
    List.filter (fun s -> s.sp_parent = parent) all
  in
  let rec go depth s =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %9s%s\n"
         (String.make (2 * depth) ' ')
         (max 1 (36 - (2 * depth)))
         s.sp_name
         (format_ns s.sp_dur_ns)
         (match s.sp_attrs with
          | [] -> ""
          | attrs ->
            "  " ^ String.concat " " (List.map attr_to_string attrs)));
    List.iter (go (depth + 1)) (children (Some s.sp_id))
  in
  List.iter (go 0) (children None);
  Buffer.contents buf

let render_metrics snap =
  let buf = Buffer.create 1024 in
  if snap.counters <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-42s %14s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "%-42s %14d\n" name v))
      snap.counters
  end;
  let active = List.filter (fun (_, h) -> h.h_count > 0) snap.histograms in
  if active <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-42s %8s %12s %10s %10s\n" "histogram" "count"
         "mean" "min" "max");
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf "%-42s %8d %12.1f %10.1f %10.1f\n" name h.h_count
             h.h_mean h.h_min h.h_max))
      active
  end;
  Buffer.contents buf
