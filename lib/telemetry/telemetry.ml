(** Telemetry recorder: spans, counters, histograms, JSONL export.

    A single global recorder, disabled by default.  Every probe first
    checks [on] — a plain bool ref — so instrumentation left in hot
    paths costs one branch when telemetry is off.  Durations come from
    CLOCK_MONOTONIC (bechamel's stubs), not the wall clock. *)

let now_ns () : int64 = Monotonic_clock.now ()

(* ------------------------------------------------------------------ *)
(* State                                                               *)
(* ------------------------------------------------------------------ *)

type attr_value =
  | S of string
  | I of int
  | F of float
  | B of bool

type attr = string * attr_value

type span = {
  sp_id : int;
  sp_parent : int option;
  sp_name : string;
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_attrs : attr list;
}

type open_span = {
  o_id : int;
  o_parent : int option;
  o_name : string;
  o_start : int64;  (** absolute monotonic time *)
  mutable o_attrs : attr list;  (** reversed *)
}

type counter = { c_name : string; mutable c_value : int }

type histogram = {
  g_name : string;
  mutable g_count : int;
  mutable g_sum : float;
  mutable g_min : float;
  mutable g_max : float;
}

let on = ref false
let t0 = ref 0L
let next_id = ref 0
let stack : open_span list ref = ref []
let finished : span list ref = ref []  (* reversed completion order *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let enabled () = !on

let reset () =
  next_id := 0;
  stack := [];
  finished := [];
  t0 := now_ns ();
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter
    (fun _ g ->
      g.g_count <- 0;
      g.g_sum <- 0.0;
      g.g_min <- 0.0;
      g.g_max <- 0.0)
    histograms

let enable () =
  reset ();
  on := true

let disable () = on := false

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let with_span ?(attrs = []) name f =
  if not !on then f ()
  else begin
    let id = !next_id in
    incr next_id;
    let parent = match !stack with [] -> None | o :: _ -> Some o.o_id in
    let o =
      { o_id = id; o_parent = parent; o_name = name; o_start = now_ns ();
        o_attrs = List.rev attrs }
    in
    stack := o :: !stack;
    let finish () =
      let dur = Int64.sub (now_ns ()) o.o_start in
      (* Pop this frame; tolerate a stack perturbed by exceptions. *)
      stack := List.filter (fun x -> x.o_id <> id) !stack;
      finished :=
        { sp_id = id; sp_parent = o.o_parent; sp_name = name;
          sp_start_ns = Int64.sub o.o_start !t0; sp_dur_ns = dur;
          sp_attrs = List.rev o.o_attrs }
        :: !finished
    in
    Fun.protect ~finally:finish f
  end

let add_attr key value =
  if !on then
    match !stack with
    | [] -> ()
    | o :: _ -> o.o_attrs <- (key, value) :: o.o_attrs

let spans () =
  List.sort
    (fun a b ->
      match Int64.compare a.sp_start_ns b.sp_start_ns with
      | 0 -> compare a.sp_id b.sp_id
      | c -> c)
    !finished

let spans_named name = List.filter (fun s -> s.sp_name = name) !finished

let total_ns name =
  List.fold_left
    (fun acc s -> Int64.add acc s.sp_dur_ns)
    0L (spans_named name)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add counters name c;
    c

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_count = 0; g_sum = 0.0; g_min = 0.0; g_max = 0.0 } in
    Hashtbl.add histograms name g;
    g

let incr ?(by = 1) c = if !on then c.c_value <- c.c_value + by

let observe g v =
  if !on then begin
    if g.g_count = 0 then begin
      g.g_min <- v;
      g.g_max <- v
    end
    else begin
      if v < g.g_min then g.g_min <- v;
      if v > g.g_max then g.g_max <- v
    end;
    g.g_count <- g.g_count + 1;
    g.g_sum <- g.g_sum +. v
  end

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let snapshot () =
  let cs =
    Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold
      (fun name g acc ->
        ( name,
          { h_count = g.g_count; h_sum = g.g_sum; h_min = g.g_min;
            h_max = g.g_max;
            h_mean = (if g.g_count = 0 then 0.0
                      else g.g_sum /. float_of_int g.g_count) } )
        :: acc)
      histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { counters = cs; histograms = hs }

let find_counter snap name =
  Option.value ~default:0 (List.assoc_opt name snap.counters)

(* ------------------------------------------------------------------ *)
(* Rendering and export                                                *)
(* ------------------------------------------------------------------ *)

let format_ns ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Printf.sprintf "%.0fns" f
  else if f < 1e6 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%.1fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attr_value_to_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B b -> if b then "true" else "false"

let attrs_to_json attrs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (json_escape k) (attr_value_to_json v))
         attrs)
  ^ "}"

let ms ns = Int64.to_float ns /. 1e6

let span_to_json s =
  Printf.sprintf
    "{\"name\":\"%s\",\"id\":%d,\"parent\":%s,\"start_ms\":%.3f,\"dur_ms\":%.3f,\"attrs\":%s}"
    (json_escape s.sp_name) s.sp_id
    (match s.sp_parent with None -> "null" | Some p -> string_of_int p)
    (ms s.sp_start_ns) (ms s.sp_dur_ns)
    (attrs_to_json s.sp_attrs)

let write_jsonl path =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
    List.iter
      (fun s ->
        output_string oc (span_to_json s);
        output_char oc '\n')
      (spans ());
    close_out oc;
    Ok ()

let attr_to_string (k, v) =
  k ^ "="
  ^ (match v with
     | S s -> Printf.sprintf "%S" s
     | I i -> string_of_int i
     | F f -> Printf.sprintf "%g" f
     | B b -> string_of_bool b)

let render_tree () =
  let all = spans () in
  let buf = Buffer.create 1024 in
  let children parent =
    List.filter (fun s -> s.sp_parent = parent) all
  in
  let rec go depth s =
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %9s%s\n"
         (String.make (2 * depth) ' ')
         (max 1 (36 - (2 * depth)))
         s.sp_name
         (format_ns s.sp_dur_ns)
         (match s.sp_attrs with
          | [] -> ""
          | attrs ->
            "  " ^ String.concat " " (List.map attr_to_string attrs)));
    List.iter (go (depth + 1)) (children (Some s.sp_id))
  in
  List.iter (go 0) (children None);
  Buffer.contents buf

let render_metrics snap =
  let buf = Buffer.create 1024 in
  if snap.counters <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-42s %14s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "%-42s %14d\n" name v))
      snap.counters
  end;
  let active = List.filter (fun (_, h) -> h.h_count > 0) snap.histograms in
  if active <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "%-42s %8s %12s %10s %10s\n" "histogram" "count"
         "mean" "min" "max");
    List.iter
      (fun (name, h) ->
        Buffer.add_string buf
          (Printf.sprintf "%-42s %8d %12.1f %10.1f %10.1f\n" name h.h_count
             h.h_mean h.h_min h.h_max))
      active
  end;
  Buffer.contents buf
