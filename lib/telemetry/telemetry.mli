(** Telemetry for the synthesis pipeline: nestable timed spans, counters
    and histograms, and JSONL trace export.

    The subsystem is a process-wide recorder that is {e disabled} by
    default: every instrumentation call ([with_span], [incr], [observe])
    first checks a single boolean, so instrumented code pays effectively
    nothing until {!enable} is called.  The CLI turns it on for
    [--stats]/[--trace], the bench harness for its [pipeline] target,
    and tests enable it around individual assertions.

    Timing uses the OS monotonic clock (CLOCK_MONOTONIC via bechamel's
    stubs), so span durations are immune to wall-clock adjustments.

    The recorder is a single global and is safe to probe from any
    domain: counters are atomics, histograms accumulate into per-domain
    shards merged at {!snapshot}, and spans nest along each domain's own
    dynamic call stack (finished spans are appended to one shared list).
    {!enable}, {!disable} and {!reset} are orchestration operations —
    call them from the controlling domain while no parallel region is
    in flight. *)

val now_ns : unit -> int64
(** Raw CLOCK_MONOTONIC reading in nanoseconds — the clock every span
    duration is measured on.  Exposed so deadline machinery (the
    interpreter's wall-clock budget, {!Exec.Deadline}) compares against
    the same time base the telemetry records. *)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn telemetry on and start a fresh run: clears recorded spans and
    zeroes every registered metric. *)

val disable : unit -> unit
(** Turn telemetry off.  Recorded data is kept so it can still be
    snapshotted or exported after the measured region. *)

val reset : unit -> unit
(** Clear recorded spans and zero all metrics without changing the
    enabled flag. *)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type attr_value =
  | S of string
  | I of int
  | F of float
  | B of bool

type attr = string * attr_value

type span = {
  sp_id : int;
  sp_parent : int option;  (** id of the enclosing span, if any *)
  sp_name : string;
  sp_start_ns : int64;  (** monotonic ns since {!enable} *)
  sp_dur_ns : int64;
  sp_attrs : attr list;  (** in insertion order *)
}

val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  The span is recorded when the
    thunk returns or raises; when telemetry is disabled this is just a
    call to the thunk. *)

val add_attr : string -> attr_value -> unit
(** Attach an attribute to the innermost open span (no-op when disabled
    or outside any span). *)

val spans : unit -> span list
(** Finished spans in start order. *)

val spans_named : string -> span list

val total_ns : string -> int64
(** Sum of durations of all finished spans with the given name. *)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type counter
type histogram

val counter : string -> counter
(** Find or register a counter.  Handles are typically created once at
    module initialisation and survive {!reset} (which only zeroes the
    value). *)

val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val observe : histogram -> float -> unit

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
val find_counter : snapshot -> string -> int
(** Value of a counter in a snapshot; 0 when absent. *)

(* ------------------------------------------------------------------ *)
(* Rendering and export                                                *)
(* ------------------------------------------------------------------ *)

val format_ns : int64 -> string
(** Human duration: "412ns", "3.2us", "15.4ms", "2.31s". *)

val span_to_json : span -> string
(** One-line JSON object: name, id, parent (null at top level), start_ms,
    dur_ms and an attrs object. *)

val write_jsonl : string -> (unit, string) result
(** Write every finished span, one JSON object per line, to a file.
    [Error msg] if the file cannot be written. *)

val render_tree : unit -> string
(** Indented tree of the recorded spans with durations and attributes. *)

val render_metrics : snapshot -> string
(** Fixed-width table of every registered counter (zeroes included, so
    absence-of-events is visible) and every non-empty histogram. *)
