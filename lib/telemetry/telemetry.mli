(** Telemetry for the synthesis pipeline and serving layer: request
    trace contexts, nestable timed spans, counters, histograms with
    streaming quantile sketches, sliding-window rates, an always-on
    flight recorder, and JSONL/Prometheus export.

    The metrics subsystem is a process-wide recorder that is {e
    disabled} by default: every instrumentation call ([with_span],
    [incr], [observe], [mark]) first checks a single boolean, so
    instrumented code pays effectively nothing until {!enable} is
    called.  The CLI turns it on for [--stats]/[--trace], the bench
    harness for its [pipeline] target, and tests enable it around
    individual assertions.  The {!Flight} recorder is independent of
    that flag: it is always on (a bounded ring of recent events) unless
    explicitly disabled.

    Timing uses the OS monotonic clock (CLOCK_MONOTONIC via bechamel's
    stubs), so span durations are immune to wall-clock adjustments.

    The recorder is a single global and is safe to probe from any
    domain: counters are atomics, histograms accumulate into per-domain
    shards merged at {!snapshot}, and spans nest along each domain's own
    dynamic call stack (finished spans are appended to one shared list).
    {!enable}, {!disable} and {!reset} may be called at any time, even
    with spans in flight on other domains: lifecycle operations
    atomically bump a generation counter, and observations started
    under an older generation are dropped rather than misattributed to
    the new run. *)

val now_ns : unit -> int64
(** Raw CLOCK_MONOTONIC reading in nanoseconds — the clock every span
    duration is measured on.  Exposed so deadline machinery (the
    interpreter's wall-clock budget, {!Exec.Deadline}) compares against
    the same time base the telemetry records. *)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn telemetry on and start a fresh run: clears recorded spans and
    flight events and zeroes every registered metric. *)

val disable : unit -> unit
(** Turn telemetry off.  Recorded data is kept so it can still be
    snapshotted or exported after the measured region. *)

val reset : unit -> unit
(** Clear recorded spans and zero all metrics without changing the
    enabled flag.  Safe concurrently with in-flight observations: the
    generation counter is bumped atomically and stale-generation spans
    are dropped when they finish. *)

(* ------------------------------------------------------------------ *)
(* Trace contexts                                                      *)
(* ------------------------------------------------------------------ *)

module Context : sig
  (** A request-scoped identity carried in domain-local storage.  Every
      span, flight event, and counter/exemplar attribution recorded
      while a context is installed carries its trace id, so serving
      telemetry is attributable to the individual request that caused
      it.  Parallel regions capture the caller's context and reinstall
      it in worker domains ({!Exec.parallel_map}). *)

  type t = {
    trace_id : int64;  (** splitmix64-derived, never 0 for a real context *)
    request_id : int;
  }

  val root : ?request_id:int -> unit -> t
  (** Mint a fresh context with a new non-zero trace id.  [request_id]
      defaults to a process-wide sequence. *)

  val current : unit -> t option
  (** The context installed on the calling domain, if any. *)

  val trace_id : unit -> int64
  (** Trace id of the current context, or [0L] outside any context. *)

  val with_context : t -> (unit -> 'a) -> 'a
  (** Install a context for the dynamic extent of the thunk (saved and
      restored, exception-safe). *)

  val with_current : t option -> (unit -> 'a) -> 'a
  (** [with_current (Some ctx) f] is [with_context ctx f];
      [with_current None f] is [f ()].  The shape used to propagate a
      captured context into worker domains. *)

  val id_to_hex : int64 -> string
  (** 16-digit lowercase hex, e.g. ["00c3f2a9b1d40e77"]. *)

  val id_of_hex : string -> int64 option
  (** Strict inverse of {!id_to_hex}: exactly 16 hex digits, and never
      the all-zero id (which means "no context").  Used to adopt trace
      ids that arrive over the serving wire protocol. *)

  val trace_id_hex : t -> string
end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Flight : sig
  (** A fixed-size, lock-striped ring buffer of recent structured
      events: span ends, deadline hits, column degradations, retry
      attempts, fault injections.  Independent of the metrics [on]
      flag — always recording (bounded memory, ~zero cost) unless
      {!set_enabled}[ false].  Dumped as JSONL on demand or via
      {!trigger} when something goes wrong. *)

  type event = {
    f_ns : int64;  (** absolute monotonic time *)
    f_trace_id : int64;  (** 0 when recorded outside any context *)
    f_request_id : int;
    f_kind : string;  (** "span", "deadline", "degraded", "retry", … *)
    f_label : string;
    f_value : float;
  }

  val capacity : int
  (** Total ring capacity across stripes; older events are overwritten. *)

  val enabled : unit -> bool
  val set_enabled : bool -> unit

  val record : ?value:float -> kind:string -> string -> unit
  (** Record one event on the calling domain's stripe.  Picks up the
      current {!Context} automatically. *)

  val events : unit -> event list
  (** Current ring contents in time order. *)

  val overwritten : unit -> int
  (** Events lost to ring wrap-around since the last {!clear}. *)

  val clear : unit -> unit

  val event_to_json : event -> string
  (** One-line JSON object with sorted keys: kind, label, request_id,
      t_ms, trace_id (hex), value. *)

  val dump : string -> (int, string) result
  (** Write the ring contents as JSONL; returns the number of events
      written. *)

  val set_dump_path : string option -> unit
  (** Where {!trigger} dumps.  Defaults to [AUTOTYPE_FLIGHT_DUMP] from
      the environment; [None] makes triggers no-ops. *)

  val dump_path : unit -> string option

  val trigger : reason:string -> unit
  (** Record a ["dump"] event and dump the ring to the configured path
      (no-op when no path is configured; dump failures are reported on
      stderr, never raised). *)
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type attr_value =
  | S of string
  | I of int
  | F of float
  | B of bool

type attr = string * attr_value

type span = {
  sp_id : int;
  sp_parent : int option;  (** id of the enclosing span, if any *)
  sp_name : string;
  sp_trace_id : int64;  (** 0 when recorded outside any context *)
  sp_start_ns : int64;  (** monotonic ns since {!enable} *)
  sp_dur_ns : int64;
  sp_attrs : attr list;  (** in insertion order *)
}

val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  The span is recorded when the
    thunk returns or raises; when telemetry is disabled this is just a
    call to the thunk.  The span carries the current context's trace id
    and emits a ["span"] flight event on completion. *)

val add_attr : string -> attr_value -> unit
(** Attach an attribute to the innermost open span (no-op when disabled
    or outside any span). *)

val spans : unit -> span list
(** Finished spans in start order. *)

val spans_named : string -> span list

val total_ns : string -> int64
(** Sum of durations of all finished spans with the given name. *)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type counter
type histogram
type rate

val counter : string -> counter
(** Find or register a counter.  Handles are typically created once at
    module initialisation and survive {!reset} (which only zeroes the
    value). *)

val histogram : string -> histogram

val rate : string -> rate
(** Find or register a sliding-window rate (60 one-second slots). *)

val incr : ?by:int -> counter -> unit
val observe : histogram -> float -> unit

val mark : ?by:int -> rate -> unit
(** Record [by] occurrences at the current time; the window forgets
    them once they age out. *)

type hist_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
  h_p50 : float;
      (** Streaming-quantile estimates from a mergeable log-bucketed
          sketch (relative error ≤ ~3.9%); exact min/max kept
          separately. *)
  h_p95 : float;
  h_p99 : float;
}

type rate_snapshot = {
  rt_count : int;  (** marks inside the sliding window *)
  rt_per_s : float;
  rt_window_s : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
  rates : (string * rate_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
val find_counter : snapshot -> string -> int
(** Value of a counter in a snapshot; 0 when absent. *)

(* ------------------------------------------------------------------ *)
(* Rendering and export                                                *)
(* ------------------------------------------------------------------ *)

val format_ns : int64 -> string
(** Human duration: "412ns", "3.2us", "15.4ms", "2.31s". *)

val span_to_json : span -> string
(** One-line JSON object: name, id, parent (null at top level),
    trace_id (hex), start_ms, dur_ms and an attrs object. *)

val write_jsonl : string -> (unit, string) result
(** Write every finished span, one JSON object per line, to a file.
    [Error msg] if the file cannot be written. *)

val render_tree : unit -> string
(** Indented tree of the recorded spans with durations and attributes. *)

val render_metrics : snapshot -> string
(** Fixed-width table of every registered counter (zeroes included, so
    absence-of-events is visible), every non-empty histogram with
    sketch quantiles, and every non-empty rate. *)

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)
(* ------------------------------------------------------------------ *)

module Expose : sig
  val render_prometheus : snapshot -> string
  (** Prometheus text exposition: counters as [autotype_<name>_total],
      histograms as summaries with quantile labels plus [_sum]/[_count],
      rates as [_per_second] gauges.  Families sorted by name, each with
      HELP and TYPE lines. *)

  val render_json : snapshot -> string
  (** Deterministic JSON (sorted keys, fixed float formatting) — also
      the snapshot-file format read back by [autotype stats]. *)

  val lint : string -> (int, string list) result
  (** Check a text exposition for scraper-visible defects: malformed
      metric names, duplicate or missing HELP/TYPE, non-contiguous
      family samples, unparsable values.  [Ok n] gives the number of
      well-formed families. *)
end

(* ------------------------------------------------------------------ *)
(* SLO                                                                 *)
(* ------------------------------------------------------------------ *)

module Slo : sig
  type target = { slo_p99_ms : float; slo_error_rate : float }

  val default_target : target
  (** p99 ≤ 1ms, error rate ≤ 1% — the warm serving objective. *)

  type report = {
    rep_total : int;
    rep_p99_ms : float;
    rep_target_p99_ms : float;
    rep_p99_ok : bool;
    rep_error_rate : float;
    rep_target_error_rate : float;
    rep_error_budget_burn : float;
        (** observed error rate / target error rate; 1.0 = burning the
            budget exactly, > 1 = out of budget *)
    rep_deadline_hit_rate : float;
  }

  val eval :
    target -> p99_ms:float -> errors:int -> deadline_hits:int -> total:int ->
    report

  val report_to_json : report -> string
  (** One-line JSON object with sorted keys and fixed float formatting
      (deterministic for BENCH files). *)
end
