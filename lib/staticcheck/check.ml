(** Orchestrator: run every pass over a repository's parsed programs
    and return diagnostics in stable (file, line, code) order.

    [E100] is reserved for files that fail to parse — emitted by
    callers (lint CLI, analyzer) that do their own lenient parsing,
    since this module only sees successfully parsed programs. *)

open Minilang.Ast

let parse_error_diag ~file ~line msg =
  Diag.error { file; line } "E100" ("parse error: " ^ msg)

(* W405: a function whose arguments provably never reach a branch
   condition, return value, or raise — it cannot distinguish inputs, so
   it can never rank (input-flow pass, Chan_none entry). *)
let input_unused env taint (prog : program) : Diag.t list =
  ignore env;
  List.filter_map
    (fun s ->
      match s with
      | Func_def f
        when f.params <> []
             && not (Taint.func_rankable taint ~tainted_args:true f.fname) ->
        Some
          (Diag.warning f.fpos "W405"
             (Printf.sprintf
                "%s(): arguments never reach a branch, return value, or \
                 raise — the function cannot distinguish inputs"
                f.fname))
      | _ -> None)
    prog.prog_body

(** All five passes over one repository's files.  The environment is
    repo-wide (Driver loads every file into one scope), so undefined
    names are judged against the union of the files' definitions. *)
let check_programs (progs : program list) : Diag.t list =
  let env = Env.build progs in
  let taint = Taint.analyze ~channel:Taint.Chan_none env progs in
  let diags =
    List.concat_map
      (fun p ->
        Names.check env p @ Sigs.check env p @ Flow.check p @ Loops.check p
        @ input_unused env taint p)
      progs
  in
  List.sort Diag.compare diags

let errors diags = List.filter Diag.is_error diags
let warnings diags = List.filter (fun d -> not (Diag.is_error d)) diags
