(** Pass 1 — name resolution.

    - [E101] a name no scope can resolve (guaranteed [NameError] when
      the statement executes);
    - [E102] a local variable read before any path assigns it and with
      no module-level fallback (the interpreter falls through to module
      scope until the first local assignment, so a module-resolvable
      name is never flagged);
    - [W101]/[W102] the same findings inside a [try] whose handlers
      catch [NameError] — reachable but deliberately guarded;
    - [W201] a local binding that shadows a builtin.

    Uses may-assigned sets (union over paths), so a name counts as
    assigned if *any* path binds it: the pass only reports definite
    errors and cannot false-positive on branchy code.  Nested functions
    are checked against module scope only, matching [call_closure]
    chaining closures to [module_scope]. *)

open Minilang.Ast
module StrSet = Env.StrSet

type fctx = {
  env : Env.t;
  locals : StrSet.t;  (** every name the current function can bind *)
  globals : StrSet.t;  (** names declared [global] in the current function *)
  diags : Diag.t list ref;
  top_level : bool;
      (** top-level script code: binds module vars, lenient about order
          because files execute in sequence *)
}

(* Does some handler of this try catch a NameError? *)
let catches_name_error handlers =
  List.exists
    (fun h ->
      match h.h_filter with
      | None -> true
      | Some f ->
        f = "NameError" || f = "Exception" || not (Env.is_ambient f))
    handlers

let add fc d = fc.diags := d :: !(fc.diags)

let check_use fc ~guarded ~maybe name pos =
  if StrSet.mem name maybe then ()
  else if fc.top_level then begin
    (* Top-level code may read names defined by earlier files; only
       names no file defines anywhere are definite errors. *)
    if not (Env.resolvable fc.env name) then
      add fc
        (Diag.make
           (if guarded then Diag.Warning else Diag.Error)
           pos
           (if guarded then "W101" else "E101")
           (Printf.sprintf "name '%s' is not defined" name))
  end
  else if StrSet.mem name fc.globals then begin
    if not (Env.resolvable fc.env name) then
      add fc
        (Diag.make
           (if guarded then Diag.Warning else Diag.Error)
           pos
           (if guarded then "W101" else "E101")
           (Printf.sprintf "global name '%s' is never defined" name))
  end
  else if StrSet.mem name fc.locals then begin
    if not (Env.resolvable fc.env name) then
      add fc
        (Diag.make
           (if guarded then Diag.Warning else Diag.Error)
           pos
           (if guarded then "W102" else "E102")
           (Printf.sprintf "local variable '%s' read before assignment" name))
  end
  else if not (Env.resolvable fc.env name) then
    add fc
      (Diag.make
         (if guarded then Diag.Warning else Diag.Error)
         pos
         (if guarded then "W101" else "E101")
         (Printf.sprintf "name '%s' is not defined" name))

(* Walk an expression, checking every Var read against the current
   may-assigned set.  [pos] anchors diagnostics for position-less
   sub-expressions. *)
let rec check_expr fc ~guarded ~maybe pos (e : expr) =
  match e with
  | Var n -> check_use fc ~guarded ~maybe n pos
  | Binop (_, a, b, p) ->
    check_expr fc ~guarded ~maybe p a;
    check_expr fc ~guarded ~maybe p b
  | Call (g, args, p) ->
    check_expr fc ~guarded ~maybe p g;
    List.iter (check_expr fc ~guarded ~maybe p) args
  | Method (o, _, args, p) ->
    check_expr fc ~guarded ~maybe p o;
    List.iter (check_expr fc ~guarded ~maybe p) args
  | Index (a, b, p) ->
    check_expr fc ~guarded ~maybe p a;
    check_expr fc ~guarded ~maybe p b
  | Slice (a, lo, hi, p) ->
    check_expr fc ~guarded ~maybe p a;
    Option.iter (check_expr fc ~guarded ~maybe p) lo;
    Option.iter (check_expr fc ~guarded ~maybe p) hi
  | Cond (c, a, b, p) ->
    check_expr fc ~guarded ~maybe p c;
    check_expr fc ~guarded ~maybe p a;
    check_expr fc ~guarded ~maybe p b
  | Unop (_, a) -> check_expr fc ~guarded ~maybe pos a
  | Attr (o, _) -> check_expr fc ~guarded ~maybe pos o
  | List_lit es | Tuple_lit es ->
    List.iter (check_expr fc ~guarded ~maybe pos) es
  | Dict_lit kvs ->
    List.iter
      (fun (k, v) ->
        check_expr fc ~guarded ~maybe pos k;
        check_expr fc ~guarded ~maybe pos v)
      kvs
  | Int _ | Float _ | Str _ | Bool _ | None_lit -> ()

(* Reads performed while *storing into* a target (xs[i] = …, o.f = …). *)
let rec check_target_reads fc ~guarded ~maybe pos (t : target) =
  match t with
  | Tvar _ -> ()
  | Tindex (a, b) ->
    check_expr fc ~guarded ~maybe pos a;
    check_expr fc ~guarded ~maybe pos b
  | Tattr (a, _) -> check_expr fc ~guarded ~maybe pos a
  | Ttuple ts -> List.iter (check_target_reads fc ~guarded ~maybe pos) ts

let bind_target maybe (t : target) = StrSet.union maybe (Env.target_names t)

let shadow_check fc name pos =
  if List.mem name Minilang.Interp.builtin_names then
    add fc
      (Diag.warning pos "W201"
         (Printf.sprintf "binding '%s' shadows a builtin" name))

(* Returns the may-assigned set after the block. *)
let rec walk_block fc ~guarded maybe stmts =
  List.fold_left (walk_stmt fc ~guarded) maybe stmts

and walk_stmt fc ~guarded maybe (s : stmt) : StrSet.t =
  match s with
  | Expr_stmt (e, p) ->
    check_expr fc ~guarded ~maybe p e;
    maybe
  | Assign (t, e, p) ->
    check_expr fc ~guarded ~maybe p e;
    check_target_reads fc ~guarded ~maybe p t;
    StrSet.iter (fun n -> shadow_check fc n p) (Env.target_names t);
    bind_target maybe t
  | Aug_assign (t, _, e, p) ->
    (* x += e reads x first *)
    (match t with
     | Tvar n -> check_use fc ~guarded ~maybe n p
     | _ -> check_target_reads fc ~guarded ~maybe p t);
    check_expr fc ~guarded ~maybe p e;
    bind_target maybe t
  | If (arms, els) ->
    List.iter (fun (c, p, _) -> check_expr fc ~guarded ~maybe p c) arms;
    let outs = List.map (fun (_, _, b) -> walk_block fc ~guarded maybe b) arms in
    let els_out =
      match els with Some b -> walk_block fc ~guarded maybe b | None -> maybe
    in
    List.fold_left StrSet.union els_out outs
  | While (c, p, b) ->
    check_expr fc ~guarded ~maybe p c;
    walk_block fc ~guarded maybe b
  | For (t, e, b, p) ->
    check_expr fc ~guarded ~maybe p e;
    check_target_reads fc ~guarded ~maybe p t;
    let maybe' = bind_target maybe t in
    walk_block fc ~guarded maybe' b
  | Return (e_opt, p) ->
    Option.iter (check_expr fc ~guarded ~maybe p) e_opt;
    maybe
  | Raise (e_opt, p) ->
    Option.iter (check_expr fc ~guarded ~maybe p) e_opt;
    maybe
  | Try (b, handlers, fin) ->
    let body_guarded = guarded || catches_name_error handlers in
    let out_b = walk_block fc ~guarded:body_guarded maybe b in
    let outs_h =
      List.map
        (fun h ->
          (* A handler can run after any prefix of the body, so the
             body's may-assigns are available (may-analysis). *)
          let entry =
            match h.h_bind with
            | Some b -> StrSet.add b out_b
            | None ->
              (match h.h_filter with
               | Some f when not (Env.is_ambient f) -> StrSet.add f out_b
               | _ -> out_b)
          in
          walk_block fc ~guarded entry h.h_body)
        handlers
    in
    let merged = List.fold_left StrSet.union out_b outs_h in
    (match fin with Some b -> walk_block fc ~guarded merged b | None -> merged)
  | Break _ | Continue _ | Pass | Global _ -> maybe
  | Func_def f ->
    check_func fc.env fc.diags f;
    StrSet.add f.fname maybe
  | Class_def c ->
    List.iter (check_func fc.env fc.diags) c.methods;
    (* class_body statements never execute (Class_def only registers
       methods), so their names are not checked. *)
    StrSet.add c.cname maybe

and check_func env diags (f : func) =
  let fc =
    {
      env;
      locals = Env.locals_of_func f;
      globals = Env.global_names f.body;
      diags;
      top_level = false;
    }
  in
  List.iter (fun p -> shadow_check fc p f.fpos) f.params;
  List.iter
    (fun (_, e) -> check_expr fc ~guarded:false ~maybe:StrSet.empty f.fpos e)
    f.defaults;
  ignore (walk_block fc ~guarded:false (StrSet.of_list f.params) f.body)

let check (env : Env.t) (prog : program) : Diag.t list =
  let diags = ref [] in
  let fc =
    {
      env;
      locals = StrSet.empty;
      globals = StrSet.empty;
      diags;
      top_level = true;
    }
  in
  (* Top-level statements run in module scope where every file's
     definitions are (eventually) visible; Func_def/Class_def recurse
     into function-scope checks. *)
  ignore (walk_block fc ~guarded:false StrSet.empty prog.prog_body);
  List.rev !diags
