(** Repository-level environment and shared AST helpers for the
    staticcheck passes.

    Mirrors the interpreter's name-resolution order (locals → module
    scope → builtins → [re]/[sys]/[argv] → exception kinds): the module
    environment is the union over every file of a repository because
    [Driver] loads all files into one scope before invoking a candidate. *)

open Minilang.Ast
module StrSet = Set.Make (String)

type t = {
  funcs : (string, func) Hashtbl.t;  (** top-level function defs *)
  classes : (string, cls) Hashtbl.t;
  module_vars : StrSet.t;
      (** names assigned at top level of any file, plus names declared
          [global] inside any function (the interpreter hoists those
          writes to module scope) *)
}

(* Names the interpreter resolves without any definition in scope. *)
let ambient_names =
  StrSet.union
    (StrSet.of_list Minilang.Interp.builtin_names)
    (StrSet.add "re"
       (StrSet.add "sys"
          (StrSet.add "argv"
             (StrSet.of_list Minilang.Interp.known_exception_kinds))))

let is_ambient n = StrSet.mem n ambient_names

(* Every variable name a target can bind. *)
let rec target_names = function
  | Tvar n -> StrSet.singleton n
  | Tindex _ | Tattr _ -> StrSet.empty
  | Ttuple ts ->
    List.fold_left (fun acc t -> StrSet.union acc (target_names t)) StrSet.empty ts

(* Names assigned anywhere in a block, including inside nested control
   flow, but NOT descending into nested function/class bodies (those
   have their own scopes).  Nested def/class names themselves bind. *)
let assigned_names (body : block) : StrSet.t =
  let rec go acc stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | Assign (t, _, _) | Aug_assign (t, _, _, _) ->
          StrSet.union acc (target_names t)
        | For (t, _, b, _) -> go (StrSet.union acc (target_names t)) b
        | If (arms, els) ->
          let acc = List.fold_left (fun acc (_, _, b) -> go acc b) acc arms in
          (match els with Some b -> go acc b | None -> acc)
        | While (_, _, b) -> go acc b
        | Try (b, handlers, fin) ->
          let acc = go acc b in
          let acc =
            List.fold_left
              (fun acc h ->
                let acc =
                  match h.h_bind with
                  | Some b -> StrSet.add b acc
                  | None ->
                    (match h.h_filter with
                     | Some f when not (is_ambient f) -> StrSet.add f acc
                     | _ -> acc)
                in
                go acc h.h_body)
              acc handlers
          in
          (match fin with Some b -> go acc b | None -> acc)
        | Func_def f -> StrSet.add f.fname acc
        | Class_def c -> StrSet.add c.cname acc
        | Expr_stmt _ | Return _ | Raise _ | Break _ | Continue _ | Pass
        | Global _ -> acc)
      acc stmts
  in
  go StrSet.empty body

(* Names declared [global] in a block (not descending into nested defs:
   a nested function's global declarations are its own). *)
let global_names (body : block) : StrSet.t =
  let rec go acc stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | Global names -> List.fold_right StrSet.add names acc
        | If (arms, els) ->
          let acc = List.fold_left (fun acc (_, _, b) -> go acc b) acc arms in
          (match els with Some b -> go acc b | None -> acc)
        | While (_, _, b) | For (_, _, b, _) -> go acc b
        | Try (b, handlers, fin) ->
          let acc = go acc b in
          let acc =
            List.fold_left (fun acc h -> go acc h.h_body) acc handlers
          in
          (match fin with Some b -> go acc b | None -> acc)
        | _ -> acc)
      acc stmts
  in
  go StrSet.empty body

(* The function's local names: parameters plus everything its body can
   bind, minus names it declares global. *)
let locals_of_func (f : func) : StrSet.t =
  StrSet.diff
    (StrSet.union (StrSet.of_list f.params) (assigned_names f.body))
    (global_names f.body)

let build (progs : program list) : t =
  let funcs = Hashtbl.create 16 in
  let classes = Hashtbl.create 8 in
  let module_vars = ref StrSet.empty in
  List.iter
    (fun (p : program) ->
      (* Top-level bindings of the file, wherever they appear in
         top-level control flow. *)
      module_vars := StrSet.union !module_vars (assigned_names p.prog_body);
      List.iter
        (fun s ->
          match s with
          | Func_def f -> Hashtbl.replace funcs f.fname f
          | Class_def c -> Hashtbl.replace classes c.cname c
          | _ -> ())
        p.prog_body;
      (* [global x] inside any function makes x writable/readable at
         module scope once that function runs; treat it as a module var
         for lenient resolution. *)
      ignore
        (fold_stmts
           (fun () s ->
             match s with
             | Func_def f ->
               module_vars := StrSet.union !module_vars (global_names f.body)
             | Class_def c ->
               List.iter
                 (fun m ->
                   module_vars :=
                     StrSet.union !module_vars (global_names m.body))
                 c.methods
             | _ -> ())
           () p.prog_body))
    progs;
  { funcs; classes; module_vars = !module_vars }

(* Would [lookup_var] resolve this name with no locals bound? *)
let resolvable env name =
  Hashtbl.mem env.funcs name
  || Hashtbl.mem env.classes name
  || StrSet.mem name env.module_vars
  || is_ambient name

(* Iterate over the direct sub-expressions of an expression. *)
let iter_subexprs f (e : expr) =
  match e with
  | Int _ | Float _ | Str _ | Bool _ | None_lit | Var _ -> ()
  | Binop (_, a, b, _) -> f a; f b
  | Unop (_, a) -> f a
  | Call (g, args, _) -> f g; List.iter f args
  | Method (o, _, args, _) -> f o; List.iter f args
  | Attr (o, _) -> f o
  | Index (a, b, _) -> f a; f b
  | Slice (a, lo, hi, _) -> f a; Option.iter f lo; Option.iter f hi
  | List_lit es | Tuple_lit es -> List.iter f es
  | Dict_lit kvs -> List.iter (fun (k, v) -> f k; f v) kvs
  | Cond (c, a, b, _) -> f c; f a; f b

(* Depth-first visit of an expression tree, parents before children. *)
let rec iter_expr f e =
  f e;
  iter_subexprs (iter_expr f) e

(* All expressions appearing directly in a statement (not in nested
   statements). *)
let stmt_exprs (s : stmt) : expr list =
  match s with
  | Expr_stmt (e, _) -> [ e ]
  | Assign (t, e, _) ->
    let rec texprs = function
      | Tvar _ -> []
      | Tindex (a, b) -> [ a; b ]
      | Tattr (a, _) -> [ a ]
      | Ttuple ts -> List.concat_map texprs ts
    in
    e :: texprs t
  | Aug_assign (t, _, e, _) ->
    let base = match t with Tindex (a, b) -> [ a; b ] | Tattr (a, _) -> [ a ] | _ -> [] in
    e :: base
  | If (arms, _) -> List.map (fun (c, _, _) -> c) arms
  | While (c, _, _) -> [ c ]
  | For (_, e, _, _) -> [ e ]
  | Return (Some e, _) | Raise (Some e, _) -> [ e ]
  | Return (None, _) | Raise (None, _) -> []
  | Try _ | Break _ | Continue _ | Pass | Func_def _ | Class_def _ | Global _ ->
    []

(* First source position found in a statement, used to anchor
   "unreachable code" diagnostics. *)
let rec stmt_pos (s : stmt) : pos option =
  match s with
  | Expr_stmt (_, p) | Assign (_, _, p) | Aug_assign (_, _, _, p)
  | While (_, p, _) | For (_, _, _, p) | Return (_, p) | Raise (_, p)
  | Break p | Continue p -> Some p
  | If ((_, p, _) :: _, _) -> Some p
  | If ([], els) -> (match els with Some b -> block_pos b | None -> None)
  | Try (b, handlers, fin) ->
    (match block_pos b with
     | Some p -> Some p
     | None ->
       (match List.find_map (fun h -> block_pos h.h_body) handlers with
        | Some p -> Some p
        | None -> (match fin with Some b -> block_pos b | None -> None)))
  | Func_def f -> Some f.fpos
  | Class_def c -> Some c.cpos
  | Pass | Global _ -> None

and block_pos (b : block) : pos option = List.find_map stmt_pos b
