(** Pass 4 — reachability after constant-condition folding.

    - [W401] a branch or loop whose condition folds to a constant, so
      one side can never execute;
    - [W402] statements following an unconditional return/raise/break/
      continue in the same block;
    - [W403] a function body that is nothing but [return <literal>] —
      it traces identically on every input, so it can never separate
      positives from negatives.

    All warnings: dead code is suspicious, not a runtime error. *)

open Minilang.Ast

(* Fold an expression to a constant truth value where the interpreter
   guarantees one.  Comparisons fold only between same-kind literals
   (mixed-kind Lt/Le/Gt/Ge raise TypeError instead of answering). *)
let rec const_truth (e : expr) : bool option =
  match e with
  | Bool b -> Some b
  | Int i -> Some (i <> 0)
  | Float f -> Some (f <> 0.0)
  | Str s -> Some (s <> "")
  | None_lit -> Some false
  | List_lit es | Tuple_lit es -> Some (es <> [])
  | Dict_lit kvs -> Some (kvs <> [])
  | Unop (Not, a) -> Option.map not (const_truth a)
  | Binop (And, a, b, _) -> (
    match const_truth a with
    | Some false -> Some false
    | Some true -> const_truth b
    | None -> None)
  | Binop (Or, a, b, _) -> (
    match const_truth a with
    | Some true -> Some true
    | Some false -> const_truth b
    | None -> None)
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge) as op, a, b, _) -> (
    let cmp : int option =
      match (a, b) with
      | Int x, Int y -> Some (compare x y)
      | Float x, Float y -> Some (compare x y)
      | Str x, Str y -> Some (compare x y)
      | Bool x, Bool y -> Some (compare x y)
      | _ -> None
    in
    match cmp with
    | None -> None
    | Some c ->
      Some
        (match op with
         | Eq -> c = 0 | Neq -> c <> 0 | Lt -> c < 0 | Le -> c <= 0
         | Gt -> c > 0 | Ge -> c >= 0
         | _ -> assert false))
  | _ -> None

let is_terminator = function
  | Return _ | Raise _ | Break _ | Continue _ -> true
  | _ -> false

let is_literal = function
  | Int _ | Float _ | Str _ | Bool _ | None_lit -> true
  | _ -> false

let check (prog : program) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let rec walk_block (stmts : block) =
    (* Unreachable statements after an unconditional jump. *)
    let rec after_terminator = function
      | s :: rest when is_terminator s -> (
        match Env.block_pos rest with
        | Some p ->
          add (Diag.warning p "W402" "unreachable code after unconditional jump")
        | None -> ())
      | _ :: rest -> after_terminator rest
      | [] -> ()
    in
    after_terminator stmts;
    List.iter walk_stmt stmts
  and walk_stmt (s : stmt) =
    match s with
    | If (arms, els) ->
      let rec scan_arms taken = function
        | (cond, pos, body) :: rest ->
          (if taken then
             add
               (Diag.warning pos "W401"
                  "branch is unreachable: an earlier condition is always true")
           else
             match const_truth cond with
             | Some false ->
               add
                 (Diag.warning pos "W401"
                    "condition is always false: branch never taken")
             | _ -> ());
          walk_block body;
          let taken =
            taken || (match const_truth cond with Some true -> true | _ -> false)
          in
          scan_arms taken rest
        | [] -> ()
      in
      scan_arms false arms;
      Option.iter walk_block els
    | While (cond, pos, body) ->
      (match const_truth cond with
       | Some false ->
         add
           (Diag.warning pos "W401"
              "condition is always false: loop body never executes")
       | _ -> ());
      walk_block body
    | For (_, _, body, _) -> walk_block body
    | Try (b, handlers, fin) ->
      walk_block b;
      List.iter (fun h -> walk_block h.h_body) handlers;
      Option.iter walk_block fin
    | Func_def f -> walk_func f
    | Class_def c -> List.iter walk_func c.methods
    | Expr_stmt _ | Assign _ | Aug_assign _ | Return _ | Raise _ | Break _
    | Continue _ | Pass | Global _ -> ()
  and walk_func (f : func) =
    (match f.body with
     | [ Return (Some e, pos) ] when is_literal e ->
       add
         (Diag.warning pos "W403"
            (Printf.sprintf "%s() always returns the same constant" f.fname))
     | [ Return (None, pos) ] | [ Pass; Return (None, pos) ] ->
       add
         (Diag.warning pos "W403"
            (Printf.sprintf "%s() always returns None" f.fname))
     | _ -> ());
    walk_block f.body
  in
  walk_block prog.prog_body;
  List.rev !diags
