(** Pass 5 — loop analysis.

    [W404] flags a [while] loop none of whose condition variables is
    ever mutated in the body, with no [break]/[return]/[raise] and no
    calls that could raise or diverge themselves: once entered with a
    truthy condition the loop can only end by exhausting the sandbox's
    step budget.

    [budget_hint] additionally proves, for a candidate entry function,
    that *every* invocation runs into such a loop and that the loop
    emits no trace events — then tracing with a small step budget
    produces exactly the same feature set as the default 200k-step
    budget, just ~10× sooner.  The proof obligations are deliberately
    narrow (see DESIGN.md §8): a straight-line call-free prefix, a
    literal always-true condition, and an event-free raise-free body. *)

open Minilang.Ast
module StrSet = Env.StrSet

(* The reduced step budget for a guaranteed spin: enough to run any
   bounded prefix (corpus functions are a few dozen statements) while
   skipping ~90% of the default 200k-step sandbox burn. *)
let spin_budget = 20_000

(* --- W404 ------------------------------------------------------------ *)

let rec cond_pure (e : expr) =
  match e with
  | Var _ | Int _ | Float _ | Str _ | Bool _ | None_lit -> true
  | Binop (_, a, b, _) -> cond_pure a && cond_pure b
  | Unop (_, a) -> cond_pure a
  | _ -> false

let rec cond_vars (e : expr) =
  match e with
  | Var n -> StrSet.singleton n
  | Binop (_, a, b, _) -> StrSet.union (cond_vars a) (cond_vars b)
  | Unop (_, a) -> cond_vars a
  | _ -> StrSet.empty

(* Scan a loop body (without descending into nested defs) for anything
   that could exit the loop or mutate state beyond simple assignment:
   break/return/raise leave it, calls can raise or never return, and
   try blocks route control unpredictably. *)
let body_may_escape (body : block) =
  let escape = ref false in
  let check_expr e =
    Env.iter_expr
      (fun e ->
        match e with Call _ | Method _ -> escape := true | _ -> ())
      e
  in
  let rec go stmts =
    List.iter
      (fun s ->
        List.iter check_expr (Env.stmt_exprs s);
        match s with
        | Break _ | Return _ | Raise _ | Try _ | Func_def _ | Class_def _ ->
          escape := true
        | If (arms, els) ->
          List.iter (fun (_, _, b) -> go b) arms;
          Option.iter go els
        | While (_, _, b) | For (_, _, b, _) -> go b
        | Expr_stmt _ | Assign _ | Aug_assign _ | Continue _ | Pass
        | Global _ -> ())
      stmts
  in
  go body;
  !escape

let is_infinite_while cond body =
  cond_pure cond
  && Flow.const_truth cond <> Some false
  && (not (body_may_escape body))
  && StrSet.is_empty (StrSet.inter (cond_vars cond) (Env.assigned_names body))
  (* [global] in the body could alias a condition variable through
     module scope; bail out. *)
  && StrSet.is_empty (Env.global_names body)

let check (prog : program) : Diag.t list =
  let diags = ref [] in
  let rec walk stmts =
    List.iter
      (fun s ->
        match s with
        | While (cond, pos, body) ->
          if is_infinite_while cond body then
            diags :=
              Diag.warning pos "W404"
                "loop condition is never mutated in the body: the loop \
                 cannot terminate normally"
              :: !diags;
          walk body
        | If (arms, els) ->
          List.iter (fun (_, _, b) -> walk b) arms;
          Option.iter walk els
        | For (_, _, b, _) -> walk b
        | Try (b, handlers, fin) ->
          walk b;
          List.iter (fun h -> walk h.h_body) handlers;
          Option.iter walk fin
        | Func_def f -> walk f.body
        | Class_def c -> List.iter (fun m -> walk m.body) c.methods
        | Expr_stmt _ | Assign _ | Aug_assign _ | Return _ | Raise _
        | Break _ | Continue _ | Pass | Global _ -> ())
      stmts
  in
  walk prog.prog_body;
  List.rev !diags

(* --- Budget hints ---------------------------------------------------- *)

(* Expressions whose evaluation can neither raise, call, nor emit a
   trace event: variable reads and scalar literals. *)
let expr_inert = function
  | Var _ | Int _ | Float _ | Str _ | Bool _ | None_lit -> true
  | _ -> false

(* Bounded, call-free, straight-line statement: executes a fixed number
   of steps and cannot skip the statements after it. *)
let stmt_straight (s : stmt) =
  let no_calls e =
    let ok = ref true in
    Env.iter_expr
      (fun e -> match e with Call _ | Method _ -> ok := false | _ -> ())
      e;
    !ok
  in
  match s with
  | Assign _ | Aug_assign _ | Expr_stmt _ ->
    List.for_all no_calls (Env.stmt_exprs s)
  | Pass | Global _ -> true
  | _ -> false

(* An event-free, raise-free spin body: only Pass/Global and
   assignments of inert expressions to plain variables. *)
let spin_body_ok (body : block) =
  List.for_all
    (fun s ->
      match s with
      | Pass | Global _ -> true
      | Assign (Tvar _, e, _) | Expr_stmt (e, _) -> expr_inert e
      | _ -> false)
    body

(* A literal condition that is always truthy and cannot raise. *)
let rec cond_const_true (e : expr) =
  match e with
  | Int _ | Float _ | Str _ | Bool _ -> Flow.const_truth e = Some true
  | Unop (Not, a) -> cond_pure a && Flow.const_truth e = Some true
  | Binop ((And | Or), a, b, _) ->
    cond_const_true a && cond_const_true b
  | _ -> false

(** [Some spin_budget] when every call of [f] provably reaches an
    event-free infinite loop: a straight-line call-free prefix followed
    by [while <literal-true>:] over a raise-free, event-free body.
    Every run then hits the step limit with a feature set independent
    of the budget (the repeated branch event at the loop head dedupes
    into the candidate's literal set), so a reduced budget is
    observationally equivalent. *)
let budget_hint (f : func) : int option =
  let rec scan = function
    | While (cond, _, body) :: _ ->
      if cond_const_true cond && spin_body_ok body then Some spin_budget
      else None
    | s :: rest -> if stmt_straight s then scan rest else None
    | [] -> None
  in
  scan f.body
