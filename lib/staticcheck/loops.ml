(** Pass 5 — loop analysis.

    [W404] flags a [while] loop none of whose condition variables is
    ever mutated in the body, with no [break]/[return]/[raise] and no
    calls that could raise or diverge themselves: once entered with a
    truthy condition the loop can only end by exhausting the sandbox's
    step budget.

    [budget_hint] additionally proves, for a candidate entry function,
    that *every* invocation runs into such a loop and that the loop
    emits no trace events — then tracing with a small step budget
    produces exactly the same feature set as the default 200k-step
    budget, just ~10× sooner.  The proof obligations are deliberately
    narrow (see DESIGN.md §8): a straight-line call-free prefix, a
    literal always-true condition, and an event-free raise-free body. *)

open Minilang.Ast
module StrSet = Env.StrSet

(* The reduced step budget for a guaranteed spin: enough to run any
   bounded prefix (corpus functions are a few dozen statements) while
   skipping ~90% of the default 200k-step sandbox burn. *)
let spin_budget = 20_000

(* --- W404 ------------------------------------------------------------ *)

let rec cond_pure (e : expr) =
  match e with
  | Var _ | Int _ | Float _ | Str _ | Bool _ | None_lit -> true
  | Binop (_, a, b, _) -> cond_pure a && cond_pure b
  | Unop (_, a) -> cond_pure a
  | _ -> false

let rec cond_vars (e : expr) =
  match e with
  | Var n -> StrSet.singleton n
  | Binop (_, a, b, _) -> StrSet.union (cond_vars a) (cond_vars b)
  | Unop (_, a) -> cond_vars a
  | _ -> StrSet.empty

(* Scan a loop body (without descending into nested defs) for anything
   that could exit the loop or mutate state beyond simple assignment:
   break/return/raise leave it, calls can raise or never return, and
   try blocks route control unpredictably. *)
let body_may_escape (body : block) =
  let escape = ref false in
  let check_expr e =
    Env.iter_expr
      (fun e ->
        match e with Call _ | Method _ -> escape := true | _ -> ())
      e
  in
  let rec go stmts =
    List.iter
      (fun s ->
        List.iter check_expr (Env.stmt_exprs s);
        match s with
        | Break _ | Return _ | Raise _ | Try _ | Func_def _ | Class_def _ ->
          escape := true
        | If (arms, els) ->
          List.iter (fun (_, _, b) -> go b) arms;
          Option.iter go els
        | While (_, _, b) | For (_, _, b, _) -> go b
        | Expr_stmt _ | Assign _ | Aug_assign _ | Continue _ | Pass
        | Global _ -> ())
      stmts
  in
  go body;
  !escape

let is_infinite_while cond body =
  cond_pure cond
  && Flow.const_truth cond <> Some false
  && (not (body_may_escape body))
  && StrSet.is_empty (StrSet.inter (cond_vars cond) (Env.assigned_names body))
  (* [global] in the body could alias a condition variable through
     module scope; bail out. *)
  && StrSet.is_empty (Env.global_names body)

let check (prog : program) : Diag.t list =
  let diags = ref [] in
  let rec walk stmts =
    List.iter
      (fun s ->
        match s with
        | While (cond, pos, body) ->
          if is_infinite_while cond body then
            diags :=
              Diag.warning pos "W404"
                "loop condition is never mutated in the body: the loop \
                 cannot terminate normally"
              :: !diags;
          walk body
        | If (arms, els) ->
          List.iter (fun (_, _, b) -> walk b) arms;
          Option.iter walk els
        | For (_, _, b, _) -> walk b
        | Try (b, handlers, fin) ->
          walk b;
          List.iter (fun h -> walk h.h_body) handlers;
          Option.iter walk fin
        | Func_def f -> walk f.body
        | Class_def c -> List.iter (fun m -> walk m.body) c.methods
        | Expr_stmt _ | Assign _ | Aug_assign _ | Return _ | Raise _
        | Break _ | Continue _ | Pass | Global _ -> ())
      stmts
  in
  walk prog.prog_body;
  List.rev !diags

(* --- Budget hints ---------------------------------------------------- *)

(* Expressions whose evaluation can neither raise, call, nor emit a
   trace event: variable reads and scalar literals. *)
let expr_inert = function
  | Var _ | Int _ | Float _ | Str _ | Bool _ | None_lit -> true
  | _ -> false

(* Bounded, call-free, straight-line statement: executes a fixed number
   of steps and cannot skip the statements after it. *)
let stmt_straight (s : stmt) =
  let no_calls e =
    let ok = ref true in
    Env.iter_expr
      (fun e -> match e with Call _ | Method _ -> ok := false | _ -> ())
      e;
    !ok
  in
  match s with
  | Assign _ | Aug_assign _ | Expr_stmt _ ->
    List.for_all no_calls (Env.stmt_exprs s)
  | Pass | Global _ -> true
  | _ -> false

(* An event-free, raise-free spin body: only Pass/Global and
   assignments of inert expressions to plain variables. *)
let spin_body_ok (body : block) =
  List.for_all
    (fun s ->
      match s with
      | Pass | Global _ -> true
      | Assign (Tvar _, e, _) | Expr_stmt (e, _) -> expr_inert e
      | _ -> false)
    body

(* A literal condition that is always truthy and cannot raise. *)
let rec cond_const_true (e : expr) =
  match e with
  | Int _ | Float _ | Str _ | Bool _ -> Flow.const_truth e = Some true
  | Unop (Not, a) -> cond_pure a && Flow.const_truth e = Some true
  | Binop ((And | Or), a, b, _) ->
    cond_const_true a && cond_const_true b
  | _ -> false

(* --- Ranking helpers (shared with lib/absint) ------------------------ *)

type spin_shape = {
  spin_prefix : stmt list;  (** straight-line call-free prefix, in order *)
  spin_cond : expr;  (** the literal always-true loop condition *)
  spin_pos : pos;  (** the loop head (its branch-event site) *)
}

(** The proof obligation behind {!budget_hint}, exposed structurally so
    the abstract interpreter can price the prefix precisely instead of
    charging the blunt {!spin_budget}: every call of [f] runs the
    returned straight-line call-free prefix and then enters
    [while <literal-true>:] over a raise-free, event-free body. *)
let spin_shape (f : func) : spin_shape option =
  let rec scan acc = function
    | While (cond, pos, body) :: _ ->
      if cond_const_true cond && spin_body_ok body then
        Some { spin_prefix = List.rev acc; spin_cond = cond; spin_pos = pos }
      else None
    | s :: rest -> if stmt_straight s then scan (s :: acc) rest else None
    | [] -> None
  in
  scan [] f.body

(** [Some spin_budget] when every call of [f] provably reaches an
    event-free infinite loop (see {!spin_shape}).  Every run then hits
    the step limit with a feature set independent of the budget (the
    repeated branch event at the loop head dedupes into the candidate's
    literal set), so a reduced budget is observationally equivalent. *)
let budget_hint (f : func) : int option =
  match spin_shape f with Some _ -> Some spin_budget | None -> None

type counter = {
  counter_var : string;
  counter_step : int;
      (** guaranteed total increase of the variable per completed
          iteration; at least 1 *)
  counter_le : bool;  (** condition is [v <= B] rather than [v < B] *)
  counter_bound : expr;  (** loop-invariant bound expression *)
}

(* Statements anywhere in a block that (re)bind [v], descending into
   nested control flow but not into nested defs (their [v] is a
   different variable unless [global] appears — callers reject
   [global] separately). *)
let assignments_to v (body : block) : stmt list =
  let hits = ref [] in
  let rec go stmts =
    List.iter
      (fun s ->
        (match s with
         | Assign (t, _, _) | Aug_assign (t, _, _, _) ->
           let rec tgt = function
             | Tvar n -> if n = v then hits := s :: !hits
             | Ttuple ts -> List.iter tgt ts
             | Tindex _ | Tattr _ -> ()
           in
           tgt t
         | For (t, _, _, _) ->
           let rec tgt = function
             | Tvar n -> if n = v then hits := s :: !hits
             | Ttuple ts -> List.iter tgt ts
             | Tindex _ | Tattr _ -> ()
           in
           tgt t
         | Func_def f when f.fname = v -> hits := s :: !hits
         | Class_def c when c.cname = v -> hits := s :: !hits
         | _ -> ());
        match s with
        | If (arms, els) ->
          List.iter (fun (_, _, b) -> go b) arms;
          Option.iter go els
        | While (_, _, b) | For (_, _, b, _) -> go b
        | Try (b, handlers, fin) ->
          go b;
          List.iter (fun h -> go h.h_body) handlers;
          Option.iter go fin
        | _ -> ())
      stmts
  in
  go body;
  !hits

let has_continue (body : block) =
  let found = ref false in
  let rec go stmts =
    List.iter
      (fun s ->
        match s with
        | Continue _ -> found := true
        | If (arms, els) ->
          List.iter (fun (_, _, b) -> go b) arms;
          Option.iter go els
        | Try (b, handlers, fin) ->
          go b;
          List.iter (fun h -> go h.h_body) handlers;
          Option.iter go fin
        (* a [continue] inside a nested loop belongs to that loop *)
        | While _ | For _ -> ()
        | _ -> ())
      stmts
  in
  go body;
  !found

(* A top-level statement of the body that increases [v] by a literal
   positive amount: [v += k] or [v = v + k] / [v = k + v]. *)
let increment_of v (s : stmt) : int option =
  match s with
  | Aug_assign (Tvar n, Add, Int k, _) when n = v && k >= 1 -> Some k
  | Assign (Tvar n, Binop (Add, Var m, Int k, _), _)
    when n = v && m = v && k >= 1 -> Some k
  | Assign (Tvar n, Binop (Add, Int k, Var m, _), _)
    when n = v && m = v && k >= 1 -> Some k
  | _ -> None

(** Lexicographic-ranking witness for a [while] loop: [Some c] proves
    that each completed iteration increases [c.counter_var] by at least
    [c.counter_step] while the bound expression stays fixed, so the
    iteration count is bounded by [(B − v₀)/step (+1)] once the caller
    knows an upper bound for [B] and the entry value [v₀].

    Must-style obligations (reject on any doubt): the condition is
    [v < B] or [v <= B] with [B] pure and loop-invariant; every
    (re)binding of [v] in the body is a direct top-level literal
    increment; there is at least one such increment; no [continue] at
    this loop's level (it could skip the increments); no [global] (it
    could alias [v] or the bound through module scope). *)
let while_counter (cond : expr) (body : block) : counter option =
  match cond with
  | Binop (((Lt | Le) as op), Var v, bound, _)
    when cond_pure bound
         && (not (StrSet.mem v (cond_vars bound)))
         && StrSet.is_empty
              (StrSet.inter (cond_vars bound) (Env.assigned_names body))
         && StrSet.is_empty (Env.global_names body)
         && not (has_continue body) ->
    let bindings = assignments_to v body in
    let increments = List.filter_map (increment_of v) body in
    let all_are_top_level_increments =
      List.for_all
        (fun s -> List.exists (fun t -> t == s) body && increment_of v s <> None)
        bindings
    in
    if increments <> [] && all_are_top_level_increments then
      Some
        {
          counter_var = v;
          counter_step = List.fold_left ( + ) 0 increments;
          counter_le = op = Le;
          counter_bound = bound;
        }
    else None
  | _ -> None
