(** Pass 3 — input-flow (taint) analysis.

    Decides whether a candidate's input string can reach any *observable*
    trace event: a branch/loop/ternary condition, a return value, a
    raise, or an operation that may raise depending on the tainted
    value.  A candidate where it provably cannot produces the same trace
    on every input, so no DNF clause over its features can separate P
    from N (Definitions 3–4): it is statically unrankable.

    The pass is flow-insensitive per function (a monotone tainted-set
    fixpoint) combined with call-graph summaries iterated to a fixpoint.
    Everything uncertain is treated as observable — unknown callees,
    computed receivers, container stores, exception binders — so the
    analysis only ever *over*-approximates reachability: pruning a
    candidate it rejects is safe, see DESIGN.md §8.

    The only operations modelled as unobservable are the ones the
    interpreter can never raise from and that produce no events:
    [And]/[Or]/[Eq]/[Neq], [not], the [print]/[str]/[bool]/[type]
    builtins, and zero-argument file reads. *)

open Minilang.Ast
module StrSet = Env.StrSet

type channel = Chan_none | Chan_stdin | Chan_argv | Chan_file

type summary = {
  mutable sens : bool;  (** observable taint with untainted arguments *)
  mutable sens_t : bool;  (** … with tainted arguments (incl. self) *)
  mutable ret : bool;  (** returns a tainted value, untainted arguments *)
  mutable ret_t : bool;
  mutable taints_self : bool;
      (** stores tainted data into [self] when arguments are tainted *)
}

let fresh_summary () =
  { sens = false; sens_t = false; ret = false; ret_t = false; taints_self = false }

type t = {
  env : Env.t;
  progs : program list;
  channel : channel;
  global_source : string option;
  summaries : (string, summary) Hashtbl.t;
}

let safe_builtins = [ "print"; "str"; "bool"; "type" ]
let file_read_methods = [ "read"; "readline"; "readlines"; "close" ]

(* Does a block syntactically mention one of the entry's taint sources?
   Used to over-approximate nested defs/classes, whose closures chain to
   module scope and could observe a channel when later called. *)
let mentions_source t (body : block) =
  match (t.channel, t.global_source) with
  | Chan_none, None -> false
  | _ ->
    let found = ref false in
    let check e =
      Env.iter_expr
        (fun e ->
          match e with
          | Var "argv" when t.channel = Chan_argv -> found := true
          | Attr (Var "sys", "argv") when t.channel = Chan_argv -> found := true
          | Call (Var "input", _, _) when t.channel = Chan_stdin -> found := true
          | Call (Var "open", _, _) when t.channel = Chan_file -> found := true
          | Var n when t.global_source = Some n -> found := true
          | _ -> ())
        e
    in
    ignore
      (fold_stmts
         (fun () s -> List.iter check (Env.stmt_exprs s))
         () body);
    !found

(* State of one intraprocedural analysis. *)
type istate = {
  t : t;
  locals : StrSet.t;  (** names that shadow module/builtin resolution *)
  globals : StrSet.t;  (** names declared [global] in this body *)
  self_ctx : (string * string) option;  (** (class, self param name) *)
  module_scope_body : bool;
      (** a script's top-level block: every Tvar assign is module scope *)
  mutable tainted : StrSet.t;
  mutable sens : bool;
  mutable ret : bool;
  mutable taints_self : bool;
  mutable changed : bool;
}

let mark_sens st = if not st.sens then (st.sens <- true; st.changed <- true)

let taint_var st n =
  if not (StrSet.mem n st.tainted) then begin
    st.tainted <- StrSet.add n st.tainted;
    st.changed <- true
  end

let summary_of st key =
  match Hashtbl.find_opt st.t.summaries key with
  | Some s -> Some s
  | None -> None

(* Is [n] the ambient builtin here (not shadowed by a local or any
   module-level definition)? *)
let is_builtin_ref st n =
  (not (StrSet.mem n st.locals))
  && (not (Hashtbl.mem st.t.env.Env.funcs n))
  && (not (Hashtbl.mem st.t.env.Env.classes n))
  && not (StrSet.mem n st.t.env.Env.module_vars)

let binop_safe = function
  | And | Or | Eq | Neq -> true
  | _ -> false

let rec ev st (e : expr) : bool =
  match e with
  | Int _ | Float _ | Str _ | Bool _ | None_lit -> false
  | Var n ->
    StrSet.mem n st.tainted
    (* Unconditional even when a local shadows the name: reads before
       the first local assignment fall through to module scope. *)
    || st.t.global_source = Some n
    || (st.t.channel = Chan_argv && n = "argv")
  | Attr (Var "sys", "argv") when st.t.channel = Chan_argv -> true
  | Attr (o, _) ->
    let tn = ev st o in
    if tn then mark_sens st;
    tn
  | Binop (op, a, b, _) ->
    let ta = ev st a in
    let tb = ev st b in
    let tv = ta || tb in
    if tv && not (binop_safe op) then mark_sens st;
    tv
  | Unop (Not, a) -> ev st a
  | Unop (Neg, a) ->
    let ta = ev st a in
    if ta then mark_sens st;
    ta
  | Cond (c, a, b, _) ->
    let tc = ev st c in
    if tc then mark_sens st;  (* ternary emits a Branch event *)
    let ta = ev st a in
    let tb = ev st b in
    tc || ta || tb
  | Index (a, b, _) ->
    let ta = ev st a in
    let tb = ev st b in
    if ta || tb then mark_sens st;
    ta || tb
  | Slice (a, lo, hi, _) ->
    let ta = ev st a in
    let tl = match lo with Some e -> ev st e | None -> false in
    let th = match hi with Some e -> ev st e | None -> false in
    if ta || tl || th then mark_sens st;
    ta || tl || th
  | List_lit es | Tuple_lit es -> List.exists (ev st) es
  | Dict_lit kvs -> List.exists (fun (k, v) -> ev st k || ev st v) kvs
  | Call (Var f, args, _) -> call_taint st f args
  | Call (g, args, _) ->
    (* Computed callee: unknown behaviour once any taint is involved. *)
    let tg = ev st g in
    let ts = List.map (ev st) args in
    let tv = tg || List.exists Fun.id ts in
    if tv then mark_sens st;
    tv
  | Method (o, m, args, _) -> method_taint st o m args

and call_taint st f args =
  let ts = List.map (ev st) args in
  let anyt = List.exists Fun.id ts in
  if StrSet.mem f st.locals then begin
    (* Local binding: could be any callable, including a closure over a
       channel source — the defining Func_def already marked that. *)
    if anyt then mark_sens st;
    anyt
  end
  else if Hashtbl.mem st.t.env.Env.funcs f then begin
    match summary_of st f with
    | Some s ->
      if s.sens || (anyt && s.sens_t) then mark_sens st;
      s.ret || (anyt && s.ret_t)
    | None ->
      if anyt then mark_sens st;
      anyt
  end
  else if Hashtbl.mem st.t.env.Env.classes f then begin
    (* Instantiation runs __init__; the object is tainted whenever any
       constructor argument is (fields may hold the taint). *)
    (match summary_of st (f ^ ".__init__") with
     | Some s -> if s.sens || (anyt && s.sens_t) then mark_sens st
     | None -> ());
    anyt
  end
  else if StrSet.mem f st.t.env.Env.module_vars then begin
    if anyt then mark_sens st;
    anyt
  end
  else if List.mem f safe_builtins then
    (* print/str/bool/type never raise; print's result is untainted. *)
    if f = "print" then false else anyt
  else if f = "input" then begin
    if anyt then mark_sens st;  (* input(x) with non-str x raises *)
    st.t.channel = Chan_stdin
  end
  else if f = "open" then begin
    if anyt then mark_sens st;  (* IOError depends on the tainted path *)
    st.t.channel = Chan_file
  end
  else if List.mem f Minilang.Interp.known_exception_kinds then
    (* Exception constructors never raise; the object carries taint. *)
    anyt
  else begin
    (* Every other builtin may raise depending on its argument. *)
    if anyt then mark_sens st;
    anyt
  end

and method_taint st o m args =
  let self_dispatch =
    match (o, st.self_ctx) with
    | Var n, Some (cls, self_name) when n = self_name -> Some (cls, self_name)
    | _ -> None
  in
  match self_dispatch with
  | Some (cls, self_name) ->
    let ts = List.map (ev st) args in
    let anyt = List.exists Fun.id ts || StrSet.mem self_name st.tainted in
    (match summary_of st (cls ^ "." ^ m) with
     | Some s ->
       if s.sens || (anyt && s.sens_t) then mark_sens st;
       if anyt && s.taints_self then taint_var st self_name;
       s.ret || (anyt && s.ret_t)
     | None ->
       if anyt then mark_sens st;
       anyt)
  | None ->
    if o = Var "re" && is_builtin_ref st "re" then begin
      let ts = List.map (ev st) args in
      let anyt = List.exists Fun.id ts in
      if anyt then mark_sens st;  (* bad pattern/argument types raise *)
      anyt
    end
    else
      let to_ = ev st o in
      let ts = List.map (ev st) args in
      let anyt = List.exists Fun.id ts in
      if List.mem m file_read_methods && args = [] then
        (* Zero-argument file reads never raise; content is the input
           under Chan_file, carried by the tainted file object. *)
        to_
      else begin
        if to_ || anyt then mark_sens st;
        to_ || anyt
      end

let target_read_taint st (tgt : target) =
  match tgt with
  | Tvar n -> ev st (Var n)
  | Tindex (a, b) ->
    let ta = ev st a in
    let tb = ev st b in
    if ta || tb then mark_sens st;
    ta || tb
  | Tattr (a, _) ->
    let ta = ev st a in
    if ta then mark_sens st;
    ta
  | Ttuple _ -> false

let rec assign_target st (tgt : target) tv =
  match tgt with
  | Tvar n ->
    if tv then begin
      taint_var st n;
      (* A tainted write to module scope can be observed by any function
         called later; treat as observable rather than tracking
         inter-procedural global flow. *)
      if st.module_scope_body || StrSet.mem n st.globals then mark_sens st
    end
  | Tindex (a, i) ->
    let ta = ev st a in
    let ti = ev st i in
    if ta || ti || tv then mark_sens st;
    if tv then (match a with Var b -> taint_var st b | _ -> ())
  | Tattr (a, _) ->
    let ta = ev st a in
    if ta then mark_sens st;
    if tv then (
      match a with
      | Var b ->
        taint_var st b;
        (match st.self_ctx with
         | Some (_, self_name) when b = self_name ->
           if not st.taints_self then begin
             st.taints_self <- true;
             st.changed <- true
           end
         | _ -> ())
      | _ -> ())
  | Ttuple ts ->
    (* Unpacking a tainted value can raise on arity mismatch. *)
    if tv then mark_sens st;
    List.iter (fun tgt -> assign_target st tgt tv) ts

let rec exec_stmt st (s : stmt) =
  match s with
  | Expr_stmt (e, _) -> ignore (ev st e)
  | Assign (tgt, e, _) ->
    let tv = ev st e in
    assign_target st tgt tv
  | Aug_assign (tgt, op, e, _) ->
    let tt = target_read_taint st tgt in
    let te = ev st e in
    let tv = tt || te in
    if tv && not (binop_safe op) then mark_sens st;
    assign_target st tgt tv
  | If (arms, els) ->
    List.iter
      (fun (c, _, b) ->
        if ev st c then mark_sens st;
        List.iter (exec_stmt st) b)
      arms;
    Option.iter (List.iter (exec_stmt st)) els
  | While (c, _, b) ->
    if ev st c then mark_sens st;
    List.iter (exec_stmt st) b
  | For (tgt, e, b, _) ->
    let te = ev st e in
    if te then mark_sens st;  (* iteration count is input-dependent *)
    assign_target st tgt te;
    List.iter (exec_stmt st) b
  | Return (Some e, _) ->
    if ev st e then begin
      (* The Return trace event carries the abstracted value. *)
      mark_sens st;
      if not st.ret then begin
        st.ret <- true;
        st.changed <- true
      end
    end
  | Return (None, _) -> ()
  | Raise (Some e, _) -> if ev st e then mark_sens st
  | Raise (None, _) -> ()
  | Try (b, handlers, fin) ->
    List.iter (exec_stmt st) b;
    List.iter
      (fun h ->
        (* The bound message may embed whatever tainted value raised. *)
        let binder =
          match h.h_bind with
          | Some n -> Some n
          | None ->
            (match h.h_filter with
             | Some f when not (Env.is_ambient f) -> Some f
             | _ -> None)
        in
        (match binder with
         | Some n
           when st.t.channel <> Chan_none
                || st.t.global_source <> None
                || not (StrSet.is_empty st.tainted) ->
           taint_var st n
         | _ -> ());
        List.iter (exec_stmt st) h.h_body)
      handlers;
    Option.iter (List.iter (exec_stmt st)) fin
  | Break _ | Continue _ | Pass | Global _ -> ()
  | Func_def f ->
    (* Nested defs close over module scope only; if the nested body can
       see a source, any later call of the closure may observe it. *)
    if mentions_source st.t f.body then mark_sens st
  | Class_def c ->
    if List.exists (fun m -> mentions_source st.t m.body) c.methods then
      mark_sens st

(* Run the monotone intraprocedural fixpoint over one body. *)
let analyze_body t ~locals ~globals ~self_ctx ~module_scope_body ~seed body =
  let st =
    {
      t;
      locals;
      globals;
      self_ctx;
      module_scope_body;
      tainted = seed;
      sens = false;
      ret = false;
      taints_self = false;
      changed = true;
    }
  in
  let rounds = ref 0 in
  while st.changed && !rounds < 40 do
    st.changed <- false;
    incr rounds;
    List.iter (exec_stmt st) body
  done;
  (st.sens, st.ret, st.taints_self)

let analyze_func t (f : func) ~cls ~tainted_params =
  let self_ctx =
    match (cls, f.params) with
    | Some c, self_name :: _ -> Some (c, self_name)
    | _ -> None
  in
  let seed = if tainted_params then StrSet.of_list f.params else StrSet.empty in
  (* Default-parameter expressions evaluate in the callee before the
     body runs and can observe a channel (e.g. [def f(x=input())]). *)
  let body =
    List.map (fun (n, e) -> Assign (Tvar n, e, f.fpos)) f.defaults @ f.body
  in
  analyze_body t ~locals:(Env.locals_of_func f)
    ~globals:(Env.global_names f.body) ~self_ctx ~module_scope_body:false ~seed
    body

(* All named bodies of the repository: top-level functions under their
   own name, methods under "Class.method". *)
let named_funcs (progs : program list) =
  List.concat_map
    (fun (p : program) ->
      List.concat_map
        (fun s ->
          match s with
          | Func_def f -> [ (f.fname, None, f) ]
          | Class_def c ->
            List.map (fun m -> (c.cname ^ "." ^ m.fname, Some c.cname, m)) c.methods
          | _ -> [])
        p.prog_body)
    progs

let analyze ?global_source ~channel (env : Env.t) (progs : program list) : t =
  let t =
    { env; progs; channel; global_source; summaries = Hashtbl.create 32 }
  in
  let funcs = named_funcs progs in
  List.iter (fun (key, _, _) -> Hashtbl.replace t.summaries key (fresh_summary ())) funcs;
  (* Call-graph fixpoint: summaries only ever gain bits, so this
     terminates; 5 × |funcs| rounds bounds any dependency chain. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 5 + List.length funcs do
    changed := false;
    incr rounds;
    List.iter
      (fun (key, cls, f) ->
        let s = Hashtbl.find t.summaries key in
        let sens0, ret0, _ = analyze_func t f ~cls ~tainted_params:false in
        let sens1, ret1, ts1 = analyze_func t f ~cls ~tainted_params:true in
        let upd get set v = if v && not (get ()) then (set (); changed := true) in
        upd (fun () -> s.sens) (fun () -> s.sens <- true) sens0;
        upd (fun () -> s.sens_t) (fun () -> s.sens_t <- true) sens1;
        upd (fun () -> s.ret) (fun () -> s.ret <- true) ret0;
        upd (fun () -> s.ret_t) (fun () -> s.ret_t <- true) ret1;
        upd (fun () -> s.taints_self) (fun () -> s.taints_self <- true) ts1)
      funcs
  done;
  t

(* --- Entry-point verdicts (conservative: unknown → rankable) --------- *)

let func_rankable (t : t) ~tainted_args name =
  match Hashtbl.find_opt t.summaries name with
  | Some s -> if tainted_args then s.sens_t else s.sens
  | None -> true

let method_rankable (t : t) ~cls ~meth =
  let m_sens =
    match Hashtbl.find_opt t.summaries (cls ^ "." ^ meth) with
    | Some s -> s.sens_t
    | None -> true
  in
  (* The parameterless constructor runs first under tracing; its events
     are input-independent unless it observes a channel. *)
  let init_sens =
    match Hashtbl.find_opt t.summaries (cls ^ ".__init__") with
    | Some s -> s.sens
    | None -> false
  in
  m_sens || init_sens

let ctor_method_rankable (t : t) ~cls ~meth =
  match Hashtbl.find_opt t.summaries (cls ^ ".__init__") with
  | None -> true
  | Some init ->
    init.sens_t
    || (init.taints_self
        &&
        match Hashtbl.find_opt t.summaries (cls ^ "." ^ meth) with
        | Some m -> m.sens_t  (* self is the method's (tainted) parameter *)
        | None -> true)

let script_rankable (t : t) file =
  match List.find_opt (fun (p : program) -> p.prog_file = file) t.progs with
  | None -> true
  | Some p ->
    let sens, _, _ =
      analyze_body t ~locals:StrSet.empty ~globals:StrSet.empty ~self_ctx:None
        ~module_scope_body:true ~seed:StrSet.empty p.prog_body
    in
    sens
