(** Pass 2 — builtin signature checks.

    Mirrors [Interp.call_builtin] and the string/list/dict/re method
    tables: a call that this pass rejects is guaranteed to raise
    [TypeError]/[AttributeError] when the call site executes.

    - [E103] wrong number of arguments to a builtin or known method;
    - [E104] a literal argument whose type the builtin always rejects;
    - [E105] a method no value of the receiver's (literal) type has.

    Inside a [try] whose handlers would catch the runtime error the
    guarded variants [W103]/[W104]/[W105] are emitted instead.  Checks
    apply only when the name still resolves to the builtin — a local or
    module-level binding of the same name suppresses them. *)

open Minilang.Ast
module StrSet = Env.StrSet

(* name, min arity, max arity — mirroring call_builtin's match arms. *)
let builtin_arity =
  [ ("len", 1, 1); ("int", 1, 2); ("float", 1, 1); ("str", 0, 1);
    ("bool", 1, 1); ("ord", 1, 1); ("chr", 1, 1); ("abs", 1, 1);
    ("min", 1, max_int); ("max", 1, max_int); ("sum", 1, 1);
    ("range", 1, 3); ("round", 1, 2); ("print", 0, max_int);
    ("input", 0, 1); ("open", 1, max_int); ("sorted", 1, 1);
    ("reversed", 1, 1); ("list", 0, 1); ("dict", 0, 0); ("tuple", 1, 1);
    ("type", 1, 1); ("enumerate", 1, 1); ("zip", 2, 2) ]

let str_methods =
  [ ("upper", 0, 0); ("lower", 0, 0); ("strip", 0, 1); ("lstrip", 0, 1);
    ("rstrip", 0, 1); ("split", 0, 1); ("replace", 2, 2);
    ("startswith", 1, 1); ("endswith", 1, 1); ("find", 1, 2);
    ("rfind", 1, 1); ("index", 1, 1); ("count", 1, 1); ("join", 1, 1);
    ("isdigit", 0, 0); ("isalpha", 0, 0); ("isalnum", 0, 0);
    ("isupper", 0, 0); ("islower", 0, 0); ("isspace", 0, 0);
    ("zfill", 1, 1); ("title", 0, 0); ("format", 0, max_int) ]

let list_methods =
  [ ("append", 1, 1); ("extend", 1, 1); ("insert", 2, 2); ("pop", 0, 1);
    ("index", 1, 1); ("count", 1, 1); ("reverse", 0, 0); ("sort", 0, 0);
    ("remove", 1, 1) ]

let dict_methods =
  [ ("get", 1, 2); ("keys", 0, 0); ("values", 0, 0); ("items", 0, 0);
    ("has_key", 1, 1); ("update", 1, 1); ("pop", 1, 1) ]

let re_methods = [ ("match", 2, 2); ("fullmatch", 2, 2); ("search", 2, 2); ("findall", 2, 2) ]

type lit = Lint | Lfloat | Lstr of string | Lbool | Lnone | Llist | Ldict | Ltuple

let literal_kind = function
  | Int _ -> Some Lint
  | Float _ -> Some Lfloat
  | Str s -> Some (Lstr s)
  | Bool _ -> Some Lbool
  | None_lit -> Some Lnone
  | List_lit _ -> Some Llist
  | Dict_lit _ -> Some Ldict
  | Tuple_lit _ -> Some Ltuple
  | _ -> None

let kind_name = function
  | Lint -> "int" | Lfloat -> "float" | Lstr _ -> "str" | Lbool -> "bool"
  | Lnone -> "None" | Llist -> "list" | Ldict -> "dict" | Ltuple -> "tuple"

(* Would call_builtin always raise on this literal argument?  Only
   combinations the interpreter rejects in *every* execution are listed. *)
let literal_rejected name i k =
  match (name, i, k) with
  | "len", 0, (Lint | Lfloat | Lbool | Lnone) -> true
  | "int", 0, (Llist | Ldict | Ltuple | Lnone) -> true
  | "float", 0, (Llist | Ldict | Ltuple | Lnone | Lbool) -> true
  | "ord", 0, Lstr s -> String.length s <> 1
  | "ord", 0, (Lint | Lfloat | Lbool | Lnone | Llist | Ldict | Ltuple) -> true
  | "chr", 0, (Lfloat | Lstr _ | Lbool | Lnone | Llist | Ldict | Ltuple) -> true
  | "abs", 0, (Lstr _ | Lbool | Lnone | Llist | Ldict | Ltuple) -> true
  | "sum", 0, (Lint | Lfloat | Lstr _ | Lbool | Lnone | Ldict | Ltuple) -> true
  | "range", _, (Lfloat | Lstr _ | Lbool | Lnone | Llist | Ldict | Ltuple) -> true
  | ("sorted" | "reversed"), 0, (Lint | Lfloat | Lbool | Lnone | Ldict | Ltuple) ->
    true
  | _ -> false

type fctx = {
  env : Env.t;
  shadowed : StrSet.t;  (** locals of the enclosing function *)
  diags : Diag.t list ref;
}

let add fc d = fc.diags := d :: !(fc.diags)

(* Does [name] still resolve to the ambient builtin here? *)
let is_builtin_ref fc name =
  (not (StrSet.mem name fc.shadowed))
  && (not (Hashtbl.mem fc.env.Env.funcs name))
  && (not (Hashtbl.mem fc.env.Env.classes name))
  && (not (StrSet.mem name fc.env.Env.module_vars))

let severity_code ~guarded e w = if guarded then (Diag.Warning, w) else (Diag.Error, e)

let check_arity fc ~guarded ~what name lo hi n pos =
  if n < lo || n > hi then begin
    let sev, code = severity_code ~guarded "E103" "W103" in
    let expected =
      if hi = max_int then Printf.sprintf "at least %d" lo
      else if lo = hi then string_of_int lo
      else Printf.sprintf "%d to %d" lo hi
    in
    add fc
      (Diag.make sev pos code
         (Printf.sprintf "%s%s() takes %s argument%s (%d given)" what name
            expected
            (if expected = "1" then "" else "s")
            n))
  end

let check_call fc ~guarded (e : expr) =
  match e with
  | Call (Var "isdigit", _, pos) when is_builtin_ref fc "isdigit" ->
    let sev, code = severity_code ~guarded "E103" "W103" in
    add fc
      (Diag.make sev pos code
         "isdigit is a string method, not a free function — s.isdigit()")
  | Call (Var name, args, pos) when is_builtin_ref fc name -> (
    match List.find_opt (fun (n, _, _) -> n = name) builtin_arity with
    | None -> ()
    | Some (_, lo, hi) ->
      check_arity fc ~guarded ~what:"" name lo hi (List.length args) pos;
      List.iteri
        (fun i a ->
          match literal_kind a with
          | Some k when literal_rejected name i k ->
            let sev, code = severity_code ~guarded "E104" "W104" in
            add fc
              (Diag.make sev pos code
                 (Printf.sprintf "%s() does not accept a %s argument" name
                    (kind_name k)))
          | _ -> ())
        args)
  | Method (Var "re", m, args, pos) when is_builtin_ref fc "re" -> (
    match List.find_opt (fun (n, _, _) -> n = m) re_methods with
    | Some (_, lo, hi) ->
      check_arity fc ~guarded ~what:"re." m lo hi (List.length args) pos
    | None ->
      let sev, code = severity_code ~guarded "E105" "W105" in
      add fc
        (Diag.make sev pos code
           (Printf.sprintf "re module has no attribute '%s'" m)))
  | Method (recv, m, args, pos) -> (
    let table =
      match literal_kind recv with
      | Some (Lstr _) -> Some ("str", str_methods)
      | Some Llist -> Some ("list", list_methods)
      | Some Ldict -> Some ("dict", dict_methods)
      | _ -> None
    in
    match table with
    | None -> ()
    | Some (tname, methods) -> (
      match List.find_opt (fun (n, _, _) -> n = m) methods with
      | Some (_, lo, hi) ->
        check_arity fc ~guarded ~what:(tname ^ ".") m lo hi (List.length args)
          pos
      | None ->
        let sev, code = severity_code ~guarded "E105" "W105" in
        add fc
          (Diag.make sev pos code
             (Printf.sprintf "'%s' object has no attribute '%s'" tname m))))
  | _ -> ()

let rec scan_expr fc ~guarded e =
  check_call fc ~guarded e;
  Env.iter_subexprs (scan_expr fc ~guarded) e

let rec scan_block fc ~guarded stmts = List.iter (scan_stmt fc ~guarded) stmts

and scan_stmt fc ~guarded (s : stmt) =
  List.iter (scan_expr fc ~guarded) (Env.stmt_exprs s);
  match s with
  | If (arms, els) ->
    List.iter (fun (_, _, b) -> scan_block fc ~guarded b) arms;
    Option.iter (scan_block fc ~guarded) els
  | While (_, _, b) | For (_, _, b, _) -> scan_block fc ~guarded b
  | Try (b, handlers, fin) ->
    scan_block fc ~guarded:true b;
    List.iter (fun h -> scan_block fc ~guarded h.h_body) handlers;
    Option.iter (scan_block fc ~guarded) fin
  | Func_def f -> scan_func fc.env fc.diags f
  | Class_def c -> List.iter (scan_func fc.env fc.diags) c.methods
  | Expr_stmt _ | Assign _ | Aug_assign _ | Return _ | Raise _ | Break _
  | Continue _ | Pass | Global _ -> ()

and scan_func env diags (f : func) =
  let fc = { env; shadowed = Env.locals_of_func f; diags } in
  scan_block fc ~guarded:false f.body

let check (env : Env.t) (prog : program) : Diag.t list =
  let diags = ref [] in
  let fc = { env; shadowed = StrSet.empty; diags } in
  scan_block fc ~guarded:false prog.prog_body;
  List.rev !diags
