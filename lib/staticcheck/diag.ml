(** Shared diagnostics type for every staticcheck pass.

    Codes follow a lint-style convention: [E1xx] name resolution,
    [E0xx]/[E1xx] always error severity, [W2xx] shadowing, [W4xx]
    flow/reachability findings.  A code is stable across releases so the
    corpus-hygiene allowlist can pin exact findings. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  site : Minilang.Ast.pos;
  code : string;  (** e.g. "E101" *)
  message : string;
}

let make severity site code message = { severity; site; code; message }

let error site code message = make Error site code message
let warning site code message = make Warning site code message
let info site code message = make Info site code message

let is_error d = d.severity = Error

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(** [file:line [code] message] — the `autotype lint` output format. *)
let to_string d =
  Printf.sprintf "%s:%d [%s] %s" d.site.Minilang.Ast.file d.site.Minilang.Ast.line
    d.code d.message

(* Stable order: file, then line, then code, then message — used both
   for deterministic lint output and the corpus allowlist. *)
let compare a b =
  let c = String.compare a.site.Minilang.Ast.file b.site.Minilang.Ast.file in
  if c <> 0 then c
  else
    let c = Int.compare a.site.Minilang.Ast.line b.site.Minilang.Ast.line in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c else String.compare a.message b.message
