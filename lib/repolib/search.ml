(** Keyword search over the repository store.

    Simulates the paper's Section 4.1 setup: the type name is issued as a
    query to both the GitHub search API and the Bing search API
    ("keyword site:github.com"), and the union of the top-k results of
    both engines is taken.  Our two engines are two TF-IDF scorers with
    different field weightings — the "github" engine favours repository
    names and descriptions, the "bing" engine also indexes README and
    code bodies — which reproduces the complementary-results effect the
    paper relies on, as well as its failure modes (an ambiguous query
    like "SWIFT" ranks the language repos above the banking ones). *)

(* Light plural stemming, as any real search engine applies: "codes"
   and "code", "messages" and "message" should match. *)
let stem tok =
  let n = String.length tok in
  if n > 3 && tok.[n - 1] = 's' && tok.[n - 2] <> 's' then
    String.sub tok 0 (n - 1)
  else tok

let tokenize (s : string) : string list =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := stem (String.lowercase_ascii (Buffer.contents buf)) :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
      then Buffer.add_char buf c
      else flush ())
    s;
  flush ();
  List.rev !out

type doc = {
  repo : Repo.t;
  title_tokens : string list;  (** name + description *)
  body_tokens : string list;   (** readme + sources *)
}

type index = {
  docs : doc list;
  df : (string, int) Hashtbl.t;  (** document frequency over all fields *)
  n_docs : int;
}

let build_index (repos : Repo.t list) : index =
  let docs =
    List.map
      (fun (r : Repo.t) ->
        let title_tokens =
          tokenize r.Repo.repo_name @ tokenize r.Repo.description
        in
        let body_tokens =
          tokenize r.Repo.readme
          @ List.concat_map (fun f -> tokenize f.Repo.source) r.Repo.files
        in
        { repo = r; title_tokens; body_tokens })
      repos
  in
  let df = Hashtbl.create 1024 in
  List.iter
    (fun d ->
      let seen = Hashtbl.create 64 in
      List.iter
        (fun t ->
          if not (Hashtbl.mem seen t) then begin
            Hashtbl.add seen t ();
            Hashtbl.replace df t (1 + Option.value ~default:0 (Hashtbl.find_opt df t))
          end)
        (d.title_tokens @ d.body_tokens))
    docs;
  { docs; df; n_docs = List.length docs }

let idf index tok =
  let df = Option.value ~default:0 (Hashtbl.find_opt index.df tok) in
  log (float_of_int (index.n_docs + 1) /. float_of_int (df + 1)) +. 1.0

let count tok toks = List.length (List.filter (String.equal tok) toks)

type engine = Github_api | Bing_api

(** TF-IDF score of a query against one document under an engine's field
    weighting. *)
let score index engine query_tokens d =
  let tfidf =
    List.fold_left
      (fun acc tok ->
        let tf_title = float_of_int (count tok d.title_tokens) in
        let tf_body = float_of_int (count tok d.body_tokens) in
        let w_title, w_body =
          match engine with
          | Github_api -> (5.0, 0.3)  (* names and descriptions dominate *)
          | Bing_api -> (2.0, 1.0)    (* full-text crawl *)
        in
        let tf = (w_title *. tf_title) +. (w_body *. tf_body) in
        if tf > 0.0 then acc +. ((1.0 +. log tf) *. idf index tok) else acc)
      0.0 query_tokens
  in
  (* Stars act only as a weak prior among repos that match at all. *)
  if tfidf > 0.0 then
    tfidf +. (0.01 *. log (float_of_int (1 + d.repo.Repo.stars)))
  else 0.0

let top_k index engine ~k query =
  let qt = tokenize query in
  index.docs
  |> List.filter_map (fun d ->
         let s = score index engine qt d in
         if s > 0.0 then Some (d.repo, s) else None)
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < k)
  |> List.map fst

let m_queries = Telemetry.counter "search.queries"
let m_repos_returned = Telemetry.counter "search.repos_returned"

(** Union of both engines' top-k, preserving best-rank order
    (Section 4.1 takes the union of top-40 of GitHub and Bing). *)
let search index ?(k = 40) query : Repo.t list =
  Telemetry.with_span "search.search"
    ~attrs:[ ("query", Telemetry.S query); ("k", Telemetry.I k) ]
    (fun () ->
      let a = top_k index Github_api ~k query in
      let b = top_k index Bing_api ~k query in
      let seen = Hashtbl.create 32 in
      let results =
        List.filter
          (fun (r : Repo.t) ->
            if Hashtbl.mem seen r.Repo.repo_name then false
            else begin
              Hashtbl.add seen r.Repo.repo_name ();
              true
            end)
          (a @ b)
      in
      Telemetry.incr m_queries;
      Telemetry.incr ~by:(List.length results) m_repos_returned;
      Telemetry.add_attr "repos" (Telemetry.I (List.length results));
      results)
