(** Static analysis of repositories (Section 4.2): walk every parsed
    file and enumerate the functions invocable with one input string
    under the supported invocation plans, including class-based
    variants, implicit-input functions (argv / stdin / file),
    script-level snippets with hard-coded constants, whole-file scripts
    reading argv or stdin, and multi-parameter functions fed by
    splitting.

    Also the bridge to {!Staticcheck}: per-candidate pre-trace
    verdicts (input-flow rankability + step-budget hints) and per-repo
    lint diagnostics, both memoized. *)

val candidates_of_repo : Repo.t -> Candidate.t list
(** Candidates from every file that parses.  Files that fail to parse
    are skipped (counted in the [analyzer.files_skipped] telemetry
    counter); a repository where no file parses yields []. *)

type verdict = {
  rankable : bool;
      (** [false] = the input provably cannot reach any branch
          condition, return value, or raise under this invocation
          plan, so the candidate's trace is input-independent and it
          can never produce a discriminating pattern.  Over-approximate
          (sound): [true] whenever the analysis is unsure. *)
  budget_hint : int option;
      (** a reduced interpreter [max_steps] for candidates whose entry
          function provably spins in a constant-condition loop *)
}

val verdict : Candidate.t -> verdict
(** Static pre-trace verdict for one candidate.  Taint analyses are
    memoized per (repository, input channel); verdicts per candidate.
    Thread-safe. *)

val absint_facts : Candidate.t -> Absint.Domain.facts
(** Abstract-interpretation facts (purity, step bound, symbolic
    summary) for a candidate's entry function.  Computed only for the
    [Direct] invocation plan and only when the function name is bound
    exactly once across the repository (so the analyzed AST is
    provably the function the driver invokes); everything else gets
    {!Absint.Domain.unknown_facts}.  Memoized; thread-safe. *)

val repo_diagnostics : Repo.t -> Staticcheck.Diag.t list
(** All lint diagnostics for a repository: E100 parse errors for
    files that fail to parse plus the five {!Staticcheck} passes over
    the files that do, in stable (file, line, code) order.  Memoized;
    thread-safe. *)
