(** The repository model of the simulated open-source ecosystem.

    A repository has a name, a description, a README, some MiniScript
    source files, and a star count (used as a weak popularity prior by
    the search engine, like real code search does).  [truth] records
    which benchmark types each function *intends* to process — this is
    the ground truth behind the human intention score I(F) of
    Section 8.1; it is never visible to the synthesis pipeline itself. *)

type file = { path : string; source : string }

type t = {
  repo_name : string;  (** "owner/project" *)
  description : string;
  readme : string;
  stars : int;
  files : file list;
  truth : (string * string list) list;
      (** function name -> benchmark type ids it intends to process.
          Script-level candidates use the pseudo-name "<script:path>". *)
}

let make ?(readme = "") ?(stars = 10) ?(truth = []) repo_name description
    files =
  { repo_name; description; readme; stars; files; truth }

(** Does [func_name] (as reported by the analyzer) intend to process
    benchmark type [type_id]?  This is I(F) in the evaluation metric. *)
let intends repo ~func_name ~type_id =
  match List.assoc_opt func_name repo.truth with
  | Some types -> List.mem type_id types
  | None -> false

let parse_all repo : (Minilang.Ast.program list, string) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest ->
      (match Minilang.Parser.parse ~file:f.path f.source with
       | prog -> go (prog :: acc) rest
       | exception Minilang.Parser.Parse_error (msg, line) ->
         Error (Printf.sprintf "%s:%d: %s" f.path line msg)
       | exception Minilang.Lexer.Lex_error (msg, line) ->
         Error (Printf.sprintf "%s:%d: lex: %s" f.path line msg))
  in
  go [] repo.files

(* Parse results are cached per repository: the analyzer and the
   execution driver both re-load modules many times.  The key includes
   a content hash so distinct repositories sharing a name (as happens
   in tests) do not collide.  A mutex guards the table because the
   execution engine (lib/exec) traces candidates from several domains;
   parsing itself happens outside the lock, so two domains may parse
   the same repository once concurrently — benign, the results are
   equal and the first insert wins. *)
let parse_cache :
    ( string * int,
      Minilang.Ast.program list * (string * int * string) list )
    Hashtbl.t =
  Hashtbl.create 64

let parse_cache_lock = Mutex.create ()

let parse_each repo =
  let key = (repo.repo_name, Hashtbl.hash repo.files) in
  Mutex.lock parse_cache_lock;
  match Hashtbl.find_opt parse_cache key with
  | Some result ->
    Mutex.unlock parse_cache_lock;
    result
  | None ->
    Mutex.unlock parse_cache_lock;
    let progs, errs =
      List.fold_left
        (fun (progs, errs) f ->
          match Minilang.Parser.parse ~file:f.path f.source with
          | prog -> (prog :: progs, errs)
          | exception Minilang.Parser.Parse_error (msg, line) ->
            (progs, (f.path, line, msg) :: errs)
          | exception Minilang.Lexer.Lex_error (msg, line) ->
            (progs, (f.path, line, "lex: " ^ msg) :: errs))
        ([], []) repo.files
    in
    let result = (List.rev progs, List.rev errs) in
    Mutex.lock parse_cache_lock;
    if not (Hashtbl.mem parse_cache key) then Hashtbl.add parse_cache key result;
    Mutex.unlock parse_cache_lock;
    result

let programs repo =
  match parse_each repo with
  | progs, [] -> Some progs
  | _, _ :: _ -> None
