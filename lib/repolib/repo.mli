(** The repository model of the simulated open-source ecosystem. *)

type file = { path : string; source : string }

type t = {
  repo_name : string;  (** "owner/project" *)
  description : string;
  readme : string;
  stars : int;
  files : file list;
  truth : (string * string list) list;
      (** function name → benchmark type ids it intends to process;
          this is the ground truth behind the human intention score
          I(F) of Section 8.1 and is never visible to the pipeline *)
}

val make :
  ?readme:string ->
  ?stars:int ->
  ?truth:(string * string list) list ->
  string ->
  string ->
  file list ->
  t

val intends : t -> func_name:string -> type_id:string -> bool
(** I(F): does the named function intend to process the type? *)

val parse_all : t -> (Minilang.Ast.program list, string) result

val parse_each : t -> Minilang.Ast.program list * (string * int * string) list
(** Cached per-file parse: the programs that parse, plus a
    [(path, line, message)] record for each file that does not.  The
    analyzer and driver use this to keep working candidates from
    repositories with one broken file. *)

val programs : t -> Minilang.Ast.program list option
(** Cached parse of all files; [None] when any file fails to parse
    (the paper keeps only repositories that compile). *)
