(** Static analysis of repositories to find candidate functions
    (Section 4.2).

    Like the paper's AST pass over crawled .py files, this walks every
    parsed MiniScript file and enumerates functions that can be invoked
    with one input string under one of the supported invocation plans.
    Functions that later fail to execute on a probe example are weeded
    out by {!Driver.probe}. *)

open Minilang.Ast

(* Does a block (transitively) reference a given variable name? *)
let block_uses_name name (body : block) =
  let rec expr_uses (e : expr) =
    match e with
    | Var n -> n = name
    | Int _ | Float _ | Str _ | Bool _ | None_lit -> false
    | Binop (_, a, b, _) -> expr_uses a || expr_uses b
    | Unop (_, a) -> expr_uses a
    | Call (f, args, _) -> expr_uses f || List.exists expr_uses args
    | Method (o, _, args, _) -> expr_uses o || List.exists expr_uses args
    | Attr (o, n) -> expr_uses o || (n = name && false)
    | Index (a, b, _) -> expr_uses a || expr_uses b
    | Slice (a, lo, hi, _) ->
      expr_uses a
      || (match lo with Some e -> expr_uses e | None -> false)
      || (match hi with Some e -> expr_uses e | None -> false)
    | List_lit es | Tuple_lit es -> List.exists expr_uses es
    | Dict_lit kvs -> List.exists (fun (k, v) -> expr_uses k || expr_uses v) kvs
    | Cond (c, a, b, _) -> expr_uses c || expr_uses a || expr_uses b
  in
  let uses = ref false in
  let check_stmt () s =
    match s with
    | Expr_stmt (e, _) -> if expr_uses e then uses := true
    | Assign (_, e, _) | Aug_assign (_, _, e, _) -> if expr_uses e then uses := true
    | If (arms, _) ->
      List.iter (fun (c, _, _) -> if expr_uses c then uses := true) arms
    | While (c, _, _) -> if expr_uses c then uses := true
    | For (_, e, _, _) -> if expr_uses e then uses := true
    | Return (Some e, _) | Raise (Some e, _) -> if expr_uses e then uses := true
    | Return (None, _) | Raise (None, _) | Try _ | Break _ | Continue _
    | Pass | Func_def _ | Class_def _ | Global _ -> ()
  in
  ignore (fold_stmts check_stmt () body);
  !uses

(* Does the function's body call a given builtin (input/open/argv use)? *)
let body_calls_builtin bname (body : block) =
  let found = ref false in
  let rec expr_scan (e : expr) =
    (match e with
     | Call (Var n, _, _) when n = bname -> found := true
     | Method (Var "sys", "argv", _, _) -> ()
     | _ -> ());
    match e with
    | Binop (_, a, b, _) -> expr_scan a; expr_scan b
    | Unop (_, a) -> expr_scan a
    | Call (f, args, _) -> expr_scan f; List.iter expr_scan args
    | Method (o, _, args, _) -> expr_scan o; List.iter expr_scan args
    | Attr (o, _) -> expr_scan o
    | Index (a, b, _) -> expr_scan a; expr_scan b
    | Slice (a, lo, hi, _) ->
      expr_scan a;
      Option.iter expr_scan lo;
      Option.iter expr_scan hi
    | List_lit es | Tuple_lit es -> List.iter expr_scan es
    | Dict_lit kvs -> List.iter (fun (k, v) -> expr_scan k; expr_scan v) kvs
    | Cond (c, a, b, _) -> expr_scan c; expr_scan a; expr_scan b
    | Var _ | Int _ | Float _ | Str _ | Bool _ | None_lit -> ()
  in
  let scan_stmt () s =
    match s with
    | Expr_stmt (e, _) -> expr_scan e
    | Assign (_, e, _) | Aug_assign (_, _, e, _) -> expr_scan e
    | If (arms, _) -> List.iter (fun (c, _, _) -> expr_scan c) arms
    | While (c, _, _) -> expr_scan c
    | For (_, e, _, _) -> expr_scan e
    | Return (Some e, _) | Raise (Some e, _) -> expr_scan e
    | Return (None, _) | Raise (None, _) | Try _ | Break _ | Continue _
    | Pass | Func_def _ | Class_def _ | Global _ -> ()
  in
  ignore (fold_stmts scan_stmt () body);
  !found

(* Does the function's body pass its (sole) parameter to open()? *)
let body_opens_param pname (body : block) =
  let found = ref false in
  let scan_stmt () s =
    let rec expr_scan (e : expr) =
      (match e with
       | Call (Var "open", Var n :: _, _) when n = pname -> found := true
       | _ -> ());
      match e with
      | Binop (_, a, b, _) -> expr_scan a; expr_scan b
      | Unop (_, a) -> expr_scan a
      | Call (f, args, _) -> expr_scan f; List.iter expr_scan args
      | Method (o, _, args, _) -> expr_scan o; List.iter expr_scan args
      | Attr (o, _) -> expr_scan o
      | Index (a, b, _) -> expr_scan a; expr_scan b
      | Slice (a, lo, hi, _) ->
        expr_scan a; Option.iter expr_scan lo; Option.iter expr_scan hi
      | List_lit es | Tuple_lit es -> List.iter expr_scan es
      | Dict_lit kvs -> List.iter (fun (k, v) -> expr_scan k; expr_scan v) kvs
      | Cond (c, a, b, _) -> expr_scan c; expr_scan a; expr_scan b
      | Var _ | Int _ | Float _ | Str _ | Bool _ | None_lit -> ()
    in
    match s with
    | Expr_stmt (e, _) -> expr_scan e
    | Assign (_, e, _) | Aug_assign (_, _, e, _) -> expr_scan e
    | If (arms, _) -> List.iter (fun (c, _, _) -> expr_scan c) arms
    | While (c, _, _) -> expr_scan c
    | For (_, e, _, _) -> expr_scan e
    | Return (Some e, _) | Raise (Some e, _) -> expr_scan e
    | Return (None, _) | Raise (None, _) | Try _ | Break _ | Continue _
    | Pass | Func_def _ | Class_def _ | Global _ -> ()
  in
  ignore (fold_stmts scan_stmt () body);
  !found

let required_params (f : func) =
  List.filter (fun p -> not (List.mem_assoc p f.defaults)) f.params

(** Extract every candidate from one repository.  Files that fail to
    parse are skipped (counted in [analyzer.files_skipped]); candidates
    from the repository's parsable files are kept, mirroring the paper's
    "execute whatever compiles" behaviour.  A repository where *no* file
    parses still counts as unparseable and yields []. *)
let m_repos_analyzed = Telemetry.counter "analyzer.repos_analyzed"
let m_candidates_found = Telemetry.counter "analyzer.candidates_found"
let m_unparseable = Telemetry.counter "analyzer.unparseable_repos"
let m_files_skipped = Telemetry.counter "analyzer.files_skipped"

let candidates_of_repo (repo : Repo.t) : Candidate.t list =
  Telemetry.incr m_repos_analyzed;
  match Repo.parse_each repo with
  | [], [] -> []
  | [], _skipped ->
    Telemetry.incr ~by:(List.length _skipped) m_files_skipped;
    Telemetry.incr m_unparseable;
    []
  | progs, skipped ->
    if skipped <> [] then
      Telemetry.incr ~by:(List.length skipped) m_files_skipped;
    let acc = ref [] in
    let add file func_name invocation doc_text =
      acc :=
        { Candidate.repo; file; func_name; invocation; doc_text } :: !acc
    in
    List.iter
      (fun (prog : program) ->
        let file = prog.prog_file in
        let top_level_script_stmts = ref [] in
        List.iter
          (fun stmt ->
            match stmt with
            | Func_def f ->
              let req = required_params f in
              let doc = f.fname in
              (match req with
               | [ p ] ->
                 if body_opens_param p f.body then
                   add file f.fname (Candidate.Via_file f.fname) doc
                 else begin
                   add file f.fname Candidate.Direct doc
                 end
               | [] when f.params = [] || List.length f.defaults = List.length f.params ->
                 if block_uses_name "argv" f.body then
                   add file f.fname (Candidate.Via_argv f.fname) doc
                 else if body_calls_builtin "input" f.body then
                   add file f.fname (Candidate.Via_stdin f.fname) doc
               | [ _; _ ] ->
                 add file f.fname (Candidate.Split_call (f.fname, ',', 2)) doc;
                 add file f.fname (Candidate.Split_call (f.fname, ' ', 2)) doc
               | [ _; _; _ ] ->
                 add file f.fname (Candidate.Split_call (f.fname, ',', 3)) doc
               | _ -> ())
            | Class_def c ->
              let ctor = List.find_opt (fun m -> m.fname = "__init__") c.methods in
              let ctor_req =
                match ctor with
                | None -> []
                | Some init ->
                  (match required_params init with
                   | _self :: rest -> rest
                   | [] -> [])
              in
              List.iter
                (fun m ->
                  if m.fname <> "__init__" then
                    let mreq =
                      match required_params m with
                      | _self :: rest -> rest
                      | [] -> []
                    in
                    let doc = c.cname ^ "." ^ m.fname in
                    match (ctor_req, mreq) with
                    | [], [ _ ] ->
                      add file (c.cname ^ "." ^ m.fname)
                        (Candidate.Class_then_method (c.cname, m.fname))
                        doc
                    | [ _ ], [] ->
                      add file (c.cname ^ "." ^ m.fname)
                        (Candidate.Ctor_then_method (c.cname, m.fname))
                        doc
                    | _ -> ())
                c.methods
            | Assign (Tvar var, Str _, _) ->
              (* Hard-coded constant at script level: each such assignment
                 becomes a candidate (Appendix D.1, Listing 3). *)
              add file
                (Printf.sprintf "<script:%s#%s>" file var)
                (Candidate.Script_var (file, var))
                var
            | Expr_stmt _ | Assign _ | Aug_assign _ | If _ | While _
            | For _ | Return _ | Raise _ | Try _ | Break _ | Continue _
            | Pass | Global _ ->
              top_level_script_stmts := stmt :: !top_level_script_stmts)
          prog.prog_body;
        (* Script files with real top-level logic that read argv or
           input() can be run whole, feeding the example through those
           channels (Appendix D.1). *)
        let script_stmts = List.rev !top_level_script_stmts in
        if script_stmts <> [] then begin
          if block_uses_name "argv" script_stmts then
            add file
              (Printf.sprintf "<script:%s#argv>" file)
              (Candidate.Script_argv file) "main script argv";
          if body_calls_builtin "input" script_stmts then
            add file
              (Printf.sprintf "<script:%s#stdin>" file)
              (Candidate.Script_stdin file) "main script stdin"
        end)
      progs;
    Telemetry.incr ~by:(List.length !acc) m_candidates_found;
    List.rev !acc

(* ------------------------------------------------------------------ *)
(* Static pre-trace verdicts (lib/staticcheck wiring)                  *)
(* ------------------------------------------------------------------ *)

type verdict = {
  rankable : bool;
      (** false = input provably cannot reach any branch condition,
          return value, or raise under this invocation plan, so the
          candidate's trace is input-independent and it can never rank *)
  budget_hint : int option;
      (** a smaller [max_steps] for candidates whose entry function is a
          proven constant-condition spin loop *)
}

let repo_key (r : Repo.t) = (r.Repo.repo_name, Hashtbl.hash r.Repo.files)

(* Taint analyses are memoized per (repository, input-channel config):
   every candidate of a repo under the same invocation channel shares
   one call-graph fixpoint.  Same locking discipline as the parse
   cache: analysis runs outside the lock, first insert wins. *)
let taint_cache : (string * int * string, Staticcheck.Taint.t) Hashtbl.t =
  Hashtbl.create 64

let taint_lock = Mutex.create ()

let taint_for (repo : Repo.t) ~(channel : Staticcheck.Taint.channel)
    ?global_source () : Staticcheck.Taint.t =
  let tag =
    match (channel, global_source) with
    | Staticcheck.Taint.Chan_none, None -> "none"
    | Staticcheck.Taint.Chan_none, Some v -> "var:" ^ v
    | Staticcheck.Taint.Chan_stdin, _ -> "stdin"
    | Staticcheck.Taint.Chan_argv, _ -> "argv"
    | Staticcheck.Taint.Chan_file, _ -> "file"
  in
  let name, h = repo_key repo in
  let key = (name, h, tag) in
  Mutex.lock taint_lock;
  match Hashtbl.find_opt taint_cache key with
  | Some t ->
    Mutex.unlock taint_lock;
    t
  | None ->
    Mutex.unlock taint_lock;
    let progs, _ = Repo.parse_each repo in
    let env = Staticcheck.Env.build progs in
    let t = Staticcheck.Taint.analyze ?global_source ~channel env progs in
    Mutex.lock taint_lock;
    if not (Hashtbl.mem taint_cache key) then Hashtbl.add taint_cache key t;
    Mutex.unlock taint_lock;
    t

(* The entry function's AST, for loop-budget inference.  Candidates are
   extracted per file, so prefer the candidate's own file and fall back
   to any file (Driver.find_prog resolves names repo-wide too). *)
let find_func (repo : Repo.t) ~file name : func option =
  let progs, _ = Repo.parse_each repo in
  let in_prog (p : program) =
    List.find_map
      (function Func_def f when f.fname = name -> Some f | _ -> None)
      p.prog_body
  in
  match List.find_opt (fun (p : program) -> p.prog_file = file) progs with
  | Some p ->
    (match in_prog p with
     | Some f -> Some f
     | None -> List.find_map in_prog progs)
  | None -> List.find_map in_prog progs

let verdict_cache : (string * int, verdict) Hashtbl.t = Hashtbl.create 256
let verdict_lock = Mutex.create ()

let compute_verdict (c : Candidate.t) : verdict =
  let repo = c.Candidate.repo in
  let hint name =
    Option.bind (find_func repo ~file:c.Candidate.file name)
      Staticcheck.Loops.budget_hint
  in
  match c.Candidate.invocation with
  | Candidate.Direct ->
    let t = taint_for repo ~channel:Staticcheck.Taint.Chan_none () in
    {
      rankable =
        Staticcheck.Taint.func_rankable t ~tainted_args:true
          c.Candidate.func_name;
      budget_hint = hint c.Candidate.func_name;
    }
  | Candidate.Split_call (fname, _, _) ->
    (* The driver itself raises ValueError when the input does not
       split into the expected arity — an input-dependent traced event
       that happens before the function runs, so a Split_call candidate
       can rank even when the function ignores its arguments.  Never
       prunable. *)
    { rankable = true; budget_hint = hint fname }
  | Candidate.Class_then_method (cls, meth) ->
    let t = taint_for repo ~channel:Staticcheck.Taint.Chan_none () in
    {
      rankable = Staticcheck.Taint.method_rankable t ~cls ~meth;
      budget_hint = None;
    }
  | Candidate.Ctor_then_method (cls, meth) ->
    let t = taint_for repo ~channel:Staticcheck.Taint.Chan_none () in
    {
      rankable = Staticcheck.Taint.ctor_method_rankable t ~cls ~meth;
      budget_hint = None;
    }
  | Candidate.Via_argv fname ->
    let t = taint_for repo ~channel:Staticcheck.Taint.Chan_argv () in
    {
      rankable = Staticcheck.Taint.func_rankable t ~tainted_args:false fname;
      budget_hint = hint fname;
    }
  | Candidate.Via_stdin fname ->
    let t = taint_for repo ~channel:Staticcheck.Taint.Chan_stdin () in
    {
      rankable = Staticcheck.Taint.func_rankable t ~tainted_args:false fname;
      budget_hint = hint fname;
    }
  | Candidate.Via_file fname ->
    let t = taint_for repo ~channel:Staticcheck.Taint.Chan_file () in
    {
      (* The file *path* argument is untainted; the content read back
         through it is the input. *)
      rankable = Staticcheck.Taint.func_rankable t ~tainted_args:false fname;
      budget_hint = hint fname;
    }
  | Candidate.Script_var (path, var) ->
    let t =
      taint_for repo ~channel:Staticcheck.Taint.Chan_none ~global_source:var ()
    in
    { rankable = Staticcheck.Taint.script_rankable t path; budget_hint = None }
  | Candidate.Script_argv path ->
    let t = taint_for repo ~channel:Staticcheck.Taint.Chan_argv () in
    { rankable = Staticcheck.Taint.script_rankable t path; budget_hint = None }
  | Candidate.Script_stdin path ->
    let t = taint_for repo ~channel:Staticcheck.Taint.Chan_stdin () in
    { rankable = Staticcheck.Taint.script_rankable t path; budget_hint = None }

let verdict (c : Candidate.t) : verdict =
  (* Candidate.id is unique within a repo snapshot; add the content
     hash so test repos reusing names do not collide. *)
  let key = (Candidate.id c, Hashtbl.hash c.Candidate.repo.Repo.files) in
  Mutex.lock verdict_lock;
  match Hashtbl.find_opt verdict_cache key with
  | Some v ->
    Mutex.unlock verdict_lock;
    v
  | None ->
    Mutex.unlock verdict_lock;
    let v = compute_verdict c in
    Mutex.lock verdict_lock;
    if not (Hashtbl.mem verdict_cache key) then Hashtbl.add verdict_cache key v;
    Mutex.unlock verdict_lock;
    v

(* ------------------------------------------------------------------ *)
(* Abstract-interpretation facts (lib/absint wiring)                   *)
(* ------------------------------------------------------------------ *)

module StrSet = Staticcheck.Env.StrSet

let rec target_binds name = function
  | Tvar n -> n = name
  | Ttuple ts -> List.exists (target_binds name) ts
  | Tindex _ | Tattr _ -> false

(* The absint proofs tie a candidate's AST to the function the driver
   will invoke at runtime by *name*.  That link is only sound when the
   name is bound exactly once across the repository: one top-level
   [def] (in any file's top-level control flow), no other top-level
   rebinding (assignment, for-target, class, try-binder), and no
   [global] declaration of it anywhere that could rebind the module
   slot from inside a call.  Anything ambiguous → [None]. *)
let unique_toplevel_func (progs : program list) name : func option =
  let defs = ref [] and rebinds = ref 0 in
  let rec scan_top stmts =
    List.iter
      (fun s ->
        (match s with
         | Func_def f -> if f.fname = name then defs := f :: !defs
         | Class_def c -> if c.cname = name then incr rebinds
         | Assign (t, _, _) | Aug_assign (t, _, _, _) ->
           if target_binds name t then incr rebinds
         | For (t, _, _, _) -> if target_binds name t then incr rebinds
         | Global ns -> if List.mem name ns then incr rebinds
         | Try (_, handlers, _) ->
           List.iter
             (fun h ->
               let binds =
                 (match h.h_bind with Some b -> b = name | None -> false)
                 || (match h.h_filter with
                     | Some f
                       when not
                              (List.mem f
                                 Minilang.Interp.known_exception_kinds) ->
                       f = name
                     | _ -> false)
               in
               if binds then incr rebinds)
             handlers
         | _ -> ());
        match s with
        | If (arms, els) ->
          List.iter (fun (_, _, b) -> scan_top b) arms;
          Option.iter scan_top els
        | While (_, _, b) | For (_, _, b, _) -> scan_top b
        | Try (b, handlers, fin) ->
          scan_top b;
          List.iter (fun h -> scan_top h.h_body) handlers;
          Option.iter scan_top fin
        | _ -> ())
      stmts
  in
  List.iter (fun (p : program) -> scan_top p.prog_body) progs;
  let global_rebind = ref false in
  List.iter
    (fun (p : program) ->
      ignore
        (fold_stmts
           (fun () s ->
             match s with
             | Global ns when List.mem name ns -> global_rebind := true
             | _ -> ())
           () p.prog_body))
    progs;
  match !defs with
  | [ f ] when !rebinds = 0 && not !global_rebind -> Some f
  | _ -> None

let absint_cache : (string * int, Absint.Domain.facts) Hashtbl.t =
  Hashtbl.create 256

let absint_lock = Mutex.create ()

let compute_absint (c : Candidate.t) : Absint.Domain.facts =
  match c.Candidate.invocation with
  | Candidate.Direct -> (
    let progs, _ = Repo.parse_each c.Candidate.repo in
    match unique_toplevel_func progs c.Candidate.func_name with
    | Some f ->
      let env = Staticcheck.Env.build progs in
      let module_bindings =
        Hashtbl.fold
          (fun k _ acc -> StrSet.add k acc)
          env.Staticcheck.Env.funcs
          (Hashtbl.fold
             (fun k _ acc -> StrSet.add k acc)
             env.Staticcheck.Env.classes env.Staticcheck.Env.module_vars)
      in
      let lookup n = unique_toplevel_func progs n in
      Absint.Analyze.facts ~module_bindings ~lookup f
    | None -> Absint.Domain.unknown_facts)
  | _ ->
    (* Only the Direct plan feeds the input straight to the entry
       function; other plans add machinery the analyses don't model. *)
    Absint.Domain.unknown_facts

let absint_facts (c : Candidate.t) : Absint.Domain.facts =
  let key = (Candidate.id c, Hashtbl.hash c.Candidate.repo.Repo.files) in
  Mutex.lock absint_lock;
  match Hashtbl.find_opt absint_cache key with
  | Some v ->
    Mutex.unlock absint_lock;
    v
  | None ->
    Mutex.unlock absint_lock;
    let v = compute_absint c in
    Mutex.lock absint_lock;
    if not (Hashtbl.mem absint_cache key) then Hashtbl.add absint_cache key v;
    Mutex.unlock absint_lock;
    v

(* ------------------------------------------------------------------ *)
(* Repository lint                                                     *)
(* ------------------------------------------------------------------ *)

let diagnostics_cache : (string * int, Staticcheck.Diag.t list) Hashtbl.t =
  Hashtbl.create 64

let diagnostics_lock = Mutex.create ()

let repo_diagnostics (repo : Repo.t) : Staticcheck.Diag.t list =
  let key = repo_key repo in
  Mutex.lock diagnostics_lock;
  match Hashtbl.find_opt diagnostics_cache key with
  | Some ds ->
    Mutex.unlock diagnostics_lock;
    ds
  | None ->
    Mutex.unlock diagnostics_lock;
    let progs, skipped = Repo.parse_each repo in
    let parse_diags =
      List.map
        (fun (file, line, msg) ->
          Staticcheck.Check.parse_error_diag ~file ~line msg)
        skipped
    in
    let ds =
      List.sort Staticcheck.Diag.compare
        (parse_diags @ Staticcheck.Check.check_programs progs)
    in
    Mutex.lock diagnostics_lock;
    if not (Hashtbl.mem diagnostics_cache key) then
      Hashtbl.add diagnostics_cache key ds;
    Mutex.unlock diagnostics_lock;
    ds
