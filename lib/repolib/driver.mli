(** Execution driver: run a candidate on one input string under tracing
    and sandbox limits, with a freshly loaded module scope per run so
    state cannot leak between examples. *)

type outcome = Minilang.Interp.outcome =
  | Finished of Minilang.Value.t
  | Errored of string * string
  | Hit_limit of string
  | Deadline_exceeded of string

val default_config : Minilang.Interp.config

exception Infra_failure of string
(** The invocation machinery itself failed (callable not defined after
    module load), as opposed to the function failing on the input. *)

val load_scope : ?skip_file:string -> Repo.t -> Minilang.Value.scope option

val run :
  ?config:Minilang.Interp.config ->
  ?record_assigns:bool ->
  ?cancel:Minilang.Interp.cancel_token ->
  ?deadline_ns:int64 ->
  Candidate.t ->
  string ->
  Minilang.Interp.run_result
(** [cancel]/[deadline_ns] are threaded into the traced interpreter run
    of every invocation variant; an expired deadline yields a
    [Deadline_exceeded] outcome (see {!Minilang.Interp.run_traced}).
    @raise Infra_failure when the candidate cannot be invoked at all. *)

val executable : Candidate.t -> probe:string -> bool
(** The paper's "compilable and executable" filter: try the candidate on
    one probe input; reject it if the invocation machinery fails. *)

val config_with_hint :
  Minilang.Interp.config -> int option -> Minilang.Interp.config
(** [config] with [max_steps] shrunk to a static step-budget hint.
    Hints are clamped to at least 1 step — a non-positive hint would
    otherwise produce a config that can never execute a step. *)

val config_for :
  ?config:Minilang.Interp.config ->
  ?input_len:int ->
  Candidate.t ->
  Minilang.Interp.config
(** [config] (default {!default_config}) with [max_steps] shrunk using
    every available static proof: the loop pass's spin hint and the
    abstract interpreter's step bound ({!Analyzer.absint_facts}; the
    [a·len + b] termination bound applies when [input_len] is given).
    When both hints exist the effective [max_steps] is their
    *minimum* — each is individually a sound requirement, so the min
    is too.  Sound either way: a proven-terminating run finishes under
    the bound, and a proven spin hits the limit with an unchanged
    traced event set. *)

val run_safe :
  ?config:Minilang.Interp.config ->
  ?record_assigns:bool ->
  ?cancel:Minilang.Interp.cancel_token ->
  ?deadline_ns:int64 ->
  Candidate.t ->
  string ->
  Minilang.Interp.run_result
(** Like {!run} but converts {!Infra_failure} into an error outcome. *)
