(** Execution driver: run a candidate function on one input string under
    full tracing and sandbox limits (Sections 4.2 and 5.1).

    Each run uses a freshly loaded module scope, so state mutated by a
    previous execution cannot leak between examples — the equivalent of
    the paper running each instrumented function in its own process. *)

open Minilang

type outcome = Interp.outcome =
  | Finished of Value.t
  | Errored of string * string
  | Hit_limit of string
  | Deadline_exceeded of string

let default_config = { Interp.max_steps = 200_000; max_call_depth = 48 }

let lookup scope name = Value.scope_lookup scope name

exception Infra_failure of string
(** The invocation machinery itself failed (callable not defined, etc.),
    as opposed to the function failing on the input. *)

let m_runs = Telemetry.counter "driver.runs"
let m_infra_failures = Telemetry.counter "driver.infra_failures"
let m_probes = Telemetry.counter "driver.probes"
let m_rejected = Telemetry.counter "driver.rejected_unexecutable"
let m_scope_loads = Telemetry.counter "driver.scope_loads"
let m_scope_cache_hits = Telemetry.counter "driver.scope_cache_hits"

let rewrite_script_var ~var (prog : Ast.program) : Ast.program =
  let body =
    List.map
      (fun stmt ->
        match stmt with
        | Ast.Assign (Ast.Tvar v, Ast.Str _, pos) when v = var ->
          Ast.Assign (Ast.Tvar v, Ast.Var "__autotype_input__", pos)
        | s -> s)
      prog.Ast.prog_body
  in
  { prog with Ast.prog_body = body }

(* --- Loaded-scope reuse (VM engine only) -------------------------- *)

(* Re-loading a module scope on every run keeps state from leaking
   between examples, but for most corpus repositories the loaded scope
   is provably inert: no [global] statement anywhere (so calls can
   never write into module scope) and every module-level value is
   deeply immutable (so calls can never mutate state reachable from
   it).  Such scopes are safe to reuse across runs — observations are
   identical to a fresh load because nothing a run does is visible in
   the scope afterwards.  Reuse is gated on the VM engine so
   [AUTOTYPE_VM=off] remains a true per-run-reload oracle baseline,
   and script invocations (which execute INTO the scope) always
   reload.  Per-domain table: scopes are mutable structures and must
   not be shared across tracing domains. *)

let rec immutable_value (v : Value.t) =
  match v with
  | Value.Vint _ | Value.Vfloat _ | Value.Vbool _ | Value.Vstr _
  | Value.Vnone | Value.Vbuiltin _ | Value.Vfun _ | Value.Vclass _ ->
    true
  | Value.Vtuple vs -> List.for_all immutable_value vs
  | Value.Vlist _ | Value.Vdict _ | Value.Vobj _ | Value.Vbound _ -> false

let scope_reusable (progs : Ast.program list) (scope : Value.scope) =
  let has_global (p : Ast.program) =
    Ast.fold_stmts
      (fun acc s -> acc || match s with Ast.Global _ -> true | _ -> false)
      false p.Ast.prog_body
  in
  (not (List.exists has_global progs))
  && Hashtbl.fold
       (fun _ v acc -> acc && immutable_value v)
       scope.Value.vars true

type scope_entry = Reusable of Value.scope | Reload

(* Keyed by repo name, validated by physical identity of the file list:
   corpus [Repo.t] values are constructed once and reused, so [==] is a
   free equality — hashing the file contents (whole source strings)
   would cost more than a short run itself.  A same-named repo with a
   different file list (fuzzers rebuild repos per program) misses the
   identity check and reloads. *)
let scope_cache :
    ((string, Repo.file list * scope_entry) Hashtbl.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

(** Load every file of the repo into a fresh scope, untraced.  Load-time
    errors in individual files are tolerated, mirroring the paper's
    "execute whatever compiles" behaviour. *)
let load_fresh ?(skip_file = "") (repo : Repo.t) : Value.scope option =
  match Repo.parse_each repo with
  | [], _ -> None
  | progs, _skipped ->
    let progs =
      List.filter (fun (p : Ast.program) -> p.Ast.prog_file <> skip_file) progs
    in
    Telemetry.incr m_scope_loads;
    let scope, _errors = Interp.load_module ~config:default_config progs in
    Some scope

let load_scope ?(skip_file = "") (repo : Repo.t) : Value.scope option =
  if skip_file = "" && Interp.vm_enabled () then begin
    (* Consult the cache before even parsing: a hit costs one short
       string hash and a table probe — no parse-cache mutex, no file
       hashing, no program filtering. *)
    let tbl = Domain.DLS.get scope_cache in
    let key = repo.Repo.repo_name in
    match Hashtbl.find_opt tbl key with
    | Some (files, Reusable scope) when files == repo.Repo.files ->
      Telemetry.incr m_scope_cache_hits;
      Some scope
    | Some (files, Reload) when files == repo.Repo.files -> load_fresh repo
    | _ ->
      (match Repo.parse_each repo with
       | [], _ -> None
       | progs, _skipped ->
         Telemetry.incr m_scope_loads;
         let scope, _errors =
           Interp.load_module ~config:default_config progs
         in
         Hashtbl.replace tbl key
           ( repo.Repo.files,
             if scope_reusable progs scope then Reusable scope else Reload );
         Some scope)
  end
  else load_fresh ~skip_file repo

let run ?(config = default_config) ?(record_assigns = false) ?cancel
    ?deadline_ns (c : Candidate.t) (input : string) : Interp.run_result =
  Telemetry.incr m_runs;
  let fail_infra msg = raise (Infra_failure msg) in
  let find_prog file =
    match Repo.parse_each c.Candidate.repo with
    | [], _ -> fail_infra "repository does not parse"
    | progs, _ ->
      (match
         List.find_opt (fun (p : Ast.program) -> p.Ast.prog_file = file) progs
       with
       | Some p -> p
       | None -> fail_infra ("no such file " ^ file))
  in
  let with_scope ?skip_file k =
    match load_scope ?skip_file c.Candidate.repo with
    | Some scope -> k scope
    | None -> fail_infra "repository does not parse"
  in
  let call_named ctx scope name args =
    match lookup scope name with
    | Some callable -> Interp.call_callable ctx callable args
    | None -> fail_infra (Printf.sprintf "callable %s not defined" name)
  in
  match c.Candidate.invocation with
  | Candidate.Direct ->
    with_scope (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns (fun ctx ->
            call_named ctx scope c.Candidate.func_name [ Value.Vstr input ]))
  | Candidate.Split_call (fname, sep, k) ->
    with_scope (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns (fun ctx ->
            let parts =
              String.split_on_char sep input
              |> List.map String.trim
              |> List.filter (fun p -> p <> "")
            in
            if List.length parts <> k then
              Value.raise_error "ValueError"
                (Printf.sprintf "expected %d components" k)
            else
              call_named ctx scope fname
                (List.map (fun p -> Value.Vstr p) parts)))
  | Candidate.Class_then_method (cls, meth) ->
    with_scope (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns (fun ctx ->
            match lookup scope cls with
            | Some callable ->
              let obj = Interp.call_callable ctx callable [] in
              Interp.call_method ctx obj meth [ Value.Vstr input ]
                { Ast.file = "<invoke>"; line = 0 }
            | None -> fail_infra (Printf.sprintf "class %s not defined" cls)))
  | Candidate.Ctor_then_method (cls, meth) ->
    with_scope (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns (fun ctx ->
            match lookup scope cls with
            | Some callable ->
              let obj = Interp.call_callable ctx callable [ Value.Vstr input ] in
              Interp.call_method ctx obj meth []
                { Ast.file = "<invoke>"; line = 0 }
            | None -> fail_infra (Printf.sprintf "class %s not defined" cls)))
  | Candidate.Via_argv fname ->
    with_scope (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns
          ~argv:[ "prog.py"; input ]
          (fun ctx -> call_named ctx scope fname []))
  | Candidate.Via_stdin fname ->
    with_scope (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns ~stdin_line:input
          (fun ctx -> call_named ctx scope fname []))
  | Candidate.Via_file fname ->
    with_scope (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns
          ~virtual_files:[ ("input.txt", input) ]
          (fun ctx -> call_named ctx scope fname [ Value.Vstr "input.txt" ]))
  | Candidate.Script_var (path, var) ->
    let prog = rewrite_script_var ~var (find_prog path) in
    with_scope ~skip_file:path (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns (fun ctx ->
            Hashtbl.replace scope.Value.vars "__autotype_input__"
              (Value.Vstr input);
            Interp.exec_program ctx scope prog;
            Value.Vnone))
  | Candidate.Script_argv path ->
    let prog = find_prog path in
    with_scope ~skip_file:path (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns
          ~argv:[ "prog.py"; input ]
          (fun ctx ->
            Interp.exec_program ctx scope prog;
            Value.Vnone))
  | Candidate.Script_stdin path ->
    let prog = find_prog path in
    with_scope ~skip_file:path (fun scope ->
        Interp.run_traced ~config ~record_assigns ?cancel ?deadline_ns ~stdin_line:input
          (fun ctx ->
            Interp.exec_program ctx scope prog;
            Value.Vnone))

(** Try the candidate on one probe input; reject candidates whose
    invocation machinery does not even reach the function (the paper's
    "compilable and executable" filter). *)
let executable (c : Candidate.t) ~probe : bool =
  Telemetry.incr m_probes;
  match run c probe with
  | _result -> true
  | exception Infra_failure _ ->
    Telemetry.incr m_rejected;
    false

(** Apply a static step-budget hint to a config.  Hints are clamped to
    at least 1: a hint of 0 (or less) would pass the [budget <
    max_steps] guard and yield a config under which [tick] trips on the
    very first step — every run would misreport as [Hit_limit] before
    executing anything. *)
let config_with_hint (config : Interp.config) (hint : int option) :
    Interp.config =
  match hint with
  | Some budget when budget < config.Interp.max_steps ->
    { config with Interp.max_steps = max 1 budget }
  | Some _ | None -> config

(** Interpreter config for a candidate, shrinking [max_steps] using
    every static proof available:
    - the loop pass's spin hint ({!Analyzer.verdict}): the entry
      function provably reaches a constant-condition event-free loop,
      so any budget that covers the prefix traces identically;
    - the abstract interpreter's bound ({!Analyzer.absint_facts}): a
      proven [a·len + b] termination bound (usable when [input_len] is
      supplied) or a precise spin-prefix cost.

    The two hints can disagree — a candidate can be both a proven spin
    and have a tighter absint prefix cost, and a stale spin hint could
    otherwise override a proven termination bound.  The effective
    [max_steps] is defined as the *minimum* of the available hints
    (each is individually sound as an upper-requirement, so their min
    is too), clamped to at least 1 by {!config_with_hint}. *)
let config_for ?(config = default_config) ?input_len (c : Candidate.t) :
    Interp.config =
  let spin = (Analyzer.verdict c).Analyzer.budget_hint in
  let proved =
    Absint.Analyze.budget_hint ?input_len
      (Analyzer.absint_facts c).Absint.Domain.bound
  in
  let combined =
    match (spin, proved) with
    | Some a, Some b -> Some (min a b)
    | (Some _ as h), None | None, (Some _ as h) -> h
    | None, None -> None
  in
  config_with_hint config combined

(** Convenience used throughout the pipeline: run and swallow
    infrastructure failures into an error outcome. *)
let run_safe ?config ?record_assigns ?cancel ?deadline_ns c input :
    Interp.run_result =
  match run ?config ?record_assigns ?cancel ?deadline_ns c input with
  | r -> r
  | exception Infra_failure msg ->
    Telemetry.incr m_infra_failures;
    Telemetry.Flight.record ~kind:"infra_failure" msg;
    {
      Interp.outcome = Errored ("InfraError", msg);
      trace = [ Minilang.Trace.Exception "InfraError" ];
      steps_used = 0;
      printed = [];
    }
