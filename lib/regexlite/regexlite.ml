(** A small backtracking regular-expression engine.

    Supports the subset of syntax that appears in real-world
    type-validation code and in Potter's-Wheel-style inferred patterns:

    - literals, [.], escapes [\d \D \w \W \s \S], character classes
      [[a-z0-9_]] with negation [[^...]] and ranges,
    - grouping [( )], alternation [|],
    - quantifiers [* + ?] and bounded repetition [{m}] [{m,n}] [{m,}],
    - anchors [^] and [$].

    Used both by MiniScript's [re_match]/[re_search] builtins (mined code
    frequently validates with regexes, Section 8.2.2) and by the REGEX
    baseline of Section 9. *)

type node =
  | Lit of char
  | Any
  | Class of (char * char) list * bool  (** ranges, negated? *)
  | Star of node * bool  (** greedy flag reserved; always greedy here *)
  | Plus of node
  | Opt of node
  | Repeat of node * int * int option  (** {m,n}; None = unbounded *)
  | Seq of node list
  | Alt of node list
  | Group of node
  | Bol
  | Eol

exception Parse_error of string

(* Compiled form: the matcher never walks the surface AST.  Character
   classes become 256-byte membership tables (negation folded in), [+]
   is expanded to [g g*], and [Group] wrappers vanish — each saves
   per-character work or a per-visit allocation in the backtracking
   inner loop. *)
type cnode =
  | CLit of char
  | CAny
  | CClass of Bytes.t  (** 256-entry membership table *)
  | CStar of cnode
  | COpt of cnode
  | CRepeat of cnode * int * int option
  | CSeq of cnode array
  | CAlt of cnode array
  | CBol
  | CEol

(* Second lowering: a flat backtracking program executed with explicit
   integer stacks.  The CPS matcher over [cnode] allocates a closure
   per node visit (hundreds of words per match on interpreter hot
   paths); the program form allocates nothing per attempt.  Exploration
   order is identical by construction — a [RSplit] pushes exactly the
   alternative the CPS code would try second — so both executors return
   the same end offset on every input.  Bounded repetitions are
   unrolled; a pattern whose unrolling would exceed {!max_rprog} keeps
   [rprog = None] and takes the CPS path instead. *)
type rinstr =
  | RChar of char
  | RClass of Bytes.t
  | RAny
  | RBol
  | REol
  | RSplit of int * int  (** try first, push second as backtrack point *)
  | RJmp of int
  | RPushPos  (** push current position onto the aux stack *)
  | RProgress  (** pop aux; fail unless the position advanced past it *)
  | RScan of Bytes.t * int
      (** greedy star/repeat over a single character class: consume up
          to [max] class characters ([-1] = unbounded) in a tight loop,
          leaving one range-backtrack entry that retreats a character at
          a time — same exploration order as the unrolled splits, a
          fraction of the dispatch *)
  | RAccept

type t = {
  ast : node;
  source : string;
  prog : cnode;
  full_prog : cnode;  (** [prog] with [$] appended, for {!full_match} *)
  rprog : rinstr array option;
  full_rprog : rinstr array option;
  first : Bytes.t option;
      (** characters a match can start with; [None] when the pattern is
          nullable (can match the empty string), in which case no start
          position can be skipped *)
  anchored : bool;  (** every alternative begins with [^] *)
}

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let rec parse (pattern : string) : t =
  let n = String.length pattern in
  let pos = ref 0 in
  let peek () = if !pos < n then Some pattern.[!pos] else None in
  let advance () = incr pos in
  let eat c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Parse_error (Printf.sprintf "expected %C at %d" c !pos))
  in
  let escape_class c =
    match c with
    | 'd' -> Some ([ ('0', '9') ], false)
    | 'D' -> Some ([ ('0', '9') ], true)
    | 'w' -> Some ([ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ], false)
    | 'W' -> Some ([ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ], true)
    | 's' -> Some ([ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ], false)
    | 'S' -> Some ([ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ], true)
    | _ -> None
  in
  let parse_escape () =
    advance ();  (* consume backslash *)
    match peek () with
    | None -> raise (Parse_error "dangling backslash")
    | Some c ->
      advance ();
      (match escape_class c with
       | Some (ranges, neg) -> Class (ranges, neg)
       | None ->
         (match c with
          | 'n' -> Lit '\n'
          | 't' -> Lit '\t'
          | 'r' -> Lit '\r'
          | _ -> Lit c))
  in
  let parse_class () =
    eat '[';
    let negated =
      match peek () with
      | Some '^' -> advance (); true
      | _ -> false
    in
    let ranges = ref [] in
    let rec loop first =
      match peek () with
      | None -> raise (Parse_error "unterminated character class")
      | Some ']' when not first -> advance ()
      | Some c ->
        advance ();
        let c =
          if c = '\\' then begin
            match peek () with
            | Some e ->
              advance ();
              (match escape_class e with
               | Some (rs, false) ->
                 ranges := rs @ !ranges;
                 '\000'  (* sentinel: ranges already added *)
               | Some (_, true) ->
                 raise (Parse_error "negated escape inside class")
               | None ->
                 (match e with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c))
            | None -> raise (Parse_error "dangling backslash in class")
          end
          else c
        in
        if c <> '\000' then begin
          match peek () with
          | Some '-' when (match !pos + 1 < n with
                           | true -> pattern.[!pos + 1] <> ']'
                           | false -> false) ->
            advance ();
            (match peek () with
             | Some hi ->
               advance ();
               if hi < c then raise (Parse_error "inverted range");
               ranges := (c, hi) :: !ranges
             | None -> raise (Parse_error "unterminated range"))
          | _ -> ranges := (c, c) :: !ranges
        end;
        loop false
    in
    loop true;
    Class (List.rev !ranges, negated)
  in
  let parse_int () =
    let start = !pos in
    while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then raise (Parse_error "expected number in repetition");
    int_of_string (String.sub pattern start (!pos - start))
  in
  let rec parse_alt () =
    let first = parse_seq () in
    let rec loop acc =
      match peek () with
      | Some '|' ->
        advance ();
        loop (parse_seq () :: acc)
      | _ -> List.rev acc
    in
    match loop [ first ] with
    | [ single ] -> single
    | alts -> Alt alts
  and parse_seq () =
    let rec loop acc =
      match peek () with
      | None | Some '|' | Some ')' -> List.rev acc
      | Some _ -> loop (parse_quantified () :: acc)
    in
    match loop [] with
    | [ single ] -> single
    | items -> Seq items
  and parse_quantified () =
    let atom = parse_atom () in
    let rec apply atom =
      match peek () with
      | Some '*' -> advance (); apply (Star (atom, true))
      | Some '+' -> advance (); apply (Plus atom)
      | Some '?' -> advance (); apply (Opt atom)
      | Some '{' ->
        advance ();
        let m = parse_int () in
        let node =
          match peek () with
          | Some '}' -> advance (); Repeat (atom, m, Some m)
          | Some ',' ->
            advance ();
            (match peek () with
             | Some '}' -> advance (); Repeat (atom, m, None)
             | _ ->
               let hi = parse_int () in
               eat '}';
               if hi < m then raise (Parse_error "inverted repetition bounds");
               Repeat (atom, m, Some hi))
          | _ -> raise (Parse_error "malformed repetition")
        in
        apply node
      | _ -> atom
    in
    apply atom
  and parse_atom () =
    match peek () with
    | None -> raise (Parse_error "unexpected end of pattern")
    | Some '(' ->
      advance ();
      (* Ignore non-capturing marker. *)
      if !pos + 1 < n && pattern.[!pos] = '?' && pattern.[!pos + 1] = ':' then begin
        advance (); advance ()
      end;
      let inner = parse_alt () in
      eat ')';
      Group inner
    | Some '[' -> parse_class ()
    | Some '\\' -> parse_escape ()
    | Some '.' -> advance (); Any
    | Some '^' -> advance (); Bol
    | Some '$' -> advance (); Eol
    | Some ('*' | '+' | '?') ->
      raise (Parse_error "quantifier with nothing to repeat")
    | Some c -> advance (); Lit c
  in
  let ast = parse_alt () in
  if !pos <> n then raise (Parse_error "trailing characters in pattern");
  compile ast pattern

and compile ast pattern =
  let rec cn (node : node) : cnode =
    match node with
    | Lit c -> CLit c
    | Any -> CAny
    | Class (ranges, negated) ->
      let tbl = Bytes.make 256 (if negated then '\001' else '\000') in
      let mark = if negated then '\000' else '\001' in
      List.iter
        (fun (lo, hi) ->
          for c = Char.code lo to Char.code hi do
            Bytes.set tbl c mark
          done)
        ranges;
      CClass tbl
    | Star (g, _) -> CStar (cn g)
    | Plus g ->
      let cg = cn g in
      CSeq [| cg; CStar cg |]
    | Opt g -> COpt (cn g)
    | Repeat (g, lo, hi) -> CRepeat (cn g, lo, hi)
    | Seq items -> CSeq (Array.of_list (List.map cn items))
    | Alt alts -> CAlt (Array.of_list (List.map cn alts))
    | Group g -> cn g
    | Bol -> CBol
    | Eol -> CEol
  in
  let prog = cn ast in
  (* First-set and nullability, for the search skip loop.  [first_of]
     returns whether the node can match without consuming; along the
     way it marks every character that could be the first one consumed. *)
  let rec first_of node (tbl : Bytes.t) : bool =
    match node with
    | CLit c ->
      Bytes.set tbl (Char.code c) '\001';
      false
    | CAny ->
      Bytes.fill tbl 0 256 '\001';
      false
    | CClass cls ->
      for c = 0 to 255 do
        if Bytes.unsafe_get cls c <> '\000' then Bytes.set tbl c '\001'
      done;
      false
    | CBol | CEol -> true
    | CSeq arr ->
      let len = Array.length arr in
      let rec go i = i = len || (first_of arr.(i) tbl && go (i + 1)) in
      go 0
    | CAlt arr ->
      Array.fold_left
        (fun nullable a ->
          let nb = first_of a tbl in
          nullable || nb)
        false arr
    | CStar g | COpt g ->
      ignore (first_of g tbl : bool);
      true
    | CRepeat (g, lo, _) ->
      let nb = first_of g tbl in
      nb || lo = 0
  in
  let tbl = Bytes.make 256 '\000' in
  let nullable = first_of prog tbl in
  (* Leading-[^] detection: a pattern whose every alternative starts
     with [^] can only ever match at offset 0, so [search] needs a
     single attempt.  Conservative: [false] just means no shortcut. *)
  let rec leading_bol = function
    | CBol -> true
    | CSeq arr -> Array.length arr > 0 && leading_bol arr.(0)
    | CAlt arr -> Array.length arr > 0 && Array.for_all leading_bol arr
    | CRepeat (g, lo, _) -> lo > 0 && leading_bol g
    | _ -> false
  in
  let full_prog = CSeq [| prog; CEol |] in
  {
    ast;
    source = pattern;
    prog;
    full_prog;
    rprog = compile_rprog prog;
    full_rprog = compile_rprog full_prog;
    first = (if nullable then None else Some tbl);
    anchored = leading_bol prog;
  }

(* Lower a [cnode] to a flat program, or [None] when unrolling bounded
   repetitions would exceed [max_rprog] instructions (the CPS executor
   handles those without duplication). *)
and max_rprog = 4096

and compile_rprog (prog : cnode) : rinstr array option =
  let buf = ref (Array.make 64 RAccept) in
  let len = ref 0 in
  let emit i =
    if !len >= max_rprog then raise Exit;
    if !len = Array.length !buf then begin
      let bigger = Array.make (2 * !len) RAccept in
      Array.blit !buf 0 bigger 0 !len;
      buf := bigger
    end;
    !buf.(!len) <- i;
    incr len;
    !len - 1
  in
  let patch idx i = !buf.(idx) <- i in
  (* Single-character bodies (the dominant shape in mined detectors:
     [\d+], [[a-z0-9]{2,5}], [.*]) compile their repetition to [RScan]
     instead of an unrolled split loop.  Each iteration consumes exactly
     one character, so the progress guard is vacuous and greedy
     max-then-retreat order is the splits' order exactly. *)
  let scan_tbl = function
    | CClass t -> Some t
    | CLit c ->
      let t = Bytes.make 256 '\000' in
      Bytes.set t (Char.code c) '\001';
      Some t
    | CAny -> Some (Bytes.make 256 '\001')
    | _ -> None
  in
  let rec go node =
    match node with
    | CLit c -> ignore (emit (RChar c))
    | CClass t -> ignore (emit (RClass t))
    | CAny -> ignore (emit RAny)
    | CBol -> ignore (emit RBol)
    | CEol -> ignore (emit REol)
    | CSeq arr -> Array.iter go arr
    | CAlt arr ->
      let k = Array.length arr in
      let jmps = ref [] in
      Array.iteri
        (fun idx a ->
          if idx < k - 1 then begin
            let sp = emit (RSplit (0, 0)) in
            go a;
            jmps := emit (RJmp 0) :: !jmps;
            patch sp (RSplit (sp + 1, !len))
          end
          else go a)
        arr;
      List.iter (fun j -> patch j (RJmp !len)) !jmps
    | COpt g -> (
      match scan_tbl g with
      | Some tbl -> ignore (emit (RScan (tbl, 1)))
      | None ->
        let sp = emit (RSplit (0, 0)) in
        go g;
        patch sp (RSplit (sp + 1, !len)))
    | CStar g -> (
      match scan_tbl g with
      | Some tbl -> ignore (emit (RScan (tbl, -1)))
      | None ->
        (* Greedy loop; each iteration must consume, mirroring the CPS
           [j > i] guard. *)
        let l0 = emit (RSplit (0, 0)) in
        ignore (emit RPushPos);
        go g;
        ignore (emit RProgress);
        ignore (emit (RJmp l0));
        patch l0 (RSplit (l0 + 1, !len)))
    | CRepeat (g, lo, hi) -> (
      match scan_tbl g with
      | Some tbl -> (
        for _ = 1 to lo do
          go g
        done;
        match hi with
        | None -> ignore (emit (RScan (tbl, -1)))
        | Some h -> if h > lo then ignore (emit (RScan (tbl, h - lo))))
      | None ->
        (* The CPS guard is [j > i || count + 1 >= lo]: every mandatory
           iteration but the last must consume; optional iterations may
           match empty (an unbounded tail then spins down the fuel, same
           as the CPS executor). *)
        for count = 0 to lo - 1 do
          if count + 1 < lo then begin
            ignore (emit RPushPos);
            go g;
            ignore (emit RProgress)
          end
          else go g
        done;
        (match hi with
         | Some h ->
           let sps = ref [] in
           for _ = lo to h - 1 do
             sps := emit (RSplit (0, 0)) :: !sps;
             go g
           done;
           List.iter (fun sp -> patch sp (RSplit (sp + 1, !len))) !sps
         | None ->
           let l0 = emit (RSplit (0, 0)) in
           go g;
           ignore (emit (RJmp l0));
           patch l0 (RSplit (l0 + 1, !len))))
  in
  match
    go prog;
    ignore (emit RAccept)
  with
  | () -> Some (Array.sub !buf 0 !len)
  | exception Exit -> None

(* ------------------------------------------------------------------ *)
(* Matcher: CPS backtracking with a fuel bound to avoid pathological    *)
(* blow-ups on adversarial corpus patterns (sandboxing concern).        *)
(* ------------------------------------------------------------------ *)

exception Out_of_fuel

let default_fuel = 2_000_000

(* Per-domain scratch for the program executor: backtrack entries are
   (pc, pos, aux-depth) triples in one int array, [aux] holds the
   positions [RPushPos] saved.  Reused across calls; grown copies are
   kept.  The executor is not re-entrant, and never needs to be — a
   match runs no user code. *)
type rbufs = { mutable bt : int array; mutable aux : int array }

let rbufs_key : rbufs Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { bt = Array.make 192 0; aux = Array.make 64 0 })

(* Backtrack entries are (pc, pos, nad) triples.  A negative pc tags a
   range entry from [RScan]: pc is [-(continuation) - 1], pos is the
   next (longest untried) scan end, and the third slot packs the saved
   aux depth with the minimum scan end — retreating reuses the entry in
   place until the minimum is reached.  Positions and aux depths stay
   far below 2^31 in practice (inputs are cell values, depth is bounded
   by pattern nesting), so the packing never overflows a 63-bit int. *)
let exec_rprog ~fuel (prog : rinstr array) (s : string) (start : int) :
    int option =
  let n = String.length s in
  let b = Domain.DLS.get rbufs_key in
  let fuel = ref fuel in
  let pc = ref 0 in
  let pos = ref start in
  let nbt = ref 0 in
  let nad = ref 0 in
  let result = ref (-2) in
  (* -2 = running, -1 = failed *)
  let fail () =
    if !nbt = 0 then result := -1
    else begin
      let a = b.bt in
      let top = 3 * (!nbt - 1) in
      let tag = Array.unsafe_get a top in
      if tag >= 0 then begin
        decr nbt;
        pc := tag;
        pos := Array.unsafe_get a (top + 1);
        nad := Array.unsafe_get a (top + 2)
      end
      else begin
        let cur = Array.unsafe_get a (top + 1) in
        let packed = Array.unsafe_get a (top + 2) in
        pc := -tag - 1;
        pos := cur;
        nad := packed lsr 31;
        if cur > packed land 0x7FFF_FFFF then
          Array.unsafe_set a (top + 1) (cur - 1)
        else decr nbt
      end
    end
  in
  let push_bt tag p third =
    if (3 * !nbt) + 3 > Array.length b.bt then begin
      let bigger = Array.make (2 * Array.length b.bt) 0 in
      Array.blit b.bt 0 bigger 0 (3 * !nbt);
      b.bt <- bigger
    end;
    let a = b.bt in
    let top = 3 * !nbt in
    Array.unsafe_set a top tag;
    Array.unsafe_set a (top + 1) p;
    Array.unsafe_set a (top + 2) third;
    incr nbt
  in
  while !result = -2 do
    decr fuel;
    if !fuel <= 0 then raise Out_of_fuel;
    match Array.unsafe_get prog !pc with
    | RChar c ->
      if !pos < n && String.unsafe_get s !pos = c then begin
        incr pos;
        incr pc
      end
      else fail ()
    | RClass tbl ->
      if
        !pos < n
        && Bytes.unsafe_get tbl (Char.code (String.unsafe_get s !pos)) <> '\000'
      then begin
        incr pos;
        incr pc
      end
      else fail ()
    | RAny ->
      if !pos < n then begin
        incr pos;
        incr pc
      end
      else fail ()
    | RBol -> if !pos = 0 then incr pc else fail ()
    | REol -> if !pos = n then incr pc else fail ()
    | RSplit (first, second) ->
      push_bt second !pos !nad;
      pc := first
    | RJmp t -> pc := t
    | RPushPos ->
      if !nad = Array.length b.aux then begin
        let bigger = Array.make (2 * !nad) 0 in
        Array.blit b.aux 0 bigger 0 !nad;
        b.aux <- bigger
      end;
      b.aux.(!nad) <- !pos;
      incr nad;
      incr pc
    | RProgress ->
      decr nad;
      if !pos > b.aux.(!nad) then incr pc else fail ()
    | RScan (tbl, max) ->
      let lo = !pos in
      let limit =
        if max < 0 then n
        else begin
          let l = lo + max in
          if l > n then n else l
        end
      in
      let j = ref lo in
      while
        !j < limit
        && Bytes.unsafe_get tbl (Char.code (String.unsafe_get s !j)) <> '\000'
      do
        incr j
      done;
      fuel := !fuel - (!j - lo);
      if !fuel <= 0 then raise Out_of_fuel;
      if !j > lo then
        push_bt (-(!pc + 1) - 1) (!j - 1) ((!nad lsl 31) lor lo);
      pos := !j;
      incr pc
    | RAccept -> result := !pos
  done;
  if !result >= 0 then Some !result else None

let exec_prog ~fuel (prog : cnode) (s : string) (start : int) : int option =
  let n = String.length s in
  let fuel = ref fuel in
  let result = ref 0 in
  (* k: int -> bool receives the position after the node matched. *)
  let rec m node i (k : int -> bool) : bool =
    decr fuel;
    if !fuel <= 0 then raise Out_of_fuel;
    match node with
    | CLit c -> i < n && String.unsafe_get s i = c && k (i + 1)
    | CAny -> i < n && k (i + 1)
    | CClass tbl ->
      i < n
      && Bytes.unsafe_get tbl (Char.code (String.unsafe_get s i)) <> '\000'
      && k (i + 1)
    | CBol -> i = 0 && k i
    | CEol -> i = n && k i
    | CSeq arr ->
      let len = Array.length arr in
      let rec seq idx i =
        if idx = len then k i
        else m (Array.unsafe_get arr idx) i (fun j -> seq (idx + 1) j)
      in
      seq 0 i
    | CAlt arr ->
      let len = Array.length arr in
      let rec alt idx =
        idx < len && (m (Array.unsafe_get arr idx) i k || alt (idx + 1))
      in
      alt 0
    | COpt g -> m g i k || k i
    | CStar g ->
      let rec star i = m g i (fun j -> j > i && star j) || k i in
      star i
    | CRepeat (g, lo, hi) ->
      let rec rep count i =
        let can_stop = count >= lo in
        let can_more = match hi with None -> true | Some h -> count < h in
        (can_more
         && m g i (fun j -> (j > i || count + 1 >= lo) && rep (count + 1) j))
        || (can_stop && k i)
      in
      rep 0 i
  in
  let found =
    try
      m prog start (fun j ->
          result := j;
          true)
    with Out_of_fuel -> false
  in
  if found then Some !result else None

(* Engine selection: the flat program when compilation fit under
   [max_rprog], the CPS walker otherwise.  Both explore alternatives in
   the same order, so results are identical; only fuel accounting
   differs (per instruction vs per node), and both bound the same
   pathological searches. *)
let exec ~fuel (re : t) ~(full : bool) (s : string) (start : int) : int option
    =
  match if full then re.full_rprog else re.rprog with
  | Some p -> exec_rprog ~fuel p s start
  | None -> exec_prog ~fuel (if full then re.full_prog else re.prog) s start

let match_at ?(fuel = default_fuel) (re : t) (s : string) (start : int) :
    int option =
  exec ~fuel re ~full:false s start

(** Does the pattern match a prefix of [s] starting at 0? (Python
    [re.match] semantics.) Returns the end offset of the match. *)
let match_prefix re s = match_at re s 0

(** Does the pattern match the entire string? (Python [re.fullmatch].)
    One anchored run of the precompiled [full_prog]: backtracking under
    the appended [$] finds a full-length match iff one exists. *)
let full_match re s =
  match exec ~fuel:default_fuel re ~full:true s 0 with
  | Some _ -> true
  | None -> false

(** First position at which the pattern matches (Python [re.search]).
    Returns (start, end) offsets.  Anchored patterns get a single
    attempt; otherwise start positions whose character cannot begin a
    match are skipped without entering the engine. *)
let search re s =
  let n = String.length s in
  if re.anchored then
    match exec ~fuel:default_fuel re ~full:false s 0 with
    | Some j -> Some (0, j)
    | None -> None
  else
    match re.first with
    | Some first ->
      (* Non-nullable: a match at [i] must consume [s.[i]], so [i = n]
         and positions outside the first-set cannot match. *)
      let rec go i =
        if i >= n then None
        else if
          Bytes.unsafe_get first (Char.code (String.unsafe_get s i)) = '\000'
        then go (i + 1)
        else
          match exec ~fuel:default_fuel re ~full:false s i with
          | Some j -> Some (i, j)
          | None -> go (i + 1)
      in
      go 0
    | None ->
      let rec go i =
        if i > n then None
        else
          match exec ~fuel:default_fuel re ~full:false s i with
          | Some j -> Some (i, j)
          | None -> go (i + 1)
      in
      go 0

let matches re s = full_match re s

(** Convenience: compile and fully match in one step. *)
let string_matches pattern s =
  let re = parse pattern in
  full_match re s

let source re = re.source
