(** Distractor repositories: executable code that is *not* about any
    benchmark type, or that collides with type keywords.

    These make the ranking problem real: a generic [int(s)] wrapper
    accepts every digit string (the paper's Fint discussion in
    Section 6), the "swift" programming-language repos hijack the SWIFT
    keyword (Appendix J), and string utilities execute happily on any
    input while revealing nothing. *)

let file = Corpus_util.file

let strutils =
  Repolib.Repo.make "pyutils/strutils"
    "Assorted string helpers: reverse, vowels, palindromes, slugs"
    ~stars:95
    ~truth:[]
    [
      file "strutils/basic.py"
        {|def reverse_string(s):
    out = ""
    i = len(s) - 1
    while i >= 0:
        out = out + s[i]
        i = i - 1
    return out

def count_vowels(s):
    count = 0
    for ch in s.lower():
        if ch in "aeiou":
            count = count + 1
    return count

def is_palindrome(s):
    s = s.lower().replace(" ", "")
    return s == reverse_string(s)

def slugify(s):
    out = ""
    for ch in s.lower():
        if ch.isalnum():
            out = out + ch
        elif ch == " " or ch == "-" or ch == "_":
            out = out + "-"
    return out
|};
    ]

let mathkit =
  Repolib.Repo.make "pyutils/mathkit"
    "Number parsing and small math utilities"
    ~stars:61
    ~truth:[]
    [
      file "mathkit/numbers.py"
        {|def parse_int_safe(s):
    # generic int parser: accepts any integer-looking string
    return int(s.strip())

def parse_number(s):
    s = s.strip()
    try:
        return int(s)
    except ValueError:
        return float(s)

def is_even_number(s):
    n = int(s)
    return n % 2 == 0

def digit_sum(s):
    total = 0
    for ch in s:
        if ch.isdigit():
            total = total + ord(ch) - 48
    return total
|};
    ]

let swift_lang =
  Repolib.Repo.make "swift-community/swift-examples"
    "Example programs for the Swift programming language"
    ~readme:
      "Learn Swift by example: optionals, generics, protocols. This \
       repository collects swift code snippets for beginners. swift \
       swift swift."
    ~stars:2100
    ~truth:[]
    [
      file "tools/build_helper.py"
        {|def count_swift_lines(source):
    # count non-empty lines of a swift source file passed as a string
    count = 0
    for line in source.split("\n"):
        if line.strip() != "":
            count = count + 1
    return count

def module_name(source):
    for line in source.split("\n"):
        line = line.strip()
        if line[:7] == "import ":
            return line[7:]
    return "main"
|};
    ]

let swift_lang_tutorial =
  Repolib.Repo.make "learn-swift/swift-tutorial"
    "A swift tutorial: swift language basics and swift playground setup"
    ~readme:"swift tutorial for ios developers. chapters on swift syntax."
    ~stars:860
    ~truth:[]
    [
      file "scripts/toc.py"
        {|def chapter_slug(title):
    out = ""
    for ch in title.lower():
        if ch.isalnum():
            out = out + ch
        elif ch == " ":
            out = out + "-"
    if out == "":
        raise ValueError("empty title")
    return out
|};
    ]

let csv_tools =
  Repolib.Repo.make "datatools/csv-peek"
    "Inspect delimited text: guess separators, count columns"
    ~stars:44
    ~truth:[]
    [
      file "csvpeek/sniff.py"
        {|def guess_separator(line):
    best = ","
    best_count = line.count(",")
    for sep in [";", "\t", "|"]:
        c = line.count(sep)
        if c > best_count:
            best = sep
            best_count = c
    return best

def column_count(line):
    sep = guess_separator(line)
    return len(line.split(sep))
|};
    ]

let temp_conv =
  Repolib.Repo.make "iot/temperature-convert"
    "Temperature unit conversions for sensor data"
    ~stars:12
    ~truth:[]
    [
      file "temp/convert.py"
        {|def f_to_c(reading):
    value = float(reading)
    return (value - 32.0) * 5.0 / 9.0

def c_to_f(reading):
    value = float(reading)
    return value * 9.0 / 5.0 + 32.0
|};
    ]

let word_stats =
  Repolib.Repo.make "nlp/word-stats"
    "Word counting and text statistics"
    ~stars:33
    ~truth:[]
    [
      file "wordstats/stats.py"
        {|def word_count(text):
    words = 0
    for w in text.split(" "):
        if w != "":
            words = words + 1
    return words

def average_word_length(text):
    total = 0
    words = 0
    for w in text.split(" "):
        if w != "":
            words = words + 1
            total = total + len(w)
    if words == 0:
        raise ValueError("no words")
    return total / words
|};
    ]

let audit_log =
  Repolib.Repo.make "devops/audit-log"
    "Write-only audit logging: record credit card, email address, IPv4 \
     and ISBN lookups"
    ~readme:
      "Append-only audit trail for lookup services. Values are recorded \
       verbatim and never inspected: the logger treats a credit card \
       number, an email address, an IPv4 address or an ISBN identically."
    ~stars:27
    ~truth:[]
    [
      file "auditlog/log.py"
        {|def log_value(value):
    # write-only: the value is recorded, never inspected
    print("AUDIT")
    print(value)
    return True

def log_event(message):
    line = str(message)
    print(line)
    return None
|};
    ]

(* ------------------------------------------------------------------ *)
(* The four complex-invocation repositories (Section 8.2.2): relevant  *)
(* code exists, but using it requires chained calls like               *)
(*   a = foo1(); b = foo2(a); c = foo3(b, s)                           *)
(* which the analyzer (like the paper's) does not support.             *)
(* ------------------------------------------------------------------ *)

let sql_parser =
  Repolib.Repo.make "dbtools/sql-parser"
    "SQL statement parser with dialect configuration"
    ~readme:"Parse SQL statements. Build a dialect, then a parser, then parse."
    ~stars:720
    ~truth:[ ("parse_with", [ "sql" ]) ]
    [
      file "sqlparser/parser.py"
        {|def make_dialect():
    return {"keywords": ["SELECT", "INSERT", "UPDATE", "DELETE", "FROM",
                         "WHERE", "SET", "VALUES", "INTO"]}

def make_parser(dialect):
    return {"dialect": dialect, "strict": True}

def parse_with(parser, statement):
    # requires: parser = make_parser(make_dialect())
    keywords = parser["dialect"]["keywords"]
    first = statement.strip().split(" ")[0].upper()
    if first not in keywords:
        raise ValueError("not a SQL statement")
    return {"verb": first}
|};
    ]

let taf_decoder =
  Repolib.Repo.make "aviation/taf-decoder"
    "Aviation TAF forecast decoding (needs station registry handle)"
    ~stars:88
    ~truth:[ ("decode_taf", [ "taf" ]) ]
    [
      file "taf/decode.py"
        {|def load_stations():
    return {"KSEA": "Seattle", "KLAX": "Los Angeles", "KJFK": "New York"}

def make_decoder(stations):
    return {"stations": stations}

def decode_taf(decoder, report):
    # requires: decoder = make_decoder(load_stations())
    if report[:4] != "TAF ":
        raise ValueError("not a TAF report")
    return {"station": report[4:8]}
|};
    ]

let isni_registry =
  Repolib.Repo.make "identifiers/isni-client"
    "ISNI name identifier client (session + resolver + verify)"
    ~stars:35
    ~truth:[ ("verify_isni", [ "isni" ]) ]
    [
      file "isni/client.py"
        {|def open_session():
    return {"endpoint": "isni.example.org"}

def make_resolver(session):
    return {"session": session}

def verify_isni(resolver, isni):
    # requires: resolver = make_resolver(open_session())
    compact = isni.replace(" ", "")
    if len(compact) != 16:
        raise ValueError("wrong length")
    return True
|};
    ]

let ric_feed =
  Repolib.Repo.make "marketdata/ric-feed"
    "Reuters instrument code feed client (handle + auth + query)"
    ~stars:52
    ~truth:[ ("query_ric", [ "reuters-ric" ]) ]
    [
      file "ric/feed.py"
        {|def connect():
    return {"host": "feed.example.com"}

def authenticate(conn):
    return {"conn": conn, "token": "abc123"}

def query_ric(session, ric):
    # requires: session = authenticate(connect())
    dot = ric.find(".")
    if dot <= 0:
        raise ValueError("RIC must contain an exchange suffix")
    return {"base": ric[:dot], "exchange": ric[dot + 1:]}
|};
    ]

let repos =
  [
    strutils; mathkit; swift_lang; swift_lang_tutorial; csv_tools;
    temp_conv; word_stats; audit_log; sql_parser; taf_decoder; isni_registry;
    ric_feed;
  ]
