(** Value ingestion shared by the CLI and the serving daemon.

    Columns and snapshot files used to be read by ad-hoc helpers inside
    the CLI, with two real bugs: blank lines were silently dropped from
    columns (so a column containing empty values was scored over the
    wrong denominator), and a snapshot file truncated mid-read (e.g. by
    a concurrent rewrite under [stats --watch]) leaked the channel and
    escaped with an uncaught [End_of_file].  This module is the single
    fixed implementation. *)

val read_column : string -> (string list, string) result
(** Read a column file, one value per line, {e preserving empty
    lines}: an empty value is a real value and counts in the column's
    denominator.  Only a trailing ['\r'] is stripped (CRLF input).
    Every empty value read bumps the [detect.empty_values] counter.
    [Error] on unreadable files instead of an exception. *)

val read_examples : string -> (string list, string) result
(** Read a positive-examples file: lines are trimmed and blank lines
    are skipped (the historical [read_lines] behavior, which is right
    for examples — a blank line in an examples file is formatting, not
    an example). *)

val read_channel : in_channel -> len:int -> (string, string) result
(** Read exactly [len] bytes; [Error] (not an escaped [End_of_file])
    when the stream ends early — the torn-read case where a file
    shrinks between [in_channel_length] and the read.  The channel is
    the caller's to close. *)

val read_file : string -> (string, string) result
(** Whole-file read.  The channel is closed on every path
    ([Fun.protect]); truncation and I/O errors come back as [Error]. *)
