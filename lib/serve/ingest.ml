(** Value ingestion shared by the CLI and the serving daemon (see
    ingest.mli for the contracts). *)

let m_empty_values = Telemetry.counter "detect.empty_values"

(* Strip one trailing '\r' so CRLF input reads like LF input; interior
   characters are untouched — a column value is served verbatim. *)
let chomp_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let fold_lines path (f : string -> string option) :
    (string list, string) result =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let rec go acc =
      match input_line ic with
      | line -> go (match f line with Some v -> v :: acc | None -> acc)
      | exception End_of_file -> Ok (List.rev acc)
      | exception Sys_error msg -> Error msg
    in
    go []

let read_column path =
  fold_lines path (fun line ->
      let v = chomp_cr line in
      if v = "" then Telemetry.incr m_empty_values;
      Some v)

let read_examples path =
  fold_lines path (fun line ->
      let v = String.trim line in
      if v = "" then None else Some v)

let read_channel ic ~len =
  if len < 0 then Error (Printf.sprintf "negative length %d" len)
  else
    match really_input_string ic len with
    | s -> Ok s
    | exception End_of_file ->
      Error
        (Printf.sprintf
           "truncated read: wanted %d bytes (file shrank mid-read?)" len)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (match read_channel ic ~len:(in_channel_length ic) with
     | (Ok _ | Error _) as r -> r
     | exception Sys_error msg -> Error msg)
