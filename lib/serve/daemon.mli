(** The serving daemon: a persistent process answering framed
    {!Protocol} requests over stdio, an inherited fd pair, or a Unix
    domain socket (DESIGN.md §15).

    {b Drain-cycle model.}  The loop blocks in [select], takes one
    bounded read per readable connection, drains every complete frame,
    and processes the whole batch before selecting again.  Admission
    control and request batching both live at this cycle granularity:

    - {e Admission:} at most [max_inflight] requests are admitted per
      cycle; the rest are answered immediately with an [overloaded]
      error instead of queueing unboundedly.  [shutdown] is exempt so
      the daemon can always be stopped.  The fault layer's [p_reject]
      ({!Faults.should_reject}) injects extra rejections for chaos
      testing.
    - {e Batching:} admitted validate/detect requests are grouped by
      type; each type costs one {!Model.Registry.find} (one LRU lock
      round-trip, one possible artifact load) and at most one
      {!Tablecorpus.Detect.serve_detector} construction per cycle, no
      matter how many requests named it.  Groups run through
      {!Exec.map} on the configured pool.  Responses are written back
      in arrival order per connection.

    Per-request work runs under a {!Telemetry.Context} — adopted from
    the request's [trace_id] when present, minted otherwise — so spans
    and flight events are attributable across the wire.  A request that
    raises is answered with an [internal] error; the daemon itself does
    not crash.

    The daemon keeps its own always-on served/rejected tallies for
    [health] responses: {!Telemetry} counters are gated on the global
    enable flag and a long-lived process must not depend on it. *)

type config = {
  registry : Model.Registry.t;
  pool : Exec.Pool.t option;  (** per-cycle type groups run on it *)
  max_inflight : int;  (** admission budget per drain cycle *)
}

val default_max_inflight : int
(** 64. *)

val config :
  ?pool:Exec.Pool.t -> ?max_inflight:int -> Model.Registry.t -> config
(** [max_inflight] is clamped to at least 1. *)

val run_fds :
  config -> in_fd:Unix.file_descr -> out_fd:Unix.file_descr -> int * int
(** Serve one connection on an fd pair (stdio, a pipe pair, or both
    ends of a socketpair) until EOF on [in_fd] or a [shutdown] request.
    The fds are the caller's to close.  Returns [(served, rejected)]
    totals. *)

val run_socket : config -> path:string -> int * int
(** Listen on a Unix domain socket, serving any number of concurrent
    connections, until a [shutdown] request arrives on any of them.  A
    stale socket file at [path] is unlinked first; the socket is
    unlinked again on the way out. *)
