(** Length-prefixed framing for the serving wire protocol
    (DESIGN.md §15).

    One frame is an ASCII decimal byte count, a newline, exactly that
    many payload bytes (one JSON object), and a terminating newline:

    {v 22\n{"id":1,"op":"health"}\n v}

    The explicit length makes payloads binary-safe (embedded newlines
    cannot split a frame) while keeping frames writable from a shell
    with [printf '%d\n%s\n'].  Requests and responses use the same
    framing in both directions. *)

val max_payload : int
(** 4 MiB.  A header declaring more poisons the stream: the bytes were
    never read, so no resynchronization is possible — drop the
    connection. *)

val encode : string -> string
(** Wrap a payload in a frame. *)

type item =
  | Payload of string  (** one complete well-formed frame's payload *)
  | Bad_header of string
      (** a non-numeric header line; the decoder resynced past it and
          the connection can continue *)
  | Bad_terminator
      (** the declared length was not followed by a newline; the
          decoder resynced at the next line boundary *)
  | Too_large of int
      (** header declared more than {!max_payload}; the decoder is
          poisoned and the connection must be dropped *)

type decoder
(** Incremental decoder over a byte stream; buffers partial frames
    between {!feed} calls. *)

val decoder : unit -> decoder
val feed : decoder -> string -> unit

val pending : decoder -> int
(** Unconsumed buffered bytes (diagnostics only). *)

val next : decoder -> item option
(** Extract the next item, or [None] when the buffer holds no complete
    frame (or the decoder is poisoned). *)
