(** Length-prefixed framing for the serving wire protocol (see
    frame.mli). *)

let max_payload = 4 * 1024 * 1024

let encode payload =
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

type item =
  | Payload of string
  | Bad_header of string  (** the offending header line, resynced past *)
  | Bad_terminator  (** payload not followed by '\n', resynced past *)
  | Too_large of int  (** declared length; the stream is poisoned *)

(* Unconsumed bytes live in [data] from offset [pos]; [feed] compacts
   before appending so the buffer never grows past one partial frame
   plus one read chunk.  [poisoned] latches after a [Too_large] header:
   the declared payload was never read, so everything after it would be
   misparsed as headers — the connection must be dropped. *)
type decoder = {
  mutable data : string;
  mutable pos : int;
  mutable poisoned : bool;
}

let decoder () = { data = ""; pos = 0; poisoned = false }

let feed dec chunk =
  if not dec.poisoned then begin
    let pending = String.length dec.data - dec.pos in
    if pending = 0 then dec.data <- chunk
    else dec.data <- String.sub dec.data dec.pos pending ^ chunk;
    dec.pos <- 0
  end

let pending dec = String.length dec.data - dec.pos

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let next dec : item option =
  if dec.poisoned then None
  else
    match String.index_from_opt dec.data dec.pos '\n' with
    | None -> None  (* incomplete header line *)
    | Some nl ->
      let header = String.sub dec.data dec.pos (nl - dec.pos) in
      if not (is_digits header) then begin
        dec.pos <- nl + 1;  (* resync at the next line boundary *)
        Some (Bad_header header)
      end
      else
        (* A digits-only header longer than 7 chars is > max_payload by
           construction; parsing it as int could even overflow. *)
        let len = if String.length header > 7 then max_int
          else int_of_string header
        in
        if len > max_payload then begin
          dec.poisoned <- true;
          Some (Too_large len)
        end
        else if String.length dec.data - (nl + 1) < len + 1 then None
          (* payload (+ terminator) not fully buffered yet *)
        else begin
          let payload = String.sub dec.data (nl + 1) len in
          let term = dec.data.[nl + 1 + len] in
          dec.pos <- nl + 1 + len + 1;
          if term = '\n' then Some (Payload payload)
          else begin
            (* Length lied: drop what we read and resync at the next
               line boundary so one bad frame costs one frame. *)
            (match String.index_from_opt dec.data dec.pos '\n' with
             | Some nl' -> dec.pos <- nl' + 1
             | None -> dec.pos <- String.length dec.data);
            Some Bad_terminator
          end
        end
