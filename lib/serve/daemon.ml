(** The serving daemon's event loop (see daemon.mli). *)

module Detect = Tablecorpus.Detect

let m_requests = Telemetry.counter "daemon.requests"
let m_overloaded = Telemetry.counter "daemon.overloaded"
let m_bad_frames = Telemetry.counter "daemon.bad_frames"
let m_batches = Telemetry.counter "daemon.batches"

type config = {
  registry : Model.Registry.t;
  pool : Exec.Pool.t option;
  max_inflight : int;
}

let default_max_inflight = 64

let config ?pool ?(max_inflight = default_max_inflight) registry =
  { registry; pool; max_inflight = max max_inflight 1 }

type conn = {
  c_in : Unix.file_descr;
  c_out : Unix.file_descr;
  c_dec : Frame.decoder;
  c_owned : bool;  (** accepted by us → we close it; caller's → we don't *)
  mutable c_eof : bool;
  mutable c_dead : bool;  (** write error or poisoned decoder *)
}

let conn ~owned ~in_fd ~out_fd =
  { c_in = in_fd; c_out = out_fd; c_dec = Frame.decoder (); c_owned = owned;
    c_eof = false; c_dead = false }

type t = {
  cfg : config;
  start_ns : int64;
  mutable served : int;  (** [ok:true] responses, all ops *)
  mutable rejected : int;  (** [overloaded] responses *)
  mutable stop : bool;
}

(* --- writing ------------------------------------------------------- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send c payload =
  if not c.c_dead then
    try write_all c.c_out (Frame.encode payload)
    with Unix.Unix_error _ -> c.c_dead <- true

(* --- per-cycle processing ------------------------------------------ *)

(* Outcome of classifying one inbound item: either a response computed
   on the spot (frame errors, rejections, registry-free ops) or a
   request deferred into this cycle's per-type batches. *)
type outcome =
  | Ready of string
  | Batched of Protocol.request

let ctx_of (rq : Protocol.request) =
  match rq.rq_trace_id with
  | Some trace_id -> { Telemetry.Context.trace_id; request_id = rq.rq_id }
  | None -> Telemetry.Context.root ~request_id:rq.rq_id ()

let budgets_of (rq : Protocol.request) =
  match (rq.rq_deadline_ms, rq.rq_value_budget_ms) with
  | None, None -> None
  | deadline_ms, value_budget_ms ->
    Some (Detect.budgets ?value_budget_ms ?deadline_ms ())

(* Answer one validate/detect request against an already-served model.
   Unbudgeted requests go through the detector (compiled fast path);
   budgeted ones take the interpreter route, where wall-clock budgets
   are enforceable. *)
let answer (entry : Model.Registry.entry) detector trace_id
    (rq : Protocol.request) =
  match (rq.rq_op, budgets_of rq) with
  | Protocol.Validate, None ->
    let det = Lazy.force detector in
    let verdicts =
      List.map
        (fun v ->
          if det.Detect.accepts v then Detect.V_valid else Detect.V_invalid)
        rq.rq_values
    in
    Protocol.ok_validate ~id:rq.rq_id ~trace_id ~verdicts
  | Protocol.Validate, Some budgets ->
    let verdicts = Detect.serve_values ~budgets entry.synthesis rq.rq_values in
    Protocol.ok_validate ~id:rq.rq_id ~trace_id ~verdicts
  | Protocol.Detect, None ->
    let det = Lazy.force detector in
    let f = Detect.fraction_accepted det.Detect.accepts rq.rq_values in
    let verdict =
      if f > Detect.detection_threshold then Detect.Column_match f
      else Detect.Column_no_match f
    in
    Protocol.ok_detect ~id:rq.rq_id ~trace_id ~verdict
  | Protocol.Detect, Some budgets ->
    let verdict = Detect.serve_column ~budgets entry.synthesis rq.rq_values in
    Protocol.ok_detect ~id:rq.rq_id ~trace_id ~verdict
  | (Protocol.Stats | Protocol.Health | Protocol.Shutdown), _ ->
    assert false  (* never batched *)

(* Serve one per-type batch: a single registry lookup (and at most one
   detector construction) covers every request for the type this cycle.
   Returns [(slot, response, ok)] — tallies are applied by the caller so
   this can run on a pool worker. *)
let serve_group t ((ty : string), members) =
  match Model.Registry.find t.cfg.registry ty with
  | Error err ->
    let detail = Model.Artifact.load_error_to_string err in
    List.map
      (fun (slot, (rq : Protocol.request)) ->
        let ctx = ctx_of rq in
        ( slot,
          Protocol.error ~id:rq.rq_id ~trace_id:ctx.trace_id
            ~code:"unknown_type" ~detail,
          false ))
      members
  | Ok entry ->
    let detector = lazy (Detect.serve_detector entry) in
    List.map
      (fun (slot, (rq : Protocol.request)) ->
        let ctx = ctx_of rq in
        Telemetry.Context.with_context ctx @@ fun () ->
        match answer entry detector ctx.trace_id rq with
        | resp -> (slot, resp, true)
        | exception exn ->
          ( slot,
            Protocol.error ~id:rq.rq_id ~trace_id:ctx.trace_id
              ~code:"internal" ~detail:(Printexc.to_string exn),
            false ))
      members

let overloaded ~id ~detail =
  Protocol.error ~id ~trace_id:0L ~code:"overloaded" ~detail

let health_response t ~id ~trace_id =
  Protocol.ok_health ~id ~trace_id
    ~models:(List.length (Model.Registry.keys t.cfg.registry))
    ~served:t.served ~rejected:t.rejected
    ~uptime_ms:
      (Int64.to_int
         (Int64.div
            (Int64.sub (Telemetry.now_ns ()) t.start_ns)
            1_000_000L))

(* Classify one inbound item under this cycle's admission budget.
   [inflight] counts requests admitted so far this cycle; [shutdown] is
   exempt from both admission and fault injection so the daemon can
   always be stopped. *)
let classify t inflight (c : conn) (item : Frame.item) : outcome =
  match item with
  | Frame.Bad_header h ->
    Telemetry.incr m_bad_frames;
    Ready
      (Protocol.error ~id:(-1) ~trace_id:0L ~code:"bad_frame"
         ~detail:(Printf.sprintf "non-numeric frame header %S" h))
  | Frame.Bad_terminator ->
    Telemetry.incr m_bad_frames;
    Ready
      (Protocol.error ~id:(-1) ~trace_id:0L ~code:"bad_frame"
         ~detail:"frame payload not terminated by newline")
  | Frame.Too_large len ->
    Telemetry.incr m_bad_frames;
    c.c_dead <- true;
    (* the oversized payload was never read: the connection is beyond
       resynchronization, so answer and drop it *)
    Ready
      (Protocol.error ~id:(-1) ~trace_id:0L ~code:"bad_frame"
         ~detail:
           (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit"
              len Frame.max_payload))
  | Frame.Payload p ->
    Telemetry.incr m_requests;
    (match Protocol.request_of_json p with
     | Error pe ->
       Ready
         (Protocol.error
            ~id:(Option.value pe.pe_id ~default:(-1))
            ~trace_id:0L ~code:"bad_request" ~detail:pe.pe_reason)
     | Ok rq when rq.rq_op = Protocol.Shutdown ->
       t.stop <- true;
       t.served <- t.served + 1;
       let ctx = ctx_of rq in
       Ready (Protocol.ok_shutdown ~id:rq.rq_id ~trace_id:ctx.trace_id)
     | Ok rq when !inflight >= t.cfg.max_inflight ->
       t.rejected <- t.rejected + 1;
       Telemetry.incr m_overloaded;
       Telemetry.Flight.record ~kind:"overloaded" "daemon.admission";
       Ready (overloaded ~id:rq.rq_id ~detail:"admission queue full")
     | Ok rq when Faults.should_reject () ->
       t.rejected <- t.rejected + 1;
       Telemetry.incr m_overloaded;
       Ready (overloaded ~id:rq.rq_id ~detail:"injected rejection")
     | Ok rq ->
       incr inflight;
       (match rq.rq_op with
        | Protocol.Validate | Protocol.Detect -> Batched rq
        | Protocol.Health ->
          t.served <- t.served + 1;
          let ctx = ctx_of rq in
          Ready (health_response t ~id:rq.rq_id ~trace_id:ctx.trace_id)
        | Protocol.Stats ->
          t.served <- t.served + 1;
          let ctx = ctx_of rq in
          Ready
            (Protocol.ok_stats ~id:rq.rq_id ~trace_id:ctx.trace_id
               ~stats_json:
                 (Telemetry.Expose.render_json (Telemetry.snapshot ())))
        | Protocol.Shutdown -> assert false))

(* Group this cycle's batched requests by type, preserving first-seen
   type order and per-type arrival order. *)
let group_by_type batched =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (slot, (rq : Protocol.request)) ->
      let ty = Option.get rq.rq_type in
      (* guaranteed by the parser *)
      if not (Hashtbl.mem tbl ty) then begin
        Hashtbl.add tbl ty [];
        order := ty :: !order
      end;
      Hashtbl.replace tbl ty ((slot, rq) :: Hashtbl.find tbl ty))
    batched;
  List.rev !order
  |> List.map (fun ty -> (ty, List.rev (Hashtbl.find tbl ty)))

(* Process one drain cycle's worth of inbound items: classify under the
   admission budget, serve the per-type batches (on the pool when one
   is configured), then write every response back in arrival order. *)
let process_cycle t (items : (conn * Frame.item) list) =
  if items <> [] then begin
    let inflight = ref 0 in
    let outcomes =
      List.map (fun (c, item) -> (c, classify t inflight c item)) items
    in
    let arr = Array.of_list outcomes in
    let batched =
      Array.to_list arr
      |> List.mapi (fun slot (_, o) -> (slot, o))
      |> List.filter_map (function
        | slot, Batched rq -> Some (slot, rq)
        | _, Ready _ -> None)
    in
    let groups = group_by_type batched in
    Telemetry.incr ~by:(List.length groups) m_batches;
    let computed =
      Exec.map ?pool:t.cfg.pool (serve_group t) groups |> List.concat
    in
    List.iter
      (fun (slot, resp, ok) ->
        if ok then t.served <- t.served + 1;
        arr.(slot) <- (fst arr.(slot), Ready resp))
      computed;
    Array.iter
      (fun (c, outcome) ->
        match outcome with
        | Ready resp -> send c resp
        | Batched _ -> assert false)
      arr
  end

(* --- the event loop ------------------------------------------------ *)

let drain_conn c =
  let rec go acc =
    match Frame.next c.c_dec with
    | Some item -> go ((c, item) :: acc)
    | None -> List.rev acc
  in
  go []

let read_chunk_size = 65536

let read_conn c buf =
  match Unix.read c.c_in buf 0 read_chunk_size with
  | 0 -> c.c_eof <- true
  | n -> Frame.feed c.c_dec (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> c.c_eof <- true

let close_conn c =
  if c.c_owned then begin
    (try Unix.close c.c_in with Unix.Unix_error _ -> ());
    if c.c_out <> c.c_in then
      try Unix.close c.c_out with Unix.Unix_error _ -> ()
  end

let rec select_retry rfds =
  match Unix.select rfds [] [] (-1.0) with
  | readable, _, _ -> readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_retry rfds

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

(* The shared loop: one blocking select per cycle, one bounded read per
   readable connection, then a full decoder drain and one batched
   processing pass.  Because every complete frame is consumed each
   cycle, a blocking select never sits on buffered work. *)
let run cfg ?listener conns0 =
  ignore_sigpipe ();
  let t =
    { cfg; start_ns = Telemetry.now_ns (); served = 0; rejected = 0;
      stop = false }
  in
  let buf = Bytes.create read_chunk_size in
  let rec loop conns =
    if t.stop then conns
    else
      let waitable = List.filter (fun c -> not (c.c_dead || c.c_eof)) conns in
      if waitable = [] && listener = None then conns
      else begin
        let rfds =
          (match listener with Some fd -> [ fd ] | None -> [])
          @ List.map (fun c -> c.c_in) waitable
        in
        let readable = select_retry rfds in
        let conns =
          match listener with
          | Some fd when List.mem fd readable ->
            (match Unix.accept ~cloexec:true fd with
             | client, _ -> conn ~owned:true ~in_fd:client ~out_fd:client :: conns
             | exception Unix.Unix_error _ -> conns)
          | _ -> conns
        in
        List.iter
          (fun c -> if List.mem c.c_in readable then read_conn c buf)
          conns;
        let items = List.concat_map drain_conn conns in
        process_cycle t items;
        let conns =
          List.filter
            (fun c ->
              if c.c_dead || c.c_eof then begin
                close_conn c;
                false
              end
              else true)
            conns
        in
        loop conns
      end
  in
  let conns = loop conns0 in
  List.iter close_conn conns;
  (t.served, t.rejected)

let run_fds cfg ~in_fd ~out_fd =
  run cfg [ conn ~owned:false ~in_fd ~out_fd ]

let run_socket cfg ~path =
  (if Sys.file_exists path then
     try Unix.unlink path with Unix.Unix_error _ -> ());
  let listener = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  @@ fun () ->
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 16;
  run cfg ~listener []
