(** JSON request/response encoding for the serving daemon (see
    protocol.mli). *)

module J = Model.Jsonx

type op =
  | Validate
  | Detect
  | Stats
  | Health
  | Shutdown

let op_to_string = function
  | Validate -> "validate"
  | Detect -> "detect"
  | Stats -> "stats"
  | Health -> "health"
  | Shutdown -> "shutdown"

let op_of_string = function
  | "validate" -> Some Validate
  | "detect" -> Some Detect
  | "stats" -> Some Stats
  | "health" -> Some Health
  | "shutdown" -> Some Shutdown
  | _ -> None

type request = {
  rq_id : int;
  rq_op : op;
  rq_type : string option;
  rq_values : string list;
  rq_deadline_ms : float option;
  rq_value_budget_ms : float option;
  rq_trace_id : int64 option;
}

(* Decode failures carry the request id when one could be parsed, so
   the error response still correlates with the caller's request. *)
type parse_error = { pe_id : int option; pe_reason : string }

let opt_member name j f =
  match J.member_opt name j with
  | None | Some J.Null -> None
  | Some v -> Some (f v)

let request_of_json payload : (request, parse_error) result =
  match J.parse payload with
  | Error msg -> Error { pe_id = None; pe_reason = "bad json: " ^ msg }
  | Ok j ->
    let id = try opt_member "id" j J.to_int with J.Decode_error _ -> None in
    let fail reason = Error { pe_id = id; pe_reason = reason } in
    (match id with
     | None -> fail "missing or non-integer \"id\""
     | Some rq_id ->
       (try
          match opt_member "op" j J.to_str with
          | None -> fail "missing \"op\""
          | Some op_s ->
            (match op_of_string op_s with
             | None -> fail (Printf.sprintf "unknown op %S" op_s)
             | Some rq_op ->
               let rq_type = opt_member "type" j J.to_str in
               let rq_values =
                 match opt_member "values" j J.to_list with
                 | None -> []
                 | Some vs -> List.map J.to_str vs
               in
               let rq_deadline_ms = opt_member "deadline_ms" j J.to_float in
               let rq_value_budget_ms =
                 opt_member "value_budget_ms" j J.to_float
               in
               let rq_trace_id =
                 match opt_member "trace_id" j J.to_str with
                 | None -> None
                 | Some s ->
                   (match Telemetry.Context.id_of_hex s with
                    | Some _ as t -> t
                    | None ->
                      raise (J.Decode_error
                               "trace_id must be 16 hex digits"))
               in
               (match rq_op with
                | Validate | Detect when rq_type = None ->
                  fail (Printf.sprintf "op %S needs \"type\"" op_s)
                | _ ->
                  Ok { rq_id; rq_op; rq_type; rq_values; rq_deadline_ms;
                       rq_value_budget_ms; rq_trace_id }))
        with J.Decode_error msg -> fail msg))

(* Responses carry the request id, the trace id the daemon ran the
   request under, and either an op-specific payload under [ok:true] or
   an [error] code under [ok:false].  Field order is fixed here (Jsonx
   objects preserve insertion order) so responses are stable bytes. *)

let base ~id ~trace_id ~ok rest =
  J.Obj
    (("id", J.Int id)
     :: ("ok", J.Bool ok)
     :: ("trace_id", J.Str (Printf.sprintf "%016Lx" trace_id))
     :: rest)
  |> J.to_string

let error ~id ~trace_id ~code ~detail =
  base ~id ~trace_id ~ok:false
    [ ("error", J.Str code); ("detail", J.Str detail) ]

let ok_validate ~id ~trace_id ~verdicts =
  base ~id ~trace_id ~ok:true
    [ ("verdicts",
       J.List
         (List.map
            (fun v -> J.Str (Tablecorpus.Detect.value_verdict_to_string v))
            verdicts)) ]

let ok_detect ~id ~trace_id ~verdict =
  let fields =
    match (verdict : Tablecorpus.Detect.column_verdict) with
    | Column_match f ->
      [ ("detected", J.Bool true); ("fraction", J.Float f) ]
    | Column_no_match f ->
      [ ("detected", J.Bool false); ("fraction", J.Float f) ]
    | Column_degraded { seen; accepted; total } ->
      [ ("degraded", J.Bool true); ("seen", J.Int seen);
        ("accepted", J.Int accepted); ("total", J.Int total) ]
  in
  base ~id ~trace_id ~ok:true fields

let ok_health ~id ~trace_id ~models ~served ~rejected ~uptime_ms =
  base ~id ~trace_id ~ok:true
    [ ("models", J.Int models); ("served", J.Int served);
      ("rejected", J.Int rejected); ("uptime_ms", J.Int uptime_ms) ]

let ok_stats ~id ~trace_id ~stats_json =
  (* [stats_json] is Telemetry.Expose.render_json output: already a
     rendered object, re-parsed so it nests as a value, not a string. *)
  let stats =
    match J.parse stats_json with Ok j -> j | Error _ -> J.Str stats_json
  in
  base ~id ~trace_id ~ok:true [ ("stats", stats) ]

let ok_shutdown ~id ~trace_id =
  base ~id ~trace_id ~ok:true [ ("bye", J.Bool true) ]

(** {1 Client-side decoding} — used by the bench and the tests. *)

type reply = {
  rp_id : int;
  rp_ok : bool;
  rp_trace_id : string;
  rp_body : J.t;  (** the whole response object, for op-specific fields *)
}

let reply_of_json payload : (reply, string) result =
  match J.parse payload with
  | Error msg -> Error ("bad json: " ^ msg)
  | Ok j ->
    (try
       Ok
         { rp_id = J.to_int (J.member "id" j);
           rp_ok = J.to_bool (J.member "ok" j);
           rp_trace_id = J.to_str (J.member "trace_id" j);
           rp_body = j }
     with J.Decode_error msg -> Error msg)
