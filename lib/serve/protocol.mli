(** JSON request/response encoding for the serving daemon
    (DESIGN.md §15).

    A request is one JSON object per frame:

    {v {"id":1,"op":"validate","type":"date","values":["2021-01-02"],
        "deadline_ms":50,"value_budget_ms":5,"trace_id":"00000000000000ab"} v}

    [id] and [op] are required; [type] is required for [validate] and
    [detect]; everything else is optional.  A client-supplied
    [trace_id] (16 lowercase hex digits) propagates into the daemon's
    telemetry context so one trace spans both sides of the wire;
    otherwise the daemon mints one and returns it.

    Responses echo [id], carry [ok] plus the trace id, and either the
    op-specific payload or [error]/[detail].  Validate verdicts use the
    CLI's historical words ("VALID" / "invalid" / "DEADLINE" /
    "SKIPPED") so daemon output is byte-comparable with one-shot
    [autotype validate]. *)

type op =
  | Validate
  | Detect
  | Stats
  | Health
  | Shutdown

val op_to_string : op -> string
val op_of_string : string -> op option

type request = {
  rq_id : int;
  rq_op : op;
  rq_type : string option;
  rq_values : string list;
  rq_deadline_ms : float option;  (** whole-request budget *)
  rq_value_budget_ms : float option;  (** per-value budget *)
  rq_trace_id : int64 option;  (** validated, non-zero *)
}

type parse_error = {
  pe_id : int option;  (** present when the id could still be read *)
  pe_reason : string;
}

val request_of_json : string -> (request, parse_error) result

(** {1 Response builders} — each returns the rendered JSON payload
    (not yet framed). *)

val error :
  id:int -> trace_id:int64 -> code:string -> detail:string -> string
(** Error codes in use: [overloaded], [bad_frame], [bad_request],
    [unknown_type], [internal]. *)

val ok_validate :
  id:int -> trace_id:int64 ->
  verdicts:Tablecorpus.Detect.value_verdict list -> string

val ok_detect :
  id:int -> trace_id:int64 ->
  verdict:Tablecorpus.Detect.column_verdict -> string

val ok_health :
  id:int -> trace_id:int64 -> models:int -> served:int -> rejected:int ->
  uptime_ms:int -> string

val ok_stats : id:int -> trace_id:int64 -> stats_json:string -> string
(** [stats_json] is {!Telemetry.Expose.render_json} output, embedded as
    a nested object. *)

val ok_shutdown : id:int -> trace_id:int64 -> string

(** {1 Client-side decoding} — for the load generator and tests. *)

type reply = {
  rp_id : int;
  rp_ok : bool;
  rp_trace_id : string;
  rp_body : Model.Jsonx.t;  (** full object, for op-specific fields *)
}

val reply_of_json : string -> (reply, string) result
