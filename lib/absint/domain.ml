(** Abstract domains shared by the three absint analyses (DESIGN.md §13).

    Everything here is *must*-style: a value of these types is a proof
    object, never a guess.  Analyses that cannot establish a fact
    return [Bound_unknown] / [None] / [pure = false]; they never return
    a wrong fact.  The differential fuzz suite
    ([test/test_absint_fuzz.ml]) checks every claim against concrete
    interpretation. *)

open Minilang

(* ------------------------------------------------------------------ *)
(* Derived strings                                                     *)
(* ------------------------------------------------------------------ *)

(** One pure string-to-string step applied to the input.  Each
    constructor evaluates with the exact {!Minilang.Strops} primitive
    the interpreter dispatches to, so the fast path cannot drift. *)
type deriv =
  | Strip of string option * bool * bool  (** chars, left, right *)
  | Lower
  | Upper
  | Replace of string * string

(** A derivation chain, applied left-to-right to the input value. *)
type chain = deriv list

let apply_deriv s = function
  | Strip (chars, left, right) -> Strops.strip_chars s chars ~left ~right
  | Lower -> String.lowercase_ascii s
  | Upper -> String.uppercase_ascii s
  | Replace (o, n) -> Strops.replace_substring s o n

let apply_chain (s : string) (ch : chain) : string =
  List.fold_left apply_deriv s ch

let deriv_to_string = function
  | Strip (None, true, true) -> "strip()"
  | Strip (None, true, false) -> "lstrip()"
  | Strip (None, false, true) -> "rstrip()"
  | Strip (Some cs, left, right) ->
    Printf.sprintf "%s(%S)"
      (if left && right then "strip" else if left then "lstrip" else "rstrip")
      cs
  | Strip (None, false, false) -> "strip(nothing)"
  | Lower -> "lower()"
  | Upper -> "upper()"
  | Replace (o, n) -> Printf.sprintf "replace(%S,%S)" o n

let chain_to_string ch =
  String.concat "" (List.map (fun d -> "." ^ deriv_to_string d) ch)

(* ------------------------------------------------------------------ *)
(* Atoms and guards                                                    *)
(* ------------------------------------------------------------------ *)

type rmode = Rmatch | Rfullmatch | Rsearch

let rmode_to_string = function
  | Rmatch -> "match"
  | Rfullmatch -> "fullmatch"
  | Rsearch -> "search"

type cclass = Cdigit | Calpha | Calnum | Cspace

let cclass_to_string = function
  | Cdigit -> "isdigit"
  | Calpha -> "isalpha"
  | Calnum -> "isalnum"
  | Cspace -> "isspace"

let cclass_pred = function
  | Cdigit -> Strops.is_digit_char
  | Calpha -> Strops.is_alpha_char
  | Calnum -> Strops.is_alnum_char
  | Cspace -> Strops.is_space_char

type icmp = Clt | Cle | Cgt | Cge | Ceq | Cne

let icmp_to_string = function
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="
  | Ceq -> "=="
  | Cne -> "!="

let icmp_eval op a b =
  match op with
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b
  | Ceq -> a = b
  | Cne -> a <> b

(** A boolean observation of a derived input string.  Every atom is
    total (it cannot raise) and mirrors the interpreter's truthiness
    rules exactly — in particular [re.match] returning an *empty*
    prefix match is a [Vstr ""], which is falsy. *)
type atom =
  | Regex of rmode * string * chain
      (** truthiness of [re.<mode>(pattern, chain(input))] *)
  | Char_class of cclass * chain  (** [chain(input).isdigit()] etc. *)
  | Starts_with of string * chain
  | Ends_with of string * chain
  | Str_eq of string * chain  (** [chain(input) == lit] *)
  | Contains of string * chain  (** [lit in chain(input)] *)
  | Len_cmp of icmp * int * chain  (** [len(chain(input)) OP lit] *)

let atom_to_string = function
  | Regex (m, pat, ch) ->
    Printf.sprintf "re.%s(%S, value%s)" (rmode_to_string m) pat
      (chain_to_string ch)
  | Char_class (c, ch) ->
    Printf.sprintf "value%s.%s()" (chain_to_string ch) (cclass_to_string c)
  | Starts_with (p, ch) ->
    Printf.sprintf "value%s.startswith(%S)" (chain_to_string ch) p
  | Ends_with (p, ch) ->
    Printf.sprintf "value%s.endswith(%S)" (chain_to_string ch) p
  | Str_eq (lit, ch) ->
    Printf.sprintf "value%s == %S" (chain_to_string ch) lit
  | Contains (lit, ch) ->
    Printf.sprintf "%S in value%s" lit (chain_to_string ch)
  | Len_cmp (op, n, ch) ->
    Printf.sprintf "len(value%s) %s %d" (chain_to_string ch)
      (icmp_to_string op) n

type guard =
  | Gconst of bool
  | Gatom of atom
  | Gnot of guard
  | Gand of guard * guard
  | Gor of guard * guard

let rec guard_to_string = function
  | Gconst b -> string_of_bool b
  | Gatom a -> atom_to_string a
  | Gnot g -> Printf.sprintf "not (%s)" (guard_to_string g)
  | Gand (a, b) ->
    Printf.sprintf "(%s and %s)" (guard_to_string a) (guard_to_string b)
  | Gor (a, b) ->
    Printf.sprintf "(%s or %s)" (guard_to_string a) (guard_to_string b)

(* ------------------------------------------------------------------ *)
(* Path effects and summary trees                                      *)
(* ------------------------------------------------------------------ *)

(** The *exact* trace effects of one loop-free execution path, in
    emission order.  Because summarized functions are loop- and
    call-free, may- and must-effects coincide: an input routed to this
    path emits precisely these events. *)
type path_events = {
  pe_branches : (Trace.site * bool) list;
  pe_ret : (Trace.site * Trace.ret_abstract) option;
      (** [None] exactly when the path raises *)
  pe_raised : string option;  (** uncaught exception kind *)
}

type 'a tree =
  | Leaf of 'a
  | Node of { guard : guard; if_true : 'a tree; if_false : 'a tree }

let rec tree_size = function
  | Leaf _ -> 1
  | Node { if_true; if_false; _ } -> 1 + tree_size if_true + tree_size if_false

type summary = path_events tree
(** Raw summary: guards route an input to the exact trace effects the
    interpreter would produce for it. *)

type compiled = bool tree
(** Serving summary: each leaf's effects have been resolved against the
    synthesized DNF into the final validator verdict. *)

(* ------------------------------------------------------------------ *)
(* Step bounds                                                         *)
(* ------------------------------------------------------------------ *)

type bound =
  | Terminates of { a : int; b : int }
      (** every run finishes within [a·len(input) + b] interpreter
          steps (never [Hit_limit] under a budget ≥ that) *)
  | Spins_after of int
      (** the run reaches an event-free constant-condition spin within
          the given step count; any budget ≥ it still hits the limit
          and featurizes to the same literal set as the default budget
          (the spin's lone repeated branch dedupes into one literal —
          only the raw repetition count differs) *)
  | Bound_unknown

let bound_to_string = function
  | Terminates { a; b } -> Printf.sprintf "steps <= %d*len + %d" a b
  | Spins_after k -> Printf.sprintf "spins after <= %d steps" k
  | Bound_unknown -> "unknown"

(* ------------------------------------------------------------------ *)
(* Facts                                                               *)
(* ------------------------------------------------------------------ *)

type facts = {
  pure : bool;
      (** proven deterministic and free of observable effects (no
          print, no ambient-channel reads, no [global]); [false] means
          "not proven", not "impure" *)
  bound : bound;
  summary : summary option;
}

let unknown_facts = { pure = false; bound = Bound_unknown; summary = None }

(* ------------------------------------------------------------------ *)
(* Concrete evaluation (the fast path)                                 *)
(* ------------------------------------------------------------------ *)

(** Atoms with their regex pre-parsed; built once per served model. *)
type prepared_atom =
  | Pregex of rmode * Regexlite.t * chain
  | Patom of atom  (** any non-regex atom *)

type prepared_guard =
  | Pconst of bool
  | Pgatom of prepared_atom
  | Pnot of prepared_guard
  | Pand of prepared_guard * prepared_guard
  | Por of prepared_guard * prepared_guard

type 'a prepared_tree =
  | Pleaf of 'a
  | Pnode of {
      pguard : prepared_guard;
      pif_true : 'a prepared_tree;
      pif_false : 'a prepared_tree;
    }

exception Unpreparable

let rec prepare_guard = function
  | Gconst b -> Pconst b
  | Gatom (Regex (m, pat, ch)) ->
    (match Regexlite.parse pat with
     | re -> Pgatom (Pregex (m, re, ch))
     | exception Regexlite.Parse_error _ -> raise Unpreparable)
  | Gatom a -> Pgatom (Patom a)
  | Gnot g -> Pnot (prepare_guard g)
  | Gand (a, b) -> Pand (prepare_guard a, prepare_guard b)
  | Gor (a, b) -> Por (prepare_guard a, prepare_guard b)

let rec prepare_tree = function
  | Leaf v -> Pleaf v
  | Node { guard; if_true; if_false } ->
    Pnode
      {
        pguard = prepare_guard guard;
        pif_true = prepare_tree if_true;
        pif_false = prepare_tree if_false;
      }

(** [None] when a stored regex no longer parses (an artifact written by
    a buggy or newer writer) — callers fall back to the interpreter. *)
let prepare (t : 'a tree) : 'a prepared_tree option =
  match prepare_tree t with p -> Some p | exception Unpreparable -> None

(* Truthiness mirrors Value.truthy on the value the interpreter would
   produce: re.match gives Vstr(prefix) — falsy when the prefix is
   empty; re.search gives the matched substring — falsy when empty. *)
let eval_prepared_atom (input : string) = function
  | Pregex (m, re, ch) ->
    let s = apply_chain input ch in
    (match m with
     | Rmatch ->
       (match Regexlite.match_prefix re s with
        | Some j -> j > 0
        | None -> false)
     | Rfullmatch -> Regexlite.full_match re s && s <> ""
     | Rsearch ->
       (match Regexlite.search re s with
        | Some (i, j) -> j > i
        | None -> false))
  | Patom (Char_class (c, ch)) ->
    Strops.string_forall (cclass_pred c) (apply_chain input ch)
  | Patom (Starts_with (p, ch)) ->
    Strops.starts_with ~prefix:p (apply_chain input ch)
  | Patom (Ends_with (p, ch)) ->
    Strops.ends_with ~suffix:p (apply_chain input ch)
  | Patom (Str_eq (lit, ch)) -> String.equal (apply_chain input ch) lit
  | Patom (Contains (lit, ch)) ->
    (* mirrors the interpreter's [in <string>]: an empty needle is
       always a member *)
    lit = "" || Strops.find_substring (apply_chain input ch) lit >= 0
  | Patom (Len_cmp (op, n, ch)) ->
    icmp_eval op (String.length (apply_chain input ch)) n
  | Patom (Regex _) -> assert false  (* rewritten to Pregex by prepare *)

let rec eval_prepared_guard input = function
  | Pconst b -> b
  | Pgatom a -> eval_prepared_atom input a
  | Pnot g -> not (eval_prepared_guard input g)
  | Pand (a, b) -> eval_prepared_guard input a && eval_prepared_guard input b
  | Por (a, b) -> eval_prepared_guard input a || eval_prepared_guard input b

(** Route an input down a prepared tree.  Total: guards cannot raise. *)
let rec eval_prepared (t : 'a prepared_tree) (input : string) : 'a =
  match t with
  | Pleaf v -> v
  | Pnode { pguard; pif_true; pif_false } ->
    if eval_prepared_guard input pguard then eval_prepared pif_true input
    else eval_prepared pif_false input

(** One-shot (unprepared) evaluation, for tests and the fuzz oracle.
    @raise Unpreparable when a regex in the tree does not parse. *)
let eval_tree (t : 'a tree) (input : string) : 'a =
  eval_prepared (prepare_tree t) input

(** The exact trace-event list the interpreter would produce for the
    path this input takes: branches in emission order, then the return
    event, with an uncaught exception appended by the runner.  Used by
    the fuzz oracle to compare against [run.trace] verbatim. *)
let events_of_path (pe : path_events) : Trace.event list =
  List.map (fun (site, taken) -> Trace.Branch (site, taken)) pe.pe_branches
  @ (match pe.pe_ret with
     | Some (site, r) -> [ Trace.Return (site, r) ]
     | None -> [])
  @ (match pe.pe_raised with Some k -> [ Trace.Exception k ] | None -> [])
