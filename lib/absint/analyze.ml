(** Facade: run all three analyses over a candidate entry function.

    [module_bindings] must contain every name the candidate's module
    can bind at module scope (top-level assignments, defs, and
    [global]-declared names — {!Staticcheck.Env.build} computes
    exactly this); [lookup] resolves a module-level function name to
    its unique definition, or [None] when unknown or ambiguous.
    Unsound inputs here (a missing binding, a wrong lookup) void the
    proofs, so callers derive both from the same program list the
    interpreter loads. *)

open Minilang
module StrSet = Staticcheck.Env.StrSet

let facts ~(module_bindings : StrSet.t)
    ~(lookup : string -> Ast.func option) (f : Ast.func) : Domain.facts =
  let pctx = { Purity.module_bindings; lookup } in
  let pure = Purity.prove pctx f in
  let locals = Staticcheck.Env.locals_of_func f in
  let shadowed n = StrSet.mem n locals || StrSet.mem n module_bindings in
  let notobj = Purity.notobj_set pctx f in
  let bound = Stepbound.func_bound { Stepbound.notobj; shadowed } f in
  let summary = Summary.func ~shadowed f in
  { Domain.pure; bound; summary }

(** Step-budget hint for {!Repolib.Driver.config_for}: with a proven
    bound and a known input length the run needs at most this many
    steps; a proven spin needs only enough budget to reach the loop.
    [None] when the analysis proved nothing usable. *)
let budget_hint ?(input_len : int option) (b : Domain.bound) : int option =
  match b with
  | Domain.Terminates { a; b } -> (
    match input_len with Some len -> Some ((a * len) + b) | None -> None)
  | Domain.Spins_after k -> Some k
  | Domain.Bound_unknown -> None
