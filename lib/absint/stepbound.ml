(** Termination & step-bound analysis (DESIGN.md §13).

    Computes a per-input-length interpreter step bound
    [steps ≤ a·len(input) + b] for a candidate entry function, or the
    precise prefix cost of a provable event-free spin.  Must-style:
    anything the analysis cannot price aborts to [Bound_unknown].

    The cost model mirrors the interpreter's three — and only three —
    tick sites exactly ({!Minilang.Interp}):
    - one tick per [eval] entry, bounded above by the syntactic node
      count of the expression (short-circuiting only evaluates fewer);
    - one tick per executed statement;
    - one tick per [for]-loop item.
    Native builtins, string/list/dict methods and the regex bridge
    never tick, so expression cost is independent of value sizes; input
    length enters only through loop iteration counts.  Hidden ticking
    bodies (user-function calls, methods on possible user objects) are
    rejected — callers gate on the same notobj judgment as
    {!Purity}. *)

open Minilang
module StrSet = Staticcheck.Env.StrSet
module StrMap = Map.Make (String)

exception Abort

(* ------------------------------------------------------------------ *)
(* Affine bounds  value ≤ a·len(input) + b                             *)
(* ------------------------------------------------------------------ *)

type aff = { a : int; b : int }

let aff_const b = { a = 0; b }
let aff_add x y = { a = x.a + y.a; b = x.b + y.b }
let aff_addc x k = { x with b = x.b + k }
let aff_scale k x = { a = k * x.a; b = k * x.b }  (* k ≥ 0 *)
let aff_max x y = { a = max x.a y.a; b = max x.b y.b }

(* product of two upper bounds, exact only when one side is a constant
   (otherwise the result would be quadratic in len — abort) *)
let aff_mul x y =
  if x.a = 0 && x.b >= 0 then aff_scale x.b y
  else if y.a = 0 && y.b >= 0 then aff_scale y.b x
  else raise Abort

let ceil_div_nonneg n d = if n <= 0 then 0 else (n + d - 1) / d

(* ------------------------------------------------------------------ *)
(* Abstract values                                                     *)
(* ------------------------------------------------------------------ *)

type aval =
  | Aint of int  (** exactly this integer *)
  | Astr of aff  (** a string of length ≤ aff *)
  | Alist of { items : aff; elem : aval }  (** list/tuple, ≤ items long *)
  | Atop

let rec join x y =
  match (x, y) with
  | Aint a, Aint b when a = b -> Aint a
  | Astr p, Astr q -> Astr (aff_max p q)
  | Alist p, Alist q ->
    Alist { items = aff_max p.items q.items; elem = join p.elem q.elem }
  | _ -> Atop

let elem_of = function
  | Astr _ -> Astr (aff_const 1)
  | Alist { elem; _ } -> elem
  | _ -> Atop

type ctx = {
  notobj : StrSet.t;  (** vars proven to never hold a user object *)
  shadowed : string -> bool;  (** name bound locally or at module scope *)
}

(* ------------------------------------------------------------------ *)
(* Expression cost: syntactic node count                               *)
(* ------------------------------------------------------------------ *)

let rec expr_nodes (e : Ast.expr) : int =
  match e with
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.None_lit
  | Ast.Var _ -> 1
  | Ast.Binop (_, a, b, _) -> 1 + expr_nodes a + expr_nodes b
  | Ast.Unop (_, a) -> 1 + expr_nodes a
  | Ast.Call (f, args, _) ->
    1 + expr_nodes f + List.fold_left (fun n a -> n + expr_nodes a) 0 args
  | Ast.Method (r, _, args, _) ->
    1 + expr_nodes r + List.fold_left (fun n a -> n + expr_nodes a) 0 args
  | Ast.Attr (a, _) -> 1 + expr_nodes a
  | Ast.Index (a, i, _) -> 1 + expr_nodes a + expr_nodes i
  | Ast.Slice (a, lo, hi, _) ->
    1 + expr_nodes a
    + (match lo with Some e -> expr_nodes e | None -> 0)
    + (match hi with Some e -> expr_nodes e | None -> 0)
  | Ast.List_lit es | Ast.Tuple_lit es ->
    1 + List.fold_left (fun n a -> n + expr_nodes a) 0 es
  | Ast.Dict_lit kvs ->
    1 + List.fold_left (fun n (k, v) -> n + expr_nodes k + expr_nodes v) 0 kvs
  | Ast.Cond (c, a, b, _) -> 1 + expr_nodes c + expr_nodes a + expr_nodes b

let stmt_expr_nodes (s : Ast.stmt) : int =
  List.fold_left
    (fun n e -> n + expr_nodes e)
    0
    (Staticcheck.Env.stmt_exprs s)

(* Any method call may mutate a list reachable through aliases; after
   one, every list bound loses its length guarantee. *)
let rec expr_has_method (e : Ast.expr) : bool =
  match e with
  | Ast.Method _ -> true
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.None_lit
  | Ast.Var _ -> false
  | Ast.Binop (_, a, b, _) -> expr_has_method a || expr_has_method b
  | Ast.Unop (_, a) -> expr_has_method a
  | Ast.Call (f, args, _) ->
    expr_has_method f || List.exists expr_has_method args
  | Ast.Attr (a, _) -> expr_has_method a
  | Ast.Index (a, i, _) -> expr_has_method a || expr_has_method i
  | Ast.Slice (a, lo, hi, _) ->
    expr_has_method a
    || (match lo with Some e -> expr_has_method e | None -> false)
    || (match hi with Some e -> expr_has_method e | None -> false)
  | Ast.List_lit es | Ast.Tuple_lit es -> List.exists expr_has_method es
  | Ast.Dict_lit kvs ->
    List.exists (fun (k, v) -> expr_has_method k || expr_has_method v) kvs
  | Ast.Cond (c, a, b, _) ->
    expr_has_method c || expr_has_method a || expr_has_method b

let havoc_lists env =
  StrMap.map (function Alist _ -> Atop | v -> v) env

let havoc_names names env =
  StrSet.fold (fun n acc -> StrMap.add n Atop acc) names env

(* ------------------------------------------------------------------ *)
(* Abstract evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let re_methods = [ "match"; "fullmatch"; "search"; "findall" ]

(* Reject any expression that could run a hidden ticking body: calls
   that do not resolve to builtins/re, methods on receivers not proven
   notobj.  Everything else is priced by node count alone. *)
let rec check_no_hidden_body ctx (e : Ast.expr) : unit =
  let sub () =
    match e with
    | Ast.Binop (_, a, b, _) ->
      check_no_hidden_body ctx a; check_no_hidden_body ctx b
    | Ast.Unop (_, a) -> check_no_hidden_body ctx a
    | Ast.Attr (a, _) -> check_no_hidden_body ctx a
    | Ast.Index (a, i, _) ->
      check_no_hidden_body ctx a; check_no_hidden_body ctx i
    | Ast.Slice (a, lo, hi, _) ->
      check_no_hidden_body ctx a;
      Option.iter (check_no_hidden_body ctx) lo;
      Option.iter (check_no_hidden_body ctx) hi
    | Ast.List_lit es | Ast.Tuple_lit es ->
      List.iter (check_no_hidden_body ctx) es
    | Ast.Dict_lit kvs ->
      List.iter
        (fun (k, v) -> check_no_hidden_body ctx k; check_no_hidden_body ctx v)
        kvs
    | Ast.Cond (c, a, b, _) ->
      check_no_hidden_body ctx c;
      check_no_hidden_body ctx a;
      check_no_hidden_body ctx b
    | _ -> ()
  in
  match e with
  | Ast.Call (Ast.Var f, args, _) ->
    if ctx.shadowed f then raise Abort
    else if
      List.mem f Interp.builtin_names
      || List.mem f Interp.known_exception_kinds
    then List.iter (check_no_hidden_body ctx) args
    else List.iter (check_no_hidden_body ctx) args
    (* an unbound name raises NameError before running anything *)
  | Ast.Call (Ast.Attr (Ast.Var "re", m), args, _)
    when (not (ctx.shadowed "re")) && List.mem m re_methods ->
    List.iter (check_no_hidden_body ctx) args
  | Ast.Call _ -> raise Abort
  (* [re.match(...)] parses as a Method on the module value; the
     dispatch is native (interp's re bridge), never a ticking body *)
  | Ast.Method (Ast.Var "re", m, args, _)
    when (not (ctx.shadowed "re")) && List.mem m re_methods ->
    List.iter (check_no_hidden_body ctx) args
  | Ast.Method (Ast.Var v, _, args, _) when StrSet.mem v ctx.notobj ->
    List.iter (check_no_hidden_body ctx) args
  | Ast.Method (r, _, args, _) ->
    (* method on a non-variable receiver: admit only receivers that
       are syntactically never a user object *)
    let rec surely_notobj = function
      | Ast.Str _ | Ast.Int _ | Ast.Float _ | Ast.Bool _ | Ast.None_lit ->
        true
      | Ast.Var v -> StrSet.mem v ctx.notobj
      | Ast.Method (r', _, _, _) -> surely_notobj r'
      | Ast.Binop (_, a, b, _) -> surely_notobj a && surely_notobj b
      | Ast.Index (a, _, _) | Ast.Slice (a, _, _, _) -> surely_notobj a
      | Ast.List_lit _ | Ast.Tuple_lit _ | Ast.Dict_lit _ -> true
      | _ -> false
    in
    if surely_notobj r then begin
      check_no_hidden_body ctx r;
      List.iter (check_no_hidden_body ctx) args
    end
    else raise Abort
  | _ -> sub ()

let rec abstract_eval ctx env (e : Ast.expr) : aval =
  match e with
  | Ast.Str s -> Astr { a = 0; b = String.length s }
  | Ast.Int n -> Aint n
  | Ast.Float _ | Ast.Bool _ | Ast.None_lit -> Atop
  | Ast.Var v -> (try StrMap.find v env with Not_found -> Atop)
  | Ast.Binop (Ast.Add, x, y, _) -> (
    match (abstract_eval ctx env x, abstract_eval ctx env y) with
    | Aint p, Aint q -> Aint (p + q)
    | Astr p, Astr q -> Astr (aff_add p q)
    | Alist p, Alist q ->
      Alist { items = aff_add p.items q.items; elem = join p.elem q.elem }
    | _ -> Atop)
  | Ast.Binop (Ast.Sub, x, y, _) -> (
    match (abstract_eval ctx env x, abstract_eval ctx env y) with
    | Aint p, Aint q -> Aint (p - q)
    | _ -> Atop)
  | Ast.Binop _ -> Atop
  | Ast.Unop (Ast.Neg, x) -> (
    match abstract_eval ctx env x with Aint n -> Aint (-n) | _ -> Atop)
  | Ast.Unop _ -> Atop
  | Ast.Method (Ast.Var "re", m, [ _; se ], _)
    when (not (ctx.shadowed "re")) && List.mem m re_methods -> (
    match (abstract_eval ctx env se, m) with
    | Astr aff, ("match" | "fullmatch" | "search") ->
      (* the match value is a substring of the subject *)
      Astr aff
    | Astr aff, "findall" -> Alist { items = aff_addc aff 1; elem = Astr aff }
    | _ -> Atop)
  | Ast.Method (r, m, args, _) -> (
    match (abstract_eval ctx env r, m, args) with
    | Astr aff, ("strip" | "lstrip" | "rstrip" | "lower" | "upper" | "title"),
      _ -> Astr aff
    | Astr aff, "replace", [ Ast.Str o; Ast.Str n ] ->
      if String.length n <= String.length o then Astr aff
      else Astr (aff_scale (1 + String.length n) aff)
    | Astr aff, "zfill", [ Ast.Int w ] -> Astr { aff with b = max aff.b w }
    | Astr aff, "split", ([] | [ _ ]) ->
      (* at most len+1 parts for any separator; an empty separator
         raises before producing a list *)
      Alist { items = aff_addc aff 1; elem = Astr aff }
    | _ -> Atop)
  | Ast.Call (Ast.Var f, args, _) when not (ctx.shadowed f) -> (
    match (f, args) with
    | "range", [ e1 ] -> (
      match int_upper ctx env e1 with
      | Some items -> Alist { items; elem = Atop }
      | None -> Atop)
    | ("sorted" | "reversed" | "list"), [ e1 ] -> (
      match abstract_eval ctx env e1 with
      | Astr aff -> Alist { items = aff; elem = Astr (aff_const 1) }
      | Alist l -> Alist l
      | _ -> Atop)
    | "str", _ | "int", _ | "len", _ | _ -> Atop)
  | Ast.Call (Ast.Attr (Ast.Var "re", m), [ _; se ], _)
    when not (ctx.shadowed "re") -> (
    match (abstract_eval ctx env se, m) with
    | Astr aff, ("match" | "fullmatch" | "search") ->
      (* the match value is a substring of the subject *)
      Astr aff
    | Astr aff, "findall" -> Alist { items = aff_addc aff 1; elem = Astr aff }
    | _ -> Atop)
  | Ast.Call _ -> Atop
  | Ast.Index (a, _, _) -> elem_of (abstract_eval ctx env a)
  | Ast.Slice (a, _, _, _) -> (
    match abstract_eval ctx env a with
    | Astr aff -> Astr aff
    | Alist l -> Alist l
    | _ -> Atop)
  | Ast.List_lit es | Ast.Tuple_lit es ->
    Alist
      {
        items = aff_const (List.length es);
        elem =
          List.fold_left (fun acc e -> join acc (abstract_eval ctx env e))
            (Aint 0) es
          |> (fun v -> if es = [] then Atop else v);
      }
  | Ast.Dict_lit _ -> Atop
  | Ast.Cond (_, a, b, _) ->
    join (abstract_eval ctx env a) (abstract_eval ctx env b)
  | Ast.Attr _ -> Atop

(* Upper bound on an integer-valued expression *)
and int_upper ctx env (e : Ast.expr) : aff option =
  match e with
  | Ast.Int k -> Some (aff_const k)
  | Ast.Var v -> (
    match StrMap.find_opt v env with
    | Some (Aint k) -> Some (aff_const k)
    | _ -> None)
  | Ast.Call (Ast.Var "len", [ x ], _) when not (ctx.shadowed "len") -> (
    match abstract_eval ctx env x with
    | Astr aff -> Some aff
    | Alist { items; _ } -> Some items
    | _ -> None)
  | Ast.Binop (Ast.Add, x, y, _) -> (
    match (int_upper ctx env x, int_upper ctx env y) with
    | Some p, Some q -> Some (aff_add p q)
    | _ -> None)
  | Ast.Binop (Ast.Sub, x, Ast.Int k, _) -> (
    match int_upper ctx env x with
    | Some p -> Some (aff_addc p (-k))
    | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statement cost                                                      *)
(* ------------------------------------------------------------------ *)

let rec tgt_vars acc = function
  | Ast.Tvar v -> v :: acc
  | Ast.Ttuple ts -> List.fold_left tgt_vars acc ts
  | Ast.Tindex _ | Ast.Tattr _ -> acc

let rec cost_block ctx env (stmts : Ast.block) : aff * aval StrMap.t =
  List.fold_left
    (fun (acc, env) s ->
      let c, env' = cost_stmt ctx env s in
      (aff_add acc c, env'))
    (aff_const 0, env) stmts

and cost_stmt ctx env (s : Ast.stmt) : aff * aval StrMap.t =
  List.iter (check_no_hidden_body ctx) (Staticcheck.Env.stmt_exprs s);
  let base = aff_const (1 + stmt_expr_nodes s) in
  let env =
    if List.exists expr_has_method (Staticcheck.Env.stmt_exprs s) then
      havoc_lists env
    else env
  in
  match s with
  | Ast.Pass | Ast.Break _ | Ast.Continue _ | Ast.Global _ -> (base, env)
  | Ast.Expr_stmt _ | Ast.Return _ | Ast.Raise _ -> (base, env)
  | Ast.Assign (Ast.Tvar v, e, _) ->
    (base, StrMap.add v (abstract_eval ctx env e) env)
  | Ast.Assign (Ast.Ttuple ts, e, _) ->
    let elem = elem_of (abstract_eval ctx env e) in
    ( base,
      List.fold_left (fun env v -> StrMap.add v elem env) env
        (List.fold_left tgt_vars [] ts) )
  | Ast.Assign ((Ast.Tindex _ | Ast.Tattr _), _, _) -> (base, env)
  | Ast.Aug_assign (Ast.Tvar v, op, e, pos) ->
    let av =
      abstract_eval ctx env (Ast.Binop (op, Ast.Var v, e, pos))
    in
    (aff_addc base 1 (* the target read *), StrMap.add v av env)
  | Ast.Aug_assign (_, _, _, _) -> (aff_addc base 4, env)
  | Ast.If (arms, els) ->
    let env0 = env in
    let branch_envs, costs =
      List.fold_left
        (fun (envs, costs) (_, _, body) ->
          let c, e' = cost_block ctx env0 body in
          (e' :: envs, c :: costs))
        ([], []) arms
    in
    let branch_envs, costs =
      match els with
      | Some b ->
        let c, e' = cost_block ctx env0 b in
        (e' :: branch_envs, c :: costs)
      | None -> (env0 :: branch_envs, costs)
    in
    let worst = List.fold_left aff_max (aff_const 0) costs in
    let joined =
      match branch_envs with
      | [] -> env0
      | e0 :: rest ->
        List.fold_left
          (fun acc e' ->
            StrMap.merge
              (fun _ a b ->
                match (a, b) with
                | Some x, Some y -> Some (join x y)
                | _ -> Some Atop)
              acc e')
          e0 rest
    in
    (aff_add base worst, joined)
  | Ast.While (cond, _, body) -> (
    match Staticcheck.Loops.while_counter cond body with
    | None -> raise Abort
    | Some c ->
      let v0 =
        match StrMap.find_opt c.Staticcheck.Loops.counter_var env with
        | Some (Aint k) -> k
        | _ -> raise Abort
      in
      let bound_up =
        match int_upper ctx env c.Staticcheck.Loops.counter_bound with
        | Some aff -> aff
        | None -> raise Abort
      in
      let step = c.Staticcheck.Loops.counter_step in
      let le_slack = if c.Staticcheck.Loops.counter_le then 1 else 0 in
      let numer = aff_addc bound_up (le_slack - v0) in
      let iters =
        {
          a = ceil_div_nonneg numer.a step;
          b = ceil_div_nonneg numer.b step + 1;
        }
      in
      let henv =
        havoc_lists (havoc_names (Staticcheck.Env.assigned_names body) env)
      in
      let body_cost, _ = cost_block ctx henv body in
      let per_iter = aff_addc body_cost (expr_nodes cond) in
      let total = aff_mul iters per_iter in
      (aff_add base (aff_addc total (expr_nodes cond)), henv))
  | Ast.For (tgt, iter, body, _) ->
    let vars = tgt_vars [] tgt in
    (match tgt with
     | Ast.Tvar _ | Ast.Ttuple _ -> ()
     | Ast.Tindex _ | Ast.Tattr _ -> raise Abort);
    let src = abstract_eval ctx env iter in
    let items, elem =
      match src with
      | Astr aff -> (aff, Astr (aff_const 1))
      | Alist { items; elem } -> (items, elem)
      | _ -> raise Abort
    in
    let henv =
      havoc_lists (havoc_names (Staticcheck.Env.assigned_names body) env)
    in
    let henv =
      List.fold_left (fun env v -> StrMap.add v elem env) henv vars
    in
    let body_cost, _ = cost_block ctx henv body in
    (* one tick per item plus its body *)
    let total = aff_mul items (aff_addc body_cost 1) in
    (aff_add base total, henv)
  | Ast.Try (body, handlers, fin) ->
    let cb, _ = cost_block ctx env body in
    let assigned =
      List.fold_left
        (fun acc b -> StrSet.union acc (Staticcheck.Env.assigned_names b))
        (Staticcheck.Env.assigned_names body)
        (List.map (fun (h : Ast.handler) -> h.Ast.h_body) handlers
         @ match fin with Some b -> [ b ] | None -> [])
    in
    let henv = havoc_lists (havoc_names assigned env) in
    let ch =
      List.fold_left
        (fun acc (h : Ast.handler) ->
          let c, _ = cost_block ctx henv h.Ast.h_body in
          aff_max acc c)
        (aff_const 0) handlers
    in
    let cf =
      match fin with
      | Some b -> fst (cost_block ctx henv b)
      | None -> aff_const 0
    in
    (* body + one handler + finally at most twice (normal path plus a
       re-raise path cannot both happen, but the max is cheap) *)
    (aff_add base (aff_add cb (aff_add ch (aff_scale 2 cf))), henv)
  | Ast.Func_def f -> (base, StrMap.add f.Ast.fname Atop env)
  | Ast.Class_def c -> (base, StrMap.add c.Ast.cname Atop env)

(* ------------------------------------------------------------------ *)
(* Function-level bounds                                               *)
(* ------------------------------------------------------------------ *)

(* Entry/exit overhead outside the body (closure call, return event,
   the traced-run wrapper) plus margin. *)
let slack = 64

let stmt_cost_straight (s : Ast.stmt) = 1 + stmt_expr_nodes s

(** Step bound for an entry function called with a single string
    argument.  [ctx.notobj] must come from {!Purity.notobj_set} for the
    same function. *)
let func_bound (ctx : ctx) (f : Ast.func) : Domain.bound =
  match f.Ast.params with
  | [ p ] -> (
    let env0 = StrMap.singleton p (Astr { a = 1; b = 0 }) in
    match cost_block ctx env0 f.Ast.body with
    | cost, _ ->
      Domain.Terminates { a = cost.a; b = cost.b + slack }
    | exception Abort -> (
      match Staticcheck.Loops.spin_shape f with
      | Some shape ->
        let prefix_cost =
          List.fold_left
            (fun acc s -> acc + stmt_cost_straight s)
            0 shape.Staticcheck.Loops.spin_prefix
        in
        Domain.Spins_after
          (prefix_cost + 1
          + expr_nodes shape.Staticcheck.Loops.spin_cond
          + slack)
      | None -> Domain.Bound_unknown))
  | _ -> Domain.Bound_unknown
