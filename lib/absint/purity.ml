(** Effect & purity analysis (DESIGN.md §13).

    Proves that a candidate entry function is deterministic and free of
    effects observable outside a single run: no [print] (the only
    output channel captured in a run result), no ambient-channel reads
    ([input()], [open()], [sys.argv]), no [global], and no calls whose
    body we cannot see.  Mutation of local or module state is *not*
    an effect here: the driver loads a fresh module scope per run, so
    nothing mutated can survive into the next one.

    Must-style: [prove] returns [true] only on proof; [false] means
    "not proven", never "impure".  The key soundness device is the
    *notobj* judgment — a variable or expression proven to never hold a
    user-defined object — which is required before a method call is
    admitted (a method on a user object dispatches to arbitrary class
    code; a method on a string/list/dict dispatches to the
    interpreter's own native implementations). *)

open Minilang
module StrSet = Staticcheck.Env.StrSet

type ctx = {
  module_bindings : StrSet.t;
      (** every name bound at module scope: function/class defs and
          top-level assignments.  A name in this set shadows builtins
          and catches read-before-assign of locals. *)
  lookup : string -> Ast.func option;
      (** uniquely-defined module-level functions, [None] for names
          that are multiply defined or also assigned *)
}

let pure_builtins =
  List.filter
    (fun n -> n <> "print" && n <> "input" && n <> "open")
    Interp.builtin_names

let re_methods = [ "match"; "fullmatch"; "search"; "findall" ]

exception Unproven

(* ------------------------------------------------------------------ *)
(* Per-function binding info                                           *)
(* ------------------------------------------------------------------ *)

type finfo = {
  params : string list;
  locals : StrSet.t;  (** every name bound in the frame *)
  assigns : (string * Ast.expr) list;
      (** pseudo-assignments [var := expr]; tuple-unpack and for-loop
          targets record the *iterable* (element-of a notobj aggregate
          is notobj) *)
  flagged : StrSet.t;  (** names we refuse to type (nested defs, …) *)
}

let finfo_of (f : Ast.func) : finfo =
  let assigns = ref [] and flagged = ref StrSet.empty in
  let rec tgt_vars acc = function
    | Ast.Tvar v -> v :: acc
    | Ast.Ttuple ts -> List.fold_left tgt_vars acc ts
    | Ast.Tindex _ | Ast.Tattr _ -> acc
  in
  let rec go stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s with
        | Ast.Assign (t, e, _) ->
          List.iter (fun v -> assigns := (v, e) :: !assigns) (tgt_vars [] t)
        | Ast.Aug_assign (t, op, e, pos) ->
          List.iter
            (fun v ->
              assigns := (v, Ast.Binop (op, Ast.Var v, e, pos)) :: !assigns)
            (tgt_vars [] t)
        | Ast.For (t, iter, body, _) ->
          List.iter (fun v -> assigns := (v, iter) :: !assigns) (tgt_vars [] t);
          go body
        | Ast.If (arms, els) ->
          List.iter (fun (_, _, b) -> go b) arms;
          Option.iter go els
        | Ast.While (_, _, b) -> go b
        | Ast.Try (b, handlers, fin) ->
          go b;
          List.iter
            (fun (h : Ast.handler) ->
              (match h.Ast.h_bind with
               | Some v -> assigns := (v, Ast.Str "") :: !assigns
               | None ->
                 (match h.Ast.h_filter with
                  | Some n when not (List.mem n Interp.known_exception_kinds)
                    ->
                    (* py2-style "except e:" binds the message *)
                    assigns := (n, Ast.Str "") :: !assigns
                  | _ -> ()));
              go h.Ast.h_body)
            handlers;
          Option.iter go fin
        | Ast.Func_def g -> flagged := StrSet.add g.Ast.fname !flagged
        | Ast.Class_def c -> flagged := StrSet.add c.Ast.cname !flagged
        | Ast.Global ns ->
          List.iter (fun n -> flagged := StrSet.add n !flagged) ns
        | Ast.Expr_stmt _ | Ast.Return _ | Ast.Raise _ | Ast.Break _
        | Ast.Continue _ | Ast.Pass -> ())
      stmts
  in
  go f.Ast.body;
  (* default-parameter expressions behave like assignments to the
     params they initialize *)
  List.iter (fun (p, e) -> assigns := (p, e) :: !assigns) f.Ast.defaults;
  let locals =
    List.fold_left
      (fun acc (v, _) -> StrSet.add v acc)
      (StrSet.union !flagged
         (List.fold_left (fun acc p -> StrSet.add p acc) StrSet.empty
            f.Ast.params))
      !assigns
  in
  { params = f.Ast.params; locals; assigns = !assigns; flagged = !flagged }

(* ------------------------------------------------------------------ *)
(* The notobj judgment                                                 *)
(* ------------------------------------------------------------------ *)

let shadowed ctx (info : finfo) name =
  StrSet.mem name info.locals || StrSet.mem name ctx.module_bindings

(* [notobj s e]: under the assumption that every variable in [s] holds
   a non-object value, [e] evaluates (when it does not raise) to a
   value containing no user-defined object at any depth. *)
let rec notobj ctx info s (e : Ast.expr) : bool =
  match e with
  | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.None_lit -> true
  | Ast.Var v -> StrSet.mem v s
  | Ast.Binop (_, a, b, _) -> notobj ctx info s a && notobj ctx info s b
  | Ast.Unop (_, a) -> notobj ctx info s a
  | Ast.Method (Ast.Var "re", m, args, _)
    when (not (shadowed ctx info "re")) && List.mem m re_methods ->
    (* [re.match(...)] parses as a Method on the module value; the re
       bridge returns strings, lists of strings, or None *)
    List.for_all (notobj ctx info s) args
  | Ast.Method (r, _, args, _) ->
    (* native string/list/dict/tuple methods return scalars, strings or
       aggregates of their (notobj) receiver and arguments *)
    notobj ctx info s r && List.for_all (notobj ctx info s) args
  | Ast.Call (Ast.Var f, args, _) ->
    (not (shadowed ctx info f))
    && List.mem f pure_builtins
    && List.for_all (notobj ctx info s) args
  | Ast.Call (Ast.Attr (Ast.Var "re", m), args, _) ->
    (not (shadowed ctx info "re"))
    && List.mem m re_methods
    && List.for_all (notobj ctx info s) args
  | Ast.Call _ -> false
  | Ast.Index (a, i, _) -> notobj ctx info s a && notobj ctx info s i
  | Ast.Slice (a, lo, hi, _) ->
    notobj ctx info s a
    && List.for_all
         (function Some e -> notobj ctx info s e | None -> true)
         [ lo; hi ]
  | Ast.List_lit es | Ast.Tuple_lit es -> List.for_all (notobj ctx info s) es
  | Ast.Dict_lit kvs ->
    List.for_all
      (fun (k, v) -> notobj ctx info s k && notobj ctx info s v)
      kvs
  | Ast.Cond (c, a, b, _) ->
    notobj ctx info s c && notobj ctx info s a && notobj ctx info s b
  | Ast.Attr _ -> false

(* Greatest fixpoint: start from every typable candidate and remove
   variables until all their (pseudo-)assignments are notobj under the
   surviving set.  A candidate must not be module-shadowed: reading a
   local before its first assignment falls through to module scope,
   where the name could be bound to an object.  (An unshadowed
   premature read yields NameError or a builtin — deterministic, and
   never a user object.) *)
let notobj_fixpoint ctx (info : finfo) ~(params_notobj : bool) : StrSet.t =
  let candidate v =
    (not (StrSet.mem v info.flagged))
    && (not (StrSet.mem v ctx.module_bindings))
    (* an untyped parameter's *entry* value may be read before any
       reassignment, so without params_notobj a param can never
       qualify, reassigned or not *)
    && (params_notobj || not (List.mem v info.params))
  in
  let init =
    let from_params =
      if params_notobj then List.filter candidate info.params else []
    in
    let from_assigns =
      List.filter_map
        (fun (v, _) -> if candidate v then Some v else None)
        info.assigns
    in
    List.fold_left (fun acc v -> StrSet.add v acc) StrSet.empty
      (from_params @ from_assigns)
  in
  let rec iterate s =
    let s' =
      StrSet.filter
        (fun v ->
          List.for_all (fun (w, e) -> w <> v || notobj ctx info s e)
            info.assigns)
        s
    in
    if StrSet.equal s s' then s else iterate s'
  in
  iterate init

(* ------------------------------------------------------------------ *)
(* The proof walk                                                      *)
(* ------------------------------------------------------------------ *)

let max_depth = 32
let max_funcs = 64

let rec check_func ctx ~depth ~seen (f : Ast.func) ~params_notobj : unit =
  if depth > max_depth || List.length !seen > max_funcs then raise Unproven;
  let info = finfo_of f in
  let s = notobj_fixpoint ctx info ~params_notobj in
  let rec check_expr (e : Ast.expr) : unit =
    match e with
    | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.None_lit
    | Ast.Var _ -> ()
    | Ast.Binop (_, a, b, _) -> check_expr a; check_expr b
    | Ast.Unop (_, a) -> check_expr a
    | Ast.Call (Ast.Var fn, args, _) ->
      List.iter check_expr args;
      if StrSet.mem fn info.locals then raise Unproven
      else if StrSet.mem fn ctx.module_bindings then begin
        match ctx.lookup fn with
        | Some g ->
          let args_ok = List.for_all (notobj ctx info s) args in
          let key = (g.Ast.fname, args_ok) in
          if not (List.mem key !seen) then begin
            seen := key :: !seen;
            check_func ctx ~depth:(depth + 1) ~seen g ~params_notobj:args_ok
          end
        | None -> raise Unproven
      end
      else if fn = "print" || fn = "input" || fn = "open" then raise Unproven
      else ()
      (* pure builtin, exception constructor, or unbound name
         (deterministic NameError) *)
    | Ast.Call (Ast.Attr (Ast.Var "re", m), args, _)
      when (not (shadowed ctx info "re")) && List.mem m re_methods ->
      List.iter check_expr args
    | Ast.Call _ -> raise Unproven
    | Ast.Method (Ast.Var "re", m, args, _)
      when (not (shadowed ctx info "re")) && List.mem m re_methods ->
      List.iter check_expr args
    | Ast.Method (r, _, args, _) ->
      check_expr r;
      List.iter check_expr args;
      if not (notobj ctx info s r) then raise Unproven
    | Ast.Attr (Ast.Var "sys", _) when not (shadowed ctx info "sys") ->
      raise Unproven  (* ambient argv *)
    | Ast.Attr (a, _) -> check_expr a
    | Ast.Index (a, i, _) -> check_expr a; check_expr i
    | Ast.Slice (a, lo, hi, _) ->
      check_expr a;
      Option.iter check_expr lo;
      Option.iter check_expr hi
    | Ast.List_lit es | Ast.Tuple_lit es -> List.iter check_expr es
    | Ast.Dict_lit kvs -> List.iter (fun (k, v) -> check_expr k; check_expr v) kvs
    | Ast.Cond (c, a, b, _) -> check_expr c; check_expr a; check_expr b
  in
  let rec check_block stmts =
    List.iter
      (fun (st : Ast.stmt) ->
        List.iter check_expr (Staticcheck.Env.stmt_exprs st);
        match st with
        | Ast.Global _ -> raise Unproven
        | Ast.If (arms, els) ->
          List.iter (fun (_, _, b) -> check_block b) arms;
          Option.iter check_block els
        | Ast.While (_, _, b) -> check_block b
        | Ast.For (_, _, b, _) -> check_block b
        | Ast.Try (b, handlers, fin) ->
          check_block b;
          List.iter (fun (h : Ast.handler) -> check_block h.Ast.h_body)
            handlers;
          Option.iter check_block fin
        (* defining a nested function or class is pure; calling one
           goes through a local name, which check_expr rejects *)
        | Ast.Func_def _ | Ast.Class_def _ -> ()
        | Ast.Expr_stmt _ | Ast.Assign _ | Ast.Aug_assign _ | Ast.Return _
        | Ast.Raise _ | Ast.Break _ | Ast.Continue _ | Ast.Pass -> ())
      stmts
  in
  List.iter (fun (_, e) -> check_expr e) f.Ast.defaults;
  check_block f.Ast.body

(** [prove ctx f] — [true] only when every execution of [f] (entry
    parameters bound to strings) is deterministic and effect-free as
    defined above. *)
let prove (ctx : ctx) (f : Ast.func) : bool =
  match
    check_func ctx ~depth:0
      ~seen:(ref [ (f.Ast.fname, true) ])
      f ~params_notobj:true
  with
  | () -> true
  | exception Unproven -> false

(** The notobj set of a function body under string parameters — shared
    with {!Stepbound}, which needs the same receiver typing to know
    that method calls dispatch natively (no hidden ticking bodies). *)
let notobj_set (ctx : ctx) (f : Ast.func) : StrSet.t =
  notobj_fixpoint ctx (finfo_of f) ~params_notobj:true
