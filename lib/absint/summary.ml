(** Symbolic summarization (DESIGN.md §13).

    Extracts, for a single-parameter candidate entry function, a
    guard-routed decision tree whose leaves are the *exact* trace
    effects of each loop-free execution path.  Guards observe only pure
    total derivations of the input string, so the tree can be evaluated
    without the interpreter — the compiled fast path.

    Must-style: any construct outside the supported fragment aborts to
    [None].  Within the fragment every claim is exact, not
    approximate — supported expressions cannot raise, cannot emit
    events, and depend on nothing but the input string, so the events
    attached to a leaf are precisely what {!Minilang.Interp} emits for
    any input routed there.  The differential fuzz suite compares leaf
    events against concrete [run.trace] verbatim. *)

open Minilang
module StrMap = Map.Make (String)

exception Give_up

(** A leaf-count cap: pathological candidates (deep if-chains over
    boolean combinations) blow up exponentially under path
    enumeration; beyond this the summary is abandoned, never
    truncated. *)
let max_leaves = 48

type const = Kstr of string | Kint of int | Kbool of bool | Knone

(** Symbolic value of an expression, as a function of the input. *)
type sym =
  | Sinput of Domain.chain  (** chain applied to the input string *)
  | Sconst of const
  | Smatch of Domain.rmode * string * Domain.chain
      (** [re.<mode>(pat, chain(input))]: a (possibly empty) [Vstr]
          match or [Vnone]; the pattern is known to parse *)
  | Slen of Domain.chain  (** [len(chain(input))] *)
  | Sbool of Domain.guard
      (** a [Vbool] whose truth is exactly this guard *)

type ctx = { shadowed : string -> bool }

let const_truthy = function
  | Kstr s -> s <> ""
  | Kint n -> n <> 0
  | Kbool b -> b
  | Knone -> false

(* Value.equal restricted to the constants we track (bool/int compare
   numerically, cross-type otherwise unequal). *)
let const_equal a b =
  match (a, b) with
  | Kstr x, Kstr y -> String.equal x y
  | Kint x, Kint y -> x = y
  | Kbool x, Kbool y -> x = y
  | Kbool x, Kint y | Kint y, Kbool x -> (if x then 1 else 0) = y
  | Knone, Knone -> true
  | _ -> false

(* A string-method step expressible as a Domain.deriv, argument forms
   exactly as str_method dispatches them. *)
let deriv_of m (args : Ast.expr list) : Domain.deriv option =
  match (m, args) with
  | "strip", [] -> Some (Domain.Strip (None, true, true))
  | "strip", [ Ast.Str cs ] -> Some (Domain.Strip (Some cs, true, true))
  | "lstrip", [] -> Some (Domain.Strip (None, true, false))
  | "lstrip", [ Ast.Str cs ] -> Some (Domain.Strip (Some cs, true, false))
  | "rstrip", [] -> Some (Domain.Strip (None, false, true))
  | "rstrip", [ Ast.Str cs ] -> Some (Domain.Strip (Some cs, false, true))
  | "lower", [] -> Some Domain.Lower
  | "upper", [] -> Some Domain.Upper
  | "replace", [ Ast.Str o; Ast.Str n ] -> Some (Domain.Replace (o, n))
  | _ -> None

let cclass_of = function
  | "isdigit" -> Some Domain.Cdigit
  | "isalpha" -> Some Domain.Calpha
  | "isalnum" -> Some Domain.Calnum
  | "isspace" -> Some Domain.Cspace
  | _ -> None

let icmp_of (op : Ast.binop) : Domain.icmp =
  match op with
  | Ast.Lt -> Domain.Clt
  | Ast.Le -> Domain.Cle
  | Ast.Gt -> Domain.Cgt
  | Ast.Ge -> Domain.Cge
  | Ast.Eq -> Domain.Ceq
  | Ast.Neq -> Domain.Cne
  | _ -> raise Give_up

let icmp_flip = function
  | Domain.Clt -> Domain.Cgt
  | Domain.Cle -> Domain.Cge
  | Domain.Cgt -> Domain.Clt
  | Domain.Cge -> Domain.Cle
  | (Domain.Ceq | Domain.Cne) as c -> c

let rmode_of = function
  | "match" -> Some Domain.Rmatch
  | "fullmatch" -> Some Domain.Rfullmatch
  | "search" -> Some Domain.Rsearch
  | _ -> None

let rec sym_of ctx env (e : Ast.expr) : sym =
  match e with
  | Ast.Str s -> Sconst (Kstr s)
  | Ast.Int n -> Sconst (Kint n)
  | Ast.Bool b -> Sconst (Kbool b)
  | Ast.None_lit -> Sconst Knone
  | Ast.Var v -> (
    match StrMap.find_opt v env with Some s -> s | None -> raise Give_up)
  (* [re.match(...)] parses as a Method on the module value (unshadowed
     [re] resolves to the interpreter's re bridge) *)
  | Ast.Method (Ast.Var "re", m, [ Ast.Str pat; sub ], _)
    when not (ctx.shadowed "re") -> (
    match rmode_of m with
    | Some mode -> (
      match sym_of ctx env sub with
      | Sinput ch -> (
        (* the pattern must compile, otherwise the call raises at
           runtime — outside the fragment *)
        match Regexlite.parse pat with
        | _ -> Smatch (mode, pat, ch)
        | exception Regexlite.Parse_error _ -> raise Give_up)
      | _ -> raise Give_up)
    | None -> raise Give_up)
  | Ast.Method (r, m, args, _) -> (
    match sym_of ctx env r with
    | Sinput ch -> (
      match deriv_of m args with
      | Some d -> Sinput (ch @ [ d ])
      | None -> (
        match (cclass_of m, m, args) with
        | Some c, _, [] -> Sbool (Domain.Gatom (Domain.Char_class (c, ch)))
        | None, "startswith", [ Ast.Str p ] ->
          Sbool (Domain.Gatom (Domain.Starts_with (p, ch)))
        | None, "endswith", [ Ast.Str p ] ->
          Sbool (Domain.Gatom (Domain.Ends_with (p, ch)))
        | _ -> raise Give_up))
    | Sconst (Kstr s) -> (
      (* constant receiver: fold with the interpreter's own primitive *)
      match deriv_of m args with
      | Some d -> Sconst (Kstr (Domain.apply_deriv s d))
      | None -> (
        match (cclass_of m, m, args) with
        | Some c, _, [] ->
          Sconst (Kbool (Strops.string_forall (Domain.cclass_pred c) s))
        | None, "startswith", [ Ast.Str p ] ->
          Sconst (Kbool (Strops.starts_with ~prefix:p s))
        | None, "endswith", [ Ast.Str p ] ->
          Sconst (Kbool (Strops.ends_with ~suffix:p s))
        | _ -> raise Give_up))
    | _ -> raise Give_up)
  | Ast.Call (Ast.Var "len", [ a ], _) when not (ctx.shadowed "len") -> (
    match sym_of ctx env a with
    | Sinput ch -> Slen ch
    | Sconst (Kstr s) -> Sconst (Kint (String.length s))
    | _ -> raise Give_up)
  | Ast.Call (Ast.Var "bool", [ a ], _) when not (ctx.shadowed "bool") ->
    Sbool (truth_guard ctx env a)
  | Ast.Call (Ast.Attr (Ast.Var "re", m), [ Ast.Str pat; sub ], _)
    when not (ctx.shadowed "re") -> (
    match rmode_of m with
    | Some mode -> (
      match sym_of ctx env sub with
      | Sinput ch -> (
        (* the pattern must compile, otherwise the call raises at
           runtime — outside the fragment *)
        match Regexlite.parse pat with
        | _ -> Smatch (mode, pat, ch)
        | exception Regexlite.Parse_error _ -> raise Give_up)
      | _ -> raise Give_up)
    | None -> raise Give_up)
  | Ast.Unop (Ast.Not, a) -> Sbool (Domain.Gnot (truth_guard ctx env a))
  | Ast.Binop ((Ast.Eq | Ast.Neq) as op, a, b, _) ->
    let g = eq_guard ctx env a b in
    Sbool (if op = Ast.Eq then g else Domain.Gnot g)
  | Ast.Binop ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b, _) -> (
    match (sym_of ctx env a, sym_of ctx env b) with
    | Slen ch, Sconst (Kint n) ->
      Sbool (Domain.Gatom (Domain.Len_cmp (icmp_of op, n, ch)))
    | Sconst (Kint n), Slen ch ->
      (* n OP len ⟺ len FLIP(OP) n *)
      Sbool (Domain.Gatom (Domain.Len_cmp (icmp_flip (icmp_of op), n, ch)))
    | Sconst (Kint x), Sconst (Kint y) ->
      Sbool (Domain.Gconst (Domain.icmp_eval (icmp_of op) x y))
    | Sconst (Kstr x), Sconst (Kstr y) ->
      Sbool
        (Domain.Gconst (Domain.icmp_eval (icmp_of op) (String.compare x y) 0))
    | _ -> raise Give_up)
  | Ast.Binop ((Ast.In | Ast.Not_in) as op, a, b, _) ->
    let g =
      match (sym_of ctx env a, sym_of ctx env b) with
      | Sconst (Kstr needle), Sinput ch ->
        Domain.Gatom (Domain.Contains (needle, ch))
      | Sconst (Kstr needle), Sconst (Kstr hay) ->
        Domain.Gconst
          (needle = "" || Strops.find_substring hay needle >= 0)
      | _ -> raise Give_up
    in
    Sbool (if op = Ast.In then g else Domain.Gnot g)
  | Ast.Binop ((Ast.And | Ast.Or) as op, a, b, _) -> (
    (* `a and b` returns an operand, not a bool — only when both sides
       are Vbool is the result a Vbool with the conjoined truth *)
    match (sym_of ctx env a, sym_of ctx env b) with
    | Sbool ga, Sbool gb ->
      Sbool
        (if op = Ast.And then Domain.Gand (ga, gb) else Domain.Gor (ga, gb))
    | _ -> raise Give_up)
  | _ -> raise Give_up

(* Truthiness of a supported expression as a guard.  And/Or handled
   here structurally (short-circuit truthiness is the conjunction /
   disjunction of operand truthiness for *any* operand types). *)
and truth_guard ctx env (e : Ast.expr) : Domain.guard =
  match e with
  | Ast.Binop (Ast.And, a, b, _) ->
    Domain.Gand (truth_guard ctx env a, truth_guard ctx env b)
  | Ast.Binop (Ast.Or, a, b, _) ->
    Domain.Gor (truth_guard ctx env a, truth_guard ctx env b)
  | Ast.Unop (Ast.Not, a) -> Domain.Gnot (truth_guard ctx env a)
  | _ -> (
    match sym_of ctx env e with
    | Sinput ch -> Domain.Gatom (Domain.Len_cmp (Domain.Cgt, 0, ch))
    | Slen ch -> Domain.Gatom (Domain.Len_cmp (Domain.Cgt, 0, ch))
    | Smatch (m, pat, ch) -> Domain.Gatom (Domain.Regex (m, pat, ch))
    | Sbool g -> g
    | Sconst k -> Domain.Gconst (const_truthy k))

(* Equality guard, mirroring Value.equal's cross-type rules for the
   sym pairs whose outcome we can decide. *)
and eq_guard ctx env a b : Domain.guard =
  match (sym_of ctx env a, sym_of ctx env b) with
  | Sinput ch, Sconst (Kstr lit) | Sconst (Kstr lit), Sinput ch ->
    Domain.Gatom (Domain.Str_eq (lit, ch))
  | Slen ch, Sconst (Kint n) | Sconst (Kint n), Slen ch ->
    Domain.Gatom (Domain.Len_cmp (Domain.Ceq, n, ch))
  | Sinput _, Sconst Knone | Sconst Knone, Sinput _ ->
    (* a Vstr never equals Vnone *)
    Domain.Gconst false
  | Sbool g, Sconst (Kbool true) | Sconst (Kbool true), Sbool g -> g
  | Sbool g, Sconst (Kbool false) | Sconst (Kbool false), Sbool g ->
    Domain.Gnot g
  | Sconst x, Sconst y -> Domain.Gconst (const_equal x y)
  | _ -> raise Give_up

(* ------------------------------------------------------------------ *)
(* Path enumeration                                                    *)
(* ------------------------------------------------------------------ *)

let abstract_const = function
  | Kbool b -> Trace.Rbool b
  | Kint n -> if n = 0 then Trace.Rzero else Trace.Rnonzero
  | Kstr s -> if s = "" then Trace.Rzero else Trace.Rnonzero
  | Knone -> Trace.Rnone

type walk_state = { ctx : ctx; leaves : int ref }

let mk_leaf st acc ret raised : Domain.summary =
  incr st.leaves;
  if !(st.leaves) > max_leaves then raise Give_up;
  Domain.Leaf
    { Domain.pe_branches = List.rev acc; pe_ret = ret; pe_raised = raised }

(* The tree for a `return e` at [pos]: constants and booleans resolve
   to one leaf; input-dependent strings/ints split on emptiness (the
   abstraction Trace.abstract_value applies). *)
let ret_tree st env acc (e_opt : Ast.expr option) (pos : Ast.pos) :
    Domain.summary =
  let site = Trace.site_of_pos pos in
  match e_opt with
  | None -> mk_leaf st acc (Some (site, Trace.Rnone)) None
  | Some e -> (
    match sym_of st.ctx env e with
    | Sconst k -> mk_leaf st acc (Some (site, abstract_const k)) None
    | Sbool g ->
      Domain.Node
        {
          guard = g;
          if_true = mk_leaf st acc (Some (site, Trace.Rbool true)) None;
          if_false = mk_leaf st acc (Some (site, Trace.Rbool false)) None;
        }
    | Sinput ch | Slen ch ->
      (* Vstr "" and Vint 0 both abstract to Rzero *)
      Domain.Node
        {
          guard = Domain.Gatom (Domain.Len_cmp (Domain.Cgt, 0, ch));
          if_true = mk_leaf st acc (Some (site, Trace.Rnonzero)) None;
          if_false = mk_leaf st acc (Some (site, Trace.Rzero)) None;
        }
    | Smatch _ ->
      (* would need a three-way split (no match → Rnone, empty match →
         Rzero, else Rnonzero) with a matched-at-all atom we don't
         carry; out of fragment *)
      raise Give_up)

let raise_kind st (e_opt : Ast.expr option) : string =
  match e_opt with
  | Some (Ast.Str _) -> "Exception"
  | Some (Ast.Call (Ast.Var k, ([] | [ Ast.Str _ ]), _))
    when List.mem k Interp.known_exception_kinds && not (st.ctx.shadowed k) ->
    k
  | _ -> raise Give_up

(* CPS over blocks: [k] continues with the statements following the
   current block (for if-arm bodies rejoining the tail). *)
let rec walk st env acc (stmts : Ast.block)
    (k : sym StrMap.t -> (Trace.site * bool) list -> Domain.summary) :
    Domain.summary =
  match stmts with
  | [] -> k env acc
  | Ast.Pass :: rest -> walk st env acc rest k
  | Ast.Expr_stmt (e, _) :: rest ->
    (* must be total and event-free; the value is discarded *)
    ignore (truth_guard st.ctx env e);
    walk st env acc rest k
  | Ast.Assign (Ast.Tvar v, e, _) :: rest ->
    walk st (StrMap.add v (sym_of st.ctx env e) env) acc rest k
  | Ast.Return (e_opt, pos) :: _ -> ret_tree st env acc e_opt pos
  | Ast.Raise (e_opt, _) :: _ ->
    mk_leaf st acc None (Some (raise_kind st e_opt))
  | Ast.If (arms, els) :: rest ->
    let k_rest env acc = walk st env acc rest k in
    let rec expand env acc = function
      | [] -> (
        match els with
        | Some b -> walk st env acc b k_rest
        | None -> k_rest env acc)
      | (cond, pos, body) :: more ->
        let g = truth_guard st.ctx env cond in
        let site = Trace.site_of_pos pos in
        Domain.Node
          {
            guard = g;
            if_true = walk st env ((site, true) :: acc) body k_rest;
            if_false = expand env ((site, false) :: acc) more;
          }
    in
    expand env acc arms
  | ( Ast.Assign _ | Ast.Aug_assign _ | Ast.While _ | Ast.For _ | Ast.Try _
    | Ast.Break _ | Ast.Continue _ | Ast.Func_def _ | Ast.Class_def _
    | Ast.Global _ ) :: _ -> raise Give_up

(** Summarize a single-string-parameter entry function, or [None] if
    any construct falls outside the exactly-modelled fragment. *)
let func ~(shadowed : string -> bool) (f : Ast.func) : Domain.summary option =
  match f.Ast.params with
  | [ p ] -> (
    let st = { ctx = { shadowed }; leaves = ref 0 } in
    let env = StrMap.singleton p (Sinput []) in
    let fall_off env acc =
      ignore env;
      (* implicit return records Rvoid at the function's def site *)
      mk_leaf st acc
        (Some (Trace.site_of_pos f.Ast.fpos, Trace.Rvoid))
        None
    in
    match walk st env [] f.Ast.body fall_off with
    | tree -> Some tree
    | exception Give_up -> None)
  | _ -> None
