(** Indentation-sensitive lexer for MiniScript (Python-style physical
    lines, INDENT/DEDENT from a leading-whitespace stack, newlines
    suppressed inside brackets). *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | NAME of string
  | KEYWORD of string
  | OP of string
  | NEWLINE
  | INDENT
  | DEDENT
  | EOF

type loc_token = { tok : token; tline : int }

exception Lex_error of string * int  (** message, line *)

val keywords : string list
val is_keyword : string -> bool

val intern : string -> string
(** Domain-local identifier interning: every occurrence of the same
    spelling returns one canonical string, so consumers hashing
    identifiers (Staticcheck, the VM compiler's slot maps) re-hash each
    distinct name once per domain and get physical equality on hits.
    All [NAME] tokens are emitted pre-interned. *)

val tokenize : file:string -> string -> loc_token list
(** @raise Lex_error on malformed input. *)

val token_to_string : token -> string
