(** Abstract syntax tree for MiniScript, the Python-like language in
    which the simulated open-source corpus is written.

    Every node that can generate a trace event (conditions, returns,
    raises, assignments) carries the source line on which it appears;
    the pair [(file, line)] is the event's site identifier, mirroring
    the paper's byte-code instrumentation (Appendix D.2). *)

type pos = { file : string; line : int }

type binop =
  | Add | Sub | Mul | Div | Floordiv | Mod | Pow
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | In | Not_in
  | Bxor | Band | Bor | Shl | Shr

type unop = Neg | Not

type expr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | None_lit
  | Var of string
  | Binop of binop * expr * expr * pos
  | Unop of unop * expr
  | Call of expr * expr list * pos
  | Method of expr * string * expr list * pos
      (** [obj.name(args)] — method call on strings/lists/dicts/objects. *)
  | Attr of expr * string
  | Index of expr * expr * pos
  | Slice of expr * expr option * expr option * pos
  | List_lit of expr list
  | Dict_lit of (expr * expr) list
  | Tuple_lit of expr list
  | Cond of expr * expr * expr * pos  (** [a if c else b] *)

type target =
  | Tvar of string
  | Tindex of expr * expr
  | Tattr of expr * string
  | Ttuple of target list

type stmt =
  | Expr_stmt of expr * pos
  | Assign of target * expr * pos
  | Aug_assign of target * binop * expr * pos  (** [x += e] etc. *)
  | If of (expr * pos * block) list * block option
      (** Chain of (condition, site, body) for if/elif, plus else. *)
  | While of expr * pos * block
  | For of target * expr * block * pos
  | Return of expr option * pos
  | Raise of expr option * pos
  | Try of block * handler list * block option
      (** try body, except handlers, finally block. *)
  | Break of pos
  | Continue of pos
  | Pass
  | Func_def of func
  | Class_def of cls
  | Global of string list

and block = stmt list

and handler = {
  h_filter : string option;
      (** exception-kind name such as "ValueError"; [None] catches all.
          A name that is not a known kind acts as a Python-2-style
          catch-all binder instead. *)
  h_bind : string option;  (** variable receiving the exception message *)
  h_body : block;
}

and func = {
  fname : string;
  params : string list;
  defaults : (string * expr) list;  (** trailing params with default values *)
  body : block;
  fpos : pos;
}

and cls = {
  cname : string;
  methods : func list;
  class_body : block;  (** statements other than defs, e.g. class attrs *)
  cpos : pos;
}

type program = { prog_file : string; prog_body : block }

val pos_to_string : pos -> string
val binop_to_string : binop -> string

val fold_stmts : ('a -> stmt -> 'a) -> 'a -> block -> 'a
(** Fold over every statement, descending into nested function and
    class bodies.  Used by the repository analyzer. *)
