(** Bytecode executor for {!Compile} programs.

    The VM is an exact drop-in for the tree-walking evaluator in
    {!Interp}: identical {!Trace.event} streams, identical outcomes,
    identical [ctx.steps] at every observable point (the tick contract
    documented in {!Absint.Stepbound}), identical error messages —
    including the tree-walker's own quirks (the call-depth counter
    leaks on argument-binding errors, [__init__] runs before the
    [__class__] field is attached, handler binders bypass the [global]
    flag).  The differential fuzzer in [test/test_vm.ml] and the
    [make vm-diff] smoke assert this bit-for-bit.

    Frames live on a single growable value array shared per run
    ([ctx.vm_stack]): a call reserves [nslots + max operand depth]
    cells above the watermark, so steady-state execution allocates
    nothing for locals or operands. *)

open Value
open Compile

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

(** Sentinel marking an unbound local slot; compared with [==] so a
    user-level string can never collide with it. *)
let unset : Value.t = Vbuiltin "\000unset"

type frame = {
  base : int;  (** first slot index in [ctx.vm_stack] *)
  sp0 : int;  (** operand-stack bottom = [base + nslots] *)
  mutable sp : int;
  mutable iters : Value.t list list;
      (** active [for]-loop iterator stack, innermost first *)
  mutable globals : (string, unit) Hashtbl.t option;
      (** names declared [global]; created lazily like the
          tree-walker's [frame.global_names] *)
  scope : Value.scope;
      (** module mode: the executing scope; function mode: the module
          root (locals live in slots) — this is what closures capture *)
  root : Value.scope;  (** module scope, for global stores/loads *)
}

let ensure_capacity (ctx : Rt.ctx) need =
  let cur = Array.length ctx.Rt.vm_stack in
  if cur < need then begin
    let bigger = Array.make (max need (max 64 (2 * cur))) unset in
    Array.blit ctx.Rt.vm_stack 0 bigger 0 cur;
    ctx.Rt.vm_stack <- bigger
  end

let call_pos : Ast.pos = { Ast.file = "<call>"; line = 0 }

(* ------------------------------------------------------------------ *)
(* Dispatch loop                                                       *)
(* ------------------------------------------------------------------ *)

let rec exec (ctx : Rt.ctx) (fr : frame) (code : Compile.code) =
  let instrs = code.c_instrs in
  let n = Array.length instrs in
  let pc = ref 0 in
  let running = ref true in
  (* These helpers read [ctx.Rt.vm_stack] at call time, never from a
     cached binding: a nested call can grow (reallocate) the stack
     array, and they are defined here — once per [exec] — rather than
     inside the dispatch loop so dispatching an instruction allocates
     nothing. *)
  let push v =
    let stack = ctx.Rt.vm_stack in
    stack.(fr.sp) <- v;
    fr.sp <- fr.sp + 1
  in
  let pop () =
    fr.sp <- fr.sp - 1;
    ctx.Rt.vm_stack.(fr.sp)
  in
  let popn k =
    let stack = ctx.Rt.vm_stack in
    let rec go k acc =
      if k = 0 then acc
      else begin
        fr.sp <- fr.sp - 1;
        go (k - 1) (stack.(fr.sp) :: acc)
      end
    in
    go k []
  in
  (* Loop-control signals unwind OCaml-exception-style out of nested
     calls, exactly as in the tree-walker; when the innermost loop
     covering the raising pc lives in THIS code unit the maps give its
     landing pad, otherwise the signal keeps propagating (an enclosing
     unit or the run boundary deals with it). *)
  while !running do
    try
      while !pc < n do
        let stack = ctx.Rt.vm_stack in
        (match instrs.(!pc) with
         | I_tick k ->
           (* Fast path of {!Rt.tick_n}, inlined: the compiler is not
              flambda, so the cross-module call would cost as much as
              the charge itself.  Any condition the fast path cannot
              settle (fired token, budget crossing, armed deadline)
              defers to [tick_n] with [steps] untouched, which then
              replays the exact sequential-tick semantics. *)
           (match ctx.Rt.cancel with
            | Some tok when Atomic.get tok -> Rt.tick_n ctx k
            | _ ->
              let s = ctx.Rt.steps + k in
              if s > ctx.Rt.config.Rt.max_steps then Rt.tick_n ctx k
              else begin
                ctx.Rt.steps <- s;
                match ctx.Rt.deadline_ns with
                | None -> ()
                | Some d ->
                  (* first multiple of 256 in (s-k, s] *)
                  let m = (((s - k) lsr 8) + 1) lsl 8 in
                  if m <= s && Telemetry.now_ns () >= d then begin
                    ctx.Rt.steps <- m;
                    raise (Rt.Cancelled Rt.deadline_message)
                  end
              end);
           incr pc
         | I_const v ->
           push v;
           incr pc
         | I_pop ->
           fr.sp <- fr.sp - 1;
           incr pc
         | I_jump t -> pc := t
         | I_and t ->
           (* [a and b]: keep the falsy lhs as the result, else drop it
              and fall through into b's code. *)
           if truthy stack.(fr.sp - 1) then begin
             fr.sp <- fr.sp - 1;
             incr pc
           end
           else pc := t
         | I_or t ->
           if truthy stack.(fr.sp - 1) then pc := t
           else begin
             fr.sp <- fr.sp - 1;
             incr pc
           end
         | I_branch (ev_taken, ev_not, t) ->
           let taken = truthy (pop ()) in
           Trace.emit ctx.Rt.collector (if taken then ev_taken else ev_not);
           if taken then incr pc else pc := t
         | I_not ->
           stack.(fr.sp - 1) <- Vbool (not (truthy stack.(fr.sp - 1)));
           incr pc
         | I_neg ->
           (match stack.(fr.sp - 1) with
            | Vint i -> stack.(fr.sp - 1) <- Vint (-i)
            | Vfloat f -> stack.(fr.sp - 1) <- Vfloat (-.f)
            | v ->
              raise_error "TypeError"
                (Printf.sprintf "bad operand type for unary -: '%s'"
                   (type_name v)));
           incr pc
         | I_binop op ->
           let vb = pop () in
           let va = stack.(fr.sp - 1) in
           let r =
             match (va, vb) with
             | Vint x, Vint y ->
               (* Hot comparisons and arithmetic inline; every other
                  shape goes through the shared evaluator. *)
               (match op with
                | Ast.Add -> Vint (x + y)
                | Ast.Sub -> Vint (x - y)
                | Ast.Mul -> Vint (x * y)
                | Ast.Lt -> Vbool (x < y)
                | Ast.Le -> Vbool (x <= y)
                | Ast.Gt -> Vbool (x > y)
                | Ast.Ge -> Vbool (x >= y)
                | Ast.Eq -> Vbool (x = y)
                | Ast.Neq -> Vbool (x <> y)
                | _ -> Rt.eval_binop op va vb)
             | Vstr x, Vstr y ->
               (match op with
                | Ast.Add -> Vstr (x ^ y)
                | Ast.Eq -> Vbool (String.equal x y)
                | Ast.Neq -> Vbool (not (String.equal x y))
                | _ -> Rt.eval_binop op va vb)
             | _ -> Rt.eval_binop op va vb
           in
           stack.(fr.sp - 1) <- r;
           incr pc
         | I_load (slot, name) ->
           let v =
             if slot >= 0 then begin
               let v = stack.(fr.base + slot) in
               if v != unset then v else load_global ctx fr name
             end
             else load_global ctx fr name
           in
           push v;
           incr pc
         | I_load_name name ->
           let v =
             match Hashtbl.find_opt fr.scope.vars name with
             | Some v -> v
             | None ->
               (match scope_lookup fr.root name with
                | Some v -> v
                | None -> Rt.lookup_fallback ctx name)
           in
           push v;
           incr pc
         | I_store (slot, name, pos) ->
           let v = pop () in
           emit_assign ctx pos name v;
           if is_global fr name then Hashtbl.replace fr.root.vars name v
           else stack.(fr.base + slot) <- v;
           incr pc
         | I_store_local (slot, name, pos) ->
           let v = pop () in
           emit_assign ctx pos name v;
           stack.(fr.base + slot) <- v;
           incr pc
         | I_store_direct slot ->
           fr.sp <- fr.sp - 1;
           stack.(fr.base + slot) <- stack.(fr.sp);
           incr pc
         | I_store_name (name, pos) ->
           let v = pop () in
           emit_assign ctx pos name v;
           if is_global fr name then Hashtbl.replace fr.root.vars name v
           else Hashtbl.replace fr.scope.vars name v;
           incr pc
         | I_store_name_direct name ->
           Hashtbl.replace fr.scope.vars name (pop ());
           incr pc
         | I_store_attr (name, pos) ->
           let obj = pop () in
           let v = pop () in
           (match obj with
            | Vobj o ->
              if ctx.Rt.collector.Trace.record_assigns then
                Trace.emit ctx.Rt.collector
                  (Trace.Assign
                     ( Trace.site_of_pos pos,
                       "self." ^ name,
                       Rt.truncate_display (to_display_string v) ));
              Hashtbl.replace o.fields name v
            | v' ->
              raise_error "AttributeError"
                (Printf.sprintf "cannot set attribute on '%s'" (type_name v')));
           incr pc
         | I_store_index ->
           let iv = pop () in
           let cv = pop () in
           let v = pop () in
           store_index cv iv v;
           incr pc
         | I_unpack k ->
           let values =
             match pop () with
             | Vtuple vs -> vs
             | Vlist l -> !l
             | _ -> raise_error "TypeError" "cannot unpack non-sequence"
           in
           if List.length values <> k then
             raise_error "ValueError" "unpacking mismatch";
           (* First element on top: stores pop them in source order. *)
           List.iter push (List.rev values);
           incr pc
         | I_attr name ->
           let v =
             match stack.(fr.sp - 1) with
             | Vobj o ->
               (match Hashtbl.find_opt o.fields name with
                | Some v -> v
                | None ->
                  raise_error "AttributeError"
                    (Printf.sprintf "'%s' object has no attribute '%s'" o.ocls
                       name))
             | Vbuiltin "re_module" -> Vbuiltin ("re." ^ name)
             | Vbuiltin "sys_module" when name = "argv" -> ctx.Rt.argv
             | v ->
               raise_error "AttributeError"
                 (Printf.sprintf "'%s' object has no attribute '%s'"
                    (type_name v) name)
           in
           stack.(fr.sp - 1) <- v;
           incr pc
         | I_index ->
           let iv = pop () in
           let cv = stack.(fr.sp - 1) in
           let r =
             match (cv, iv) with
             | Vstr s, Vint i ->
               let i = Rt.normalize_index (String.length s) i in
               if i < 0 || i >= String.length s then
                 raise_error "IndexError" "string index out of range"
               else Vstr (String.make 1 s.[i])
             | _ -> Rt.index_value cv iv
           in
           stack.(fr.sp - 1) <- r;
           incr pc
         | I_slice_check ->
           (match stack.(fr.sp - 1) with
            | Vint _ | Vnone -> ()
            | v ->
              raise_error "TypeError"
                (Printf.sprintf "slice indices must be integers, not %s"
                   (type_name v)));
           incr pc
         | I_slice (has_lo, has_hi) ->
           let opt present =
             if not present then None
             else
               match pop () with
               | Vint i -> Some i
               | _ -> None (* Vnone, guaranteed by I_slice_check *)
           in
           let lo = opt has_lo in
           let hi = opt has_hi in
           let cv = stack.(fr.sp - 1) in
           let r =
             match cv with
             | Vstr s ->
               let len = String.length s in
               let clamp v = if v < 0 then max 0 (len + v) else min v len in
               let lo = clamp (Option.value lo ~default:0) in
               let hi = clamp (Option.value hi ~default:len) in
               if hi <= lo then Vstr "" else Vstr (String.sub s lo (hi - lo))
             | _ -> Rt.slice_value cv lo hi
           in
           stack.(fr.sp - 1) <- r;
           incr pc
         | I_build_list k ->
           push (Vlist (ref (popn k)));
           incr pc
         | I_build_tuple k ->
           push (Vtuple (popn k));
           incr pc
         | I_build_dict k ->
           (* Pairs were pushed value-then-key (the tree-walker's OCaml
              tuple evaluation order); reassemble in source order. *)
           let rec go k acc =
             if k = 0 then acc
             else begin
               let kv = pop () in
               let vv = pop () in
               go (k - 1) ((kv, vv) :: acc)
             end
           in
           push (Vdict (ref (go k [])));
           incr pc
         | I_call (k, pos) ->
           (match stack.(fr.sp - k - 1) with
            | Vfun closure ->
              (* Bind arguments straight from the operand stack: the
                 cells sit below [vm_top] in the caller's reserved
                 region, so the callee cannot clobber them, and growth
                 blits keep the indices valid. *)
              let args_base = fr.sp - k in
              fr.sp <- fr.sp - k - 1;
              push (call_closure_stack ctx closure None args_base k)
            | Vbound (self, closure) ->
              let args_base = fr.sp - k in
              fr.sp <- fr.sp - k - 1;
              push (call_closure_stack ctx closure (Some self) args_base k)
            | _ ->
              let args = popn k in
              let f = pop () in
              push (call_value ctx f args pos));
           incr pc
         | I_call1 pos ->
           let a = stack.(fr.sp - 1) in
           let f = stack.(fr.sp - 2) in
           (match (f, a) with
            | Vbuiltin "len", Vstr s ->
              fr.sp <- fr.sp - 1;
              stack.(fr.sp - 1) <- Vint (String.length s)
            | Vbuiltin "len", Vlist l ->
              fr.sp <- fr.sp - 1;
              stack.(fr.sp - 1) <- Vint (List.length !l)
            | Vbuiltin "len", Vdict d ->
              fr.sp <- fr.sp - 1;
              stack.(fr.sp - 1) <- Vint (List.length !d)
            | Vbuiltin "len", Vtuple t ->
              fr.sp <- fr.sp - 1;
              stack.(fr.sp - 1) <- Vint (List.length t)
            | Vbuiltin "int", Vstr s ->
              (* Same strict parser as the generic path, so the same
                 ValueError on bad input. *)
              let r = Vint (Rt.int_of_string_strict s) in
              fr.sp <- fr.sp - 1;
              stack.(fr.sp - 1) <- r
            | Vbuiltin "int", Vint i ->
              fr.sp <- fr.sp - 1;
              stack.(fr.sp - 1) <- Vint i
            | Vbuiltin "str", v ->
              let r = Vstr (to_display_string v) in
              fr.sp <- fr.sp - 1;
              stack.(fr.sp - 1) <- r
            | _ ->
              fr.sp <- fr.sp - 2;
              push (call_value ctx f [ a ] pos));
           incr pc
         | I_method (name, k, pos, spec) ->
           (match spec with
            | M_generic ->
              let args = popn k in
              let obj = pop () in
              push (invoke_method ctx obj name args pos spec)
            | _ ->
              (* Specialized receivers rewrite the stack in place —
                 no argument list, no out-of-line dispatch.  Any shape
                 mismatch pops into the generic path, whose errors are
                 byte-identical to the tree-walker's. *)
              let handled =
                match k with
                | 0 ->
                  (match (spec, stack.(fr.sp - 1)) with
                   | M_strip, Vstr s ->
                     stack.(fr.sp - 1) <-
                       Vstr (Rt.strip_chars s None ~left:true ~right:true);
                     true
                   | M_lstrip, Vstr s ->
                     stack.(fr.sp - 1) <-
                       Vstr (Rt.strip_chars s None ~left:true ~right:false);
                     true
                   | M_rstrip, Vstr s ->
                     stack.(fr.sp - 1) <-
                       Vstr (Rt.strip_chars s None ~left:false ~right:true);
                     true
                   | M_upper, Vstr s ->
                     stack.(fr.sp - 1) <- Vstr (String.uppercase_ascii s);
                     true
                   | M_lower, Vstr s ->
                     stack.(fr.sp - 1) <- Vstr (String.lowercase_ascii s);
                     true
                   | M_isdigit, Vstr s ->
                     stack.(fr.sp - 1) <-
                       Vbool (Rt.string_forall Strops.is_digit_char s);
                     true
                   | M_isalpha, Vstr s ->
                     stack.(fr.sp - 1) <-
                       Vbool (Rt.string_forall Strops.is_alpha_char s);
                     true
                   | M_isalnum, Vstr s ->
                     stack.(fr.sp - 1) <-
                       Vbool (Rt.string_forall Strops.is_alnum_char s);
                     true
                   | M_split0, Vstr s ->
                     stack.(fr.sp - 1) <-
                       Vlist
                         (ref
                            (List.map
                               (fun x -> Vstr x)
                               (Rt.split_whitespace s)));
                     true
                   | _ -> false)
                | 1 ->
                  (match (spec, stack.(fr.sp - 2), stack.(fr.sp - 1)) with
                   | M_split1, Vstr s, Vstr sep when sep <> "" ->
                     fr.sp <- fr.sp - 1;
                     stack.(fr.sp - 1) <-
                       Vlist
                         (ref
                            (List.map
                               (fun x -> Vstr x)
                               (Strops.split_on_string sep s)));
                     true
                   | M_startswith, Vstr s, Vstr p ->
                     fr.sp <- fr.sp - 1;
                     stack.(fr.sp - 1) <- Vbool (Strops.starts_with ~prefix:p s);
                     true
                   | M_endswith, Vstr s, Vstr p ->
                     fr.sp <- fr.sp - 1;
                     stack.(fr.sp - 1) <- Vbool (Strops.ends_with ~suffix:p s);
                     true
                   | M_find, Vstr s, Vstr needle ->
                     fr.sp <- fr.sp - 1;
                     stack.(fr.sp - 1) <- Vint (Rt.find_substring s needle);
                     true
                   | M_append, Vlist l, v ->
                     fr.sp <- fr.sp - 1;
                     l := !l @ [ v ];
                     stack.(fr.sp - 1) <- Vnone;
                     true
                   | _ -> false)
                | 2 ->
                  (match
                     (spec, stack.(fr.sp - 3), stack.(fr.sp - 2),
                      stack.(fr.sp - 1))
                   with
                   | M_replace, Vstr s, Vstr o, Vstr nw ->
                     fr.sp <- fr.sp - 2;
                     stack.(fr.sp - 1) <- Vstr (Rt.replace_substring s o nw);
                     true
                   | _ -> false)
                | _ -> false
              in
              if not handled then begin
                let args = popn k in
                let obj = pop () in
                push (invoke_method ctx obj name args pos spec)
              end);
           incr pc
         | I_method_re (name, re, pos) ->
           let s_arg = pop () in
           let pat_v = pop () in
           let obj = pop () in
           (match (obj, pat_v, s_arg) with
            | Vbuiltin "re_module", Vstr pat, Vstr s ->
              push (Rt.re_apply re name pat s)
            | _ -> push (call_method ctx obj name [ pat_v; s_arg ] pos));
           incr pc
         | I_return site ->
           let v = pop () in
           Trace.emit ctx.Rt.collector (Trace.Return (site, Trace.abstract_value v));
           raise (Rt.Return_signal v)
         | I_raise_bare -> raise_error "Exception" "re-raise"
         | I_raise -> Rt.raise_value (pop ())
         | I_fail (kind, msg) -> raise_error kind msg
         | I_for_setup ->
           fr.iters <- Rt.iterate_value (pop ()) :: fr.iters;
           incr pc
         | I_for_next t ->
           (match fr.iters with
            | [] -> assert false
            | items :: rest ->
              (match items with
               | [] ->
                 fr.iters <- rest;
                 pc := t
               | x :: tl ->
                 fr.iters <- tl :: rest;
                 push x;
                 incr pc))
         | I_for_pop t ->
           fr.iters <- List.tl fr.iters;
           pc := t
         | I_break -> raise Rt.Break_signal
         | I_continue -> raise Rt.Continue_signal
         | I_global names ->
           let g =
             match fr.globals with
             | Some g -> g
             | None ->
               let g = Hashtbl.create 4 in
               fr.globals <- Some g;
               g
           in
           List.iter (fun n -> Hashtbl.replace g n ()) names;
           incr pc
         | I_func fn ->
           push (Vfun { cl_func = fn; cl_scope = fr.scope });
           incr pc
         | I_class c ->
           let methods =
             List.map
               (fun m -> (m.Ast.fname, { cl_func = m; cl_scope = fr.scope }))
               c.Ast.methods
           in
           push (Vclass { rt_cname = c.Ast.cname; rt_methods = methods });
           incr pc
         | I_try tc ->
           exec_try ctx fr tc;
           incr pc)
      done;
      running := false
    with
    | Rt.Break_signal when !pc < n && code.c_brk.(!pc) >= 0 ->
      fr.sp <- fr.sp0;
      pc := code.c_brk.(!pc)
    | Rt.Continue_signal when !pc < n && code.c_cont.(!pc) >= 0 ->
      fr.sp <- fr.sp0;
      pc := code.c_cont.(!pc)
  done

and load_global ctx fr name =
  match Hashtbl.find_opt fr.root.vars name with
  | Some v -> v
  | None -> Rt.lookup_fallback ctx name

and emit_assign (ctx : Rt.ctx) pos name v =
  if ctx.Rt.collector.Trace.record_assigns then
    Trace.emit ctx.Rt.collector
      (Trace.Assign
         ( Trace.site_of_pos pos,
           name,
           Rt.truncate_display (to_display_string v) ))

and is_global fr name =
  match fr.globals with Some g -> Hashtbl.mem g name | None -> false

and store_index cv iv v =
  match cv with
  | Vlist l ->
    (match iv with
     | Vint i ->
       let items = !l in
       let i = Rt.normalize_index (List.length items) i in
       if i < 0 || i >= List.length items then
         raise_error "IndexError" "list assignment index out of range"
       else l := List.mapi (fun j x -> if j = i then v else x) items
     | _ -> raise_error "TypeError" "list indices must be integers")
  | Vdict d ->
    d :=
      (match List.find_opt (fun (k, _) -> equal iv k) !d with
       | Some _ ->
         List.map (fun (k, v') -> if equal iv k then (k, v) else (k, v')) !d
       | None -> !d @ [ (iv, v) ])
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "'%s' object does not support item assignment"
         (type_name cv))

(* Specialized method fast paths; any shape mismatch falls through to
   the generic dispatcher so errors stay byte-identical. *)
and invoke_method ctx obj name args pos spec =
  match (spec, obj, args) with
  | M_strip, Vstr s, [] -> Vstr (Rt.strip_chars s None ~left:true ~right:true)
  | M_lstrip, Vstr s, [] -> Vstr (Rt.strip_chars s None ~left:true ~right:false)
  | M_rstrip, Vstr s, [] -> Vstr (Rt.strip_chars s None ~left:false ~right:true)
  | M_upper, Vstr s, [] -> Vstr (String.uppercase_ascii s)
  | M_lower, Vstr s, [] -> Vstr (String.lowercase_ascii s)
  | M_isdigit, Vstr s, [] ->
    Vbool (Rt.string_forall (fun c -> c >= '0' && c <= '9') s)
  | M_isalpha, Vstr s, [] ->
    Vbool
      (Rt.string_forall
         (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'))
         s)
  | M_isalnum, Vstr s, [] ->
    Vbool
      (Rt.string_forall
         (fun c ->
           (c >= 'a' && c <= 'z')
           || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9'))
         s)
  | M_split0, Vstr s, [] ->
    Vlist (ref (List.map (fun x -> Vstr x) (Rt.split_whitespace s)))
  | M_split1, Vstr s, [ Vstr sep ] ->
    Vlist (ref (List.map (fun x -> Vstr x) (Rt.split_on_string sep s)))
  | M_replace, Vstr s, [ Vstr o; Vstr nw ] ->
    Vstr (Rt.replace_substring s o nw)
  | M_startswith, Vstr s, [ Vstr p ] -> Vbool (Strops.starts_with ~prefix:p s)
  | M_endswith, Vstr s, [ Vstr p ] -> Vbool (Strops.ends_with ~suffix:p s)
  | M_find, Vstr s, [ Vstr needle ] -> Vint (Rt.find_substring s needle)
  | M_append, Vlist l, [ v ] ->
    l := !l @ [ v ];
    Vnone
  | _ -> call_method ctx obj name args pos

(* The tree-walker's Try statement, replayed over code units: sub-units
   share the frame, so the handler entry restores the operand stack and
   iterator depth the abandoned body left behind. *)
and exec_try ctx fr (tc : Compile.try_code) =
  let sp_save = fr.sp in
  let iters_save = fr.iters in
  let run_finally () =
    match tc.t_finally with Some c -> exec ctx fr c | None -> ()
  in
  try
    exec ctx fr tc.t_body;
    run_finally ()
  with
  | Runtime_error (kind, msg) as exn ->
    fr.sp <- sp_save;
    fr.iters <- iters_save;
    let matching =
      List.find_opt
        (fun (hm, _, _) -> match hm with H_any -> true | H_exact f -> f = kind)
        tc.t_handlers
    in
    (match matching with
     | Some (_, hbind, hcode) ->
       (match hbind with
        | B_none -> ()
        | B_slot slot -> ctx.Rt.vm_stack.(fr.base + slot) <- Vstr msg
        | B_name n -> Hashtbl.replace fr.scope.vars n (Vstr msg));
       (try exec ctx fr hcode
        with e ->
          run_finally ();
          raise e);
       run_finally ()
     | None ->
       run_finally ();
       raise exn)
  | (Rt.Sandbox_limit _ | Rt.Cancelled _ | Rt.Return_signal _
    | Rt.Break_signal | Rt.Continue_signal) as e ->
    run_finally ();
    raise e

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

and call_value ctx fv args pos =
  match fv with
  | Vfun closure -> call_closure ctx closure None args
  | Vbound (self, closure) -> call_closure ctx closure (Some self) args
  | Vbuiltin name when String.length name > 3 && String.sub name 0 3 = "re." ->
    Rt.re_module_method (String.sub name 3 (String.length name - 3)) args
  | Vbuiltin name when String.length name > 4 && String.sub name 0 4 = "exc:" ->
    Rt.make_exception_object (String.sub name 4 (String.length name - 4)) args
  | Vbuiltin name -> Rt.call_builtin ctx name args
  | Vclass cls -> instantiate ctx cls args pos
  | v ->
    raise_error "TypeError"
      (Printf.sprintf "'%s' object is not callable" (type_name v))

and call_closure ctx closure self args =
  call_closure_gen ctx closure self (List.length args) (fun i ->
      List.nth args i)

and call_closure_stack ctx closure self args_base n_args =
  call_closure_gen ctx closure self n_args (fun i ->
      ctx.Rt.vm_stack.(args_base + i))

and call_closure_gen ctx closure self n_args get_arg =
  ctx.Rt.depth <- ctx.Rt.depth + 1;
  if ctx.Rt.depth > ctx.Rt.config.Rt.max_call_depth then begin
    ctx.Rt.depth <- ctx.Rt.depth - 1;
    raise (Rt.Sandbox_limit "maximum call depth exceeded")
  end;
  let fn = closure.cl_func in
  let cf = Compile.func fn in
  let root = module_scope closure.cl_scope in
  let base = ctx.Rt.vm_top in
  ensure_capacity ctx (base + cf.cf_nslots + cf.cf_stack);
  let stack0 = ctx.Rt.vm_stack in
  for i = base to base + cf.cf_nslots - 1 do
    stack0.(i) <- unset
  done;
  let fr =
    {
      base;
      sp0 = base + cf.cf_nslots;
      sp = base + cf.cf_nslots;
      iters = [];
      globals = None;
      scope = root;
      root;
    }
  in
  ctx.Rt.vm_top <- base + cf.cf_nslots + cf.cf_stack;
  (* Argument binding replicates the tree-walker exactly — including
     NOT decrementing the depth counter when it raises (arity errors,
     missing arguments, failing default expressions), a long-standing
     quirk the parity contract pins down. *)
  (try
     let slot_off, params =
       match self with
       | Some o ->
         (match fn.Ast.params with
          | _ :: rest ->
            ctx.Rt.vm_stack.(base + cf.cf_param_slots.(0)) <- Vobj o;
            (1, rest)
          | [] ->
            raise_error "TypeError"
              (Printf.sprintf "method %s() takes no arguments" fn.Ast.fname))
       | None -> (0, fn.Ast.params)
     in
     let n_params = List.length params in
     if n_args > n_params then
       raise_error "TypeError"
         (Printf.sprintf "%s() takes %d arguments (%d given)" fn.Ast.fname
            n_params n_args);
     List.iteri
       (fun i p ->
         let slot = cf.cf_param_slots.(i + slot_off) in
         if i < n_args then
           ctx.Rt.vm_stack.(base + slot) <- get_arg i
         else
           match List.assoc_opt p cf.cf_defaults with
           | Some dcode ->
             (* Defaults evaluate in the callee frame, ticking like any
                expression. *)
             exec ctx fr dcode;
             fr.sp <- fr.sp - 1;
             ctx.Rt.vm_stack.(base + slot) <- ctx.Rt.vm_stack.(fr.sp)
           | None ->
             raise_error "TypeError"
               (Printf.sprintf "%s() missing required argument '%s'"
                  fn.Ast.fname p))
       params
   with e ->
     ctx.Rt.vm_top <- base;
     raise e);
  let result =
    try
      exec ctx fr cf.cf_code;
      Trace.emit ctx.Rt.collector
        (Trace.Return (Trace.site_of_pos fn.Ast.fpos, Trace.Rvoid));
      Vnone
    with
    | Rt.Return_signal v -> v
    | e ->
      ctx.Rt.depth <- ctx.Rt.depth - 1;
      ctx.Rt.vm_top <- base;
      raise e
  in
  ctx.Rt.depth <- ctx.Rt.depth - 1;
  ctx.Rt.vm_top <- base;
  result

and instantiate ctx cls args pos =
  let fields = Hashtbl.create 8 in
  let o = { ocls = cls.rt_cname; fields } in
  (match List.assoc_opt "__init__" cls.rt_methods with
   | Some init -> ignore (call_closure ctx init (Some o) args)
   | None ->
     if args <> [] then
       raise_error "TypeError"
         (Printf.sprintf "%s() takes no arguments" cls.rt_cname));
  ignore pos;
  Hashtbl.replace fields "__class__" (Vclass cls);
  Vobj o

and call_method ctx ov name args pos =
  match ov with
  | Vstr s -> Rt.str_method s name args
  | Vlist l -> Rt.list_method l name args
  | Vdict d -> Rt.dict_method d name args
  | Vobj ({ ocls = "file"; _ } as o) -> Rt.file_method o name args
  | Vobj o ->
    (match Hashtbl.find_opt o.fields "__class__" with
     | Some (Vclass cls) ->
       (match List.assoc_opt name cls.rt_methods with
        | Some m -> call_closure ctx m (Some o) args
        | None ->
          (match Hashtbl.find_opt o.fields name with
           | Some fv -> call_value ctx fv args pos
           | None ->
             raise_error "AttributeError"
               (Printf.sprintf "'%s' object has no attribute '%s'" o.ocls name)))
     | _ ->
       raise_error "AttributeError"
         (Printf.sprintf "'%s' object has no attribute '%s'" o.ocls name))
  | Vbuiltin "re_module" -> Rt.re_module_method name args
  | Vbuiltin "sys_module" when name = "exit" -> raise_error "SystemExit" "exit"
  | v ->
    raise_error "AttributeError"
      (Printf.sprintf "'%s' object has no attribute '%s'" (type_name v) name)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let exec_program (ctx : Rt.ctx) (scope : Value.scope) (p : Ast.program) =
  let cp = Compile.program p in
  let base = ctx.Rt.vm_top in
  ensure_capacity ctx (base + cp.cp_code.c_stack);
  let fr =
    {
      base;
      sp0 = base;
      sp = base;
      iters = [];
      globals = None;
      scope;
      root = module_scope scope;
    }
  in
  ctx.Rt.vm_top <- base + cp.cp_code.c_stack;
  (try exec ctx fr cp.cp_code
   with e ->
     ctx.Rt.vm_top <- base;
     raise e);
  ctx.Rt.vm_top <- base

let call_callable (ctx : Rt.ctx) (fv : Value.t) (args : Value.t list) =
  call_value ctx fv args call_pos
