(** Indentation-sensitive lexer for MiniScript.

    Follows the usual Python tokenization scheme: physical lines are
    split into tokens, leading whitespace drives an indentation stack
    that emits INDENT/DEDENT tokens, blank lines and comment-only lines
    are skipped, and newlines inside brackets are ignored. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | NAME of string
  | KEYWORD of string
  | OP of string
  | NEWLINE
  | INDENT
  | DEDENT
  | EOF

type loc_token = { tok : token; tline : int }

exception Lex_error of string * int  (** message, line *)

let keywords =
  [ "def"; "class"; "if"; "elif"; "else"; "while"; "for"; "in"; "return";
    "raise"; "try"; "except"; "finally"; "break"; "continue"; "pass";
    "and"; "or"; "not"; "is"; "True"; "False"; "None"; "global"; "lambda";
    "import"; "from"; "as"; "del"; "assert" ]

let is_keyword s = List.mem s keywords

(* Identifier interning (domain-local, so lexing in the Exec pool never
   contends on a shared table).  Every occurrence of a name across every
   candidate file maps to one canonical string, so downstream consumers
   that hash identifiers per candidate — Staticcheck name resolution,
   the VM compiler's slot assignment — hash each distinct spelling once
   and get physical equality on the hot comparison path. *)
let intern_table : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let intern s =
  let tbl = Domain.DLS.get intern_table in
  match Hashtbl.find_opt tbl s with
  | Some canon -> canon
  | None ->
    Hashtbl.add tbl s s;
    s

(* Canonical keyword spellings come straight from [keywords]. *)
let keyword_canonical s =
  match List.find_opt (String.equal s) keywords with
  | Some canon -> canon
  | None -> s

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* Multi-character operators, longest first so matching is greedy. *)
let operators =
  [ "**"; "//"; "=="; "!="; "<="; ">="; "+="; "-="; "*="; "/="; "%=";
    "->"; "<<"; ">>"; "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "("; ")";
    "["; "]"; "{"; "}"; ","; ":"; "."; ";"; "^"; "&"; "|"; "~" ]

let tokenize ~file:_ (src : string) : loc_token list =
  let n = String.length src in
  let toks = ref [] in
  let emit tok tline = toks := { tok; tline } :: !toks in
  let indents = ref [ 0 ] in
  let bracket_depth = ref 0 in
  let line = ref 1 in
  let i = ref 0 in
  let at_line_start = ref true in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let read_string quote =
    (* Supports '...' and "..." with backslash escapes; no triple quotes. *)
    let start_line = !line in
    let buf = Buffer.create 16 in
    incr i;
    let rec go () =
      if !i >= n then raise (Lex_error ("unterminated string", start_line))
      else
        let c = src.[!i] in
        if c = quote then incr i
        else if c = '\\' then begin
          (match peek 1 with
           | Some 'n' -> Buffer.add_char buf '\n'
           | Some 't' -> Buffer.add_char buf '\t'
           | Some 'r' -> Buffer.add_char buf '\r'
           | Some '\\' -> Buffer.add_char buf '\\'
           | Some '\'' -> Buffer.add_char buf '\''
           | Some '"' -> Buffer.add_char buf '"'
           | Some '0' -> Buffer.add_char buf '\000'
           | Some c ->
             (* Unknown escapes keep the backslash, as Python does —
                essential for regex patterns like "\d" and "\.". *)
             Buffer.add_char buf '\\';
             Buffer.add_char buf c
           | None -> raise (Lex_error ("dangling backslash", start_line)));
          i := !i + 2;
          go ()
        end
        else if c = '\n' then
          raise (Lex_error ("newline in string", start_line))
        else begin
          Buffer.add_char buf c;
          incr i;
          go ()
        end
    in
    go ();
    emit (STRING (Buffer.contents buf)) start_line
  in
  let read_number () =
    let start = !i in
    let start_line = !line in
    while !i < n && is_digit src.[!i] do incr i done;
    let is_float =
      !i < n && src.[!i] = '.' && (match peek 1 with
        | Some c -> is_digit c
        | None -> false)
    in
    if is_float then begin
      incr i;
      while !i < n && is_digit src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      emit (FLOAT (float_of_string s)) start_line
    end
    else begin
      let s = String.sub src start (!i - start) in
      emit (INT (int_of_string s)) start_line
    end
  in
  let handle_indentation () =
    (* Measure leading spaces of the logical line starting at !i. *)
    let start = !i in
    while !i < n && (src.[!i] = ' ' || src.[!i] = '\t') do incr i done;
    let width =
      let w = ref 0 in
      for k = start to !i - 1 do
        w := !w + (if src.[k] = '\t' then 8 - (!w mod 8) else 1)
      done;
      !w
    in
    (* Blank or comment-only lines produce no tokens at all. *)
    if !i >= n || src.[!i] = '\n' || src.[!i] = '#' then ()
    else begin
      let cur = List.hd !indents in
      if width > cur then begin
        indents := width :: !indents;
        emit INDENT !line
      end
      else if width < cur then begin
        let rec pop () =
          match !indents with
          | top :: rest when top > width ->
            indents := rest;
            emit DEDENT !line;
            pop ()
          | top :: _ ->
            if top <> width then
              raise (Lex_error ("inconsistent dedent", !line))
          | [] -> raise (Lex_error ("indent stack underflow", !line))
        in
        pop ()
      end
    end
  in
  while !i < n do
    if !at_line_start && !bracket_depth = 0 then begin
      handle_indentation ();
      at_line_start := false
    end
    else begin
      let c = src.[!i] in
      if c = '\n' then begin
        if !bracket_depth = 0 then begin
          (* Suppress NEWLINE for blank lines (no tokens since last NEWLINE). *)
          (match !toks with
           | { tok = NEWLINE; _ } :: _ | [] -> ()
           | { tok = INDENT; _ } :: _ | { tok = DEDENT; _ } :: _ -> ()
           | _ -> emit NEWLINE !line)
        end;
        incr i;
        incr line;
        at_line_start := true
      end
      else if c = ' ' || c = '\t' || c = '\r' then incr i
      else if c = '#' then begin
        while !i < n && src.[!i] <> '\n' do incr i done
      end
      else if c = '\'' || c = '"' then read_string c
      else if is_digit c then read_number ()
      else if is_ident_start c then begin
        let start = !i in
        while !i < n && is_ident_char src.[!i] do incr i done;
        let s = String.sub src start (!i - start) in
        if is_keyword s then emit (KEYWORD (keyword_canonical s)) !line
        else emit (NAME (intern s)) !line
      end
      else begin
        let matched =
          List.find_opt
            (fun op ->
              let l = String.length op in
              !i + l <= n && String.sub src !i l = op)
            operators
        in
        match matched with
        | Some op ->
          (match op with
           | "(" | "[" | "{" -> incr bracket_depth
           | ")" | "]" | "}" -> decr bracket_depth
           | _ -> ());
          emit (OP op) !line;
          i := !i + String.length op
        | None ->
          raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
      end
    end
  done;
  (* Final NEWLINE if the last line had tokens, then close open indents. *)
  (match !toks with
   | { tok = NEWLINE; _ } :: _ | [] -> ()
   | _ -> emit NEWLINE !line);
  List.iter
    (fun level -> if level > 0 then emit DEDENT !line)
    (List.filter (fun l -> l > 0) !indents);
  emit EOF !line;
  List.rev !toks

let token_to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | NAME s -> s
  | KEYWORD s -> s
  | OP s -> Printf.sprintf "`%s`" s
  | NEWLINE -> "NEWLINE"
  | INDENT -> "INDENT"
  | DEDENT -> "DEDENT"
  | EOF -> "EOF"
