(** String-method primitives shared between the tree-walking
    interpreter and the interpreter-free fast path ({!Absint} compiled
    summaries).

    These used to be private helpers inside {!Interp}.  They are the
    single source of truth for MiniScript string semantics: the fast
    path calls the very same functions the interpreter dispatches to,
    so the two routes cannot drift (the bench asserts byte-identical
    verdicts between them).

    Semantics worth restating because both callers rely on them:
    - [string_forall] is Python's: [s.isdigit()] etc. are [false] on
      the empty string.
    - [replace_substring] with an empty needle is the identity (the
      interpreter never raises there).
    - [strip_chars] with [chars = None] strips the four ASCII
      whitespace characters, matching [str.strip()]. *)

let strip_chars s chars ~left ~right =
  let is_strip c =
    match chars with
    | None -> c = ' ' || c = '\t' || c = '\n' || c = '\r'
    | Some cs -> String.contains cs c
  in
  let n = String.length s in
  let lo = ref 0 and hi = ref n in
  if left then while !lo < n && is_strip s.[!lo] do incr lo done;
  if right then while !hi > !lo && is_strip s.[!hi - 1] do decr hi done;
  String.sub s !lo (!hi - !lo)

(* Needle comparison at a position, without materialising a substring:
   these scans run once per haystack character on interpreter hot paths,
   where a per-position [String.sub] allocation costs more than the
   comparison itself. *)
let match_at s i needle =
  let nl = String.length needle in
  let rec go j = j = nl || (s.[i + j] = needle.[j] && go (j + 1)) in
  go 0

(** @raise Invalid_argument on an empty separator — callers guard. *)
let split_on_string sep s =
  if sep = "" then invalid_arg "split_on_string: empty separator";
  let sl = String.length sep and n = String.length s in
  let rec go start i acc =
    if i + sl > n then List.rev (String.sub s start (n - start) :: acc)
    else if match_at s i sep then
      go (i + sl) (i + sl) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  go 0 0 []

(* Split on the three-character whitespace class in one scan; dropping
   empty runs as we go is equivalent to split-then-filter. *)
let split_whitespace s =
  let n = String.length s in
  let rec go i start acc =
    if i = n then
      List.rev (if i > start then String.sub s start (i - start) :: acc else acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' ->
        let acc =
          if i > start then String.sub s start (i - start) :: acc else acc
        in
        go (i + 1) (i + 1) acc
      | _ -> go (i + 1) start acc
  in
  go 0 0 []

let find_substring ?(from = 0) hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = if i + nl > hl then -1 else if match_at hay i needle then i else go (i + 1) in
  if nl = 0 then min from hl else go (max 0 from)

let replace_substring s old_s new_s =
  if old_s = "" then s
  else if find_substring s old_s < 0 then s  (* no match: nothing to build *)
  else begin
    let ol = String.length old_s and n = String.length s in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i <= n - ol do
      if match_at s !i old_s then begin
        Buffer.add_string buf new_s;
        i := !i + ol
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.add_substring buf s !i (n - !i);
    Buffer.contents buf
  end

(** Python's truthiness-compatible [forall]: false on "". *)
let string_forall p s = String.for_all p s && String.length s > 0

let is_digit_char c = c >= '0' && c <= '9'
let is_alpha_char c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_alnum_char c = is_alpha_char c || is_digit_char c
let is_space_char c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let starts_with ~prefix s =
  String.length s >= String.length prefix && match_at s 0 prefix

let ends_with ~suffix s =
  let pl = String.length suffix and sl = String.length s in
  sl >= pl && match_at s (sl - pl) suffix
