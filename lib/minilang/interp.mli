(** Tree-walking interpreter for MiniScript with execution tracing and
    sandboxing.

    Every if/elif/while/ternary condition emits a {!Trace.Branch} event,
    every return a {!Trace.Return} with the abstracted value, uncaught
    exceptions a {!Trace.Exception}, and (when enabled) assignments a
    {!Trace.Assign} — the native equivalent of the paper's byte-code
    instrumentation (Appendix D.2).  A step budget and call-depth cap
    replace the paper's per-function watchdog; exceeding them raises
    {!Sandbox_limit}, which MiniScript [try/except] cannot catch. *)

exception Sandbox_limit of string

exception Cancelled of string
(** Cooperative cancellation (token fired or wall-clock deadline past),
    raised from the step-accounting path.  Like {!Sandbox_limit}, it is
    deliberately not catchable by MiniScript [try/except]. *)

type config = {
  max_steps : int;
  max_call_depth : int;
}

val default_config : config

type cancel_token
(** A shared flag another domain may fire to stop a run at its next
    interpreter step.  One atomic load per step — no polling syscalls. *)

val cancel_token : unit -> cancel_token
val cancel : cancel_token -> unit
val cancel_requested : cancel_token -> bool

type ctx
(** Per-run execution context: collector, budgets, virtual I/O. *)

val create_ctx :
  ?config:config ->
  ?argv:string list ->
  ?stdin_line:string ->
  ?virtual_files:(string * string) list ->
  ?cancel:cancel_token ->
  ?deadline_ns:int64 ->
  Trace.collector ->
  ctx
(** [deadline_ns] is an absolute CLOCK_MONOTONIC instant (the clock of
    {!Telemetry.now_ns}); it is probed every 256 steps, so overshoot is
    bounded by the cost of 256 interpreter steps. *)

type outcome =
  | Finished of Value.t
  | Errored of string * string  (** exception kind, message *)
  | Hit_limit of string
      (** step budget or call depth exhausted — the per-run {e work}
          bound of the paper's sandbox *)
  | Deadline_exceeded of string
      (** cancelled or past its wall-clock deadline — the per-request
          {e time} bound; distinct from {!Hit_limit} so serving can
          degrade rather than misreport a slow run as a spin loop *)

val builtin_names : string list
(** Names resolvable as builtin free functions at runtime.  Exposed so
    static analysis (lib/staticcheck) checks against the same table the
    interpreter dispatches on. *)

val known_exception_kinds : string list
(** Exception-kind names resolvable as raisable values / except filters. *)

type run_result = {
  outcome : outcome;
  trace : Trace.t;
  steps_used : int;
  printed : string list;  (** captured print() output *)
}

val exec_program : ctx -> Value.scope -> Ast.program -> unit
(** Execute a whole parsed file's statements into the scope. *)

val load_module :
  ?config:config -> Ast.program list -> Value.scope * (string * string) list
(** Execute all top-level statements of the files, untraced, collecting
    definitions into a fresh scope.  Per-file errors are tolerated and
    reported; already-executed definitions remain usable. *)

val run_traced :
  ?config:config ->
  ?record_assigns:bool ->
  ?argv:string list ->
  ?stdin_line:string ->
  ?virtual_files:(string * string) list ->
  ?cancel:cancel_token ->
  ?deadline_ns:int64 ->
  (ctx -> Value.t) ->
  run_result
(** Run a thunk under full tracing and sandbox limits.  A fired
    [cancel] token or an expired [deadline_ns] yields a
    [Deadline_exceeded] outcome (a deadline already past on entry
    refuses to start the run at all).  Fault injection
    ({!Faults.active}) may delay the run or kill it with an
    ["FaultInjected"] error outcome. *)

val call_callable : ctx -> Value.t -> Value.t list -> Value.t
(** Call a function, bound method or class value. *)

val call_method : ctx -> Value.t -> string -> Value.t list -> Ast.pos -> Value.t
(** Call a method on any value (string/list/dict methods included). *)

val set_vm_enabled : bool -> unit
(** Select the execution engine: [true] (default) runs the bytecode VM
    ({!Compile} + {!Vm}); [false] runs the tree-walking oracle.  The
    initial value honours [AUTOTYPE_VM] ([off]/[0]/[false] disable the
    VM).  Both engines are observationally identical — same trace
    events, outcomes, step counts and error messages. *)

val vm_enabled : unit -> bool
(** Which engine {!exec_program}, {!call_callable} and {!call_method}
    currently dispatch to. *)
