(** Tree-walking interpreter for MiniScript with execution tracing and
    sandboxing.

    Every if/elif/while/ternary condition emits a {!Trace.Branch} event,
    every return a {!Trace.Return} with the abstracted value, uncaught
    exceptions a {!Trace.Exception}, and (when enabled) assignments a
    {!Trace.Assign} — the native equivalent of the paper's byte-code
    instrumentation (Appendix D.2).  A step budget and call-depth cap
    replace the paper's per-function watchdog; exceeding them raises
    {!Sandbox_limit}, which MiniScript [try/except] cannot catch. *)

exception Sandbox_limit of string

type config = {
  max_steps : int;
  max_call_depth : int;
}

val default_config : config

type ctx
(** Per-run execution context: collector, budgets, virtual I/O. *)

val create_ctx :
  ?config:config ->
  ?argv:string list ->
  ?stdin_line:string ->
  ?virtual_files:(string * string) list ->
  Trace.collector ->
  ctx

type outcome =
  | Finished of Value.t
  | Errored of string * string  (** exception kind, message *)
  | Hit_limit of string

val builtin_names : string list
(** Names resolvable as builtin free functions at runtime.  Exposed so
    static analysis (lib/staticcheck) checks against the same table the
    interpreter dispatches on. *)

val known_exception_kinds : string list
(** Exception-kind names resolvable as raisable values / except filters. *)

type run_result = {
  outcome : outcome;
  trace : Trace.t;
  steps_used : int;
  printed : string list;  (** captured print() output *)
}

val exec_program : ctx -> Value.scope -> Ast.program -> unit
(** Execute a whole parsed file's statements into the scope. *)

val load_module :
  ?config:config -> Ast.program list -> Value.scope * (string * string) list
(** Execute all top-level statements of the files, untraced, collecting
    definitions into a fresh scope.  Per-file errors are tolerated and
    reported; already-executed definitions remain usable. *)

val run_traced :
  ?config:config ->
  ?record_assigns:bool ->
  ?argv:string list ->
  ?stdin_line:string ->
  ?virtual_files:(string * string) list ->
  (ctx -> Value.t) ->
  run_result
(** Run a thunk under full tracing and sandbox limits. *)

val call_callable : ctx -> Value.t -> Value.t list -> Value.t
(** Call a function, bound method or class value. *)

val call_method : ctx -> Value.t -> string -> Value.t list -> Ast.pos -> Value.t
(** Call a method on any value (string/list/dict methods included). *)
