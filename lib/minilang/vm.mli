(** Bytecode executor for {!Compile} programs — the fast engine behind
    {!Interp}'s public API.

    Parity contract: byte-identical {!Trace.event} streams, outcomes,
    step counts and error messages with the tree-walking evaluator
    ([AUTOTYPE_VM=off]), asserted by [test/test_vm.ml] and the
    [make vm-diff] smoke.  Step charging goes through {!Rt.tick_n} at
    exactly the tree-walker's three tick sites, so
    {!Absint.Stepbound} budget hints stay bit-for-bit accurate. *)

val exec_program : Rt.ctx -> Value.scope -> Ast.program -> unit
(** Execute a parsed file into [scope] (module mode). *)

val call_value : Rt.ctx -> Value.t -> Value.t list -> Ast.pos -> Value.t
(** Call any callable value with already-evaluated arguments. *)

val call_method : Rt.ctx -> Value.t -> string -> Value.t list -> Ast.pos -> Value.t
(** Invoke [obj.name(args)] with already-evaluated arguments. *)

val call_callable : Rt.ctx -> Value.t -> Value.t list -> Value.t
(** [call_value] at the synthetic [<call>] position used by the driver
    to invoke candidate detector functions. *)
