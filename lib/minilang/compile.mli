(** Lowering of {!Ast} to flat bytecode for {!Vm}.

    Identifiers resolve to frame slots at compile time (module-level
    names stay dynamic, matching the tree-walker's scope chain), regex
    literals pre-compile, control flow is jump-threaded, and step
    charging is batched into [I_tick k] instructions placed so
    {!Rt.tick_n} reproduces the tree-walker's three tick sites
    bit-for-bit.  Compiled units are cached per domain keyed on the
    physical identity of the AST node (sound because
    [Repolib.Repo.parse_each] shares parsed ASTs across runs). *)

type mspec =
  | M_generic
  | M_strip | M_lstrip | M_rstrip
  | M_upper | M_lower
  | M_isdigit | M_isalpha | M_isalnum
  | M_split0 | M_split1
  | M_replace
  | M_startswith | M_endswith
  | M_join
  | M_find
  | M_append
      (** Specialized method receivers; any runtime shape mismatch falls
          back to generic dispatch for byte-identical errors. *)

type instr =
  | I_tick of int
  | I_const of Value.t
  | I_pop
  | I_jump of int
  | I_and of int
  | I_or of int
  | I_branch of Trace.event * Trace.event * int
  | I_not
  | I_neg
  | I_binop of Ast.binop
  | I_load of int * string
  | I_load_name of string
  | I_store of int * string * Ast.pos
  | I_store_local of int * string * Ast.pos
  | I_store_direct of int
  | I_store_name of string * Ast.pos
  | I_store_name_direct of string
  | I_store_attr of string * Ast.pos
  | I_store_index
  | I_unpack of int
  | I_attr of string
  | I_index
  | I_slice_check
  | I_slice of bool * bool
  | I_build_list of int
  | I_build_tuple of int
  | I_build_dict of int
  | I_call of int * Ast.pos
  | I_call1 of Ast.pos
  | I_method of string * int * Ast.pos * mspec
  | I_method_re of string * Regexlite.t * Ast.pos
  | I_return of Trace.site
  | I_raise_bare
  | I_raise
  | I_fail of string * string
  | I_for_setup
  | I_for_next of int
  | I_for_pop of int
  | I_break
  | I_continue
  | I_global of string list
  | I_func of Ast.func
  | I_class of Ast.cls
  | I_try of try_code

and code = {
  c_instrs : instr array;
  c_brk : int array;
      (** per-pc jump target for a {!Rt.Break_signal} unwinding to this
          pc, [-1] to propagate (loop lives in an enclosing unit) *)
  c_cont : int array;  (** same for {!Rt.Continue_signal} *)
  c_stack : int;  (** max operand-stack depth, nested try units included *)
}

and hmatch = H_any | H_exact of string

and hbind = B_none | B_slot of int | B_name of string

and try_code = {
  t_body : code;
  t_handlers : (hmatch * hbind * code) list;
  t_finally : code option;
}

type cfunc = {
  cf_fn : Ast.func;
  cf_code : code;
  cf_nslots : int;
  cf_param_slots : int array;  (** slot of each param, in order *)
  cf_defaults : (string * code) list;  (** param name -> default expr code *)
  cf_stack : int;  (** max stack need across body and defaults *)
}

type cprog = { cp_prog : Ast.program; cp_code : code }

val func : Ast.func -> cfunc
(** Compile (or fetch from this domain's cache) a function body. *)

val program : Ast.program -> cprog
(** Compile (or fetch from this domain's cache) a module body. *)

type stats_snapshot = { compiles : int; cache_hits : int }

val stats : unit -> stats_snapshot
(** This domain's compile/cache-hit counters (monotonic). *)
