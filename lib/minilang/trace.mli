(** Execution traces (Section 5.1 / Appendix D.2 of the paper).

    Each event carries a site — the (file, line) of the instruction —
    and a value pre-abstracted the way Section 5.2 featurizes it:
    booleans as true/false, numbers and collection lengths as
    zero/non-zero, composite objects as None/not-None. *)

type site = { s_file : string; s_line : int }

val site_of_pos : Ast.pos -> site
val site_to_string : site -> string
val compare_site : site -> site -> int

type ret_abstract =
  | Rbool of bool
  | Rzero  (** number or collection length equal to 0 *)
  | Rnonzero
  | Rnone  (** composite object that is None *)
  | Rnotnone
  | Rvoid  (** function fell off the end without a return value *)

val ret_abstract_to_string : ret_abstract -> string

val abstract_value : Value.t -> ret_abstract

type event =
  | Branch of site * bool
      (** an if/elif/while/ternary condition, taken or not *)
  | Return of site * ret_abstract
  | Exception of string  (** uncaught exception kind *)
  | Assign of site * string * string
      (** name and display value; only recorded when transformation
          harvesting is enabled (Section 7.1) *)

type t = event list
(** In execution order. *)

type collector = {
  mutable events : event list;  (** reversed *)
  mutable n_events : int;
  mutable n_branches : int;  (** all Branch emissions, even past the cap *)
  mutable n_returns : int;  (** all Return emissions, even past the cap *)
  max_events : int;
  record_assigns : bool;
}

val create_collector : ?max_events:int -> ?record_assigns:bool -> unit -> collector
val emit : collector -> event -> unit
val finish : collector -> t
