(** Shared MiniScript runtime: the engine-independent half of the
    interpreter.

    Both execution engines — the tree-walking {!Interp} (the oracle) and
    the bytecode {!Vm} — dispatch to the very same value primitives,
    builtin table, string/list/dict/file methods and regex bridge defined
    here, so their observable semantics cannot drift: every error kind,
    message and sandbox limit below is shared verbatim.

    The step-accounting contract also lives here.  There are three — and
    only three — tick sites ({!Absint.Stepbound} prices programs against
    them): one tick per [eval] entry, one per executed statement, one per
    [for]-loop item.  {!tick} is the tree-walker's per-site probe;
    {!tick_n} is the VM's batched equivalent and is bit-for-bit
    compatible: identical final step counts, identical raise points
    relative to observable events, the cancel token checked on every
    batch and the wall-clock deadline probed exactly at step numbers
    divisible by 256. *)

open Value

exception Sandbox_limit of string
exception Cancelled of string

(* Control-flow signals, shared so a [break] raised inside a callee
   propagates identically through both engines' try/finally machinery. *)
exception Return_signal of Value.t
exception Break_signal
exception Continue_signal

type config = {
  max_steps : int;
  max_call_depth : int;
}

let default_config = { max_steps = 400_000; max_call_depth = 64 }

type cancel_token = bool Atomic.t

let cancel_token () : cancel_token = Atomic.make false
let cancel (tok : cancel_token) = Atomic.set tok true
let cancel_requested (tok : cancel_token) = Atomic.get tok

let deadline_message = "wall-clock deadline exceeded"

type ctx = {
  collector : Trace.collector;
  config : config;
  mutable steps : int;
  mutable depth : int;
  cancel : cancel_token option;
  deadline_ns : int64 option;
      (** absolute CLOCK_MONOTONIC ns (same clock as {!Telemetry.now_ns}) *)
  argv : Value.t;
  stdin_line : string;
  virtual_files : (string * string) list;
      (** the virtual filesystem backing [open()]; invocation variant 6 *)
  mutable printed : string list;  (** reversed capture of print() output *)
  mutable vm_stack : Value.t array;
      (** scratch evaluation stack reused across VM calls in this run *)
  mutable vm_top : int;
      (** watermark: first free cell of [vm_stack]; frames reserve
          [slots + max operand depth] below it *)
}

(* One retired evaluation stack per domain, handed to the next context
   so short runs do not re-grow the array from scratch every time.
   Handing out swaps in [[||]], so a nested context (module load inside
   a run) simply grows its own.  Reuse is unobservable: frames
   initialise their slot range and operand cells are written before
   they are read. *)
let stack_pool : Value.t array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [||])

let create_ctx ?(config = default_config) ?(argv = []) ?(stdin_line = "")
    ?(virtual_files = []) ?cancel ?deadline_ns collector =
  let stack = Domain.DLS.get stack_pool in
  if stack != [||] then Domain.DLS.set stack_pool [||];
  {
    collector;
    config;
    steps = 0;
    depth = 0;
    cancel;
    deadline_ns;
    argv = Vlist (ref (List.map (fun s -> Vstr s) argv));
    stdin_line;
    virtual_files;
    printed = [];
    vm_stack = stack;
    vm_top = 0;
  }

(** Return a finished context's stack to the per-domain pool. *)
let retire_ctx ctx =
  if Array.length ctx.vm_stack > Array.length (Domain.DLS.get stack_pool) then
    Domain.DLS.set stack_pool ctx.vm_stack

(* Cancellation rides the existing step-accounting path: the token is a
   single atomic load per step, and the wall-clock deadline is probed
   only every 256 steps so a run never pays one clock syscall per
   interpreted statement. *)
let tick ctx =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.config.max_steps then
    raise (Sandbox_limit "step budget exhausted");
  (match ctx.cancel with
   | Some tok when Atomic.get tok -> raise (Cancelled "run cancelled")
   | _ -> ());
  match ctx.deadline_ns with
  | Some d when ctx.steps land 255 = 0 && Telemetry.now_ns () >= d ->
    raise (Cancelled deadline_message)
  | _ -> ()

(** Charge [k] ticks at once.  Equivalent to [k] successive {!tick}s
    with nothing observable between them:
    - budget: a batch crossing [max_steps] leaves [steps = max_steps+1]
      and raises, exactly where the [k]-th sequential tick would have;
    - cancel: a fired token raises after the first tick of the batch
      ([steps = s+1]), as the sequential probe would;
    - deadline: probed at the first multiple of 256 inside the batch,
      and on expiry [steps] is set to that multiple. *)
let tick_n ctx k =
  if k > 0 then begin
    let s = ctx.steps in
    let maxs = ctx.config.max_steps in
    (match ctx.cancel with
     | Some tok when Atomic.get tok ->
       ctx.steps <- s + 1;
       if s + 1 > maxs then raise (Sandbox_limit "step budget exhausted")
       else raise (Cancelled "run cancelled")
     | _ -> ());
    if s + k > maxs then begin
      ctx.steps <- maxs + 1;
      raise (Sandbox_limit "step budget exhausted")
    end;
    ctx.steps <- s + k;
    match ctx.deadline_ns with
    | Some d ->
      (* first multiple of 256 in (s, s+k] *)
      let m = ((s lsr 8) + 1) lsl 8 in
      if m <= s + k && Telemetry.now_ns () >= d then begin
        ctx.steps <- m;
        raise (Cancelled deadline_message)
      end
    | None -> ()
  end

let known_exception_kinds =
  [ "ValueError"; "TypeError"; "IndexError"; "KeyError"; "AttributeError";
    "ZeroDivisionError"; "AssertionError"; "NameError"; "IOError";
    "Exception"; "RuntimeError"; "StopIteration"; "OverflowError" ]

(* ------------------------------------------------------------------ *)
(* Arithmetic and operators                                            *)
(* ------------------------------------------------------------------ *)

let num_binop op a b =
  let float_op x y =
    match op with
    | Ast.Add -> Vfloat (x +. y)
    | Ast.Sub -> Vfloat (x -. y)
    | Ast.Mul -> Vfloat (x *. y)
    | Ast.Div ->
      if y = 0.0 then raise_error "ZeroDivisionError" "float division by zero"
      else Vfloat (x /. y)
    | Ast.Floordiv ->
      if y = 0.0 then raise_error "ZeroDivisionError" "float floor division by zero"
      else Vfloat (floor (x /. y))
    | Ast.Mod ->
      if y = 0.0 then raise_error "ZeroDivisionError" "float modulo by zero"
      else
        let r = Float.rem x y in
        Vfloat (if r <> 0.0 && (r < 0.0) <> (y < 0.0) then r +. y else r)
    | Ast.Pow -> Vfloat (Float.pow x y)
    | _ -> assert false
  in
  match (a, b) with
  | Vint x, Vint y ->
    (match op with
     | Ast.Add -> Vint (x + y)
     | Ast.Sub -> Vint (x - y)
     | Ast.Mul -> Vint (x * y)
     | Ast.Div ->
       if y = 0 then raise_error "ZeroDivisionError" "division by zero"
       else Vfloat (float_of_int x /. float_of_int y)
     | Ast.Floordiv ->
       if y = 0 then raise_error "ZeroDivisionError" "integer division by zero"
       else
         (* Python floor division *)
         let q = x / y and r = x mod y in
         Vint (if r <> 0 && (r < 0) <> (y < 0) then q - 1 else q)
     | Ast.Mod ->
       if y = 0 then raise_error "ZeroDivisionError" "integer modulo by zero"
       else
         let r = x mod y in
         Vint (if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
     | Ast.Pow ->
       if y < 0 then float_op (float_of_int x) (float_of_int y)
       else
         let rec pow acc b e = if e = 0 then acc else pow (acc * b) b (e - 1) in
         Vint (pow 1 x y)
     | _ -> assert false)
  | (Vint _ | Vfloat _), (Vint _ | Vfloat _) ->
    let f = function Vint i -> float_of_int i | Vfloat f -> f | _ -> 0.0 in
    float_op (f a) (f b)
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "unsupported operand types for %s: %s and %s"
         (Ast.binop_to_string op) (type_name a) (type_name b))

let eval_binop op a b =
  match op with
  | Ast.Add ->
    (match (a, b) with
     | Vstr x, Vstr y -> Vstr (x ^ y)
     | Vlist x, Vlist y -> Vlist (ref (!x @ !y))
     | Vtuple x, Vtuple y -> Vtuple (x @ y)
     | _ -> num_binop op a b)
  | Ast.Mul ->
    (match (a, b) with
     | Vstr s, Vint n | Vint n, Vstr s ->
       if n <= 0 then Vstr ""
       else begin
         if n * String.length s > 1_000_000 then
           raise (Sandbox_limit "string repetition too large");
         let buf = Buffer.create (n * String.length s) in
         for _ = 1 to n do Buffer.add_string buf s done;
         Vstr (Buffer.contents buf)
       end
     | Vlist l, Vint n | Vint n, Vlist l ->
       if n <= 0 then Vlist (ref [])
       else begin
         if n * List.length !l > 100_000 then
           raise (Sandbox_limit "list repetition too large");
         let rec rep acc k = if k = 0 then acc else rep (!l @ acc) (k - 1) in
         Vlist (ref (rep [] n))
       end
     | _ -> num_binop op a b)
  | Ast.Sub | Ast.Div | Ast.Floordiv | Ast.Mod | Ast.Pow -> num_binop op a b
  | Ast.Bxor | Ast.Band | Ast.Bor | Ast.Shl | Ast.Shr ->
    (match (a, b) with
     | Vint x, Vint y ->
       Vint
         (match op with
          | Ast.Bxor -> x lxor y
          | Ast.Band -> x land y
          | Ast.Bor -> x lor y
          | Ast.Shl -> if y < 0 || y > 62 then 0 else x lsl y
          | Ast.Shr -> if y < 0 || y > 62 then 0 else x asr y
          | _ -> assert false)
     | _ ->
       raise_error "TypeError"
         (Printf.sprintf "unsupported operand types for %s: %s and %s"
            (Ast.binop_to_string op) (type_name a) (type_name b)))
  | Ast.Eq -> Vbool (equal a b)
  | Ast.Neq -> Vbool (not (equal a b))
  | Ast.Lt -> Vbool (compare_values a b < 0)
  | Ast.Le -> Vbool (compare_values a b <= 0)
  | Ast.Gt -> Vbool (compare_values a b > 0)
  | Ast.Ge -> Vbool (compare_values a b >= 0)
  | Ast.In | Ast.Not_in ->
    let mem =
      match b with
      | Vstr hay ->
        (match a with
         | Vstr needle ->
           let nl = String.length needle and hl = String.length hay in
           nl = 0
           || (let rec go i =
                 i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
               in
               go 0)
         | _ ->
           raise_error "TypeError" "'in <string>' requires string operand")
      | Vlist l -> List.exists (equal a) !l
      | Vtuple t -> List.exists (equal a) t
      | Vdict d -> List.exists (fun (k, _) -> equal a k) !d
      | _ ->
        raise_error "TypeError"
          (Printf.sprintf "argument of type %s is not iterable" (type_name b))
    in
    Vbool (if op = Ast.In then mem else not mem)
  | Ast.And | Ast.Or -> assert false  (* short-circuit, handled per-engine *)

(* ------------------------------------------------------------------ *)
(* Indexing, slicing, iteration                                        *)
(* ------------------------------------------------------------------ *)

let normalize_index len i = if i < 0 then len + i else i

let index_value container idx =
  match (container, idx) with
  | Vstr s, Vint i ->
    let i = normalize_index (String.length s) i in
    if i < 0 || i >= String.length s then
      raise_error "IndexError" "string index out of range"
    else Vstr (String.make 1 s.[i])
  | Vlist l, Vint i ->
    let items = !l in
    let i = normalize_index (List.length items) i in
    (match List.nth_opt items i with
     | Some v when i >= 0 -> v
     | _ -> raise_error "IndexError" "list index out of range")
  | Vtuple t, Vint i ->
    let i = normalize_index (List.length t) i in
    (match List.nth_opt t i with
     | Some v when i >= 0 -> v
     | _ -> raise_error "IndexError" "tuple index out of range")
  | Vdict d, k ->
    (match List.find_opt (fun (k', _) -> equal k k') !d with
     | Some (_, v) -> v
     | None -> raise_error "KeyError" (to_display_string k))
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "%s indices must be integers" (type_name container))

let slice_value container lo hi =
  let clamp len v = if v < 0 then max 0 (len + v) else min v len in
  match container with
  | Vstr s ->
    let len = String.length s in
    let lo = clamp len (Option.value lo ~default:0) in
    let hi = clamp len (Option.value hi ~default:len) in
    if hi <= lo then Vstr "" else Vstr (String.sub s lo (hi - lo))
  | Vlist l ->
    let items = !l in
    let len = List.length items in
    let lo = clamp len (Option.value lo ~default:0) in
    let hi = clamp len (Option.value hi ~default:len) in
    Vlist (ref (List.filteri (fun i _ -> i >= lo && i < hi) items))
  | Vtuple t ->
    let len = List.length t in
    let lo = clamp len (Option.value lo ~default:0) in
    let hi = clamp len (Option.value hi ~default:len) in
    Vtuple (List.filteri (fun i _ -> i >= lo && i < hi) t)
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "%s is not sliceable" (type_name container))

let iterate_value v : Value.t list =
  match v with
  | Vstr s -> List.init (String.length s) (fun i -> Vstr (String.make 1 s.[i]))
  | Vlist l -> !l
  | Vtuple t -> t
  | Vdict d -> List.map fst !d
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "%s object is not iterable" (type_name v))

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let int_of_string_strict ?(base = 10) s =
  let s = String.trim s in
  if s = "" then raise_error "ValueError" "invalid literal for int()";
  let sign, digits =
    if s.[0] = '-' then (-1, String.sub s 1 (String.length s - 1))
    else if s.[0] = '+' then (1, String.sub s 1 (String.length s - 1))
    else (1, s)
  in
  if digits = "" then raise_error "ValueError" "invalid literal for int()";
  let digit_val c =
    if c >= '0' && c <= '9' then Char.code c - Char.code '0'
    else if c >= 'a' && c <= 'z' then Char.code c - Char.code 'a' + 10
    else if c >= 'A' && c <= 'Z' then Char.code c - Char.code 'A' + 10
    else 99
  in
  let acc = ref 0 in
  String.iter
    (fun c ->
      let d = digit_val c in
      if d >= base then
        raise_error "ValueError"
          (Printf.sprintf "invalid literal for int() with base %d: '%s'" base s);
      acc := (!acc * base) + d)
    digits;
  sign * !acc

let float_of_string_strict s =
  let s = String.trim s in
  let valid =
    s <> ""
    && (let seen_digit = ref false and seen_dot = ref false
        and seen_e = ref false and ok = ref true in
        String.iteri
          (fun i c ->
            match c with
            | '0' .. '9' -> seen_digit := true
            | '-' | '+' ->
              if not
                   (i = 0
                   || (i > 0 && (s.[i - 1] = 'e' || s.[i - 1] = 'E')))
              then ok := false
            | '.' ->
              if !seen_dot || !seen_e then ok := false else seen_dot := true
            | 'e' | 'E' ->
              if !seen_e || not !seen_digit then ok := false
              else seen_e := true
            | _ -> ok := false)
          s;
        !ok && !seen_digit)
  in
  if not valid then
    raise_error "ValueError"
      (Printf.sprintf "could not convert string to float: '%s'" s)
  else
    match float_of_string_opt s with
    | Some f -> f
    | None ->
      raise_error "ValueError"
        (Printf.sprintf "could not convert string to float: '%s'" s)

(* ------------------------------------------------------------------ *)
(* String / list / dict methods                                        *)
(* ------------------------------------------------------------------ *)

(* The string primitives live in {!Strops} so the interpreter-free fast
   path (compiled absint summaries) shares their exact semantics. *)
let strip_chars = Strops.strip_chars

let split_on_string sep s =
  if sep = "" then raise_error "ValueError" "empty separator"
  else Strops.split_on_string sep s

let split_whitespace = Strops.split_whitespace
let find_substring = Strops.find_substring
let replace_substring = Strops.replace_substring
let string_forall = Strops.string_forall

let str_method s name args =
  let arg_str i =
    match List.nth_opt args i with
    | Some (Vstr x) -> x
    | Some v ->
      raise_error "TypeError"
        (Printf.sprintf "method %s expected str, got %s" name (type_name v))
    | None -> raise_error "TypeError" (Printf.sprintf "method %s: missing argument" name)
  in
  match (name, args) with
  | "upper", [] -> Vstr (String.uppercase_ascii s)
  | "lower", [] -> Vstr (String.lowercase_ascii s)
  | "strip", [] -> Vstr (strip_chars s None ~left:true ~right:true)
  | "strip", [ Vstr cs ] -> Vstr (strip_chars s (Some cs) ~left:true ~right:true)
  | "lstrip", [] -> Vstr (strip_chars s None ~left:true ~right:false)
  | "lstrip", [ Vstr cs ] -> Vstr (strip_chars s (Some cs) ~left:true ~right:false)
  | "rstrip", [] -> Vstr (strip_chars s None ~left:false ~right:true)
  | "rstrip", [ Vstr cs ] -> Vstr (strip_chars s (Some cs) ~left:false ~right:true)
  | "split", [] -> Vlist (ref (List.map (fun x -> Vstr x) (split_whitespace s)))
  | "split", [ Vstr sep ] ->
    Vlist (ref (List.map (fun x -> Vstr x) (split_on_string sep s)))
  | "replace", [ Vstr o; Vstr n ] -> Vstr (replace_substring s o n)
  | "startswith", [ Vstr p ] ->
    Vbool (String.length s >= String.length p
           && String.sub s 0 (String.length p) = p)
  | "endswith", [ Vstr p ] ->
    let pl = String.length p and sl = String.length s in
    Vbool (sl >= pl && String.sub s (sl - pl) pl = p)
  | "find", [ Vstr needle ] -> Vint (find_substring s needle)
  | "find", [ Vstr needle; Vint from ] -> Vint (find_substring ~from s needle)
  | "rfind", [ Vstr needle ] ->
    let nl = String.length needle in
    let rec go i best =
      if i + nl > String.length s then best
      else if String.sub s i nl = needle then go (i + 1) i
      else go (i + 1) best
    in
    Vint (go 0 (-1))
  | "index", [ Vstr needle ] ->
    let i = find_substring s needle in
    if i < 0 then raise_error "ValueError" "substring not found" else Vint i
  | "count", [ Vstr needle ] ->
    if needle = "" then Vint (String.length s + 1)
    else
      let nl = String.length needle in
      let rec go i acc =
        let j = find_substring ~from:i s needle in
        if j < 0 then acc else go (j + nl) (acc + 1)
      in
      Vint (go 0 0)
  | "join", [ Vlist items ] ->
    let parts =
      List.map
        (function
          | Vstr x -> x
          | v ->
            raise_error "TypeError"
              (Printf.sprintf "join: expected str, got %s" (type_name v)))
        !items
    in
    Vstr (String.concat s parts)
  | "isdigit", [] -> Vbool (string_forall (fun c -> c >= '0' && c <= '9') s)
  | "isalpha", [] ->
    Vbool (string_forall (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) s)
  | "isalnum", [] ->
    Vbool
      (string_forall
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9'))
         s)
  | "isupper", [] ->
    Vbool
      (String.exists (fun c -> c >= 'A' && c <= 'Z') s
       && not (String.exists (fun c -> c >= 'a' && c <= 'z') s))
  | "islower", [] ->
    Vbool
      (String.exists (fun c -> c >= 'a' && c <= 'z') s
       && not (String.exists (fun c -> c >= 'A' && c <= 'Z') s))
  | "isspace", [] ->
    Vbool (string_forall (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s)
  | "zfill", [ Vint w ] ->
    let l = String.length s in
    if l >= w then Vstr s else Vstr (String.make (w - l) '0' ^ s)
  | "title", [] ->
    let b = Bytes.of_string (String.lowercase_ascii s) in
    let prev_alpha = ref false in
    Bytes.iteri
      (fun i c ->
        let alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
        if alpha && not !prev_alpha then
          Bytes.set b i (Char.uppercase_ascii c);
        prev_alpha := alpha)
      b;
    Vstr (Bytes.to_string b)
  | "format", _ ->
    (* Sequential {} substitution, enough for corpus diagnostics. *)
    let parts = split_on_string "{}" s in
    let rec weave parts args acc =
      match (parts, args) with
      | [ last ], _ -> List.rev (last :: acc)
      | p :: rest, a :: args' ->
        weave rest args' (to_display_string a :: p :: acc)
      | p :: rest, [] -> weave rest [] ("" :: p :: acc)
      | [], _ -> List.rev acc
    in
    Vstr (String.concat "" (weave parts args []))
  | ("split" | "replace" | "startswith" | "endswith" | "join"), _ ->
    ignore (arg_str 0);
    raise_error "TypeError" (Printf.sprintf "bad arguments to str.%s" name)
  | _ ->
    raise_error "AttributeError"
      (Printf.sprintf "'str' object has no attribute '%s'" name)

let list_method l name args =
  match (name, args) with
  | "append", [ v ] -> l := !l @ [ v ]; Vnone
  | "extend", [ Vlist other ] -> l := !l @ !other; Vnone
  | "insert", [ Vint i; v ] ->
    let items = !l in
    let i = max 0 (min (List.length items) (normalize_index (List.length items) i)) in
    l := List.filteri (fun j _ -> j < i) items @ [ v ]
         @ List.filteri (fun j _ -> j >= i) items;
    Vnone
  | "pop", [] ->
    (match List.rev !l with
     | [] -> raise_error "IndexError" "pop from empty list"
     | last :: rest -> l := List.rev rest; last)
  | "pop", [ Vint i ] ->
    let items = !l in
    let i = normalize_index (List.length items) i in
    (match List.nth_opt items i with
     | Some v when i >= 0 ->
       l := List.filteri (fun j _ -> j <> i) items;
       v
     | _ -> raise_error "IndexError" "pop index out of range")
  | "index", [ v ] ->
    let rec go i = function
      | [] -> raise_error "ValueError" "value not in list"
      | x :: _ when equal x v -> Vint i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 !l
  | "count", [ v ] -> Vint (List.length (List.filter (equal v) !l))
  | "reverse", [] -> l := List.rev !l; Vnone
  | "sort", [] -> l := List.sort compare_values !l; Vnone
  | "remove", [ v ] ->
    let rec go = function
      | [] -> raise_error "ValueError" "value not in list"
      | x :: tl when equal x v -> tl
      | x :: tl -> x :: go tl
    in
    l := go !l;
    Vnone
  | _ ->
    raise_error "AttributeError"
      (Printf.sprintf "'list' object has no attribute '%s'" name)

let dict_method d name args =
  match (name, args) with
  | "get", [ k ] ->
    (match List.find_opt (fun (k', _) -> equal k k') !d with
     | Some (_, v) -> v
     | None -> Vnone)
  | "get", [ k; default ] ->
    (match List.find_opt (fun (k', _) -> equal k k') !d with
     | Some (_, v) -> v
     | None -> default)
  | "keys", [] -> Vlist (ref (List.map fst !d))
  | "values", [] -> Vlist (ref (List.map snd !d))
  | "items", [] -> Vlist (ref (List.map (fun (k, v) -> Vtuple [ k; v ]) !d))
  | "has_key", [ k ] -> Vbool (List.exists (fun (k', _) -> equal k k') !d)
  | "update", [ Vdict other ] ->
    List.iter
      (fun (k, v) ->
        d := (k, v) :: List.filter (fun (k', _) -> not (equal k k')) !d)
      !other;
    Vnone
  | "pop", [ k ] ->
    (match List.find_opt (fun (k', _) -> equal k k') !d with
     | Some (_, v) ->
       d := List.filter (fun (k', _) -> not (equal k k')) !d;
       v
     | None -> raise_error "KeyError" (to_display_string k))
  | _ ->
    raise_error "AttributeError"
      (Printf.sprintf "'dict' object has no attribute '%s'" name)

(* ------------------------------------------------------------------ *)
(* Regex bridge (the "re" module)                                      *)
(* ------------------------------------------------------------------ *)

(* Domain-local so concurrent interpreter runs (lib/exec tracing pool)
   never contend on — or corrupt — a shared table; each domain compiles
   a pattern at most once. *)
let compiled_regex_cache : (string, Regexlite.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let compile_regex pat =
  let cache = Domain.DLS.get compiled_regex_cache in
  match Hashtbl.find_opt cache pat with
  | Some re -> Some re
  | None ->
    (match Regexlite.parse pat with
     | re ->
       Hashtbl.add cache pat re;
       Some re
     | exception Regexlite.Parse_error _ -> None)

(** The four regex entry points, shared with the VM's pre-compiled
    pattern fast path ({!Compile} pools [Regexlite.t] values for regex
    literals), so both routes produce identical matches and identical
    [ValueError]s on unparseable patterns. *)
let re_apply re name pat s =
  match name with
  | "match" ->
    (match Regexlite.match_prefix re s with
     | Some j -> Vstr (String.sub s 0 j)
     | None -> Vnone)
  | "fullmatch" -> if Regexlite.full_match re s then Vstr s else Vnone
  | "search" ->
    (match Regexlite.search re s with
     | Some (i, j) -> Vstr (String.sub s i (j - i))
     | None -> Vnone)
  | "findall" ->
    let n = String.length s in
    let rec go i acc =
      if i > n then List.rev acc
      else
        match Regexlite.match_at re s i with
        | Some j when j > i -> go j (Vstr (String.sub s i (j - i)) :: acc)
        | Some j -> go (j + 1) acc
        | None -> go (i + 1) acc
    in
    Vlist (ref (go 0 []))
  | _ ->
    ignore pat;
    raise_error "AttributeError"
      (Printf.sprintf "re module has no attribute '%s'" name)

let re_module_method name args =
  let pat, s =
    match args with
    | [ Vstr pat; Vstr s ] -> (pat, s)
    | [ Vstr _; v ] | [ v; _ ] ->
      raise_error "TypeError"
        (Printf.sprintf "re.%s expected strings, got %s" name (type_name v))
    | _ -> raise_error "TypeError" (Printf.sprintf "re.%s expects 2 arguments" name)
  in
  match compile_regex pat with
  | None -> raise_error "ValueError" ("bad regular expression: " ^ pat)
  | Some re -> re_apply re name pat s

(* ------------------------------------------------------------------ *)
(* Builtin free functions                                              *)
(* ------------------------------------------------------------------ *)

let builtin_names =
  [ "len"; "int"; "float"; "str"; "bool"; "ord"; "chr"; "abs"; "min"; "max";
    "sum"; "range"; "round"; "print"; "input"; "open"; "sorted"; "reversed";
    "list"; "dict"; "tuple"; "isdigit"; "type"; "enumerate"; "zip" ]

let call_builtin ctx name args =
  match (name, args) with
  | "len", [ Vstr s ] -> Vint (String.length s)
  | "len", [ Vlist l ] -> Vint (List.length !l)
  | "len", [ Vdict d ] -> Vint (List.length !d)
  | "len", [ Vtuple t ] -> Vint (List.length t)
  | "len", [ v ] ->
    raise_error "TypeError"
      (Printf.sprintf "object of type '%s' has no len()" (type_name v))
  | "int", [ Vstr s ] -> Vint (int_of_string_strict s)
  | "int", [ Vstr s; Vint base ] -> Vint (int_of_string_strict ~base s)
  | "int", [ Vint i ] -> Vint i
  | "int", [ Vfloat f ] -> Vint (int_of_float f)
  | "int", [ Vbool b ] -> Vint (if b then 1 else 0)
  | "int", [ v ] ->
    raise_error "TypeError"
      (Printf.sprintf "int() argument must be a string or number, not '%s'"
         (type_name v))
  | "float", [ Vstr s ] -> Vfloat (float_of_string_strict s)
  | "float", [ Vint i ] -> Vfloat (float_of_int i)
  | "float", [ Vfloat f ] -> Vfloat f
  | "float", [ v ] ->
    raise_error "TypeError"
      (Printf.sprintf "float() argument must be a string or number, not '%s'"
         (type_name v))
  | "str", [ v ] -> Vstr (to_display_string v)
  | "str", [] -> Vstr ""
  | "bool", [ v ] -> Vbool (truthy v)
  | "ord", [ Vstr s ] when String.length s = 1 -> Vint (Char.code s.[0])
  | "ord", [ _ ] ->
    raise_error "TypeError" "ord() expected a character"
  | "chr", [ Vint i ] ->
    if i < 0 || i > 255 then raise_error "ValueError" "chr() arg out of range"
    else Vstr (String.make 1 (Char.chr i))
  | "abs", [ Vint i ] -> Vint (abs i)
  | "abs", [ Vfloat f ] -> Vfloat (Float.abs f)
  | "min", [ Vlist l ] ->
    (match !l with
     | [] -> raise_error "ValueError" "min() of empty sequence"
     | hd :: tl -> List.fold_left (fun a b -> if compare_values b a < 0 then b else a) hd tl)
  | "min", (_ :: _ :: _ as vs) ->
    List.fold_left
      (fun a b -> if compare_values b a < 0 then b else a)
      (List.hd vs) (List.tl vs)
  | "max", [ Vlist l ] ->
    (match !l with
     | [] -> raise_error "ValueError" "max() of empty sequence"
     | hd :: tl -> List.fold_left (fun a b -> if compare_values b a > 0 then b else a) hd tl)
  | "max", (_ :: _ :: _ as vs) ->
    List.fold_left
      (fun a b -> if compare_values b a > 0 then b else a)
      (List.hd vs) (List.tl vs)
  | "sum", [ Vlist l ] ->
    List.fold_left (fun acc v -> num_binop Ast.Add acc v) (Vint 0) !l
  | "range", [ Vint n ] ->
    if n > 100_000 then raise (Sandbox_limit "range too large");
    Vlist (ref (List.init (max 0 n) (fun i -> Vint i)))
  | "range", [ Vint a; Vint b ] ->
    if b - a > 100_000 then raise (Sandbox_limit "range too large");
    Vlist (ref (List.init (max 0 (b - a)) (fun i -> Vint (a + i))))
  | "range", [ Vint a; Vint b; Vint step ] ->
    if step = 0 then raise_error "ValueError" "range() arg 3 must not be zero";
    let count =
      if step > 0 then max 0 ((b - a + step - 1) / step)
      else max 0 ((a - b + (-step) - 1) / -step)
    in
    if count > 100_000 then raise (Sandbox_limit "range too large");
    Vlist (ref (List.init count (fun i -> Vint (a + (i * step)))))
  | "round", [ Vfloat f ] -> Vint (int_of_float (Float.round f))
  | "round", [ Vint i ] -> Vint i
  | "round", [ Vfloat f; Vint d ] ->
    let m = Float.pow 10.0 (float_of_int d) in
    Vfloat (Float.round (f *. m) /. m)
  | "print", vs ->
    ctx.printed <-
      String.concat " " (List.map to_display_string vs) :: ctx.printed;
    Vnone
  | "input", ([] | [ Vstr _ ]) -> Vstr ctx.stdin_line
  | "open", (Vstr path :: _) ->
    (match List.assoc_opt path ctx.virtual_files with
     | Some content ->
       let fields = Hashtbl.create 4 in
       Hashtbl.replace fields "__path" (Vstr path);
       Hashtbl.replace fields "__content" (Vstr content);
       Vobj { ocls = "file"; fields }
     | None -> raise_error "IOError" ("no such file: " ^ path))
  | "sorted", [ Vlist l ] -> Vlist (ref (List.sort compare_values !l))
  | "sorted", [ Vstr s ] ->
    Vlist
      (ref
         (List.sort compare_values
            (List.init (String.length s) (fun i -> Vstr (String.make 1 s.[i])))))
  | "reversed", [ Vlist l ] -> Vlist (ref (List.rev !l))
  | "reversed", [ Vstr s ] ->
    let n = String.length s in
    Vstr (String.init n (fun i -> s.[n - 1 - i]))
  | "list", [] -> Vlist (ref [])
  | "list", [ v ] -> Vlist (ref (iterate_value v))
  | "dict", [] -> Vdict (ref [])
  | "tuple", [ v ] -> Vtuple (iterate_value v)
  | "type", [ v ] -> Vstr (type_name v)
  | "enumerate", [ v ] ->
    Vlist (ref (List.mapi (fun i x -> Vtuple [ Vint i; x ]) (iterate_value v)))
  | "zip", [ a; b ] ->
    let xa = iterate_value a and xb = iterate_value b in
    let rec go xs ys acc =
      match (xs, ys) with
      | x :: xs', y :: ys' -> go xs' ys' (Vtuple [ x; y ] :: acc)
      | _ -> List.rev acc
    in
    Vlist (ref (go xa xb []))
  | _, _ ->
    raise_error "TypeError"
      (Printf.sprintf "bad arguments to builtin %s()" name)

let file_method o name args =
  let content =
    match Hashtbl.find_opt o.fields "__content" with
    | Some (Vstr c) -> c
    | _ -> ""
  in
  match (name, args) with
  | "read", [] -> Vstr content
  | "readline", [] ->
    (match String.index_opt content '\n' with
     | Some i -> Vstr (String.sub content 0 (i + 1))
     | None -> Vstr content)
  | "readlines", [] ->
    Vlist
      (ref
         (String.split_on_char '\n' content
          |> List.filter (fun l -> l <> "")
          |> List.map (fun l -> Vstr l)))
  | "close", [] -> Vnone
  | "write", [ Vstr _ ] -> Vnone  (* writes are swallowed by the sandbox *)
  | _ ->
    raise_error "AttributeError"
      (Printf.sprintf "'file' object has no attribute '%s'" name)

(* ------------------------------------------------------------------ *)
(* Name fallback shared by both engines                                 *)
(* ------------------------------------------------------------------ *)

(** Resolve [name] after local and module scope both missed: builtins,
    the [re]/[sys] pseudo-modules, bare [argv], exception-kind
    constructors — or a [NameError].  The exact chain (and its order)
    the tree-walker has always used. *)
let lookup_fallback ctx name =
  if List.mem name builtin_names then Vbuiltin name
  else if name = "re" then Vbuiltin "re_module"
  else if name = "sys" then Vbuiltin "sys_module"
  else if name = "argv" then ctx.argv
  else if List.mem name known_exception_kinds then Vbuiltin ("exc:" ^ name)
  else
    raise_error "NameError" (Printf.sprintf "name '%s' is not defined" name)

(** Build the exception object [ValueError("msg")] etc. constructs. *)
let make_exception_object kind args =
  let fields = Hashtbl.create 2 in
  let msg =
    match args with
    | [ v ] -> to_display_string v
    | [] -> ""
    | vs -> String.concat ", " (List.map to_display_string vs)
  in
  Hashtbl.replace fields "message" (Vstr msg);
  Vobj { ocls = kind; fields }

(** The [raise e] statement's value dispatch, shared verbatim. *)
let raise_value v : 'a =
  match v with
  | Vstr msg -> raise_error "Exception" msg
  | Vobj o ->
    let msg =
      match Hashtbl.find_opt o.fields "message" with
      | Some (Vstr m) -> m
      | _ -> "user exception object"
    in
    raise_error o.ocls msg
  | Vbuiltin name when String.length name > 4 && String.sub name 0 4 = "exc:" ->
    raise_error (String.sub name 4 (String.length name - 4)) ""
  | v -> raise_error "Exception" (to_display_string v)

let truncate_display s =
  if String.length s > 60 then String.sub s 0 60 ^ "…" else s
