(** Lowering of {!Ast} to flat bytecode for {!Vm}.

    The compiled form is a jump-threaded instruction array per code
    unit (module body, function body, default expression, or the
    sub-blocks of a [try] statement).  Identifiers are resolved to
    frame slot indices at compile time (module-level names stay
    dynamic, matching the tree-walker's scope chain); regex literals in
    [re.xxx("pat", s)] calls are pre-compiled; step charging is batched
    into [I_tick k] instructions whose placement reproduces the
    tree-walker's three tick sites bit-for-bit (see {!Rt.tick_n}).

    Effect-order parity is the contract, so the emitter mirrors the
    tree-walker's (OCaml-determined) evaluation order exactly — notably
    slice bounds evaluate and validate upper-before-lower and dict
    literals evaluate value-before-key, because that is what the
    tree-walker's right-to-left argument evaluation does.

    Compiled units are cached per domain, keyed on the *physical
    identity* of the AST node ({!Repolib.Repo.parse_each} shares parsed
    ASTs across all runs of a candidate, so the ~240 runs per candidate
    compile once per domain). *)

(* Specialized receivers for hot methods: checked against the runtime
   receiver/argument shapes; any mismatch falls back to the generic
   dispatch so error behavior is byte-identical. *)
type mspec =
  | M_generic
  | M_strip | M_lstrip | M_rstrip
  | M_upper | M_lower
  | M_isdigit | M_isalpha | M_isalnum
  | M_split0 | M_split1
  | M_replace
  | M_startswith | M_endswith
  | M_join
  | M_find
  | M_append

type instr =
  | I_tick of int  (** charge k interpreter steps ({!Rt.tick_n}) *)
  | I_const of Value.t
  | I_pop
  | I_jump of int
  | I_and of int  (** peek: falsy keeps value and jumps, truthy pops *)
  | I_or of int   (** peek: truthy keeps value and jumps, falsy pops *)
  | I_branch of Trace.event * Trace.event * int
      (** pop, emit the taken/not-taken event, jump when false; both
          events are preallocated at compile time so emission is a cons *)
  | I_not
  | I_neg
  | I_binop of Ast.binop
  | I_load of int * string      (** slot, name (module fallback on unset) *)
  | I_load_name of string       (** module mode: dynamic scope chain *)
  | I_store of int * string * Ast.pos
      (** maybe-global store: runtime [global] check, Assign event *)
  | I_store_local of int * string * Ast.pos
      (** definitely-local store with Assign event *)
  | I_store_direct of int       (** binder store: no event, no global check *)
  | I_store_name of string * Ast.pos   (** module mode, Assign event *)
  | I_store_name_direct of string      (** module mode binder store *)
  | I_store_attr of string * Ast.pos   (** pops obj then value *)
  | I_store_index                      (** pops index, container, value *)
  | I_unpack of int   (** pop sequence, push n elements (first on top) *)
  | I_attr of string
  | I_index           (** specialized str[int] inline, generic fallback *)
  | I_slice_check     (** validate top is int/None (slice bound) *)
  | I_slice of bool * bool  (** has_lo, has_hi; specialized str inline *)
  | I_build_list of int
  | I_build_tuple of int
  | I_build_dict of int     (** operands pushed value-before-key per pair *)
  | I_call of int * Ast.pos
  | I_call1 of Ast.pos      (** 1-arg call: inline len/int/str fast paths *)
  | I_method of string * int * Ast.pos * mspec
  | I_method_re of string * Regexlite.t * Ast.pos
      (** [re.name(lit, s)] with a pre-compiled pattern; generic fallback *)
  | I_return of Trace.site  (** pop, emit Return, raise Return_signal *)
  | I_raise_bare
  | I_raise
  | I_fail of string * string  (** raise Runtime_error (kind, msg) *)
  | I_for_setup       (** pop iterable, push item list onto frame iters *)
  | I_for_next of int (** next item or pop iter and jump *)
  | I_for_pop of int  (** break target: pop iter, jump *)
  | I_break
  | I_continue
  | I_global of string list
  | I_func of Ast.func
  | I_class of Ast.cls
  | I_try of try_code

and code = {
  c_instrs : instr array;
  c_brk : int array;
      (** per-pc jump target for a {!Rt.Break_signal} unwinding to this
          pc, [-1] to propagate (loop lives in an enclosing unit) *)
  c_cont : int array;  (** same for {!Rt.Continue_signal} *)
  c_stack : int;  (** max operand-stack depth, nested try units included *)
}

and hmatch = H_any | H_exact of string

and hbind = B_none | B_slot of int | B_name of string

and try_code = {
  t_body : code;
  t_handlers : (hmatch * hbind * code) list;
  t_finally : code option;
}

type cfunc = {
  cf_fn : Ast.func;
  cf_code : code;
  cf_nslots : int;
  cf_param_slots : int array;  (** slot of each param, in order *)
  cf_defaults : (string * code) list;  (** param name -> default expr code *)
  cf_stack : int;  (** max stack need across body and defaults *)
}

type cprog = { cp_prog : Ast.program; cp_code : code }

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

type mode =
  | M_fun of (string, int) Hashtbl.t * (string, unit) Hashtbl.t
      (** slot table, names mentioned by a [global] stmt at this level *)
  | M_module

type builder = {
  mutable items : instr array;
  mutable len : int;
  mutable labels : int array;
  mutable nlabels : int;
  mutable pending : int;  (** ticks accumulated, flushed before effects *)
  mutable intervals : (int * int * int * int * int) list;
      (** (open_seq, start_pc, end_pc, brk_label, cont_label); -1 = keep *)
  mutable loops : (int * int) list;
      (** compile-time loop stack (brk label, cont label) for direct
          break/continue jumps within the same code unit *)
  mutable seq : int;
  mode : mode;
}

let new_builder mode =
  {
    items = Array.make 64 I_pop;
    len = 0;
    labels = Array.make 16 (-1);
    nlabels = 0;
    pending = 0;
    intervals = [];
    loops = [];
    seq = 0;
    mode;
  }

let push_raw b i =
  if b.len = Array.length b.items then begin
    let bigger = Array.make (2 * b.len) I_pop in
    Array.blit b.items 0 bigger 0 b.len;
    b.items <- bigger
  end;
  b.items.(b.len) <- i;
  b.len <- b.len + 1

let flush b =
  if b.pending > 0 then begin
    let k = b.pending in
    b.pending <- 0;
    push_raw b (I_tick k)
  end

let tick b = b.pending <- b.pending + 1

(* I_const is pure and non-raising, so a pending tick may slide past it:
   batching stays observationally identical (see Rt.tick_n). *)
let emit b i =
  (match i with I_const _ | I_func _ -> () | _ -> flush b);
  push_raw b i

let new_label b =
  if b.nlabels = Array.length b.labels then begin
    let bigger = Array.make (2 * b.nlabels) (-1) in
    Array.blit b.labels 0 bigger 0 b.nlabels;
    b.labels <- bigger
  end;
  let l = b.nlabels in
  b.nlabels <- l + 1;
  l

let bind_label b l =
  flush b;
  b.labels.(l) <- b.len

(* ------------------------------------------------------------------ *)
(* Stack-depth dataflow                                                *)
(* ------------------------------------------------------------------ *)

let max_stack (instrs : instr array) : int =
  let n = Array.length instrs in
  let depth = Array.make (n + 1) (-1) in
  let maxd = ref 0 in
  let work = Queue.create () in
  let visit pc d =
    if pc <= n && (depth.(pc) < 0 || depth.(pc) < d) then begin
      depth.(pc) <- max depth.(pc) d;
      if d > !maxd then maxd := d;
      if pc < n then Queue.add pc work
    end
  in
  visit 0 0;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    let d = depth.(pc) in
    match instrs.(pc) with
    | I_tick _ | I_not | I_neg | I_attr _ | I_slice_check | I_global _ ->
      visit (pc + 1) d
    | I_const _ | I_load _ | I_load_name _ | I_func _ | I_class _ ->
      visit (pc + 1) (d + 1)
    | I_pop | I_binop _ | I_store _ | I_store_local _ | I_store_direct _
    | I_store_name _ | I_store_name_direct _ | I_index | I_call1 _
    | I_for_setup ->
      visit (pc + 1) (d - 1)
    | I_store_attr _ -> visit (pc + 1) (d - 2)
    | I_store_index -> visit (pc + 1) (d - 3)
    | I_unpack k -> visit (pc + 1) (d - 1 + k)
    | I_slice (lo, hi) ->
      visit (pc + 1) (d - (if lo then 1 else 0) - (if hi then 1 else 0))
    | I_build_list k | I_build_tuple k -> visit (pc + 1) (d - k + 1)
    | I_build_dict k -> visit (pc + 1) (d - (2 * k) + 1)
    | I_call (k, _) -> visit (pc + 1) (d - k)
    | I_method (_, k, _, _) -> visit (pc + 1) (d - k)
    | I_method_re _ -> visit (pc + 1) (d - 2)
    | I_jump t -> visit t d
    | I_and t | I_or t ->
      visit t d;
      visit (pc + 1) (d - 1)
    | I_branch (_, _, t) ->
      visit t (d - 1);
      visit (pc + 1) (d - 1)
    | I_for_next t ->
      visit t d;
      visit (pc + 1) (d + 1)
    | I_for_pop t -> visit t d
    | I_try tc ->
      (* Sub-units run on the same frame at this depth; their finalized
         stack bounds fold into this unit's. *)
      let sub = tc.t_body.c_stack in
      let sub =
        List.fold_left (fun m (_, _, c) -> max m c.c_stack) sub tc.t_handlers
      in
      let sub =
        match tc.t_finally with Some c -> max sub c.c_stack | None -> sub
      in
      if d + sub > !maxd then maxd := d + sub;
      visit (pc + 1) d
    | I_return _ | I_raise | I_raise_bare | I_fail _ | I_break | I_continue ->
      ()
  done;
  !maxd

let finalize b : code =
  flush b;
  let n = b.len in
  let patch t =
    let pc = b.labels.(t) in
    assert (pc >= 0);
    pc
  in
  let instrs =
    Array.init n (fun i ->
        match b.items.(i) with
        | I_jump t -> I_jump (patch t)
        | I_and t -> I_and (patch t)
        | I_or t -> I_or (patch t)
        | I_branch (et, ef, t) -> I_branch (et, ef, patch t)
        | I_for_next t -> I_for_next (patch t)
        | I_for_pop t -> I_for_pop (patch t)
        | i -> i)
  in
  let brk = Array.make n (-1) in
  let cont = Array.make n (-1) in
  List.iter
    (fun (_, start_pc, end_pc, brk_l, cont_l) ->
      for pc = start_pc to min (end_pc - 1) (n - 1) do
        if brk_l >= 0 then brk.(pc) <- patch brk_l;
        if cont_l >= 0 then cont.(pc) <- patch cont_l
      done)
    (List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b)
       b.intervals);
  { c_instrs = instrs; c_brk = brk; c_cont = cont; c_stack = max_stack instrs }

let add_interval b ~start_pc ~end_pc ~brk_l ~cont_l =
  let s = b.seq in
  b.seq <- s + 1;
  b.intervals <- (s, start_pc, end_pc, brk_l, cont_l) :: b.intervals

(* ------------------------------------------------------------------ *)
(* Slot assignment                                                     *)
(* ------------------------------------------------------------------ *)

(* Names assignable at one function level: parameters, simple
   assignment/for targets, def/class names, except binders — without
   descending into nested function or class bodies (those have their
   own frames).  Mirrors exactly where the tree-walker writes
   [frame.scope.vars]. *)
let collect_locals (fn : Ast.func) :
    (string, int) Hashtbl.t * (string, unit) Hashtbl.t * int =
  let slots = Hashtbl.create 16 in
  let flagged = Hashtbl.create 4 in
  let next = ref 0 in
  let add name =
    if not (Hashtbl.mem slots name) then begin
      Hashtbl.add slots name !next;
      incr next
    end
  in
  let rec add_target = function
    | Ast.Tvar n -> add n
    | Ast.Ttuple ts -> List.iter add_target ts
    | Ast.Tattr _ | Ast.Tindex _ -> ()
  in
  let rec walk_stmt (s : Ast.stmt) =
    match s with
    | Ast.Assign (t, _, _) | Ast.Aug_assign (t, _, _, _) -> add_target t
    | Ast.For (t, _, body, _) ->
      add_target t;
      List.iter walk_stmt body
    | Ast.If (arms, els) ->
      List.iter (fun (_, _, b) -> List.iter walk_stmt b) arms;
      (match els with Some b -> List.iter walk_stmt b | None -> ())
    | Ast.While (_, _, b) -> List.iter walk_stmt b
    | Ast.Try (b, handlers, fin) ->
      List.iter walk_stmt b;
      List.iter
        (fun h ->
          (match h.Ast.h_bind with
           | Some n -> add n
           | None ->
             (match h.Ast.h_filter with
              | Some f when not (List.mem f Rt.known_exception_kinds) -> add f
              | _ -> ()));
          List.iter walk_stmt h.Ast.h_body)
        handlers;
      (match fin with Some b -> List.iter walk_stmt b | None -> ())
    | Ast.Func_def f -> add f.Ast.fname
    | Ast.Class_def c -> add c.Ast.cname
    | Ast.Global names -> List.iter (fun n -> Hashtbl.replace flagged n ()) names
    | Ast.Expr_stmt _ | Ast.Return _ | Ast.Raise _ | Ast.Break _
    | Ast.Continue _ | Ast.Pass -> ()
  in
  List.iter add fn.Ast.params;
  List.iter walk_stmt fn.Ast.body;
  (slots, flagged, !next)

(* ------------------------------------------------------------------ *)
(* Expression / statement compilation                                  *)
(* ------------------------------------------------------------------ *)

(* Both Branch events a site can emit, allocated once at compile time:
   the VM's hot branch arm then only conses a shared immutable event. *)
let branch_instr pos target =
  let site = Trace.site_of_pos pos in
  I_branch (Trace.Branch (site, true), Trace.Branch (site, false), target)

let re_method_names = [ "match"; "fullmatch"; "search"; "findall" ]

let mspec_of name args =
  match (name, args) with
  | "strip", [] -> M_strip
  | "lstrip", [] -> M_lstrip
  | "rstrip", [] -> M_rstrip
  | "upper", [] -> M_upper
  | "lower", [] -> M_lower
  | "isdigit", [] -> M_isdigit
  | "isalpha", [] -> M_isalpha
  | "isalnum", [] -> M_isalnum
  | "split", [] -> M_split0
  | "split", [ _ ] -> M_split1
  | "replace", [ _; _ ] -> M_replace
  | "startswith", [ _ ] -> M_startswith
  | "endswith", [ _ ] -> M_endswith
  | "join", [ _ ] -> M_join
  | "find", [ _ ] -> M_find
  | "append", [ _ ] -> M_append
  | _ -> M_generic

let store_var b name pos =
  match b.mode with
  | M_module -> emit b (I_store_name (name, pos))
  | M_fun (slots, flagged) ->
    let slot = Hashtbl.find slots name in
    if Hashtbl.mem flagged name then emit b (I_store (slot, name, pos))
    else emit b (I_store_local (slot, name, pos))

let store_binder b name =
  match b.mode with
  | M_module -> emit b (I_store_name_direct name)
  | M_fun (slots, _) -> emit b (I_store_direct (Hashtbl.find slots name))

let load_var b name =
  match b.mode with
  | M_module -> emit b (I_load_name name)
  | M_fun (slots, _) ->
    (match Hashtbl.find_opt slots name with
     | Some slot -> emit b (I_load (slot, name))
     | None -> emit b (I_load (-1, name)))

let rec compile_expr b (e : Ast.expr) =
  tick b;
  match e with
  | Ast.Int i -> emit b (I_const (Value.Vint i))
  | Ast.Float f -> emit b (I_const (Value.Vfloat f))
  | Ast.Str s -> emit b (I_const (Value.Vstr s))
  | Ast.Bool v -> emit b (I_const (Value.Vbool v))
  | Ast.None_lit -> emit b (I_const Value.Vnone)
  | Ast.Var name -> load_var b name
  | Ast.Binop (Ast.And, a, e2, _) ->
    compile_expr b a;
    let l = new_label b in
    emit b (I_and l);
    compile_expr b e2;
    bind_label b l
  | Ast.Binop (Ast.Or, a, e2, _) ->
    compile_expr b a;
    let l = new_label b in
    emit b (I_or l);
    compile_expr b e2;
    bind_label b l
  | Ast.Binop (op, a, e2, _) ->
    compile_expr b a;
    compile_expr b e2;
    emit b (I_binop op)
  | Ast.Unop (Ast.Neg, e1) ->
    compile_expr b e1;
    emit b I_neg
  | Ast.Unop (Ast.Not, e1) ->
    compile_expr b e1;
    emit b I_not
  | Ast.Cond (c, a, e2, pos) ->
    compile_expr b c;
    let l_else = new_label b and l_end = new_label b in
    emit b (branch_instr pos l_else);
    compile_expr b a;
    emit b (I_jump l_end);
    bind_label b l_else;
    compile_expr b e2;
    bind_label b l_end
  | Ast.Call (f, args, pos) ->
    compile_expr b f;
    List.iter (compile_expr b) args;
    (match args with
     | [ _ ] -> emit b (I_call1 pos)
     | _ -> emit b (I_call (List.length args, pos)))
  | Ast.Method (obj, name, args, pos) ->
    compile_expr b obj;
    List.iter (compile_expr b) args;
    let specialized_re =
      match args with
      | [ Ast.Str pat; _ ] when List.mem name re_method_names ->
        Rt.compile_regex pat
      | _ -> None
    in
    (match specialized_re with
     | Some re -> emit b (I_method_re (name, re, pos))
     | None ->
       emit b (I_method (name, List.length args, pos, mspec_of name args)))
  | Ast.Attr (obj, name) ->
    compile_expr b obj;
    emit b (I_attr name)
  | Ast.Index (c, i, _) ->
    compile_expr b c;
    compile_expr b i;
    emit b I_index
  | Ast.Slice (c, lo, hi, _) ->
    compile_expr b c;
    (* The tree-walker evaluates (and type-checks) the upper bound
       before the lower one — OCaml right-to-left argument order. *)
    (match hi with
     | Some e1 ->
       compile_expr b e1;
       emit b I_slice_check
     | None -> ());
    (match lo with
     | Some e1 ->
       compile_expr b e1;
       emit b I_slice_check
     | None -> ());
    emit b (I_slice (lo <> None, hi <> None))
  | Ast.List_lit es ->
    List.iter (compile_expr b) es;
    emit b (I_build_list (List.length es))
  | Ast.Tuple_lit es ->
    List.iter (compile_expr b) es;
    emit b (I_build_tuple (List.length es))
  | Ast.Dict_lit kvs ->
    (* Value before key: the tree-walker builds each pair with an OCaml
       tuple expression, which evaluates right-to-left. *)
    List.iter
      (fun (k, v) ->
        compile_expr b v;
        compile_expr b k)
      kvs;
    emit b (I_build_dict (List.length kvs))

(* Store the value on stack top into [tgt]; event/effect order matches
   the tree-walker's [assign]. *)
and compile_store b (tgt : Ast.target) (pos : Ast.pos) =
  match tgt with
  | Ast.Tvar name -> store_var b name pos
  | Ast.Tattr (obj_e, name) ->
    compile_expr b obj_e;
    emit b (I_store_attr (name, pos))
  | Ast.Tindex (c_e, i_e) ->
    compile_expr b c_e;
    compile_expr b i_e;
    emit b I_store_index
  | Ast.Ttuple tgts ->
    emit b (I_unpack (List.length tgts));
    List.iter (fun t -> compile_store b t pos) tgts

and compile_stmt b (s : Ast.stmt) =
  tick b;
  match s with
  | Ast.Pass -> ()
  | Ast.Expr_stmt (e, _) ->
    compile_expr b e;
    emit b I_pop
  | Ast.Assign (tgt, e, pos) ->
    compile_expr b e;
    compile_store b tgt pos
  | Ast.Aug_assign (tgt, op, e, pos) ->
    (match tgt with
     | Ast.Tvar name ->
       (* read_target on a variable reads without charging a tick *)
       load_var b name;
       compile_expr b e;
       emit b (I_binop op);
       store_var b name pos
     | Ast.Tattr (obj_e, name) ->
       tick b;  (* read_target evaluates an Attr node: eval entry tick *)
       compile_expr b obj_e;
       emit b (I_attr name);
       compile_expr b e;
       emit b (I_binop op);
       compile_expr b obj_e;
       emit b (I_store_attr (name, pos))
     | Ast.Tindex (c_e, i_e) ->
       tick b;  (* read_target evaluates an Index node *)
       compile_expr b c_e;
       compile_expr b i_e;
       emit b I_index;
       compile_expr b e;
       emit b (I_binop op);
       compile_expr b c_e;
       compile_expr b i_e;
       emit b I_store_index
     | Ast.Ttuple _ ->
       emit b (I_fail ("TypeError", "invalid augmented assignment target")))
  | Ast.If (arms, els) ->
    let l_end = new_label b in
    List.iter
      (fun (cond, pos, body) ->
        compile_expr b cond;
        let l_next = new_label b in
        emit b (branch_instr pos l_next);
        List.iter (compile_stmt b) body;
        emit b (I_jump l_end);
        bind_label b l_next)
      arms;
    (match els with Some body -> List.iter (compile_stmt b) body | None -> ());
    bind_label b l_end
  | Ast.While (cond, pos, body) ->
    let l_top = new_label b and l_end = new_label b in
    flush b;
    let start_pc = b.len in
    bind_label b l_top;
    compile_expr b cond;
    emit b (branch_instr pos l_end);
    flush b;
    let body_pc = b.len in
    b.loops <- (l_end, l_top) :: b.loops;
    List.iter (compile_stmt b) body;
    b.loops <- List.tl b.loops;
    emit b (I_jump l_top);
    let end_pc = b.len in
    bind_label b l_end;
    (* Break is caught around condition and body; Continue only around
       the body — a Continue escaping the condition leaves the loop. *)
    add_interval b ~start_pc ~end_pc ~brk_l:l_end ~cont_l:(-1);
    add_interval b ~start_pc:body_pc ~end_pc ~brk_l:(-1) ~cont_l:l_top
  | Ast.For (tgt, iter_e, body, pos) ->
    compile_expr b iter_e;
    emit b I_for_setup;
    let l_top = new_label b and l_brk = new_label b and l_end = new_label b in
    flush b;
    let start_pc = b.len in
    bind_label b l_top;
    emit b (I_for_next l_end);
    tick b;  (* the per-item tick site *)
    compile_store b tgt pos;
    flush b;
    let body_pc = b.len in
    b.loops <- (l_brk, l_top) :: b.loops;
    List.iter (compile_stmt b) body;
    b.loops <- List.tl b.loops;
    emit b (I_jump l_top);
    let end_pc = b.len in
    bind_label b l_brk;
    emit b (I_for_pop l_end);
    bind_label b l_end;
    (* The iterable expression evaluates outside the Break catch; the
       per-item tick and target assignment are inside it but outside
       the Continue catch, exactly like the tree-walker's List.iter. *)
    add_interval b ~start_pc ~end_pc ~brk_l:l_brk ~cont_l:(-1);
    add_interval b ~start_pc:body_pc ~end_pc ~brk_l:(-1) ~cont_l:l_top
  | Ast.Return (e_opt, pos) ->
    (match e_opt with
     | Some e -> compile_expr b e
     | None -> emit b (I_const Value.Vnone));
    emit b (I_return (Trace.site_of_pos pos))
  | Ast.Raise (e_opt, _) ->
    (match e_opt with
     | None -> emit b I_raise_bare
     | Some e ->
       compile_expr b e;
       emit b I_raise)
  | Ast.Try (body, handlers, fin) ->
    let sub blk =
      let sb = new_builder b.mode in
      List.iter (compile_stmt sb) blk;
      finalize sb
    in
    let t_handlers =
      List.map
        (fun h ->
          let hmatch =
            match h.Ast.h_filter with
            | None -> H_any
            | Some f ->
              if List.mem f Rt.known_exception_kinds then
                if f = "Exception" then H_any else H_exact f
              else H_any  (* py2-style "except e:" catch-all binder *)
          in
          let hbind =
            let bind_name =
              match h.Ast.h_bind with
              | Some n -> Some n
              | None ->
                (match h.Ast.h_filter with
                 | Some f when not (List.mem f Rt.known_exception_kinds) ->
                   Some f
                 | _ -> None)
            in
            match bind_name with
            | None -> B_none
            | Some n ->
              (match b.mode with
               | M_module -> B_name n
               | M_fun (slots, _) -> B_slot (Hashtbl.find slots n))
          in
          (hmatch, hbind, sub h.Ast.h_body))
        handlers
    in
    emit b
      (I_try
         {
           t_body = sub body;
           t_handlers;
           t_finally = Option.map sub fin;
         })
  | Ast.Break _ ->
    (match b.loops with
     | (brk_l, _) :: _ -> emit b (I_jump brk_l)
     | [] -> emit b I_break)
  | Ast.Continue _ ->
    (match b.loops with
     | (_, cont_l) :: _ -> emit b (I_jump cont_l)
     | [] -> emit b I_continue)
  | Ast.Func_def fn ->
    emit b (I_func fn);
    store_binder b fn.Ast.fname
  | Ast.Class_def c ->
    emit b (I_class c);
    store_binder b c.Ast.cname
  | Ast.Global names -> emit b (I_global names)

(* ------------------------------------------------------------------ *)
(* Code-unit entry points and per-domain caches                        *)
(* ------------------------------------------------------------------ *)

let m_compile_ns = Telemetry.counter "vm.compile_ns"
let m_compiles = Telemetry.counter "vm.compiles"
let m_cache_hits = Telemetry.counter "vm.compile_cache_hits"

type stats_snapshot = { compiles : int; cache_hits : int }

type dom_stats = { mutable s_compiles : int; mutable s_hits : int }

let dom_stats_key : dom_stats Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { s_compiles = 0; s_hits = 0 })

let stats () =
  let s = Domain.DLS.get dom_stats_key in
  { compiles = s.s_compiles; cache_hits = s.s_hits }

let compile_func_uncached (fn : Ast.func) : cfunc =
  let slots, flagged, nslots = collect_locals fn in
  let mode = M_fun (slots, flagged) in
  let b = new_builder mode in
  List.iter (compile_stmt b) fn.Ast.body;
  let cf_code = finalize b in
  let cf_defaults =
    List.map
      (fun (p, e) ->
        let db = new_builder mode in
        compile_expr db e;
        (p, finalize db))
      fn.Ast.defaults
  in
  let cf_stack =
    List.fold_left
      (fun m (_, c) -> max m c.c_stack)
      cf_code.c_stack cf_defaults
  in
  {
    cf_fn = fn;
    cf_code;
    cf_nslots = nslots;
    cf_param_slots =
      Array.of_list (List.map (fun p -> Hashtbl.find slots p) fn.Ast.params);
    cf_defaults;
    cf_stack;
  }

let compile_prog_uncached (p : Ast.program) : cprog =
  let b = new_builder M_module in
  List.iter (compile_stmt b) p.Ast.prog_body;
  { cp_prog = p; cp_code = finalize b }

(* Physical-identity caches: Repolib.Repo.parse_each shares AST nodes
   across every run of a candidate, so (==) keying is both sound (a
   re-parse makes fresh nodes) and hit on the hot path. *)
module FuncKey = struct
  type t = Ast.func

  let equal = ( == )

  let hash (f : Ast.func) =
    Hashtbl.hash (f.Ast.fname, f.Ast.fpos.Ast.file, f.Ast.fpos.Ast.line)
end

module FuncTbl = Hashtbl.Make (FuncKey)

module ProgKey = struct
  type t = Ast.program

  let equal = ( == )
  let hash (p : Ast.program) = Hashtbl.hash p.Ast.prog_file
end

module ProgTbl = Hashtbl.Make (ProgKey)

let func_cache : cfunc FuncTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> FuncTbl.create 64)

let prog_cache : cprog ProgTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ProgTbl.create 32)

let timed_compile f =
  let s = Domain.DLS.get dom_stats_key in
  let telemetry = Telemetry.enabled () in
  let t0 = if telemetry then Telemetry.now_ns () else 0L in
  let r = f () in
  if telemetry then begin
    Telemetry.incr ~by:(Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0))
      m_compile_ns;
    Telemetry.incr m_compiles
  end;
  s.s_compiles <- s.s_compiles + 1;
  r

let func (fn : Ast.func) : cfunc =
  let cache = Domain.DLS.get func_cache in
  match FuncTbl.find_opt cache fn with
  | Some cf ->
    let s = Domain.DLS.get dom_stats_key in
    s.s_hits <- s.s_hits + 1;
    if Telemetry.enabled () then Telemetry.incr m_cache_hits;
    cf
  | None ->
    let cf = timed_compile (fun () -> compile_func_uncached fn) in
    FuncTbl.add cache fn cf;
    cf

let program (p : Ast.program) : cprog =
  let cache = Domain.DLS.get prog_cache in
  match ProgTbl.find_opt cache p with
  | Some cp ->
    let s = Domain.DLS.get dom_stats_key in
    s.s_hits <- s.s_hits + 1;
    if Telemetry.enabled () then Telemetry.incr m_cache_hits;
    cp
  | None ->
    let cp = timed_compile (fun () -> compile_prog_uncached p) in
    ProgTbl.add cache p cp;
    cp
