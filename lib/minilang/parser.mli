(** Recursive-descent parser for MiniScript over {!Lexer} tokens. *)

exception Parse_error of string * int  (** message, line *)

val parse : file:string -> string -> Ast.program
(** Parse one source file.
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on tokenization errors *)
