(** MiniScript execution engine: public API plus the tree-walking
    reference evaluator.

    Two engines sit behind this interface.  The default is the bytecode
    VM ({!Compile} + {!Vm}); setting [AUTOTYPE_VM=off] (or [0]/[false])
    selects the tree-walker below, which serves as the parity oracle —
    the two produce byte-identical {!Trace.event} streams, outcomes,
    step counts and error messages (asserted by [test/test_vm.ml] and
    [make vm-diff]).

    Every condition evaluation (if/elif/while/ternary) emits a
    {!Trace.Branch} event, every [return] emits a {!Trace.Return} event
    with the abstracted value, and — when transformation harvesting is
    enabled — every assignment emits a {!Trace.Assign} event.  This
    mirrors the paper's byte-code instrumentation (Appendix D.2), which
    dumps the stack top before every jump and return instruction together
    with its file/line identifier.

    Sandboxing: a step budget and a call-depth cap bound every execution,
    replacing the paper's 30-second per-function watchdog and OS-level
    sandbox (Appendix D.3).  Exceeding a limit raises {!Sandbox_limit},
    which is deliberately not catchable by MiniScript [try/except].
    Shared runtime primitives (operators, builtins, methods, the tick
    accounting both engines charge identically) live in {!Rt}. *)

open Value

(* Public names re-exported from the shared runtime so existing callers
   (driver, ranking, serving, tests) keep compiling unchanged. *)
exception Sandbox_limit = Rt.Sandbox_limit
exception Cancelled = Rt.Cancelled

type config = Rt.config = {
  max_steps : int;
  max_call_depth : int;
}

let default_config = Rt.default_config

type cancel_token = Rt.cancel_token

let cancel_token = Rt.cancel_token
let cancel = Rt.cancel
let cancel_requested = Rt.cancel_requested

type ctx = Rt.ctx

let create_ctx = Rt.create_ctx
let known_exception_kinds = Rt.known_exception_kinds
let builtin_names = Rt.builtin_names

(* Everything else — tick accounting, operators, builtins, methods,
   control-flow signals, [ctx] record fields — resolves through this
   open; the evaluator below is written against those shared names. *)
open Rt

type frame = {
  scope : scope;
  global_names : (string, unit) Hashtbl.t;
}
(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)
(* ------------------------------------------------------------------ *)

let truncate_display = Rt.truncate_display

let rec eval ctx frame (e : Ast.expr) : Value.t =
  tick ctx;
  match e with
  | Ast.Int i -> Vint i
  | Ast.Float f -> Vfloat f
  | Ast.Str s -> Vstr s
  | Ast.Bool b -> Vbool b
  | Ast.None_lit -> Vnone
  | Ast.Var name -> lookup_var ctx frame name
  | Ast.Binop (Ast.And, a, b, _) ->
    let va = eval ctx frame a in
    if truthy va then eval ctx frame b else va
  | Ast.Binop (Ast.Or, a, b, _) ->
    let va = eval ctx frame a in
    if truthy va then va else eval ctx frame b
  | Ast.Binop (op, a, b, _) ->
    let va = eval ctx frame a in
    let vb = eval ctx frame b in
    eval_binop op va vb
  | Ast.Unop (Ast.Neg, e) ->
    (match eval ctx frame e with
     | Vint i -> Vint (-i)
     | Vfloat f -> Vfloat (-.f)
     | v ->
       raise_error "TypeError"
         (Printf.sprintf "bad operand type for unary -: '%s'" (type_name v)))
  | Ast.Unop (Ast.Not, e) -> Vbool (not (truthy (eval ctx frame e)))
  | Ast.Cond (c, a, b, pos) ->
    let taken = truthy (eval ctx frame c) in
    Trace.emit ctx.collector (Trace.Branch (Trace.site_of_pos pos, taken));
    if taken then eval ctx frame a else eval ctx frame b
  | Ast.Call (f, args, pos) ->
    let fv = eval ctx frame f in
    let argv = List.map (eval ctx frame) args in
    call_value ctx fv argv pos
  | Ast.Method (obj, name, args, pos) ->
    let ov = eval ctx frame obj in
    let argv = List.map (eval ctx frame) args in
    call_method ctx ov name argv pos
  | Ast.Attr (obj, name) ->
    (match eval ctx frame obj with
     | Vobj o ->
       (match Hashtbl.find_opt o.fields name with
        | Some v -> v
        | None ->
          raise_error "AttributeError"
            (Printf.sprintf "'%s' object has no attribute '%s'" o.ocls name))
     | Vbuiltin "re_module" -> Vbuiltin ("re." ^ name)
     | Vbuiltin "sys_module" when name = "argv" -> ctx.argv
     | v ->
       raise_error "AttributeError"
         (Printf.sprintf "'%s' object has no attribute '%s'" (type_name v) name))
  | Ast.Index (c, i, _) ->
    let cv = eval ctx frame c in
    let iv = eval ctx frame i in
    index_value cv iv
  | Ast.Slice (c, lo, hi, _) ->
    let cv = eval ctx frame c in
    let evi = function
      | None -> None
      | Some e ->
        (match eval ctx frame e with
         | Vint i -> Some i
         | Vnone -> None
         | v ->
           raise_error "TypeError"
             (Printf.sprintf "slice indices must be integers, not %s"
                (type_name v)))
    in
    slice_value cv (evi lo) (evi hi)
  | Ast.List_lit es -> Vlist (ref (List.map (eval ctx frame) es))
  | Ast.Tuple_lit es -> Vtuple (List.map (eval ctx frame) es)
  | Ast.Dict_lit kvs ->
    Vdict (ref (List.map (fun (k, v) -> (eval ctx frame k, eval ctx frame v)) kvs))

and lookup_var ctx frame name =
  match Hashtbl.find_opt frame.scope.vars name with
  | Some v -> v
  | None ->
    (match scope_lookup (module_scope frame.scope) name with
     | Some v -> v
     | None ->
       if List.mem name builtin_names then Vbuiltin name
       else if name = "re" then Vbuiltin "re_module"
       else if name = "sys" then Vbuiltin "sys_module"
       else if name = "argv" then ctx.argv
       else if List.mem name known_exception_kinds then
         Vbuiltin ("exc:" ^ name)
       else
         raise_error "NameError"
           (Printf.sprintf "name '%s' is not defined" name))

and call_value ctx fv args pos =
  match fv with
  | Vfun closure -> call_closure ctx closure None args
  | Vbound (self, closure) -> call_closure ctx closure (Some self) args
  | Vbuiltin name when String.length name > 3 && String.sub name 0 3 = "re." ->
    re_module_method (String.sub name 3 (String.length name - 3)) args
  | Vbuiltin name when String.length name > 4 && String.sub name 0 4 = "exc:" ->
    (* Exception constructor: ValueError("msg") builds an exception
       object that `raise` re-raises with its kind and message. *)
    let kind = String.sub name 4 (String.length name - 4) in
    let fields = Hashtbl.create 2 in
    let msg =
      match args with
      | [ v ] -> to_display_string v
      | [] -> ""
      | vs -> String.concat ", " (List.map to_display_string vs)
    in
    Hashtbl.replace fields "message" (Vstr msg);
    Vobj { ocls = kind; fields }
  | Vbuiltin name -> call_builtin ctx name args
  | Vclass cls -> instantiate ctx cls args pos
  | v ->
    raise_error "TypeError"
      (Printf.sprintf "'%s' object is not callable" (type_name v))

and call_closure ctx closure self args =
  ctx.depth <- ctx.depth + 1;
  if ctx.depth > ctx.config.max_call_depth then begin
    ctx.depth <- ctx.depth - 1;
    raise (Sandbox_limit "maximum call depth exceeded")
  end;
  let fn = closure.cl_func in
  let scope = scope_create ~parent:(module_scope closure.cl_scope) () in
  let frame = { scope; global_names = Hashtbl.create 4 } in
  let params =
    match self with
    | Some o ->
      (match fn.params with
       | self_name :: rest ->
         Hashtbl.replace scope.vars self_name (Vobj o);
         rest
       | [] ->
         raise_error "TypeError"
           (Printf.sprintf "method %s() takes no arguments" fn.fname))
    | None -> fn.params
  in
  let n_params = List.length params and n_args = List.length args in
  if n_args > n_params then
    raise_error "TypeError"
      (Printf.sprintf "%s() takes %d arguments (%d given)" fn.fname n_params
         n_args);
  List.iteri
    (fun i p ->
      if i < n_args then Hashtbl.replace scope.vars p (List.nth args i)
      else
        match List.assoc_opt p fn.defaults with
        | Some default -> Hashtbl.replace scope.vars p (eval ctx frame default)
        | None ->
          raise_error "TypeError"
            (Printf.sprintf "%s() missing required argument '%s'" fn.fname p))
    params;
  let result =
    try
      exec_block ctx frame fn.body;
      (* Implicit return: record it like byte-code RETURN_VALUE of None. *)
      Trace.emit ctx.collector
        (Trace.Return (Trace.site_of_pos fn.fpos, Trace.Rvoid));
      Vnone
    with
    | Return_signal v -> v
    | e ->
      ctx.depth <- ctx.depth - 1;
      raise e
  in
  ctx.depth <- ctx.depth - 1;
  result

and instantiate ctx cls args pos =
  let fields = Hashtbl.create 8 in
  let o = { ocls = cls.rt_cname; fields } in
  (match List.assoc_opt "__init__" cls.rt_methods with
   | Some init -> ignore (call_closure ctx init (Some o) args)
   | None ->
     if args <> [] then
       raise_error "TypeError"
         (Printf.sprintf "%s() takes no arguments" cls.rt_cname));
  ignore pos;
  (* Bind methods lazily through call_method; attach the class. *)
  Hashtbl.replace fields "__class__" (Vclass cls);
  Vobj o

and call_method ctx ov name args pos =
  match ov with
  | Vstr s -> str_method s name args
  | Vlist l -> list_method l name args
  | Vdict d -> dict_method d name args
  | Vobj ({ ocls = "file"; _ } as o) -> file_method o name args
  | Vobj o ->
    (match Hashtbl.find_opt o.fields "__class__" with
     | Some (Vclass cls) ->
       (match List.assoc_opt name cls.rt_methods with
        | Some m -> call_closure ctx m (Some o) args
        | None ->
          (* A field holding a callable also works. *)
          (match Hashtbl.find_opt o.fields name with
           | Some fv -> call_value ctx fv args pos
           | None ->
             raise_error "AttributeError"
               (Printf.sprintf "'%s' object has no attribute '%s'" o.ocls name)))
     | _ ->
       raise_error "AttributeError"
         (Printf.sprintf "'%s' object has no attribute '%s'" o.ocls name))
  | Vbuiltin "re_module" -> re_module_method name args
  | Vbuiltin "sys_module" when name = "exit" -> raise_error "SystemExit" "exit"
  | v ->
    raise_error "AttributeError"
      (Printf.sprintf "'%s' object has no attribute '%s'" (type_name v) name)

and assign ctx frame (tgt : Ast.target) (v : Value.t) (pos : Ast.pos) =
  match tgt with
  | Ast.Tvar name ->
    if ctx.collector.Trace.record_assigns then
      Trace.emit ctx.collector
        (Trace.Assign
           (Trace.site_of_pos pos, name, truncate_display (to_display_string v)));
    if Hashtbl.mem frame.global_names name then
      Hashtbl.replace (module_scope frame.scope).vars name v
    else Hashtbl.replace frame.scope.vars name v
  | Ast.Tattr (obj_e, name) ->
    (match eval ctx frame obj_e with
     | Vobj o ->
       if ctx.collector.Trace.record_assigns then
         Trace.emit ctx.collector
           (Trace.Assign
              ( Trace.site_of_pos pos,
                "self." ^ name,
                truncate_display (to_display_string v) ));
       Hashtbl.replace o.fields name v
     | v' ->
       raise_error "AttributeError"
         (Printf.sprintf "cannot set attribute on '%s'" (type_name v')))
  | Ast.Tindex (c_e, i_e) ->
    let cv = eval ctx frame c_e in
    let iv = eval ctx frame i_e in
    (match cv with
     | Vlist l ->
       (match iv with
        | Vint i ->
          let items = !l in
          let i = normalize_index (List.length items) i in
          if i < 0 || i >= List.length items then
            raise_error "IndexError" "list assignment index out of range"
          else l := List.mapi (fun j x -> if j = i then v else x) items
        | _ -> raise_error "TypeError" "list indices must be integers")
     | Vdict d ->
       d :=
         (match List.find_opt (fun (k, _) -> equal iv k) !d with
          | Some _ ->
            List.map (fun (k, v') -> if equal iv k then (k, v) else (k, v')) !d
          | None -> !d @ [ (iv, v) ])
     | _ ->
       raise_error "TypeError"
         (Printf.sprintf "'%s' object does not support item assignment"
            (type_name cv)))
  | Ast.Ttuple tgts ->
    let values =
      match v with
      | Vtuple vs -> vs
      | Vlist l -> !l
      | _ -> raise_error "TypeError" "cannot unpack non-sequence"
    in
    if List.length values <> List.length tgts then
      raise_error "ValueError" "unpacking mismatch";
    List.iter2 (fun t v -> assign ctx frame t v pos) tgts values

and read_target ctx frame (tgt : Ast.target) pos : Value.t =
  match tgt with
  | Ast.Tvar name -> lookup_var ctx frame name
  | Ast.Tattr (e, n) -> eval ctx frame (Ast.Attr (e, n))
  | Ast.Tindex (c, i) -> eval ctx frame (Ast.Index (c, i, pos))
  | Ast.Ttuple _ -> raise_error "TypeError" "invalid augmented assignment target"

and exec_block ctx frame (b : Ast.block) = List.iter (exec_stmt ctx frame) b

and exec_stmt ctx frame (s : Ast.stmt) =
  tick ctx;
  match s with
  | Ast.Pass -> ()
  | Ast.Expr_stmt (e, _) -> ignore (eval ctx frame e)
  | Ast.Assign (tgt, e, pos) ->
    let v = eval ctx frame e in
    assign ctx frame tgt v pos
  | Ast.Aug_assign (tgt, op, e, pos) ->
    let old_v = read_target ctx frame tgt pos in
    let v = eval_binop op old_v (eval ctx frame e) in
    assign ctx frame tgt v pos
  | Ast.If (arms, els) ->
    let rec go = function
      | [] -> (match els with Some b -> exec_block ctx frame b | None -> ())
      | (cond, pos, body) :: rest ->
        let taken = truthy (eval ctx frame cond) in
        Trace.emit ctx.collector (Trace.Branch (Trace.site_of_pos pos, taken));
        if taken then exec_block ctx frame body else go rest
    in
    go arms
  | Ast.While (cond, pos, body) ->
    let rec loop () =
      let taken = truthy (eval ctx frame cond) in
      Trace.emit ctx.collector (Trace.Branch (Trace.site_of_pos pos, taken));
      if taken then begin
        (try exec_block ctx frame body with Continue_signal -> ());
        loop ()
      end
    in
    (try loop () with Break_signal -> ())
  | Ast.For (tgt, iter_e, body, pos) ->
    let items = iterate_value (eval ctx frame iter_e) in
    (try
       List.iter
         (fun item ->
           tick ctx;
           assign ctx frame tgt item pos;
           try exec_block ctx frame body with Continue_signal -> ())
         items
     with Break_signal -> ())
  | Ast.Return (e_opt, pos) ->
    let v = match e_opt with Some e -> eval ctx frame e | None -> Vnone in
    Trace.emit ctx.collector
      (Trace.Return (Trace.site_of_pos pos, Trace.abstract_value v));
    raise (Return_signal v)
  | Ast.Raise (e_opt, _) ->
    (match e_opt with
     | None -> raise_error "Exception" "re-raise"
     | Some e ->
       (match eval ctx frame e with
        | Vstr msg -> raise_error "Exception" msg
        | Vobj o ->
          let msg =
            match Hashtbl.find_opt o.fields "message" with
            | Some (Vstr m) -> m
            | _ -> "user exception object"
          in
          raise_error o.ocls msg
        | Vbuiltin name
          when String.length name > 4 && String.sub name 0 4 = "exc:" ->
          raise_error (String.sub name 4 (String.length name - 4)) ""
        | v -> raise_error "Exception" (to_display_string v)))
  | Ast.Try (body, handlers, fin) ->
    let run_finally () =
      match fin with Some b -> exec_block ctx frame b | None -> ()
    in
    (try
       exec_block ctx frame body;
       run_finally ()
     with
     | Runtime_error (kind, msg) as exn ->
       let matching =
         List.find_opt
           (fun h ->
             match h.Ast.h_filter with
             | None -> true
             | Some f ->
               if List.mem f known_exception_kinds then
                 f = "Exception" || f = kind
               else true (* py2-style "except e:" catch-all binder *))
           handlers
       in
       (match matching with
        | Some h ->
          (match h.Ast.h_bind with
           | Some b -> Hashtbl.replace frame.scope.vars b (Vstr msg)
           | None ->
             (match h.Ast.h_filter with
              | Some f when not (List.mem f known_exception_kinds) ->
                Hashtbl.replace frame.scope.vars f (Vstr msg)
              | _ -> ()));
          (try exec_block ctx frame h.Ast.h_body with e -> run_finally (); raise e);
          run_finally ()
        | None -> run_finally (); raise exn)
     | (Sandbox_limit _ | Cancelled _ | Return_signal _ | Break_signal
       | Continue_signal) as e ->
       run_finally ();
       raise e)
  | Ast.Break _ -> raise Break_signal
  | Ast.Continue _ -> raise Continue_signal
  | Ast.Func_def fn ->
    let closure = { cl_func = fn; cl_scope = frame.scope } in
    Hashtbl.replace frame.scope.vars fn.fname (Vfun closure)
  | Ast.Class_def c ->
    let methods =
      List.map
        (fun m -> (m.Ast.fname, { cl_func = m; cl_scope = frame.scope }))
        c.methods
    in
    Hashtbl.replace frame.scope.vars c.cname
      (Vclass { rt_cname = c.cname; rt_methods = methods })
  | Ast.Global names ->
    List.iter (fun n -> Hashtbl.replace frame.global_names n ()) names

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Finished of Value.t
  | Errored of string * string  (** exception kind, message *)
  | Hit_limit of string
  | Deadline_exceeded of string

type run_result = {
  outcome : outcome;
  trace : Trace.t;
  steps_used : int;
  printed : string list;
}

(* Per-execution telemetry (no-ops until Telemetry.enable): updated once
   per run_traced, never inside the evaluation loop. *)
let m_runs = Telemetry.counter "interp.runs"
let m_steps = Telemetry.counter "interp.steps"
let m_branch_events = Telemetry.counter "interp.branch_events"
let m_return_events = Telemetry.counter "interp.return_events"
let m_fuel_exhausted = Telemetry.counter "interp.fuel_exhausted"
let m_limit_hits = Telemetry.counter "interp.limit_hits"
let m_errored = Telemetry.counter "interp.errored_runs"
let m_deadline_hits = Telemetry.counter "interp.deadline_hits"
let h_steps = Telemetry.histogram "interp.steps_per_run"

let module_frame scope = { scope; global_names = Hashtbl.create 1 }

(* ------------------------------------------------------------------ *)
(* Engine selection                                                    *)
(* ------------------------------------------------------------------ *)

(* The bytecode VM is the default engine; AUTOTYPE_VM=off selects the
   tree-walker above as a parity oracle.  An atomic so tests can flip
   engines at runtime and concurrent tracing domains read it safely. *)
let vm_flag =
  Atomic.make
    (match Sys.getenv_opt "AUTOTYPE_VM" with
     | Some ("off" | "0" | "false") -> false
     | _ -> true)

let set_vm_enabled enabled = Atomic.set vm_flag enabled
let vm_enabled () = Atomic.get vm_flag

(** Execute a whole parsed file into [scope].  Used both to load
    definitions and to run script-level snippets. *)
let exec_program ctx scope (p : Ast.program) =
  if vm_enabled () then Vm.exec_program ctx scope p
  else exec_block ctx (module_frame scope) p.Ast.prog_body

(** Load a module: execute all top-level statements with the given
    budget, collecting definitions into a fresh scope.  Top-level
    script code that fails does not prevent the definitions already
    executed from being used (mirroring how the paper loads whatever
    compiles). *)
let load_module ?(config = default_config) (programs : Ast.program list) :
    scope * (string * string) list =
  let scope = scope_create () in
  let errors = ref [] in
  List.iter
    (fun p ->
      let collector = Trace.create_collector () in
      let ctx = create_ctx ~config collector in
      try exec_program ctx scope p with
      | Runtime_error (kind, msg) ->
        errors := (p.Ast.prog_file, kind ^ ": " ^ msg) :: !errors
      | Sandbox_limit msg -> errors := (p.Ast.prog_file, "sandbox: " ^ msg) :: !errors
      | Return_signal _ -> errors := (p.Ast.prog_file, "return outside function") :: !errors
      | Break_signal | Continue_signal ->
        errors := (p.Ast.prog_file, "break/continue outside loop") :: !errors)
    programs;
  (scope, List.rev !errors)

(** Run a zero-argument thunk under full tracing and sandbox limits. *)
let run_traced ?(config = default_config) ?(record_assigns = false)
    ?(argv = []) ?(stdin_line = "") ?(virtual_files = []) ?cancel ?deadline_ns
    (f : ctx -> Value.t) : run_result =
  let collector = Trace.create_collector ~record_assigns () in
  let ctx =
    create_ctx ~config ~argv ~stdin_line ~virtual_files ?cancel ?deadline_ns
      collector
  in
  Faults.delay_run ();
  let expired_on_entry =
    match deadline_ns with
    | Some d -> Telemetry.now_ns () >= d
    | None -> false
  in
  let outcome =
    if Faults.should_kill () then begin
      Trace.emit collector (Trace.Exception "FaultInjected");
      Errored ("FaultInjected", "interpreter run killed by fault injection")
    end
    else if expired_on_entry then
      (* The request's budget was consumed before this run started (a
         stalled predecessor, an injected delay): refuse to start. *)
      Deadline_exceeded deadline_message
    else
      try Finished (f ctx)
      with
      | Runtime_error (kind, msg) ->
        Trace.emit collector (Trace.Exception kind);
        Errored (kind, msg)
      | Sandbox_limit msg -> Hit_limit msg
      | Cancelled msg -> Deadline_exceeded msg
      | Return_signal _ -> Errored ("SyntaxError", "return outside function")
      | Break_signal | Continue_signal ->
        Errored ("SyntaxError", "break outside loop")
      | Stack_overflow -> Hit_limit "native stack overflow"
  in
  if Telemetry.enabled () then begin
    Telemetry.incr m_runs;
    Telemetry.incr ~by:ctx.steps m_steps;
    Telemetry.incr ~by:collector.Trace.n_branches m_branch_events;
    Telemetry.incr ~by:collector.Trace.n_returns m_return_events;
    Telemetry.observe h_steps (float_of_int ctx.steps);
    (match outcome with
     | Hit_limit msg ->
       Telemetry.incr m_limit_hits;
       if msg = "step budget exhausted" then Telemetry.incr m_fuel_exhausted
     | Deadline_exceeded _ ->
       Telemetry.incr m_deadline_hits;
       Telemetry.Flight.record ~kind:"deadline"
         ~value:(float_of_int ctx.steps) "interp.run"
     | Errored _ -> Telemetry.incr m_errored
     | Finished _ -> ())
  end;
  Rt.retire_ctx ctx;
  {
    outcome;
    trace = Trace.finish collector;
    steps_used = ctx.steps;
    printed = List.rev ctx.printed;
  }

(** Call a callable value with the given MiniScript arguments. *)
let call_callable ctx callable args =
  if vm_enabled () then Vm.call_callable ctx callable args
  else call_value ctx callable args { Ast.file = "<call>"; line = 0 }

(* Public method-call entry routes through the selected engine; the
   recursive [call_method] above remains the tree-walker's own. *)
let tree_call_method = call_method

let call_method ctx ov name args pos =
  if vm_enabled () then Vm.call_method ctx ov name args pos
  else tree_call_method ctx ov name args pos
