(** Tree-walking interpreter for MiniScript with execution tracing.

    Every condition evaluation (if/elif/while/ternary) emits a
    {!Trace.Branch} event, every [return] emits a {!Trace.Return} event
    with the abstracted value, and — when transformation harvesting is
    enabled — every assignment emits a {!Trace.Assign} event.  This
    mirrors the paper's byte-code instrumentation (Appendix D.2), which
    dumps the stack top before every jump and return instruction together
    with its file/line identifier.

    Sandboxing: a step budget and a call-depth cap bound every execution,
    replacing the paper's 30-second per-function watchdog and OS-level
    sandbox (Appendix D.3).  Exceeding a limit raises {!Sandbox_limit},
    which is deliberately not catchable by MiniScript [try/except]. *)

open Value

exception Sandbox_limit of string
exception Cancelled of string

type config = {
  max_steps : int;
  max_call_depth : int;
}

let default_config = { max_steps = 400_000; max_call_depth = 64 }

type cancel_token = bool Atomic.t

let cancel_token () : cancel_token = Atomic.make false
let cancel (tok : cancel_token) = Atomic.set tok true
let cancel_requested (tok : cancel_token) = Atomic.get tok

let deadline_message = "wall-clock deadline exceeded"

type ctx = {
  collector : Trace.collector;
  config : config;
  mutable steps : int;
  mutable depth : int;
  cancel : cancel_token option;
  deadline_ns : int64 option;
      (** absolute CLOCK_MONOTONIC ns (same clock as {!Telemetry.now_ns}) *)
  argv : Value.t;
  stdin_line : string;
  virtual_files : (string * string) list;
      (** the virtual filesystem backing [open()]; invocation variant 6 *)
  mutable printed : string list;  (** reversed capture of print() output *)
}

let create_ctx ?(config = default_config) ?(argv = []) ?(stdin_line = "")
    ?(virtual_files = []) ?cancel ?deadline_ns collector =
  {
    collector;
    config;
    steps = 0;
    depth = 0;
    cancel;
    deadline_ns;
    argv = Vlist (ref (List.map (fun s -> Vstr s) argv));
    stdin_line;
    virtual_files;
    printed = [];
  }

(* Control-flow exceptions. *)
exception Return_signal of Value.t
exception Break_signal
exception Continue_signal

type frame = {
  scope : scope;
  global_names : (string, unit) Hashtbl.t;
}

(* Cancellation rides the existing step-accounting path: the token is a
   single atomic load per step, and the wall-clock deadline is probed
   only every 256 steps so a run never pays one clock syscall per
   interpreted statement. *)
let tick ctx =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.config.max_steps then
    raise (Sandbox_limit "step budget exhausted");
  (match ctx.cancel with
   | Some tok when Atomic.get tok -> raise (Cancelled "run cancelled")
   | _ -> ());
  match ctx.deadline_ns with
  | Some d when ctx.steps land 255 = 0 && Telemetry.now_ns () >= d ->
    raise (Cancelled deadline_message)
  | _ -> ()

let known_exception_kinds =
  [ "ValueError"; "TypeError"; "IndexError"; "KeyError"; "AttributeError";
    "ZeroDivisionError"; "AssertionError"; "NameError"; "IOError";
    "Exception"; "RuntimeError"; "StopIteration"; "OverflowError" ]

(* ------------------------------------------------------------------ *)
(* Arithmetic and operators                                            *)
(* ------------------------------------------------------------------ *)

let num_binop op a b =
  let float_op x y =
    match op with
    | Ast.Add -> Vfloat (x +. y)
    | Ast.Sub -> Vfloat (x -. y)
    | Ast.Mul -> Vfloat (x *. y)
    | Ast.Div ->
      if y = 0.0 then raise_error "ZeroDivisionError" "float division by zero"
      else Vfloat (x /. y)
    | Ast.Floordiv ->
      if y = 0.0 then raise_error "ZeroDivisionError" "float floor division by zero"
      else Vfloat (floor (x /. y))
    | Ast.Mod ->
      if y = 0.0 then raise_error "ZeroDivisionError" "float modulo by zero"
      else
        let r = Float.rem x y in
        Vfloat (if r <> 0.0 && (r < 0.0) <> (y < 0.0) then r +. y else r)
    | Ast.Pow -> Vfloat (Float.pow x y)
    | _ -> assert false
  in
  match (a, b) with
  | Vint x, Vint y ->
    (match op with
     | Ast.Add -> Vint (x + y)
     | Ast.Sub -> Vint (x - y)
     | Ast.Mul -> Vint (x * y)
     | Ast.Div ->
       if y = 0 then raise_error "ZeroDivisionError" "division by zero"
       else Vfloat (float_of_int x /. float_of_int y)
     | Ast.Floordiv ->
       if y = 0 then raise_error "ZeroDivisionError" "integer division by zero"
       else
         (* Python floor division *)
         let q = x / y and r = x mod y in
         Vint (if r <> 0 && (r < 0) <> (y < 0) then q - 1 else q)
     | Ast.Mod ->
       if y = 0 then raise_error "ZeroDivisionError" "integer modulo by zero"
       else
         let r = x mod y in
         Vint (if r <> 0 && (r < 0) <> (y < 0) then r + y else r)
     | Ast.Pow ->
       if y < 0 then float_op (float_of_int x) (float_of_int y)
       else
         let rec pow acc b e = if e = 0 then acc else pow (acc * b) b (e - 1) in
         Vint (pow 1 x y)
     | _ -> assert false)
  | (Vint _ | Vfloat _), (Vint _ | Vfloat _) ->
    let f = function Vint i -> float_of_int i | Vfloat f -> f | _ -> 0.0 in
    float_op (f a) (f b)
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "unsupported operand types for %s: %s and %s"
         (Ast.binop_to_string op) (type_name a) (type_name b))

let eval_binop op a b =
  match op with
  | Ast.Add ->
    (match (a, b) with
     | Vstr x, Vstr y -> Vstr (x ^ y)
     | Vlist x, Vlist y -> Vlist (ref (!x @ !y))
     | Vtuple x, Vtuple y -> Vtuple (x @ y)
     | _ -> num_binop op a b)
  | Ast.Mul ->
    (match (a, b) with
     | Vstr s, Vint n | Vint n, Vstr s ->
       if n <= 0 then Vstr ""
       else begin
         if n * String.length s > 1_000_000 then
           raise (Sandbox_limit "string repetition too large");
         let buf = Buffer.create (n * String.length s) in
         for _ = 1 to n do Buffer.add_string buf s done;
         Vstr (Buffer.contents buf)
       end
     | Vlist l, Vint n | Vint n, Vlist l ->
       if n <= 0 then Vlist (ref [])
       else begin
         if n * List.length !l > 100_000 then
           raise (Sandbox_limit "list repetition too large");
         let rec rep acc k = if k = 0 then acc else rep (!l @ acc) (k - 1) in
         Vlist (ref (rep [] n))
       end
     | _ -> num_binop op a b)
  | Ast.Sub | Ast.Div | Ast.Floordiv | Ast.Mod | Ast.Pow -> num_binop op a b
  | Ast.Bxor | Ast.Band | Ast.Bor | Ast.Shl | Ast.Shr ->
    (match (a, b) with
     | Vint x, Vint y ->
       Vint
         (match op with
          | Ast.Bxor -> x lxor y
          | Ast.Band -> x land y
          | Ast.Bor -> x lor y
          | Ast.Shl -> if y < 0 || y > 62 then 0 else x lsl y
          | Ast.Shr -> if y < 0 || y > 62 then 0 else x asr y
          | _ -> assert false)
     | _ ->
       raise_error "TypeError"
         (Printf.sprintf "unsupported operand types for %s: %s and %s"
            (Ast.binop_to_string op) (type_name a) (type_name b)))
  | Ast.Eq -> Vbool (equal a b)
  | Ast.Neq -> Vbool (not (equal a b))
  | Ast.Lt -> Vbool (compare_values a b < 0)
  | Ast.Le -> Vbool (compare_values a b <= 0)
  | Ast.Gt -> Vbool (compare_values a b > 0)
  | Ast.Ge -> Vbool (compare_values a b >= 0)
  | Ast.In | Ast.Not_in ->
    let mem =
      match b with
      | Vstr hay ->
        (match a with
         | Vstr needle ->
           let nl = String.length needle and hl = String.length hay in
           nl = 0
           || (let rec go i =
                 i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
               in
               go 0)
         | _ ->
           raise_error "TypeError" "'in <string>' requires string operand")
      | Vlist l -> List.exists (equal a) !l
      | Vtuple t -> List.exists (equal a) t
      | Vdict d -> List.exists (fun (k, _) -> equal a k) !d
      | _ ->
        raise_error "TypeError"
          (Printf.sprintf "argument of type %s is not iterable" (type_name b))
    in
    Vbool (if op = Ast.In then mem else not mem)
  | Ast.And | Ast.Or -> assert false  (* short-circuit, handled in eval *)

(* ------------------------------------------------------------------ *)
(* Indexing, slicing, iteration                                        *)
(* ------------------------------------------------------------------ *)

let normalize_index len i = if i < 0 then len + i else i

let index_value container idx =
  match (container, idx) with
  | Vstr s, Vint i ->
    let i = normalize_index (String.length s) i in
    if i < 0 || i >= String.length s then
      raise_error "IndexError" "string index out of range"
    else Vstr (String.make 1 s.[i])
  | Vlist l, Vint i ->
    let items = !l in
    let i = normalize_index (List.length items) i in
    (match List.nth_opt items i with
     | Some v when i >= 0 -> v
     | _ -> raise_error "IndexError" "list index out of range")
  | Vtuple t, Vint i ->
    let i = normalize_index (List.length t) i in
    (match List.nth_opt t i with
     | Some v when i >= 0 -> v
     | _ -> raise_error "IndexError" "tuple index out of range")
  | Vdict d, k ->
    (match List.find_opt (fun (k', _) -> equal k k') !d with
     | Some (_, v) -> v
     | None -> raise_error "KeyError" (to_display_string k))
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "%s indices must be integers" (type_name container))

let slice_value container lo hi =
  let clamp len v = if v < 0 then max 0 (len + v) else min v len in
  match container with
  | Vstr s ->
    let len = String.length s in
    let lo = clamp len (Option.value lo ~default:0) in
    let hi = clamp len (Option.value hi ~default:len) in
    if hi <= lo then Vstr "" else Vstr (String.sub s lo (hi - lo))
  | Vlist l ->
    let items = !l in
    let len = List.length items in
    let lo = clamp len (Option.value lo ~default:0) in
    let hi = clamp len (Option.value hi ~default:len) in
    Vlist (ref (List.filteri (fun i _ -> i >= lo && i < hi) items))
  | Vtuple t ->
    let len = List.length t in
    let lo = clamp len (Option.value lo ~default:0) in
    let hi = clamp len (Option.value hi ~default:len) in
    Vtuple (List.filteri (fun i _ -> i >= lo && i < hi) t)
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "%s is not sliceable" (type_name container))

let iterate_value v : Value.t list =
  match v with
  | Vstr s -> List.init (String.length s) (fun i -> Vstr (String.make 1 s.[i]))
  | Vlist l -> !l
  | Vtuple t -> t
  | Vdict d -> List.map fst !d
  | _ ->
    raise_error "TypeError"
      (Printf.sprintf "%s object is not iterable" (type_name v))

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let int_of_string_strict ?(base = 10) s =
  let s = String.trim s in
  if s = "" then raise_error "ValueError" "invalid literal for int()";
  let sign, digits =
    if s.[0] = '-' then (-1, String.sub s 1 (String.length s - 1))
    else if s.[0] = '+' then (1, String.sub s 1 (String.length s - 1))
    else (1, s)
  in
  if digits = "" then raise_error "ValueError" "invalid literal for int()";
  let digit_val c =
    if c >= '0' && c <= '9' then Char.code c - Char.code '0'
    else if c >= 'a' && c <= 'z' then Char.code c - Char.code 'a' + 10
    else if c >= 'A' && c <= 'Z' then Char.code c - Char.code 'A' + 10
    else 99
  in
  let acc = ref 0 in
  String.iter
    (fun c ->
      let d = digit_val c in
      if d >= base then
        raise_error "ValueError"
          (Printf.sprintf "invalid literal for int() with base %d: '%s'" base s);
      acc := (!acc * base) + d)
    digits;
  sign * !acc

let float_of_string_strict s =
  let s = String.trim s in
  let valid =
    s <> ""
    && (let seen_digit = ref false and seen_dot = ref false
        and seen_e = ref false and ok = ref true in
        String.iteri
          (fun i c ->
            match c with
            | '0' .. '9' -> seen_digit := true
            | '-' | '+' ->
              if not
                   (i = 0
                   || (i > 0 && (s.[i - 1] = 'e' || s.[i - 1] = 'E')))
              then ok := false
            | '.' ->
              if !seen_dot || !seen_e then ok := false else seen_dot := true
            | 'e' | 'E' ->
              if !seen_e || not !seen_digit then ok := false
              else seen_e := true
            | _ -> ok := false)
          s;
        !ok && !seen_digit)
  in
  if not valid then
    raise_error "ValueError"
      (Printf.sprintf "could not convert string to float: '%s'" s)
  else
    match float_of_string_opt s with
    | Some f -> f
    | None ->
      raise_error "ValueError"
        (Printf.sprintf "could not convert string to float: '%s'" s)

(* ------------------------------------------------------------------ *)
(* String / list / dict methods                                        *)
(* ------------------------------------------------------------------ *)

(* The string primitives live in {!Strops} so the interpreter-free fast
   path (compiled absint summaries) shares their exact semantics. *)
let strip_chars = Strops.strip_chars

let split_on_string sep s =
  if sep = "" then raise_error "ValueError" "empty separator"
  else Strops.split_on_string sep s

let split_whitespace = Strops.split_whitespace
let find_substring = Strops.find_substring
let replace_substring = Strops.replace_substring
let string_forall = Strops.string_forall

let str_method s name args =
  let arg_str i =
    match List.nth_opt args i with
    | Some (Vstr x) -> x
    | Some v ->
      raise_error "TypeError"
        (Printf.sprintf "method %s expected str, got %s" name (type_name v))
    | None -> raise_error "TypeError" (Printf.sprintf "method %s: missing argument" name)
  in
  match (name, args) with
  | "upper", [] -> Vstr (String.uppercase_ascii s)
  | "lower", [] -> Vstr (String.lowercase_ascii s)
  | "strip", [] -> Vstr (strip_chars s None ~left:true ~right:true)
  | "strip", [ Vstr cs ] -> Vstr (strip_chars s (Some cs) ~left:true ~right:true)
  | "lstrip", [] -> Vstr (strip_chars s None ~left:true ~right:false)
  | "lstrip", [ Vstr cs ] -> Vstr (strip_chars s (Some cs) ~left:true ~right:false)
  | "rstrip", [] -> Vstr (strip_chars s None ~left:false ~right:true)
  | "rstrip", [ Vstr cs ] -> Vstr (strip_chars s (Some cs) ~left:false ~right:true)
  | "split", [] -> Vlist (ref (List.map (fun x -> Vstr x) (split_whitespace s)))
  | "split", [ Vstr sep ] ->
    Vlist (ref (List.map (fun x -> Vstr x) (split_on_string sep s)))
  | "replace", [ Vstr o; Vstr n ] -> Vstr (replace_substring s o n)
  | "startswith", [ Vstr p ] ->
    Vbool (String.length s >= String.length p
           && String.sub s 0 (String.length p) = p)
  | "endswith", [ Vstr p ] ->
    let pl = String.length p and sl = String.length s in
    Vbool (sl >= pl && String.sub s (sl - pl) pl = p)
  | "find", [ Vstr needle ] -> Vint (find_substring s needle)
  | "find", [ Vstr needle; Vint from ] -> Vint (find_substring ~from s needle)
  | "rfind", [ Vstr needle ] ->
    let nl = String.length needle in
    let rec go i best =
      if i + nl > String.length s then best
      else if String.sub s i nl = needle then go (i + 1) i
      else go (i + 1) best
    in
    Vint (go 0 (-1))
  | "index", [ Vstr needle ] ->
    let i = find_substring s needle in
    if i < 0 then raise_error "ValueError" "substring not found" else Vint i
  | "count", [ Vstr needle ] ->
    if needle = "" then Vint (String.length s + 1)
    else
      let nl = String.length needle in
      let rec go i acc =
        let j = find_substring ~from:i s needle in
        if j < 0 then acc else go (j + nl) (acc + 1)
      in
      Vint (go 0 0)
  | "join", [ Vlist items ] ->
    let parts =
      List.map
        (function
          | Vstr x -> x
          | v ->
            raise_error "TypeError"
              (Printf.sprintf "join: expected str, got %s" (type_name v)))
        !items
    in
    Vstr (String.concat s parts)
  | "isdigit", [] -> Vbool (string_forall (fun c -> c >= '0' && c <= '9') s)
  | "isalpha", [] ->
    Vbool (string_forall (fun c -> (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) s)
  | "isalnum", [] ->
    Vbool
      (string_forall
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9'))
         s)
  | "isupper", [] ->
    Vbool
      (String.exists (fun c -> c >= 'A' && c <= 'Z') s
       && not (String.exists (fun c -> c >= 'a' && c <= 'z') s))
  | "islower", [] ->
    Vbool
      (String.exists (fun c -> c >= 'a' && c <= 'z') s
       && not (String.exists (fun c -> c >= 'A' && c <= 'Z') s))
  | "isspace", [] ->
    Vbool (string_forall (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s)
  | "zfill", [ Vint w ] ->
    let l = String.length s in
    if l >= w then Vstr s else Vstr (String.make (w - l) '0' ^ s)
  | "title", [] ->
    let b = Bytes.of_string (String.lowercase_ascii s) in
    let prev_alpha = ref false in
    Bytes.iteri
      (fun i c ->
        let alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
        if alpha && not !prev_alpha then
          Bytes.set b i (Char.uppercase_ascii c);
        prev_alpha := alpha)
      b;
    Vstr (Bytes.to_string b)
  | "format", _ ->
    (* Sequential {} substitution, enough for corpus diagnostics. *)
    let parts = split_on_string "{}" s in
    let rec weave parts args acc =
      match (parts, args) with
      | [ last ], _ -> List.rev (last :: acc)
      | p :: rest, a :: args' ->
        weave rest args' (to_display_string a :: p :: acc)
      | p :: rest, [] -> weave rest [] ("" :: p :: acc)
      | [], _ -> List.rev acc
    in
    Vstr (String.concat "" (weave parts args []))
  | ("split" | "replace" | "startswith" | "endswith" | "join"), _ ->
    ignore (arg_str 0);
    raise_error "TypeError" (Printf.sprintf "bad arguments to str.%s" name)
  | _ ->
    raise_error "AttributeError"
      (Printf.sprintf "'str' object has no attribute '%s'" name)

let list_method l name args =
  match (name, args) with
  | "append", [ v ] -> l := !l @ [ v ]; Vnone
  | "extend", [ Vlist other ] -> l := !l @ !other; Vnone
  | "insert", [ Vint i; v ] ->
    let items = !l in
    let i = max 0 (min (List.length items) (normalize_index (List.length items) i)) in
    l := List.filteri (fun j _ -> j < i) items @ [ v ]
         @ List.filteri (fun j _ -> j >= i) items;
    Vnone
  | "pop", [] ->
    (match List.rev !l with
     | [] -> raise_error "IndexError" "pop from empty list"
     | last :: rest -> l := List.rev rest; last)
  | "pop", [ Vint i ] ->
    let items = !l in
    let i = normalize_index (List.length items) i in
    (match List.nth_opt items i with
     | Some v when i >= 0 ->
       l := List.filteri (fun j _ -> j <> i) items;
       v
     | _ -> raise_error "IndexError" "pop index out of range")
  | "index", [ v ] ->
    let rec go i = function
      | [] -> raise_error "ValueError" "value not in list"
      | x :: _ when equal x v -> Vint i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 !l
  | "count", [ v ] -> Vint (List.length (List.filter (equal v) !l))
  | "reverse", [] -> l := List.rev !l; Vnone
  | "sort", [] -> l := List.sort compare_values !l; Vnone
  | "remove", [ v ] ->
    let rec go = function
      | [] -> raise_error "ValueError" "value not in list"
      | x :: tl when equal x v -> tl
      | x :: tl -> x :: go tl
    in
    l := go !l;
    Vnone
  | _ ->
    raise_error "AttributeError"
      (Printf.sprintf "'list' object has no attribute '%s'" name)

let dict_method d name args =
  match (name, args) with
  | "get", [ k ] ->
    (match List.find_opt (fun (k', _) -> equal k k') !d with
     | Some (_, v) -> v
     | None -> Vnone)
  | "get", [ k; default ] ->
    (match List.find_opt (fun (k', _) -> equal k k') !d with
     | Some (_, v) -> v
     | None -> default)
  | "keys", [] -> Vlist (ref (List.map fst !d))
  | "values", [] -> Vlist (ref (List.map snd !d))
  | "items", [] -> Vlist (ref (List.map (fun (k, v) -> Vtuple [ k; v ]) !d))
  | "has_key", [ k ] -> Vbool (List.exists (fun (k', _) -> equal k k') !d)
  | "update", [ Vdict other ] ->
    List.iter
      (fun (k, v) ->
        d := (k, v) :: List.filter (fun (k', _) -> not (equal k k')) !d)
      !other;
    Vnone
  | "pop", [ k ] ->
    (match List.find_opt (fun (k', _) -> equal k k') !d with
     | Some (_, v) ->
       d := List.filter (fun (k', _) -> not (equal k k')) !d;
       v
     | None -> raise_error "KeyError" (to_display_string k))
  | _ ->
    raise_error "AttributeError"
      (Printf.sprintf "'dict' object has no attribute '%s'" name)

(* ------------------------------------------------------------------ *)
(* Regex bridge (the "re" module)                                      *)
(* ------------------------------------------------------------------ *)

(* Domain-local so concurrent interpreter runs (lib/exec tracing pool)
   never contend on — or corrupt — a shared table; each domain compiles
   a pattern at most once. *)
let compiled_regex_cache : (string, Regexlite.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let compile_regex pat =
  let cache = Domain.DLS.get compiled_regex_cache in
  match Hashtbl.find_opt cache pat with
  | Some re -> Some re
  | None ->
    (match Regexlite.parse pat with
     | re ->
       Hashtbl.add cache pat re;
       Some re
     | exception Regexlite.Parse_error _ -> None)

let re_module_method name args =
  let pat, s =
    match args with
    | [ Vstr pat; Vstr s ] -> (pat, s)
    | [ Vstr _; v ] | [ v; _ ] ->
      raise_error "TypeError"
        (Printf.sprintf "re.%s expected strings, got %s" name (type_name v))
    | _ -> raise_error "TypeError" (Printf.sprintf "re.%s expects 2 arguments" name)
  in
  match compile_regex pat with
  | None -> raise_error "ValueError" ("bad regular expression: " ^ pat)
  | Some re ->
    (match name with
     | "match" ->
       (match Regexlite.match_prefix re s with
        | Some j -> Vstr (String.sub s 0 j)
        | None -> Vnone)
     | "fullmatch" -> if Regexlite.full_match re s then Vstr s else Vnone
     | "search" ->
       (match Regexlite.search re s with
        | Some (i, j) -> Vstr (String.sub s i (j - i))
        | None -> Vnone)
     | "findall" ->
       let n = String.length s in
       let rec go i acc =
         if i > n then List.rev acc
         else
           match Regexlite.match_at re s i with
           | Some j when j > i -> go j (Vstr (String.sub s i (j - i)) :: acc)
           | Some j -> go (j + 1) acc
           | None -> go (i + 1) acc
       in
       Vlist (ref (go 0 []))
     | _ ->
       raise_error "AttributeError"
         (Printf.sprintf "re module has no attribute '%s'" name))

(* ------------------------------------------------------------------ *)
(* Builtin free functions                                              *)
(* ------------------------------------------------------------------ *)

let builtin_names =
  [ "len"; "int"; "float"; "str"; "bool"; "ord"; "chr"; "abs"; "min"; "max";
    "sum"; "range"; "round"; "print"; "input"; "open"; "sorted"; "reversed";
    "list"; "dict"; "tuple"; "isdigit"; "type"; "enumerate"; "zip" ]

let call_builtin ctx name args =
  match (name, args) with
  | "len", [ Vstr s ] -> Vint (String.length s)
  | "len", [ Vlist l ] -> Vint (List.length !l)
  | "len", [ Vdict d ] -> Vint (List.length !d)
  | "len", [ Vtuple t ] -> Vint (List.length t)
  | "len", [ v ] ->
    raise_error "TypeError"
      (Printf.sprintf "object of type '%s' has no len()" (type_name v))
  | "int", [ Vstr s ] -> Vint (int_of_string_strict s)
  | "int", [ Vstr s; Vint base ] -> Vint (int_of_string_strict ~base s)
  | "int", [ Vint i ] -> Vint i
  | "int", [ Vfloat f ] -> Vint (int_of_float f)
  | "int", [ Vbool b ] -> Vint (if b then 1 else 0)
  | "int", [ v ] ->
    raise_error "TypeError"
      (Printf.sprintf "int() argument must be a string or number, not '%s'"
         (type_name v))
  | "float", [ Vstr s ] -> Vfloat (float_of_string_strict s)
  | "float", [ Vint i ] -> Vfloat (float_of_int i)
  | "float", [ Vfloat f ] -> Vfloat f
  | "float", [ v ] ->
    raise_error "TypeError"
      (Printf.sprintf "float() argument must be a string or number, not '%s'"
         (type_name v))
  | "str", [ v ] -> Vstr (to_display_string v)
  | "str", [] -> Vstr ""
  | "bool", [ v ] -> Vbool (truthy v)
  | "ord", [ Vstr s ] when String.length s = 1 -> Vint (Char.code s.[0])
  | "ord", [ _ ] ->
    raise_error "TypeError" "ord() expected a character"
  | "chr", [ Vint i ] ->
    if i < 0 || i > 255 then raise_error "ValueError" "chr() arg out of range"
    else Vstr (String.make 1 (Char.chr i))
  | "abs", [ Vint i ] -> Vint (abs i)
  | "abs", [ Vfloat f ] -> Vfloat (Float.abs f)
  | "min", [ Vlist l ] ->
    (match !l with
     | [] -> raise_error "ValueError" "min() of empty sequence"
     | hd :: tl -> List.fold_left (fun a b -> if compare_values b a < 0 then b else a) hd tl)
  | "min", (_ :: _ :: _ as vs) ->
    List.fold_left
      (fun a b -> if compare_values b a < 0 then b else a)
      (List.hd vs) (List.tl vs)
  | "max", [ Vlist l ] ->
    (match !l with
     | [] -> raise_error "ValueError" "max() of empty sequence"
     | hd :: tl -> List.fold_left (fun a b -> if compare_values b a > 0 then b else a) hd tl)
  | "max", (_ :: _ :: _ as vs) ->
    List.fold_left
      (fun a b -> if compare_values b a > 0 then b else a)
      (List.hd vs) (List.tl vs)
  | "sum", [ Vlist l ] ->
    List.fold_left (fun acc v -> num_binop Ast.Add acc v) (Vint 0) !l
  | "range", [ Vint n ] ->
    if n > 100_000 then raise (Sandbox_limit "range too large");
    Vlist (ref (List.init (max 0 n) (fun i -> Vint i)))
  | "range", [ Vint a; Vint b ] ->
    if b - a > 100_000 then raise (Sandbox_limit "range too large");
    Vlist (ref (List.init (max 0 (b - a)) (fun i -> Vint (a + i))))
  | "range", [ Vint a; Vint b; Vint step ] ->
    if step = 0 then raise_error "ValueError" "range() arg 3 must not be zero";
    let count =
      if step > 0 then max 0 ((b - a + step - 1) / step)
      else max 0 ((a - b + (-step) - 1) / -step)
    in
    if count > 100_000 then raise (Sandbox_limit "range too large");
    Vlist (ref (List.init count (fun i -> Vint (a + (i * step)))))
  | "round", [ Vfloat f ] -> Vint (int_of_float (Float.round f))
  | "round", [ Vint i ] -> Vint i
  | "round", [ Vfloat f; Vint d ] ->
    let m = Float.pow 10.0 (float_of_int d) in
    Vfloat (Float.round (f *. m) /. m)
  | "print", vs ->
    ctx.printed <-
      String.concat " " (List.map to_display_string vs) :: ctx.printed;
    Vnone
  | "input", ([] | [ Vstr _ ]) -> Vstr ctx.stdin_line
  | "open", (Vstr path :: _) ->
    (match List.assoc_opt path ctx.virtual_files with
     | Some content ->
       let fields = Hashtbl.create 4 in
       Hashtbl.replace fields "__path" (Vstr path);
       Hashtbl.replace fields "__content" (Vstr content);
       Vobj { ocls = "file"; fields }
     | None -> raise_error "IOError" ("no such file: " ^ path))
  | "sorted", [ Vlist l ] -> Vlist (ref (List.sort compare_values !l))
  | "sorted", [ Vstr s ] ->
    Vlist
      (ref
         (List.sort compare_values
            (List.init (String.length s) (fun i -> Vstr (String.make 1 s.[i])))))
  | "reversed", [ Vlist l ] -> Vlist (ref (List.rev !l))
  | "reversed", [ Vstr s ] ->
    let n = String.length s in
    Vstr (String.init n (fun i -> s.[n - 1 - i]))
  | "list", [] -> Vlist (ref [])
  | "list", [ v ] -> Vlist (ref (iterate_value v))
  | "dict", [] -> Vdict (ref [])
  | "tuple", [ v ] -> Vtuple (iterate_value v)
  | "type", [ v ] -> Vstr (type_name v)
  | "enumerate", [ v ] ->
    Vlist (ref (List.mapi (fun i x -> Vtuple [ Vint i; x ]) (iterate_value v)))
  | "zip", [ a; b ] ->
    let xa = iterate_value a and xb = iterate_value b in
    let rec go xs ys acc =
      match (xs, ys) with
      | x :: xs', y :: ys' -> go xs' ys' (Vtuple [ x; y ] :: acc)
      | _ -> List.rev acc
    in
    Vlist (ref (go xa xb []))
  | _, _ ->
    raise_error "TypeError"
      (Printf.sprintf "bad arguments to builtin %s()" name)

let file_method o name args =
  let content =
    match Hashtbl.find_opt o.fields "__content" with
    | Some (Vstr c) -> c
    | _ -> ""
  in
  match (name, args) with
  | "read", [] -> Vstr content
  | "readline", [] ->
    (match String.index_opt content '\n' with
     | Some i -> Vstr (String.sub content 0 (i + 1))
     | None -> Vstr content)
  | "readlines", [] ->
    Vlist
      (ref
         (String.split_on_char '\n' content
          |> List.filter (fun l -> l <> "")
          |> List.map (fun l -> Vstr l)))
  | "close", [] -> Vnone
  | "write", [ Vstr _ ] -> Vnone  (* writes are swallowed by the sandbox *)
  | _ ->
    raise_error "AttributeError"
      (Printf.sprintf "'file' object has no attribute '%s'" name)

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)
(* ------------------------------------------------------------------ *)

let truncate_display s =
  if String.length s > 60 then String.sub s 0 60 ^ "…" else s

let rec eval ctx frame (e : Ast.expr) : Value.t =
  tick ctx;
  match e with
  | Ast.Int i -> Vint i
  | Ast.Float f -> Vfloat f
  | Ast.Str s -> Vstr s
  | Ast.Bool b -> Vbool b
  | Ast.None_lit -> Vnone
  | Ast.Var name -> lookup_var ctx frame name
  | Ast.Binop (Ast.And, a, b, _) ->
    let va = eval ctx frame a in
    if truthy va then eval ctx frame b else va
  | Ast.Binop (Ast.Or, a, b, _) ->
    let va = eval ctx frame a in
    if truthy va then va else eval ctx frame b
  | Ast.Binop (op, a, b, _) ->
    let va = eval ctx frame a in
    let vb = eval ctx frame b in
    eval_binop op va vb
  | Ast.Unop (Ast.Neg, e) ->
    (match eval ctx frame e with
     | Vint i -> Vint (-i)
     | Vfloat f -> Vfloat (-.f)
     | v ->
       raise_error "TypeError"
         (Printf.sprintf "bad operand type for unary -: '%s'" (type_name v)))
  | Ast.Unop (Ast.Not, e) -> Vbool (not (truthy (eval ctx frame e)))
  | Ast.Cond (c, a, b, pos) ->
    let taken = truthy (eval ctx frame c) in
    Trace.emit ctx.collector (Trace.Branch (Trace.site_of_pos pos, taken));
    if taken then eval ctx frame a else eval ctx frame b
  | Ast.Call (f, args, pos) ->
    let fv = eval ctx frame f in
    let argv = List.map (eval ctx frame) args in
    call_value ctx fv argv pos
  | Ast.Method (obj, name, args, pos) ->
    let ov = eval ctx frame obj in
    let argv = List.map (eval ctx frame) args in
    call_method ctx ov name argv pos
  | Ast.Attr (obj, name) ->
    (match eval ctx frame obj with
     | Vobj o ->
       (match Hashtbl.find_opt o.fields name with
        | Some v -> v
        | None ->
          raise_error "AttributeError"
            (Printf.sprintf "'%s' object has no attribute '%s'" o.ocls name))
     | Vbuiltin "re_module" -> Vbuiltin ("re." ^ name)
     | Vbuiltin "sys_module" when name = "argv" -> ctx.argv
     | v ->
       raise_error "AttributeError"
         (Printf.sprintf "'%s' object has no attribute '%s'" (type_name v) name))
  | Ast.Index (c, i, _) ->
    let cv = eval ctx frame c in
    let iv = eval ctx frame i in
    index_value cv iv
  | Ast.Slice (c, lo, hi, _) ->
    let cv = eval ctx frame c in
    let evi = function
      | None -> None
      | Some e ->
        (match eval ctx frame e with
         | Vint i -> Some i
         | Vnone -> None
         | v ->
           raise_error "TypeError"
             (Printf.sprintf "slice indices must be integers, not %s"
                (type_name v)))
    in
    slice_value cv (evi lo) (evi hi)
  | Ast.List_lit es -> Vlist (ref (List.map (eval ctx frame) es))
  | Ast.Tuple_lit es -> Vtuple (List.map (eval ctx frame) es)
  | Ast.Dict_lit kvs ->
    Vdict (ref (List.map (fun (k, v) -> (eval ctx frame k, eval ctx frame v)) kvs))

and lookup_var ctx frame name =
  match Hashtbl.find_opt frame.scope.vars name with
  | Some v -> v
  | None ->
    (match scope_lookup (module_scope frame.scope) name with
     | Some v -> v
     | None ->
       if List.mem name builtin_names then Vbuiltin name
       else if name = "re" then Vbuiltin "re_module"
       else if name = "sys" then Vbuiltin "sys_module"
       else if name = "argv" then ctx.argv
       else if List.mem name known_exception_kinds then
         Vbuiltin ("exc:" ^ name)
       else
         raise_error "NameError"
           (Printf.sprintf "name '%s' is not defined" name))

and call_value ctx fv args pos =
  match fv with
  | Vfun closure -> call_closure ctx closure None args
  | Vbound (self, closure) -> call_closure ctx closure (Some self) args
  | Vbuiltin name when String.length name > 3 && String.sub name 0 3 = "re." ->
    re_module_method (String.sub name 3 (String.length name - 3)) args
  | Vbuiltin name when String.length name > 4 && String.sub name 0 4 = "exc:" ->
    (* Exception constructor: ValueError("msg") builds an exception
       object that `raise` re-raises with its kind and message. *)
    let kind = String.sub name 4 (String.length name - 4) in
    let fields = Hashtbl.create 2 in
    let msg =
      match args with
      | [ v ] -> to_display_string v
      | [] -> ""
      | vs -> String.concat ", " (List.map to_display_string vs)
    in
    Hashtbl.replace fields "message" (Vstr msg);
    Vobj { ocls = kind; fields }
  | Vbuiltin name -> call_builtin ctx name args
  | Vclass cls -> instantiate ctx cls args pos
  | v ->
    raise_error "TypeError"
      (Printf.sprintf "'%s' object is not callable" (type_name v))

and call_closure ctx closure self args =
  ctx.depth <- ctx.depth + 1;
  if ctx.depth > ctx.config.max_call_depth then begin
    ctx.depth <- ctx.depth - 1;
    raise (Sandbox_limit "maximum call depth exceeded")
  end;
  let fn = closure.cl_func in
  let scope = scope_create ~parent:(module_scope closure.cl_scope) () in
  let frame = { scope; global_names = Hashtbl.create 4 } in
  let params =
    match self with
    | Some o ->
      (match fn.params with
       | self_name :: rest ->
         Hashtbl.replace scope.vars self_name (Vobj o);
         rest
       | [] ->
         raise_error "TypeError"
           (Printf.sprintf "method %s() takes no arguments" fn.fname))
    | None -> fn.params
  in
  let n_params = List.length params and n_args = List.length args in
  if n_args > n_params then
    raise_error "TypeError"
      (Printf.sprintf "%s() takes %d arguments (%d given)" fn.fname n_params
         n_args);
  List.iteri
    (fun i p ->
      if i < n_args then Hashtbl.replace scope.vars p (List.nth args i)
      else
        match List.assoc_opt p fn.defaults with
        | Some default -> Hashtbl.replace scope.vars p (eval ctx frame default)
        | None ->
          raise_error "TypeError"
            (Printf.sprintf "%s() missing required argument '%s'" fn.fname p))
    params;
  let result =
    try
      exec_block ctx frame fn.body;
      (* Implicit return: record it like byte-code RETURN_VALUE of None. *)
      Trace.emit ctx.collector
        (Trace.Return (Trace.site_of_pos fn.fpos, Trace.Rvoid));
      Vnone
    with
    | Return_signal v -> v
    | e ->
      ctx.depth <- ctx.depth - 1;
      raise e
  in
  ctx.depth <- ctx.depth - 1;
  result

and instantiate ctx cls args pos =
  let fields = Hashtbl.create 8 in
  let o = { ocls = cls.rt_cname; fields } in
  (match List.assoc_opt "__init__" cls.rt_methods with
   | Some init -> ignore (call_closure ctx init (Some o) args)
   | None ->
     if args <> [] then
       raise_error "TypeError"
         (Printf.sprintf "%s() takes no arguments" cls.rt_cname));
  ignore pos;
  (* Bind methods lazily through call_method; attach the class. *)
  Hashtbl.replace fields "__class__" (Vclass cls);
  Vobj o

and call_method ctx ov name args pos =
  match ov with
  | Vstr s -> str_method s name args
  | Vlist l -> list_method l name args
  | Vdict d -> dict_method d name args
  | Vobj ({ ocls = "file"; _ } as o) -> file_method o name args
  | Vobj o ->
    (match Hashtbl.find_opt o.fields "__class__" with
     | Some (Vclass cls) ->
       (match List.assoc_opt name cls.rt_methods with
        | Some m -> call_closure ctx m (Some o) args
        | None ->
          (* A field holding a callable also works. *)
          (match Hashtbl.find_opt o.fields name with
           | Some fv -> call_value ctx fv args pos
           | None ->
             raise_error "AttributeError"
               (Printf.sprintf "'%s' object has no attribute '%s'" o.ocls name)))
     | _ ->
       raise_error "AttributeError"
         (Printf.sprintf "'%s' object has no attribute '%s'" o.ocls name))
  | Vbuiltin "re_module" -> re_module_method name args
  | Vbuiltin "sys_module" when name = "exit" -> raise_error "SystemExit" "exit"
  | v ->
    raise_error "AttributeError"
      (Printf.sprintf "'%s' object has no attribute '%s'" (type_name v) name)

and assign ctx frame (tgt : Ast.target) (v : Value.t) (pos : Ast.pos) =
  match tgt with
  | Ast.Tvar name ->
    if ctx.collector.Trace.record_assigns then
      Trace.emit ctx.collector
        (Trace.Assign
           (Trace.site_of_pos pos, name, truncate_display (to_display_string v)));
    if Hashtbl.mem frame.global_names name then
      Hashtbl.replace (module_scope frame.scope).vars name v
    else Hashtbl.replace frame.scope.vars name v
  | Ast.Tattr (obj_e, name) ->
    (match eval ctx frame obj_e with
     | Vobj o ->
       if ctx.collector.Trace.record_assigns then
         Trace.emit ctx.collector
           (Trace.Assign
              ( Trace.site_of_pos pos,
                "self." ^ name,
                truncate_display (to_display_string v) ));
       Hashtbl.replace o.fields name v
     | v' ->
       raise_error "AttributeError"
         (Printf.sprintf "cannot set attribute on '%s'" (type_name v')))
  | Ast.Tindex (c_e, i_e) ->
    let cv = eval ctx frame c_e in
    let iv = eval ctx frame i_e in
    (match cv with
     | Vlist l ->
       (match iv with
        | Vint i ->
          let items = !l in
          let i = normalize_index (List.length items) i in
          if i < 0 || i >= List.length items then
            raise_error "IndexError" "list assignment index out of range"
          else l := List.mapi (fun j x -> if j = i then v else x) items
        | _ -> raise_error "TypeError" "list indices must be integers")
     | Vdict d ->
       d :=
         (match List.find_opt (fun (k, _) -> equal iv k) !d with
          | Some _ ->
            List.map (fun (k, v') -> if equal iv k then (k, v) else (k, v')) !d
          | None -> !d @ [ (iv, v) ])
     | _ ->
       raise_error "TypeError"
         (Printf.sprintf "'%s' object does not support item assignment"
            (type_name cv)))
  | Ast.Ttuple tgts ->
    let values =
      match v with
      | Vtuple vs -> vs
      | Vlist l -> !l
      | _ -> raise_error "TypeError" "cannot unpack non-sequence"
    in
    if List.length values <> List.length tgts then
      raise_error "ValueError" "unpacking mismatch";
    List.iter2 (fun t v -> assign ctx frame t v pos) tgts values

and read_target ctx frame (tgt : Ast.target) pos : Value.t =
  match tgt with
  | Ast.Tvar name -> lookup_var ctx frame name
  | Ast.Tattr (e, n) -> eval ctx frame (Ast.Attr (e, n))
  | Ast.Tindex (c, i) -> eval ctx frame (Ast.Index (c, i, pos))
  | Ast.Ttuple _ -> raise_error "TypeError" "invalid augmented assignment target"

and exec_block ctx frame (b : Ast.block) = List.iter (exec_stmt ctx frame) b

and exec_stmt ctx frame (s : Ast.stmt) =
  tick ctx;
  match s with
  | Ast.Pass -> ()
  | Ast.Expr_stmt (e, _) -> ignore (eval ctx frame e)
  | Ast.Assign (tgt, e, pos) ->
    let v = eval ctx frame e in
    assign ctx frame tgt v pos
  | Ast.Aug_assign (tgt, op, e, pos) ->
    let old_v = read_target ctx frame tgt pos in
    let v = eval_binop op old_v (eval ctx frame e) in
    assign ctx frame tgt v pos
  | Ast.If (arms, els) ->
    let rec go = function
      | [] -> (match els with Some b -> exec_block ctx frame b | None -> ())
      | (cond, pos, body) :: rest ->
        let taken = truthy (eval ctx frame cond) in
        Trace.emit ctx.collector (Trace.Branch (Trace.site_of_pos pos, taken));
        if taken then exec_block ctx frame body else go rest
    in
    go arms
  | Ast.While (cond, pos, body) ->
    let rec loop () =
      let taken = truthy (eval ctx frame cond) in
      Trace.emit ctx.collector (Trace.Branch (Trace.site_of_pos pos, taken));
      if taken then begin
        (try exec_block ctx frame body with Continue_signal -> ());
        loop ()
      end
    in
    (try loop () with Break_signal -> ())
  | Ast.For (tgt, iter_e, body, pos) ->
    let items = iterate_value (eval ctx frame iter_e) in
    (try
       List.iter
         (fun item ->
           tick ctx;
           assign ctx frame tgt item pos;
           try exec_block ctx frame body with Continue_signal -> ())
         items
     with Break_signal -> ())
  | Ast.Return (e_opt, pos) ->
    let v = match e_opt with Some e -> eval ctx frame e | None -> Vnone in
    Trace.emit ctx.collector
      (Trace.Return (Trace.site_of_pos pos, Trace.abstract_value v));
    raise (Return_signal v)
  | Ast.Raise (e_opt, _) ->
    (match e_opt with
     | None -> raise_error "Exception" "re-raise"
     | Some e ->
       (match eval ctx frame e with
        | Vstr msg -> raise_error "Exception" msg
        | Vobj o ->
          let msg =
            match Hashtbl.find_opt o.fields "message" with
            | Some (Vstr m) -> m
            | _ -> "user exception object"
          in
          raise_error o.ocls msg
        | Vbuiltin name
          when String.length name > 4 && String.sub name 0 4 = "exc:" ->
          raise_error (String.sub name 4 (String.length name - 4)) ""
        | v -> raise_error "Exception" (to_display_string v)))
  | Ast.Try (body, handlers, fin) ->
    let run_finally () =
      match fin with Some b -> exec_block ctx frame b | None -> ()
    in
    (try
       exec_block ctx frame body;
       run_finally ()
     with
     | Runtime_error (kind, msg) as exn ->
       let matching =
         List.find_opt
           (fun h ->
             match h.Ast.h_filter with
             | None -> true
             | Some f ->
               if List.mem f known_exception_kinds then
                 f = "Exception" || f = kind
               else true (* py2-style "except e:" catch-all binder *))
           handlers
       in
       (match matching with
        | Some h ->
          (match h.Ast.h_bind with
           | Some b -> Hashtbl.replace frame.scope.vars b (Vstr msg)
           | None ->
             (match h.Ast.h_filter with
              | Some f when not (List.mem f known_exception_kinds) ->
                Hashtbl.replace frame.scope.vars f (Vstr msg)
              | _ -> ()));
          (try exec_block ctx frame h.Ast.h_body with e -> run_finally (); raise e);
          run_finally ()
        | None -> run_finally (); raise exn)
     | (Sandbox_limit _ | Cancelled _ | Return_signal _ | Break_signal
       | Continue_signal) as e ->
       run_finally ();
       raise e)
  | Ast.Break _ -> raise Break_signal
  | Ast.Continue _ -> raise Continue_signal
  | Ast.Func_def fn ->
    let closure = { cl_func = fn; cl_scope = frame.scope } in
    Hashtbl.replace frame.scope.vars fn.fname (Vfun closure)
  | Ast.Class_def c ->
    let methods =
      List.map
        (fun m -> (m.Ast.fname, { cl_func = m; cl_scope = frame.scope }))
        c.methods
    in
    Hashtbl.replace frame.scope.vars c.cname
      (Vclass { rt_cname = c.cname; rt_methods = methods })
  | Ast.Global names ->
    List.iter (fun n -> Hashtbl.replace frame.global_names n ()) names

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Finished of Value.t
  | Errored of string * string  (** exception kind, message *)
  | Hit_limit of string
  | Deadline_exceeded of string

type run_result = {
  outcome : outcome;
  trace : Trace.t;
  steps_used : int;
  printed : string list;
}

(* Per-execution telemetry (no-ops until Telemetry.enable): updated once
   per run_traced, never inside the evaluation loop. *)
let m_runs = Telemetry.counter "interp.runs"
let m_steps = Telemetry.counter "interp.steps"
let m_branch_events = Telemetry.counter "interp.branch_events"
let m_return_events = Telemetry.counter "interp.return_events"
let m_fuel_exhausted = Telemetry.counter "interp.fuel_exhausted"
let m_limit_hits = Telemetry.counter "interp.limit_hits"
let m_errored = Telemetry.counter "interp.errored_runs"
let m_deadline_hits = Telemetry.counter "interp.deadline_hits"
let h_steps = Telemetry.histogram "interp.steps_per_run"

let module_frame scope = { scope; global_names = Hashtbl.create 1 }

(** Execute a whole parsed file into [scope].  Used both to load
    definitions and to run script-level snippets. *)
let exec_program ctx scope (p : Ast.program) =
  exec_block ctx (module_frame scope) p.Ast.prog_body

(** Load a module: execute all top-level statements with the given
    budget, collecting definitions into a fresh scope.  Top-level
    script code that fails does not prevent the definitions already
    executed from being used (mirroring how the paper loads whatever
    compiles). *)
let load_module ?(config = default_config) (programs : Ast.program list) :
    scope * (string * string) list =
  let scope = scope_create () in
  let errors = ref [] in
  List.iter
    (fun p ->
      let collector = Trace.create_collector () in
      let ctx = create_ctx ~config collector in
      try exec_program ctx scope p with
      | Runtime_error (kind, msg) ->
        errors := (p.Ast.prog_file, kind ^ ": " ^ msg) :: !errors
      | Sandbox_limit msg -> errors := (p.Ast.prog_file, "sandbox: " ^ msg) :: !errors
      | Return_signal _ -> errors := (p.Ast.prog_file, "return outside function") :: !errors
      | Break_signal | Continue_signal ->
        errors := (p.Ast.prog_file, "break/continue outside loop") :: !errors)
    programs;
  (scope, List.rev !errors)

(** Run a zero-argument thunk under full tracing and sandbox limits. *)
let run_traced ?(config = default_config) ?(record_assigns = false)
    ?(argv = []) ?(stdin_line = "") ?(virtual_files = []) ?cancel ?deadline_ns
    (f : ctx -> Value.t) : run_result =
  let collector = Trace.create_collector ~record_assigns () in
  let ctx =
    create_ctx ~config ~argv ~stdin_line ~virtual_files ?cancel ?deadline_ns
      collector
  in
  Faults.delay_run ();
  let expired_on_entry =
    match deadline_ns with
    | Some d -> Telemetry.now_ns () >= d
    | None -> false
  in
  let outcome =
    if Faults.should_kill () then begin
      Trace.emit collector (Trace.Exception "FaultInjected");
      Errored ("FaultInjected", "interpreter run killed by fault injection")
    end
    else if expired_on_entry then
      (* The request's budget was consumed before this run started (a
         stalled predecessor, an injected delay): refuse to start. *)
      Deadline_exceeded deadline_message
    else
      try Finished (f ctx)
      with
      | Runtime_error (kind, msg) ->
        Trace.emit collector (Trace.Exception kind);
        Errored (kind, msg)
      | Sandbox_limit msg -> Hit_limit msg
      | Cancelled msg -> Deadline_exceeded msg
      | Return_signal _ -> Errored ("SyntaxError", "return outside function")
      | Break_signal | Continue_signal ->
        Errored ("SyntaxError", "break outside loop")
      | Stack_overflow -> Hit_limit "native stack overflow"
  in
  if Telemetry.enabled () then begin
    Telemetry.incr m_runs;
    Telemetry.incr ~by:ctx.steps m_steps;
    Telemetry.incr ~by:collector.Trace.n_branches m_branch_events;
    Telemetry.incr ~by:collector.Trace.n_returns m_return_events;
    Telemetry.observe h_steps (float_of_int ctx.steps);
    (match outcome with
     | Hit_limit msg ->
       Telemetry.incr m_limit_hits;
       if msg = "step budget exhausted" then Telemetry.incr m_fuel_exhausted
     | Deadline_exceeded _ ->
       Telemetry.incr m_deadline_hits;
       Telemetry.Flight.record ~kind:"deadline"
         ~value:(float_of_int ctx.steps) "interp.run"
     | Errored _ -> Telemetry.incr m_errored
     | Finished _ -> ())
  end;
  {
    outcome;
    trace = Trace.finish collector;
    steps_used = ctx.steps;
    printed = List.rev ctx.printed;
  }

(** Call a callable value with the given MiniScript arguments. *)
let call_callable ctx callable args =
  call_value ctx callable args { Ast.file = "<call>"; line = 0 }
