(** String-method primitives shared between the tree-walking
    interpreter, the bytecode VM and the interpreter-free fast path
    ({!Absint} compiled summaries).  Single source of truth for
    MiniScript string semantics — the bench asserts byte-identical
    verdicts between all routes. *)

val strip_chars : string -> string option -> left:bool -> right:bool -> string
(** [None] strips the four ASCII whitespace characters, like
    [str.strip()]. *)

val split_on_string : string -> string -> string list
(** [split_on_string sep s].
    @raise Invalid_argument on an empty separator — callers guard. *)

val split_whitespace : string -> string list

val find_substring : ?from:int -> string -> string -> int
(** [-1] when absent; an empty needle matches at [min from len]. *)

val replace_substring : string -> string -> string -> string
(** Empty needle is the identity (the interpreter never raises there). *)

val string_forall : (char -> bool) -> string -> bool
(** Python's truthiness-compatible forall: [false] on [""]. *)

val is_digit_char : char -> bool
val is_alpha_char : char -> bool
val is_alnum_char : char -> bool
val is_space_char : char -> bool
val starts_with : prefix:string -> string -> bool
val ends_with : suffix:string -> string -> bool
