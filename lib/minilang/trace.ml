(** Execution traces.

    The paper instruments Python byte-code to dump, at every branch and
    return instruction, the stack top plus the file name and line number
    (Appendix D.2).  Our interpreter emits the same information natively:
    each event carries a {!site} — the (file, line) of the instruction —
    and the relevant value, pre-abstracted the way Section 5.2 featurizes
    it (booleans as true/false; numbers and collection lengths as
    zero/non-zero; composite objects as None/not-None). *)

type site = { s_file : string; s_line : int }

let site_of_pos (p : Ast.pos) = { s_file = p.Ast.file; s_line = p.Ast.line }

let site_to_string s = Printf.sprintf "%s:%d" s.s_file s.s_line

let compare_site a b =
  match String.compare a.s_file b.s_file with
  | 0 -> compare a.s_line b.s_line
  | c -> c

(** Abstraction of a return value, per the featurization of Section 5.2. *)
type ret_abstract =
  | Rbool of bool
  | Rzero        (** number or collection length equal to 0 *)
  | Rnonzero
  | Rnone        (** composite object that is None *)
  | Rnotnone
  | Rvoid        (** function fell off the end without a return value *)

let ret_abstract_to_string = function
  | Rbool true -> "True"
  | Rbool false -> "False"
  | Rzero -> "0"
  | Rnonzero -> "!=0"
  | Rnone -> "None"
  | Rnotnone -> "!=None"
  | Rvoid -> "void"

let abstract_value (v : Value.t) : ret_abstract =
  match v with
  | Value.Vbool b -> Rbool b
  | Value.Vint i -> if i = 0 then Rzero else Rnonzero
  | Value.Vfloat f -> if f = 0.0 then Rzero else Rnonzero
  | Value.Vstr s -> if String.length s = 0 then Rzero else Rnonzero
  | Value.Vlist l -> if !l = [] then Rzero else Rnonzero
  | Value.Vdict d -> if !d = [] then Rzero else Rnonzero
  | Value.Vtuple t -> if t = [] then Rzero else Rnonzero
  | Value.Vnone -> Rnone
  | Value.Vobj _ | Value.Vfun _ | Value.Vbound _ | Value.Vclass _
  | Value.Vbuiltin _ -> Rnotnone

type event =
  | Branch of site * bool
      (** condition of an if/elif/while evaluated at [site], taken or not *)
  | Return of site * ret_abstract
  | Exception of string
      (** uncaught exception kind escaping the invoked entry point *)
  | Assign of site * string * string
      (** variable or attribute name, display string of assigned value;
          harvested for semantic transformations (Section 7.1) *)

type t = event list  (** in execution order *)

(** Mutable collector threaded through the interpreter. *)
type collector = {
  mutable events : event list;  (** reversed *)
  mutable n_events : int;
  mutable n_branches : int;  (** all Branch emissions, even past the cap *)
  mutable n_returns : int;  (** all Return emissions, even past the cap *)
  max_events : int;
  record_assigns : bool;
}

let create_collector ?(max_events = 200_000) ?(record_assigns = false) () =
  { events = []; n_events = 0; n_branches = 0; n_returns = 0; max_events;
    record_assigns }

let emit c ev =
  (match ev with
   | Branch _ -> c.n_branches <- c.n_branches + 1
   | Return _ -> c.n_returns <- c.n_returns + 1
   | Exception _ | Assign _ -> ());
  if c.n_events < c.max_events then begin
    c.events <- ev :: c.events;
    c.n_events <- c.n_events + 1
  end

let finish c : t = List.rev c.events
