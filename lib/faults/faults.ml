(** Env-gated fault injection (see faults.mli). *)

type config = {
  delay_ms : float;
  p_kill : float;
  p_corrupt : float;
  p_reject : float;
  seed : int;
}

let default =
  { delay_ms = 0.0; p_kill = 0.0; p_corrupt = 0.0; p_reject = 0.0; seed = 0 }

let m_delays = Telemetry.counter "faults.delays"
let m_kills = Telemetry.counter "faults.kills"
let m_corruptions = Telemetry.counter "faults.corruptions"
let m_rejects = Telemetry.counter "faults.rejects"

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let parse (spec : string) : (config, string) result =
  let parse_pair acc pair =
    match acc with
    | Error _ as e -> e
    | Ok cfg ->
      (match String.index_opt pair '=' with
       | None -> Error (Printf.sprintf "expected key=value, got %S" pair)
       | Some i ->
         let key = String.sub pair 0 i in
         let v = String.sub pair (i + 1) (String.length pair - i - 1) in
         let prob set =
           match float_of_string_opt v with
           | Some p when p >= 0.0 && p <= 1.0 -> Ok (set p)
           | _ -> Error (Printf.sprintf "%s must be a probability in [0,1], got %S" key v)
         in
         (match key with
          | "delay_ms" ->
            (match float_of_string_opt v with
             | Some d when d >= 0.0 -> Ok { cfg with delay_ms = d }
             | _ -> Error (Printf.sprintf "delay_ms must be >= 0, got %S" v))
          | "p_kill" -> prob (fun p -> { cfg with p_kill = p })
          | "p_corrupt" -> prob (fun p -> { cfg with p_corrupt = p })
          | "p_reject" -> prob (fun p -> { cfg with p_reject = p })
          | "seed" ->
            (match int_of_string_opt v with
             | Some s -> Ok { cfg with seed = s }
             | None -> Error (Printf.sprintf "seed must be an integer, got %S" v))
          | k -> Error (Printf.sprintf "unknown fault key %S" k)))
  in
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.fold_left parse_pair (Ok default)

(* ------------------------------------------------------------------ *)
(* Active configuration                                                *)
(* ------------------------------------------------------------------ *)

let from_env () =
  match Sys.getenv_opt "AUTOTYPE_FAULTS" with
  | None | Some "" -> None
  | Some spec ->
    (match parse spec with
     | Ok cfg -> Some cfg
     | Error msg ->
       (* A malformed spec must not silently disable injection the user
          asked for: fail loudly at first use. *)
       failwith (Printf.sprintf "AUTOTYPE_FAULTS: %s" msg))

let state : config option Atomic.t = Atomic.make (from_env ())

let current () = Atomic.get state
let active () = Atomic.get state <> None
let set cfg = Atomic.set state cfg

(* ------------------------------------------------------------------ *)
(* Deterministic decisions: splitmix64 over an atomic draw counter      *)
(* ------------------------------------------------------------------ *)

let draws = Atomic.make 0

let splitmix64 (x : int64) : int64 =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* A uniform draw in [0, 1): deterministic per (seed, draw index), so a
   failing run replays bit-identically under the same spec. *)
let next_uniform cfg =
  let i = Atomic.fetch_and_add draws 1 in
  let bits =
    splitmix64 (Int64.add (Int64.of_int cfg.seed)
                  (Int64.mul 0x2545F4914F6CDD1DL (Int64.of_int (i + 1))))
  in
  Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.0

let roll p cfg = p > 0.0 && next_uniform cfg < p

let delay_run () =
  match Atomic.get state with
  | Some cfg when cfg.delay_ms > 0.0 ->
    Telemetry.incr m_delays;
    Telemetry.Flight.record ~kind:"fault" ~value:cfg.delay_ms "delay";
    Unix.sleepf (cfg.delay_ms /. 1000.0)
  | _ -> ()

let should_kill () =
  match Atomic.get state with
  | Some cfg when roll cfg.p_kill cfg ->
    Telemetry.incr m_kills;
    Telemetry.Flight.record ~kind:"fault" "kill";
    true
  | _ -> false

let should_reject () =
  match Atomic.get state with
  | Some cfg when roll cfg.p_reject cfg ->
    Telemetry.incr m_rejects;
    Telemetry.Flight.record ~kind:"fault" "reject";
    true
  | _ -> false

let corrupt (bytes : string) : string option =
  match Atomic.get state with
  | Some cfg when String.length bytes > 0 && roll cfg.p_corrupt cfg ->
    Telemetry.incr m_corruptions;
    Telemetry.Flight.record ~kind:"fault" "corrupt";
    (* Flip one byte past the midpoint: headers usually survive, so the
       corruption surfaces as a checksum mismatch — the realistic torn
       read — rather than as not-a-model. *)
    let b = Bytes.of_string bytes in
    let i = String.length bytes / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    Some (Bytes.to_string b)
  | _ -> None
