(** Fault injection for the serving stack (DESIGN.md §10).

    Disabled unless the [AUTOTYPE_FAULTS] environment variable is set
    (or {!set} is called programmatically, which tests use), so the
    production path pays one atomic load per probe.  The configuration
    string is a comma-separated list of [key=value] pairs:

    {v AUTOTYPE_FAULTS="delay_ms=5,p_kill=0.02,p_corrupt=0.1,seed=42" v}

    - [delay_ms]: sleep this many milliseconds before every interpreter
      run (drives runs past wall-clock deadlines);
    - [p_kill]: probability that an interpreter run is killed outright
      (surfaces as an ["FaultInjected"] error outcome);
    - [p_corrupt]: probability that a registry artifact read returns
      corrupted bytes (exercises checksum rejection, retry and
      degradation paths);
    - [p_reject]: probability that the serving daemon spuriously
      rejects an admitted request as [overloaded] (exercises client
      retry/rejection accounting under chaos);
    - [seed]: PRNG seed — the decision sequence is deterministic per
      seed, so failures reproduce.

    Decisions come from a splitmix64 stream behind an atomic counter:
    domain-safe and independent of every other RNG in the system. *)

type config = {
  delay_ms : float;  (** sleep before each interpreter run; 0 = none *)
  p_kill : float;  (** probability of killing an interpreter run *)
  p_corrupt : float;  (** probability of corrupting an artifact read *)
  p_reject : float;  (** probability the daemon rejects a request *)
  seed : int;
}

val default : config
(** All-zero probabilities, no delay, seed 0 — injects nothing. *)

val parse : string -> (config, string) result
(** Parse an [AUTOTYPE_FAULTS]-style spec.  Unknown keys, non-numeric
    values and probabilities outside [0, 1] are errors. *)

val active : unit -> bool
(** Whether any fault injection is configured (env or {!set}). *)

val current : unit -> config option

val set : config option -> unit
(** Programmatic override, used by tests and the fault smoke target.
    [set None] turns injection off regardless of the environment. *)

val delay_run : unit -> unit
(** Sleep [delay_ms] if configured; no-op when inactive. *)

val should_kill : unit -> bool
(** Roll the dice for killing the current interpreter run. *)

val should_reject : unit -> bool
(** Roll the dice for spuriously rejecting an admitted serve request
    ([faults.rejects]); the daemon answers [overloaded] as if the
    admission queue were full. *)

val corrupt : string -> string option
(** With probability [p_corrupt], return a corrupted copy of the bytes
    (a flipped byte in the payload region); [None] = serve unmodified. *)
