(** Parallel execution engine: a fixed-size pool of OCaml 5 domains with
    a deterministic [parallel_map].

    The pool exists for the pipeline's dominant cost — tracing every
    candidate function against every example — which is embarrassingly
    parallel: candidates share no mutable state (each run loads a fresh
    module scope).  Pure stdlib ([Domain]/[Mutex]/[Condition]/[Atomic]),
    no external dependencies.

    Determinism: [parallel_map] writes each result into a slot indexed
    by the element's input position, so the output list is byte-for-byte
    identical to [List.map] regardless of the number of domains or how
    the scheduler interleaves them.  The pipeline relies on this to make
    [--jobs N] output indistinguishable from sequential runs. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped to \[1, 8\].  The cap
    keeps oversubscription bounded on large machines; candidate tracing
    saturates well before 8 domains on the simulated corpus. *)

module Pool : sig
  type t
  (** A fixed set of worker domains and a task queue.  A pool with
      [jobs = 1] spawns no domains at all: every map runs inline on the
      caller, making it a zero-overhead sequential fallback. *)

  val create : jobs:int -> t
  (** Spawn [jobs - 1] worker domains ([jobs] is clamped to at least 1);
      the caller participates in every map as the remaining worker. *)

  val jobs : t -> int

  val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Order-preserving map over the pool.  Elements are handed out one
      at a time from an atomic cursor (dynamic load balancing); results
      land in input order.

      If [f] raises on one or more elements, the exception of the
      {e lowest-index} failing element is re-raised with its backtrace —
      matching which exception a sequential [List.map] would have
      surfaced — after all in-flight work has drained, leaving the pool
      reusable.  Not re-entrant: [f] must not itself call
      [parallel_map] on the same pool. *)

  val shutdown : t -> unit
  (** Stop and join all worker domains.  Idempotent. *)

  val with_pool : jobs:int -> (t -> 'a) -> 'a
  (** [create], run, then [shutdown] (also on exception). *)
end

val map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map] when [pool] is [None], [Pool.parallel_map] otherwise.
    The convenience form call-sites use to stay pool-agnostic. *)
