(** Parallel execution engine: a fixed-size pool of OCaml 5 domains with
    a deterministic [parallel_map].

    The pool exists for the pipeline's dominant cost — tracing every
    candidate function against every example — which is embarrassingly
    parallel: candidates share no mutable state (each run loads a fresh
    module scope).  Pure stdlib ([Domain]/[Mutex]/[Condition]/[Atomic]),
    no external dependencies.

    Determinism: [parallel_map] writes each result into a slot indexed
    by the element's input position, so the output list is byte-for-byte
    identical to [List.map] regardless of the number of domains or how
    the scheduler interleaves them.  The pipeline relies on this to make
    [--jobs N] output indistinguishable from sequential runs. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped to \[1, 8\].  The cap
    keeps oversubscription bounded on large machines; candidate tracing
    saturates well before 8 domains on the simulated corpus. *)

(** Absolute wall-clock deadlines on the monotonic clock
    ({!Telemetry.now_ns}), shared by the interpreter's per-run bound and
    the pool's per-batch bound so nested scopes compare the same time
    base. *)
module Deadline : sig
  type t

  val after_ms : float -> t
  (** The instant [ms] milliseconds from now (clamped to now for
      negative input). *)

  val at_ns : int64 -> t
  (** Wrap an absolute monotonic-ns instant (e.g. to pass a batch
      deadline down as an interpreter [deadline_ns]). *)

  val to_ns : t -> int64
  (** The absolute monotonic-ns instant, for handing to
      [?deadline_ns] parameters down the stack. *)

  val now_ns : unit -> int64

  val remaining_ns : t -> int64
  (** Nanoseconds until the deadline, 0 once passed. *)

  val expired : t -> bool

  val min_opt : t option -> t option -> t option
  (** Effective deadline of a nested scope: whichever cuts first
      ([None] = unbounded on that side). *)

  val sleep_until : t -> unit
  (** Block the calling domain until the instant has passed (returns
      immediately if it already has).  Early wake-ups are retried
      against the monotonic clock, so the target is exact to scheduler
      granularity — the pacing primitive for open-loop load
      generation. *)
end

module Pool : sig
  type t
  (** A fixed set of worker domains and a task queue.  A pool with
      [jobs = 1] spawns no domains at all: every map runs inline on the
      caller, making it a zero-overhead sequential fallback. *)

  val create : jobs:int -> t
  (** Spawn [jobs - 1] worker domains ([jobs] is clamped to at least 1);
      the caller participates in every map as the remaining worker. *)

  val jobs : t -> int

  val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Order-preserving map over the pool.  Elements are handed out one
      at a time from an atomic cursor (dynamic load balancing); results
      land in input order.

      If [f] raises on one or more elements, the exception of the
      {e lowest-index} failing element is re-raised with its backtrace —
      matching which exception a sequential [List.map] would have
      surfaced — after all in-flight work has drained, leaving the pool
      reusable.  Not re-entrant: [f] must not itself call
      [parallel_map] on the same pool. *)

  val parallel_map_deadline :
    t -> deadline:Deadline.t -> fallback:('a -> 'b) -> ('a -> 'b) -> 'a list ->
    'b list
  (** {!parallel_map}, except that once [deadline] passes, elements not
      yet dispatched are answered by [fallback] instead of [f] (counted
      in [exec.deadline_skipped]).  Elements already running complete
      normally — interrupting {e inside} [f] is the interpreter's
      cooperative-cancellation job, not the pool's.  Order and the
      lowest-index exception contract are unchanged; [fallback] must
      not raise. *)

  val shutdown : t -> unit
  (** Stop and join all worker domains.  Idempotent. *)

  val with_pool : jobs:int -> (t -> 'a) -> 'a
  (** [create], run, then [shutdown] (also on exception). *)
end

val map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map] when [pool] is [None], [Pool.parallel_map] otherwise.
    The convenience form call-sites use to stay pool-agnostic. *)

val map_deadline :
  ?pool:Pool.t ->
  deadline:Deadline.t ->
  fallback:('a -> 'b) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** Deadline-aware {!map}: sequential or pooled, undispatched elements
    degrade to [fallback] once [deadline] passes. *)
