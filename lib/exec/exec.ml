(** Fixed-size domain pool with a deterministic, order-preserving
    [parallel_map].  See exec.mli for the contract. *)

let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

module Deadline = struct
  type t = int64  (** absolute CLOCK_MONOTONIC ns, Telemetry's clock *)

  let now_ns = Telemetry.now_ns

  let after_ms ms =
    let ns = Int64.of_float (ms *. 1e6) in
    Int64.add (now_ns ()) (Int64.max 0L ns)

  let at_ns t = t
  let to_ns t = t

  let remaining_ns t = Int64.max 0L (Int64.sub t (now_ns ()))

  let expired t = Int64.compare (now_ns ()) t >= 0

  (* The effective deadline of a nested scope: whichever bound cuts
     first.  [None] means unbounded on that side. *)
  let min_opt a b =
    match (a, b) with
    | None, d | d, None -> d
    | Some x, Some y -> Some (Int64.min x y)

  (* Sleep until an absolute monotonic instant.  [Unix.sleepf] takes a
     relative duration on the realtime clock, so a single call can wake
     early (EINTR, clock slew); re-checking against the monotonic
     deadline makes the wake-up instant exact to scheduler granularity.
     The open-loop load generator paces arrivals with this so request
     schedules do not drift with response times. *)
  let sleep_until t =
    let rec go () =
      let rem = remaining_ns t in
      if Int64.compare rem 0L > 0 then begin
        Unix.sleepf (Int64.to_float rem /. 1e9);
        go ()
      end
    in
    go ()
end

let m_deadline_skipped = Telemetry.counter "exec.deadline_skipped"

module Pool = struct
  type task = unit -> unit

  type t = {
    jobs : int;
    mutex : Mutex.t;  (** guards [pending] and [stop] *)
    work_available : Condition.t;
    pending : task Queue.t;
    mutable stop : bool;
    mutable workers : unit Domain.t list;
  }

  let jobs t = t.jobs

  (* Workers block on the queue and run tasks until shutdown.  Tasks are
     closures built by [parallel_map]; they never raise (element-level
     exceptions are captured into the map's failure slot). *)
  let rec worker_loop pool =
    Mutex.lock pool.mutex;
    let rec take () =
      if pool.stop then None
      else
        match Queue.take_opt pool.pending with
        | Some _ as t -> t
        | None ->
          Condition.wait pool.work_available pool.mutex;
          take ()
    in
    let task = take () in
    Mutex.unlock pool.mutex;
    match task with
    | None -> ()
    | Some task ->
      task ();
      worker_loop pool

  let create ~jobs =
    let jobs = max 1 jobs in
    let pool =
      {
        jobs;
        mutex = Mutex.create ();
        work_available = Condition.create ();
        pending = Queue.create ();
        stop = false;
        workers = [];
      }
    in
    pool.workers <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
    pool

  let shutdown pool =
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.workers;
    pool.workers <- []

  let with_pool ~jobs f =
    let pool = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

  let parallel_map (type a b) pool (f : a -> b) (xs : a list) : b list =
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results : b option array = Array.make n None in
      (* Lowest-index failure wins, mirroring which exception a
         sequential List.map would have raised. *)
      let failed : (int * exn * Printexc.raw_backtrace) option Atomic.t =
        Atomic.make None
      in
      let record_failure i exn bt =
        let rec cas () =
          let cur = Atomic.get failed in
          match cur with
          | Some (j, _, _) when j <= i -> ()
          | _ ->
            if not (Atomic.compare_and_set failed cur (Some (i, exn, bt)))
            then cas ()
        in
        cas ()
      in
      let next = Atomic.make 0 in
      (* Capture the caller's trace context so helper tasks running on
         pool domains attribute their spans/events to the same request
         as the inline chunk. *)
      let ctx = Telemetry.Context.current () in
      let run_chunk () =
        let rec loop () =
          if Atomic.get failed = None then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (match f input.(i) with
               | y -> results.(i) <- Some y
               | exception exn ->
                 record_failure i exn (Printexc.get_raw_backtrace ()));
              loop ()
            end
          end
        in
        loop ()
      in
      (* The caller is one worker; enqueue helper tasks for the rest. *)
      let helpers = min (pool.jobs - 1) (n - 1) in
      let fin_mutex = Mutex.create () in
      let fin_cond = Condition.create () in
      let remaining = ref helpers in
      let helper_task () =
        Telemetry.Context.with_current ctx run_chunk;
        Mutex.lock fin_mutex;
        decr remaining;
        if !remaining = 0 then Condition.signal fin_cond;
        Mutex.unlock fin_mutex
      in
      if helpers > 0 then begin
        Mutex.lock pool.mutex;
        for _ = 1 to helpers do
          Queue.add helper_task pool.pending
        done;
        Condition.broadcast pool.work_available;
        Mutex.unlock pool.mutex
      end;
      run_chunk ();
      (* Reclaim helper tasks no worker picked up (all elements may
         already be done), so the wait below cannot hang. *)
      if helpers > 0 then begin
        Mutex.lock pool.mutex;
        let kept = Queue.create () in
        let reclaimed = ref 0 in
        Queue.iter
          (fun t -> if t == helper_task then incr reclaimed else Queue.add t kept)
          pool.pending;
        Queue.clear pool.pending;
        Queue.transfer kept pool.pending;
        Mutex.unlock pool.mutex;
        Mutex.lock fin_mutex;
        remaining := !remaining - !reclaimed;
        Mutex.unlock fin_mutex
      end;
      Mutex.lock fin_mutex;
      while !remaining > 0 do
        Condition.wait fin_cond fin_mutex
      done;
      Mutex.unlock fin_mutex;
      (match Atomic.get failed with
       | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
       | None -> ());
      Array.to_list
        (Array.map
           (function Some y -> y | None -> assert false)
           results)

  (* Deadline awareness is a per-element guard: every dispatch —
     including the inline single-element path — first probes the batch
     deadline and, once it has passed, answers with [fallback] instead
     of running [f].  In-flight elements are never interrupted here
     (cancellation inside [f] is the interpreter's job); the queue
     simply drains through cheap fallbacks, preserving order and the
     lowest-index exception contract unchanged. *)
  let parallel_map_deadline pool ~deadline ~fallback f xs =
    let guarded x =
      if Deadline.expired deadline then begin
        Telemetry.incr m_deadline_skipped;
        fallback x
      end
      else f x
    in
    parallel_map pool guarded xs
end

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some pool -> Pool.parallel_map pool f xs

let map_deadline ?pool ~deadline ~fallback f xs =
  match pool with
  | None ->
    List.map
      (fun x ->
        if Deadline.expired deadline then begin
          Telemetry.incr m_deadline_skipped;
          fallback x
        end
        else f x)
      xs
  | Some pool -> Pool.parallel_map_deadline pool ~deadline ~fallback f xs
