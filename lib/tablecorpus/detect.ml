(** Column-type detection over the web-table corpus (Section 9):
    DNF-S (synthesized top-1 function, 80% value threshold), KW (header
    keyword match) and REGEX (Potter's-Wheel inferred pattern, 80%
    threshold). *)

type method_ = DNF_S | KW | REGEX

let method_to_string = function
  | DNF_S -> "DNF-S"
  | KW -> "KW"
  | REGEX -> "REGEX"

let all_methods = [ DNF_S; KW; REGEX ]

(* Header keywords per type for the KW baseline ("we choose a number of
   search keywords for each type, e.g. url and website for type url"). *)
let header_keywords =
  [ ("datetime", [ "date"; "time"; "published"; "updated" ]);
    ("address", [ "address"; "location" ]);
    ("country-code", [ "country"; "nation" ]);
    ("phone", [ "phone"; "telephone"; "mobile"; "fax" ]);
    ("currency", [ "price"; "cost"; "amount" ]);
    ("email", [ "email"; "e-mail"; "mail" ]);
    ("us-zipcode", [ "zip"; "zipcode"; "postal" ]);
    ("url", [ "url"; "website"; "link"; "homepage" ]);
    ("ipv4", [ "ip"; "ip address" ]);
    ("isbn", [ "isbn" ]);
    ("upc", [ "upc" ]);
    ("ean", [ "ean" ]);
    ("isin", [ "isin" ]);
    ("issn", [ "issn" ]);
    ("credit-card", [ "card"; "cc number" ]);
    ("ipv6", [ "ipv6" ]);
    ("iban", [ "iban" ]);
    ("vin", [ "vin" ]);
    ("stock-ticker", [ "ticker"; "symbol" ]);
    ("airport-code", [ "airport" ]) ]

(* Single-sourced from the synthesis layer so the value-level and
   column-level thresholds cannot drift apart (a test pins them). *)
let detection_threshold = Autotype_core.Synthesis.default_detection_threshold

(** A per-type detector, built once and applied to every column. *)
type detector = {
  type_id : string;
  accepts : string -> bool;  (** value-level predicate *)
  usable : bool;  (** REGEX inference can fail on heterogeneous input *)
}

let fraction_accepted det values =
  match values with
  | [] -> 0.0
  | _ ->
    let n = List.length (List.filter det values) in
    float_of_int n /. float_of_int (List.length values)

let m_detectors_built = Telemetry.counter "detect.detectors_built"
let m_fastpath_hits = Telemetry.counter "serve.fastpath_hits"
let m_fastpath_fallbacks = Telemetry.counter "serve.fastpath_fallbacks"
let m_columns_scanned = Telemetry.counter "detect.columns_scanned"
let m_columns_detected = Telemetry.counter "detect.columns_detected"
let m_models_served = Telemetry.counter "detect.models_served"
let m_serve_fallbacks = Telemetry.counter "detect.serve_fallbacks"
let m_deadline_hits = Telemetry.counter "serve.deadline_hits"
let m_degraded = Telemetry.counter "serve.degraded"
let r_columns = Telemetry.rate "serve.columns"
let r_deadline_hits = Telemetry.rate "serve.deadline_hits"
let r_degraded = Telemetry.rate "serve.degraded"
let h_column_latency = Telemetry.histogram "serve.column_latency_ms"

(* ------------------------------------------------------------------ *)
(* Deadline-aware column serving                                       *)
(* ------------------------------------------------------------------ *)

type budgets = {
  value_budget_ms : float option;
  batch_deadline : Exec.Deadline.t option;
}

let no_budgets = { value_budget_ms = None; batch_deadline = None }

let budgets ?value_budget_ms ?deadline_ms () =
  {
    value_budget_ms;
    batch_deadline = Option.map Exec.Deadline.after_ms deadline_ms;
  }

type column_verdict =
  | Column_match of float
  | Column_no_match of float
  | Column_degraded of { seen : int; accepted : int; total : int }

(** Serve one column under wall-clock budgets.  Each value runs under
    the tighter of its own budget and the batch deadline; a value that
    deadlines counts as not-accepted ([serve.deadline_hits]) and the
    column moves on.  Once the {e batch} deadline has passed, the
    column stops and degrades to an "unknown" verdict carrying the
    partial tally ([serve.degraded]) — the batch itself never fails. *)
let serve_column ?(budgets = no_budgets)
    (syn : Autotype_core.Synthesis.t) (values : string list) : column_verdict =
  let total = List.length values in
  let finish accepted =
    let frac =
      if total = 0 then 0.0 else float_of_int accepted /. float_of_int total
    in
    if frac > detection_threshold then Column_match frac
    else Column_no_match frac
  in
  let rec go seen accepted = function
    | [] -> finish accepted
    | v :: rest ->
      (match budgets.batch_deadline with
       | Some d when Exec.Deadline.expired d ->
         Telemetry.incr m_degraded;
         Telemetry.mark r_degraded;
         (* A degraded column is exactly what the flight recorder
            exists for: record the event with its request attribution,
            then dump the ring for post-mortem if a path is set. *)
         Telemetry.Flight.record ~kind:"degraded"
           ~value:(float_of_int seen) "serve.column";
         Telemetry.Flight.trigger ~reason:"column_degraded";
         Column_degraded { seen; accepted; total }
       | _ ->
         let deadline_ns =
           Option.map Exec.Deadline.to_ns
             (Exec.Deadline.min_opt
                (Option.map Exec.Deadline.after_ms budgets.value_budget_ms)
                budgets.batch_deadline)
         in
         (match Autotype_core.Synthesis.validate_v ?deadline_ns syn v with
          | Autotype_core.Synthesis.Valid -> go (seen + 1) (accepted + 1) rest
          | Autotype_core.Synthesis.Invalid -> go (seen + 1) accepted rest
          | Autotype_core.Synthesis.Deadline ->
            Telemetry.incr m_deadline_hits;
            Telemetry.mark r_deadline_hits;
            go (seen + 1) accepted rest))
  in
  Telemetry.mark r_columns;
  if Telemetry.enabled () then
    Telemetry.with_span "serve.column"
      ~attrs:[ ("values", Telemetry.I total) ]
      (fun () ->
        let t_start = Telemetry.now_ns () in
        let verdict = go 0 0 values in
        Telemetry.observe h_column_latency
          (Int64.to_float (Int64.sub (Telemetry.now_ns ()) t_start) /. 1e6);
        verdict)
  else go 0 0 values

type value_verdict = V_valid | V_invalid | V_deadline | V_skipped

let value_verdict_to_string = function
  | V_valid -> "VALID"
  | V_invalid -> "invalid"
  | V_deadline -> "DEADLINE"
  | V_skipped -> "SKIPPED"

(** Serve a list of values under budgets, one verdict per value — the
    value-level twin of {!serve_column}, shared by [autotype validate]
    and the serving daemon so their degradation behavior cannot drift.
    Each value runs under the tighter of its own budget and the batch
    deadline ([V_deadline], [serve.deadline_hits]); once the batch
    deadline has passed, the remaining tail is answered [V_skipped]
    without running ([serve.degraded], counted once per cut batch). *)
let serve_values ?(budgets = no_budgets) (syn : Autotype_core.Synthesis.t)
    (values : string list) : value_verdict list =
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest ->
      (match budgets.batch_deadline with
       | Some d when Exec.Deadline.expired d ->
         Telemetry.incr m_degraded;
         Telemetry.mark r_degraded;
         List.rev_append acc (List.map (fun _ -> V_skipped) (v :: rest))
       | _ ->
         let deadline_ns =
           Option.map Exec.Deadline.to_ns
             (Exec.Deadline.min_opt
                (Option.map Exec.Deadline.after_ms budgets.value_budget_ms)
                budgets.batch_deadline)
         in
         let verdict =
           match Autotype_core.Synthesis.validate_v ?deadline_ns syn v with
           | Autotype_core.Synthesis.Valid -> V_valid
           | Autotype_core.Synthesis.Invalid -> V_invalid
           | Autotype_core.Synthesis.Deadline ->
             Telemetry.incr m_deadline_hits;
             Telemetry.mark r_deadline_hits;
             V_deadline
         in
         go (verdict :: acc) rest)
  in
  go [] values

(* Values longer than this take the interpreter route even when a
   compiled summary exists: the fast path is proven equivalent at any
   length, but capping it bounds the cost of a single regexlite guard
   on adversarially long values and gives the fallback telemetry a
   stable meaning. *)
let fastpath_max_len = 4096

(** Wrap a registry-served model as a detector — the warm serving path:
    no search, no analysis, no negative generation.

    When the artifact carries a compiled fast-path summary (format v2,
    DESIGN.md §13), eligible values are answered by the verdict tree —
    pure string operations, no interpreter.  Ineligible values (longer
    than {!fastpath_max_len}, or every value when the summary is absent
    or its stored regex fails to prepare) fall back to
    {!Autotype_core.Synthesis.validate}; each per-value fallback is
    counted ([serve.fastpath_fallbacks]) and flight-recorded. *)
let serve_detector (entry : Model.Registry.entry) : detector =
  Telemetry.incr m_models_served;
  let type_id = Model.Artifact.key entry.Model.Registry.artifact in
  let interp = Autotype_core.Synthesis.validate entry.Model.Registry.synthesis in
  let accepts =
    match entry.Model.Registry.artifact.Model.Artifact.summary with
    | None -> interp
    | Some tree ->
      (match Absint.Domain.prepare tree with
       | None -> interp
       | Some prepared ->
         fun v ->
           if String.length v <= fastpath_max_len then begin
             Telemetry.incr m_fastpath_hits;
             Absint.Domain.eval_prepared prepared v
           end
           else begin
             Telemetry.incr m_fastpath_fallbacks;
             Telemetry.Flight.record ~kind:"fastpath_fallback"
               ~value:(float_of_int (String.length v))
               type_id;
             interp v
           end)
  in
  { type_id; accepts; usable = true }

(** Build the DNF-S detector for a type.  With a [registry] holding a
    compiled model for the type, the model is served from it (LRU-cached
    across columns); otherwise — or when the registered artifact fails
    to load — the full synthesis pipeline runs as before. *)
let dnf_detector ?(seed = 11) ?pool ?registry (ty : Semtypes.Registry.t) :
    detector =
  let served =
    match registry with
    | Some reg when Model.Registry.mem reg ty.Semtypes.Registry.id ->
      Telemetry.with_span "detect.serve"
        ~attrs:[ ("type", Telemetry.S ty.Semtypes.Registry.id) ]
        (fun () ->
          match Model.Registry.find reg ty.Semtypes.Registry.id with
          | Ok entry -> Some (serve_detector entry)
          | Error e ->
            (* Registered but unreadable: fall back to synthesis so
               batch detection still completes; the CLI serve path
               reports such artifacts as hard errors instead. *)
            Telemetry.incr m_serve_fallbacks;
            Telemetry.add_attr "fallback"
              (Telemetry.S (Model.Artifact.load_error_to_string e));
            None)
    | _ -> None
  in
  match served with
  | Some det -> det
  | None ->
    Telemetry.with_span "detect.synthesize"
      ~attrs:[ ("type", Telemetry.S ty.Semtypes.Registry.id) ]
    @@ fun () ->
    Telemetry.incr m_detectors_built;
    let positives = Semtypes.Registry.positive_examples ~n:20 ~seed ty in
    let outcome =
      Autotype_core.Pipeline.synthesize ?pool ~index:(Corpus.search_index ())
        ~query:ty.Semtypes.Registry.name ~positives ()
    in
    (match Autotype_core.Pipeline.best outcome with
     | Some syn ->
       {
         type_id = ty.Semtypes.Registry.id;
         accepts = Autotype_core.Synthesis.validate syn;
         usable = true;
       }
     | None ->
       Telemetry.add_attr "usable" (Telemetry.B false);
       { type_id = ty.Semtypes.Registry.id; accepts = (fun _ -> false);
         usable = false })

(** REGEX detector: Potter's-Wheel inference from the same positives. *)
let regex_detector ?(seed = 11) (ty : Semtypes.Registry.t) : detector =
  Telemetry.with_span "detect.regex_infer"
    ~attrs:[ ("type", Telemetry.S ty.Semtypes.Registry.id) ]
  @@ fun () ->
  Telemetry.incr m_detectors_built;
  let positives = Semtypes.Registry.positive_examples ~n:20 ~seed ty in
  match Regex_infer.infer positives with
  | Some pattern ->
    {
      type_id = ty.Semtypes.Registry.id;
      accepts = Regex_infer.matches pattern;
      usable = true;
    }
  | None ->
    Telemetry.add_attr "usable" (Telemetry.B false);
    { type_id = ty.Semtypes.Registry.id; accepts = (fun _ -> false);
      usable = false }

let header_matches type_id (header : string option) =
  match header with
  | None -> false
  | Some h ->
    let h = String.lowercase_ascii h in
    let keywords =
      Option.value (List.assoc_opt type_id header_keywords) ~default:[]
    in
    List.exists
      (fun kw ->
        let kl = String.length kw and hl = String.length h in
        kl <= hl
        &&
        let rec go i =
          i + kl <= hl && (String.sub h i kl = kw || go (i + 1))
        in
        go 0)
      keywords

(** Detect columns of [type_id] with a value-level detector. *)
let detect_with_values (det : detector) (columns : Webtables.column list) :
    Webtables.column list =
  if not det.usable then []
  else begin
    Telemetry.incr ~by:(List.length columns) m_columns_scanned;
    let detected =
      List.filter
        (fun (c : Webtables.column) ->
          fraction_accepted det.accepts c.Webtables.values
          > detection_threshold)
        columns
    in
    Telemetry.incr ~by:(List.length detected) m_columns_detected;
    detected
  end

let detect_with_headers type_id (columns : Webtables.column list) :
    Webtables.column list =
  List.filter
    (fun (c : Webtables.column) -> header_matches type_id c.Webtables.header)
    columns

(** Score detected columns against column truth. *)
let score type_id ~(detected : Webtables.column list)
    ~(columns : Webtables.column list) : Eval.Metrics.prf =
  let is_truth (c : Webtables.column) = c.Webtables.truth = Some type_id in
  let tp = List.length (List.filter is_truth detected) in
  let fp = List.length detected - tp in
  let fn =
    List.length (List.filter is_truth columns)
    - tp
  in
  { Eval.Metrics.tp; fp; fn }

type per_type_result = {
  type_id : string;
  method_ : method_;
  detected : int;
  true_positives : int;
  precision : float;
  relative_recall : float;  (** filled in after pooling *)
  f1 : float;
}

(** Run all three methods on all 20 popular types over a column corpus.
    Relative recall per type uses the union of correct columns found by
    the three methods as ground truth (Section 9.1). *)
let run ?(seed = 11) ?pool ?registry (columns : Webtables.column list) :
    per_type_result list =
  Telemetry.with_span "detect.run"
    ~attrs:[ ("columns", Telemetry.I (List.length columns)) ]
  @@ fun () ->
  let popular = Semtypes.Registry.popular in
  List.concat_map
    (fun (ty : Semtypes.Registry.t) ->
      let type_id = ty.Semtypes.Registry.id in
      let dnf = dnf_detector ~seed ?pool ?registry ty in
      let regex = regex_detector ~seed ty in
      let detections =
        [ (DNF_S, detect_with_values dnf columns);
          (KW, detect_with_headers type_id columns);
          (REGEX, detect_with_values regex columns) ]
      in
      (* Pool of correct columns across methods (relative recall). *)
      let correct (cols : Webtables.column list) =
        List.filter (fun c -> c.Webtables.truth = Some type_id) cols
      in
      let pool =
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun (_, cols) ->
            List.iter
              (fun (c : Webtables.column) -> Hashtbl.replace tbl c ())
              (correct cols))
          detections;
        Hashtbl.length tbl
      in
      List.map
        (fun (m, detected) ->
          let prf = score type_id ~detected ~columns in
          let tp = prf.Eval.Metrics.tp in
          let rr =
            if pool = 0 then 0.0 else float_of_int tp /. float_of_int pool
          in
          let p = Eval.Metrics.precision prf in
          let f1 =
            if p +. rr = 0.0 then 0.0 else 2.0 *. p *. rr /. (p +. rr)
          in
          {
            type_id;
            method_ = m;
            detected = List.length detected;
            true_positives = tp;
            precision = p;
            relative_recall = rr;
            f1;
          })
        detections)
    popular
