(** Column-type detection over the web-table corpus (Section 9): the
    synthesized-function method (DNF-S), the header-keyword baseline
    (KW) and the inferred-regex baseline (REGEX). *)

type method_ = DNF_S | KW | REGEX

val method_to_string : method_ -> string
val all_methods : method_ list

val header_keywords : (string * string list) list
(** Per-type header keywords for the KW baseline. *)

val detection_threshold : float
(** A column is detected when more than this fraction of values pass
    (0.8, per Section 9.1).  Equal by construction to
    {!Autotype_core.Synthesis.default_detection_threshold} — the value
    is defined once, in the synthesis layer. *)

type detector = {
  type_id : string;
  accepts : string -> bool;
  usable : bool;  (** REGEX inference can fail on heterogeneous input *)
}

val fraction_accepted : (string -> bool) -> string list -> float

val serve_detector : Model.Registry.entry -> detector
(** Detector around a registry-served model (the warm path): validation
    only, no pipeline stages. *)

val dnf_detector :
  ?seed:int ->
  ?pool:Exec.Pool.t ->
  ?registry:Model.Registry.t ->
  Semtypes.Registry.t ->
  detector
(** The DNF-S detector for a type.  When [registry] holds a compiled
    model for the type it is served from there (no synthesis); otherwise
    the full pipeline runs and the top-1 synthesized function is
    wrapped.  [pool] parallelizes candidate tracing (see {!Exec.Pool}). *)

val regex_detector : ?seed:int -> Semtypes.Registry.t -> detector
(** Potter's-Wheel inference from the same positive examples. *)

val header_matches : string -> string option -> bool

val detect_with_values :
  detector -> Webtables.column list -> Webtables.column list

val detect_with_headers :
  string -> Webtables.column list -> Webtables.column list

val score :
  string ->
  detected:Webtables.column list ->
  columns:Webtables.column list ->
  Eval.Metrics.prf

type per_type_result = {
  type_id : string;
  method_ : method_;
  detected : int;
  true_positives : int;
  precision : float;
  relative_recall : float;  (** vs. the union of all methods' correct finds *)
  f1 : float;
}

val run :
  ?seed:int ->
  ?pool:Exec.Pool.t ->
  ?registry:Model.Registry.t ->
  Webtables.column list ->
  per_type_result list
(** All three methods on all 20 popular types (Figure 11 / Table 2).
    [pool] parallelizes the per-type synthesis runs' candidate tracing;
    [registry] serves compiled models for the types it holds instead of
    re-synthesizing them. *)
