(** Column-type detection over the web-table corpus (Section 9): the
    synthesized-function method (DNF-S), the header-keyword baseline
    (KW) and the inferred-regex baseline (REGEX). *)

type method_ = DNF_S | KW | REGEX

val method_to_string : method_ -> string
val all_methods : method_ list

val header_keywords : (string * string list) list
(** Per-type header keywords for the KW baseline. *)

val detection_threshold : float
(** A column is detected when more than this fraction of values pass
    (0.8, per Section 9.1).  Equal by construction to
    {!Autotype_core.Synthesis.default_detection_threshold} — the value
    is defined once, in the synthesis layer. *)

type detector = {
  type_id : string;
  accepts : string -> bool;
  usable : bool;  (** REGEX inference can fail on heterogeneous input *)
}

val fraction_accepted : (string -> bool) -> string list -> float

(** {1 Deadline-aware column serving}

    Wall-clock budgets for the warm path (DESIGN.md §10): a per-value
    budget bounds any single interpreter run, a batch deadline bounds
    the whole request.  Both are optional and default to unbounded, in
    which case serving behaves exactly as before. *)

type budgets = {
  value_budget_ms : float option;  (** per-value wall-clock budget *)
  batch_deadline : Exec.Deadline.t option;  (** whole-request bound *)
}

val no_budgets : budgets

val budgets :
  ?value_budget_ms:float -> ?deadline_ms:float -> unit -> budgets
(** Convenience constructor: [deadline_ms] is measured from now. *)

type column_verdict =
  | Column_match of float  (** fraction accepted, above the threshold *)
  | Column_no_match of float
  | Column_degraded of { seen : int; accepted : int; total : int }
      (** the batch deadline passed mid-column: no type claim is made,
          the partial tally is reported, the batch continues *)

val serve_column :
  ?budgets:budgets -> Autotype_core.Synthesis.t -> string list ->
  column_verdict
(** Serve one column under budgets.  A value cut by its own budget
    counts as not-accepted ([serve.deadline_hits]); a column cut by the
    batch deadline degrades to [Column_degraded] ([serve.degraded])
    instead of failing the batch. *)

type value_verdict =
  | V_valid
  | V_invalid
  | V_deadline  (** cut by its own wall-clock budget; no claim made *)
  | V_skipped  (** the batch deadline had already passed; never ran *)

val value_verdict_to_string : value_verdict -> string
(** The CLI's historical verdict words: "VALID", "invalid", "DEADLINE",
    "SKIPPED" — also the wire-protocol encoding, so daemon responses
    are byte-comparable with one-shot CLI output. *)

val serve_values :
  ?budgets:budgets -> Autotype_core.Synthesis.t -> string list ->
  value_verdict list
(** One verdict per value — the value-level twin of {!serve_column},
    shared by [autotype validate] and the serving daemon.  A value cut
    by its own budget reports [V_deadline] ([serve.deadline_hits]);
    once the batch deadline passes, the remaining tail reports
    [V_skipped] without running ([serve.degraded]). *)

val fastpath_max_len : int
(** Longest value served by the compiled fast path (4096); longer
    values take the interpreter route and are flight-recorded. *)

val serve_detector : Model.Registry.entry -> detector
(** Detector around a registry-served model (the warm path): validation
    only, no pipeline stages.  Artifacts carrying a compiled fast-path
    summary answer eligible values from the verdict tree without
    running the interpreter ([serve.fastpath_hits]); everything else
    falls back to {!Autotype_core.Synthesis.validate}
    ([serve.fastpath_fallbacks], plus a flight-recorder event per
    fallback). *)

val dnf_detector :
  ?seed:int ->
  ?pool:Exec.Pool.t ->
  ?registry:Model.Registry.t ->
  Semtypes.Registry.t ->
  detector
(** The DNF-S detector for a type.  When [registry] holds a compiled
    model for the type it is served from there (no synthesis); otherwise
    the full pipeline runs and the top-1 synthesized function is
    wrapped.  [pool] parallelizes candidate tracing (see {!Exec.Pool}). *)

val regex_detector : ?seed:int -> Semtypes.Registry.t -> detector
(** Potter's-Wheel inference from the same positive examples. *)

val header_matches : string -> string option -> bool

val detect_with_values :
  detector -> Webtables.column list -> Webtables.column list

val detect_with_headers :
  string -> Webtables.column list -> Webtables.column list

val score :
  string ->
  detected:Webtables.column list ->
  columns:Webtables.column list ->
  Eval.Metrics.prf

type per_type_result = {
  type_id : string;
  method_ : method_;
  detected : int;
  true_positives : int;
  precision : float;
  relative_recall : float;  (** vs. the union of all methods' correct finds *)
  f1 : float;
}

val run :
  ?seed:int ->
  ?pool:Exec.Pool.t ->
  ?registry:Model.Registry.t ->
  Webtables.column list ->
  per_type_result list
(** All three methods on all 20 popular types (Figure 11 / Table 2).
    [pool] parallelizes the per-type synthesis runs' candidate tracing;
    [registry] serves compiled models for the types it holds instead of
    re-synthesizing them. *)
