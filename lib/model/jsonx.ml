(** Minimal JSON value type, printer and parser (see jsonx.mli). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* %.17g round-trips every binary64; normalize nan/inf (invalid in
       JSON) to null — they never occur in artifacts. *)
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_fail of string * int  (** message, offset *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_fail (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st; go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

(* UTF-8 encode a code point decoded from \uXXXX escapes (including a
   combined surrogate pair, hence the 4-byte branch). *)
let add_code_point buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

(* Exactly four hex digits.  Hand-rolled rather than [int_of_string
   "0x..."], which accepts OCaml literal syntax the JSON grammar does
   not (underscores, a leading sign after the prefix). *)
let hex_quad st =
  if st.pos + 4 > String.length st.src then fail st "short \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.src.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ ->
        st.pos <- st.pos + i;
        fail st (Printf.sprintf "bad \\u escape: %C is not a hex digit" c)
    in
    v := (!v lsl 4) lor d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
       | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
       | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
       | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
       | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
       | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
       | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
       | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
       | Some 'u' ->
         advance st;
         let cp = hex_quad st in
         if cp >= 0xD800 && cp <= 0xDBFF then begin
           (* High surrogate: RFC 8259 encodes non-BMP characters as a
              \u pair; the two halves combine into one code point
              (emitting them separately would produce CESU-8, not
              UTF-8). *)
           if
             st.pos + 2 <= String.length st.src
             && st.src.[st.pos] = '\\'
             && st.src.[st.pos + 1] = 'u'
           then begin
             st.pos <- st.pos + 2;
             let lo = hex_quad st in
             if lo >= 0xDC00 && lo <= 0xDFFF then begin
               add_code_point buf
                 (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00));
               go ()
             end
             else
               fail st
                 (Printf.sprintf
                    "invalid surrogate pair: \\u%04X after a high surrogate"
                    lo)
           end
           else fail st (Printf.sprintf "lone high surrogate \\u%04X" cp)
         end
         else if cp >= 0xDC00 && cp <= 0xDFFF then
           fail st (Printf.sprintf "lone low surrogate \\u%04X" cp)
         else begin
           add_code_point buf cp;
           go ()
         end
       | _ -> fail st "bad escape")
    | Some c -> advance st; Buffer.add_char buf c; go ()
  in
  go ()

(* RFC 8259 number grammar, checked structurally while scanning:
   minus? int frac? exp?  where int is 0 or a nonzero-led digit run,
   frac is '.' digits, exp is [eE] sign? digits.
   The old greedy char-class scan let [float_of_string]/[int_of_string]
   arbitrate, which accepted non-JSON forms like "01", "1." and
   (inside the scanned text) OCaml literal leniencies. *)
let parse_number st =
  let start = st.pos in
  let digits what =
    let before = st.pos in
    let rec go () =
      match peek st with Some '0' .. '9' -> advance st; go () | _ -> ()
    in
    go ();
    if st.pos = before then fail st ("expected a digit " ^ what)
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  (match peek st with
   | Some '0' ->
     advance st;
     (match peek st with
      | Some '0' .. '9' -> fail st "leading zeros are not allowed"
      | _ -> ())
   | Some '1' .. '9' -> digits "in the integer part"
   | _ -> fail st "expected a digit");
  let is_float = ref false in
  (match peek st with
   | Some '.' ->
     is_float := true;
     advance st;
     digits "after the decimal point"
   | _ -> ());
  (match peek st with
   | Some ('e' | 'E') ->
     is_float := true;
     advance st;
     (match peek st with Some ('+' | '-') -> advance st | _ -> ());
     digits "in the exponent"
   | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st ("bad number " ^ text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (* Integer overflow: fall back to float. *)
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> fail st ("bad number " ^ text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin advance st; Obj [] end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; fields ((k, v) :: acc)
        | Some '}' -> advance st; Obj (List.rev ((k, v) :: acc))
        | _ -> fail st "expected ',' or '}'"
      in
      fields []
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin advance st; List [] end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; items (v :: acc)
        | Some ']' -> advance st; List (List.rev (v :: acc))
        | _ -> fail st "expected ',' or ']'"
      in
      items []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos < String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_fail (msg, pos) ->
    Error (Printf.sprintf "%s at offset %d" msg pos)

(* ------------------------------------------------------------------ *)
(* Decoding helpers                                                    *)
(* ------------------------------------------------------------------ *)

exception Decode_error of string

let decode_fail msg = raise (Decode_error msg)

let member key = function
  | Obj fields ->
    (match List.assoc_opt key fields with
     | Some v -> v
     | None -> decode_fail (Printf.sprintf "missing field %S" key))
  | _ -> decode_fail (Printf.sprintf "field %S of a non-object" key)

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> i
  | _ -> decode_fail "expected an integer"

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> decode_fail "expected a number"

let to_bool = function
  | Bool b -> b
  | _ -> decode_fail "expected a boolean"

let to_str = function
  | Str s -> s
  | _ -> decode_fail "expected a string"

let to_list = function
  | List l -> l
  | _ -> decode_fail "expected a list"
