(** Minimal self-contained JSON used by the model-artifact codec.

    The repository deliberately carries no third-party JSON dependency,
    so the artifact layer ships its own small value type, printer and
    recursive-descent parser.  The printer emits a single line (strings
    are escaped, so embedded newlines never break the one-payload-line
    artifact framing) and the parser accepts exactly what the printer
    emits plus ordinary whitespace. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** insertion order preserved *)

val to_string : t -> string
(** Compact single-line rendering.  Floats round-trip exactly
    ([%.17g]); strings are escaped per RFC 8259. *)

val parse : string -> (t, string) result
(** Parse one JSON value (trailing whitespace allowed).  [Error msg]
    carries a character offset. *)

(** {1 Decoding helpers}

    All raise {!Decode_error}; the artifact codec catches it at its
    boundary and converts to a typed load error. *)

exception Decode_error of string

val member : string -> t -> t
(** Field of an object; raises when absent or not an object. *)

val member_opt : string -> t -> t option

val to_int : t -> int
val to_float : t -> float
(** Accepts both [Int] and [Float] representations. *)

val to_bool : t -> bool
val to_str : t -> string
val to_list : t -> t list
