(** The model registry: the serve half of the compile/serve split
    (DESIGN.md §9).

    A registry is a directory of [.model] artifacts plus an
    [index.json] mapping registry keys (benchmark type ids, or query
    slugs) to file names.  Loaded models are kept in a bounded
    in-memory LRU shared across columns and guarded by a mutex, so the
    execution engine's domains ([--jobs N]) can serve from one registry
    concurrently; each artifact is read and verified at most once while
    it stays resident.

    Telemetry: [serve.cache_hits] / [serve.cache_misses] counters and
    the artifact layer's [model.load] / [model.save] spans. *)

type t

type entry = {
  synthesis : Autotype_core.Synthesis.t;  (** ready-to-serve validator *)
  artifact : Artifact.t;  (** provenance and coverage metadata *)
}

val default_capacity : int
(** LRU capacity (number of resident models) when not overridden. *)

val open_dir : ?capacity:int -> string -> (t, string) result
(** Open an existing registry directory.  Reads [index.json] when
    present; otherwise falls back to scanning for [*.model] files (keys
    then come from each artifact's own metadata).  No artifact payloads
    are loaded eagerly in the indexed case.  [Error] when the directory
    does not exist. *)

val create_dir : ?capacity:int -> string -> (t, string) result
(** Like {!open_dir} but creates the directory (and a fresh index) when
    missing. *)

val dir : t -> string

val keys : t -> string list
(** Indexed keys, sorted. *)

val mem : t -> string -> bool

val path_of : t -> string -> string option
(** Absolute path of the artifact registered under a key. *)

val save : t -> Artifact.t -> (string, string) result
(** Write the artifact into the registry under {!Artifact.key} and
    update [index.json]; returns the file path.  Replaces any previous
    model under the same key and drops the stale cache entry. *)

val find : t -> string -> (entry, Artifact.load_error) result
(** Serve a model by key: LRU hit, or load-and-verify from disk (miss).
    [Error (File_error _)] when the key is not in the registry.

    Transient load failures (unreadable file, checksum mismatch — both
    can be a torn read racing a writer) are retried up to 2 times with
    1ms/5ms backoff before the error is returned; structural failures
    (version, framing, malformed payload) are not retried.  Counters:
    [retry.attempts], [retry.recovered], [retry.gave_up]. *)

val cache_stats : t -> int * int
(** (hits, misses) since the registry was opened — mirrors the
    [serve.cache_*] counters but is per-registry and always on. *)
